test/test_ccount.mli:

(* Interprocedural function summaries.

   The direct-call graph over defined functions is condensed with
   Tarjan's SCC algorithm, which emits components callees-first.
   Singleton, non-recursive components are solved once with the
   summaries of everything below them already available; recursive
   components fall back to the return type's range (sound, and it
   keeps summary computation a single pass — no global fixpoint). *)

module I = Kc.Ir

let direct_callees (fd : I.fundec) : string list =
  let acc = ref [] in
  I.iter_instrs
    (fun i -> match i with I.Icall (_, I.Direct f, _) -> acc := f :: !acc | _ -> ())
    fd.I.fbody;
  List.sort_uniq compare !acc

(* Tarjan over function names; [sccs] come out in reverse topological
   order of the condensation, i.e. callees before callers. *)
let sccs_of (funcs : I.fundec list) : I.fundec list list =
  let by_name = Hashtbl.create 64 in
  List.iter (fun fd -> Hashtbl.replace by_name fd.I.fname fd) funcs;
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strongconnect name =
    Hashtbl.replace index name !next;
    Hashtbl.replace lowlink name !next;
    incr next;
    stack := name :: !stack;
    Hashtbl.replace on_stack name ();
    let fd = Hashtbl.find by_name name in
    List.iter
      (fun callee ->
        if Hashtbl.mem by_name callee then
          if not (Hashtbl.mem index callee) then begin
            strongconnect callee;
            Hashtbl.replace lowlink name
              (min (Hashtbl.find lowlink name) (Hashtbl.find lowlink callee))
          end
          else if Hashtbl.mem on_stack callee then
            Hashtbl.replace lowlink name
              (min (Hashtbl.find lowlink name) (Hashtbl.find index callee)))
      (direct_callees fd);
    if Hashtbl.find lowlink name = Hashtbl.find index name then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | top :: rest ->
            stack := rest;
            Hashtbl.remove on_stack top;
            let acc = Hashtbl.find by_name top :: acc in
            if top = name then acc else pop acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun fd -> if not (Hashtbl.mem index fd.I.fname) then strongconnect fd.I.fname) funcs;
  List.rev !out

let is_self_recursive (fd : I.fundec) = List.mem fd.I.fname (direct_callees fd)

let compute ?(cfg_of = fun fd -> Dataflow.Cfg.build fd) (prog : I.program) : Transfer.summaries =
  List.fold_left
    (fun summaries scc ->
      match scc with
      | [ fd ] when not (is_self_recursive fd) ->
          let r = Solver.analyze_cfg ~summaries (cfg_of fd) in
          let ret = Solver.return_aval fd r in
          let ret = if Aval.is_bot ret then Transfer.of_ty fd.I.fret else ret in
          Transfer.SM.add fd.I.fname ret summaries
      | _ ->
          List.fold_left
            (fun summaries fd -> Transfer.SM.add fd.I.fname (Transfer.of_ty fd.I.fret) summaries)
            summaries scc)
    Transfer.no_summaries
    (* Externs have no body to summarize; leaving them out also keeps
       the allocator special-case in Transfer.instr in charge. *)
    (sccs_of (List.filter (fun fd -> not fd.I.fextern) prog.I.funcs))

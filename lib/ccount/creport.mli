(** CCount pipeline driver and free census (paper §2.2, E2/E3). *)

type report = {
  instr : Rc_instrument.stats;
  types_described : int;  (** tags with pointer slots (the "32 types" census) *)
}

(** Machine configuration for a CCount run: shadow counters on,
    allocations zeroed, bad frees leak (soundness-preserving). *)
val config : ?profile:Vm.Cost.profile -> ?overflow_check:bool -> unit -> Vm.Machine.config

(** Instrument [prog] in place, register its RTTI, and boot a
    CCount-enabled interpreter. *)
val ccount_boot :
  ?profile:Vm.Cost.profile ->
  ?overflow_check:bool ->
  ?engine:Vm.Interp.engine ->
  Kc.Ir.program ->
  Vm.Interp.t * report

val pp_census : Format.formatter -> Vm.Machine.free_census -> unit
val pp : Format.formatter -> report -> unit

lib/kc/parser.mli: Ast Loc

(** Second-stage check discharge: removes Deputy-inserted runtime
    checks the interval fixpoint proves can never fire. Runs in place
    over an already deputized (and Facts-optimized) program, so the
    combined pipeline strictly subsumes the Facts pass. *)

type fstat = {
  fname : string;
  seen : int;  (** residual checks entering this pass *)
  proved : int;  (** ... removed by interval facts *)
  iterations : int;
  widen_points : int;
}

type stats = { fstats : fstat list }

val checks_seen : stats -> int
val checks_proved : stats -> int

val rate : stats -> float
(** Percentage of residual checks proved (0 when none were seen). *)

val discharge_fundec : summaries:Transfer.summaries -> Kc.Ir.fundec -> fstat
val run : ?summaries:Transfer.summaries -> Kc.Ir.program -> stats
val render_stats : stats -> string

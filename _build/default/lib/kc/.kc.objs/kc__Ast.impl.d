lib/kc/ast.ml: Loc

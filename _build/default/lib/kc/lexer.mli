(** Hand-written lexer for KC: whole-string tokenization with
    per-token locations. Line comments, block comments and
    [#]-prefixed lines are skipped. *)

exception Error of string * Loc.t

(** Lex a source string into located tokens; the array always ends
    with {!Token.EOF}. *)
val tokenize : file:string -> string -> (Token.t * Loc.t) array

(* Hand-written lexer for KC.

   The lexer works over a whole source string and produces a token
   array with per-token locations, which the recursive-descent parser
   then walks with arbitrary lookahead. *)

exception Error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let loc_of st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let error st msg = raise (Error (msg, loc_of st))

let at_end st = st.pos >= String.length st.src

let peek_char st = if at_end st then '\000' else st.src.[st.pos]

let peek_char2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace, line comments and block comments. Also recognizes
   `#` preprocessor-style lines and skips them whole: the corpus uses
   `# file:line` markers for provenance only. *)
let rec skip_trivia st =
  if at_end st then ()
  else
    match peek_char st with
    | ' ' | '\t' | '\r' | '\n' ->
        advance st;
        skip_trivia st
    | '/' when peek_char2 st = '/' ->
        while (not (at_end st)) && peek_char st <> '\n' do
          advance st
        done;
        skip_trivia st
    | '/' when peek_char2 st = '*' ->
        advance st;
        advance st;
        let rec close () =
          if at_end st then error st "unterminated block comment"
          else if peek_char st = '*' && peek_char2 st = '/' then begin
            advance st;
            advance st
          end
          else begin
            advance st;
            close ()
          end
        in
        close ();
        skip_trivia st
    | '#' ->
        while (not (at_end st)) && peek_char st <> '\n' do
          advance st
        done;
        skip_trivia st
    | _ -> ()

let lex_number st =
  let start = st.pos in
  if peek_char st = '0' && (peek_char2 st = 'x' || peek_char2 st = 'X') then begin
    advance st;
    advance st;
    while is_hex_digit (peek_char st) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    (* Suffixes u/l are accepted and ignored. *)
    while peek_char st = 'u' || peek_char st = 'U' || peek_char st = 'l' || peek_char st = 'L' do
      advance st
    done;
    try Token.INT_LIT (Int64.of_string text)
    with Failure _ -> error st (Printf.sprintf "bad hex literal %s" text)
  end
  else begin
    while is_digit (peek_char st) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    while peek_char st = 'u' || peek_char st = 'U' || peek_char st = 'l' || peek_char st = 'L' do
      advance st
    done;
    try Token.INT_LIT (Int64.of_string text)
    with Failure _ -> error st (Printf.sprintf "bad integer literal %s" text)
  end

let lex_escape st =
  advance st;
  (* past backslash *)
  let c = peek_char st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> error st (Printf.sprintf "unknown escape \\%c" c)

let lex_char st =
  advance st;
  (* past opening quote *)
  let c =
    if peek_char st = '\\' then lex_escape st
    else begin
      let c = peek_char st in
      advance st;
      c
    end
  in
  if peek_char st <> '\'' then error st "unterminated char literal";
  advance st;
  Token.CHAR_LIT c

let lex_string st =
  advance st;
  (* past opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then error st "unterminated string literal"
    else
      match peek_char st with
      | '"' -> advance st
      | '\\' -> Buffer.add_char buf (lex_escape st); go ()
      | c ->
          advance st;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Token.STR_LIT (Buffer.contents buf)

let lex_ident st =
  let start = st.pos in
  while is_ident_char (peek_char st) do
    advance st
  done;
  Token.of_ident (String.sub st.src start (st.pos - start))

(* Operators and punctuation, longest match first. *)
let lex_operator st =
  let two a b tok = if peek_char st = a && peek_char2 st = b then Some tok else None in
  let three =
    if
      st.pos + 2 < String.length st.src
      && peek_char st = '.'
      && peek_char2 st = '.'
      && st.src.[st.pos + 2] = '.'
    then Some Token.ELLIPSIS
    else if
      st.pos + 2 < String.length st.src
      && peek_char st = '<'
      && peek_char2 st = '<'
      && st.src.[st.pos + 2] = '='
    then Some Token.SHLEQ
    else if
      st.pos + 2 < String.length st.src
      && peek_char st = '>'
      && peek_char2 st = '>'
      && st.src.[st.pos + 2] = '='
    then Some Token.SHREQ
    else None
  in
  match three with
  | Some tok ->
      advance st;
      advance st;
      advance st;
      tok
  | None -> (
      let candidates =
        [
          two '-' '>' Token.ARROW;
          two '<' '=' Token.LE;
          two '>' '=' Token.GE;
          two '=' '=' Token.EQEQ;
          two '!' '=' Token.NE;
          two '&' '&' Token.ANDAND;
          two '|' '|' Token.BARBAR;
          two '<' '<' Token.SHL;
          two '>' '>' Token.SHR;
          two '+' '=' Token.PLUSEQ;
          two '-' '=' Token.MINUSEQ;
          two '*' '=' Token.STAREQ;
          two '/' '=' Token.SLASHEQ;
          two '%' '=' Token.PERCENTEQ;
          two '&' '=' Token.AMPEQ;
          two '|' '=' Token.BAREQ;
          two '^' '=' Token.CARETEQ;
          two '+' '+' Token.PLUSPLUS;
          two '-' '-' Token.MINUSMINUS;
        ]
      in
      match List.find_opt Option.is_some candidates with
      | Some (Some tok) ->
          advance st;
          advance st;
          tok
      | _ ->
          let c = peek_char st in
          advance st;
          let tok =
            match c with
            | '(' -> Token.LPAREN
            | ')' -> Token.RPAREN
            | '{' -> Token.LBRACE
            | '}' -> Token.RBRACE
            | '[' -> Token.LBRACKET
            | ']' -> Token.RBRACKET
            | ';' -> Token.SEMI
            | ',' -> Token.COMMA
            | '.' -> Token.DOT
            | '?' -> Token.QUESTION
            | ':' -> Token.COLON
            | '+' -> Token.PLUS
            | '-' -> Token.MINUS
            | '*' -> Token.STAR
            | '/' -> Token.SLASH
            | '%' -> Token.PERCENT
            | '&' -> Token.AMP
            | '|' -> Token.BAR
            | '^' -> Token.CARET
            | '~' -> Token.TILDE
            | '!' -> Token.BANG
            | '<' -> Token.LT
            | '>' -> Token.GT
            | '=' -> Token.EQ
            | c -> error st (Printf.sprintf "unexpected character %C" c)
          in
          tok)

let next_token st =
  skip_trivia st;
  let loc = loc_of st in
  if at_end st then (Token.EOF, loc)
  else
    let c = peek_char st in
    let tok =
      if is_digit c then lex_number st
      else if is_ident_start c then lex_ident st
      else if c = '\'' then lex_char st
      else if c = '"' then lex_string st
      else lex_operator st
    in
    (tok, loc)

(* Lex a whole source string into an array of located tokens, with a
   trailing EOF token. *)
let tokenize ~file src =
  let st = make ~file src in
  let acc = ref [] in
  let rec go () =
    let tok, loc = next_token st in
    acc := (tok, loc) :: !acc;
    if tok <> Token.EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)

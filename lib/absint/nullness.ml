(* Zeroness of a raw value: for pointers this is nullness proper; for
   integers it doubles as a truthiness domain, which is what branch
   conditions refine. *)

type t = Bot | Null | Nonnull | Top

let bottom = Bot
let top = Top

let equal (a : t) (b : t) = a = b

let leq a b =
  match (a, b) with Bot, _ -> true | _, Top -> true | x, y -> x = y

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | x, y when x = y -> x
  | _ -> Top

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | x, y when x = y -> x
  | _ -> Bot

(* Finite lattice: join is its own widening. *)
let widen = join
let narrow _old next = next

let of_const n = if Int64.equal n 0L then Null else Nonnull

let to_string = function
  | Bot -> "_|_"
  | Null -> "null"
  | Nonnull -> "nonnull"
  | Top -> "T"

lib/kc/typecheck.mli: Ast Ir Loc

lib/blockstop/pointsto.mli: Hashtbl Kc Set String

lib/kernel/src_net.ml:

lib/vm/builtins.mli: Interp Kc Machine

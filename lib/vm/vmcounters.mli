(** Domain-safe named counters.

    Each domain gets its own [(string, int ref)] table via DLS; tables
    register under a mutex on first use and persist past the domain's
    death, so [table] can merge exact per-domain counts after a
    parallel phase. Only the owning domain mutates its table — the
    unsynchronized-Hashtbl corruption mode is structurally impossible.

    [table]/[reset] walk all registered tables and expect worker
    domains to be quiescent (any point after [Par.map] returns). *)

type t

val create : unit -> t

val counter : t -> string -> int ref
(** The calling domain's counter cell for [name], created on demand.
    Closures may capture it; increments through a captured ref are
    exact when compile and run share a domain. *)

val add : t -> string -> int -> unit
val bump : t -> string -> unit

val table : t -> (string * int) list
(** Counts summed across all domains, zero rows dropped, sorted by
    count descending then name. *)

val reset : t -> unit

val render : title:string -> t -> string
(** [table] formatted for display under [title]; [""] when empty. *)

(* User/kernel pointer checking (paper §3.1: "Further examples include
   user/kernel pointers, tainted data flow...").

   A [__user] pointer addresses user space. Two rules, in the style of
   sparse's address-space checking but sound over the typed IR:

   1. a __user pointer must never be dereferenced directly — only the
      copy helpers (copy_to_user / copy_from_user) may touch user
      memory;
   2. user-ness must not be laundered: a __user value cannot flow into
      a kernel-pointer slot or argument, nor a kernel pointer into a
      __user one, except inside [__trusted] regions (the syscall entry
      shim that blesses raw register values is exactly such a region).

   Null constants are exempt (null is valid in both spaces). *)

module I = Kc.Ir

type kind =
  | Deref (* direct dereference of a __user pointer *)
  | User_to_kernel (* __user value into a kernel slot/argument *)
  | Kernel_to_user (* kernel value into a __user slot/argument *)

type violation = { v_fn : string; v_loc : Kc.Loc.t; v_kind : kind; v_what : string }

type report = {
  violations : violation list;
  user_params : int; (* __user-annotated parameters seen *)
  derefs_checked : int;
  flows_checked : int;
}

let is_user_ty (ty : I.ty) : bool =
  match ty with I.Tptr (_, a) -> a.I.a_user | _ -> false

(* User-ness of a value, looking through pointer casts to its origin
   (a cast must not launder the address space). *)
let is_user_exp (e : I.exp) : bool = is_user_ty (Deputy.Annot.strip_ptr_casts e).I.ety

let is_null (e : I.exp) : bool = Deputy.Annot.const_fold e = Some 0L

type ctx = {
  prog : I.program;
  fd : I.fundec;
  mutable trusted : bool;
  mutable violations : violation list;
  mutable derefs : int;
  mutable flows : int;
}

let violate ctx loc kind what =
  ctx.violations <- { v_fn = ctx.fd.I.fname; v_loc = loc; v_kind = kind; v_what = what } :: ctx.violations

(* Rule 1: no derefs of __user pointers outside trusted code. *)
let check_deref ctx loc (e : I.exp) =
  I.fold_exp
    (fun () sub ->
      match sub.I.e with
      | I.Elval (I.Lmem p, _) ->
          ctx.derefs <- ctx.derefs + 1;
          let base, _ = Deputy.Annot.split_base p in
          if is_user_exp base && not ctx.trusted then
            violate ctx loc Deref (Kc.Pretty.exp_to_string base)
      | _ -> ())
    () e

let check_lval_deref ctx loc ((host, offs) : I.lval) =
  (match host with
  | I.Lmem p ->
      ctx.derefs <- ctx.derefs + 1;
      let base, _ = Deputy.Annot.split_base p in
      if is_user_exp base && not ctx.trusted then
        violate ctx loc Deref (Kc.Pretty.exp_to_string base)
  | I.Lvar _ -> ());
  List.iter
    (function I.Oindex ie -> check_deref ctx loc ie | I.Ofield _ -> ())
    offs

(* Rule 2: address spaces must agree across a flow. *)
let check_flow ctx loc ~(dst_user : bool) (src : I.exp) ~what =
  if I.is_pointer src.I.ety && not (is_null src) then begin
    ctx.flows <- ctx.flows + 1;
    if not ctx.trusted then begin
      let src_user = is_user_exp src in
      if src_user && not dst_user then violate ctx loc User_to_kernel what
      else if (not src_user) && dst_user then violate ctx loc Kernel_to_user what
    end
  end

let lval_type (lv : I.lval) : I.ty =
  let host, offs = lv in
  let base =
    match host with
    | I.Lvar v -> v.I.vty
    | I.Lmem e -> ( match e.I.ety with I.Tptr (t, _) -> t | t -> t)
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | I.Ofield f, _ -> f.I.fty
      | I.Oindex _, I.Tarray (t, _) -> t
      | I.Oindex _, t -> t)
    base offs

let check_instr ctx loc (instr : I.instr) =
  match instr with
  | I.Iset (lv, e) ->
      check_lval_deref ctx loc lv;
      check_deref ctx loc e;
      check_flow ctx loc ~dst_user:(is_user_ty (lval_type lv)) e
        ~what:(Kc.Pretty.lval_to_string lv)
  | I.Icall (ret, target, args) -> (
      List.iter (check_deref ctx loc) args;
      (match ret with Some lv -> check_lval_deref ctx loc lv | None -> ());
      match target with
      | I.Direct callee -> (
          match I.find_fun ctx.prog callee with
          | Some fd ->
              List.iteri
                (fun i (formal : I.varinfo) ->
                  match List.nth_opt args i with
                  | Some arg ->
                      check_flow ctx loc ~dst_user:(is_user_ty formal.I.vty) arg
                        ~what:(Printf.sprintf "argument %d of %s" (i + 1) callee)
                  | None -> ())
                fd.I.sformals
          | None -> ())
      | I.Indirect fe -> check_deref ctx loc fe)
  | I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> ()

let rec check_block ctx (b : I.block) = List.iter (check_stmt ctx) b

and check_stmt ctx (s : I.stmt) =
  let loc = s.I.sloc in
  match s.I.sk with
  | I.Sinstr i -> check_instr ctx loc i
  | I.Sif (c, b1, b2) ->
      check_deref ctx loc c;
      check_block ctx b1;
      check_block ctx b2
  | I.Swhile (c, body, step) ->
      check_deref ctx loc c;
      check_block ctx body;
      check_block ctx step
  | I.Sdowhile (body, c) ->
      check_block ctx body;
      check_deref ctx loc c
  | I.Sswitch (e, cases) ->
      check_deref ctx loc e;
      List.iter (fun (c : I.case) -> check_block ctx c.I.cbody) cases
  | I.Sreturn (Some e) ->
      check_deref ctx loc e;
      check_flow ctx loc ~dst_user:(is_user_ty ctx.fd.I.fret) e ~what:"return value"
  | I.Sreturn None | I.Sbreak | I.Scontinue -> ()
  | I.Sblock b | I.Sdelayed b -> check_block ctx b
  | I.Strusted b ->
      let was = ctx.trusted in
      ctx.trusted <- true;
      check_block ctx b;
      ctx.trusted <- was

let analyze (prog : I.program) : report =
  let violations = ref [] and derefs = ref 0 and flows = ref 0 in
  let user_params = ref 0 in
  (* Name order, not Hashtbl order: report code must stay byte-stable
     across insertion histories and OCaml versions. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) prog.I.fun_by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (_, (fd : I.fundec)) ->
         List.iter
           (fun (v : I.varinfo) -> if is_user_ty v.I.vty then incr user_params)
           fd.I.sformals);
  List.iter
    (fun (fd : I.fundec) ->
      let ctx =
        {
          prog;
          fd;
          trusted = List.mem Kc.Ast.Ftrusted fd.I.fannots;
          violations = [];
          derefs = 0;
          flows = 0;
        }
      in
      check_block ctx fd.I.fbody;
      violations := ctx.violations @ !violations;
      derefs := !derefs + ctx.derefs;
      flows := !flows + ctx.flows)
    prog.I.funcs;
  {
    violations = List.rev !violations;
    user_params = !user_params;
    derefs_checked = !derefs;
    flows_checked = !flows;
  }

let kind_to_string = function
  | Deref -> "dereference of __user pointer"
  | User_to_kernel -> "__user pointer flows into kernel slot"
  | Kernel_to_user -> "kernel pointer flows into __user slot"

let pp fmt (r : report) =
  Format.fprintf fmt
    "userck: %d __user parameters, %d derefs and %d pointer flows checked, %d violations"
    r.user_params r.derefs_checked r.flows_checked (List.length r.violations)

let pp_violation fmt (v : violation) =
  Format.fprintf fmt "%s: in %s: %s (%s)" (Kc.Loc.to_string v.v_loc) v.v_fn
    (kind_to_string v.v_kind) v.v_what

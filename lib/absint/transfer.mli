(** Abstract transfer functions over the KC IR, mirroring the VM's
    concrete semantics: results are normed to their static type's
    width ({!clamp}), binop signedness follows the left operand, and
    Deputy checks compare raw signed 64-bit values. *)

module SM : Map.S with type key = string

type summaries = Aval.t SM.t
(** Interprocedural summaries: function name -> abstract return value. *)

val no_summaries : summaries

type fn_iface = { ret_nonnull : bool }
(** Skeleton-derived relational interface of a function (see
    {!Relsum}): [ret_nonnull] when every return provably yields a
    non-null pointer. *)

type ifaces = fn_iface SM.t

val no_ifaces : ifaces
val allocators : string list
val ty_range : Kc.Ir.ty -> Interval.t
val of_ty : Kc.Ir.ty -> Aval.t

val clamp : Kc.Ir.ty -> Interval.t -> Interval.t
(** Keep an interval that provably fits the type's range, else fall
    back to the whole range (sound under the VM's wrap-around norm). *)

val norm_aval : Kc.Ir.ty -> Aval.t -> Aval.t
val truthiness : Aval.t -> bool option
val eval : Env.t -> Kc.Ir.exp -> Aval.t

val assume : Env.t -> Kc.Ir.exp -> bool -> Env.t
(** Refine the environment under a branch condition being true/false.
    May return [Env.bottom] when the branch is infeasible. *)

val linear_of_exp : Env.t -> Kc.Ir.exp -> (Kc.Ir.varinfo * int64) option
(** Raw-exact linear view [raw(e) = raw(v) + k], certified non-wrapping
    by the interval component; [None] means no zone fact may be drawn
    from [e] (the PR 3 cast-soundness discipline). *)

type proof = P_interval | P_relational

val provable_why : Env.t -> Kc.Ir.check -> proof option
(** Can this Deputy check never fire in any concrete state described
    by the environment — and which component of the product proved it?
    The interval rule is tried first, so [P_relational] marks checks
    only the zone could discharge. *)

val provable : Env.t -> Kc.Ir.check -> bool

val assume_check : Env.t -> Kc.Ir.check -> Env.t
(** A check that executed without trapping establishes its predicate. *)

val instr : ?ifaces:ifaces -> summaries -> Env.t -> Kc.Ir.instr -> Env.t

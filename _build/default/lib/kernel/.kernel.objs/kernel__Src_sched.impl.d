lib/kernel/src_sched.ml:

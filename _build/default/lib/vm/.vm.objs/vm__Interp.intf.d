lib/vm/interp.mli: Hashtbl Kc Machine

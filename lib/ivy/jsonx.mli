(** Minimal JSON parse/render for the serve daemon's
    newline-delimited RPC framing. [Raw] splices an already-rendered
    report string into a response without re-parsing it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** rendered verbatim; never produced by {!parse} *)

exception Parse_error of string

val render : t -> string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option

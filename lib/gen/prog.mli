(** Structured random programs.

    The generator never manipulates KC text directly: it builds this
    small typed skeleton, and [render] turns it into a self-contained
    KC compilation unit (its own extern header, only the globals the
    body actually uses).  Keeping the structure around — rather than
    just the text — is what makes fault injection (append a labelled
    block) and shrinking (delete list elements, re-render) trivial and
    type-preserving. *)

type block =
  | Arith of { iters : int; mul : int }  (** bounded loop of register arithmetic *)
  | Array_loop of { size : int }  (** stack array filled through a checked index *)
  | Heap of { slot : int }
      (** kzalloc(GFP_ATOMIC) → write → publish to gslot → retire → kfree *)
  | Lock_region of { locks : int list; addend : int }
      (** spinlocks acquired in ascending index order; straight-line body *)
  | Irq_region of { addend : int }  (** local_irq_disable/enable around arithmetic *)
  | Call of { callee : int }  (** direct call to a lower-numbered function (DAG) *)
  | Fptr_call of { table : int; pivot : int }  (** indirect call through a gops table *)
  | Err_call  (** call gerr_ and branch on its error result *)
  | User_copy  (** copy_from_user from the blessed user window *)
  | F_oob_const of { idx : int }  (** fault: constant index past a 4-long array *)
  | F_oob_dyn of { off : int }  (** fault: data-dependent index, provably >= 4 at runtime *)
  | F_oob_loop of { bound : int }
      (** fault: loop-carried index [i = 0; i <= bound; i++] into a
          4-long array with [bound >= 4] — the widening-sensitive shape:
          an unsound interval analysis that under-approximates the loop
          invariant would wrongly discharge the bound check *)
  | F_oob_cast of { delta : int }
      (** fault: a negative [signed char] index guarded by a
          mixed-width signed->unsigned cast comparison
          [(unsigned short)sc < 65535] that is always true at runtime —
          the cast-stripping-sensitive shape: an optimizer that
          attributes bounds proven about the (zero-extended) cast value
          to the pre-cast variable would wrongly discharge the
          lower-bound check on the negative index *)
  | F_oob_symbolic of { base : int }
      (** fault: a [__count(cn)] heap buffer with a clamped symbolic
          count and a loop bounded by [lim = cn - 1] — the
          relational-domain-sensitive shape: the in-loop upper-bound
          checks compare the index against the symbolic count and are
          dischargeable only through the [lim = cn - 1] zone relation,
          while the closing write at index [cn] can never pass its
          check, so a product domain that conflates the loop bound
          with the count itself would wrongly discharge it *)
  | F_dangling  (** fault: kfree while gslot_f still holds the reference *)
  | F_atomic_block  (** fault: msleep under local_irq_disable *)
  | F_lock_inversion of { lo : int; hi : int }  (** fault: lo->hi then hi->lo *)
  | F_unchecked_err  (** fault: gerr_ result discarded *)
  | F_user_deref  (** fault: direct *p on a __user pointer *)
  | F_ref_leak  (** fault: allocation with no kfree on any path (statically visible only) *)
  | F_double_put  (** fault: kfree twice — every run traps on the second free *)
  | F_put_on_error_path
      (** fault: kfree while gslot_e still holds the reference, retired too late *)

type op = { oid : int; omul : int }
(** Leaf callee for function-pointer tables; signature [long (int, int)]
    is distinct from every other function so type-based indirect-call
    resolution cannot manufacture cycles. *)

type table = { tid : int; ta : int; tb : int }
(** A gops table holding two ops. *)

type func = { fid : int; blocks : block list }
(** Regular function [long f<fid>_(int n)]; [main] calls every one. *)

type t = {
  seed : int;
  ops : op list;
  tables : table list;
  funcs : func list;
  faults : (Fault.kind * string) list;  (** ground truth: kind + host function name *)
}

val fname : int -> string
(** [fname fid] = ["f<fid>_"]. *)

val opname : int -> string
val is_fault_block : block -> bool
val fault_kind_of_block : block -> Fault.kind option

val render : t -> string
(** Emit a complete, self-contained KC source: extern mini-header,
    exactly the globals the blocks reference, op functions, tables,
    regular functions in index order, and a [main] driving them all. *)

val line_count : t -> int
(** Lines of the rendered source (the shrinker's size metric). *)

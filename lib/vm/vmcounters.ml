(* Domain-safe named counters.

   A counter set hands every domain its own [(string, int ref)]
   Hashtbl through a DLS key; tables register themselves under a mutex
   the first time a domain touches the set, and stay registered after
   the domain dies so late merges still see its counts. Only the
   owning domain ever mutates its table, so the structural corruption
   a shared Hashtbl risks under concurrent [replace] cannot happen;
   the refs a closure captured keep counting from whichever domain
   runs it (a program compiled and executed on one domain — the fuzz
   worker pattern — counts exactly).

   [table] and [reset] walk every registered table; they are meant to
   run while worker domains are quiescent (Par joins its domains
   before returning, so the usual snapshot points qualify). *)

type tbl = (string, int ref) Hashtbl.t

type t = { lock : Mutex.t; all : tbl list ref; key : tbl Domain.DLS.key }

let create () =
  let lock = Mutex.create () in
  let all = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let t : tbl = Hashtbl.create 32 in
        Mutex.lock lock;
        all := t :: !all;
        Mutex.unlock lock;
        t)
  in
  { lock; all; key }

let counter (c : t) (name : string) : int ref =
  let t = Domain.DLS.get c.key in
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t name r;
      r

let add (c : t) (name : string) (n : int) =
  let r = counter c name in
  r := !r + n

let bump (c : t) (name : string) = add c name 1

let registered (c : t) : tbl list =
  Mutex.lock c.lock;
  let ts = !(c.all) in
  Mutex.unlock c.lock;
  ts

(* Merged view: counts summed by name across every domain's table,
   zero rows dropped, sorted by count descending then name. *)
let table (c : t) : (string * int) list =
  let merged : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun name r ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt merged name) in
          Hashtbl.replace merged name (prev + !r))
        t)
    (registered c);
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) merged []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (na, a) (nb, b) -> if a <> b then compare b a else compare na nb)

let reset (c : t) = List.iter Hashtbl.reset (registered c)

let render ~title (c : t) : string =
  let rows = table c in
  if rows = [] then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf (title ^ "\n");
    List.iter (fun (name, n) -> Buffer.add_string buf (Printf.sprintf "  %-24s %12d\n" name n)) rows;
    Buffer.contents buf
  end

(** The artifact graph: the engine's incremental-computation core.

    Every expensive artifact is a node keyed by (name x param) that
    records the content hash of its direct inputs at build time, its
    declared dependency keys with their build stamps, and its cached
    value. {!get} serves the cache while the hash still matches and no
    dependency has been rebuilt since; {!invalidate} drops a key plus
    everything downstream along the declared edges. Build / hit /
    invalidation counters and build seconds are owned by the graph and
    aggregated per artifact name.

    Single-domain, like the {!Context} that owns it; parallel drivers
    keep one graph per worker and aggregate with {!merge}. *)

type t

type key = { name : string; param : string }

val key : ?param:string -> string -> key

(** Typed storage for one artifact family. Allocate one slot per
    family statically (e.g. one for call graphs, one for CFGs); the
    slot is how {!get} recovers the value's type from the store. *)
type 'a slot

val slot : unit -> 'a slot

val create : unit -> t

(** [get g slot ~name ?param ?deps ~fp build] returns the cached value
    for (name, param) if its recorded input hash equals [fp] and every
    key in [deps] still has the stamp it had when the node was built
    (a cache hit); otherwise runs [build] and stores the result with
    the declared edges (counted as a build, plus an invalidation if a
    stale node was replaced). [deps] should already be fresh when
    [get] is called — context getters fetch their inputs first. *)
val get :
  t -> 'a slot -> name:string -> ?param:string -> ?deps:key list -> fp:string ->
  (unit -> 'a) -> 'a

val mem : t -> key -> bool

(** Drop [key] and all transitive dependents along the declared
    edges; returns how many nodes were dropped. Each drop counts as an
    invalidation for its artifact name. *)
val invalidate : t -> key -> int

(** Drop every node (the whole program changed shape). *)
val invalidate_all : t -> int

(** Observability: per-artifact-name sums. [builds]/[hits]/
    [invalidations] are deterministic; [seconds] is wall clock. *)
type stat = {
  artifact : string;
  builds : int;
  hits : int;
  invalidations : int;
  seconds : float;
}

val stats : t -> stat list
(** Sorted by artifact name. *)

val merge : stat list list -> stat list
(** Fold per-worker stat lists into per-artifact sums, sorted by
    artifact name — deterministic regardless of worker scheduling. *)

val delta : before:stat list -> stat list -> stat list
(** What one request paid: [after - before], zero rows dropped. *)

val total_builds : stat list -> int
val total_hits : stat list -> int
val total_invalidations : stat list -> int

(** Bounded recency store keyed by program id: `ivy serve` keeps warm
    contexts in one of these, evicting the least recently used program
    at capacity. *)
module Lru : sig
  type 'a t

  val create : capacity:int -> 'a t
  val size : 'a t -> int
  val capacity : 'a t -> int
  val evictions : 'a t -> int
  val mem : 'a t -> string -> bool

  val find : 'a t -> string -> 'a option
  (** Bumps recency on hit. *)

  val add : 'a t -> string -> 'a -> (string * 'a) option
  (** Insert or refresh; returns the evicted binding, if any. *)

  val remove : 'a t -> string -> unit
  val keys : 'a t -> string list
  val fold : (string -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end

(* Dedicated locksafe suite (previously only exercised through
   test_extensions.ml): lock-order inversion and the irq-spinlock
   invariant, positive and clean, plus the engine-level diagnostic
   contract (`ivy check` reports a deadlock as an Error). *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   long spin_lock_irqsave(long *l);\n\
   void spin_unlock_irqrestore(long *l, long flags);\n\
   int request_irq(int irq, int (*handler)(int));\n"

let p src = preamble ^ src

(* ---- positive: bugs the analysis must report ---- *)

let test_inversion_flagged () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long la;\nlong lb;\n\
             int one(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); return 0; }\n\
             int two(void) { spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb); return 0; }"))
  in
  Alcotest.(check (list (pair string string))) "AB/BA pair reported"
    [ ("la", "lb") ] r.Locksafe.deadlock_cycles

let test_same_function_inversion_flagged () =
  (* both orders inside a single function body *)
  let r =
    Locksafe.analyze
      (parse
         (p
            "long la;\nlong lb;\n\
             int seq(void) {\n\
             \  spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la);\n\
             \  spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb);\n\
             \  return 0; }"))
  in
  Alcotest.(check (list (pair string string))) "sequential inversion reported"
    [ ("la", "lb") ] r.Locksafe.deadlock_cycles

let test_irq_unsafe_flagged () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long dl;\n\
             int handler(int irq) { spin_lock(&dl); spin_unlock(&dl); return 0; }\n\
             int setup(void) { request_irq(1, handler); return 0; }\n\
             int proc(void) { spin_lock(&dl); spin_unlock(&dl); return 0; }"))
  in
  Alcotest.(check bool) "plain spin_lock of an irq lock reported" true
    (List.exists (fun (l, _) -> l = "dl") r.Locksafe.irq_unsafe)

(* ---- clean: correct locking draws no report ---- *)

let test_consistent_order_clean () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long la;\nlong lb;\n\
             int one(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); return 0; }\n\
             int two(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); return 0; }"))
  in
  Alcotest.(check int) "no deadlock pairs" 0 (List.length r.Locksafe.deadlock_cycles);
  Alcotest.(check int) "no irq-unsafe acquires" 0 (List.length r.Locksafe.irq_unsafe)

let test_irqsave_clean () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long dl;\n\
             int handler(int irq) { spin_lock(&dl); spin_unlock(&dl); return 0; }\n\
             int setup(void) { request_irq(1, handler); return 0; }\n\
             int proc(void) { long f = spin_lock_irqsave(&dl); spin_unlock_irqrestore(&dl, f); return 0; }"))
  in
  Alcotest.(check int) "irqsave acquire not reported" 0
    (List.length (List.filter (fun (_, (a : Locksafe.acquire)) -> not a.Locksafe.a_in_irq) r.Locksafe.irq_unsafe))

(* ---- engine contract: severity and wording of the diag ---- *)

let test_engine_diag_is_error () =
  let prog =
    parse
      (p
         "long la;\nlong lb;\n\
          int one(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); return 0; }\n\
          int two(void) { spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb); return 0; }")
  in
  let diags = Ivy.Checks.run_all ~only:[ "locksafe" ] (Engine.Context.create prog) in
  let ds = List.assoc "locksafe" diags in
  Alcotest.(check bool) "deadlock surfaces as an Error diag" true
    (List.exists
       (fun (d : Engine.Diag.t) ->
         d.Engine.Diag.severity = Engine.Diag.Error
         && d.Engine.Diag.analysis = "locksafe")
       ds)

let () =
  Alcotest.run "locksafe"
    [
      ( "positive",
        [
          Alcotest.test_case "cross-function inversion" `Quick test_inversion_flagged;
          Alcotest.test_case "same-function inversion" `Quick test_same_function_inversion_flagged;
          Alcotest.test_case "irq-unsafe acquire" `Quick test_irq_unsafe_flagged;
        ] );
      ( "clean",
        [
          Alcotest.test_case "consistent order" `Quick test_consistent_order_clean;
          Alcotest.test_case "irqsave" `Quick test_irqsave_clean;
        ] );
      ("engine", [ Alcotest.test_case "error severity" `Quick test_engine_diag_is_error ]);
    ]

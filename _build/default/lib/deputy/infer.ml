(* Annotation inference (paper §3.2: "Some of this information was
   generated manually ... while other properties were inferred by our
   tools").

   Two inference heuristics over un-annotated pointer parameters:

   - count inference: an unannotated pointer parameter [p] indexed as
     [p[i]] inside a loop guarded by [i < n], with [n] an integer
     parameter of the same function, suggests [p : __count(n)];
   - opt inference: a parameter compared against null before use
     suggests [__opt].

   Suggestions are exactly that — the programmer reviews them (and the
   type checker re-checks them once written, since annotations are
   untrusted). They feed the annotation database with provenance
   "deputy-infer". *)

module I = Kc.Ir

type suggestion = {
  sg_fn : string;
  sg_param : string;
  sg_annot : string; (* "__count(n)" or "__opt" *)
}

(* Unannotated pointer parameters of a function. *)
let plain_ptr_params (fd : I.fundec) : I.varinfo list =
  List.filter
    (fun (v : I.varinfo) ->
      match v.I.vty with
      | I.Tptr (_, a) ->
          a.I.a_count = None && (not a.I.a_nullterm) && (not a.I.a_opt) && not a.I.a_trusted
      | _ -> false)
    fd.I.sformals

let int_params (fd : I.fundec) : I.varinfo list =
  List.filter (fun (v : I.varinfo) -> I.is_integral v.I.vty) fd.I.sformals

(* Does [e] contain a deref of [p] at index [i]? *)
let derefs_at (p : I.varinfo) (i : I.varinfo) (e : I.exp) : bool =
  I.fold_exp
    (fun acc sub ->
      acc
      ||
      match sub.I.e with
      | I.Elval (I.Lmem ptr, _) -> (
          let base, idx = Annot.split_base ptr in
          match (base.I.e, (Annot.strip_widening idx).I.e) with
          | I.Elval (I.Lvar bp, []), I.Elval (I.Lvar iv, []) ->
              bp.I.vid = p.I.vid && iv.I.vid = i.I.vid
          | _ -> false)
      | _ -> false)
    false e

(* Loop guards of shape (i < n) with both sides stable variables. *)
let guard_pair (cond : I.exp) : (I.varinfo * I.varinfo) option =
  match (Annot.strip_widening cond).I.e with
  | I.Ebinop (Kc.Ast.Lt, l, r) -> (
      match (Facts.as_stable_var l, Facts.as_stable_var r) with
      | Some i, Some n -> Some (i, n)
      | _ -> None)
  | _ -> None

let infer_counts (fd : I.fundec) : suggestion list =
  let ptr_params = plain_ptr_params fd in
  let n_params = int_params fd in
  if ptr_params = [] || n_params = [] then []
  else begin
    let found = ref [] in
    let note p n =
      let s =
        { sg_fn = fd.I.fname; sg_param = p.I.vname; sg_annot = Printf.sprintf "__count(%s)" n.I.vname }
      in
      if not (List.mem s !found) then found := s :: !found
    in
    let rec walk (b : I.block) =
      List.iter
        (fun (s : I.stmt) ->
          match s.I.sk with
          | I.Swhile (cond, body, step) ->
              (match guard_pair cond with
              | Some (i, n) when List.exists (fun (v : I.varinfo) -> v.I.vid = n.I.vid) n_params
                ->
                  (* Look for p[i] in the loop body. *)
                  List.iter
                    (fun p ->
                      let hits = ref false in
                      I.iter_instrs
                        (fun instr ->
                          List.iter
                            (fun e -> if derefs_at p i e then hits := true)
                            (I.exps_of_instr instr);
                          match I.lval_of_instr instr with
                          | Some (I.Lmem ptr, _) ->
                              if derefs_at p i (I.mk_exp (I.Elval (I.Lmem ptr, [])) I.int_type)
                              then hits := true
                          | _ -> ())
                        body;
                      if !hits then note p n)
                    ptr_params
              | _ -> ());
              walk body;
              walk step
          | I.Sif (_, b1, b2) ->
              walk b1;
              walk b2
          | I.Sdowhile (b1, _) -> walk b1
          | I.Sswitch (_, cases) -> List.iter (fun (c : I.case) -> walk c.I.cbody) cases
          | I.Sblock b1 | I.Sdelayed b1 | I.Strusted b1 -> walk b1
          | I.Sinstr _ | I.Sbreak | I.Scontinue | I.Sreturn _ -> ())
        b
    in
    walk fd.I.fbody;
    List.rev !found
  end

(* A parameter tested against null suggests __opt. *)
let infer_opts (fd : I.fundec) : suggestion list =
  let ptr_params = plain_ptr_params fd in
  if ptr_params = [] then []
  else begin
    let found = ref [] in
    I.iter_stmts
      (fun s ->
        match s.I.sk with
        | I.Sif (cond, _, _) ->
            List.iter
              (fun (p : I.varinfo) ->
                let is_null_test =
                  I.fold_exp
                    (fun acc sub ->
                      acc
                      ||
                      match sub.I.e with
                      | I.Ebinop ((Kc.Ast.Eq | Kc.Ast.Ne), l, r) -> (
                          match (Facts.as_stable_var l, Annot.const_fold r) with
                          | Some v, Some 0L -> v.I.vid = p.I.vid
                          | _ -> (
                              match (Annot.const_fold l, Facts.as_stable_var r) with
                              | Some 0L, Some v -> v.I.vid = p.I.vid
                              | _ -> false))
                      | _ -> false)
                    false cond
                in
                if is_null_test then begin
                  let s = { sg_fn = fd.I.fname; sg_param = p.I.vname; sg_annot = "__opt" } in
                  if not (List.mem s !found) then found := s :: !found
                end)
              ptr_params
        | _ -> ())
      fd.I.fbody;
    List.rev !found
  end

(* All suggestions for a program. *)
let suggest (prog : I.program) : suggestion list =
  List.concat_map (fun fd -> infer_counts fd @ infer_opts fd) prog.I.funcs

let pp_suggestion fmt (s : suggestion) =
  Format.fprintf fmt "%s: parameter %s could be annotated %s" s.sg_fn s.sg_param s.sg_annot

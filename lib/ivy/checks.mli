(** The engine's analysis registry: the six whole-program checkers
    ([blockstop], [locksafe], [stackcheck], [errcheck], [userck],
    [absint]) wrapped as {!Engine.Analysis.S} implementations that
    share one {!Engine.Context.t} — the call graph, points-to facts
    and interval summaries are built once for the whole batch — and
    report unified {!Engine.Diag.t} diagnostics. *)

val blockstop : Engine.Analysis.t
val locksafe : Engine.Analysis.t
val stackcheck : Engine.Analysis.t
val errcheck : Engine.Analysis.t
val userck : Engine.Analysis.t

(** Interval abstract interpretation + static discharge of Deputy
    checks; reports are informational (discharge rate, per-function
    fixpoint iterations and widening points). *)
val absint : Engine.Analysis.t

(** Registration order (also the default run order). *)
val all : Engine.Analysis.t list

val find : string -> Engine.Analysis.t option

exception Unknown_analysis of string

(** Run the named analyses (default: all) over one shared context.
    Raises {!Unknown_analysis} for a name not in the registry. *)
val run_all :
  ?only:string list -> Engine.Context.t -> (string * Engine.Diag.t list) list

(** Flatten a run's results into one sorted, deduplicated list. *)
val diags : (string * Engine.Diag.t list) list -> Engine.Diag.t list

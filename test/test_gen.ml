(* The fuzz subsystem's own tests: the generator emits deterministic,
   well-typed, analysis-silent programs; the injector plants exactly
   one labelled fault; the differential oracle credits every fault
   kind and stays quiet on clean cases; the shrinker converges to a
   small repro while preserving the predicate. *)

let seeds n base = List.init n (fun i -> Gen.Rng.mix base i)

(* ---- rng ---- *)

let test_rng_determinism () =
  let a = Gen.Rng.create 7 and b = Gen.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gen.Rng.next64 a) (Gen.Rng.next64 b)
  done;
  let c = Gen.Rng.create 8 in
  Alcotest.(check bool) "different seed, different stream" true
    (Gen.Rng.next64 a <> Gen.Rng.next64 c)

let test_rng_bounds () =
  let r = Gen.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Gen.Rng.int r 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7);
    let w = Gen.Rng.range r 2 6 in
    Alcotest.(check bool) "2 <= w <= 6" true (w >= 2 && w <= 6)
  done

(* ---- generator ---- *)

let test_render_deterministic () =
  List.iter
    (fun s ->
      let a = Gen.Prog.render (Gen.Generate.clean s) in
      let b = Gen.Prog.render (Gen.Generate.clean s) in
      Alcotest.(check string) (Printf.sprintf "seed %d renders identically" s) a b)
    (seeds 10 11)

let test_generated_well_typed () =
  List.iter
    (fun s ->
      let src = Gen.Prog.render (Gen.Generate.clean s) in
      match Kc.Typecheck.check_sources [ ("gen.kc", src) ] with
      | _ -> ()
      | exception e ->
          Alcotest.failf "seed %d does not typecheck: %s\n%s" s (Printexc.to_string e) src)
    (seeds 30 23)

let test_clean_programs_pass_oracle () =
  List.iter
    (fun s ->
      let p = Gen.Generate.clean s in
      let v = Gen.Oracle.check p in
      match v.Gen.Oracle.violations with
      | [] -> ()
      | vs ->
          Alcotest.failf "clean seed %d: %s" s
            (String.concat "; " (List.map Gen.Oracle.violation_to_string vs)))
    (seeds 12 37)

(* ---- injector + oracle ---- *)

let test_injector_labels () =
  List.iter
    (fun kind ->
      let rng = Gen.Rng.create 5 in
      let p = Gen.Inject.plant rng kind (Gen.Generate.clean 99) in
      match p.Gen.Prog.faults with
      | [ (k, fn) ] ->
          Alcotest.(check string) "label kind" (Gen.Fault.to_string kind) (Gen.Fault.to_string k);
          Alcotest.(check bool) "host is a generated function" true
            (String.length fn > 1 && fn.[0] = 'f')
      | fs -> Alcotest.failf "expected one label, got %d" (List.length fs))
    Gen.Fault.all

let test_every_fault_kind_detected () =
  List.iter
    (fun kind ->
      List.iter
        (fun s ->
          let rng = Gen.Rng.create (s + 1) in
          let p = Gen.Inject.plant rng kind (Gen.Generate.clean s) in
          let v = Gen.Oracle.check p in
          (match v.Gen.Oracle.violations with
          | [] -> ()
          | vs ->
              Alcotest.failf "%s seed %d: %s" (Gen.Fault.to_string kind) s
                (String.concat "; " (List.map Gen.Oracle.violation_to_string vs)));
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d credited" (Gen.Fault.to_string kind) s)
            1
            (List.length v.Gen.Oracle.detected))
        (seeds 3 (100 + Hashtbl.hash (Gen.Fault.to_string kind))))
    Gen.Fault.all

(* The mixed-width cast shape specifically: its guard is always true
   at runtime, so the negative index must be caught by the residual
   lower-bound check in the deputy run, and the deputy+absint run must
   behave identically (any drift is a discharge-soundness bug in the
   cast-stripping logic). *)
let test_oob_cast_shape_detected () =
  List.iter
    (fun delta ->
      let p = Gen.Generate.clean (5000 + delta) in
      let host = List.hd p.Gen.Prog.funcs in
      let funcs =
        List.map
          (fun (f : Gen.Prog.func) ->
            if f.Gen.Prog.fid = host.Gen.Prog.fid then
              { f with Gen.Prog.blocks = f.Gen.Prog.blocks @ [ Gen.Prog.F_oob_cast { delta } ] }
            else f)
          p.Gen.Prog.funcs
      in
      let p =
        {
          p with
          Gen.Prog.funcs;
          Gen.Prog.faults = [ (Gen.Fault.Oob_write, Gen.Prog.fname host.Gen.Prog.fid) ];
        }
      in
      let v = Gen.Oracle.check p in
      (match v.Gen.Oracle.violations with
      | [] -> ()
      | vs ->
          Alcotest.failf "delta %d: %s" delta
            (String.concat "; " (List.map Gen.Oracle.violation_to_string vs)));
      Alcotest.(check int)
        (Printf.sprintf "delta %d credited" delta)
        1
        (List.length v.Gen.Oracle.detected))
    [ 8; 9; 10; 11; 12 ]

(* ---- campaign driver ---- *)

let test_campaign_clean () =
  let s = Gen.Fuzz.run ~seed:7 ~count:24 () in
  Alcotest.(check int) "no failures" 0 (List.length s.Gen.Fuzz.s_failures);
  Alcotest.(check int) "clean quota" 6 s.Gen.Fuzz.s_clean;
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Gen.Fault.to_string k ^ " fully detected")
        (List.assoc k s.Gen.Fuzz.s_injected)
        (List.assoc k s.Gen.Fuzz.s_detected))
    Gen.Fault.all

let test_campaign_deterministic () =
  let a = Gen.Fuzz.run ~seed:5 ~count:12 () in
  let b = Gen.Fuzz.run ~seed:5 ~count:12 () in
  Alcotest.(check (list (pair string int)))
    "same injected census"
    (List.map (fun (k, n) -> (Gen.Fault.to_string k, n)) a.Gen.Fuzz.s_injected)
    (List.map (fun (k, n) -> (Gen.Fault.to_string k, n)) b.Gen.Fuzz.s_injected)

(* ---- shrinker ---- *)

let test_shrink_small_repro () =
  (* Plant an atomic-block fault, then minimize while the oracle still
     credits it: the repro must stay a valid counterexample-style case
     and fit the issue's 30-line budget. *)
  let rng = Gen.Rng.create 2 in
  let p = Gen.Inject.plant rng Gen.Fault.Atomic_block (Gen.Generate.clean 1234) in
  let detects q =
    List.exists
      (fun (k, _) -> k = Gen.Fault.Atomic_block)
      (Gen.Oracle.check q).Gen.Oracle.detected
  in
  Alcotest.(check bool) "fault detected before shrinking" true (detects p);
  let small = Gen.Shrink.minimize ~check:detects p in
  Alcotest.(check bool) "fault still detected after shrinking" true (detects small);
  let lines = Gen.Prog.line_count small in
  Alcotest.(check bool)
    (Printf.sprintf "repro is small (%d lines <= 30)" lines)
    true (lines <= 30);
  Alcotest.(check bool) "shrinking made progress" true
    (lines < Gen.Prog.line_count p
    || List.length small.Gen.Prog.funcs <= List.length p.Gen.Prog.funcs)

let test_shrink_keeps_predicate_sound () =
  (* A predicate nothing satisfies must return the input unchanged. *)
  let p = Gen.Generate.clean 77 in
  let q = Gen.Shrink.minimize ~check:(fun _ -> false) p in
  Alcotest.(check string) "no-op on unsatisfiable predicate" (Gen.Prog.render p)
    (Gen.Prog.render q)

let () =
  Alcotest.run "gen"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
        ] );
      ( "generator",
        [
          Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
          Alcotest.test_case "well-typed" `Quick test_generated_well_typed;
          Alcotest.test_case "clean passes oracle" `Slow test_clean_programs_pass_oracle;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "injector labels" `Quick test_injector_labels;
          Alcotest.test_case "every kind detected" `Slow test_every_fault_kind_detected;
          Alcotest.test_case "oob-cast shape detected" `Slow test_oob_cast_shape_detected;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "small campaign clean" `Slow test_campaign_clean;
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "small repro" `Slow test_shrink_small_repro;
          Alcotest.test_case "unsatisfiable predicate" `Quick test_shrink_keeps_predicate_sound;
        ] );
    ]

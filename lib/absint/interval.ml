(* Intervals over extended 64-bit integers.

   An interval abstracts the set of raw int64 representations a value
   may take (the VM norms every operation result to its static type's
   width, so a variable's representation always fits its type range —
   see Transfer.clamp). Arithmetic on bounds saturates: when the exact
   bound overflows int64 we drop to -oo / +oo, which both keeps the
   transfer sound and forces the caller's type-range clamp to take the
   conservative branch on any possible wrap. *)

type bound = Ninf | Fin of int64 | Pinf
type t = Bot | Iv of bound * bound (* invariant: lo <= hi *)

let bottom = Bot
let top = Iv (Ninf, Pinf)
let const n = Iv (Fin n, Fin n)
let of_bounds lo hi = if lo > hi then Bot else Iv (Fin lo, Fin hi)

let bound_le a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | Pinf, _ | _, Ninf -> false
  | Fin x, Fin y -> x <= y

let bound_min a b = if bound_le a b then a else b
let bound_max a b = if bound_le a b then b else a

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Iv (l1, h1), Iv (l2, h2) -> l1 = l2 && h1 = h2
  | _ -> false

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Iv (l1, h1), Iv (l2, h2) -> bound_le l2 l1 && bound_le h1 h2

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv (l1, h1), Iv (l2, h2) -> Iv (bound_min l1 l2, bound_max h1 h2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) ->
      let lo = bound_max l1 l2 and hi = bound_min h1 h2 in
      if bound_le lo hi then Iv (lo, hi) else Bot

(* Standard interval widening: any bound that grew jumps to infinity,
   so ascending chains stabilize in at most two steps per side. *)
let widen old next =
  match (old, next) with
  | Bot, x -> x
  | x, Bot -> x
  | Iv (l1, h1), Iv (l2, h2) ->
      let lo = if bound_le l1 l2 then l1 else Ninf in
      let hi = if bound_le h2 h1 then h1 else Pinf in
      Iv (lo, hi)

(* Standard narrowing: only refine the bounds widening blew to
   infinity, so descending chains are finite too. *)
let narrow old next =
  match (old, next) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) ->
      let lo = if l1 = Ninf then l2 else l1 in
      let hi = if h1 = Pinf then h2 else h1 in
      if bound_le lo hi then Iv (lo, hi) else Bot

let mem n = function
  | Bot -> false
  | Iv (lo, hi) -> bound_le lo (Fin n) && bound_le (Fin n) hi

let is_nonneg = function Bot -> true | Iv (lo, _) -> bound_le (Fin 0L) lo
let contains_zero iv = mem 0L iv

(* --- saturating bound arithmetic ---------------------------------- *)

(* Degenerate pairs like (Pinf, Pinf) would mean "every value above
   max_int" — unrepresentable here, and the VM norms such results
   anyway. [mk] maps them to top so they never escape. *)
let mk lo hi = match (lo, hi) with Pinf, _ | _, Ninf -> top | _ -> Iv (lo, hi)

let sat_add a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> Pinf (* degenerate; caller's [mk] handles it *)
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y ->
      let s = Int64.add x y in
      (* overflow iff operands share a sign the sum does not *)
      if x >= 0L && y >= 0L && s < 0L then Pinf
      else if x < 0L && y < 0L && s >= 0L then Ninf
      else Fin s

let sat_neg = function
  | Ninf -> Pinf
  | Pinf -> Ninf
  | Fin x -> if x = Int64.min_int then Pinf else Fin (Int64.neg x)

let sat_sub a b = match b with Ninf -> sat_add a Pinf | Pinf -> sat_add a Ninf | Fin _ -> sat_add a (sat_neg b)

let sat_mul a b =
  let sign = function Ninf -> -1 | Pinf -> 1 | Fin x -> compare x 0L in
  match (a, b) with
  | Fin x, Fin y ->
      if x = 0L || y = 0L then Fin 0L
      else if x = Int64.min_int || y = Int64.min_int then
        (* min_int * anything but 1 overflows; the division check below
           would miss min_int * -1 (it wraps to itself). *)
        if x = 1L || y = 1L then Fin Int64.min_int
        else if sign a * sign b > 0 then Pinf
        else Ninf
      else
        let p = Int64.mul x y in
        if Int64.div p y <> x then if sign a * sign b > 0 then Pinf else Ninf else Fin p
  | _ ->
      let s = sign a * sign b in
      if s > 0 then Pinf
      else if s < 0 then Ninf
      else Fin 0L

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) -> mk (sat_add l1 l2) (sat_add h1 h2)

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) -> mk (sat_sub l1 h2) (sat_sub h1 l2)

let neg = function
  | Bot -> Bot
  | Iv (lo, hi) -> mk (sat_neg hi) (sat_neg lo)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) ->
      let products = [ sat_mul l1 l2; sat_mul l1 h2; sat_mul h1 l2; sat_mul h1 h2 ] in
      let lo = List.fold_left bound_min Pinf products in
      let hi = List.fold_left bound_max Ninf products in
      mk lo hi

(* Division/modulo by a positive constant only: that covers the index
   arithmetic Deputy checks care about without the full sign case
   analysis. The VM traps on a zero divisor before any result exists,
   so requiring k > 0 is not a soundness hole, just imprecision. *)
let div_pos_const a k =
  if k <= 0L then top
  else
    match a with
    | Bot -> Bot
    | Iv (lo, hi) ->
        let d = function
          | Ninf -> Ninf
          | Pinf -> Pinf
          | Fin x -> Fin (Int64.div x k) (* rounds toward zero on both signs *)
        in
        Iv (d lo, d hi)

let rem_pos_const a k =
  if k <= 0L then top
  else
    match a with
    | Bot -> Bot
    | Iv _ when is_nonneg a -> Iv (Fin 0L, Fin (Int64.sub k 1L))
    | Iv _ -> Iv (Fin (Int64.sub 1L k), Fin (Int64.sub k 1L))

(* If either operand is nonnegative, x & y keeps only bits of that
   operand, so the result is in [0, that operand's max] (sign bit
   clear, subset of its bits) — regardless of the other side's sign.
   With both nonnegative, both caps apply. *)
let band a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (_, h1), Iv (_, h2) ->
      if is_nonneg a && is_nonneg b then Iv (Fin 0L, bound_min h1 h2)
      else if is_nonneg a then Iv (Fin 0L, h1)
      else if is_nonneg b then Iv (Fin 0L, h2)
      else top

(* next_pow2_mask m: smallest 2^k - 1 >= m. *)
let next_pow2_mask m =
  let rec go mask = if mask >= m && mask >= 0L then mask else go (Int64.add (Int64.mul mask 2L) 1L) in
  go 1L

let bor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (_, Fin h1), Iv (_, Fin h2) when is_nonneg a && is_nonneg b ->
      Iv (Fin 0L, Fin (next_pow2_mask (if h1 > h2 then h1 else h2)))
  | _ -> top

let bxor = bor (* same upper-bound argument for nonneg operands *)

let shl_const a k =
  if k < 0L || k > 62L then top else mul a (const (Int64.shift_left 1L (Int64.to_int k)))

let shr_const a k =
  if k < 0L || k > 63L then top
  else
    match a with
    | Bot -> Bot
    | Iv (lo, hi) ->
        let s = function
          | Ninf -> Ninf
          | Pinf -> Pinf
          | Fin x -> Fin (Int64.shift_right x (Int64.to_int k))
        in
        Iv (s lo, s hi)

let to_string = function
  | Bot -> "_|_"
  | Iv (lo, hi) ->
      let b = function Ninf -> "-oo" | Pinf -> "+oo" | Fin x -> Int64.to_string x in
      Printf.sprintf "[%s,%s]" (b lo) (b hi)

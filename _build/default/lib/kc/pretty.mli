(** Pretty-printing of the typed IR back to KC source.

    [print_program ~erase:true] demonstrates the paper's *erasure
    semantics*: annotations and analysis-inserted constructs strip
    away, leaving a plain KC program that compiles and behaves
    identically (see examples/erasure_demo.ml). *)

(** Print a whole program: struct definitions, function declarations,
    globals with initializers, then function definitions. The output
    re-parses with {!Typecheck.check_sources}. *)
val print_program : ?erase:bool -> Ir.program -> string

(** One-off rendering helpers for diagnostics and tests. *)

val exp_to_string : Ir.exp -> string
val lval_to_string : Ir.lval -> string

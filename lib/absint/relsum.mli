(** Relational (interface) summaries over the pointer-flow projection:
    per-function facts — currently [ret_nonnull] — computed by a small
    flow-sensitive must-non-null analysis of the statement tree,
    callees-first over the SCC condensation shared with {!Summary}.
    Reads only data serialized by [Engine.Fingerprint.ptrflow], so the
    engine artifact keyed on that projection stays warm across
    arithmetic-only edits. *)

val summarize_fn : Transfer.ifaces -> Kc.Ir.fundec -> Transfer.fn_iface
(** Summarize one function given its callees' interfaces. Exposed for
    tests. *)

val compute : ?jobs:int -> Kc.Ir.program -> Transfer.ifaces
(** Interfaces for every defined function; callees-first, recursive
    components degrade to no-claim. [jobs] parallelizes within an SCC
    level (jobs-invariant, like {!Summary.compute}). *)

val count_nonnull : Transfer.ifaces -> int
(** Number of functions with a positive [ret_nonnull] fact. *)

(* The common interface every analysis implements to run under the
   engine: a name (for [--only] selection), a one-line doc string, and
   a run function from the shared context to unified diagnostics.
   Implementations live next to their analyses (Ivy.Checks wraps the
   five libraries); the engine itself only defines the contract. *)

module type S = sig
  val name : string

  (** One line, shown by [ivy check --list]-style output. *)
  val doc : string

  (** Run over the shared context; artifacts must be obtained through
      {!Context} getters so they are built at most once per run. *)
  val run : Context.t -> Diag.t list
end

type t = (module S)

let name (module A : S) = A.name
let doc (module A : S) = A.doc
let run (module A : S) ctxt = Diag.sort (A.run ctxt)

(* Second-stage check discharge: replay each function's abstract
   fixpoint over its instructions and delete every Deputy-inserted
   Icheck the interval facts prove can never fire.

   Soundness: a check is removed only when, at its program point, the
   over-approximated abstract state admits no concrete state in which
   the check's predicate is false (or the point is unreachable, in
   which case the check never executes at all). The CFG shares the
   stmt tree's instr values physically, so removal is by physical
   identity — structurally equal checks at different points are
   treated independently. Runs after Deputy.Optimize, so everything
   the Facts pass discharges is already gone: the combined pipeline
   trivially subsumes Facts alone. *)

module I = Kc.Ir
module Cfg = Dataflow.Cfg

type fstat = {
  fname : string;
  seen : int; (* residual checks entering this pass *)
  proved : int; (* ... removed by the product domain *)
  proved_iv : int; (* ... by the interval component alone *)
  proved_rel : int; (* ... only with the zone's relational facts *)
  iterations : int;
  widen_points : int;
}

type stats = { fstats : fstat list }

let total f stats = List.fold_left (fun acc s -> acc + f s) 0 stats.fstats
let checks_seen = total (fun s -> s.seen)
let checks_proved = total (fun s -> s.proved)
let checks_proved_iv = total (fun s -> s.proved_iv)
let checks_proved_rel = total (fun s -> s.proved_rel)

let rate stats =
  let seen = checks_seen stats in
  if seen = 0 then 0.0 else 100.0 *. float_of_int (checks_proved stats) /. float_of_int seen

let count_checks (b : I.block) : int =
  let n = ref 0 in
  I.iter_instrs (fun i -> match i with I.Icheck _ -> incr n | _ -> ()) b;
  !n

(* Collect the checks provable at their program point by replaying the
   fixpoint through each node's instruction list, tagged with which
   component of the product proved them ({!Transfer.provable_why}
   tries the interval rule first, so [P_relational] counts only
   zone-exclusive proofs). *)
let provable_checks ~ifaces ~summaries (r : Solver.fresult) :
    (I.instr * Transfer.proof) list =
  let removable = ref [] in
  Array.iter
    (fun (node : Cfg.node) ->
      let env = ref r.Solver.before.(node.Cfg.nid) in
      List.iter
        (fun (i, _loc) ->
          (match i with
          | I.Icheck (ck, _) -> (
              match Transfer.provable_why !env ck with
              | Some p -> removable := (i, p) :: !removable
              | None -> ())
          | _ -> ());
          env := Transfer.instr ~ifaces summaries !env i)
        node.Cfg.instrs)
    r.Solver.cfg.Cfg.nodes;
  !removable

let rec filter_block removable (b : I.block) : I.block =
  List.filter_map (filter_stmt removable) b

and filter_stmt removable (s : I.stmt) : I.stmt option =
  match s.I.sk with
  | I.Sinstr (I.Icheck _ as i) when List.memq i removable -> None
  | I.Sinstr _ | I.Sbreak | I.Scontinue | I.Sreturn _ -> Some s
  | I.Sif (c, b1, b2) ->
      Some { s with I.sk = I.Sif (c, filter_block removable b1, filter_block removable b2) }
  | I.Swhile (c, body, step) ->
      Some
        { s with I.sk = I.Swhile (c, filter_block removable body, filter_block removable step) }
  | I.Sdowhile (body, c) -> Some { s with I.sk = I.Sdowhile (filter_block removable body, c) }
  | I.Sswitch (e, cases) ->
      Some
        {
          s with
          I.sk =
            I.Sswitch
              (e, List.map (fun c -> { c with I.cbody = filter_block removable c.I.cbody }) cases);
        }
  | I.Sblock b1 -> Some { s with I.sk = I.Sblock (filter_block removable b1) }
  | I.Sdelayed b1 -> Some { s with I.sk = I.Sdelayed (filter_block removable b1) }
  | I.Strusted b1 -> Some { s with I.sk = I.Strusted (filter_block removable b1) }

let discharge_fundec ?(ifaces = Transfer.no_ifaces) ~summaries (fd : I.fundec) : fstat =
  let seen = count_checks fd.I.fbody in
  let r = Solver.analyze ~summaries ~ifaces fd in
  let tagged = provable_checks ~ifaces ~summaries r in
  let removable = List.map fst tagged in
  if removable <> [] then fd.I.fbody <- filter_block removable fd.I.fbody;
  let count p = List.length (List.filter (fun (_, q) -> q = p) tagged) in
  {
    fname = fd.I.fname;
    seen;
    proved = List.length removable;
    proved_iv = count Transfer.P_interval;
    proved_rel = count Transfer.P_relational;
    iterations = r.Solver.iterations;
    widen_points = r.Solver.widen_points;
  }

(* Discharge over every defined function of an (already deputized and
   Facts-optimized) program, in place.  Under the product domain
   (default, see {!Domain}) the relational interface summaries are
   computed first and feed both the interval summaries and the
   per-function fixpoints. *)
let run ?summaries ?ifaces (prog : I.program) : stats =
  let ifaces =
    match ifaces with
    | Some i -> i
    | None -> if Domain.relational () then Relsum.compute prog else Transfer.no_ifaces
  in
  let summaries =
    match summaries with Some s -> s | None -> Summary.compute ~ifaces prog
  in
  {
    fstats =
      List.filter_map
        (fun fd -> if fd.I.fextern then None else Some (discharge_fundec ~ifaces ~summaries fd))
        prog.I.funcs;
  }

let render_stats (stats : stats) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %8s %8s %8s %8s\n" "function" "checks" "proved" "iters" "widen");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %8d %8d %8d %8d\n" s.fname s.seen s.proved s.iterations
           s.widen_points))
    stats.fstats;
  Buffer.add_string buf
    (Printf.sprintf
       "absint: proved %d of %d residual checks (%.1f%% discharge rate; intervals %d + \
        relational %d)\n"
       (checks_proved stats) (checks_seen stats) (rate stats) (checks_proved_iv stats)
       (checks_proved_rel stats));
  Buffer.contents buf

lib/vm/cost.ml:

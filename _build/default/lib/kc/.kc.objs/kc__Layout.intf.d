lib/kc/layout.mli: Ast Ir

(* drivers/char.kc — the classic memory character devices (null, zero,
   counter) behind a misc-device registration table: one more
   file_operations-style dispatch surface, all process-context. *)

let source =
  {kc|
// ---------------------------------------------------------------
// drivers/char.kc: null / zero / counter devices
// ---------------------------------------------------------------

enum misc_consts { NR_MISC = 8 };

struct miscdev {
  char name[16];
  int minor;
  int registered;
  ssize_t (*misc_read)(char *buf, int n);
  ssize_t (*misc_write)(char *buf, int n);
};

struct miscdev misc_table[8];
long null_bytes_written;
long counter_state;

ssize_t null_read(char *buf, int n) {
  return 0; // EOF
}

ssize_t null_write(char *buf, int n) {
  null_bytes_written = null_bytes_written + n;
  return n;
}

ssize_t zero_read(char *buf, int n) {
  __trusted {
    memset(buf, 0, n);
  }
  return n;
}

ssize_t counter_read(char *buf, int n) {
  ssize_t r;
  __trusted {
    char * __count(n) cbuf = (char * __count(n))buf;
    int i;
    for (i = 0; i < n; i++) {
      counter_state = counter_state + 1;
      cbuf[i] = counter_state & 255;
    }
    r = n;
  }
  return r;
}

int misc_register(char * __nullterm name, int minor,
                  ssize_t (*rd)(char *buf, int n),
                  ssize_t (*wr)(char *buf, int n)) {
  int i;
  for (i = 0; i < 8; i++) {
    if (misc_table[i].registered == 0) {
      misc_table[i].registered = 1;
      misc_table[i].minor = minor;
      kstrncpy(misc_table[i].name, 16, name);
      misc_table[i].misc_read = rd;
      misc_table[i].misc_write = wr;
      return i;
    }
  }
  return -EBUSY;
}

ssize_t misc_dev_read(int minor, char * __count(n) buf, int n) {
  int i;
  for (i = 0; i < 8; i++) {
    if (misc_table[i].registered) {
      if (misc_table[i].minor == minor) {
        ssize_t (* __opt fn)(char *bx, int nx) = misc_table[i].misc_read;
        if (fn == 0) { return -EIO; }
        ssize_t r;
        __trusted {
          r = fn((char *)buf, n);
        }
        return r;
      }
    }
  }
  return -ENOENT;
}

ssize_t misc_dev_write(int minor, char * __count(n) buf, int n) {
  int i;
  for (i = 0; i < 8; i++) {
    if (misc_table[i].registered) {
      if (misc_table[i].minor == minor) {
        ssize_t (* __opt fn)(char *bx, int nx) = misc_table[i].misc_write;
        if (fn == 0) { return -EIO; }
        ssize_t r;
        __trusted {
          r = fn((char *)buf, n);
        }
        return r;
      }
    }
  }
  return -ENOENT;
}

void chrdev_init(void) {
  misc_register("null", 3, null_read, null_write);
  misc_register("zero", 5, zero_read, null_write);
  misc_register("counter", 7, counter_read, null_write);
}
|kc}

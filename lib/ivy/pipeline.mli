(** The Ivy pipeline: load the mini-kernel corpus (plus, optionally,
    the benchmark workloads), apply one of the instrumentation modes,
    boot it on the VM and run entry points under the deterministic
    cycle cost model.

    This is the main entry point for downstream users:

    {[
      let r = Ivy.Pipeline.booted Ivy.Pipeline.Deputy in
      let result, cycles = Ivy.Pipeline.run_entry r "wl_lat_udp" 50 in
      ...
    ]} *)

(** Instrumentation applied to the program before it runs. *)
type mode =
  | Base  (** no instrumentation *)
  | Deputy  (** type/memory-safety checks, statically optimized *)
  | Deputy_unoptimized  (** ablation: every generated check stays at run time *)
  | Deputy_absint
      (** Deputy plus the {!Absint.Discharge} second stage: interval
          facts remove further provably-redundant checks *)
  | Ccount of Vm.Cost.profile  (** refcounted free checking, UP or SMP cost profile *)
  | Ccount_refsafe of Vm.Cost.profile
      (** CCount with the {!Refsafe.Discharge} gate: statically
          unobservable counter updates are stripped before boot *)
  | Blockstop_guarded  (** the BlockStop runtime-check guards compiled in *)

type run = {
  mode : mode;
  prog : Kc.Ir.program;  (** the (possibly instrumented) program *)
  interp : Vm.Interp.t;  (** the booted interpreter *)
  deputy_report : Deputy.Dreport.report option;  (** present in Deputy modes *)
  absint_stats : Absint.Discharge.stats option;  (** present in Deputy_absint mode *)
  ccount_report : Ccount.Creport.report option;  (** present in Ccount modes *)
}

val mode_to_string : mode -> string

(** Build a fresh program + VM in the given mode. [workloads] (default
    true) appends the benchmark unit; [fixed_frees] (default true)
    selects the corpus variant after the paper's free fixes. *)
val prepare : ?workloads:bool -> ?fixed_frees:bool -> mode -> run

(** Run [start_kernel]. *)
val boot : run -> unit

(** Total cycles spent so far on this run's machine. *)
val cycles : run -> int

(** [run_entry r entry arg] calls the KC function [entry] with the
    integer argument [arg]; returns its result and the cycles spent
    inside the call. *)
val run_entry : run -> string -> int -> int64 * int

val free_census : run -> Vm.Machine.free_census

(** [prepare] followed by [boot]. *)
val booted : ?workloads:bool -> ?fixed_frees:bool -> mode -> run

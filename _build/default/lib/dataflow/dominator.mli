(** Dominators by the iterative bitset algorithm. *)

module IS = Worklist.Int_set

type t = {
  doms : IS.t array;  (** per node: its dominators, itself included *)
  idom : int option array;  (** immediate dominator *)
}

val compute : Cfg.t -> t

(** Does node [a] dominate node [b]? *)
val dominates : t -> int -> int -> bool

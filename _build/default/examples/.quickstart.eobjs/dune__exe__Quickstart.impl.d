examples/quickstart.ml: Deputy Format Kc List Printf String Vm

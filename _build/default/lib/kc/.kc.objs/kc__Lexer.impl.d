lib/kc/lexer.ml: Array Buffer Int64 List Loc Option Printf String Token

test/test_deputy.mli:

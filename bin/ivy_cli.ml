(* The ivy command-line tool: run the analyses and the paper's
   experiments over the bundled mini-kernel corpus or over user-given
   KC files.

     ivy boot [--mode MODE]        boot the kernel on the VM
     ivy run ENTRY [--iters N]     run a workload entry point
     ivy check [--only a,b]        all analyses over one shared context
     ivy serve [--watch DIR]       incremental analysis daemon (JSON-RPC)
     ivy rpc METHOD [FILE...]      talk to a running daemon
     ivy deputy [FILE...]          Deputy census (and static errors)
     ivy ccount [--profile P]      CCount free census after light use
     ivy blockstop [--guards]      BlockStop warnings
     ivy locksafe|stackcheck|errcheck
     ivy annotdb [-o FILE]         populate and dump the fact database
     ivy corpus [--erase]          corpus stats, or erased source
     ivy experiments [all|t1|e1|e2|e3|e4|e5|x1|x2|x3]
*)

open Cmdliner

let load_files files ~fixed_frees =
  match files with
  | [] -> Kernel.Workloads.load ~fixed_frees ~fresh:true ()
  | fs ->
      let sources =
        List.map
          (fun path ->
            let ic = open_in path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            (path, s))
          fs
      in
      Kc.Typecheck.check_sources sources

let handle_frontend_errors f =
  try f () with
  | Kc.Typecheck.Type_error (msg, loc) ->
      Printf.eprintf "type error: %s at %s\n" msg (Kc.Loc.to_string loc);
      exit 1
  | Kc.Parser.Error (msg, loc) ->
      Printf.eprintf "parse error: %s at %s\n" msg (Kc.Loc.to_string loc);
      exit 1
  | Kc.Lexer.Error (msg, loc) ->
      Printf.eprintf "lex error: %s at %s\n" msg (Kc.Loc.to_string loc);
      exit 1
  | Vm.Trap.Trap (k, msg) ->
      Printf.eprintf "TRAP [%s]: %s\n" (Vm.Trap.kind_to_string k) msg;
      exit 2

(* Shared arguments *)

let mode_arg =
  let parse = function
    | "base" -> Ok Ivy.Pipeline.Base
    | "deputy" -> Ok Ivy.Pipeline.Deputy
    | "deputy-unopt" -> Ok Ivy.Pipeline.Deputy_unoptimized
    | "deputy-absint" -> Ok Ivy.Pipeline.Deputy_absint
    | "ccount-up" -> Ok (Ivy.Pipeline.Ccount Vm.Cost.Up)
    | "ccount-smp" -> Ok (Ivy.Pipeline.Ccount Vm.Cost.Smp_p4)
    | "ccount-refsafe-up" -> Ok (Ivy.Pipeline.Ccount_refsafe Vm.Cost.Up)
    | "ccount-refsafe-smp" -> Ok (Ivy.Pipeline.Ccount_refsafe Vm.Cost.Smp_p4)
    | "blockstop-guarded" -> Ok Ivy.Pipeline.Blockstop_guarded
    | s -> Error (`Msg (Printf.sprintf "unknown mode %s" s))
  in
  let print fmt m = Format.pp_print_string fmt (Ivy.Pipeline.mode_to_string m) in
  Arg.conv (parse, print)

let mode_t =
  Arg.(
    value
    & opt mode_arg Ivy.Pipeline.Base
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Instrumentation mode: base, deputy, deputy-unopt, deputy-absint, ccount-up, \
              ccount-smp, ccount-refsafe-up, ccount-refsafe-smp, blockstop-guarded.")

let unfixed_t =
  Arg.(value & flag & info [ "unfixed" ] ~doc:"Use the corpus variant before the free fixes.")

let files_t = Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"KC source files.")

let jobs_t =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (default: the host's recommended domain count). Output is \
           byte-identical for every value of $(docv).")

(* ---- boot ---- *)

let boot_cmd =
  let run mode unfixed =
    handle_frontend_errors (fun () ->
        let r = Ivy.Pipeline.booted ~fixed_frees:(not unfixed) mode in
        List.iter print_endline (Vm.Machine.console_lines r.Ivy.Pipeline.interp.Vm.Interp.m);
        Printf.printf "[%s] booted in %d cycles\n"
          (Ivy.Pipeline.mode_to_string mode)
          (Ivy.Pipeline.cycles r);
        (match r.Ivy.Pipeline.deputy_report with
        | Some dr -> Format.printf "%a@." Deputy.Dreport.pp dr
        | None -> ());
        (match r.Ivy.Pipeline.absint_stats with
        | Some st -> print_string (Absint.Discharge.render_stats st)
        | None -> ());
        match r.Ivy.Pipeline.ccount_report with
        | Some cr ->
            Format.printf "%a@." Ccount.Creport.pp cr;
            Format.printf "%a@." Ccount.Creport.pp_census (Ivy.Pipeline.free_census r)
        | None -> ())
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot the mini-kernel on the VM.")
    Term.(const run $ mode_t $ unfixed_t)

(* ---- run ---- *)

let run_cmd =
  let entry_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"ENTRY") in
  let iters_t = Arg.(value & opt int 10 & info [ "iters"; "n" ] ~docv:"N") in
  let vm_stats_t =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Show compiled-VM optimizer statistics (superinstruction fusion and peephole site \
             counts) and, when IVY_VM_PROFILE=1, the opcode execution profile.")
  in
  let run mode entry iters vm_stats =
    handle_frontend_errors (fun () ->
        let r = Ivy.Pipeline.booted mode in
        let v, cycles = Ivy.Pipeline.run_entry r entry iters in
        Printf.printf "%s(%d) = %Ld in %d cycles [%s]\n" entry iters v cycles
          (Ivy.Pipeline.mode_to_string mode);
        if vm_stats then begin
          print_string (Vm.Compile.render_opt_stats ());
          print_string (Vm.Compile.render_profile ())
        end)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload entry point (e.g. wl_lat_udp).")
    Term.(const run $ mode_t $ entry_t $ iters_t $ vm_stats_t)

(* ---- deputy ---- *)

let deputy_cmd =
  let absint_t =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:
            "Also run the abstract-interpretation discharge stage on the result (the \
             interval-zone product domain by default; set IVY_ABSINT_DOMAIN=interval for the \
             interval-only ablation).")
  in
  let run files absint =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let report = Deputy.Dreport.deputize prog in
        Format.printf "%a@." Deputy.Dreport.pp report;
        if absint then begin
          let stats = Absint.Discharge.run prog in
          print_string (Absint.Discharge.render_stats stats)
        end;
        List.iter
          (fun (msg, loc) -> Printf.printf "static error: %s at %s\n" msg (Kc.Loc.to_string loc))
          report.Deputy.Dreport.static_errors;
        if report.Deputy.Dreport.static_errors <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "deputy" ~doc:"Type/memory-safety conversion census (paper §2.1).")
    Term.(const run $ files_t $ absint_t)

(* ---- ccount ---- *)

let ccount_cmd =
  let profile_t =
    Arg.(
      value & opt string "up"
      & info [ "profile" ] ~docv:"P" ~doc:"Cost profile: up or smp.")
  in
  let refsafe_t =
    Arg.(
      value & flag
      & info [ "refsafe" ]
          ~doc:
            "Run the static refcount analysis first and strip the counter updates it proves \
             unobservable; the census is unchanged, the counter-maintenance work is smaller.")
  in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"With --refsafe, show the per-rule discharge breakdown.")
  in
  let run profile unfixed refsafe stats =
    handle_frontend_errors (fun () ->
        let profile = if profile = "smp" then Vm.Cost.Smp_p4 else Vm.Cost.Up in
        let mode =
          if refsafe then Ivy.Pipeline.Ccount_refsafe profile else Ivy.Pipeline.Ccount profile
        in
        let r = Ivy.Pipeline.booted ~fixed_frees:(not unfixed) mode in
        ignore (Ivy.Pipeline.run_entry r "wl_idle" 50);
        ignore (Ivy.Pipeline.run_entry r "wl_ssh_copy" 100);
        (match r.Ivy.Pipeline.ccount_report with
        | Some cr ->
            Format.printf "%a@." Ccount.Creport.pp cr;
            if stats then
              Option.iter
                (fun rs -> print_string (Refsafe.Discharge.render_stats rs))
                cr.Ccount.Creport.refsafe
        | None -> ());
        Format.printf "%a@." Ccount.Creport.pp_census (Ivy.Pipeline.free_census r))
  in
  Cmd.v
    (Cmd.info "ccount" ~doc:"Refcounted free checking after boot + light use (paper §2.2).")
    Term.(const run $ profile_t $ unfixed_t $ refsafe_t $ stats_t)

(* ---- blockstop ---- *)

let blockstop_cmd =
  let guards_t =
    Arg.(value & flag & info [ "guards" ] ~doc:"Apply the manual runtime-check guard list.")
  in
  let field_t =
    Arg.(value & flag & info [ "field-sensitive" ] ~doc:"Use field-sensitive points-to.")
  in
  let run files guards field =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let mode =
          if field then Blockstop.Pointsto.Field_based else Blockstop.Pointsto.Type_based
        in
        let guard = if guards then Kernel.Corpus.blockstop_guards else [] in
        let r = Blockstop.Breport.analyze ~mode ~guard prog in
        Format.printf "%a@." Blockstop.Breport.pp r;
        List.iter
          (fun (f, c) -> Printf.printf "  warning: %s may block in atomic context of %s\n" c f)
          (Blockstop.Breport.distinct_warnings r))
  in
  Cmd.v
    (Cmd.info "blockstop" ~doc:"Blocking-in-atomic analysis (paper §2.3).")
    Term.(const run $ files_t $ guards_t $ field_t)

(* ---- extensions ---- *)

let locksafe_cmd =
  let run files =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let r = Locksafe.analyze prog in
        Format.printf "%a@." Locksafe.pp r;
        List.iter
          (fun (a, b) -> Printf.printf "  deadlock: %s and %s taken in both orders\n" a b)
          r.Locksafe.deadlock_cycles;
        List.iter
          (fun (l, (a : Locksafe.acquire)) ->
            Printf.printf "  irq-unsafe: %s taken without irqsave in %s at %s\n" l
              a.Locksafe.a_in
              (Kc.Loc.to_string a.Locksafe.a_loc))
          r.Locksafe.irq_unsafe)
  in
  Cmd.v (Cmd.info "locksafe" ~doc:"Lock-order and irq-spinlock analysis (paper §3.1).")
    Term.(const run $ files_t)

let stackcheck_cmd =
  let budget_t = Arg.(value & opt int 8192 & info [ "budget" ] ~docv:"BYTES") in
  let run files budget =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let r = Stackcheck.analyze prog in
        Format.printf "%a@." Stackcheck.pp r;
        Printf.printf "  fits %d bytes from start_kernel: %b\n" budget
          (Stackcheck.fits r ~entry:"start_kernel" ~budget);
        List.iter
          (fun f -> Printf.printf "  recursion: %s needs a runtime depth check\n" f)
          (Stackcheck.needs_runtime_check r))
  in
  Cmd.v (Cmd.info "stackcheck" ~doc:"Stack-depth analysis (paper §3.1).")
    Term.(const run $ files_t $ budget_t)

let errcheck_cmd =
  let run files =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let r = Errcheck.analyze prog in
        Format.printf "%a@." Errcheck.pp r;
        List.iter (fun s -> Format.printf "  %a@." Errcheck.pp_site s) r.Errcheck.violations)
  in
  Cmd.v (Cmd.info "errcheck" ~doc:"Error-code checking (paper §3.1).") Term.(const run $ files_t)

let userck_cmd =
  let run files =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let r = Userck.analyze prog in
        Format.printf "%a@." Userck.pp r;
        List.iter (fun v -> Format.printf "  %a@." Userck.pp_violation v) r.Userck.violations;
        if r.Userck.violations <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "userck" ~doc:"User/kernel pointer checking (paper §3.1 further examples).")
    Term.(const run $ files_t)

let infer_cmd =
  let run files =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let suggestions = Deputy.Infer.suggest prog in
        Printf.printf "%d annotation suggestions\n" (List.length suggestions);
        List.iter (fun s -> Format.printf "  %a@." Deputy.Infer.pp_suggestion s) suggestions)
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Suggest Deputy annotations for unannotated parameters.")
    Term.(const run $ files_t)

let pointsto_t =
  let parse = function
    | "type" -> Ok Blockstop.Pointsto.Type_based
    | "field" -> Ok Blockstop.Pointsto.Field_based
    | s -> Error (`Msg (Printf.sprintf "unknown points-to mode %s (use type or field)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with Blockstop.Pointsto.Type_based -> "type" | Blockstop.Pointsto.Field_based -> "field")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Blockstop.Pointsto.Type_based
    & info [ "pointsto" ] ~docv:"MODE" ~doc:"Points-to precision: type or field.")

let annotdb_cmd =
  let out_t = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let run files out mode =
    handle_frontend_errors (fun () ->
        let prog = load_files files ~fixed_frees:true in
        let db = Annotdb.populate ~mode prog in
        match out with
        | Some path ->
            Annotdb.save db path;
            Printf.printf "wrote %d facts to %s\n" (Annotdb.size db) path
        | None -> print_string (Annotdb.to_string db))
  in
  Cmd.v
    (Cmd.info "annotdb" ~doc:"Populate the shared annotation database (paper §3.2).")
    Term.(const run $ files_t $ out_t $ pointsto_t)

(* ---- check: every analysis over one shared engine context ---- *)

let check_cmd =
  let only_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"NAMES"
          ~doc:"Comma-separated subset of analyses to run (default: all).")
  in
  let json_t = Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.") in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Show engine artifact builds, cache hits and build times.")
  in
  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let run files only jobs json stats =
    handle_frontend_errors (fun () ->
        let only =
          match only with
          | None -> []
          | Some s -> List.filter (fun n -> n <> "") (String.split_on_char ',' s)
        in
        (* Validate names before any work so a typo fails the same way
           in every sharding mode. *)
        List.iter
          (fun n ->
            if Ivy.Checks.find n = None then begin
              Printf.eprintf "unknown analysis %s (use %s)\n" n
                (String.concat ", " (List.map Engine.Analysis.name Ivy.Checks.all));
              exit 1
            end)
          only;
        match files with
        | ([] | [ _ ]) as files ->
            (* One program, one context; --jobs parallelizes inside the
               context (per-SCC-level absint summary solving). *)
            let prog = load_files files ~fixed_frees:true in
            let ctxt = Engine.Context.create ~jobs prog in
            let results = Ivy.Checks.run_all ~only ctxt in
            let absint_ran = List.mem_assoc "absint" results in
            let refsafe_ran = List.mem_assoc "refsafe" results in
            (if json then
               let deputy = if absint_ran then Some (Engine.Context.deputized ctxt) else None in
               let ccount =
                 if refsafe_ran then Some (Engine.Context.ccount_discharged ctxt) else None
               in
               print_string (Ivy.Report_fmt.render_diags_json ?deputy ?ccount results)
             else print_string (Ivy.Report_fmt.render_diags results));
            if stats then
              if json then
                (* A second JSON line: deterministic counts under
                   "artifacts"/"totals", wall clock under "timing_s" —
                   golden tests lock the former and ignore the latter. *)
                print_string (Ivy.Report_fmt.render_stats_json (Engine.Context.stats ctxt))
              else begin
                if absint_ran then
                  print_string
                    (Absint.Discharge.render_stats
                       (Engine.Context.deputized ctxt).Engine.Context.dstats);
                print_string (Ivy.Report_fmt.render_engine_stats ctxt)
              end
        | files ->
            (* Several inputs shard per file: each worker owns one
               program and one context (contexts memoize in plain
               Hashtbls, so they are never shared across domains); the
               merge prints reports in argument order and folds the
               per-worker counters for --stats. *)
            let check_one path =
              let prog = load_files [ path ] ~fixed_frees:true in
              let ctxt = Engine.Context.create prog in
              let results = Ivy.Checks.run_all ~only ctxt in
              let absint_ran = List.mem_assoc "absint" results in
              let refsafe_ran = List.mem_assoc "refsafe" results in
              let body =
                if json then
                  let deputy =
                    if absint_ran then Some (Engine.Context.deputized ctxt) else None
                  in
                  let ccount =
                    if refsafe_ran then Some (Engine.Context.ccount_discharged ctxt) else None
                  in
                  Ivy.Report_fmt.render_diags_json ?deputy ?ccount results
                else Ivy.Report_fmt.render_diags results
              in
              (path, body, Engine.Context.stats ctxt)
            in
            let per_file = Par.map ~jobs check_one files in
            if json then begin
              print_string "[";
              List.iteri
                (fun i (path, body, _) ->
                  if i > 0 then print_string ",";
                  Printf.printf "{\"file\":\"%s\",\"report\":%s}" (json_escape path)
                    (String.trim body))
                per_file;
              print_string "]\n"
            end
            else
              List.iter
                (fun (path, body, _) -> Printf.printf "== %s\n%s" path body)
                per_file;
            if stats then begin
              let merged =
                Engine.Context.merge_counters (List.map (fun (_, _, s) -> s) per_file)
              in
              if json then print_string (Ivy.Report_fmt.render_stats_json merged)
              else print_string (Ivy.Report_fmt.render_stat_list merged)
            end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run every registered analysis (blockstop, locksafe, stackcheck, errcheck, userck, \
          absint, refsafe) over one shared whole-program context. With several FILE arguments, each \
          file is analyzed as its own program, sharded across --jobs worker domains; reports \
          come back in argument order.")
    Term.(const run $ files_t $ only_t $ jobs_t $ json_t $ stats_t)

(* ---- serve: the incremental analysis daemon + its RPC client ---- *)

let socket_t =
  Arg.(
    value
    & opt string "/tmp/ivy.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path of the daemon.")

let serve_cmd =
  let watch_t =
    Arg.(
      value
      & opt (some dir) None
      & info [ "watch" ] ~docv:"DIR"
          ~doc:"Re-check the directory's .kc files whenever their contents change.")
  in
  let poll_t =
    Arg.(
      value & opt int 500
      & info [ "poll-ms" ] ~docv:"MS" ~doc:"Watch poll interval in milliseconds.")
  in
  let capacity_t =
    Arg.(
      value & opt int 8
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Warm programs kept resident (least recently used evicted beyond $(docv)).")
  in
  let run socket watch poll_ms capacity jobs =
    let t = Ivy.Serve.create ~capacity ~jobs () in
    Ivy.Serve.run ~socket ?watch ~poll_ms ~log:(fun s -> Printf.eprintf "%s\n%!" s) t
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the incremental analysis daemon: newline-delimited JSON-RPC (check, stats, \
          invalidate, shutdown) over a Unix socket, one warm artifact graph per program. A \
          re-check of an unchanged program is pure cache hits; an edit rebuilds only the \
          artifacts downstream of the changed functions.")
    Term.(const run $ socket_t $ watch_t $ poll_t $ capacity_t $ jobs_t)

let rpc_cmd =
  let module J = Ivy.Jsonx in
  let method_t =
    Arg.(
      required
      & pos 0 (some (enum [ ("check", `Check); ("stats", `Stats); ("invalidate", `Invalidate); ("shutdown", `Shutdown) ])) None
      & info [] ~docv:"METHOD" ~doc:"One of check, stats, invalidate, shutdown.")
  in
  let rpc_files_t =
    Arg.(value & pos_right 0 file [] & info [] ~docv:"FILE" ~doc:"KC source files to submit.")
  in
  let program_t =
    Arg.(
      value & opt string "default"
      & info [ "program" ] ~docv:"ID" ~doc:"Program id the daemon keys its warm context by.")
  in
  let corpus_t =
    Arg.(value & flag & info [ "corpus" ] ~doc:"Submit the bundled mini-kernel corpus.")
  in
  let only_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"NAMES" ~doc:"Comma-separated subset of analyses.")
  in
  let artifact_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifact" ] ~docv:"NAME"
          ~doc:"invalidate: artifact name (e.g. cfg); omitted = whole program.")
  in
  let param_t =
    Arg.(
      value & opt string ""
      & info [ "param" ] ~docv:"P" ~doc:"invalidate: artifact parameter (e.g. a function name).")
  in
  let expect_warm_t =
    Arg.(
      value & flag
      & info [ "expect-warm" ]
          ~doc:"check: exit non-zero unless the response says no artifact was built.")
  in
  let run socket meth files program corpus only artifact param expect_warm =
    let request_body =
      match meth with
      | `Check ->
          let params =
            [ ("program", J.Str program) ]
            @ (if corpus then [ ("corpus", J.Bool true) ]
               else
                 [
                   ( "files",
                     J.List
                       (List.map
                          (fun path ->
                            let ic = open_in_bin path in
                            let s = really_input_string ic (in_channel_length ic) in
                            close_in ic;
                            J.Obj [ ("path", J.Str path); ("source", J.Str s) ])
                          files) );
                 ])
            @
            match only with
            | None -> []
            | Some s ->
                [
                  ( "only",
                    J.List
                      (List.filter_map
                         (fun n -> if n = "" then None else Some (J.Str n))
                         (String.split_on_char ',' s)) );
                ]
          in
          if (not corpus) && files = [] then begin
            Printf.eprintf "rpc check needs FILE arguments or --corpus\n";
            exit 1
          end;
          J.Obj [ ("id", J.Num 1.0); ("method", J.Str "check"); ("params", J.Obj params) ]
      | `Stats -> J.Obj [ ("id", J.Num 1.0); ("method", J.Str "stats") ]
      | `Invalidate ->
          let params =
            [ ("program", J.Str program) ]
            @ (match artifact with Some a -> [ ("artifact", J.Str a) ] | None -> [])
            @ if param = "" then [] else [ ("param", J.Str param) ]
          in
          J.Obj
            [ ("id", J.Num 1.0); ("method", J.Str "invalidate"); ("params", J.Obj params) ]
      | `Shutdown -> J.Obj [ ("id", J.Num 1.0); ("method", J.Str "shutdown") ]
    in
    let response = Ivy.Serve.request ~socket (J.render request_body) in
    print_endline response;
    let j = try J.parse response with J.Parse_error _ -> J.Null in
    (match J.member "error" j with
    | Some e ->
        Printf.eprintf "rpc error: %s\n"
          (match J.member "message" e with Some (J.Str m) -> m | _ -> J.render e);
        exit 1
    | None -> ());
    if expect_warm then
      match Option.bind (J.member "result" j) (J.member "warm") with
      | Some (J.Bool true) -> ()
      | _ ->
          Printf.eprintf "expected a warm check (zero artifact builds), got a cold one\n";
          exit 1
  in
  Cmd.v
    (Cmd.info "rpc"
       ~doc:
         "Talk to a running ivy serve daemon: submit files (or the bundled corpus) for \
          checking, query stats, invalidate artifacts, or shut it down. Prints the raw \
          JSON response; --expect-warm turns the incrementality claim into an exit code.")
    Term.(
      const run $ socket_t $ method_t $ rpc_files_t $ program_t $ corpus_t $ only_t
      $ artifact_t $ param_t $ expect_warm_t)

(* ---- fuzz: generator + fault injector + differential oracle ---- *)

let fuzz_cmd =
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign root seed.")
  in
  let count_t =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc:"Number of generated cases.")
  in
  let shrink_t =
    Arg.(
      value & flag
      & info [ "shrink" ] ~doc:"Greedily minimize failing cases before writing repros.")
  in
  let out_t =
    Arg.(
      value
      & opt string "fuzz-repros"
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunk .kc repro files.")
  in
  let dump_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "dump-case" ] ~docv:"I"
          ~doc:"Print the generated KC source of case $(docv) and exit (debugging aid).")
  in
  let quiet_t = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress lines.") in
  let run seed count shrink out dump quiet jobs =
    match dump with
    | Some i ->
        let p = Gen.Fuzz.case_program ~seed i in
        List.iter
          (fun (k, fn) -> Printf.printf "// label: %s in %s\n" (Gen.Fault.to_string k) fn)
          p.Gen.Prog.faults;
        print_string (Gen.Prog.render p)
    | None ->
        let log = if quiet then ignore else fun s -> Printf.eprintf "%s\n%!" s in
        let s = Gen.Fuzz.run ~shrink ~out ~log ~jobs ~seed ~count () in
        print_string (Gen.Fuzz.render_summary s);
        if s.Gen.Fuzz.s_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random annotated kernels, inject known faults, and cross-check every \
          static verdict against VM execution (differential soundness testing). Cases shard \
          across --jobs worker domains; the summary is byte-identical for every value.")
    Term.(const run $ seed_t $ count_t $ shrink_t $ out_t $ dump_t $ quiet_t $ jobs_t)

(* ---- corpus ---- *)

let corpus_cmd =
  let erase_t =
    Arg.(value & flag & info [ "erase" ] ~doc:"Print the corpus with annotations erased.")
  in
  let run erase =
    handle_frontend_errors (fun () ->
        if erase then begin
          let prog = Kernel.Corpus.load () in
          print_string (Kc.Pretty.print_program ~erase:true prog)
        end
        else begin
          let prog = Kernel.Corpus.load () in
          Printf.printf "mini-kernel corpus: %d lines, %d functions, %d structs/unions\n"
            (Kernel.Corpus.line_count ())
            (List.length prog.Kc.Ir.funcs)
            (Hashtbl.length prog.Kc.Ir.comps);
          List.iter
            (fun (name, src) ->
              Printf.printf "  %-24s %5d lines\n" name
                (List.length (String.split_on_char '\n' src)))
            (Kernel.Corpus.sources ())
        end)
  in
  Cmd.v (Cmd.info "corpus" ~doc:"Describe (or erase) the bundled corpus.")
    Term.(const run $ erase_t)

(* ---- experiments ---- *)

let experiments_cmd =
  let which_t = Arg.(value & pos 0 string "all" & info [] ~docv:"WHICH") in
  let run which =
    handle_frontend_errors (fun () ->
        let t1 () = print_string (Ivy.Report_fmt.render_table1 (Ivy.Experiment.table1 ())) in
        let e1 () = print_string (Ivy.Report_fmt.render_e1 (Ivy.Experiment.e1_census ())) in
        let e2 () = print_string (Ivy.Report_fmt.render_e2 (Ivy.Experiment.e2_overheads ())) in
        let e3 () = print_string (Ivy.Report_fmt.render_e3 (Ivy.Experiment.e3_free_census ())) in
        let e4 () = print_string (Ivy.Report_fmt.render_e4 (Ivy.Experiment.e4_blockstop ())) in
        let e5 () = print_string (Ivy.Report_fmt.render_e5 (Ivy.Experiment.e5_driver_subset ())) in
        let a1 () =
          print_string
            (Ivy.Report_fmt.render_a1
               (Ivy.Experiment.a1_discharge_ablation ())
               (Ivy.Experiment.a2_leak_ablation ()))
        in
        let x1 () = print_string (Ivy.Report_fmt.render_x1 (Ivy.Experiment.x1_locksafe ())) in
        let x2 () = print_string (Ivy.Report_fmt.render_x2 (Ivy.Experiment.x2_stackcheck ())) in
        let x3 () = print_string (Ivy.Report_fmt.render_x3 (Ivy.Experiment.x3_errcheck_and_db ())) in
        let x4 () = print_string (Ivy.Report_fmt.render_x4 (Ivy.Experiment.x4_userck ())) in
        match which with
        | "t1" -> t1 ()
        | "e1" -> e1 ()
        | "e2" -> e2 ()
        | "e3" -> e3 ()
        | "e4" -> e4 ()
        | "e5" -> e5 ()
        | "a1" -> a1 ()
        | "x1" -> x1 ()
        | "x2" -> x2 ()
        | "x3" -> x3 ()
        | "x4" -> x4 ()
        | "all" ->
            t1 (); e1 (); e2 (); e3 (); e4 (); e5 (); a1 (); x1 (); x2 (); x3 (); x4 ()
        | other ->
            Printf.eprintf "unknown experiment %s (use t1, e1-e5, a1, x1-x4, all)\n" other;
            exit 1)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and headline numbers.")
    Term.(const run $ which_t)

let main =
  let info =
    Cmd.info "ivy" ~version:"1.0.0"
      ~doc:"Sound program analysis for a Linux-like kernel (HotOS'07 reproduction)."
  in
  Cmd.group info
    [
      boot_cmd; run_cmd; check_cmd; serve_cmd; rpc_cmd; deputy_cmd; ccount_cmd; blockstop_cmd;
      locksafe_cmd; stackcheck_cmd; errcheck_cmd; userck_cmd; infer_cmd; annotdb_cmd; fuzz_cmd;
      corpus_cmd; experiments_cmd;
    ]

let () = exit (Cmd.eval main)

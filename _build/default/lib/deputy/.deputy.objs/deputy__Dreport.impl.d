lib/deputy/dreport.ml: Annot Format Hashtbl Instrument Kc List Optimize

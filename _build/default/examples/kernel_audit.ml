(* Kernel audit: every sound analysis over the whole mini-kernel, the
   way §3.2 imagines a research group sharing one annotation database.

   Run with:  dune exec examples/kernel_audit.exe *)

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  let prog = Kernel.Corpus.load () in
  Printf.printf "auditing the mini-kernel: %d lines, %d functions\n"
    (Kernel.Corpus.line_count ())
    (List.length prog.Kc.Ir.funcs);

  banner "1. Deputy (type and memory safety)";
  let dprog = Kernel.Corpus.load () in
  let dreport = Deputy.Dreport.deputize dprog in
  Format.printf "%a@." Deputy.Dreport.pp dreport;

  banner "2. CCount (deallocation safety)";
  let cprog = Kernel.Corpus.load ~fixed_frees:false () in
  let t, creport = Ccount.Creport.ccount_boot cprog in
  ignore (Vm.Interp.run t "start_kernel" []);
  Format.printf "%a@." Ccount.Creport.pp creport;
  Format.printf "as-found kernel, boot: %a@." Ccount.Creport.pp_census
    (Vm.Machine.free_census t.Vm.Interp.m);
  List.iter
    (fun (bf : Vm.Machine.bad_free) ->
      Printf.printf "  bad free at address %d (residual refcount %d) in %s\n" bf.Vm.Machine.bf_addr
        bf.Vm.Machine.bf_rc bf.Vm.Machine.bf_where)
    t.Vm.Interp.m.Vm.Machine.bad_frees;

  banner "3. BlockStop (blocking in atomic context)";
  let bprog = Kernel.Corpus.load () in
  let braw = Blockstop.Breport.analyze bprog in
  Format.printf "%a@." Blockstop.Breport.pp braw;
  List.iter
    (fun (f, c) ->
      let mark = if List.mem (f, c) Kernel.Corpus.blockstop_true_bugs then "BUG" else "fp?" in
      Printf.printf "  [%s] %s -> %s\n" mark f c)
    (Blockstop.Breport.distinct_warnings braw);
  let bguard =
    Blockstop.Breport.analyze ~guard:Kernel.Corpus.blockstop_guards bprog
  in
  Printf.printf "after %d runtime-check guards: %d warnings (the real bugs)\n"
    (List.length Kernel.Corpus.blockstop_guards)
    (List.length (Blockstop.Breport.distinct_warnings bguard));

  banner "4. Locksafe (deadlock order, irq spinlocks)";
  let lreport = Locksafe.analyze prog in
  Format.printf "%a@." Locksafe.pp lreport;

  banner "5. Stackcheck (stack budgets)";
  let sreport = Stackcheck.analyze prog in
  Format.printf "%a@." Stackcheck.pp sreport;
  Printf.printf "boot fits 4 kB: %b\n"
    (Stackcheck.fits sreport ~entry:"start_kernel" ~budget:4096);

  banner "6. Errcheck (unchecked error returns)";
  let ereport = Errcheck.analyze prog in
  Format.printf "%a@." Errcheck.pp ereport;
  List.iteri
    (fun i s -> if i < 5 then Format.printf "  %a@." Errcheck.pp_site s)
    ereport.Errcheck.violations;

  banner "7. The shared annotation database (paper SS3.2)";
  let db = Annotdb.populate prog in
  Printf.printf "%d facts; sample:\n" (Annotdb.size db);
  let sample = String.split_on_char '\n' (Annotdb.to_string db) in
  List.iteri (fun i line -> if i < 12 && line <> "" then Printf.printf "  %s\n" line) sample;
  Printf.printf "... (dump the full database with `ivy annotdb`)\n"

(** Flow-sensitive facts used to discharge Deputy checks statically.

    Facts are tracked only for "stable" variables (locals and formals
    whose address is never taken): constant lower bounds, strict upper
    bounds (constant or another stable variable), and non-nullness.
    Join is fact intersection; assignments kill facts except for the
    [v = v + k] pattern, which shifts lower bounds. *)

module IntMap : Map.S with type key = int and type 'a t = 'a Map.Make(Int).t
module IntSet : Set.S with type elt = int and type t = Set.Make(Int).t

type bound = Bconst of int64 | Bvar of int

module BoundSet : Set.S with type elt = bound

type t = {
  lower : int64 IntMap.t;
  upper : BoundSet.t IntMap.t;
  nonnull : IntSet.t;
}

(** No facts. *)
val top : t

val equal : t -> t -> bool

(** Facts true on both paths. *)
val join : t -> t -> t

(** Is the variable trackable (local, address never taken)? *)
val stable : Kc.Ir.varinfo -> bool

val as_stable_var : Kc.Ir.exp -> Kc.Ir.varinfo option
val as_const : Kc.Ir.exp -> int64 option
val kill_var : int -> t -> t
val add_lower : int -> int64 -> t -> t
val add_upper : int -> bound -> t -> t
val add_nonnull : int -> t -> t

(** Facts from a branch condition being true/false. *)
val assume : Kc.Ir.exp -> bool -> t -> t

(** Transfer for [v := e]. *)
val assign : Kc.Ir.varinfo -> Kc.Ir.exp -> t -> t

val lower_bound : t -> Kc.Ir.varinfo -> int64 option
val has_upper_var : t -> Kc.Ir.varinfo -> Kc.Ir.varinfo -> bool
val best_upper_const : t -> Kc.Ir.varinfo -> int64 option
val is_nonnull : t -> Kc.Ir.varinfo -> bool

(* init/ — bring the kernel up: subsystem init calls, a first user
   task, a couple of files, and the "login prompt available"
   milestone the paper's free census runs until. *)

let source =
  {kc|
// ---------------------------------------------------------------
// init/main.kc
// ---------------------------------------------------------------

int boot_done;

// Exercise each subsystem a little, like early userspace would.
int run_initcalls(void) {
  // A few files.
  vfs_create("vmlinuz");
  vfs_create("initrd");
  vfs_create("console");
  int fd = vfs_open("/vmlinuz", 0);
  if (fd >= 0) {
    char block[128];
    int i;
    for (i = 0; i < 128; i++) {
      block[i] = i * 7;
    }
    vfs_write(fd, block, 128);
    struct file * __opt f = fd_table[fd];
    if (f != 0) {
      f->f_pos = 0;
    }
    vfs_read(fd, block, 128);
    vfs_close(fd);
  }
  // A couple of processes.
  struct task * __opt self = current_task;
  if (self != 0) {
    struct task * __opt it = self;
    struct task * __opt child = do_fork(it, GFP_KERNEL);
    if (child != 0) {
      struct task * __opt c2 = child;
      do_exit(c2);
    }
  }
  // Sockets say hello over loopback.
  int s1 = sock_create(17);
  int s2 = sock_create(17);
  if (s1 >= 0) {
    if (s2 >= 0) {
      char hello[16];
      int i;
      for (i = 0; i < 16; i++) {
        hello[i] = 65 + i;
      }
      udp_send(s1, s2, hello, 16);
      char back[16];
      udp_recv(s2, back, 16);
    }
  }
  if (s2 >= 0) { sock_release(s2); }
  if (s1 >= 0) { sock_release(s1); }
  // The neighbor cache learns a few peers and ages them out.
  neigh_update(167772161, 600001);
  neigh_update(167772162, 600002);
  long ll = neigh_resolve(167772161);
  if (ll != 600001) { printk("neigh: bad resolve"); }
  neigh_resolve(99);
  // Timers fire, work runs, devices speak.
  queue_work(&stats_work);
  raise_irq(6);
  raise_irq(6);
  raise_irq(6);
  run_workqueue();
  char pbuf[64];
  proc_read("uptime", pbuf, 64);
  proc_read("meminfo", pbuf, 64);
  char cbuf[32];
  misc_dev_read(5, cbuf, 32);
  misc_dev_read(7, cbuf, 32);
  misc_dev_write(3, cbuf, 32);
  // A "user process" does buffered I/O through the syscall layer.
  char user_page[128];
  char * __user uptr;
  __trusted {
    // The syscall entry shim: raw register values become __user
    // pointers here, and only here.
    uptr = (char * __user)user_page;
  }
  int ufd = vfs_open("/vmlinuz", 0);
  if (ufd >= 0) {
    sys_write(ufd, uptr, 64);
    struct file * __opt uf = fd_table[ufd];
    if (uf != 0) {
      uf->f_pos = 0;
    }
    sys_read(ufd, uptr, 64);
    vfs_close(ufd);
  }
  // Console input arrives.
  kbd_pending_n = 5;
  kbd_pending[0] = 'r';
  kbd_pending[1] = 'o';
  kbd_pending[2] = 'o';
  kbd_pending[3] = 't';
  kbd_pending[4] = '\n';
  raise_irq(1);
  char line[16];
  tty_read(&console_tty, line, 16);
  return 0;
}

// start_kernel: the boot entry point.
int start_kernel(void) {
  mm_init();
  sched_init();
  fs_init();
  net_init();
  tty_init();
  rd_init();
  timer_init();
  neigh_init();
  chrdev_init();
  procfs_init();
  run_initcalls();
  boot_done = 1;
  printk("ivy: boot complete, login: ");
  return 0;
}
|kc}

type case = {
  c_idx : int;
  c_seed : int;
  c_labels : (Fault.kind * string) list;
  c_violations : Oracle.violation list;
  c_repro : string option;
}

type summary = {
  s_seed : int;
  s_count : int;
  s_clean : int;
  s_injected : (Fault.kind * int) list;
  s_detected : (Fault.kind * int) list;
  s_failures : case list;
  s_elapsed : float;
}

(* Campaign format v2: the fault injector draws from a stream split off
   the per-case seed ([Rng.mix cseed 1]) instead of the v1 [cseed + 1].
   v1 aliased streams: [mix seed i] walks the splitmix counter, so
   [cseed_i + 1] can land on (or near) another case's generator state,
   correlating supposedly independent cases. The version is printed in
   every summary so old seeds are never silently reinterpreted.

   v3 widens the Oob_write shape draw from 4 to 5 ([F_oob_symbolic]:
   dependent-count heap buffer whose in-loop checks need a relational
   bound), shifting every later draw on the same stream. *)
let format_version = 3

let case_program ~seed i : Prog.t =
  let cseed = Rng.mix seed i in
  let p = Generate.clean cseed in
  if i mod 4 = 0 then p
  else
    let rng = Rng.create (Rng.mix cseed 1) in
    Inject.plant rng (Rng.pick rng Fault.all) p

(* Workers may race to create the repro directory; EEXIST is success. *)
let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_repro ~out ~idx (p : Prog.t) (v : Oracle.verdict) : string =
  ensure_dir out;
  let path = Filename.concat out (Printf.sprintf "repro_%d_seed%d.kc" idx p.Prog.seed) in
  let oc = open_out path in
  output_string oc "// ivy fuzz repro\n";
  List.iter
    (fun (k, fn) -> Printf.fprintf oc "// label: %s in %s\n" (Fault.to_string k) fn)
    p.Prog.faults;
  List.iter
    (fun viol -> Printf.fprintf oc "// violation: %s\n" (Oracle.violation_to_string viol))
    v.Oracle.violations;
  output_string oc (Prog.render p);
  close_out oc;
  path

let bump kind counts =
  List.map (fun (k, n) -> if k = kind then (k, n + 1) else (k, n)) counts

(* Everything the index-order merge needs to reproduce the serial
   driver byte for byte: the pre-shrink labels/detections feed the
   census, [r_log] is the exact violation line the serial loop printed
   as it went, and the failure record (post-shrink) rides in
   [r_failure]. Repro files are written by the worker — names depend
   only on (index, seed), so concurrent writers never collide. *)
type case_result = {
  r_labels : (Fault.kind * string) list;
  r_detected : (Fault.kind * string) list;
  r_log : string option;
  r_failure : case option;
}

let run_case ~shrink ~out ~seed i : case_result =
  let p = case_program ~seed i in
  let v = Oracle.check p in
  if v.Oracle.violations = [] then
    { r_labels = p.Prog.faults; r_detected = v.Oracle.detected; r_log = None; r_failure = None }
  else begin
    let log =
      Printf.sprintf "case %d (seed %d): %s" i p.Prog.seed
        (String.concat "; " (List.map Oracle.violation_to_string v.Oracle.violations))
    in
    let labels = p.Prog.faults and detected = v.Oracle.detected in
    let p, v =
      if shrink then
        let small =
          Shrink.minimize ~check:(fun q -> (Oracle.check q).Oracle.violations <> []) p
        in
        (small, Oracle.check small)
      else (p, v)
    in
    let repro = Option.map (fun out -> write_repro ~out ~idx:i p v) out in
    {
      r_labels = labels;
      r_detected = detected;
      r_log = Some log;
      r_failure =
        Some
          {
            c_idx = i;
            c_seed = p.Prog.seed;
            c_labels = p.Prog.faults;
            c_violations = v.Oracle.violations;
            c_repro = repro;
          };
    }
  end

let run ?(shrink = false) ?out ?(log = ignore) ?(jobs = 1) ~seed ~count () : summary =
  let t0 = Unix.gettimeofday () in
  (* Cases shard perfectly: case i is a pure function of (seed, i), so
     the pool evaluates them in any order and the merge below folds the
     results back in index order — same census, same failure list, same
     log lines as the serial loop. *)
  let results = Par.mapi ~jobs (fun _ i -> run_case ~shrink ~out ~seed i) (List.init count Fun.id) in
  let zero = List.map (fun k -> (k, 0)) Fault.all in
  let injected = ref zero and detected = ref zero in
  let clean = ref 0 and failures = ref [] in
  List.iteri
    (fun i r ->
      if r.r_labels = [] then incr clean;
      List.iter (fun (k, _) -> injected := bump k !injected) r.r_labels;
      List.iter (fun (k, _) -> detected := bump k !detected) r.r_detected;
      (match r.r_log with Some line -> log line | None -> ());
      (match r.r_failure with Some c -> failures := c :: !failures | None -> ());
      if (i + 1) mod 100 = 0 then
        log (Printf.sprintf "%d/%d cases, %d failures" (i + 1) count (List.length !failures)))
    results;
  {
    s_seed = seed;
    s_count = count;
    s_clean = !clean;
    s_injected = !injected;
    s_detected = !detected;
    s_failures = List.rev !failures;
    s_elapsed = Unix.gettimeofday () -. t0;
  }

let render_summary ?(elapsed = true) (s : summary) : string =
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "fuzz campaign (format v%d): seed %d, %d cases (%d clean, %d faulty)" format_version
    s.s_seed s.s_count s.s_clean (s.s_count - s.s_clean);
  if elapsed then bpf " in %.2fs" s.s_elapsed;
  bpf "\n";
  bpf "%-16s %10s %10s\n" "fault kind" "injected" "detected";
  List.iter
    (fun k ->
      bpf "%-16s %10d %10d\n" (Fault.to_string k)
        (List.assoc k s.s_injected) (List.assoc k s.s_detected))
    Fault.all;
  (match s.s_failures with
  | [] -> bpf "oracle violations: none\n"
  | fs ->
      bpf "oracle violations: %d case(s)\n" (List.length fs);
      List.iter
        (fun c ->
          bpf "  case %d (seed %d)%s:\n" c.c_idx c.c_seed
            (match c.c_repro with Some p -> " repro " ^ p | None -> "");
          List.iter
            (fun v -> bpf "    %s\n" (Oracle.violation_to_string v))
            c.c_violations)
        fs);
  Buffer.contents buf

(* Interprocedural escape/ownership summaries (ROADMAP item 2, after
   Hattori et al., "Automatic Detection of Reference Counting Bugs in
   Linux Kernel Drivers").

   Per defined function, a flow-insensitive may-analysis computes which
   pointer formals can escape (be stored where the caller can't account
   for them), which can be freed (ownership transfer into the callee),
   whether the function can free anything at all, whether it can write
   a global pointer slot, and where its return value can come from.

   The summaries are solved callees-first over the same Tarjan SCC
   condensation and bottom-up dependency levels as the absint return
   summaries ({!Absint.Summary.sccs_of} / [levels_of]); components of
   one level are independent and solved on a {!Par} pool. Recursive
   components degrade to the conservative all-bets-off summary. *)

module I = Kc.Ir
module SM = Map.Make (String)

type fsum = {
  may_free : bool; (* can free some object, directly or transitively *)
  writes_glob_ptr : bool; (* can store to a global pointer slot *)
  runs_handlers : bool; (* can run guest code via raise_irq / unknowns *)
  escaping_params : int list; (* pointer formals whose value may escape *)
  freed_params : int list; (* pointer formals that may be freed *)
  returns_alloc : bool; (* result may be a fresh allocation *)
  returns_param : int list; (* result may alias these formals *)
  returns_other : bool; (* result may alias something shared *)
}

type summaries = fsum SM.t

let bottom_sum =
  {
    may_free = false;
    writes_glob_ptr = false;
    runs_handlers = false;
    escaping_params = [];
    freed_params = [];
    returns_alloc = false;
    returns_param = [];
    returns_other = false;
  }

let ptr_formal_idxs (fd : I.fundec) : int list =
  List.filteri (fun _ v -> I.is_pointer v.I.vty) fd.I.sformals |> ignore;
  List.mapi (fun i v -> (i, v)) fd.I.sformals
  |> List.filter_map (fun (i, v) -> if I.is_pointer v.I.vty then Some i else None)

let conservative_sum (fd : I.fundec) : fsum =
  let ptrs = ptr_formal_idxs fd in
  {
    may_free = true;
    writes_glob_ptr = true;
    runs_handlers = true;
    escaping_params = ptrs;
    freed_params = ptrs;
    returns_alloc = false;
    returns_param = ptrs;
    returns_other = true;
  }

(* ---- the VM's extern surface -------------------------------------- *)

let allocators = [ "kmalloc"; "kzalloc"; "kmem_cache_alloc"; "vmalloc"; "alloc_pages" ]

(* Free-family externs: index of the formal whose target is released. *)
let free_extern = function
  | "kfree" | "vfree" | "free_pages" -> Some [ 0 ]
  | "kmem_cache_free" -> Some [ 1 ]
  | _ -> None

(* Builtins that neither free nor capture their pointer arguments, and
   never write a program global (VM builtins only mutate through the
   pointers they are handed, which can never reach a no-address-taken
   global slot). *)
let benign_externs =
  [
    "memset";
    "memcpy";
    "memmove";
    "memcmp";
    "memset_t";
    "memcpy_t";
    "strlen";
    "strcpy";
    "strcmp";
    "printk";
    "panic";
    "local_irq_disable";
    "local_irq_enable";
    "spin_lock";
    "spin_unlock";
    "spin_lock_irqsave";
    "spin_unlock_irqrestore";
    "in_interrupt";
    "irq_enter";
    "irq_exit";
    "raise_irq";
    "assert_not_atomic";
    "schedule";
    "might_sleep";
    "msleep";
    "wait_for_completion";
    "complete";
    "mutex_lock";
    "mutex_unlock";
    "down";
    "up";
    "copy_to_user";
    "copy_from_user";
    "get_cycles";
    "udelay";
    "barrier";
    "cpu_relax";
    "kmem_cache_create";
    "__rc_set_type";
  ]

(* What a call site does, resolved against the extern tables and the
   already-computed summaries. *)
type callee =
  | Alloc (* returns a fresh, caller-owned object *)
  | Free of int list (* releases the targets of these args *)
  | Benign (* no free, no capture *)
  | Captures of int list (* stores (but never frees) these args *)
  | Known of fsum (* defined function with a summary *)
  | Unknown (* anything could happen *)

let callee_info (summaries : summaries) (prog : I.program) (target : I.call_target) : callee =
  match target with
  | I.Indirect _ -> Unknown
  | I.Direct f -> (
      if List.mem f allocators then Alloc
      else
        match free_extern f with
        | Some idxs -> Free idxs
        | None -> (
            if List.mem f benign_externs then Benign
            else if f = "request_irq" then Captures [ 1 ]
            else
              match SM.find_opt f summaries with
              | Some s -> Known s
              | None -> (
                  match I.find_fun prog f with
                  | Some fd when not fd.I.fextern -> Unknown (* no summary yet *)
                  | _ -> Unknown)))

(* ---- shared IR helpers -------------------------------------------- *)

(* Static type of a slot (mirrors Ccount.Rc_instrument.lval_type). *)
let lval_type (lv : I.lval) : I.ty =
  let host, offs = lv in
  let base =
    match host with
    | I.Lvar v -> v.I.vty
    | I.Lmem e -> ( match e.I.ety with I.Tptr (t, _) -> t | t -> t)
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | I.Ofield f, _ -> f.I.fty
      | I.Oindex _, I.Tarray (t, _) -> t
      | I.Oindex _, t -> t)
    base offs

let strip_ptr_casts (e : I.exp) : I.exp =
  let rec go e =
    match e.I.e with
    | I.Ecast (I.Tptr _, inner) when I.is_pointer inner.I.ety -> go inner
    | _ -> e
  in
  go e

let rec is_null (e : I.exp) : bool =
  match e.I.e with
  | I.Econst 0L -> true
  | I.Ecast (_, e1) -> is_null e1
  | _ -> false

(* Non-global scalar pointer variables mentioned in [e] (candidates for
   escape / free marking). *)
let var_roots (e : I.exp) : I.varinfo list =
  I.fold_exp
    (fun acc e1 ->
      match e1.I.e with
      | I.Elval (I.Lvar v, []) when (not v.I.vglob) && I.is_pointer v.I.vty -> v :: acc
      | _ -> acc)
    [] e
  |> List.rev

(* Every top-level expression of a statement (conditions included). *)
let exps_of_stmt (s : I.stmt) : I.exp list =
  match s.I.sk with
  | I.Sinstr i ->
      let lv_exps =
        match I.lval_of_instr i with
        | Some (host, offs) ->
            (match host with I.Lmem e -> [ e ] | I.Lvar _ -> [])
            @ List.filter_map (function I.Oindex e -> Some e | I.Ofield _ -> None) offs
        | None -> []
      in
      I.exps_of_instr i @ lv_exps
  | I.Sif (c, _, _) | I.Swhile (c, _, _) | I.Sdowhile (_, c) | I.Sswitch (c, _) -> [ c ]
  | I.Sreturn (Some e) -> [ e ]
  | I.Sreturn None | I.Sbreak | I.Scontinue | I.Sblock _ | I.Sdelayed _ | I.Strusted _ -> []

(* Does the function cast between pointers and integers anywhere? When
   it does, pointer values can travel through integer variables and the
   per-variable tracking below is blind to it. *)
let has_ptr_int_cast (fd : I.fundec) : bool =
  let found = ref false in
  I.iter_stmts
    (fun s ->
      List.iter
        (fun e ->
          ignore
            (I.fold_exp
               (fun () e1 ->
                 match e1.I.e with
                 | I.Ecast (I.Tptr _, inner)
                   when (not (I.is_pointer inner.I.ety)) && not (is_null inner) ->
                     found := true
                 | I.Ecast (ti, inner) when I.is_integral ti && I.is_pointer inner.I.ety ->
                     found := true
                 | _ -> ())
               () e))
        (exps_of_stmt s))
    fd.I.fbody;
  !found

(* ---- per-function flow-insensitive analysis ----------------------- *)

type src = Sparam of int | Salloc | Sother

module SrcSet = Set.Make (struct
  type t = src

  let compare = compare
end)

type fana = {
  afd : I.fundec;
  asrcs : (int, SrcSet.t) Hashtbl.t; (* vid -> may-sources of its value *)
  aescaped : (int, unit) Hashtbl.t; (* vids whose value may escape *)
  afreed : (int, unit) Hashtbl.t; (* vids whose target may be freed *)
  acopied : (int, unit) Hashtbl.t; (* vids duplicated into another var *)
  areturned : (int, unit) Hashtbl.t; (* vids that may be returned *)
  mutable aret : SrcSet.t; (* sources of the return value *)
  mutable amay_free : bool;
  mutable awrites_glob : bool;
  mutable aruns_handlers : bool;
}

let get_srcs a vid = Option.value (Hashtbl.find_opt a.asrcs vid) ~default:SrcSet.empty

(* May-sources of a pointer-typed expression. *)
let rec roots_of a (e : I.exp) : SrcSet.t =
  if not (I.is_pointer e.I.ety) then SrcSet.empty
  else
    match e.I.e with
    | I.Econst _ -> SrcSet.empty (* null *)
    | I.Estr _ | I.Efun _ -> SrcSet.singleton Sother
    | I.Elval (I.Lvar v, []) ->
        if v.I.vglob then SrcSet.singleton Sother else get_srcs a v.I.vid
    | I.Elval _ -> SrcSet.singleton Sother (* loaded from memory *)
    | I.Eunop (_, e1) -> roots_of a e1
    | I.Ebinop (_, e1, e2) -> SrcSet.union (roots_of a e1) (roots_of a e2)
    | I.Econd (_, e1, e2) -> SrcSet.union (roots_of a e1) (roots_of a e2)
    | I.Ecast (_, e1) ->
        if I.is_pointer e1.I.ety then roots_of a e1
        else if is_null e1 then SrcSet.empty
        else SrcSet.singleton Sother (* forged from an integer *)
    | I.Eaddrof _ | I.Estartof _ -> SrcSet.singleton Sother
    | I.Eself_field _ -> SrcSet.empty

let mark tbl v = if not (Hashtbl.mem tbl v.I.vid) then Hashtbl.replace tbl v.I.vid ()
let mark_all tbl vs = List.iter (mark tbl) vs

(* One monotone pass over the body; [changed] reports set growth so the
   caller can iterate to a fixpoint (assignment chains q = p; r = q). *)
let pass (summaries : summaries) (prog : I.program) (a : fana) : bool =
  let changed = ref false in
  let card tbl = Hashtbl.length tbl in
  let before =
    ( Hashtbl.fold (fun _ s acc -> acc + SrcSet.cardinal s) a.asrcs 0,
      card a.aescaped,
      card a.afreed,
      card a.acopied,
      card a.areturned,
      SrcSet.cardinal a.aret,
      a.amay_free,
      a.awrites_glob,
      a.aruns_handlers )
  in
  let add_srcs v srcs =
    let old = get_srcs a v.I.vid in
    let nw = SrcSet.union old srcs in
    if not (SrcSet.equal old nw) then Hashtbl.replace a.asrcs v.I.vid nw
  in
  (* escape pointer vars smuggled through pointer<->integer casts *)
  let scan_casts e =
    ignore
      (I.fold_exp
         (fun () e1 ->
           match e1.I.e with
           | I.Ecast (ti, inner) when I.is_integral ti && I.is_pointer inner.I.ety ->
               mark_all a.aescaped (var_roots inner)
           | _ -> ())
         () e)
  in
  let do_call ret target args =
    (* raise_irq synchronously runs a registered guest handler, which
       can free objects and write globals the caller can't see through
       the direct call graph; callers of [fsum] that need a quiescence
       window (Discharge R3) must treat it as arbitrary guest code. *)
    (match target with
    | I.Direct "raise_irq" -> a.aruns_handlers <- true
    | _ -> ());
    (match callee_info summaries prog target with
    | Alloc | Benign -> ()
    | Free idxs ->
        a.amay_free <- true;
        List.iter
          (fun i ->
            match List.nth_opt args i with
            | Some arg -> mark_all a.afreed (var_roots arg)
            | None -> ())
          idxs
    | Captures idxs ->
        List.iter
          (fun i ->
            match List.nth_opt args i with
            | Some arg -> mark_all a.aescaped (var_roots arg)
            | None -> ())
          idxs
    | Known s ->
        if s.may_free then a.amay_free <- true;
        if s.writes_glob_ptr then a.awrites_glob <- true;
        if s.runs_handlers then a.aruns_handlers <- true;
        List.iter (fun i ->
            match List.nth_opt args i with
            | Some arg -> mark_all a.aescaped (var_roots arg)
            | None -> ())
          s.escaping_params;
        List.iter (fun i ->
            match List.nth_opt args i with
            | Some arg -> mark_all a.afreed (var_roots arg)
            | None -> ())
          s.freed_params
    | Unknown ->
        a.amay_free <- true;
        a.awrites_glob <- true;
        a.aruns_handlers <- true;
        List.iter
          (fun arg ->
            if I.is_pointer arg.I.ety then begin
              mark_all a.aescaped (var_roots arg);
              mark_all a.afreed (var_roots arg)
            end)
          args);
    (* result sources *)
    match ret with
    | Some (I.Lvar v, []) when (not v.I.vglob) && I.is_pointer v.I.vty -> (
        match callee_info summaries prog target with
        | Alloc -> add_srcs v (SrcSet.singleton Salloc)
        | Free _ | Benign | Captures _ -> add_srcs v (SrcSet.singleton Sother)
        | Known s ->
            let srcs = if s.returns_alloc then SrcSet.singleton Salloc else SrcSet.empty in
            let srcs =
              List.fold_left
                (fun acc i ->
                  match List.nth_opt args i with
                  | Some arg -> SrcSet.union acc (roots_of a arg)
                  | None -> acc)
                srcs s.returns_param
            in
            let srcs = if s.returns_other then SrcSet.add Sother srcs else srcs in
            add_srcs v srcs
        | Unknown -> add_srcs v (SrcSet.singleton Sother))
    | Some ((I.Lvar g, _) as lv) when g.I.vglob ->
        if I.is_pointer (lval_type lv) then a.awrites_glob <- true
    | _ -> ()
  in
  I.iter_stmts
    (fun s ->
      List.iter scan_casts (exps_of_stmt s);
      match s.I.sk with
      | I.Sinstr (I.Iset (lv, e)) -> (
          match lv with
          | I.Lvar v, [] when (not v.I.vglob) && I.is_pointer v.I.vty ->
              add_srcs v (roots_of a e);
              (match (strip_ptr_casts e).I.e with
              | I.Elval (I.Lvar u, []) when (not u.I.vglob) && I.is_pointer u.I.vty ->
                  mark a.acopied u
              | _ -> ())
          | I.Lvar v, [] when not v.I.vglob -> () (* scalar local *)
          | _ ->
              (* store into memory, a global, or an aggregate slot *)
              mark_all a.aescaped (var_roots e);
              (match fst lv with
              | I.Lvar g when g.I.vglob ->
                  if I.is_pointer (lval_type lv) then a.awrites_glob <- true
              | _ -> ()))
      | I.Sinstr (I.Icall (ret, target, args)) -> do_call ret target args
      | I.Sinstr (I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _) -> ()
      | I.Sreturn (Some e) ->
          mark_all a.areturned (var_roots e);
          let r = roots_of a e in
          if not (SrcSet.subset r a.aret) then a.aret <- SrcSet.union a.aret r
      | _ -> ())
    a.afd.I.fbody;
  let after =
    ( Hashtbl.fold (fun _ s acc -> acc + SrcSet.cardinal s) a.asrcs 0,
      card a.aescaped,
      card a.afreed,
      card a.acopied,
      card a.areturned,
      SrcSet.cardinal a.aret,
      a.amay_free,
      a.awrites_glob,
      a.aruns_handlers )
  in
  if before <> after then changed := true;
  !changed

let analyze (summaries : summaries) (prog : I.program) (fd : I.fundec) : fana =
  let a =
    {
      afd = fd;
      asrcs = Hashtbl.create 32;
      aescaped = Hashtbl.create 16;
      afreed = Hashtbl.create 16;
      acopied = Hashtbl.create 16;
      areturned = Hashtbl.create 16;
      aret = SrcSet.empty;
      amay_free = false;
      awrites_glob = false;
      aruns_handlers = false;
    }
  in
  List.iteri
    (fun i v ->
      if I.is_pointer v.I.vty then Hashtbl.replace a.asrcs v.I.vid (SrcSet.singleton (Sparam i)))
    fd.I.sformals;
  (* address-taken variables may be read or written through an alias *)
  List.iter
    (fun v -> if v.I.vaddrof then Hashtbl.replace a.aescaped v.I.vid ())
    (fd.I.sformals @ fd.I.slocals);
  while pass summaries prog a do
    ()
  done;
  a

let summarize (summaries : summaries) (prog : I.program) (fd : I.fundec) : fsum =
  let a = analyze summaries prog fd in
  let param_hits tbl =
    List.filter
      (fun i ->
        Hashtbl.fold
          (fun vid () acc -> acc || SrcSet.mem (Sparam i) (get_srcs a vid))
          tbl false)
      (ptr_formal_idxs fd)
  in
  {
    may_free = a.amay_free;
    writes_glob_ptr = a.awrites_glob;
    runs_handlers = a.aruns_handlers;
    escaping_params = param_hits a.aescaped;
    freed_params = param_hits a.afreed;
    returns_alloc = SrcSet.mem Salloc a.aret;
    returns_param =
      List.filter (fun i -> SrcSet.mem (Sparam i) a.aret) (ptr_formal_idxs fd);
    returns_other = SrcSet.mem Sother a.aret;
  }

(* ---- bottom-up computation over SCC levels ------------------------ *)

let is_self_recursive (fd : I.fundec) =
  List.mem fd.I.fname (Absint.Summary.direct_callees fd)

let compute ?(jobs = 1) (prog : I.program) : summaries =
  let defined = List.filter (fun fd -> not fd.I.fextern) prog.I.funcs in
  let sccs = Absint.Summary.sccs_of defined in
  List.fold_left
    (fun summaries level ->
      (* Components of one level only read strictly-lower summaries, so
         the pool members never observe each other; the fold re-merges
         in SCC order, identical to the serial result. *)
      let solvable, recursive =
        List.partition
          (fun scc -> match scc with [ fd ] -> not (is_self_recursive fd) | _ -> false)
          level
      in
      let solved =
        Par.map ~jobs
          (fun scc ->
            match scc with
            | [ fd ] -> (fd.I.fname, summarize summaries prog fd)
            | _ -> assert false)
          solvable
      in
      let summaries =
        List.fold_left (fun acc (name, s) -> SM.add name s acc) summaries solved
      in
      List.fold_left
        (fun summaries scc ->
          List.fold_left
            (fun summaries fd -> SM.add fd.I.fname (conservative_sum fd) summaries)
            summaries scc)
        summaries recursive)
    SM.empty
    (Absint.Summary.levels_of sccs)

let lookup (s : summaries) name = SM.find_opt name s
let equal (a : summaries) (b : summaries) = SM.equal ( = ) a b

(* The CCount C-to-C rewriting, at the IR level (paper §2.2).

   Transformations per function body:

   - every pointer write through a tracked slot [a.f = b] becomes
     "RC(b)++, RC(old a.f)--, a.f = b", via {!Kc.Ir.Irc_update}
     (increment first, so no transitory zero is observable). Writes to plain
     register locals are skipped: "the kernel version of CCount does
     not track references from local variables" (footnote 2);
   - call results stored into tracked pointer slots go through a fresh
     temporary so the same protocol applies;
   - struct assignments of pointer-bearing structs update the counts
     of every pointer field they overwrite/copy;
   - [memset]/[memcpy] on pointer-bearing structs are retargeted to
     the type-aware builtins [memset_t]/[memcpy_t] ("we had to change
     50 uses of memset and memcpy to type-aware versions");
   - the canonical allocation pattern [p = (struct T * ) kmalloc(...)]
     registers the object's runtime type information so the free path
     can drop the object's outgoing references. *)

module I = Kc.Ir

type stats = {
  mutable ptr_writes_instrumented : int;
  mutable register_writes_skipped : int; (* footnote 2 census *)
  mutable struct_copies : int;
  mutable memops_retyped : int;
  mutable alloc_sites_typed : int;
}

let new_stats () =
  {
    ptr_writes_instrumented = 0;
    register_writes_skipped = 0;
    struct_copies = 0;
    memops_retyped = 0;
    alloc_sites_typed = 0;
  }

type ctx = {
  prog : I.program;
  info : Typeinfo.t;
  stats : stats;
  fd : I.fundec;
  temp_ctr : int ref;
  (* vids currently holding a fresh allocator result *)
  mutable fresh_allocs : int list;
}

let allocators = [ "kmalloc"; "kzalloc"; "kmem_cache_alloc"; "vmalloc"; "alloc_pages" ]

let fresh_temp ctx (ty : I.ty) : I.varinfo =
  incr ctx.temp_ctr;
  let v =
    {
      I.vname = Printf.sprintf "__rc%d" !(ctx.temp_ctr);
      vid = 1_000_000 + !(ctx.temp_ctr);
      vty = ty;
      vglob = false;
      vparam = false;
      vtemp = true;
      vaddrof = false;
    }
  in
  ctx.fd.I.slocals <- ctx.fd.I.slocals @ [ v ];
  v

(* Is this lvalue a slot CCount tracks? Plain scalar locals live in
   registers; everything else is memory. *)
let tracked_slot ((host, offs) : I.lval) : bool =
  match (host, offs) with
  | I.Lvar v, [] -> v.I.vglob || v.I.vaddrof
  | _ -> true

let lval_type (lv : I.lval) : I.ty =
  let host, offs = lv in
  let base =
    match host with
    | I.Lvar v -> v.I.vty
    | I.Lmem e -> ( match e.I.ety with I.Tptr (t, _) -> t | t -> t)
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | I.Ofield f, _ -> f.I.fty
      | I.Oindex _, I.Tarray (t, _) -> t
      | I.Oindex _, t -> t)
    base offs

(* Offset paths of every pointer slot inside a type. *)
let rec pointer_paths (prog : I.program) (ty : I.ty) : I.offset list list =
  match ty with
  | I.Tptr _ -> [ [] ]
  | I.Tarray (elt, n) ->
      let inner = pointer_paths prog elt in
      if inner = [] then []
      else
        List.concat
          (List.init n (fun i ->
               List.map (fun path -> I.Oindex (I.const_int (Int64.of_int i)) :: path) inner))
  | I.Tcomp tag ->
      let c = I.comp_find prog tag in
      if c.I.cstruct then
        List.concat_map
          (fun (f : I.fieldinfo) ->
            List.map (fun path -> I.Ofield f :: path) (pointer_paths prog f.I.fty))
          c.I.cfields
      else []
  | I.Tvoid | I.Tint _ | I.Tfun _ -> []

let strip_ptr_casts (e : I.exp) : I.exp =
  let rec go e =
    match e.I.e with
    | I.Ecast (I.Tptr _, inner) when I.is_pointer inner.I.ety -> go inner
    | _ -> e
  in
  go e

let comp_tag_of_ptr (ty : I.ty) : string option =
  match ty with I.Tptr (I.Tcomp tag, _) -> Some tag | _ -> None

let mk_instr loc i : I.stmt = { I.sk = I.Sinstr i; sloc = loc }

(* Note that [vid] no longer holds a fresh allocation. *)
let kill_fresh ctx vid = ctx.fresh_allocs <- List.filter (fun v -> v <> vid) ctx.fresh_allocs

let rc_set_type_stmt ctx loc (lv : I.lval) tag : I.stmt =
  ctx.stats.alloc_sites_typed <- ctx.stats.alloc_sites_typed + 1;
  let tid = Typeinfo.type_id ctx.info tag in
  mk_instr loc
    (I.Icall
       ( None,
         I.Direct "__rc_set_type",
         [ I.mk_exp (I.Elval lv) (lval_type lv); I.const_int (Int64.of_int tid) ] ))

let instr_stmts ctx loc (instr : I.instr) : I.stmt list =
  match instr with
  | I.Iset (lv, e) -> (
      let ty = lval_type lv in
      match ty with
      | I.Tptr _ ->
          let stmts =
            if tracked_slot lv then begin
              ctx.stats.ptr_writes_instrumented <- ctx.stats.ptr_writes_instrumented + 1;
              [ mk_instr loc (I.Irc_update (lv, e)); mk_instr loc instr ]
            end
            else begin
              ctx.stats.register_writes_skipped <- ctx.stats.register_writes_skipped + 1;
              [ mk_instr loc instr ]
            end
          in
          (* Allocation-site RTTI: p = cast of a fresh allocation. *)
          let src = strip_ptr_casts e in
          let rtti =
            match (src.I.e, comp_tag_of_ptr ty) with
            | I.Elval (I.Lvar v, []), Some tag
              when List.mem v.I.vid ctx.fresh_allocs
                   && Typeinfo.pointer_offsets ctx.info tag <> [] ->
                [ rc_set_type_stmt ctx loc lv tag ]
            | _ -> []
          in
          (match lv with I.Lvar v, [] -> kill_fresh ctx v.I.vid | _ -> ());
          stmts @ rtti
      | I.Tcomp tag when Typeinfo.pointer_offsets ctx.info tag <> [] -> (
          (* Typed struct copy: adjust counts of every pointer field. *)
          match e.I.e with
          | I.Elval src_lv ->
              ctx.stats.struct_copies <- ctx.stats.struct_copies + 1;
              let updates =
                List.map
                  (fun path ->
                    let dst_slot = (fst lv, snd lv @ path) in
                    let src_slot = (fst src_lv, snd src_lv @ path) in
                    let slot_ty = lval_type dst_slot in
                    mk_instr loc
                      (I.Irc_update (dst_slot, I.mk_exp (I.Elval src_slot) slot_ty)))
                  (pointer_paths ctx.prog (I.Tcomp tag))
              in
              updates @ [ mk_instr loc instr ]
          | _ -> [ mk_instr loc instr ])
      | _ ->
          (match lv with I.Lvar v, [] -> kill_fresh ctx v.I.vid | _ -> ());
          [ mk_instr loc instr ])
  | I.Icall (ret, target, args) -> (
      (* Retype memset/memcpy on pointer-bearing structs. *)
      let target, args =
        match (target, args) with
        | I.Direct ("memset" as name), dst :: _ | I.Direct ("memcpy" as name), dst :: _ -> (
            match comp_tag_of_ptr (strip_ptr_casts dst).I.ety with
            | Some tag when Typeinfo.pointer_offsets ctx.info tag <> [] ->
                ctx.stats.memops_retyped <- ctx.stats.memops_retyped + 1;
                let tid = Typeinfo.type_id ctx.info tag in
                ( I.Direct (name ^ "_t"),
                  args @ [ I.const_int (Int64.of_int tid) ] )
            | _ -> (target, args))
        | _ -> (target, args)
      in
      let is_alloc = match target with I.Direct n -> List.mem n allocators | _ -> false in
      match ret with
      | Some lv when I.is_pointer (lval_type lv) ->
          if tracked_slot lv then begin
            (* Route through a temporary so the write protocol applies. *)
            ctx.stats.ptr_writes_instrumented <- ctx.stats.ptr_writes_instrumented + 1;
            let tmp = fresh_temp ctx (lval_type lv) in
            let tmp_lv = (I.Lvar tmp, []) in
            let tmp_exp = I.mk_exp (I.Elval tmp_lv) tmp.I.vty in
            let stmts =
              [
                mk_instr loc (I.Icall (Some tmp_lv, target, args));
                mk_instr loc (I.Irc_update (lv, tmp_exp));
                mk_instr loc (I.Iset (lv, tmp_exp));
              ]
            in
            (* RTTI when the destination is a typed struct pointer. *)
            let rtti =
              match comp_tag_of_ptr (lval_type lv) with
              | Some tag when is_alloc && Typeinfo.pointer_offsets ctx.info tag <> [] ->
                  [ rc_set_type_stmt ctx loc lv tag ]
              | _ -> []
            in
            (match lv with I.Lvar v, [] -> kill_fresh ctx v.I.vid | _ -> ());
            stmts @ rtti
          end
          else begin
            ctx.stats.register_writes_skipped <- ctx.stats.register_writes_skipped + 1;
            (match lv with
            | I.Lvar v, [] ->
                kill_fresh ctx v.I.vid;
                if is_alloc then ctx.fresh_allocs <- v.I.vid :: ctx.fresh_allocs;
                (* Direct RTTI when a register local of struct-pointer
                   type receives the allocation. *)
                ()
            | _ -> ());
            let rtti =
              match (lv, comp_tag_of_ptr (lval_type lv)) with
              | (I.Lvar _, []), Some tag
                when is_alloc && Typeinfo.pointer_offsets ctx.info tag <> [] ->
                  [ rc_set_type_stmt ctx loc lv tag ]
              | _ -> []
            in
            (mk_instr loc (I.Icall (ret, target, args)) :: rtti)
          end
      | Some ((I.Lvar v, []) as _lv) ->
          kill_fresh ctx v.I.vid;
          if is_alloc then ctx.fresh_allocs <- v.I.vid :: ctx.fresh_allocs;
          [ mk_instr loc (I.Icall (ret, target, args)) ]
      | _ -> [ mk_instr loc (I.Icall (ret, target, args)) ])
  | I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> [ mk_instr loc instr ]

let rec rewrite_block ctx (b : I.block) : I.block = List.concat_map (rewrite_stmt ctx) b

and rewrite_stmt ctx (s : I.stmt) : I.stmt list =
  let loc = s.I.sloc in
  match s.I.sk with
  | I.Sinstr i -> instr_stmts ctx loc i
  | I.Sif (c, b1, b2) ->
      ctx.fresh_allocs <- [];
      [ { s with I.sk = I.Sif (c, rewrite_block ctx b1, rewrite_block ctx b2) } ]
  | I.Swhile (c, body, step) ->
      ctx.fresh_allocs <- [];
      [ { s with I.sk = I.Swhile (c, rewrite_block ctx body, rewrite_block ctx step) } ]
  | I.Sdowhile (body, c) ->
      ctx.fresh_allocs <- [];
      [ { s with I.sk = I.Sdowhile (rewrite_block ctx body, c) } ]
  | I.Sswitch (e, cases) ->
      ctx.fresh_allocs <- [];
      [
        {
          s with
          I.sk =
            I.Sswitch
              (e, List.map (fun c -> { c with I.cbody = rewrite_block ctx c.I.cbody }) cases);
        };
      ]
  | I.Sbreak | I.Scontinue | I.Sreturn _ -> [ s ]
  | I.Sblock b -> [ { s with I.sk = I.Sblock (rewrite_block ctx b) } ]
  | I.Sdelayed b -> [ { s with I.sk = I.Sdelayed (rewrite_block ctx b) } ]
  | I.Strusted b -> [ { s with I.sk = I.Strusted (rewrite_block ctx b) } ]

(* Rewrite a whole program in place for CCount; returns the stats and
   the type info (which must be registered with the machine before
   running, see {!Typeinfo.register_with}). *)
let instrument_program (prog : I.program) : stats * Typeinfo.t =
  let info = Typeinfo.build prog in
  let stats = new_stats () in
  let temp_ctr = ref 0 in
  List.iter
    (fun fd ->
      let ctx = { prog; info; stats; fd; temp_ctr; fresh_allocs = [] } in
      fd.I.fbody <- rewrite_block ctx fd.I.fbody)
    prog.I.funcs;
  (stats, info)

(** Fault injector.

    [plant rng kind prog] appends one fault block of the given kind to
    a function chosen from [rng] and records the ground-truth label
    [(kind, host function)] in [prog.faults].  Fault blocks have no
    preconditions — they reference only their own locals and dedicated
    globals — so planting never perturbs the clean parts of the
    program. *)

val plant : Rng.t -> Fault.kind -> Prog.t -> Prog.t

val block_of : Rng.t -> Fault.kind -> Prog.block
(** The fault block itself (exposed for tests). *)

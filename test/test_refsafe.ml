(* lib/refsafe: escape classification units, ownership imbalance
   findings on the canonical fault shapes (and silence on the clean
   ones), interprocedural SCC summaries, CCount discharge rules
   R1/R2/R3, and the soundness differential: a refsafe-gated CCount
   run must agree with the ungated run on result and free census
   while executing strictly fewer counter updates. *)

module I = Kc.Ir
module R = Refsafe

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "typedef unsigned long size_t;\n\
   void *kzalloc(size_t size, int gfp) __blocking_if_gfp_wait;\n\
   void *kmalloc(size_t size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   int raise_irq(int irq);\n"

let p src = preamble ^ src

let fd_of prog name =
  match I.find_fun prog name with
  | Some fd -> fd
  | None -> Alcotest.failf "function %s not found" name

let summarize src =
  let prog = parse src in
  (prog, R.Summary.compute prog)

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries                                          *)
(* ------------------------------------------------------------------ *)

let src_summ =
  p
    "void myfree(long * __opt q) { kfree(q); }\n\
     long *mkbuf(void) { return kzalloc(32, 0); }\n\
     long use_(long n) {\n\
     long *h = mkbuf();\n\
     if (h != 0) { h[0] = n; n = h[0]; myfree(h); }\n\
     return n; }\n\
     long irq_kick(void) { raise_irq(3); return 0; }\n\
     int selfr(int n) { if (n > 0) { return selfr(n - 1); } return 0; }\n"

let test_summary_interproc () =
  let _, s = summarize src_summ in
  let get name =
    match R.Summary.lookup s name with
    | Some f -> f
    | None -> Alcotest.failf "no summary for %s" name
  in
  let myfree = get "myfree" in
  Alcotest.(check bool) "myfree may_free" true myfree.R.Summary.may_free;
  Alcotest.(check (list int)) "myfree frees its formal" [ 0 ] myfree.R.Summary.freed_params;
  let mkbuf = get "mkbuf" in
  Alcotest.(check bool) "mkbuf returns alloc" true mkbuf.R.Summary.returns_alloc;
  Alcotest.(check bool) "mkbuf returns nothing else" false mkbuf.R.Summary.returns_other;
  Alcotest.(check bool) "mkbuf itself frees nothing" false mkbuf.R.Summary.may_free;
  let use_ = get "use_" in
  Alcotest.(check bool) "use_ frees transitively" true use_.R.Summary.may_free;
  Alcotest.(check bool) "use_ runs no handlers" false use_.R.Summary.runs_handlers;
  let irq = get "irq_kick" in
  Alcotest.(check bool) "raise_irq caller runs handlers" true irq.R.Summary.runs_handlers

let test_summary_recursion_conservative () =
  let _, s = summarize src_summ in
  match R.Summary.lookup s "selfr" with
  | None -> Alcotest.fail "no summary for selfr"
  | Some f ->
      (* Self-recursive functions get the conservative summary. *)
      Alcotest.(check bool) "recursive fn assumed to free" true f.R.Summary.may_free;
      Alcotest.(check bool) "recursive fn assumed to run handlers" true
        f.R.Summary.runs_handlers

let test_summary_jobs_invariant () =
  let s1 = R.Summary.compute ~jobs:1 (parse src_summ) in
  let s4 = R.Summary.compute ~jobs:4 (parse src_summ) in
  Alcotest.(check bool) "summaries identical under -j4" true (R.Summary.equal s1 s4)

(* ------------------------------------------------------------------ *)
(* Escape classification                                              *)
(* ------------------------------------------------------------------ *)

let src_escape =
  p
    "void sink(long *q, long v) { q[0] = v; }\n\
     long own_(long n) {\n\
     long *h = kzalloc(32, 0);\n\
     if (h != 0) { h[0] = n; n = h[0]; kfree(h); }\n\
     return n; }\n\
     long *share_(void) { long *h = kzalloc(32, 0); return h; }\n"

let class_of src fn var =
  let prog, s = summarize src in
  let infos = R.Escape.classify s prog (fd_of prog fn) in
  match List.find_opt (fun i -> i.R.Escape.var.I.vname = var) infos with
  | Some i -> i.R.Escape.cls
  | None -> Alcotest.failf "%s: no classification for %s" fn var

let cls =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (R.Escape.class_to_string c))
    ( = )

let test_escape_classes () =
  Alcotest.check cls "write-through formal is non-escaping" R.Escape.Non_escaping
    (class_of src_escape "sink" "q");
  Alcotest.check cls "locally freed allocation is uniquely owned" R.Escape.Uniquely_owned
    (class_of src_escape "own_" "h");
  Alcotest.check cls "returned allocation is shared" R.Escape.Shared
    (class_of src_escape "share_" "h")

(* ------------------------------------------------------------------ *)
(* Ownership imbalances                                               *)
(* ------------------------------------------------------------------ *)

let findings src fn =
  let prog, s = summarize src in
  R.Ownership.check s prog (fd_of prog fn)

let kinds fs = List.map (fun f -> f.R.Ownership.fkind) fs

let kind =
  Alcotest.testable
    (fun fmt k -> Format.pp_print_string fmt (R.Ownership.kind_to_string k))
    ( = )

let test_own_clean_silent () =
  let src =
    p
      "long *gslot;\n\
       long heapy(long n) {\n\
       long *hp = kzalloc(32, 0);\n\
       long res = n;\n\
       if (hp != 0) { hp[0] = res; gslot = hp; res = res + hp[0]; gslot = 0; kfree(hp); }\n\
       return res; }\n"
  in
  Alcotest.(check (list kind)) "publish/retire/free is clean" [] (kinds (findings src "heapy"))

let test_own_double_put () =
  let src =
    p
      "long dd(long n) {\n\
       long *h = kzalloc(32, 0);\n\
       long r = n;\n\
       if (h != 0) { h[0] = n; r = h[0]; kfree(h); kfree(h); }\n\
       return r; }\n"
  in
  match findings src "dd" with
  | [ f ] ->
      Alcotest.check kind "double put" R.Ownership.Double_put f.R.Ownership.fkind;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the function" true
        (contains f.R.Ownership.fmsg "dd")
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_own_missing_put () =
  let src =
    p
      "long mp(long n) {\n\
       long *h = kzalloc(32, 0);\n\
       if (h == 0) { return -12; }\n\
       h[0] = n;\n\
       if (n > 3) { return -22; }\n\
       kfree(h);\n\
       return 0; }\n"
  in
  (* The null-guard early return must NOT be flagged (branch
     refinement proves h is null there); the -22 error return must. *)
  Alcotest.(check (list kind)) "one missing-put" [ R.Ownership.Missing_put ]
    (kinds (findings src "mp"))

let test_own_ref_leak () =
  let src =
    p
      "long rl(long n) {\n\
       long *h = kzalloc(32, 0);\n\
       if (h != 0) { h[0] = n; n = h[0]; }\n\
       return n; }\n"
  in
  Alcotest.(check (list kind)) "one leak" [ R.Ownership.Leak ] (kinds (findings src "rl"))

let test_own_put_on_error_path () =
  let src =
    p
      "long *eslot;\n\
       long pe(long n) {\n\
       long *h = kzalloc(32, 0);\n\
       if (h != 0) { eslot = h; h[0] = n; n = h[0]; kfree(h); eslot = 0; }\n\
       return n; }\n"
  in
  Alcotest.(check (list kind)) "one put-on-error-path" [ R.Ownership.Put_on_error_path ]
    (kinds (findings src "pe"))

let test_own_retire_before_put_silent () =
  let src =
    p
      "long *xslot;\n\
       long okp(long n) {\n\
       long *h = kzalloc(32, 0);\n\
       if (h != 0) { xslot = h; h[0] = n; n = h[0]; xslot = 0; kfree(h); }\n\
       return n; }\n"
  in
  Alcotest.(check (list kind)) "retire-then-free is clean" [] (kinds (findings src "okp"))

(* ------------------------------------------------------------------ *)
(* CCount discharge                                                   *)
(* ------------------------------------------------------------------ *)

let count_updates (prog : I.program) =
  let n = ref 0 in
  List.iter
    (fun (fd : I.fundec) ->
      if not fd.I.fextern then
        I.iter_instrs (function I.Irc_update _ -> incr n | _ -> ()) fd.I.fbody)
    prog.I.funcs;
  !n

let discharge_stats src =
  let prog = parse src in
  let _stats, _info = Ccount.Rc_instrument.instrument_program prog in
  let before = count_updates prog in
  let st = R.Discharge.run prog in
  (st, before, count_updates prog)

let test_discharge_r1_stack_host () =
  let src =
    p
      "struct pair { long *a; long *b; };\n\
       long r1(long n) {\n\
       struct pair pr;\n\
       long *h = kzalloc(16, 0);\n\
       pr.a = h;\n\
       pr.b = 0;\n\
       if (pr.a != 0) { n = n + 1; }\n\
       kfree(h);\n\
       return n; }\n"
  in
  let st, before, after = discharge_stats src in
  Alcotest.(check bool) "stack-host updates discharged" true (st.R.Discharge.stack_host >= 2);
  Alcotest.(check int) "all updates gone" 0 after;
  Alcotest.(check int) "seen matches census" before st.R.Discharge.updates_seen

let test_discharge_r2_never_freed () =
  let src =
    p
      "long *gbuf;\n\
       long r2(long n) {\n\
       long *h = kzalloc(16, 0);\n\
       gbuf = h;\n\
       n = n + 1;\n\
       gbuf = 0;\n\
       return n; }\n"
  in
  let st, _, after = discharge_stats src in
  (* No kfree in the whole program: the pointee class is never freed,
     so its counters are unobservable. *)
  Alcotest.(check int) "never-freed discharges both updates" 2 st.R.Discharge.never_freed;
  Alcotest.(check int) "all updates gone" 0 after

let test_discharge_r3_window () =
  let src =
    p
      "long *gs3;\n\
       long r3(long n) {\n\
       long *hp = kzalloc(32, 0);\n\
       if (hp != 0) { hp[0] = n; gs3 = hp; n = n + hp[0]; gs3 = 0; kfree(hp); }\n\
       return n; }\n"
  in
  let st, _, after = discharge_stats src in
  (* kfree(hp) frees the class, so R2 cannot fire; the publish/retire
     pair is a provable window. *)
  Alcotest.(check int) "window discharges publish+retire" 2 st.R.Discharge.publish_window;
  Alcotest.(check int) "no R2 here" 0 st.R.Discharge.never_freed;
  Alcotest.(check int) "all updates gone" 0 after

let test_discharge_keeps_broken_window () =
  let src =
    p
      "long *gsx;\n\
       long rx(long n) {\n\
       long *hp = kzalloc(32, 0);\n\
       if (hp != 0) { gsx = hp; n = n + hp[0]; kfree(hp); gsx = 0; }\n\
       return n; }\n"
  in
  let st, before, after = discharge_stats src in
  (* The free lands inside the publish window, so the updates are
     observable (the census must report the dangling publish) and
     must survive. *)
  Alcotest.(check int) "nothing discharged" 0 (R.Discharge.discharged st);
  Alcotest.(check int) "updates kept" before after

let test_discharge_forging_disables_r2 () =
  let src =
    p
      "long *gbuf2;\n\
       long rf(long n) {\n\
       long *h = kzalloc(16, 0);\n\
       long *forged = (long *)(5000 + n);\n\
       gbuf2 = h;\n\
       gbuf2 = 0;\n\
       return n + (forged != 0); }\n"
  in
  let st, before, after = discharge_stats src in
  Alcotest.(check bool) "forging detected" true st.R.Discharge.forged;
  Alcotest.(check int) "R2/R3 off under forging" before after

(* ------------------------------------------------------------------ *)
(* Soundness differential: gated vs ungated CCount                    *)
(* ------------------------------------------------------------------ *)

type obs = { res : int64; bad : int; total : int }

let observe ~refsafe src =
  let prog = parse src in
  let t, report = Ccount.Creport.ccount_boot ~refsafe prog in
  let res = Vm.Interp.run t "main" [] in
  let c = Vm.Machine.free_census t.Vm.Interp.m in
  (report, { res; bad = c.Vm.Machine.bad; total = c.Vm.Machine.total_frees })

let agree name src =
  let _, plain = observe ~refsafe:false src in
  let report, gated = observe ~refsafe:true src in
  Alcotest.(check int64) (name ^ ": result agrees") plain.res gated.res;
  Alcotest.(check int) (name ^ ": bad frees agree") plain.bad gated.bad;
  Alcotest.(check int) (name ^ ": total frees agree") plain.total gated.total;
  match report.Ccount.Creport.refsafe with
  | None -> Alcotest.fail "gated run carries discharge stats"
  | Some st -> st

let test_differential_clean_shapes () =
  let src =
    p
      "long *gslot;\n\
       struct pair { long *a; long *b; };\n\
       long work(long n) {\n\
       long *hp = kzalloc(32, 0);\n\
       struct pair pr;\n\
       pr.a = hp;\n\
       pr.b = 0;\n\
       long res = n;\n\
       if (hp != 0) { hp[0] = res; gslot = hp; res = res + hp[0]; gslot = 0; kfree(hp); }\n\
       return res; }\n\
       int main(void) { return (int)work(7); }\n"
  in
  let st = agree "clean" src in
  Alcotest.(check bool) "something discharged" true (R.Discharge.discharged st > 0)

let test_differential_bad_free_census_preserved () =
  (* A dangling publish: the ungated run reports one bad free, and the
     gate must not remove the updates that make it visible. *)
  let src =
    p
      "long *gd;\n\
       int main(void) {\n\
       long *h = kzalloc(16, 0);\n\
       gd = h;\n\
       kfree(h);\n\
       gd = 0;\n\
       return 0; }\n"
  in
  let _, plain = observe ~refsafe:false src in
  Alcotest.(check int) "ungated census sees the dangling free" 1 plain.bad;
  ignore (agree "dangling" src)

(* ------------------------------------------------------------------ *)
(* Generated corpus: agreement + strictly fewer updates               *)
(* ------------------------------------------------------------------ *)

let corpus_obs ~refsafe (gp : Gen.Prog.t) =
  let src = Gen.Prog.render gp in
  let prog = parse src in
  let t, report = Ccount.Creport.ccount_boot ~refsafe prog in
  let res = Vm.Interp.run t "main" [] in
  let c = Vm.Machine.free_census t.Vm.Interp.m in
  let remaining = count_updates prog in
  (report, { res; bad = c.Vm.Machine.bad; total = c.Vm.Machine.total_frees }, remaining)

let check_seed_agreement seed =
  let gp = Gen.Generate.clean seed in
  let _, plain, kept_plain = corpus_obs ~refsafe:false gp in
  let report, gated, kept_gated = corpus_obs ~refsafe:true gp in
  let st =
    match report.Ccount.Creport.refsafe with
    | Some st -> st
    | None -> Alcotest.fail "no discharge stats"
  in
  if plain.res <> gated.res || plain.bad <> gated.bad || plain.total <> gated.total then
    Alcotest.failf "seed %d: gated run diverges (res %Ld/%Ld bad %d/%d total %d/%d)" seed
      plain.res gated.res plain.bad gated.bad plain.total gated.total;
  if kept_gated > kept_plain then
    Alcotest.failf "seed %d: gate added updates?" seed;
  (st, kept_plain, kept_gated)

let test_corpus_agreement_and_fewer_updates () =
  let total_seen = ref 0 and total_discharged = ref 0 in
  for seed = 0 to 24 do
    let st, kept_plain, kept_gated = check_seed_agreement seed in
    total_seen := !total_seen + st.R.Discharge.updates_seen;
    total_discharged := !total_discharged + (kept_plain - kept_gated)
  done;
  Alcotest.(check bool) "corpus has instrumented updates" true (!total_seen > 0);
  Alcotest.(check bool) "corpus executes strictly fewer updates" true (!total_discharged > 0)

let prop_refsafe_gate_sound =
  QCheck2.Test.make ~name:"refsafe-gated ccount agrees with ungated ccount (clean corpus)"
    ~count:60
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _ = check_seed_agreement seed in
      true)

(* ------------------------------------------------------------------ *)

let () =
  let seed =
    try int_of_string (Sys.getenv "QCHECK_SEED")
    with Not_found | Failure _ ->
      Random.self_init ();
      Random.int 1_000_000
  in
  Printf.printf "qcheck seed: %d (set QCHECK_SEED to override)\n%!" seed;
  let rand = Random.State.make [| seed |] in
  Alcotest.run "refsafe"
    [
      ( "summary",
        [
          Alcotest.test_case "interprocedural facts" `Quick test_summary_interproc;
          Alcotest.test_case "recursion is conservative" `Quick
            test_summary_recursion_conservative;
          Alcotest.test_case "jobs invariance" `Quick test_summary_jobs_invariant;
        ] );
      ("escape", [ Alcotest.test_case "classification" `Quick test_escape_classes ]);
      ( "ownership",
        [
          Alcotest.test_case "clean publish/retire is silent" `Quick test_own_clean_silent;
          Alcotest.test_case "double put" `Quick test_own_double_put;
          Alcotest.test_case "missing put on error path" `Quick test_own_missing_put;
          Alcotest.test_case "ref leak" `Quick test_own_ref_leak;
          Alcotest.test_case "put on error path" `Quick test_own_put_on_error_path;
          Alcotest.test_case "retire before put is silent" `Quick
            test_own_retire_before_put_silent;
        ] );
      ( "discharge",
        [
          Alcotest.test_case "R1 stack host" `Quick test_discharge_r1_stack_host;
          Alcotest.test_case "R2 never freed" `Quick test_discharge_r2_never_freed;
          Alcotest.test_case "R3 publish window" `Quick test_discharge_r3_window;
          Alcotest.test_case "keeps broken window" `Quick test_discharge_keeps_broken_window;
          Alcotest.test_case "forging disables R2" `Quick test_discharge_forging_disables_r2;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean shapes agree" `Quick test_differential_clean_shapes;
          Alcotest.test_case "bad-free census preserved" `Quick
            test_differential_bad_free_census_preserved;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "agreement + strictly fewer updates" `Quick
            test_corpus_agreement_and_fewer_updates;
        ] );
      ("qcheck", List.map (QCheck_alcotest.to_alcotest ~rand) [ prop_refsafe_gate_sound ]);
    ]

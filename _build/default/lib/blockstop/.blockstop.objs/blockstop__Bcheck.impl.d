lib/blockstop/bcheck.ml: Kc List Printf Set String

(* Atomic-region analysis: where are interrupts disabled, and which
   calls made there may block?

   Intra-procedurally, a structured walk tracks the interrupt-disable
   depth (spin_lock / local_irq_disable increment it, the unlock /
   enable calls decrement). Branches that disagree keep the larger
   depth — conservative, and one of the sources of false positives
   the paper resolves with runtime checks.

   Inter-procedurally, a fixpoint computes which functions can be
   *entered* in atomic context: interrupt handlers (functions passed
   to [request_irq]) and functions called from atomic sites. *)

module I = Kc.Ir
module SS = Set.Make (String)

type warning = {
  w_in : string; (* function containing the call *)
  w_callee : string;
  w_loc : Kc.Loc.t;
  w_via : Callgraph.via;
  w_entry_atomic : bool; (* atomic because the whole function is entered atomic *)
  w_witness : string list; (* chain down to a blocking leaf *)
}

let disablers = [ "spin_lock"; "spin_lock_irqsave"; "local_irq_disable" ]
let enablers = [ "spin_unlock"; "spin_unlock_irqrestore"; "local_irq_enable" ]

(* Functions registered as interrupt handlers. *)
let irq_handlers (prog : I.program) : SS.t =
  let handlers = ref SS.empty in
  List.iter
    (fun (fd : I.fundec) ->
      I.iter_instrs
        (fun instr ->
          match instr with
          | I.Icall (_, I.Direct "request_irq", args) ->
              List.iter
                (fun (a : I.exp) ->
                  I.fold_exp
                    (fun () sub ->
                      match sub.I.e with
                      | I.Efun f -> handlers := SS.add f !handlers
                      | _ -> ())
                    () a)
                args
          | _ -> ())
        fd.I.fbody)
    prog.I.funcs;
  !handlers

(* One pass over a function body. [entry_atomic] poisons the whole
   body. Returns collected (callee, atomic?) pairs for the
   inter-procedural fixpoint and emits warnings via [warn]. *)
let scan_function (bl : Blocking.t) (fd : I.fundec) ~(entry_atomic : bool)
    ~(warn : warning -> unit) : (Callgraph.edge * bool) list =
  let cg = bl.Blocking.cg in
  let sites = ref [] in
  (* Edges of this function indexed by location for via/target info. *)
  let edges_at : (Kc.Loc.t, Callgraph.edge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Callgraph.edge) ->
      let cur = match Hashtbl.find_opt edges_at e.Callgraph.loc with Some l -> l | None -> [] in
      Hashtbl.replace edges_at e.Callgraph.loc (e :: cur))
    (Callgraph.callees cg fd.I.fname);
  let rec walk_block depth (b : I.block) : int =
    List.fold_left walk_stmt depth b
  and walk_stmt depth (s : I.stmt) : int =
    match s.I.sk with
    | I.Sinstr (I.Icall (_, target, _)) ->
        let dname = match target with I.Direct n -> Some n | I.Indirect _ -> None in
        let depth' =
          match dname with
          | Some n when List.mem n disablers -> depth + 1
          | Some n when List.mem n enablers -> max 0 (depth - 1)
          | _ -> depth
        in
        let atomic = entry_atomic || depth > 0 in
        List.iter
          (fun (e : Callgraph.edge) ->
            sites := (e, atomic) :: !sites;
            if atomic && Blocking.call_may_block bl e then
              warn
                {
                  w_in = fd.I.fname;
                  w_callee = e.Callgraph.callee;
                  w_loc = e.Callgraph.loc;
                  w_via = e.Callgraph.via;
                  w_entry_atomic = entry_atomic && depth = 0;
                  w_witness = Blocking.witness bl e.Callgraph.callee;
                })
          (match Hashtbl.find_opt edges_at s.I.sloc with Some l -> l | None -> []);
        depth'
    | I.Sinstr _ -> depth
    | I.Sif (_, b1, b2) ->
        let d1 = walk_block depth b1 and d2 = walk_block depth b2 in
        max d1 d2
    | I.Swhile (_, body, step) ->
        let d = walk_block depth (body @ step) in
        max depth d
    | I.Sdowhile (body, _) ->
        let d = walk_block depth body in
        max depth d
    | I.Sswitch (_, cases) ->
        List.fold_left (fun acc (c : I.case) -> max acc (walk_block depth c.I.cbody)) depth cases
    | I.Sbreak | I.Scontinue | I.Sreturn _ -> depth
    | I.Sblock b | I.Sdelayed b | I.Strusted b -> walk_block depth b
  in
  ignore (walk_block 0 fd.I.fbody);
  !sites

type result = {
  warnings : warning list;
  atomic_entry : SS.t; (* functions enterable in atomic context *)
  handlers : SS.t;
}

let analyze (bl : Blocking.t) : result =
  let prog = bl.Blocking.cg.Callgraph.prog in
  let handlers = irq_handlers prog in
  (* A guarded function carries the assert_not_atomic runtime check:
     the assertion says it is never entered in atomic context, so it
     never joins the atomic-entry set. *)
  let guarded = bl.Blocking.guarded in
  (* Fixpoint on the atomic-entry set. *)
  let atomic_entry = ref (SS.diff handlers guarded) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fd : I.fundec) ->
        let entry_atomic = SS.mem fd.I.fname !atomic_entry in
        let sites = scan_function bl fd ~entry_atomic ~warn:(fun _ -> ()) in
        List.iter
          (fun ((e : Callgraph.edge), atomic) ->
            if
              atomic
              && (not (SS.mem e.Callgraph.callee !atomic_entry))
              && not (SS.mem e.Callgraph.callee guarded)
            then begin
              (* Only defined functions matter for entry contexts. *)
              match I.find_fun prog e.Callgraph.callee with
              | Some fd2 when not fd2.I.fextern ->
                  atomic_entry := SS.add e.Callgraph.callee !atomic_entry;
                  changed := true
              | _ -> ()
            end)
          sites)
      prog.I.funcs
  done;
  (* Final pass collecting warnings. *)
  let warnings = ref [] in
  List.iter
    (fun (fd : I.fundec) ->
      let entry_atomic = SS.mem fd.I.fname !atomic_entry in
      ignore (scan_function bl fd ~entry_atomic ~warn:(fun w -> warnings := w :: !warnings)))
    prog.I.funcs;
  { warnings = List.rev !warnings; atomic_entry = !atomic_entry; handlers }

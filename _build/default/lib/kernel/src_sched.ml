(* kernel/sched.kc + fork.kc — task structures, a runqueue, fork and
   exit. fork clones the page directory (pointer-write heavy: the
   CCount overhead experiment), and exit contains the paper-style
   bad-free pattern: in the unfixed variant a task is freed while its
   parent's children list still references it. The [fixed] variant
   nulls the back-references first (the "27 instances" of nulling) and
   tears the sibling chain down inside a delayed-free scope. *)

let source ~(fixed_frees : bool) =
  let exit_body =
    if fixed_frees then
      {kc|
// Fixed teardown: unlink from the parent before freeing, and use a
// delayed-free scope for the sibling chain.
int task_release(struct task *t) {
  struct task * __opt parent = t->parent;
  if (parent != 0) {
    // Null the parent's reference to us (bad-free fix: nulling).
    int i;
    for (i = 0; i < 8; i++) {
      struct task * __opt c = parent->children[i];
      if (c == t) {
        parent->children[i] = 0;
      }
    }
  }
  t->parent = 0;
  rq_remove(t);
  struct pgdir * __opt pd = t->mm;
  t->mm = 0;
  if (pd != 0) {
    pgdir_destroy(pd);
  }
  __delayed_free {
    // Orphan our children onto init_task, then free ourselves.
    int i;
    for (i = 0; i < 8; i++) {
      struct task * __opt c = t->children[i];
      if (c != 0) {
        c->parent = init_task;
        t->children[i] = 0;
      }
    }
    kfree(t);
  }
  return 0;
}
|kc}
    else
      {kc|
// Unfixed teardown (as first found): frees the task while the
// parent's children slot still points at it -- CCount reports a bad
// free here and leaks the task to stay sound.
int task_release(struct task *t) {
  rq_remove(t);
  struct pgdir * __opt pd = t->mm;
  t->mm = 0;
  if (pd != 0) {
    pgdir_destroy(pd);
  }
  int i;
  for (i = 0; i < 8; i++) {
    struct task * __opt c = t->children[i];
    if (c != 0) {
      c->parent = init_task;
      t->children[i] = 0;
    }
  }
  kfree(t);
  return 0;
}
|kc}
  in
  {kc|
// ---------------------------------------------------------------
// kernel/sched.kc: tasks and the runqueue
// ---------------------------------------------------------------

enum task_state { TASK_RUNNING = 0, TASK_SLEEPING = 1, TASK_ZOMBIE = 2 };

struct task {
  int pid;
  int state;
  int prio;
  long utime;
  char comm[16];
  u32 sig_pending[4];
  struct pgdir * __opt mm;
  struct task * __opt parent;
  struct task * __opt children[8];
};

long pid_bitmap[8];
struct task * __opt runqueue[64];
int nr_running;
struct task * __opt init_task;
struct task * __opt current_task;
long runqueue_lock;

int pid_alloc(void) {
  int pid = bitmap_find_zero(pid_bitmap, 8);
  if (pid < 0) { return -EAGAIN; }
  bitmap_set(pid_bitmap, 8, pid);
  return pid;
}

void pid_release(int pid) {
  if (pid >= 0) {
    bitmap_clear(pid_bitmap, 8, pid);
  }
}

// Insert into the first free runqueue slot.
int rq_insert(struct task *t) {
  long flags = spin_lock_irqsave(&runqueue_lock);
  int i;
  for (i = 0; i < 64; i++) {
    if (runqueue[i] == 0) {
      runqueue[i] = t;
      nr_running = nr_running + 1;
      spin_unlock_irqrestore(&runqueue_lock, flags);
      return 0;
    }
  }
  spin_unlock_irqrestore(&runqueue_lock, flags);
  return -EAGAIN;
}

void rq_remove(struct task *t) {
  long flags = spin_lock_irqsave(&runqueue_lock);
  int i;
  for (i = 0; i < 64; i++) {
    if (runqueue[i] == t) {
      runqueue[i] = 0;
      nr_running = nr_running - 1;
    }
  }
  spin_unlock_irqrestore(&runqueue_lock, flags);
}

// Pick the runnable task with the best priority, scanning from a
// rotating start for fairness. The rotated index is masked, so its
// bounds checks stay at run time -- this is where lat_ctx's Table 1
// overhead lives.
int rq_last;

struct task * __opt rq_pick(void) {
  int best = -1;
  int best_prio = 1000;
  int i;
  for (i = 0; i < 64; i++) {
    int idx = (rq_last + i) & 63;
    struct task * __opt t = runqueue[idx];
    if (t != 0) {
      if (t->state == 0) {
        if (t->prio < best_prio) {
          best_prio = t->prio;
          best = idx;
        }
      }
    }
  }
  if (best < 0) { return 0; }
  rq_last = (best + 1) & 63;
  return runqueue[best];
}

// ---------------------------------------------------------------
// kernel/signal.kc
// ---------------------------------------------------------------

// Mark a signal pending. The word index comes from a shift-mask of
// the signal number, so the access is runtime-checked.
int send_signal(struct task *t, int sig) {
  if (sig < 0) { return -EINVAL; }
  if (sig >= 128) { return -EINVAL; }
  int word = (sig >> 5) & 3;
  int bit = sig & 31;
  u32 one = 1;
  t->sig_pending[word] = t->sig_pending[word] | (one << bit);
  return 0;
}

// Take the lowest pending signal, or -1.
int dequeue_signal(struct task *t) {
  int w;
  for (w = 0; w < 4; w++) {
    u32 p = t->sig_pending[w];
    if (p != 0) {
      int b;
      for (b = 0; b < 32; b++) {
        u32 one = 1;
        if (p & (one << b)) {
          t->sig_pending[w] = p & ~(one << b);
          return w * 32 + b;
        }
      }
    }
  }
  return -1;
}

// ---------------------------------------------------------------
// kernel/fork.kc
// ---------------------------------------------------------------

struct task *task_create(char * __nullterm name, int gfp) {
  struct task *t = kzalloc(sizeof(struct task), gfp);
  t->pid = pid_alloc();
  t->state = 0;
  t->prio = 20;
  kstrncpy(t->comm, 16, name);
  return t;
}

// fork: clone the parent's task and page tables. The pgdir_clone is
// the pointer-write storm CCount pays for on SMP.
struct task * __opt do_fork(struct task *parent, int gfp) {
  struct task *child = task_create("forked", gfp);
  child->prio = parent->prio;
  child->parent = parent;
  int slot = -1;
  int i;
  for (i = 0; i < 8; i++) {
    if (slot < 0) {
      if (parent->children[i] == 0) { slot = i; }
    }
  }
  if (slot < 0) {
    pid_release(child->pid);
    child->parent = 0;
    kfree(child);
    return 0;
  }
  parent->children[slot] = child;
  struct pgdir * __opt pmm = parent->mm;
  if (pmm != 0) {
    child->mm = pgdir_clone(pmm, gfp);
  }
  rq_insert(child);
  return child;
}

// exit/wait: reap a child.
|kc}
  ^ exit_body
  ^ {kc|

int do_exit(struct task *t) {
  t->state = 2;
  pid_release(t->pid);
  // The dying task must not stay current: context_switch would
  // otherwise dereference freed memory (a use-after-free the VM --
  // and CCount -- both catch).
  if (current_task == t) {
    current_task = init_task;
  }
  return task_release(t);
}

// A context switch: bookkeeping only (the VM has one CPU).
void context_switch(struct task * __opt next) {
  struct task * __opt prev = current_task;
  if (prev != 0) {
    prev->utime = prev->utime + 1;
  }
  current_task = next;
}

// The scheduler tick, called from the timer interrupt: must never
// block (it runs in irq context).
int scheduler_tick(int irq) {
  struct task * __opt next = rq_pick();
  context_switch(next);
  return 0;
}

void sched_init(void) {
  init_task = task_create("init", 1);
  // Give init a real address space: one leaf table with mapped
  // pages, shared copy-on-write-style across fork.
  struct pgdir *pd = pgdir_alloc(GFP_KERNEL);
  struct task * __opt it = init_task;
  if (it != 0) {
    int i;
    for (i = 0; i < 12; i++) {
      struct page *pg = page_alloc(GFP_KERNEL);
      pgdir_map(pd, 0, i, pg, GFP_KERNEL);
    }
    it->mm = pd;
    rq_insert(it);
  }
  current_task = init_task;
  request_irq(0, scheduler_tick);
}
|kc}

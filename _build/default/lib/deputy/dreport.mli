(** Deputy pipeline driver and conversion census (paper §2.1, E1).

    [deputize] is the one call most users need: it generates checks
    ({!Instrument}) and statically discharges the provable ones
    ({!Optimize}) on a program in place, returning the census. *)

type report = {
  inserted : int;  (** checks generated *)
  discharged : int;  (** removed by the static optimizer *)
  residual : int;  (** left as runtime checks *)
  derefs_seen : int;
  trusted_ops : int;  (** operations skipped under __trusted *)
  unresolved_ops : int;  (** dependent count not instantiable at the use *)
  static_errors : (string * Kc.Loc.t) list;  (** definite violations *)
  annotations : int;  (** annotations carried by the source *)
  trusted_blocks : int;
  functions : int;
}

val count_type_annotations : Kc.Ir.program -> int
val count_trusted_blocks : Kc.Ir.program -> int

(** Run the Deputy pipeline on [prog] in place. [~optimize:false] is
    the ablation that leaves every generated check at run time. *)
val deputize : ?optimize:bool -> Kc.Ir.program -> report

val pp : Format.formatter -> report -> unit

test/test_kc.ml: Alcotest Array Hashtbl Kc List String

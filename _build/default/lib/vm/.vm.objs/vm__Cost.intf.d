lib/vm/cost.mli:

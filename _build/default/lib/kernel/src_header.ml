(* The corpus' shared header: core typedefs, GFP flags, and the
   annotated extern declarations of the kernel API the VM provides
   (allocators, string/memory ops, locking, blocking primitives).

   This is the KC equivalent of include/linux/: every other
   compilation unit is parsed after it. *)

let source =
  {kc|
// ---------------------------------------------------------------
// ivy mini-kernel: shared header
// ---------------------------------------------------------------

typedef unsigned long size_t;
typedef long ssize_t;
typedef unsigned int u32;
typedef unsigned short u16;
typedef unsigned char u8;

enum gfp_flags { GFP_ATOMIC = 0, GFP_KERNEL = 1 };

enum errno {
  ENOMEM = 12,
  EINVAL = 22,
  ENOENT = 2,
  EBUSY  = 16,
  EIO    = 5,
  EAGAIN = 11,
  ENOSPC = 28
};

// ---- allocators (VM builtins) -----------------------------------
void *kmalloc(size_t size, int gfp) __blocking_if_gfp_wait;
void *kzalloc(size_t size, int gfp) __blocking_if_gfp_wait;
void kfree(void * __opt p);
long kmem_cache_create(size_t size);
void *kmem_cache_alloc(long cache, int gfp) __blocking_if_gfp_wait;
void kmem_cache_free(long cache, void * __opt p);
void *vmalloc(size_t size) __blocking;
void vfree(void * __opt p);
void *alloc_pages(int order);
void free_pages(void * __opt p);

// ---- memory and string ops (VM builtins) ------------------------
void *memset(void *p, int c, size_t n) __trusted;
void *memcpy(void *d, void *s, size_t n) __trusted;
int memcmp(void *a, void *b, size_t n) __trusted;
size_t strlen(char * __nullterm s);
char *strcpy(char *d, char * __nullterm s) __trusted;
int strcmp(char * __nullterm a, char * __nullterm b);

// ---- console / panic --------------------------------------------
void printk(char * __nullterm fmt, ...);
void panic(char * __nullterm msg);

// ---- interrupts and locking -------------------------------------
void local_irq_disable(void);
void local_irq_enable(void);
void spin_lock(long *l);
void spin_unlock(long *l);
long spin_lock_irqsave(long *l);
void spin_unlock_irqrestore(long *l, long flags);
int in_interrupt(void);
void irq_enter(void);
void irq_exit(void);
int request_irq(int irq, int (*handler)(int));
int raise_irq(int irq);
void assert_not_atomic(void);

// ---- blocking primitives ----------------------------------------
void schedule(void) __blocking;
void might_sleep(void) __blocking;
void msleep(int ms) __blocking;
void wait_for_completion(long *c) __blocking;
void complete(long *c);
void mutex_lock(long *m) __blocking;
void mutex_unlock(long *m);
void down(long *sem) __blocking;
void up(long *sem);
int copy_to_user(void * __user d, void *s, size_t n) __blocking;
int copy_from_user(void *d, void * __user s, size_t n) __blocking;

// ---- misc --------------------------------------------------------
long get_cycles(void);
void udelay(int usec);
void barrier(void);
void cpu_relax(void);
|kc}

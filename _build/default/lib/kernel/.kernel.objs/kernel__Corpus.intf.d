lib/kernel/corpus.mli: Kc

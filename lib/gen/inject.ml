let block_of rng (kind : Fault.kind) : Prog.block =
  match kind with
  | Fault.Oob_write -> (
      match Rng.int rng 5 with
      | 0 -> Prog.F_oob_const { idx = Rng.range rng 4 7 }
      | 1 -> Prog.F_oob_dyn { off = Rng.range rng 4 9 }
      | 2 -> Prog.F_oob_cast { delta = Rng.range rng 8 12 }
      | 3 -> Prog.F_oob_loop { bound = Rng.range rng 4 7 }
      | _ -> Prog.F_oob_symbolic { base = Rng.range rng 0 4 })
  | Fault.Dangling_free -> Prog.F_dangling
  | Fault.Atomic_block -> Prog.F_atomic_block
  | Fault.Lock_inversion ->
      let lo = Rng.int rng 2 in
      Prog.F_lock_inversion { lo; hi = Rng.range rng (lo + 1) 2 }
  | Fault.Unchecked_err -> Prog.F_unchecked_err
  | Fault.User_deref -> Prog.F_user_deref
  | Fault.Ref_leak -> Prog.F_ref_leak
  | Fault.Double_put -> Prog.F_double_put
  | Fault.Put_on_error_path -> Prog.F_put_on_error_path

let plant rng kind (p : Prog.t) : Prog.t =
  let host = List.nth p.Prog.funcs (Rng.int rng (List.length p.Prog.funcs)) in
  let fb = block_of rng kind in
  let funcs =
    List.map
      (fun (f : Prog.func) ->
        if f.Prog.fid = host.Prog.fid then { f with Prog.blocks = f.Prog.blocks @ [ fb ] }
        else f)
      p.Prog.funcs
  in
  { p with Prog.funcs; Prog.faults = p.Prog.faults @ [ (kind, Prog.fname host.Prog.fid) ] }

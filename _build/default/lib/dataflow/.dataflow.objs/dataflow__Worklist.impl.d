lib/dataflow/worklist.ml: Array Cfg Int List Queue Set

lib/kc/lexer.mli: Loc Token

(* Typed intermediate representation of KC programs.

   The type checker ({!Typecheck}) elaborates the surface AST into this
   IR. Differences from the surface syntax, in the style of CIL:

   - every expression carries its type;
   - lvalues are explicit (host + offset path);
   - array-to-pointer decay and implicit conversions are explicit;
   - function calls appear only as instructions, never nested inside
     expressions (the elaborator hoists them into temporaries);
   - compound assignment, [++]/[--] and [for] loops are desugared;
   - runtime checks inserted by the analyses are first-class
     instructions with their own cost accounting. *)

type ikind = Ast.ikind
type sign = Ast.sign

type ty =
  | Tvoid
  | Tint of ikind * sign
  | Tptr of ty * annots
  | Tarray of ty * int
  | Tfun of ty * ty list
  | Tcomp of string (* struct or union tag; see {!compinfo} *)

(* Deputy-style pointer annotations; [count] expressions have been
   elaborated and may only mention parameters, locals, sibling struct
   fields (via {!Eself_field}) and constants. *)
and annots = {
  a_count : exp option;
  a_nullterm : bool;
  a_opt : bool;
  a_trusted : bool;
  a_user : bool; (* points into user space *)
}

and exp = { e : exp_node; ety : ty }

and exp_node =
  | Econst of int64
  | Estr of string (* string literal; becomes char * __nullterm *)
  | Elval of lval
  | Eunop of Ast.unop * exp
  | Ebinop of Ast.binop * exp * exp
  | Econd of exp * exp * exp (* no calls inside; lazy arms *)
  | Ecast of ty * exp
  | Eaddrof of lval
  | Estartof of lval (* array decay: &a[0] *)
  | Efun of string (* function designator, type Tptr(Tfun _) *)
  | Eself_field of string * string (* comp tag, field name: used only
                                      inside count annotations of struct
                                      fields; means "this.field" *)

and lval = lhost * offset list
and lhost = Lvar of varinfo | Lmem of exp
and offset = Ofield of fieldinfo | Oindex of exp

and varinfo = {
  vname : string;
  vid : int;
  mutable vty : ty;
  vglob : bool;
  vparam : bool;
  vtemp : bool; (* compiler-introduced temporary *)
  mutable vaddrof : bool; (* address taken somewhere *)
}

and fieldinfo = { fcomp : string; fname : string; fty : ty }

type compinfo = { cname : string; cstruct : bool; cfields : fieldinfo list }

(* Runtime checks. Inserted by Deputy / BlockStop instrumentation; the
   VM evaluates them and raises a trap when they fail. *)
type check =
  | Ck_nonnull of exp
  | Ck_le of exp * exp (* e1 <= e2, signed 64-bit *)
  | Ck_lt of exp * exp (* e1 < e2 *)
  | Ck_nt_next of exp * int (* nullterm advance: *(p) != 0; int = elem width *)
  | Ck_not_atomic (* BlockStop: panic if interrupts are disabled *)

type call_target = Direct of string | Indirect of exp

type instr =
  | Iset of lval * exp
  | Icall of lval option * call_target * exp list
  | Icheck of check * string (* reason, for diagnostics *)
  | Irc_inc of exp (* CCount: increment refcount of target chunk *)
  | Irc_dec of exp (* CCount: decrement refcount of target chunk *)
  | Irc_update of lval * exp
    (* CCount pointer-write protocol for `slot = e`: increment the
       refcount of e's target, then decrement the refcount of the
       slot's old target, before the store itself. Skipped at runtime
       when the slot lives on the stack (locals are untracked, paper
       footnote 2). *)

type stmt = { sk : stmt_node; sloc : Loc.t }

and stmt_node =
  | Sinstr of instr
  | Sif of exp * block * block
  | Swhile of exp * block * block (* cond, body, step-block (for-loops) *)
  | Sdowhile of block * exp
  | Sswitch of exp * case list
  | Sbreak
  | Scontinue
  | Sreturn of exp option
  | Sblock of block
  | Sdelayed of block (* CCount delayed-free scope *)
  | Strusted of block (* checks suppressed inside *)

and case = { cvals : int64 list; cdefault : bool; cbody : block }
and block = stmt list

type fun_annot = Ast.fun_annot

type fundec = {
  fname : string;
  fid : int;
  mutable sformals : varinfo list;
  mutable slocals : varinfo list; (* includes temporaries *)
  fret : ty;
  mutable fbody : block;
  fannots : fun_annot list;
  fstatic : bool;
  floc : Loc.t;
  mutable fextern : bool; (* declared but not defined: VM builtin or stub *)
}

type ginit = Gi_exp of exp | Gi_list of ginit list

type program = {
  comps : (string, compinfo) Hashtbl.t;
  enum_items : (string, int64) Hashtbl.t; (* enumerator -> value *)
  mutable globals : (varinfo * ginit option) list; (* in program order *)
  mutable funcs : fundec list; (* defined functions, in program order *)
  fun_by_name : (string, fundec) Hashtbl.t;
  glob_by_name : (string, varinfo) Hashtbl.t;
}

let no_annots =
  { a_count = None; a_nullterm = false; a_opt = false; a_trusted = false; a_user = false }

let mk_exp e ety = { e; ety }
let int_type = Tint (Ast.Iint, Ast.Signed)
let uint_type = Tint (Ast.Iint, Ast.Unsigned)
let char_type = Tint (Ast.Ichar, Ast.Unsigned)
let long_type = Tint (Ast.Ilong, Ast.Signed)
let ulong_type = Tint (Ast.Ilong, Ast.Unsigned)
let const_int ?(ty = int_type) n = mk_exp (Econst n) ty
let zero = const_int 0L
let one = const_int 1L

let comp_find prog tag =
  match Hashtbl.find_opt prog.comps tag with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown struct/union tag %s" tag)

let field_find prog tag fname =
  let c = comp_find prog tag in
  match List.find_opt (fun (f : fieldinfo) -> f.fname = fname) c.cfields with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "no field %s in %s" fname tag)

let find_fun prog name = Hashtbl.find_opt prog.fun_by_name name

(* A view of [p] whose fundecs can be re-instrumented (fbody
   reassigned) without disturbing the original. The stmt trees, types
   and varinfos are shared: the instrumentation passes replace bodies
   wholesale rather than mutating statements in place. *)
let copy_program p =
  let memo = Hashtbl.create 64 in
  let copy_fd (fd : fundec) =
    match Hashtbl.find_opt memo fd.fid with
    | Some fd' -> fd'
    | None ->
        let fd' = { fd with fname = fd.fname } in
        Hashtbl.add memo fd.fid fd';
        fd'
  in
  let funcs = List.map copy_fd p.funcs in
  let fun_by_name = Hashtbl.create (Hashtbl.length p.fun_by_name) in
  Hashtbl.iter (fun name fd -> Hashtbl.replace fun_by_name name (copy_fd fd)) p.fun_by_name;
  { p with funcs; fun_by_name }

let is_pointer = function Tptr _ -> true | _ -> false
let is_integral = function Tint _ -> true | _ -> false
let is_arith = is_integral

(* Structural type equality ignoring annotations (the erasure view). *)
let rec eq_erased a b =
  match (a, b) with
  | Tvoid, Tvoid -> true
  | Tint (k1, s1), Tint (k2, s2) -> k1 = k2 && s1 = s2
  | Tptr (t1, _), Tptr (t2, _) -> eq_erased t1 t2
  | Tarray (t1, n1), Tarray (t2, n2) -> n1 = n2 && eq_erased t1 t2
  | Tfun (r1, a1), Tfun (r2, a2) ->
      eq_erased r1 r2
      && List.length a1 = List.length a2
      && List.for_all2 eq_erased a1 a2
  | Tcomp c1, Tcomp c2 -> c1 = c2
  | (Tvoid | Tint _ | Tptr _ | Tarray _ | Tfun _ | Tcomp _), _ -> false

let annots_of = function Tptr (_, a) -> a | _ -> no_annots

let rec type_to_string = function
  | Tvoid -> "void"
  | Tint (Ast.Ichar, Ast.Unsigned) -> "char"
  | Tint (Ast.Ichar, Ast.Signed) -> "signed char"
  | Tint (Ast.Ishort, Ast.Signed) -> "short"
  | Tint (Ast.Ishort, Ast.Unsigned) -> "unsigned short"
  | Tint (Ast.Iint, Ast.Signed) -> "int"
  | Tint (Ast.Iint, Ast.Unsigned) -> "unsigned int"
  | Tint (Ast.Ilong, Ast.Signed) -> "long"
  | Tint (Ast.Ilong, Ast.Unsigned) -> "unsigned long"
  | Tptr (t, a) ->
      let annot_str =
        (if a.a_count <> None then " __count(_)" else "")
        ^ (if a.a_nullterm then " __nullterm" else "")
        ^ (if a.a_opt then " __opt" else "")
        ^ (if a.a_trusted then " __trusted" else "")
        ^ if a.a_user then " __user" else ""
      in
      type_to_string t ^ " *" ^ annot_str
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (type_to_string t) n
  | Tfun (ret, args) ->
      Printf.sprintf "%s(*)(%s)" (type_to_string ret)
        (String.concat ", " (List.map type_to_string args))
  | Tcomp tag -> "struct/union " ^ tag

(* Iterate over all statements of a block, recursing into nested
   blocks. [f] is applied to every statement. *)
let rec iter_stmts f (b : block) =
  let stmt s =
    f s;
    match s.sk with
    | Sinstr _ | Sbreak | Scontinue | Sreturn _ -> ()
    | Sif (_, b1, b2) ->
        iter_stmts f b1;
        iter_stmts f b2
    | Swhile (_, b1, b2) ->
        iter_stmts f b1;
        iter_stmts f b2
    | Sdowhile (b1, _) -> iter_stmts f b1
    | Sswitch (_, cases) -> List.iter (fun c -> iter_stmts f c.cbody) cases
    | Sblock b1 | Sdelayed b1 | Strusted b1 -> iter_stmts f b1
  in
  List.iter stmt b

(* Iterate over every instruction of a block. *)
let iter_instrs f b =
  iter_stmts (fun s -> match s.sk with Sinstr i -> f i | _ -> ()) b

(* Iterate over all expressions appearing directly in an instruction. *)
let exps_of_instr = function
  | Iset (_, e) -> [ e ]
  | Icall (_, Direct _, args) -> args
  | Icall (_, Indirect f, args) -> f :: args
  | Icheck (ck, _) -> (
      match ck with
      | Ck_nonnull e -> [ e ]
      | Ck_le (a, b) | Ck_lt (a, b) -> [ a; b ]
      | Ck_nt_next (e, _) -> [ e ]
      | Ck_not_atomic -> [])
  | Irc_inc e | Irc_dec e -> [ e ]
  | Irc_update (_, e) -> [ e ]

let lval_of_instr = function
  | Iset (lv, _) -> Some lv
  | Icall (lv, _, _) -> lv
  | Icheck _ | Irc_inc _ | Irc_dec _ | Irc_update _ -> None

(* Fold over every sub-expression of an expression (prefix order). *)
let rec fold_exp f acc e =
  let acc = f acc e in
  match e.e with
  | Econst _ | Estr _ | Efun _ | Eself_field _ -> acc
  | Elval lv -> fold_lval f acc lv
  | Eunop (_, e1) | Ecast (_, e1) -> fold_exp f acc e1
  | Ebinop (_, e1, e2) -> fold_exp f (fold_exp f acc e1) e2
  | Econd (e1, e2, e3) -> fold_exp f (fold_exp f (fold_exp f acc e1) e2) e3
  | Eaddrof lv | Estartof lv -> fold_lval f acc lv

and fold_lval f acc (host, offs) =
  let acc = match host with Lvar _ -> acc | Lmem e -> fold_exp f acc e in
  List.fold_left
    (fun acc o -> match o with Ofield _ -> acc | Oindex e -> fold_exp f acc e)
    acc offs

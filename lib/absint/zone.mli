(** Zone domain over stable program variables: difference-bound
    constraints [x - y <= c] (see {!Dbm}) plus a distinguished zero
    variable for unary bounds, reduced with the interval component by
    seeding closures with interval bounds and reading derived unary
    bounds back out. Constraints bound raw post-norm int64
    representations, matching both {!Interval} and Deputy's check
    semantics. *)

type t = Dbm.t

val zero : int
(** The distinguished zero variable (-1; program vids are positive). *)

val top : t
val is_top : t -> bool
val equal : t -> t -> bool
val join : t -> t -> t
val widen : t -> t -> t
val narrow : t -> t -> t
val forget : int -> t -> t
val shift : int -> int64 -> t -> t
val add_le : int -> int -> int64 -> t -> t option
val cardinal : t -> int

val vars : t -> int list
(** Program variables mentioned by the zone (zero excluded). *)

val bounds_of : int -> t -> int64 option * int64 option
(** Derived (lo, hi) unary bounds of a variable. *)

type seeds = int -> Interval.t
(** Interval bounds per variable id, used to reduce the product. *)

val no_seeds : seeds

val close_seeded : ?over:int list -> seeds -> t -> t option
(** Seed interval bounds of the zone's variables (plus [over], e.g.
    the other join side's zone variables) as unary constraints, then
    close.  [None] when the combined state is infeasible.  Apply to
    join inputs and before killing a variable; never to a widening
    result (termination). *)

val entails_le : seeds -> int -> int -> int64 -> t -> bool
(** [entails_le seeds x y c t]: does the interval-reduced zone prove
    [x - y <= c]? Infeasible states entail everything. *)

val to_string : t -> string

examples/quickstart.mli:

(** Whole-program call graph with function-pointer resolution, plus
    what is known about a GFP-flags argument at each call site (for
    the [__blocking_if_gfp_wait] allocators). *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

type gfp_info =
  | No_gfp  (** callee has no gfp-dependent behaviour *)
  | Gfp_const_wait  (** constant argument with __GFP_WAIT set *)
  | Gfp_const_nowait  (** constant argument without it *)
  | Gfp_unknown  (** non-constant: conservatively may wait *)

type via = Direct | Via_fptr

type edge = {
  caller : string;
  callee : string;
  via : via;
  loc : Kc.Loc.t;
  gfp : gfp_info;
  in_delayed : bool;
}

type t = {
  prog : Kc.Ir.program;
  pointsto : Pointsto.t;
  edges : edge list;
  callees_of : (string, edge list) Hashtbl.t;
  callers_of : (string, edge list) Hashtbl.t;
}

(** Build the graph. [pointsto] supplies prebuilt points-to facts
    (e.g. from the engine's cache) — when given, [mode] is ignored in
    favour of the prebuilt result's own mode. *)
val build : ?mode:Pointsto.mode -> ?pointsto:Pointsto.t -> Kc.Ir.program -> t
val callees : t -> string -> edge list
val callers : t -> string -> edge list
val n_edges : t -> int
val all_functions : t -> string list

(** Names reachable from [from] through the graph. *)
val reachable : t -> from:string -> SS.t

(* mm/ — page-granular allocation wrappers, object caches, and the
   two-level page tables that make fork() pointer-write heavy (the
   CCount SMP experiment lives on this path). *)

let source =
  {kc|
// ---------------------------------------------------------------
// mm/page.kc: page wrappers
// ---------------------------------------------------------------

enum mm_consts { PAGE_SIZE = 4096, PTRS_PER_TABLE = 64 };

struct page {
  int order;
  int in_use;
  char * __count(4096) __opt data;
};

struct page *page_alloc(int gfp) {
  struct page *pg = kzalloc(sizeof(struct page), gfp);
  pg->order = 0;
  pg->in_use = 1;
  pg->data = kmalloc(4096, gfp);
  return pg;
}

void page_free(struct page *pg) {
  char * __opt d = pg->data;
  pg->data = 0;
  pg->in_use = 0;
  kfree(d);
  kfree(pg);
}

// ---------------------------------------------------------------
// mm/pgtable.kc: two-level page tables
// ---------------------------------------------------------------

// A leaf table: an array of page pointers.
struct pte_table {
  struct page * __opt entries[64];
};

// A directory: an array of leaf-table pointers.
struct pgdir {
  int nr_tables;
  struct pte_table * __opt tables[64];
};

struct pgdir *pgdir_alloc(int gfp) {
  struct pgdir *pd = kzalloc(sizeof(struct pgdir), gfp);
  pd->nr_tables = 0;
  return pd;
}

// Map a page at (table t, slot s), growing the directory on demand.
int pgdir_map(struct pgdir *pd, int t, int s, struct page *pg, int gfp) {
  if (t < 0) { return -EINVAL; }
  if (t >= 64) { return -EINVAL; }
  if (s < 0) { return -EINVAL; }
  if (s >= 64) { return -EINVAL; }
  struct pte_table * __opt tab = pd->tables[t];
  if (tab == 0) {
    tab = kzalloc(sizeof(struct pte_table), gfp);
    pd->tables[t] = tab;
    pd->nr_tables = pd->nr_tables + 1;
  }
  tab->entries[s] = pg;
  return 0;
}

struct page * __opt pgdir_get(struct pgdir *pd, int t, int s) {
  if (t < 0) { return 0; }
  if (t >= 64) { return 0; }
  if (s < 0) { return 0; }
  if (s >= 64) { return 0; }
  struct pte_table * __opt tab = pd->tables[t];
  if (tab == 0) { return 0; }
  return tab->entries[s];
}

// Map/lookup by "virtual address": the table indices come out of
// shift-and-mask, which bounds checking cannot discharge statically
// (no value-range reasoning for masks) -- so the mmap path keeps its
// runtime checks, as Table 1's lat_mmap row shows.
int pgdir_map_addr(struct pgdir *pd, long addr, struct page * __opt pg, int gfp) {
  int t = (addr >> 18) & 63;
  int s = (addr >> 12) & 63;
  struct pte_table * __opt tab = pd->tables[t];
  if (tab == 0) {
    tab = kzalloc(sizeof(struct pte_table), gfp);
    pd->tables[t] = tab;
    pd->nr_tables = pd->nr_tables + 1;
  }
  tab->entries[s] = pg;
  return 0;
}

struct page * __opt pgdir_get_addr(struct pgdir *pd, long addr) {
  int t = (addr >> 18) & 63;
  int s = (addr >> 12) & 63;
  struct pte_table * __opt tab = pd->tables[t];
  if (tab == 0) { return 0; }
  return tab->entries[s];
}

// Copy-on-fork: duplicate the directory, sharing leaf pages (every
// shared page pointer is a refcounted pointer write). Like the real
// copy_page_range, the walk is by virtual address, so the per-page
// index computations keep their runtime checks under Deputy.
struct pgdir *pgdir_clone(struct pgdir *src, int gfp) {
  struct pgdir *dst = pgdir_alloc(gfp);
  long addr = 0;
  long end = 64 * 64;
  long a;
  for (a = 0; a < end; a++) {
    addr = a * 4096;
    int t = (addr >> 18) & 63;
    struct pte_table * __opt tab = src->tables[t];
    if (tab != 0) {
      struct page * __opt pg = pgdir_get_addr(src, addr);
      if (pg != 0) {
        pgdir_map_addr(dst, addr, pg, gfp);
      }
    } else {
      // Skip the rest of this empty table's range.
      a = a + 63;
    }
  }
  return dst;
}

// Tear down a directory. Shared pages are NOT freed here; the caller
// owns page lifetimes. Table entries are nulled first so the frees
// check clean under CCount.
void pgdir_destroy(struct pgdir *pd) {
  int t;
  for (t = 0; t < 64; t++) {
    struct pte_table * __opt tab = pd->tables[t];
    if (tab != 0) {
      int s;
      for (s = 0; s < 64; s++) {
        tab->entries[s] = 0;
      }
      pd->tables[t] = 0;
      kfree(tab);
    }
  }
  kfree(pd);
}

// ---------------------------------------------------------------
// mm/cache.kc: sized object caches over the slab builtins
// ---------------------------------------------------------------

long names_cache;
long task_cache;
long inode_cache;

void mm_init(void) {
  names_cache = kmem_cache_create(256);
  task_cache = kmem_cache_create(512);
  inode_cache = kmem_cache_create(192);
}

void *names_alloc(int gfp) {
  return kmem_cache_alloc(names_cache, gfp);
}

void names_free(void * __opt p) {
  kmem_cache_free(names_cache, p);
}
|kc}

(** BlockStop driver and report (paper §2.3, E4). *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

type report = {
  mode : Pointsto.mode;
  edges : int;
  blocking_functions : int;
  warnings : Atomic.warning list;
  handlers : SS.t;
  guarded : SS.t;
}

(** Run the whole pipeline: points-to, call graph, blocking
    propagation, atomic-region analysis. [guard] names functions that
    carry the manual [assert_not_atomic] runtime check (excluded from
    propagation); with [insert_checks] the checks are also compiled
    into the program so the VM enforces them. [cg] supplies a prebuilt
    call graph (e.g. the engine's cached one) so callers holding one
    don't pay a rebuild; the report's [mode] then comes from the
    prebuilt graph. *)
val analyze :
  ?mode:Pointsto.mode ->
  ?cg:Callgraph.t ->
  ?guard:string list ->
  ?insert_checks:bool ->
  Kc.Ir.program ->
  report

(** Warnings deduplicated to (containing function, callee) pairs. *)
val distinct_warnings : report -> (string * string) list

val pp : Format.formatter -> report -> unit
val pp_warning : Format.formatter -> Atomic.warning -> unit

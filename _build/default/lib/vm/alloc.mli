(** Kernel heap allocator: a bump allocator with per-size free lists
    over the refcounted heap region. Objects are 16-byte-chunk
    aligned, so two objects never share a shadow-counter chunk. *)

type block_state = Live | Freed

type block = {
  addr : int;
  size : int;  (** requested *)
  rsize : int;  (** reserved (rounded) *)
  mutable state : block_state;
}

type t = {
  mem : Mem.t;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t;
  blocks : (int, block) Hashtbl.t;
  mutable live_bytes : int;
  mutable total_allocs : int;
  mutable total_frees : int;
}

val create : Mem.t -> t
val round16 : int -> int

(** Allocate; marks the storage valid and optionally zeroes it. *)
val alloc : t -> size:int -> zero:bool -> int

val find_block : t -> int -> block option

(** Release; traps on double free or non-block addresses. *)
val free : t -> int -> block

(** Mark freed but keep the storage valid: CCount's sound response to
    a bad free. *)
val leak : t -> int -> unit

(** Page-aligned allocation of [pages] 4 kB pages. *)
val pages_alloc : t -> pages:int -> int

val live_blocks : t -> block list

(* net/neigh.kc — an ARP-flavoured neighbor cache: IP -> link address
   mappings in a chained hash table, aged out by the timer wheel. It
   ties the lib hash table and the timer subsystem into the network
   path, the way neigh_table does in the real stack. *)

let source =
  {kc|
// ---------------------------------------------------------------
// net/neigh.kc: the neighbor (ARP) cache
// ---------------------------------------------------------------

enum neigh_consts { NEIGH_REACHABLE_JIFFIES = 8 };

struct neighbour {
  u32 ip;
  long lladdr;
  long confirmed; // jiffies of last confirmation
  int state;      // 0 = stale, 1 = reachable
};

struct htab * __opt neigh_table;
long neigh_lookups;
long neigh_hits;
struct ktimer neigh_gc_timer;

// Insert or refresh a mapping.
int neigh_update(u32 ip, long lladdr) {
  struct htab * __opt t = neigh_table;
  if (t == 0) { return -EINVAL; }
  struct htab *tt = t;
  long existing = htab_lookup(tt, ip);
  if (existing != -1) {
    struct neighbour * __trusted n;
    __trusted {
      n = (struct neighbour * __trusted)existing;
      n->lladdr = lladdr;
      n->confirmed = jiffies;
      n->state = 1;
    }
    return 0;
  }
  struct neighbour *n = kzalloc(sizeof(struct neighbour), GFP_ATOMIC);
  n->ip = ip;
  n->lladdr = lladdr;
  n->confirmed = jiffies;
  n->state = 1;
  long handle;
  __trusted {
    handle = (long)n;
  }
  htab_insert(tt, ip, handle, GFP_ATOMIC);
  return 0;
}

// Resolve an IP; returns the link address or -1.
long neigh_resolve(u32 ip) {
  neigh_lookups = neigh_lookups + 1;
  struct htab * __opt t = neigh_table;
  if (t == 0) { return -1; }
  struct htab *tt = t;
  long handle = htab_lookup(tt, ip);
  if (handle == -1) { return -1; }
  long ll;
  __trusted {
    struct neighbour *n = (struct neighbour * __trusted)handle;
    if (n->state == 0) {
      ll = -1;
    } else {
      ll = n->lladdr;
    }
  }
  if (ll != -1) {
    neigh_hits = neigh_hits + 1;
  }
  return ll;
}

// Garbage collection from the timer wheel: entries not confirmed
// recently go stale and are dropped. Runs in irq context, so it only
// does GFP-free bookkeeping (no sleeping).
int neigh_gc(long data) {
  struct htab * __opt t = neigh_table;
  if (t == 0) { return 0; }
  struct htab *tt = t;
  int b;
  for (b = 0; b < 64; b++) {
    struct hentry * __opt e = tt->buckets[b];
    while (e != 0) {
      long handle = e->value;
      u32 key = e->key;
      struct hentry * __opt next = e->next;
      int expired = 0;
      __trusted {
        struct neighbour *n = (struct neighbour * __trusted)handle;
        if (n->confirmed + 8 < jiffies) {
          n->state = 0;
          expired = 1;
        }
      }
      if (expired) {
        htab_remove(tt, key);
        __trusted {
          struct neighbour *n = (struct neighbour * __trusted)handle;
          kfree(n);
        }
      }
      e = next;
    }
  }
  // Re-arm ourselves.
  add_timer(&neigh_gc_timer, 4);
  return 0;
}

void neigh_init(void) {
  neigh_table = htab_alloc(GFP_KERNEL);
  neigh_lookups = 0;
  neigh_hits = 0;
  neigh_gc_timer.fn = neigh_gc;
  neigh_gc_timer.data = 0;
  add_timer(&neigh_gc_timer, 4);
}
|kc}

(** Intervals over extended 64-bit integers: the numeric half of the
    absint product domain. Bounds saturate to [-oo]/[+oo] on int64
    overflow, so every operation is a sound over-approximation of exact
    (pre-norm) integer arithmetic; {!Transfer.clamp} then accounts for
    the VM's truncation to the static type's width. *)

type bound = Ninf | Fin of int64 | Pinf
type t = Bot | Iv of bound * bound  (** invariant: [lo <= hi], no degenerate pairs *)

val bound_le : bound -> bound -> bool
(** Signed order on extended bounds. *)

val sat_add : bound -> bound -> bound
val sat_sub : bound -> bound -> bound

val bottom : t
val top : t
val const : int64 -> t
val of_bounds : int64 -> int64 -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next]: bounds that grew since [old] jump to infinity. *)

val narrow : t -> t -> t
(** [narrow old next]: refine only the infinite bounds of [old]. *)

val mem : int64 -> t -> bool
val is_nonneg : t -> bool
val contains_zero : t -> bool

(** Abstract arithmetic (sound for exact integer semantics). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div_pos_const : t -> int64 -> t
(** Division by a positive constant; anything else returns [top]. *)

val rem_pos_const : t -> int64 -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val shl_const : t -> int64 -> t
val shr_const : t -> int64 -> t
val to_string : t -> string

(* The unified diagnostic record shared by every analysis (see
   diag.mli). Kept deliberately flat: a severity, a location, the
   analysis that produced it, a human message and an optional fix
   hint. *)

type severity = Info | Warning | Error

type t = {
  analysis : string;
  severity : severity;
  loc : Kc.Loc.t;
  message : string;
  fix_hint : string option;
}

let make ?(severity = Warning) ?fix_hint ~analysis ~loc message =
  { analysis; severity; loc; message; fix_hint }

let severity_to_string = function Info -> "info" | Warning -> "warning" | Error -> "error"
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare (a : t) (b : t) : int =
  let c = String.compare a.loc.Kc.Loc.file b.loc.Kc.Loc.file in
  if c <> 0 then c
  else
    let c = Int.compare a.loc.Kc.Loc.line b.loc.Kc.Loc.line in
    if c <> 0 then c
    else
      let c = Int.compare a.loc.Kc.Loc.col b.loc.Kc.Loc.col in
      if c <> 0 then c
      else
        let c = String.compare a.analysis b.analysis in
        if c <> 0 then c
        else
          let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
          if c <> 0 then c else String.compare a.message b.message

let sort (ds : t list) : t list = List.sort_uniq compare ds

let to_string (d : t) : string =
  Printf.sprintf "%s: [%s] %s: %s%s"
    (Kc.Loc.to_string d.loc)
    (severity_to_string d.severity)
    d.analysis d.message
    (match d.fix_hint with None -> "" | Some h -> Printf.sprintf " (hint: %s)" h)

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* Hand-rolled JSON (no JSON library in the tree): escape the string
   payloads, everything else is already structured. *)
let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (d : t) : string =
  let hint =
    match d.fix_hint with
    | None -> "null"
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
  in
  Printf.sprintf
    "{\"analysis\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"fix_hint\":%s}"
    (json_escape d.analysis)
    (severity_to_string d.severity)
    (json_escape d.loc.Kc.Loc.file)
    d.loc.Kc.Loc.line d.loc.Kc.Loc.col (json_escape d.message) hint

let list_to_json (ds : t list) : string =
  "[" ^ String.concat "," (List.map to_json (sort ds)) ^ "]"

let tally (ds : t list) : (severity * int) list =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  List.filter_map
    (fun s -> match count s with 0 -> None | n -> Some (s, n))
    [ Error; Warning; Info ]

(* Tests for BlockStop: call-graph construction, points-to precision,
   blocking propagation, atomic-region warnings, runtime checks, and
   agreement with VM ground truth. *)

module SS = Set.Make (String)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void printk(char * __nullterm fmt, ...);\n\
   void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   void local_irq_disable(void);\n\
   void local_irq_enable(void);\n\
   void schedule(void) __blocking;\n\
   void msleep(int ms) __blocking;\n\
   int copy_to_user(void *d, void *s, unsigned long n) __blocking;\n\
   void assert_not_atomic(void);\n\
   int request_irq(int irq, int (*handler)(int));\n\
   int raise_irq(int irq);\n"

let p src = preamble ^ src

let analyze ?mode ?guard src = Blockstop.Breport.analyze ?mode ?guard (parse src)

let warn_pairs r = Blockstop.Breport.distinct_warnings r

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_direct_edges () =
  let prog = parse (p "int g(void) { return 1; }\nint f(void) { return g(); }") in
  let cg = Blockstop.Callgraph.build prog in
  let callees = Blockstop.Callgraph.callees cg "f" in
  Alcotest.(check int) "one callee" 1 (List.length callees);
  Alcotest.(check string) "g called" "g" (List.hd callees).Blockstop.Callgraph.callee

let test_reachability () =
  let prog =
    parse (p "int c(void) { return 1; }\nint b(void) { return c(); }\nint a(void) { return b(); }\nint lone(void) { return 0; }")
  in
  let cg = Blockstop.Callgraph.build prog in
  let reach = Blockstop.Callgraph.reachable cg ~from:"a" in
  Alcotest.(check bool) "c reachable from a" true (SS.mem "c" reach);
  Alcotest.(check bool) "lone not reachable" false (SS.mem "lone" reach)

let fptr_src =
  p
    "int quiet(int x) { return x; }\n\
     int sleepy(int x) { schedule(); return x; }\n\
     struct ops { int (*op)(int); };\n\
     struct ops quiet_ops = { quiet };\n\
     struct ops sleepy_ops = { sleepy };\n\
     int call_quiet(void) { return quiet_ops.op(1); }\n"

let test_type_based_pointsto_conservative () =
  let prog = parse fptr_src in
  let cg = Blockstop.Callgraph.build ~mode:Blockstop.Pointsto.Type_based prog in
  let callees =
    Blockstop.Callgraph.callees cg "call_quiet"
    |> List.map (fun (e : Blockstop.Callgraph.edge) -> e.Blockstop.Callgraph.callee)
    |> List.sort compare
  in
  (* Type-based: both quiet and sleepy match the signature. *)
  Alcotest.(check (list string)) "both targets" [ "quiet"; "sleepy" ] callees

let test_field_based_pointsto_precise () =
  let prog = parse fptr_src in
  let cg = Blockstop.Callgraph.build ~mode:Blockstop.Pointsto.Field_based prog in
  let callees =
    Blockstop.Callgraph.callees cg "call_quiet"
    |> List.map (fun (e : Blockstop.Callgraph.edge) -> e.Blockstop.Callgraph.callee)
    |> List.sort compare
  in
  (* Field-based: the op field only ever holds quiet/sleepy — both
     structs share the field, so both remain; a distinct field name
     would separate them. Here both ops structs use the same field, so
     precision equals type-based. *)
  Alcotest.(check (list string)) "field targets" [ "quiet"; "sleepy" ] callees

let test_field_based_separates_distinct_fields () =
  let src =
    p
      "int quiet(int x) { return x; }\n\
       int sleepy(int x) { schedule(); return x; }\n\
       struct ops { int (*fast_op)(int); int (*slow_op)(int); };\n\
       struct ops tbl = { quiet, sleepy };\n\
       int call_fast(void) { return tbl.fast_op(1); }\n"
  in
  let prog = parse src in
  let cg = Blockstop.Callgraph.build ~mode:Blockstop.Pointsto.Field_based prog in
  let callees =
    Blockstop.Callgraph.callees cg "call_fast"
    |> List.map (fun (e : Blockstop.Callgraph.edge) -> e.Blockstop.Callgraph.callee)
  in
  Alcotest.(check (list string)) "only quiet" [ "quiet" ] callees

(* ------------------------------------------------------------------ *)
(* Blocking propagation                                                *)
(* ------------------------------------------------------------------ *)

let test_blocking_propagates () =
  let prog =
    parse
      (p
         "int leaf(void) { schedule(); return 0; }\n\
          int mid(void) { return leaf(); }\n\
          int top(void) { return mid(); }\n\
          int clean(void) { return 1; }")
  in
  let cg = Blockstop.Callgraph.build prog in
  let bl = Blockstop.Blocking.compute cg in
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " blocking") true (Blockstop.Blocking.is_blocking bl f))
    [ "schedule"; "leaf"; "mid"; "top" ];
  Alcotest.(check bool) "clean not blocking" false (Blockstop.Blocking.is_blocking bl "clean")

let test_gfp_atomic_not_blocking () =
  let prog =
    parse
      (p
         "int alloc_atomic(void) { int *x = kmalloc(8, 0); kfree(x); return 0; }\n\
          int alloc_wait(void) { int *x = kmalloc(8, 1); kfree(x); return 0; }")
  in
  let cg = Blockstop.Callgraph.build prog in
  let bl = Blockstop.Blocking.compute cg in
  Alcotest.(check bool) "GFP_ATOMIC caller not blocking" false
    (Blockstop.Blocking.is_blocking bl "alloc_atomic");
  Alcotest.(check bool) "GFP_KERNEL caller blocking" true
    (Blockstop.Blocking.is_blocking bl "alloc_wait")

let test_gfp_unknown_conservative () =
  let prog =
    parse (p "int alloc_var(int gfp) { int *x = kmalloc(8, gfp); kfree(x); return 0; }")
  in
  let cg = Blockstop.Callgraph.build prog in
  let bl = Blockstop.Blocking.compute cg in
  Alcotest.(check bool) "unknown gfp conservative" true
    (Blockstop.Blocking.is_blocking bl "alloc_var")

let test_witness_chain () =
  let prog =
    parse
      (p "int leaf(void) { schedule(); return 0; }\nint top(void) { return leaf(); }")
  in
  let cg = Blockstop.Callgraph.build prog in
  let bl = Blockstop.Blocking.compute cg in
  Alcotest.(check (list string)) "witness path" [ "top"; "leaf"; "schedule" ]
    (Blockstop.Blocking.witness bl "top")

(* ------------------------------------------------------------------ *)
(* Atomic-region warnings                                              *)
(* ------------------------------------------------------------------ *)

let bug_src =
  p
    "long lock;\n\
     int bad_alloc_under_lock(void) {\n\
     spin_lock(&lock);\n\
     int *x = kmalloc(64, 1);\n\
     spin_unlock(&lock);\n\
     kfree(x);\n\
     return 0; }\n"

let test_finds_real_bug () =
  let r = analyze bug_src in
  Alcotest.(check bool) "found the kmalloc-under-lock bug" true
    (List.exists (fun (f, c) -> f = "bad_alloc_under_lock" && c = "kmalloc") (warn_pairs r))

let test_ground_truth_agrees () =
  let prog = parse bug_src in
  let t = Vm.Builtins.boot prog in
  match Vm.Interp.run t "bad_alloc_under_lock" [] with
  | v -> Alcotest.failf "VM should trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Blocking_in_atomic, _) -> ()

let test_no_warning_when_clean () =
  let r =
    analyze
      (p
         "long lock;\n\
          int fine(void) { spin_lock(&lock); int *x = kmalloc(64, 0); spin_unlock(&lock); kfree(x); schedule(); return 0; }")
  in
  Alcotest.(check (list (pair string string))) "no warnings" [] (warn_pairs r)

let test_interrupt_handler_entry_atomic () =
  let src =
    p
      "int handler(int irq) { msleep(10); return 0; }\n\
       int setup(void) { request_irq(7, handler); return 0; }\n"
  in
  let r = analyze src in
  Alcotest.(check bool) "handler flagged" true
    (List.exists (fun (f, c) -> f = "handler" && c = "msleep") (warn_pairs r));
  (* Ground truth: raising the irq traps. *)
  let prog = parse src in
  let t = Vm.Builtins.boot prog in
  ignore (Vm.Interp.run t "setup" []);
  (match Vm.Interp.run t "raise_irq_helper" [] with
  | exception Vm.Trap.Trap (Vm.Trap.Unknown_function, _) -> ()
  | _ -> ());
  match
    let t2 = Vm.Builtins.boot (parse (src ^ "int go(void) { setup(); return raise_irq(7); }")) in
    Vm.Interp.run t2 "go" []
  with
  | v -> Alcotest.failf "expected blocking-in-interrupt trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Blocking_in_atomic, _) -> ()

let test_callee_entered_atomic () =
  (* The blocking call is in a helper only ever called under a lock. *)
  let r =
    analyze
      (p
         "long lock;\n\
          int helper(void) { schedule(); return 0; }\n\
          int caller(void) { spin_lock(&lock); helper(); spin_unlock(&lock); return 0; }")
  in
  let pairs = warn_pairs r in
  Alcotest.(check bool) "helper call flagged somewhere" true
    (List.exists (fun (_, c) -> c = "helper" || c = "schedule") pairs)

(* ------------------------------------------------------------------ *)
(* False positives and runtime checks                                  *)
(* ------------------------------------------------------------------ *)

(* The paper's read_chan / flush_to_ldisk pattern: conservative
   points-to believes a blocking function is callable from an atomic
   region through a dispatch table, but that entry is never actually
   used there. *)
let fp_src =
  p
    "long lock;\n\
     int quiet_op(int x) { return x + 1; }\n\
     int sleepy_op(int x) { schedule(); return x; }\n\
     struct ldisc { int (*receive)(int); };\n\
     struct ldisc quiet_disc = { quiet_op };\n\
     struct ldisc sleepy_disc = { sleepy_op };\n\
     struct ldisc *current_disc;\n\
     int flush_in_atomic(void) {\n\
     int r;\n\
     spin_lock(&lock);\n\
     r = quiet_disc.receive(3);\n\
     spin_unlock(&lock);\n\
     return r; }\n\
     int use_sleepy(void) { return sleepy_disc.receive(4); }\n"

let test_false_positive_with_type_based () =
  let r = analyze ~mode:Blockstop.Pointsto.Type_based fp_src in
  Alcotest.(check bool) "type-based points-to reports sleepy_op" true
    (List.exists (fun (f, c) -> f = "flush_in_atomic" && c = "sleepy_op") (warn_pairs r))

let test_runtime_check_silences () =
  let r =
    analyze ~mode:Blockstop.Pointsto.Type_based ~guard:[ "sleepy_op" ] fp_src
  in
  Alcotest.(check bool) "guarded sleepy_op no longer reported" false
    (List.exists (fun (_, c) -> c = "sleepy_op") (warn_pairs r))

let test_runtime_check_enforced () =
  (* The inserted check panics if the assertion is ever violated. *)
  let prog = parse (p "int guarded(void) { return 1; }\nlong lk;\nint main(void) { spin_lock(&lk); int r = guarded(); spin_unlock(&lk); return r; }") in
  ignore (Blockstop.Bcheck.guard_functions prog [ "guarded" ]);
  let t = Vm.Builtins.boot prog in
  match Vm.Interp.run t "main" [] with
  | v -> Alcotest.failf "expected not-atomic trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Not_atomic_check, _) -> ()

let test_runtime_check_passes_when_safe () =
  let prog = parse (p "int guarded(void) { return 42; }\nint main(void) { return guarded(); }") in
  ignore (Blockstop.Bcheck.guard_functions prog [ "guarded" ]);
  let t = Vm.Builtins.boot prog in
  Alcotest.(check int64) "check passes outside atomic" 42L (Vm.Interp.run t "main" [])

let test_field_sensitivity_removes_fp () =
  let src =
    p
      "long lock;\n\
       int quiet_op(int x) { return x + 1; }\n\
       int sleepy_op(int x) { schedule(); return x; }\n\
       struct fast_ops { int (*fast)(int); };\n\
       struct slow_ops { int (*slow)(int); };\n\
       struct fast_ops fops = { quiet_op };\n\
       struct slow_ops sops = { sleepy_op };\n\
       int flush_in_atomic(void) {\n\
       int r;\n\
       spin_lock(&lock);\n\
       r = fops.fast(3);\n\
       spin_unlock(&lock);\n\
       return r; }\n\
       int elsewhere(void) { return sops.slow(4); }\n"
  in
  let r_type = analyze ~mode:Blockstop.Pointsto.Type_based src in
  let r_field = analyze ~mode:Blockstop.Pointsto.Field_based src in
  Alcotest.(check bool) "type-based has the FP" true
    (List.exists (fun (_, c) -> c = "sleepy_op") (warn_pairs r_type));
  Alcotest.(check bool) "field-based is precise" false
    (List.exists (fun (_, c) -> c = "sleepy_op") (warn_pairs r_field))

(* ------------------------------------------------------------------ *)
(* Annotation export                                                   *)
(* ------------------------------------------------------------------ *)

let test_export_annotations () =
  let prog = parse (p "int leaf(void) { schedule(); return 0; }\nint top(void) { return leaf(); }") in
  let cg = Blockstop.Callgraph.build prog in
  let bl = Blockstop.Blocking.compute cg in
  let annots = Blockstop.Blocking.export_annotations bl in
  Alcotest.(check bool) "top exported as __blocking" true
    (List.mem ("top", "__blocking") annots)

let () =
  Alcotest.run "blockstop"
    [
      ( "callgraph",
        [
          Alcotest.test_case "direct edges" `Quick test_direct_edges;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "type-based pointsto" `Quick test_type_based_pointsto_conservative;
          Alcotest.test_case "field-based pointsto" `Quick test_field_based_pointsto_precise;
          Alcotest.test_case "field separation" `Quick test_field_based_separates_distinct_fields;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "propagation" `Quick test_blocking_propagates;
          Alcotest.test_case "gfp atomic ok" `Quick test_gfp_atomic_not_blocking;
          Alcotest.test_case "gfp unknown conservative" `Quick test_gfp_unknown_conservative;
          Alcotest.test_case "witness chain" `Quick test_witness_chain;
        ] );
      ( "atomic",
        [
          Alcotest.test_case "finds real bug" `Quick test_finds_real_bug;
          Alcotest.test_case "ground truth agrees" `Quick test_ground_truth_agrees;
          Alcotest.test_case "clean code clean" `Quick test_no_warning_when_clean;
          Alcotest.test_case "irq handler atomic" `Quick test_interrupt_handler_entry_atomic;
          Alcotest.test_case "callee entered atomic" `Quick test_callee_entered_atomic;
        ] );
      ( "false-positives",
        [
          Alcotest.test_case "type-based FP" `Quick test_false_positive_with_type_based;
          Alcotest.test_case "runtime check silences" `Quick test_runtime_check_silences;
          Alcotest.test_case "runtime check enforced" `Quick test_runtime_check_enforced;
          Alcotest.test_case "runtime check passes" `Quick test_runtime_check_passes_when_safe;
          Alcotest.test_case "field sensitivity" `Quick test_field_sensitivity_removes_fp;
        ] );
      ("export", [ Alcotest.test_case "annotations" `Quick test_export_annotations ]);
    ]

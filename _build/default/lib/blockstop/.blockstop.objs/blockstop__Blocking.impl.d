lib/blockstop/blocking.ml: Callgraph Hashtbl Kc List Set String

lib/kernel/src_char.ml:

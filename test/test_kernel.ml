(* Integration tests over the mini-kernel corpus: it must parse,
   check, boot and behave under every instrumentation mode, and the
   seeded bugs must be found by the right analysis. *)

let boot_base ?(fixed_frees = true) () =
  let r = Ivy.Pipeline.booted ~fixed_frees Ivy.Pipeline.Base in
  r

(* ------------------------------------------------------------------ *)
(* Corpus sanity                                                      *)
(* ------------------------------------------------------------------ *)

let test_corpus_loads () =
  let prog = Kernel.Corpus.load () in
  Alcotest.(check bool) "has many functions" true (List.length prog.Kc.Ir.funcs > 80);
  Alcotest.(check bool) "substantial corpus" true (Kernel.Corpus.line_count () > 1500)

let test_both_variants_load () =
  ignore (Kernel.Corpus.load ~fixed_frees:true ());
  ignore (Kernel.Corpus.load ~fixed_frees:false ())

let test_boot_reaches_login () =
  let r = boot_base () in
  let lines = Vm.Machine.console_lines r.Ivy.Pipeline.interp.Vm.Interp.m in
  Alcotest.(check bool) "login prompt printed" true
    (List.exists (fun l -> l = "ivy: boot complete, login: ") lines)

let test_boot_deterministic () =
  let c1 = Ivy.Pipeline.cycles (boot_base ()) in
  let c2 = Ivy.Pipeline.cycles (boot_base ()) in
  Alcotest.(check int) "same boot cycles" c1 c2

(* ------------------------------------------------------------------ *)
(* Every mode boots and runs the workloads                            *)
(* ------------------------------------------------------------------ *)

let modes =
  [
    ("base", Ivy.Pipeline.Base);
    ("deputy", Ivy.Pipeline.Deputy);
    ("deputy-unopt", Ivy.Pipeline.Deputy_unoptimized);
    ("ccount-up", Ivy.Pipeline.Ccount Vm.Cost.Up);
    ("ccount-smp", Ivy.Pipeline.Ccount Vm.Cost.Smp_p4);
    ("blockstop-guarded", Ivy.Pipeline.Blockstop_guarded);
  ]

let test_all_modes_boot () =
  List.iter
    (fun (name, mode) ->
      match Ivy.Pipeline.booted mode with
      | _ -> ()
      | exception Vm.Trap.Trap (k, msg) ->
          Alcotest.failf "%s boot trapped: %s (%s)" name (Vm.Trap.kind_to_string k) msg)
    modes

let test_workloads_agree_across_modes () =
  (* Every instrumentation preserves workload results (erasure). *)
  let probe mode entry iters =
    let r = Ivy.Pipeline.booted mode in
    fst (Ivy.Pipeline.run_entry r entry iters)
  in
  List.iter
    (fun (entry, iters) ->
      let expected = probe Ivy.Pipeline.Base entry iters in
      List.iter
        (fun (name, mode) ->
          let got = probe mode entry iters in
          Alcotest.(check int64) (Printf.sprintf "%s under %s" entry name) expected got)
        modes)
    [
      ("wl_lat_fs", 5); ("wl_lat_pipe", 10); ("wl_lat_udp", 5); ("wl_bw_mem_cp", 2);
      ("wl_lat_proc", 3); ("wl_bw_tcp", 1); ("wl_lat_mmap", 5); ("wl_module_load", 2);
    ]

(* ------------------------------------------------------------------ *)
(* Experiment-level assertions (shape, not absolute numbers)          *)
(* ------------------------------------------------------------------ *)

let test_table1_shape () =
  let rows = Ivy.Experiment.table1 () in
  List.iter
    (fun (r : Ivy.Experiment.t1_row) ->
      let id = r.Ivy.Experiment.row.Kernel.Workloads.id in
      let v = r.Ivy.Experiment.rel_perf in
      match r.Ivy.Experiment.row.Kernel.Workloads.kind with
      | Kernel.Workloads.Bw ->
          (* Bandwidth is at most mildly degraded. *)
          Alcotest.(check bool) (id ^ " bw in [0.6, 1.01]") true (v >= 0.6 && v <= 1.01)
      | Kernel.Workloads.Lat ->
          Alcotest.(check bool) (id ^ " lat in [1.0, 1.6]") true (v >= 0.99 && v <= 1.6))
    rows;
  let get id =
    (List.find
       (fun (r : Ivy.Experiment.t1_row) -> r.Ivy.Experiment.row.Kernel.Workloads.id = id)
       rows)
      .Ivy.Experiment.rel_perf
  in
  (* Crossover structure from the paper: the memory-bandwidth rows are
     essentially free, the network latency rows are the worst. *)
  Alcotest.(check bool) "bw_mem_cp ~ 1" true (get "bw_mem_cp" > 0.97);
  Alcotest.(check bool) "bw_tcp is the worst bw row" true
    (get "bw_tcp" <= get "bw_mem_cp" && get "bw_tcp" <= get "bw_pipe");
  Alcotest.(check bool) "lat_udp visibly slower" true (get "lat_udp" > 1.2);
  Alcotest.(check bool) "lat_tcp visibly slower" true (get "lat_tcp" > 1.2);
  Alcotest.(check bool) "lat_fslayer cheap" true (get "lat_fslayer" < 1.1);
  Alcotest.(check bool) "lat_syscall cheap" true (get "lat_syscall" < 1.1)

let test_e2_shape () =
  let cells = Ivy.Experiment.e2_overheads () in
  let get w p =
    (List.find
       (fun (c : Ivy.Experiment.e2_cell) ->
         c.Ivy.Experiment.workload = w && c.Ivy.Experiment.profile = p)
       cells)
      .Ivy.Experiment.overhead_pct
  in
  let fork_up = get "wl_fork" Vm.Cost.Up in
  let fork_smp = get "wl_fork" Vm.Cost.Smp_p4 in
  let mod_up = get "wl_module_load" Vm.Cost.Up in
  let mod_smp = get "wl_module_load" Vm.Cost.Smp_p4 in
  Alcotest.(check bool) "fork UP in [10,30]%" true (fork_up > 10.0 && fork_up < 30.0);
  Alcotest.(check bool) "fork SMP in [45,80]%" true (fork_smp > 45.0 && fork_smp < 80.0);
  Alcotest.(check bool) "fork SMP >> fork UP" true (fork_smp > 2.0 *. fork_up);
  Alcotest.(check bool) "module cheap on UP" true (mod_up < 15.0);
  Alcotest.(check bool) "module SMP slightly worse" true (mod_smp > mod_up && mod_smp < 20.0);
  Alcotest.(check bool) "fork dominates module overhead" true (fork_up > mod_up)

let test_e3_shape () =
  let e = Ivy.Experiment.e3_free_census () in
  Alcotest.(check int) "fixed boot has no bad frees" 0
    e.Ivy.Experiment.boot_census.Vm.Machine.bad;
  Alcotest.(check bool) "unfixed boot has bad frees" true
    (e.Ivy.Experiment.unfixed_boot_census.Vm.Machine.bad > 0);
  let pct = e.Ivy.Experiment.light_use_census.Vm.Machine.good_pct in
  Alcotest.(check bool)
    (Printf.sprintf "light use good%% in [97,99.9] (got %.1f)" pct)
    true
    (pct >= 97.0 && pct <= 99.9);
  Alcotest.(check bool) "light use does many frees" true
    (e.Ivy.Experiment.light_use_census.Vm.Machine.total_frees > 300)

let test_e4_shape () =
  let e = Ivy.Experiment.e4_blockstop () in
  Alcotest.(check int) "finds exactly the two seeded bugs" 2 e.Ivy.Experiment.bugs_found;
  Alcotest.(check bool) "has false positives without checks" true
    (e.Ivy.Experiment.false_positives > 0);
  Alcotest.(check bool) "VM ground truth verified" true e.Ivy.Experiment.ground_truth_verified;
  let remaining = Blockstop.Breport.distinct_warnings e.Ivy.Experiment.guarded in
  Alcotest.(check int) "guards silence all false positives" 2 (List.length remaining);
  List.iter
    (fun w ->
      Alcotest.(check bool) "remaining warnings are the true bugs" true
        (List.mem w e.Ivy.Experiment.true_bugs))
    remaining

let test_e1_census () =
  let e = Ivy.Experiment.e1_census () in
  Alcotest.(check bool) "no static errors in the converted corpus" true
    (e.Ivy.Experiment.deputy.Deputy.Dreport.static_errors = []);
  Alcotest.(check bool) "annotations present" true (e.Ivy.Experiment.annotations > 100);
  Alcotest.(check bool) "some trusted blocks, few" true
    (e.Ivy.Experiment.trusted_blocks >= 3 && e.Ivy.Experiment.trusted_blocks <= 20);
  let r = e.Ivy.Experiment.deputy in
  let discharge_rate =
    float_of_int r.Deputy.Dreport.discharged /. float_of_int r.Deputy.Dreport.inserted
  in
  Alcotest.(check bool) "most checks discharge statically" true (discharge_rate > 0.6)

(* ------------------------------------------------------------------ *)
(* Subsystem behaviour through the VM                                  *)
(* ------------------------------------------------------------------ *)

(* Drive a KC snippet against the booted kernel by appending a probe
   unit. *)
let probe_src name body = Printf.sprintf "long %s(int iters) { %s }" name body

let run_probe body =
  let src =
    Kernel.Corpus.sources () @ [ ("probe.kc", probe_src "probe_main" body) ]
  in
  let prog = Kc.Typecheck.check_sources src in
  let t = Vm.Builtins.boot prog in
  ignore (Vm.Interp.run t "start_kernel" []);
  Vm.Interp.run t "probe_main" [ 1L ]

let test_timer_fires () =
  (* A timer armed for 2 ticks fires on the 2nd timer interrupt. *)
  let v =
    run_probe
      "long before = watchdog_kicks;\n\
       add_timer(&watchdog_timer, 2);\n\
       raise_irq(6);\n\
       long mid = watchdog_kicks;\n\
       raise_irq(6);\n\
       long after = watchdog_kicks;\n\
       return (after - before) * 10 + (mid - before);"
  in
  Alcotest.(check int64) "fired exactly once, on the second tick" 10L v

let test_workqueue_runs () =
  let v =
    run_probe
      "long before = works_run;\n\
       queue_work(&stats_work);\n\
       run_workqueue();\n\
       return works_run - before;"
  in
  Alcotest.(check int64) "one work item ran" 1L v

let test_workqueue_handler_may_sleep () =
  (* Running the (sleeping) work from process context is fine... *)
  ignore (run_probe "queue_work(&stats_work); return run_workqueue();");
  (* ...but from interrupt context it traps. *)
  let src =
    Kernel.Corpus.sources ()
    @ [ ("probe.kc", probe_src "probe_main" "irq_enter(); queue_work(&stats_work); long r = run_workqueue(); irq_exit(); return r;") ]
  in
  let prog = Kc.Typecheck.check_sources src in
  let t = Vm.Builtins.boot prog in
  ignore (Vm.Interp.run t "start_kernel" []);
  match Vm.Interp.run t "probe_main" [ 1L ] with
  | v -> Alcotest.failf "expected trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Blocking_in_atomic, _) -> ()

let test_procfs_reads () =
  let v =
    run_probe
      "char buf[64];\n\
       raise_irq(6);\n\
       raise_irq(6);\n\
       int n = proc_read(\"uptime\", buf, 64);\n\
       if (n <= 0) { return -1; }\n\
       // uptime is a decimal string of jiffies > 0\n\
       char c = buf[0];\n\
       if (c < '0') { return -2; }\n\
       if (c > '9') { return -3; }\n\
       return n;"
  in
  Alcotest.(check bool) "uptime rendered" true (v > 0L)

let test_procfs_unknown_entry () =
  let v = run_probe "char buf[16]; return proc_read(\"nonsense\", buf, 16);" in
  Alcotest.(check int64) "ENOENT" (-2L) v

let test_neigh_cache () =
  let v =
    run_probe
      "neigh_update(555, 777);\n\
       long hit = neigh_resolve(555);\n\
       long miss = neigh_resolve(556);\n\
       // Age it out: the gc timer drops unconfirmed entries.\n\
       int i;\n\
       for (i = 0; i < 24; i++) { raise_irq(6); }\n\
       long gone = neigh_resolve(555);\n\
       if (hit != 777) { return -1; }\n\
       if (miss != -1) { return -2; }\n\
       if (gone != -1) { return -3; }\n\
       return 1;"
  in
  Alcotest.(check int64) "learn, resolve, age out" 1L v

let test_neigh_gc_frees_clean_under_ccount () =
  (* The gc path frees neighbours and hash entries from irq context;
     under CCount every one of those frees must check good. *)
  let r = Ivy.Pipeline.booted (Ivy.Pipeline.Ccount Vm.Cost.Up) in
  ignore (Ivy.Pipeline.run_entry r "wl_idle" 30);
  let census = Ivy.Pipeline.free_census r in
  Alcotest.(check int) "no bad frees from neigh gc" 0 census.Vm.Machine.bad

let test_chrdev_zero_and_counter () =
  let v =
    run_probe
      "char buf[16];\n\
       int i;\n\
       for (i = 0; i < 16; i++) { buf[i] = 9; }\n\
       misc_dev_read(5, buf, 16); // /dev/zero\n\
       long z = buf[0] + buf[15];\n\
       misc_dev_read(7, buf, 16); // counter: monotone bytes\n\
       long c1 = buf[0];\n\
       misc_dev_read(7, buf, 16);\n\
       long c2 = buf[0];\n\
       return z * 1000 + (c2 - c1);"
  in
  (* zero device cleared the buffer; counter advanced by 16. *)
  Alcotest.(check int64) "zero + counter devices behave" 16L v

(* Seeded blockstop bugs crash the un-instrumented kernel. *)
let test_seeded_bugs_trap () =
  List.iter
    (fun entry ->
      let r = boot_base () in
      match Ivy.Pipeline.run_entry r entry 1 with
      | v, _ -> Alcotest.failf "%s: expected trap, got %Ld" entry (fst (v, 0))
      | exception Vm.Trap.Trap (Vm.Trap.Blocking_in_atomic, _) -> ())
    [ "wl_trigger_resize_bug"; "wl_trigger_irq_bug" ]

(* The guarded kernel boots and runs workloads without tripping any
   assert_not_atomic check (the guards are correct assertions). *)
let test_guards_hold_at_runtime () =
  let r = Ivy.Pipeline.booted Ivy.Pipeline.Blockstop_guarded in
  List.iter
    (fun (entry, iters) -> ignore (Ivy.Pipeline.run_entry r entry iters))
    [ ("wl_lat_fs", 5); ("wl_idle", 5); ("wl_lat_proc", 3); ("wl_lat_udp", 3) ]

(* Table-1-style invariant, pinned directly against the corpus rather
   than through the experiment driver: on the pre-fix corpus variant,
   blockstop's warning set contains exactly the two seeded true bugs
   plus warnings on the guarded functions, and applying the guard list
   silences everything except the true bugs. *)
let test_blockstop_table1_invariant () =
  let prog = Kernel.Corpus.load ~fixed_frees:false () in
  let unguarded = Blockstop.Breport.analyze prog in
  let distinct = Blockstop.Breport.distinct_warnings unguarded in
  List.iter
    (fun bug ->
      Alcotest.(check bool)
        (Printf.sprintf "true bug %s->%s found without guards" (fst bug) (snd bug))
        true (List.mem bug distinct))
    Kernel.Corpus.blockstop_true_bugs;
  Alcotest.(check bool) "the unguarded run also has false positives" true
    (List.exists (fun w -> not (List.mem w Kernel.Corpus.blockstop_true_bugs)) distinct);
  let prog = Kernel.Corpus.load ~fixed_frees:false () in
  let guarded = Blockstop.Breport.analyze ~guard:Kernel.Corpus.blockstop_guards prog in
  Alcotest.(check (list (pair string string)))
    "guards leave exactly the seeded true bugs"
    (List.sort compare Kernel.Corpus.blockstop_true_bugs)
    (List.sort compare (Blockstop.Breport.distinct_warnings guarded))

let () =
  Alcotest.run "kernel"
    [
      ( "corpus",
        [
          Alcotest.test_case "loads" `Quick test_corpus_loads;
          Alcotest.test_case "variants" `Quick test_both_variants_load;
          Alcotest.test_case "boot reaches login" `Quick test_boot_reaches_login;
          Alcotest.test_case "boot deterministic" `Quick test_boot_deterministic;
        ] );
      ( "modes",
        [
          Alcotest.test_case "all modes boot" `Quick test_all_modes_boot;
          Alcotest.test_case "results agree across modes" `Slow test_workloads_agree_across_modes;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 shape" `Slow test_table1_shape;
          Alcotest.test_case "e1 census" `Quick test_e1_census;
          Alcotest.test_case "e2 shape" `Slow test_e2_shape;
          Alcotest.test_case "e3 shape" `Quick test_e3_shape;
          Alcotest.test_case "e4 shape" `Quick test_e4_shape;
        ] );
      ( "subsystems",
        [
          Alcotest.test_case "timer fires" `Quick test_timer_fires;
          Alcotest.test_case "workqueue runs" `Quick test_workqueue_runs;
          Alcotest.test_case "work may sleep, irq may not" `Quick test_workqueue_handler_may_sleep;
          Alcotest.test_case "procfs reads" `Quick test_procfs_reads;
          Alcotest.test_case "procfs unknown" `Quick test_procfs_unknown_entry;
          Alcotest.test_case "char devices" `Quick test_chrdev_zero_and_counter;
          Alcotest.test_case "neigh cache" `Quick test_neigh_cache;
          Alcotest.test_case "neigh gc clean under ccount" `Quick test_neigh_gc_frees_clean_under_ccount;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "seeded bugs trap" `Quick test_seeded_bugs_trap;
          Alcotest.test_case "guards hold" `Quick test_guards_hold_at_runtime;
          Alcotest.test_case "table1 invariant" `Quick test_blockstop_table1_invariant;
        ] );
    ]

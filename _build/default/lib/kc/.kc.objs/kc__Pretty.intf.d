lib/kc/pretty.mli: Ir

lib/vm/builtins.ml: Alloc Buffer Char Cost Hashtbl Int64 Interp Kc List Machine Mem Printf String Trap

(* Content hashing of KC IR for the artifact graph.

   The digests here are the [fp] inputs of {!Graph.get}: a cached
   artifact survives exactly as long as the digest of what it reads is
   unchanged. Three granularities:

   - per-function ([fn]): the function's full serialized form,
     statement locations included — an in-place body edit changes only
     that function's digest, while an edit that shifts later functions
     down a line changes theirs too (their cached CFGs carry statement
     locations, so reusing them would report stale lines);
   - whole program ([table_of].t_program): the header (structs, enums,
     globals) plus every function digest in program order — the input
     hash of artifacts that read arbitrary bodies (absint summaries,
     the deputized view, compiled VM code, analysis reports);
   - the call skeleton ([table_of].t_skeleton): the projection of the
     program that the points-to analysis, call graph, blocking
     propagation, irq-handler discovery and the refsafe ownership
     summaries actually read — function signatures and annotations,
     global initializers, every instruction that performs a call,
     mentions a function designator, or assigns to a function-pointer
     lvalue (assignments poison points-to var tracking), plus every
     pointer-relevant instruction (a store or return that moves a
     pointer value, takes an address, or casts a pointer — the flow
     edges the refsafe escape/ownership summaries are built from). An
     arithmetic-only body edit leaves the skeleton unchanged and those
     five artifact families warm.

   Serialization is deterministic across re-parses of the same source:
   it never includes [vid]/[fid] counters, only names (which the
   elaborator derives deterministically from the source text). *)

module I = Kc.Ir

type table = {
  t_header : string;  (** structs, enums, globals (with initializers) *)
  t_fns : (string * string) list;  (** per defined function, program order *)
  t_program : string;  (** header + every function *)
  t_skeleton : string;  (** the call/function-pointer projection *)
  t_ptrflow : string;  (** the pointer-flow projection read by relsum *)
}

(* ------------------------------------------------------------------ *)
(* Canonical serialization                                            *)
(* ------------------------------------------------------------------ *)

let add = Buffer.add_string

let rec ser_ty b (ty : I.ty) =
  match ty with
  | I.Tvoid -> add b "v"
  | I.Tint (k, s) ->
      add b
        (Printf.sprintf "i%d%c" (Kc.Layout.int_size k)
           (match s with Kc.Ast.Signed -> 's' | Kc.Ast.Unsigned -> 'u'))
  | I.Tptr (t, a) ->
      add b "p{";
      ser_annots b a;
      ser_ty b t;
      add b "}"
  | I.Tarray (t, n) ->
      add b (Printf.sprintf "a%d:" n);
      ser_ty b t
  | I.Tfun (r, args) ->
      add b "f(";
      List.iter
        (fun t ->
          ser_ty b t;
          add b ",")
        args;
      add b ")";
      ser_ty b r
  | I.Tcomp tag ->
      add b "c:";
      add b tag

and ser_annots b (a : I.annots) =
  (match a.I.a_count with
  | Some e ->
      add b "#";
      ser_exp b e
  | None -> ());
  if a.I.a_nullterm then add b "N";
  if a.I.a_opt then add b "O";
  if a.I.a_trusted then add b "T";
  if a.I.a_user then add b "U"

and ser_exp b (e : I.exp) =
  (match e.I.e with
  | I.Econst n -> add b (Printf.sprintf "k%Ld" n)
  | I.Estr s ->
      add b (Printf.sprintf "s%d:" (String.length s));
      add b s
  | I.Elval lv ->
      add b "l";
      ser_lval b lv
  | I.Eunop (op, e1) ->
      add b (match op with Kc.Ast.Neg -> "u-" | Kc.Ast.Lognot -> "u!" | Kc.Ast.Bitnot -> "u~");
      ser_exp b e1
  | I.Ebinop (op, e1, e2) ->
      let opname =
        match op with
        | Kc.Ast.Add -> "+" | Kc.Ast.Sub -> "-" | Kc.Ast.Mul -> "*" | Kc.Ast.Div -> "/"
        | Kc.Ast.Mod -> "%" | Kc.Ast.Shl -> "<<" | Kc.Ast.Shr -> ">>" | Kc.Ast.Lt -> "<"
        | Kc.Ast.Gt -> ">" | Kc.Ast.Le -> "<=" | Kc.Ast.Ge -> ">=" | Kc.Ast.Eq -> "=="
        | Kc.Ast.Ne -> "!=" | Kc.Ast.Bitand -> "&" | Kc.Ast.Bitor -> "|"
        | Kc.Ast.Bitxor -> "^" | Kc.Ast.Logand -> "&&" | Kc.Ast.Logor -> "||"
      in
      add b ("b" ^ opname ^ "(");
      ser_exp b e1;
      add b ",";
      ser_exp b e2;
      add b ")"
  | I.Econd (c, e1, e2) ->
      add b "?(";
      ser_exp b c;
      add b ",";
      ser_exp b e1;
      add b ",";
      ser_exp b e2;
      add b ")"
  | I.Ecast (ty, e1) ->
      add b "(";
      ser_ty b ty;
      add b ")";
      ser_exp b e1
  | I.Eaddrof lv ->
      add b "&";
      ser_lval b lv
  | I.Estartof lv ->
      add b "&0";
      ser_lval b lv
  | I.Efun f ->
      add b "fn:";
      add b f
  | I.Eself_field (tag, fname) -> add b (Printf.sprintf "self:%s.%s" tag fname));
  add b "@";
  ser_ty b e.I.ety

and ser_lval b ((host, offs) : I.lval) =
  (match host with
  | I.Lvar v ->
      add b (if v.I.vglob then "G:" else "V:");
      add b v.I.vname
  | I.Lmem e ->
      add b "M:";
      ser_exp b e);
  List.iter
    (fun o ->
      match o with
      | I.Ofield fi -> add b (Printf.sprintf ".%s.%s" fi.I.fcomp fi.I.fname)
      | I.Oindex e ->
          add b "[";
          ser_exp b e;
          add b "]")
    offs

let ser_check b (ck : I.check) =
  match ck with
  | I.Ck_nonnull e ->
      add b "nn(";
      ser_exp b e;
      add b ")"
  | I.Ck_le (a, c) ->
      add b "le(";
      ser_exp b a;
      add b ",";
      ser_exp b c;
      add b ")"
  | I.Ck_lt (a, c) ->
      add b "lt(";
      ser_exp b a;
      add b ",";
      ser_exp b c;
      add b ")"
  | I.Ck_nt_next (e, w) ->
      add b (Printf.sprintf "nt%d(" w);
      ser_exp b e;
      add b ")"
  | I.Ck_not_atomic -> add b "na"

let ser_instr b (i : I.instr) =
  match i with
  | I.Iset (lv, e) ->
      add b "set ";
      ser_lval b lv;
      add b "=";
      ser_exp b e
  | I.Icall (lv, target, args) ->
      add b "call ";
      (match lv with
      | Some lv ->
          ser_lval b lv;
          add b "="
      | None -> ());
      (match target with
      | I.Direct f ->
          add b "d:";
          add b f
      | I.Indirect e ->
          add b "i:";
          ser_exp b e);
      add b "(";
      List.iter
        (fun a ->
          ser_exp b a;
          add b ",")
        args;
      add b ")"
  | I.Icheck (ck, reason) ->
      add b "ck ";
      ser_check b ck;
      add b reason
  | I.Irc_inc e ->
      add b "rc+ ";
      ser_exp b e
  | I.Irc_dec e ->
      add b "rc- ";
      ser_exp b e
  | I.Irc_update (lv, e) ->
      add b "rc= ";
      ser_lval b lv;
      add b "<-";
      ser_exp b e

let ser_loc b (l : Kc.Loc.t) = add b (Printf.sprintf "@%s:%d:%d" l.Kc.Loc.file l.Kc.Loc.line l.Kc.Loc.col)

let rec ser_stmt b (s : I.stmt) =
  ser_loc b s.I.sloc;
  match s.I.sk with
  | I.Sinstr i ->
      ser_instr b i;
      add b ";"
  | I.Sif (c, b1, b2) ->
      add b "if(";
      ser_exp b c;
      add b "){";
      ser_block b b1;
      add b "}{";
      ser_block b b2;
      add b "}"
  | I.Swhile (c, body, step) ->
      add b "while(";
      ser_exp b c;
      add b "){";
      ser_block b body;
      add b "}step{";
      ser_block b step;
      add b "}"
  | I.Sdowhile (body, c) ->
      add b "do{";
      ser_block b body;
      add b "}while(";
      ser_exp b c;
      add b ")"
  | I.Sswitch (e, cases) ->
      add b "switch(";
      ser_exp b e;
      add b "){";
      List.iter
        (fun (c : I.case) ->
          List.iter (fun v -> add b (Printf.sprintf "case %Ld:" v)) c.I.cvals;
          if c.I.cdefault then add b "default:";
          add b "{";
          ser_block b c.I.cbody;
          add b "}")
        cases;
      add b "}"
  | I.Sbreak -> add b "break;"
  | I.Scontinue -> add b "continue;"
  | I.Sreturn e -> (
      add b "return";
      match e with
      | Some e ->
          add b " ";
          ser_exp b e;
          add b ";"
      | None -> add b ";")
  | I.Sblock body ->
      add b "{";
      ser_block b body;
      add b "}"
  | I.Sdelayed body ->
      add b "delayed{";
      ser_block b body;
      add b "}"
  | I.Strusted body ->
      add b "trusted{";
      ser_block b body;
      add b "}"

and ser_block b (body : I.block) = List.iter (ser_stmt b) body

let ser_fun_annot b (a : I.fun_annot) =
  match a with
  | Kc.Ast.Fblocking -> add b "blocking"
  | Kc.Ast.Fblocking_if_gfp_wait -> add b "blocking_if_gfp_wait"
  | Kc.Ast.Ftrusted -> add b "trusted"
  | Kc.Ast.Facquires l ->
      add b "acquires:";
      add b l
  | Kc.Ast.Freleases l ->
      add b "releases:";
      add b l
  | Kc.Ast.Freturns_err codes ->
      add b "returns_err:";
      List.iter (fun c -> add b (Printf.sprintf "%Ld," c)) codes
  | Kc.Ast.Fframe_hint n -> add b (Printf.sprintf "frame:%d" n)

(* The parts of a function every artifact can see: name, placement,
   linkage, annotations and signature. *)
let ser_fn_header b (fd : I.fundec) =
  add b "fn ";
  add b fd.I.fname;
  ser_loc b fd.I.floc;
  if fd.I.fstatic then add b " static";
  if fd.I.fextern then add b " extern";
  add b " [";
  List.iter
    (fun a ->
      ser_fun_annot b a;
      add b ",")
    fd.I.fannots;
  add b "] (";
  List.iter
    (fun (v : I.varinfo) ->
      add b v.I.vname;
      add b ":";
      ser_ty b v.I.vty;
      add b ",")
    fd.I.sformals;
  add b ")->";
  ser_ty b fd.I.fret

let fn (fd : I.fundec) : string =
  let b = Buffer.create 1024 in
  ser_fn_header b fd;
  add b "{";
  ser_block b fd.I.fbody;
  add b "}";
  Digest.to_hex (Digest.string (Buffer.contents b))

let rec ser_ginit b (gi : I.ginit) =
  match gi with
  | I.Gi_exp e -> ser_exp b e
  | I.Gi_list items ->
      add b "{";
      List.iter
        (fun i ->
          ser_ginit b i;
          add b ",")
        items;
      add b "}"

let header (prog : I.program) : string =
  let b = Buffer.create 1024 in
  let tags = Hashtbl.fold (fun tag _ acc -> tag :: acc) prog.I.comps [] in
  List.iter
    (fun tag ->
      let c = I.comp_find prog tag in
      add b (if c.I.cstruct then "struct " else "union ");
      add b tag;
      add b "{";
      List.iter
        (fun (f : I.fieldinfo) ->
          add b f.I.fname;
          add b ":";
          ser_ty b f.I.fty;
          add b ";")
        c.I.cfields;
      add b "}")
    (List.sort String.compare tags);
  let enums = Hashtbl.fold (fun k v acc -> (k, v) :: acc) prog.I.enum_items [] in
  List.iter
    (fun (k, v) -> add b (Printf.sprintf "enum %s=%Ld;" k v))
    (List.sort compare enums);
  List.iter
    (fun ((v : I.varinfo), init) ->
      add b "glob ";
      add b v.I.vname;
      add b ":";
      ser_ty b v.I.vty;
      (match init with
      | Some gi ->
          add b "=";
          ser_ginit b gi
      | None -> ());
      add b ";")
    prog.I.globals;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Does an expression move pointer values around — mention a
   pointer-typed subexpression, take an address, or name a function?
   These are exactly the flow edges the refsafe summaries read. *)
let exp_ptr_relevant (e : I.exp) : bool =
  I.fold_exp
    (fun acc sub ->
      acc || I.is_pointer sub.I.ety
      || match sub.I.e with I.Eaddrof _ | I.Estartof _ | I.Efun _ -> true | _ -> false)
    false e

(* Does this instruction belong to the call skeleton? Calls, function
   designators anywhere inside, stores into function-pointer lvalues
   (they poison the points-to variable tracking), and pointer-relevant
   stores (the refsafe summaries read them).  Pure integer arithmetic
   stays out, which is what keeps the skeleton stable across
   arithmetic-only edits. *)
let skeleton_instr (i : I.instr) : bool =
  let is_fptr_ty = function I.Tptr (I.Tfun _, _) -> true | _ -> false in
  match i with
  | I.Icall _ -> true
  | I.Iset ((host, offs), e) ->
      exp_ptr_relevant e
      ||
      let lv_ty =
        (* conservative: the host variable's type for direct stores,
           any field store is included if the RHS is fptr-typed *)
        match (host, offs) with I.Lvar v, [] -> Some v.I.vty | _ -> None
      in
      (match lv_ty with
      | Some ty -> is_fptr_ty ty || I.is_pointer ty
      | None -> is_fptr_ty e.I.ety)
  | I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> false

let skeleton (prog : I.program) : string =
  let b = Buffer.create 4096 in
  add b (header prog);
  List.iter
    (fun (fd : I.fundec) ->
      ser_fn_header b fd;
      add b "{";
      I.iter_stmts
        (fun s ->
          match s.I.sk with
          | I.Sinstr i when skeleton_instr i ->
              ser_loc b s.I.sloc;
              ser_instr b i;
              add b ";"
          | I.Sreturn (Some e) when exp_ptr_relevant e ->
              (* pointer returns feed the summaries' returns_alloc /
                 returns_param facts *)
              ser_loc b s.I.sloc;
              add b "return ";
              ser_exp b e;
              add b ";"
          | _ -> ())
        fd.I.fbody;
      add b "}")
    prog.I.funcs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The pointer-flow projection: everything the relational interface
   summaries ({!Absint.Relsum}) read, and nothing else — function
   headers, control structure, pointer-relevant conditions and
   returns (opaque "?" markers otherwise), and the skeleton's
   pointer-moving instructions.  No locations (the summaries carry
   none, so pure line shifts stay warm) and no checks or arithmetic:
   an arithmetic-only body edit leaves the digest unchanged and the
   relsum artifact warm.  Keep in sync with relsum.ml: every fact that
   analysis consumes must be serialized here. *)
let ptrflow (prog : I.program) : string =
  let b = Buffer.create 4096 in
  let ser_cond c =
    if exp_ptr_relevant c then ser_exp b c else add b "?"
  in
  let rec ser_stmt (s : I.stmt) =
    match s.I.sk with
    | I.Sinstr i ->
        if skeleton_instr i then begin
          ser_instr b i;
          add b ";"
        end
    | I.Sreturn (Some e) ->
        add b "return ";
        if exp_ptr_relevant e then ser_exp b e else add b "?";
        add b ";"
    | I.Sreturn None -> add b "return;"
    | I.Sif (c, b1, b2) ->
        add b "if(";
        ser_cond c;
        add b "){";
        List.iter ser_stmt b1;
        add b "}else{";
        List.iter ser_stmt b2;
        add b "}"
    | I.Swhile (c, body, step) ->
        add b "while(";
        ser_cond c;
        add b "){";
        List.iter ser_stmt body;
        add b "}step{";
        List.iter ser_stmt step;
        add b "}"
    | I.Sdowhile (body, c) ->
        add b "do{";
        List.iter ser_stmt body;
        add b "}while(";
        ser_cond c;
        add b ")"
    | I.Sswitch (_, cases) ->
        (* the scrutinee and case values pick a case at runtime; the
           must-analysis joins over all of them, so only the default
           marker and the bodies matter *)
        add b "switch{";
        List.iter
          (fun (c : I.case) ->
            add b (if c.I.cdefault then "default{" else "case{");
            List.iter ser_stmt c.I.cbody;
            add b "}")
          cases;
        add b "}"
    | I.Sbreak -> add b "break;"
    | I.Scontinue -> add b "continue;"
    | I.Sblock b1 | I.Sdelayed b1 | I.Strusted b1 ->
        add b "{";
        List.iter ser_stmt b1;
        add b "}"
  in
  List.iter
    (fun (fd : I.fundec) ->
      ser_fn_header b fd;
      add b "{";
      List.iter ser_stmt fd.I.fbody;
      add b "}")
    prog.I.funcs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let table_of (prog : I.program) : table =
  let t_header = header prog in
  let t_fns = List.map (fun (fd : I.fundec) -> (fd.I.fname, fn fd)) prog.I.funcs in
  let b = Buffer.create 1024 in
  add b t_header;
  List.iter
    (fun (name, d) ->
      add b name;
      add b "=";
      add b d;
      add b ";")
    t_fns;
  { t_header; t_fns; t_program = Digest.to_hex (Digest.string (Buffer.contents b));
    t_skeleton = skeleton prog; t_ptrflow = ptrflow prog }

type diff = {
  d_changed : string list;  (** defined in both, body or header differs *)
  d_added : string list;
  d_removed : string list;
  d_header_changed : bool;
}

let diff ~(old : table) (fresh : table) : diff =
  let changed =
    List.filter_map
      (fun (name, d) ->
        match List.assoc_opt name old.t_fns with
        | Some d' when String.equal d d' -> None
        | Some _ -> Some name
        | None -> None)
      fresh.t_fns
  in
  let added =
    List.filter_map
      (fun (name, _) -> if List.mem_assoc name old.t_fns then None else Some name)
      fresh.t_fns
  in
  let removed =
    List.filter_map
      (fun (name, _) -> if List.mem_assoc name fresh.t_fns then None else Some name)
      old.t_fns
  in
  {
    d_changed = changed;
    d_added = added;
    d_removed = removed;
    d_header_changed = not (String.equal old.t_header fresh.t_header);
  }

let unchanged ~(old : table) (fresh : table) : bool =
  String.equal old.t_program fresh.t_program

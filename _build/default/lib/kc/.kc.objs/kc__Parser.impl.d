lib/kc/parser.ml: Array Ast Char Hashtbl Int64 Lexer List Loc Printf Token

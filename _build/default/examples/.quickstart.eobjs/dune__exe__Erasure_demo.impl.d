examples/erasure_demo.ml: Kc Kernel List Printf String Vm

(* Tests for the KC frontend: lexer, parser, type checker, layout. *)

let contains_sub ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let parse_program src = Kc.Typecheck.check_sources [ ("test.kc", src) ]

let check_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      try ignore (parse_program src)
      with
      | Kc.Typecheck.Type_error (msg, loc) ->
          Alcotest.failf "type error: %s at %s" msg (Kc.Loc.to_string loc)
      | Kc.Parser.Error (msg, loc) ->
          Alcotest.failf "parse error: %s at %s" msg (Kc.Loc.to_string loc)
      | Kc.Lexer.Error (msg, loc) ->
          Alcotest.failf "lex error: %s at %s" msg (Kc.Loc.to_string loc))

let check_type_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match ignore (parse_program src) with
      | () -> Alcotest.failf "expected a type error, but %s checked" name
      | exception Kc.Typecheck.Type_error _ -> ())

let check_parse_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match ignore (parse_program src) with
      | () -> Alcotest.failf "expected a parse error, but %s parsed" name
      | exception Kc.Parser.Error _ -> ()
      | exception Kc.Lexer.Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let lex_tokens src =
  Kc.Lexer.tokenize ~file:"t" src |> Array.to_list |> List.map fst

let test_lex_simple () =
  let toks = lex_tokens "int x = 42;" in
  Alcotest.(check int) "token count" 6 (List.length toks);
  match toks with
  | [ Kc.Token.KW_INT; Kc.Token.IDENT "x"; Kc.Token.EQ; Kc.Token.INT_LIT 42L; Kc.Token.SEMI; Kc.Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_operators () =
  let toks = lex_tokens "a <<= b >>= c << >> <= >= == != && || -> ++ -- ..." in
  let has t = List.exists (Kc.Token.equal t) toks in
  List.iter
    (fun t -> Alcotest.(check bool) (Kc.Token.to_string t) true (has t))
    [
      Kc.Token.SHLEQ; Kc.Token.SHREQ; Kc.Token.SHL; Kc.Token.SHR; Kc.Token.LE; Kc.Token.GE;
      Kc.Token.EQEQ; Kc.Token.NE; Kc.Token.ANDAND; Kc.Token.BARBAR; Kc.Token.ARROW;
      Kc.Token.PLUSPLUS; Kc.Token.MINUSMINUS; Kc.Token.ELLIPSIS;
    ]

let test_lex_literals () =
  let toks = lex_tokens "0x1F 'a' '\\n' \"hi\\t\" 100UL" in
  match toks with
  | [ Kc.Token.INT_LIT 31L; Kc.Token.CHAR_LIT 'a'; Kc.Token.CHAR_LIT '\n';
      Kc.Token.STR_LIT "hi\t"; Kc.Token.INT_LIT 100L; Kc.Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected literal tokens"

let test_lex_comments () =
  let toks = lex_tokens "a /* multi\nline */ b // eol\nc # preproc\nd" in
  Alcotest.(check int) "4 idents + eof" 5 (List.length toks)

let test_lex_locations () =
  let toks = Kc.Lexer.tokenize ~file:"f" "a\n  b" in
  let _, loc_b = toks.(1) in
  Alcotest.(check int) "line of b" 2 loc_b.Kc.Loc.line;
  Alcotest.(check int) "col of b" 3 loc_b.Kc.Loc.col

(* ------------------------------------------------------------------ *)
(* Parser + typechecker acceptance                                    *)
(* ------------------------------------------------------------------ *)

let accept_cases =
  [
    check_ok "minimal function" "int main(void) { return 0; }";
    check_ok "arith and locals"
      "int f(int a, int b) { int c = a * 2 + b % 3; return c - (a << 1); }";
    check_ok "pointers and deref"
      "int g(int *p) { int x = *p; *p = x + 1; return *p; }";
    check_ok "struct def and access"
      "struct point { int x; int y; };\n\
       int norm1(struct point *p) { return p->x + p->y; }";
    check_ok "nested struct"
      "struct inner { int v; };\n\
       struct outer { struct inner in; int tag; };\n\
       int get(struct outer *o) { return o->in.v; }";
    check_ok "arrays"
      "int sum(void) { int a[8]; int i; int s = 0; for (i = 0; i < 8; i++) { a[i] = i; s += a[i]; } return s; }";
    check_ok "typedef" "typedef unsigned long size_t;\nsize_t id(size_t n) { return n; }";
    check_ok "enum" "enum color { RED, GREEN = 5, BLUE };\nint f(void) { return BLUE; }";
    check_ok "function pointers"
      "int add1(int x) { return x + 1; }\n\
       int apply(int (*f)(int), int v) { return f(v); }\n\
       int main(void) { return apply(add1, 41); }";
    check_ok "dispatch table"
      "int r(void) { return 1; } int w(void) { return 2; }\n\
       struct ops { int (*do_read)(void); int (*do_write)(void); };\n\
       struct ops my_ops = { r, w };\n\
       int main(void) { return my_ops.do_read(); }";
    check_ok "while and break"
      "int f(int n) { int i = 0; while (1) { if (i >= n) { break; } i++; } return i; }";
    check_ok "do while" "int f(int n) { int i = 0; do { i++; } while (i < n); return i; }";
    check_ok "switch"
      "int f(int x) { switch (x) { case 0: return 10; case 1: case 2: return 20; default: return 30; } }";
    check_ok "conditional expr" "int max(int a, int b) { return a > b ? a : b; }";
    check_ok "short circuit" "int f(int *p) { if (p != 0 && *p > 0) { return 1; } return 0; }";
    check_ok "string literal" "void puts_(char * __nullterm s);\nvoid f(void) { puts_(\"hello\"); }";
    check_ok "count annotation"
      "int sum(int * __count(n) buf, int n) { int i; int s = 0; for (i = 0; i < n; i++) { s += buf[i]; } return s; }";
    check_ok "count on struct field"
      "struct vec { int len; int * __count(len) data; };\n\
       int first(struct vec *v) { return v->data[0]; }";
    check_ok "nullterm annotation"
      "int my_strlen(char * __nullterm s) { int n = 0; while (*s != 0) { s = s + 1; n++; } return n; }";
    check_ok "opt annotation" "int f(int * __opt p) { if (p == 0) { return -1; } return *p; }";
    check_ok "trusted block" "int f(int *p) { __trusted { return *(p + 100); } }";
    check_ok "function annots"
      "void might_sleep(void) __blocking;\n\
       void *kmalloc_(unsigned long size, int flags) __blocking_if_gfp_wait;\n\
       int f(void) { might_sleep(); return 0; }";
    check_ok "void pointer conversions"
      "void *alloc(unsigned long n);\n\
       int *get(void) { int *p = alloc(4); return p; }";
    check_ok "sizeof"
      "struct s { int a; long b; };\nunsigned long f(void) { return sizeof(struct s) + sizeof(int); }";
    check_ok "casts" "long f(int *p) { return (long)p; }";
    check_ok "delayed free scope"
      "void kfree_(void *p);\n\
       void f(int *a, int *b) { __delayed_free { kfree_(a); kfree_(b); } }";
    check_ok "recursive struct"
      "struct node { int v; struct node *next; };\n\
       int len(struct node *n) { int k = 0; while (n != 0) { k++; n = n->next; } return k; }";
    check_ok "globals with init"
      "int counter = 3;\nint arr[4] = { 1, 2, 3, 4 };\nint get(void) { return counter + arr[2]; }";
    check_ok "unions" "union u { int i; char c; };\nint f(union u *p) { return p->i; }";
    check_ok "compound assign ops"
      "int f(int x) { x += 1; x -= 2; x *= 3; x /= 2; x %= 7; x <<= 1; x >>= 1; x &= 15; x |= 1; x ^= 2; return x; }";
    check_ok "pre/post incr as values"
      "int f(void) { int i = 0; int a = i++; int b = ++i; return a + b + i; }";
    check_ok "address of local" "int f(void) { int x = 5; int *p = &x; return *p; }";
    check_ok "static functions"
      "static int helper(void) { return 1; }\nint main(void) { return helper(); }";
    check_ok "variadic extern"
      "void printk(char * __nullterm fmt, ...);\nvoid f(void) { printk(\"x=%d\", 42); }";
    check_ok "long literals" "long f(void) { return 4294967296; }";
    check_ok "double pointer"
      "int f(int **pp) { int *p = *pp; return *p; }";
    check_ok "array of function pointers"
      "int a1(int x) { return x; } int a2(int x) { return x + x; }\n\
       int (*dispatch[2])(int) = { a1, a2 };\n\
       int call0(void) { return dispatch[0](5); }";
    check_ok "function returning pointer"
      "int g;\nint *addr_of_g(void) { return &g; }\nint f(void) { int *p = addr_of_g(); return *p; }";
    check_ok "pointer to function returning pointer"
      "int g;\nint *getp(void) { return &g; }\n\
       int f(void) { int *(*fp)(void) = getp; int *p = fp(); return *p; }";
    check_ok "nested ternary right assoc"
      "int f(int a) { return a == 0 ? 1 : a == 1 ? 2 : 3; }";
    check_ok "struct containing array of structs"
      "struct cell { int v; };\nstruct grid { struct cell cells[4]; int n; };\n\
       int f(struct grid *g) { return g->cells[2].v + g->n; }";
    check_ok "chained field and index"
      "struct inner2 { int xs[3]; };\nstruct outer2 { struct inner2 in2; };\n\
       int f(struct outer2 *o) { return o->in2.xs[1]; }";
    check_ok "parenthesized declarator no-op" "int f(void) { int (x) = 3; return x; }";
    check_ok "hex and shifts mix" "int f(void) { return (0xFF << 4) | 0x0F; }";
    check_ok "deep expression nesting"
      "int f(int a, int b, int c) { return ((a + b) * (b + c) - (c * a)) % ((a | 1) + (b & 7) + 1); }";
    check_ok "const qualifiers ignored"
      "int f(const int x, const char * __nullterm s) { return x + *s; }";
    check_ok "unsigned comparisons"
      "int f(unsigned int a, unsigned int b) { if (a < b) { return -1; } if (a > b) { return 1; } return 0; }";
    check_ok "empty statement and empty blocks" "int f(void) { ; { } ; return 0; }";
  ]

let reject_cases =
  [
    check_type_error "unknown variable" "int f(void) { return y; }";
    check_type_error "unknown function" "int f(void) { return g(); }";
    check_type_error "wrong arity" "int g(int x) { return x; }\nint f(void) { return g(); }";
    check_type_error "call of non-function" "int f(int x) { return x(); }";
    check_type_error "deref of int" "int f(int x) { return *x; }";
    check_type_error "field on int" "int f(int x) { return x.bad; }";
    check_type_error "unknown field" "struct s { int a; };\nint f(struct s *p) { return p->b; }";
    check_type_error "implicit ptr type mix"
      "struct a { int x; }; struct b { int y; };\n\
       struct a *f(struct b *p) { return p; }";
    check_type_error "void function used as value" "void g(void);\nint f(void) { return g(); }";
    check_type_error "return value from void" "void f(void) { return 3; }";
    check_type_error "count on non-integer"
      "int f(int * __count(p) buf, int *p) { return buf[0]; }";
    check_type_error "call in loop condition"
      "int g(void);\nint f(void) { while (g()) { } return 0; }";
    check_parse_error "unterminated block" "int f(void) { return 0;";
    check_parse_error "bad token" "int f(void) { return $; }";
    check_parse_error "missing semicolon" "int f(void) { return 0 }";
  ]

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let layout_prog =
  "struct padded { char c; long l; int i; };\n\
   struct packed2 { char a; char b; };\n\
   union mix { char c; long l; };\n\
   struct arr { int xs[10]; char tag; };\n"

let test_layout () =
  let prog = parse_program layout_prog in
  let size tag = Kc.Layout.comp_size prog (Kc.Ir.comp_find prog tag) in
  Alcotest.(check int) "padded size" 24 (size "padded");
  Alcotest.(check int) "packed2 size" 2 (size "packed2");
  Alcotest.(check int) "union size" 8 (size "mix");
  Alcotest.(check int) "arr size" 44 (size "arr");
  let off tag f = Kc.Layout.field_offset prog (Kc.Ir.field_find prog tag f) in
  Alcotest.(check int) "c offset" 0 (off "padded" "c");
  Alcotest.(check int) "l offset" 8 (off "padded" "l");
  Alcotest.(check int) "i offset" 16 (off "padded" "i");
  Alcotest.(check int) "union offsets are zero" 0 (off "mix" "l");
  Alcotest.(check int) "tag after array" 40 (off "arr" "tag")

let test_scalar_sizes () =
  let prog = parse_program "int dummy;" in
  let size t = Kc.Layout.size_of prog t in
  Alcotest.(check int) "char" 1 (size Kc.Ir.char_type);
  Alcotest.(check int) "int" 4 (size Kc.Ir.int_type);
  Alcotest.(check int) "long" 8 (size Kc.Ir.long_type);
  Alcotest.(check int) "ptr" 8 (size (Kc.Ir.Tptr (Kc.Ir.int_type, Kc.Ir.no_annots)))

(* ------------------------------------------------------------------ *)
(* Elaboration shape                                                   *)
(* ------------------------------------------------------------------ *)

let find_fun prog name =
  match Kc.Ir.find_fun prog name with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let test_call_hoisting () =
  let prog = parse_program "int g(int x) { return x; }\nint f(void) { return g(1) + g(2); }" in
  let f = find_fun prog "f" in
  let calls = ref 0 in
  Kc.Ir.iter_instrs (fun i -> match i with Kc.Ir.Icall _ -> incr calls | _ -> ()) f.Kc.Ir.fbody;
  Alcotest.(check int) "two hoisted calls" 2 !calls;
  Alcotest.(check bool) "temps introduced" true (List.length f.Kc.Ir.slocals >= 2)

let test_array_decay_annot () =
  let prog =
    parse_program
      "int take(int * __count(n) p, int n);\nint a[7];\nint f(void) { return take(a, 7); }"
  in
  let f = find_fun prog "f" in
  let saw_count = ref false in
  Kc.Ir.iter_instrs
    (fun i ->
      match i with
      | Kc.Ir.Icall (_, _, args) ->
          List.iter
            (fun (e : Kc.Ir.exp) ->
              Kc.Ir.fold_exp
                (fun () (e : Kc.Ir.exp) ->
                  match e.Kc.Ir.ety with
                  | Kc.Ir.Tptr (_, a) -> (
                      match a.Kc.Ir.a_count with
                      | Some { Kc.Ir.e = Kc.Ir.Econst 7L; _ } -> saw_count := true
                      | _ -> ())
                  | _ -> ())
                () e)
            args
      | _ -> ())
    f.Kc.Ir.fbody;
  Alcotest.(check bool) "array decays with count(7)" true !saw_count

let test_enum_values () =
  let prog = parse_program "enum e { A, B = 10, C };" in
  let v name = Hashtbl.find prog.Kc.Ir.enum_items name in
  Alcotest.(check int64) "A" 0L (v "A");
  Alcotest.(check int64) "B" 10L (v "B");
  Alcotest.(check int64) "C" 11L (v "C")

let test_pretty_roundtrip () =
  let src =
    "struct v { int len; int * __count(len) data; };\n\
     int sum(struct v *p) { int i; int s = 0; for (i = 0; i < p->len; i++) { s += p->data[i]; } return s; }"
  in
  let prog = parse_program src in
  let printed = Kc.Pretty.print_program prog in
  let prog2 = Kc.Typecheck.check_sources [ ("roundtrip.kc", printed) ] in
  Alcotest.(check int) "same number of functions" (List.length prog.Kc.Ir.funcs)
    (List.length prog2.Kc.Ir.funcs)

let test_erasure () =
  let src =
    "int sum(int * __count(n) buf, int n) { int i; int s = 0; for (i = 0; i < n; i++) { s += buf[i]; } return s; }"
  in
  let prog = parse_program src in
  let erased = Kc.Pretty.print_program ~erase:true prog in
  Alcotest.(check bool) "no __count in erased output" false (contains_sub ~affix:"__count" erased)

let () =
  Alcotest.run "kc"
    [
      ( "lexer",
        [
          Alcotest.test_case "simple" `Quick test_lex_simple;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "locations" `Quick test_lex_locations;
        ] );
      ("accept", accept_cases);
      ("reject", reject_cases);
      ( "layout",
        [
          Alcotest.test_case "structs" `Quick test_layout;
          Alcotest.test_case "scalars" `Quick test_scalar_sizes;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "call hoisting" `Quick test_call_hoisting;
          Alcotest.test_case "array decay count" `Quick test_array_decay_annot;
          Alcotest.test_case "enum values" `Quick test_enum_values;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "erasure" `Quick test_erasure;
        ] );
    ]

lib/dataflow/liveness.mli: Cfg Kc Worklist

lib/dataflow/liveness.ml: Array Cfg Kc List Worklist

(** The shared whole-program analysis context (engine).

    One [Context.t] is the single owner of every expensive
    whole-program artifact: the typed program, {!Blockstop.Pointsto.t}
    and {!Blockstop.Callgraph.t} memoized per points-to mode,
    per-function {!Dataflow.Cfg.t} tables, blocking summaries, and the
    interrupt-handler facts from {!Blockstop.Atomic}. Everything is
    built lazily, built at most once per key, and instrumented with
    hit/miss counters and wall-clock build timers so the bench (and
    [ivy check --stats]) can show that N analyses pay for one build. *)

type t

val create : ?jobs:int -> Kc.Ir.program -> t
(** [jobs] (default 1) sizes the {!Par} pool used by stages that can
    fan out internally (today: {!absint_summaries} solves one SCC
    level's functions in parallel). The context itself must never be
    shared across domains — its memo tables are plain [Hashtbl]s; a
    parallel driver creates one context per worker and aggregates
    observability with {!merge_counters}. *)

val program : t -> Kc.Ir.program

(** Points-to facts for [mode] (default {!Blockstop.Pointsto.Type_based}),
    built on first request and shared thereafter. *)
val pointsto : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Pointsto.t

(** Call graph for [mode]; reuses the cached points-to for that mode. *)
val callgraph : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Callgraph.t

(** Unguarded blocking propagation over the cached call graph. *)
val blocking : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Blocking.t

(** Control-flow graph of a defined function ([None] for externs),
    cached per function name. *)
val cfg : t -> string -> Dataflow.Cfg.t option

(** Interprocedural interval summaries ({!Absint.Summary}) over the
    base program, sharing the memoized CFGs (cached). *)
val absint_summaries : t -> Absint.Transfer.summaries

(** The deputized view of the program: a shallow copy that has been
    instrumented, Facts-optimized and absint-discharged. The context's
    base program is untouched. *)
type deputized = {
  dprog : Kc.Ir.program;
  dreport : Deputy.Dreport.report;  (** instrument + Facts-optimize counters *)
  dstats : Absint.Discharge.stats;  (** absint second-stage discharge *)
}

val deputized : t -> deputized

(** The VM's pre-compiled executable form of the base program
    ({!Vm.Compile}), cached on the context (and globally memoized per
    program by the VM itself). Booting an interpreter on this
    context's program reuses it. *)
val vm_compiled : t -> Vm.Compile.t

(** Functions registered as interrupt handlers (cached). *)
val irq_handlers : t -> Blockstop.Atomic.SS.t

(** Observability for the bench and [--stats]. *)
type stat = {
  artifact : string;  (** e.g. ["callgraph(type-based)"] *)
  builds : int;  (** times actually constructed (1 per key if shared) *)
  hits : int;  (** times served from the cache *)
  seconds : float;  (** wall-clock spent constructing *)
}

(** Stats sorted by artifact name. *)
val stats : t -> stat list

(** Fold the per-worker stat lists of a parallel run (one context per
    worker) into one list: per-artifact sums, sorted by artifact name —
    deterministic regardless of worker scheduling. *)
val merge_counters : stat list list -> stat list

val pp_stats : Format.formatter -> t -> unit

(* The shared whole-program analysis context. See context.mli.

   Since the artifact-graph refactor every memoized value lives in one
   {!Graph} per context: getters declare their artifact's key, its
   dependency edges and the content hash of its inputs (from the
   context's {!Fingerprint.table}, recomputed only when the program is
   (re)loaded), and the graph decides hit vs rebuild and owns the
   build/hit/invalidation counters. [update] re-fingerprints a newly
   parsed version of the program, swaps it in, and push-invalidates
   exactly the per-function artifacts whose digest changed — the
   whole-program artifacts notice their own input hash change on next
   access. *)

module P = Blockstop.Pointsto
module CG = Blockstop.Callgraph
module BL = Blockstop.Blocking
module AT = Blockstop.Atomic

(* The deputized view of the program: a shallow copy instrumented,
   Facts-optimized and absint-discharged, with both passes' stats. *)
type deputized = {
  dprog : Kc.Ir.program;
  dreport : Deputy.Dreport.report;
  dstats : Absint.Discharge.stats;
}

(* The CCount view of the program: a shallow copy rc-instrumented and
   then thinned by the refsafe discharge, with both passes' stats and
   the RTTI needed to boot it. *)
type ccounted = {
  cprog : Kc.Ir.program;
  cinstr : Ccount.Rc_instrument.stats;
  cinfo : Ccount.Typeinfo.t;
  crstats : Refsafe.Discharge.stats;
}

type t = {
  mutable prog : Kc.Ir.program;
  jobs : int;
  g : Graph.t;
  mutable fps : Fingerprint.table;
  prefetch_miss : int Atomic.t;
      (* CFGs built by Par workers outside the graph because the
         serial prefetch missed them; surfaced in stats, never
         silent. *)
}

let create ?(jobs = 1) (prog : Kc.Ir.program) : t =
  { prog; jobs; g = Graph.create (); fps = Fingerprint.table_of prog;
    prefetch_miss = Atomic.make 0 }

let program t = t.prog
let graph t = t.g
let program_fingerprint t = t.fps.Fingerprint.t_program
let skeleton_fingerprint t = t.fps.Fingerprint.t_skeleton
let ptrflow_fingerprint t = t.fps.Fingerprint.t_ptrflow

let mode_name = function P.Type_based -> "type-based" | P.Field_based -> "field-based"

(* Artifact keys, shared with consumers that declare dependencies on
   us (Ivy.Checks, the serve daemon's invalidate RPC). *)
module Key = struct
  let pointsto mode = Graph.key (Printf.sprintf "pointsto(%s)" (mode_name mode))
  let callgraph mode = Graph.key (Printf.sprintf "callgraph(%s)" (mode_name mode))
  let blocking mode = Graph.key (Printf.sprintf "blocking(%s)" (mode_name mode))
  let cfg fname = Graph.key ~param:fname "cfg"
  let summaries = Graph.key "absint-summaries"
  let relsum = Graph.key "relsum-ifaces"
  let deputized = Graph.key "deputized(absint)"
  let vm_compiled = Graph.key "vm-compiled"
  let irq_handlers = Graph.key "irq-handlers"
  let refsafe_summaries = Graph.key "refsafe-summaries"
  let ccount_discharged = Graph.key "ccount-discharged"
  let check name = Graph.key (Printf.sprintf "check(%s)" name)
end

(* One slot per artifact family (see Graph.slot): allocated once so
   projection always matches injection. *)
let pointsto_slot : P.t Graph.slot = Graph.slot ()
let callgraph_slot : CG.t Graph.slot = Graph.slot ()
let blocking_slot : BL.t Graph.slot = Graph.slot ()
let cfg_slot : Dataflow.Cfg.t Graph.slot = Graph.slot ()
let handlers_slot : AT.SS.t Graph.slot = Graph.slot ()
let summaries_slot : Absint.Transfer.summaries Graph.slot = Graph.slot ()
let relsum_slot : Absint.Transfer.ifaces Graph.slot = Graph.slot ()
let deputized_slot : deputized Graph.slot = Graph.slot ()
let vm_compiled_slot : Vm.Compile.t Graph.slot = Graph.slot ()
let refsafe_summaries_slot : Refsafe.Summary.summaries Graph.slot = Graph.slot ()
let ccounted_slot : ccounted Graph.slot = Graph.slot ()

let pointsto ?(mode = P.Type_based) (t : t) : P.t =
  Graph.get t.g pointsto_slot
    ~name:(Key.pointsto mode).Graph.name
    ~fp:(skeleton_fingerprint t)
    (fun () -> P.build ~mode t.prog)

let callgraph ?(mode = P.Type_based) (t : t) : CG.t =
  (* Fetch the dependency first so its stamp is current when the graph
     checks ours. *)
  let pt = pointsto ~mode t in
  Graph.get t.g callgraph_slot
    ~name:(Key.callgraph mode).Graph.name
    ~deps:[ Key.pointsto mode ]
    ~fp:(skeleton_fingerprint t)
    (fun () -> CG.build ~pointsto:pt t.prog)

let blocking ?(mode = P.Type_based) (t : t) : BL.t =
  let cg = callgraph ~mode t in
  Graph.get t.g blocking_slot
    ~name:(Key.blocking mode).Graph.name
    ~deps:[ Key.callgraph mode ]
    ~fp:(skeleton_fingerprint t)
    (fun () -> BL.compute cg)

let fn_fingerprint t fname =
  match List.assoc_opt fname t.fps.Fingerprint.t_fns with
  | Some d -> d
  | None -> Fingerprint.fn (Option.get (Kc.Ir.find_fun t.prog fname))

let cfg (t : t) (fname : string) : Dataflow.Cfg.t option =
  match Kc.Ir.find_fun t.prog fname with
  | Some fd when not fd.Kc.Ir.fextern ->
      Some
        (Graph.get t.g cfg_slot ~name:"cfg" ~param:fname ~fp:(fn_fingerprint t fname)
           (fun () -> Dataflow.Cfg.build fd))
  | _ -> None

let defined_funcs (t : t) : Kc.Ir.fundec list =
  List.filter (fun (fd : Kc.Ir.fundec) -> not fd.Kc.Ir.fextern) t.prog.Kc.Ir.funcs

(* Relational interface summaries over the base program.  They read
   only the pointer-flow projection of each body (Relsum mirrors
   Fingerprint.ptrflow), so the artifact keys on that digest and stays
   warm across arithmetic-only edits — unlike the interval summaries
   below, which read every body.  Under IVY_ABSINT_DOMAIN=interval the
   getter short-circuits to the empty interface map without touching
   the graph. *)
let relsum_ifaces (t : t) : Absint.Transfer.ifaces =
  if not (Absint.Domain.relational ()) then Absint.Transfer.no_ifaces
  else
    Graph.get t.g relsum_slot ~name:Key.relsum.Graph.name
      ~fp:(ptrflow_fingerprint t)
      (fun () -> Absint.Relsum.compute ~jobs:t.jobs t.prog)

(* Interprocedural interval summaries over the base (uninstrumented)
   program, sharing the memoized CFGs: instrumentation only adds
   checks and temporaries, so return-value summaries computed here
   stay valid for the deputized view. *)
let absint_summaries (t : t) : Absint.Transfer.summaries =
  let ifaces = relsum_ifaces t in
  let defined = defined_funcs t in
  (* Populate the CFG artifacts serially (the graph is single-domain),
     then fan the summary solve out over an immutable snapshot. A
     snapshot miss means a function the prefetch could not see; it is
     built outside the graph but counted (satellite: a missed prefetch
     surfaces in stats, it does not vanish). *)
  List.iter (fun (fd : Kc.Ir.fundec) -> ignore (cfg t fd.Kc.Ir.fname)) defined;
  let snapshot = Hashtbl.create (List.length defined) in
  List.iter
    (fun (fd : Kc.Ir.fundec) ->
      match cfg t fd.Kc.Ir.fname with
      | Some c -> Hashtbl.replace snapshot fd.Kc.Ir.fname c
      | None -> ())
    defined;
  let cfg_of (fd : Kc.Ir.fundec) =
    match Hashtbl.find_opt snapshot fd.Kc.Ir.fname with
    | Some c -> c
    | None ->
        Atomic.incr t.prefetch_miss;
        Dataflow.Cfg.build fd
  in
  Graph.get t.g summaries_slot ~name:Key.summaries.Graph.name
    ~deps:
      (Key.relsum
      :: List.map (fun (fd : Kc.Ir.fundec) -> Key.cfg fd.Kc.Ir.fname) defined)
    ~fp:(program_fingerprint t)
    (fun () -> Absint.Summary.compute ~cfg_of ~jobs:t.jobs ~ifaces t.prog)

(* The deputized view: instrument + Facts-optimize + absint-discharge
   a shallow copy, leaving the context's base program untouched. *)
let deputized (t : t) : deputized =
  let ifaces = relsum_ifaces t in
  let summaries = absint_summaries t in
  Graph.get t.g deputized_slot ~name:Key.deputized.Graph.name
    ~deps:[ Key.relsum; Key.summaries ]
    ~fp:(program_fingerprint t)
    (fun () ->
      let dprog = Kc.Ir.copy_program t.prog in
      let dreport = Deputy.Dreport.deputize dprog in
      let dstats = Absint.Discharge.run ~summaries ~ifaces dprog in
      { dprog; dreport; dstats })

(* Refsafe ownership summaries: flow-insensitive per-function alias
   facts solved over the Tarjan SCC levels. They read only the
   pointer-flow projection of each body, so they key on the (extended)
   call skeleton and stay warm across arithmetic-only edits. *)
let refsafe_summaries (t : t) : Refsafe.Summary.summaries =
  Graph.get t.g refsafe_summaries_slot
    ~name:Key.refsafe_summaries.Graph.name
    ~fp:(skeleton_fingerprint t)
    (fun () -> Refsafe.Summary.compute ~jobs:t.jobs t.prog)

(* The CCount view: rc-instrument a shallow copy, then let the refsafe
   discharge strip the counter updates it proves unobservable. Keyed
   on the full program digest (instrumentation reads every body) with
   the summaries as a declared dependency. *)
let ccount_discharged (t : t) : ccounted =
  let summaries = refsafe_summaries t in
  Graph.get t.g ccounted_slot ~name:Key.ccount_discharged.Graph.name
    ~deps:[ Key.refsafe_summaries ]
    ~fp:(program_fingerprint t)
    (fun () ->
      let cprog = Kc.Ir.copy_program t.prog in
      let cinstr, cinfo = Ccount.Rc_instrument.instrument_program cprog in
      let crstats = Refsafe.Discharge.run ~summaries cprog in
      { cprog; cinstr; cinfo; crstats })

(* The VM's compiled form of the base program. Vm.Compile keeps its
   own per-program memo (so fuzz-case programs outside any context
   still share code); this artifact pins the result on the context and
   folds its construction into the stats lines. *)
let vm_compiled (t : t) : Vm.Compile.t =
  Graph.get t.g vm_compiled_slot ~name:Key.vm_compiled.Graph.name
    ~fp:(program_fingerprint t)
    (fun () -> Vm.Compile.of_program t.prog)

let irq_handlers (t : t) : AT.SS.t =
  Graph.get t.g handlers_slot ~name:Key.irq_handlers.Graph.name
    ~fp:(skeleton_fingerprint t)
    (fun () -> AT.irq_handlers t.prog)

(* Generic artifact registration for consumers outside the engine
   (Ivy.Checks caches per-analysis diagnostics this way). *)
let cached (t : t) (slot : 'a Graph.slot) ~name ?param ?deps ~fp (build : unit -> 'a) : 'a =
  Graph.get t.g slot ~name ?param ?deps ~fp build

(* ------------------------------------------------------------------ *)
(* Incremental update                                                 *)
(* ------------------------------------------------------------------ *)

type update = {
  u_changed : string list;
  u_added : string list;
  u_removed : string list;
  u_header_changed : bool;
  u_unchanged : bool;  (** nothing differed; the old program was kept *)
  u_dropped : int;  (** artifacts push-invalidated by the update *)
}

let update (t : t) (prog : Kc.Ir.program) : update =
  let fps = Fingerprint.table_of prog in
  if Fingerprint.unchanged ~old:t.fps fps then
    (* Keep the old program object: artifacts stay physically shared
       and the VM's per-program compile memo stays warm. *)
    { u_changed = []; u_added = []; u_removed = []; u_header_changed = false;
      u_unchanged = true; u_dropped = 0 }
  else begin
    let d = Fingerprint.diff ~old:t.fps fps in
    t.prog <- prog;
    t.fps <- fps;
    (* Per-function artifacts whose content hash changed (or that no
       longer exist) are push-invalidated along the declared edges:
       cfg(f) -> absint-summaries -> deputized(absint) -> check(absint).
       Whole-program artifacts re-key themselves on next access via
       their own input hash. *)
    let dropped =
      List.fold_left
        (fun acc f -> acc + Graph.invalidate t.g (Key.cfg f))
        0
        (d.Fingerprint.d_changed @ d.Fingerprint.d_removed)
    in
    {
      u_changed = d.Fingerprint.d_changed;
      u_added = d.Fingerprint.d_added;
      u_removed = d.Fingerprint.d_removed;
      u_header_changed = d.Fingerprint.d_header_changed;
      u_unchanged = false;
      u_dropped = dropped;
    }
  end

let invalidate (t : t) (k : Graph.key) : int = Graph.invalidate t.g k
let invalidate_all (t : t) : int = Graph.invalidate_all t.g

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

type stat = Graph.stat = {
  artifact : string;
  builds : int;
  hits : int;
  invalidations : int;
  seconds : float;
}

let stats (t : t) : stat list =
  let base = Graph.stats t.g in
  let misses = Atomic.get t.prefetch_miss in
  if misses = 0 then base
  else
    base
    @ [
        { artifact = "cfg(prefetch-miss)"; builds = misses; hits = 0; invalidations = 0;
          seconds = 0.0 };
      ]
    |> List.sort (fun a b -> String.compare a.artifact b.artifact)

let prefetch_misses (t : t) : int = Atomic.get t.prefetch_miss

(* Contexts are never shared across domains — each Par worker creates
   its own and ships back its [stats] — so aggregation is a plain fold
   on the merging side: per-artifact sums, sorted by name. Builds,
   hits and invalidations are deterministic; seconds are wall-clock. *)
let merge_counters (per_worker : stat list list) : stat list = Graph.merge per_worker

let pp_stats fmt (t : t) =
  Format.fprintf fmt
    "engine artifacts (builds / cache hits / invalidations / build seconds):@.";
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-24s built %d  hits %d  inval %d  %.4fs@." s.artifact s.builds
        s.hits s.invalidations s.seconds)
    (stats t)

lib/vm/alloc.ml: Hashtbl Mem Trap

(** Generic worklist dataflow solver over {!Cfg}, parameterized by a
    join-semilattice; supports forward and backward problems. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = { before : L.t array; after : L.t array }

  (** [solve ~dir cfg ~init ~transfer]: [transfer node state] maps a
      node's input state to its output (input = entry for forward,
      exit for backward). Returns the fixpoint per node. *)
  val solve :
    ?dir:direction -> Cfg.t -> init:L.t -> transfer:(Cfg.node -> L.t -> L.t) -> result
end

(** A lattice of possibly infinite height, equipped with widening (to
    force the ascending phase to stabilize) and narrowing (to recover
    precision in bounded descending sweeps). *)
module type WIDEN_LATTICE = sig
  include LATTICE

  val widen : t -> t -> t
  (** [widen old next]: an upper bound of both arguments such that any
      chain [x, widen x y1, widen (widen x y1) y2, ...] is finite. *)

  val narrow : t -> t -> t
  (** [narrow old next] with [next <= old]: any value between [next]
      and [old]. *)
end

(** Widening-aware forward solver: widens at the nodes flagged in
    [widen_at] (back-edge targets cover every cycle), refines the state
    per outgoing edge via [edge node succ_idx out] (branch conditions),
    then runs [narrow_passes] descending sweeps in reverse postorder.
    [widen_delay] (default 0) makes each widening point join instead of
    widen for its first visits, so transient states settling elsewhere
    in the CFG don't get widened into unrecoverable infinities;
    termination is preserved because the delay budget is finite.
    [iterations] counts node evaluations across both phases. *)
module Make_widening (L : WIDEN_LATTICE) : sig
  type result = { before : L.t array; after : L.t array; iterations : int }

  val solve :
    ?narrow_passes:int ->
    ?widen_delay:int ->
    Cfg.t ->
    widen_at:bool array ->
    init:L.t ->
    transfer:(Cfg.node -> L.t -> L.t) ->
    edge:(Cfg.node -> int -> L.t -> L.t) ->
    result
end

(** Ready-made integer-set lattice (variable ids, node ids, ...). *)
module Int_set : sig
  include Set.S with type elt = int and type t = Set.Make(Int).t

  val bottom : t
  val join : t -> t -> t
end

(** Powerset lattice over an ordered element type. *)
module Set_lattice (O : Set.OrderedType) : sig
  module S : Set.S with type elt = O.t

  type t = S.t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

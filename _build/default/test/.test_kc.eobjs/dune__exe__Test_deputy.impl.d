test/test_deputy.ml: Alcotest Deputy Int64 Kc List Printf QCheck2 QCheck_alcotest String Vm

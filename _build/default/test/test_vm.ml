(* Tests for the VM: memory, allocator, interpreter semantics, cost
   determinism, kernel builtins and trap behaviour. *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let boot ?config src = Vm.Builtins.boot ?config (parse src)

let run_main ?config ?(fn = "main") ?(args = []) src : int64 =
  let t = boot ?config src in
  Vm.Interp.run t fn args

let check_result name expected src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int64) name expected (run_main src))

let check_trap name kind src =
  Alcotest.test_case name `Quick (fun () ->
      match run_main src with
      | v -> Alcotest.failf "%s: expected %s trap, got result %Ld" name (Vm.Trap.kind_to_string kind) v
      | exception Vm.Trap.Trap (k, _) ->
          Alcotest.(check string) name (Vm.Trap.kind_to_string kind) (Vm.Trap.kind_to_string k))

(* Common extern declarations used by test programs. *)
let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void *memset(void *p, int c, unsigned long n);\n\
   void *memcpy(void *d, void *s, unsigned long n);\n\
   unsigned long strlen(char * __nullterm s);\n\
   void printk(char * __nullterm fmt, ...);\n\
   void panic(char * __nullterm msg);\n\
   void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   void local_irq_disable(void);\n\
   void local_irq_enable(void);\n\
   void schedule(void) __blocking;\n\
   void assert_not_atomic(void);\n\
   int in_interrupt(void);\n\
   void irq_enter(void);\n\
   void irq_exit(void);\n"

let p src = preamble ^ src

(* ------------------------------------------------------------------ *)
(* Core interpreter semantics                                         *)
(* ------------------------------------------------------------------ *)

let semantics_cases =
  [
    check_result "constant" 42L "int main(void) { return 42; }";
    check_result "arith" 7L "int main(void) { return 1 + 2 * 3; }";
    check_result "division truncates" (-2L) "int main(void) { return -5 / 2; }";
    check_result "mod sign" (-1L) "int main(void) { return -5 % 2; }";
    check_result "unsigned division" 1L
      "int main(void) { unsigned int x = -5; long r = x / 2; return r == 2147483645; }";
    check_result "char wraps" 1L "int main(void) { char c = 255; c = c + 2; return c; }";
    check_result "signed char sign extends" (-1L)
      "int main(void) { signed char c = 255; return c; }";
    check_result "shifts" 20L "int main(void) { int x = 5; return (x << 3) >> 1; }";
    check_result "comparison chain" 1L "int main(void) { return (3 < 5) == (10 > 2); }";
    check_result "short circuit skips" 1L
      "int g;\nint main(void) { int *p = 0; if (p != 0 && *p == 1) { return 0; } return 1; }";
    check_result "ternary" 10L "int main(void) { return 1 ? 10 : 20; }";
    check_result "while loop" 55L
      "int main(void) { int i = 1; int s = 0; while (i <= 10) { s += i; i++; } return s; }";
    check_result "for loop" 45L
      "int main(void) { int s = 0; int i; for (i = 0; i < 10; i++) { s += i; } return s; }";
    check_result "do while runs once" 1L
      "int main(void) { int n = 0; do { n++; } while (0); return n; }";
    check_result "nested break continue" 14L
      "int main(void) { int s = 0; int i; int j; for (i = 0; i < 4; i++) { if (i == 2) { continue; } for (j = 0; j < 10; j++) { if (j == 2) { break; } s += i + 1; } } return s; }";
    check_result "switch fallthrough" 6L
      "int main(void) { int r = 0; switch (2) { case 1: r += 1; case 2: r += 2; case 3: r += 4; break; case 4: r += 8; } return r; }";
    check_result "switch default" 9L
      "int main(void) { switch (77) { case 1: return 1; default: return 9; } }";
    check_result "recursion" 120L
      "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
       int main(void) { return fact(5); }";
    check_result "mutual recursion" 1L
      "int is_odd(int n);\n\
       int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n\
       int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }\n\
       int main(void) { return is_even(10); }";
    check_result "globals" 30L
      "int a = 10;\nint b;\nint main(void) { b = 20; return a + b; }";
    check_result "global array init" 6L
      "int xs[3] = { 1, 2, 3 };\nint main(void) { return xs[0] + xs[1] + xs[2]; }";
    check_result "local array" 10L
      "int main(void) { int a[4]; int i; int s = 0; for (i = 0; i < 4; i++) { a[i] = i + 1; } for (i = 0; i < 4; i++) { s += a[i]; } return s; }";
    check_result "struct on stack" 12L
      "struct pt { int x; int y; };\n\
       int main(void) { struct pt p; p.x = 5; p.y = 7; return p.x + p.y; }";
    check_result "struct assign copies" 5L
      "struct pt { int x; int y; };\n\
       int main(void) { struct pt a; struct pt b; a.x = 5; b = a; a.x = 9; return b.x; }";
    check_result "pointer to local" 99L
      "int main(void) { int x = 1; int *p = &x; *p = 99; return x; }";
    check_result "pointer arithmetic" 3L
      "int main(void) { int a[4]; a[2] = 3; int *p = a; return *(p + 2); }";
    check_result "pointer difference" 3L
      "int main(void) { long a[8]; long *p = a; long *q = p + 3; return q - p; }";
    check_result "function pointer call" 43L
      "int inc(int x) { return x + 1; }\n\
       int main(void) { int (*f)(int) = inc; return f(42); }";
    check_result "dispatch through struct" 21L
      "int h(int x) { return x * 3; }\n\
       struct ops { int (*op)(int); };\n\
       struct ops tbl = { h };\n\
       int main(void) { return tbl.op(7); }";
    check_result "string length via builtin" 5L (p "int main(void) { return strlen(\"hello\"); }");
    check_result "string chars" 104L (p "int main(void) { char *s = \"hi\"; return s[0]; }");
    check_result "sizeof struct" 16L
      "struct s { int a; long b; };\nint main(void) { return sizeof(struct s); }";
    check_result "linked list on heap" 6L
      (p
         "struct node { int v; struct node *next; };\n\
          int main(void) {\n\
          struct node *head = 0; int i;\n\
          for (i = 1; i <= 3; i++) {\n\
          struct node *n = kmalloc(sizeof(struct node), 0);\n\
          n->v = i; n->next = head; head = n;\n\
          }\n\
          int s = 0;\n\
          while (head != 0) { s += head->v; struct node *d = head; head = head->next; kfree(d); }\n\
          return s; }");
    check_result "memset and memcpy" 0L
      (p
         "int main(void) {\n\
          char *a = kmalloc(64, 0); char *b = kmalloc(64, 0); int i;\n\
          memset(a, 7, 64); memcpy(b, a, 64);\n\
          for (i = 0; i < 64; i++) { if (b[i] != 7) { return 1; } }\n\
          return 0; }");
    check_result "unsigned long compare" 1L
      "int main(void) { unsigned long big = -1; return big > 1000; }";
    check_result "continue inside switch body loop" 7L
      "int main(void) { int s = 0; int i; for (i = 0; i < 4; i++) { switch (i) { case 1: continue; case 2: s += 2; break; default: s += 1; } s += 1; } return s; }";
    check_result "break leaves switch not loop" 8L
      "int main(void) { int s = 0; int i; for (i = 0; i < 4; i++) { switch (i) { case 9: break; default: s += 1; break; } s += 1; } return s; }";
    check_result "signed int wraps at 32 bits" 1L
      "int main(void) { int x = 2147483647; x = x + 1; return x == (-2147483647 - 1); }";
    check_result "short truncation" 1L
      "int main(void) { short s = 65537; return s == 1; }";
    check_result "char comparison unsigned" 1L
      "int main(void) { char c = 200; return c > 100; }";
    check_result "shift by wide amounts masks" 2L
      "int main(void) { long one = 1; return one << 65; }";
    check_result "nested struct copy deep" 9L
      "struct in_ { int a; int b; };\nstruct out_ { struct in_ i1; struct in_ i2; };\n\
       int main(void) { struct out_ x; struct out_ y; x.i1.a = 4; x.i2.b = 5; y = x; x.i1.a = 0; x.i2.b = 0; return y.i1.a + y.i2.b; }";
    check_result "global struct init nested" 7L
      "struct pt2 { int x; int y; };\nstruct box { struct pt2 lo; struct pt2 hi; };\n\
       struct box b = { { 1, 2 }, { 3, 4 } };\n\
       int main(void) { return b.lo.x + b.lo.y + b.hi.y; }";
    check_result "function pointer equality" 1L
      "int f1(void) { return 1; }\nint f2(void) { return 2; }\n\
       int main(void) { int (*p)(void) = f1; int (*q)(void) = f1; int (*r)(void) = f2; return (p == q) && (p != r); }";
    check_result "null function pointer test" 5L
      "int main(void) { int (*p)(void) = 0; if (p == 0) { return 5; } return p(); }";
    check_result "address of array element" 30L
      "int main(void) { int a[4]; a[2] = 30; int *p = &a[2]; return *p; }";
    check_result "pointer into struct field" 11L
      "struct holder2 { int pad; int v; };\n\
       int main(void) { struct holder2 h; int *p = &h.v; *p = 11; return h.v; }";
    check_result "do-while with break" 1L
      "int main(void) { int n = 0; do { n++; if (n == 1) { break; } } while (n < 10); return n; }";
    check_result "ternary as lvalue source" 20L
      "int main(void) { int a = 10; int b = 20; int big = a > b ? a : b; return big; }";
    check_result "recursive sum via heap list" 10L
      (p
         "struct n2 { int v; struct n2 * __opt next; };\n\
          int lsum(struct n2 * __opt l) { if (l == 0) { return 0; } struct n2 *ll = l; return ll->v + lsum(ll->next); }\n\
          int main(void) { struct n2 *a = kmalloc(sizeof(struct n2), 0); struct n2 *b = kmalloc(sizeof(struct n2), 0); a->v = 3; a->next = b; b->v = 7; b->next = 0; int s = lsum(a); kfree(b); kfree(a); return s; }");
  ]

(* ------------------------------------------------------------------ *)
(* Traps                                                              *)
(* ------------------------------------------------------------------ *)

let trap_cases =
  [
    check_trap "null deref" Vm.Trap.Wild_access "int main(void) { int *p = 0; return *p; }";
    check_trap "wild pointer" Vm.Trap.Wild_access
      "int main(void) { int *p = (int *)3000000000; return *p; }";
    check_trap "use after free faults on unmapped" Vm.Trap.Wild_access
      (p
         "int main(void) { int *x = kmalloc(4, 0); kfree(x); return *x; }");
    check_trap "double free" Vm.Trap.Double_free
      (p "int main(void) { int *x = kmalloc(4, 0); kfree(x); kfree(x); return 0; }");
    check_trap "division by zero" Vm.Trap.Div_by_zero
      "int main(void) { int z = 0; return 5 / z; }";
    check_trap "panic" Vm.Trap.Panic (p "int main(void) { panic(\"boom\"); return 0; }");
    Alcotest.test_case "infinite loop exhausts fuel" `Quick (fun () ->
        let config = { Vm.Machine.default_config with Vm.Machine.fuel = 100_000 } in
        match run_main ~config "int main(void) { int x = 1; while (x) { } return 0; }" with
        | v -> Alcotest.failf "expected out-of-fuel, got %Ld" v
        | exception Vm.Trap.Trap (Vm.Trap.Out_of_fuel, _) -> ());
    check_trap "deep recursion overflows" Vm.Trap.Stack_overflow_trap
      "int f(int n) { return f(n + 1); }\nint main(void) { return f(0); }";
    check_trap "blocking with irqs off" Vm.Trap.Blocking_in_atomic
      (p "int main(void) { local_irq_disable(); schedule(); return 0; }");
    check_trap "blocking under spinlock" Vm.Trap.Blocking_in_atomic
      (p
         "long lk;\nint main(void) { spin_lock(&lk); schedule(); spin_unlock(&lk); return 0; }");
    check_trap "gfp_wait alloc under spinlock" Vm.Trap.Blocking_in_atomic
      (p "long lk;\nint main(void) { spin_lock(&lk); int *x = kmalloc(8, 1); return 0; }");
    check_trap "assert_not_atomic fires" Vm.Trap.Not_atomic_check
      (p "int main(void) { local_irq_disable(); assert_not_atomic(); return 0; }");
    check_trap "blocking in interrupt context" Vm.Trap.Blocking_in_atomic
      (p "int main(void) { irq_enter(); schedule(); irq_exit(); return 0; }");
  ]

let ok_atomic_cases =
  [
    check_result "gfp_atomic alloc under spinlock is fine" 0L
      (p
         "long lk;\nint main(void) { spin_lock(&lk); int *x = kmalloc(8, 0); spin_unlock(&lk); kfree(x); return 0; }");
    check_result "blocking after unlock is fine" 0L
      (p
         "long lk;\nint main(void) { spin_lock(&lk); spin_unlock(&lk); schedule(); return 0; }");
  ]

(* ------------------------------------------------------------------ *)
(* Memory subsystem                                                   *)
(* ------------------------------------------------------------------ *)

let test_mem_load_store () =
  let m = Vm.Mem.create () in
  Vm.Mem.set_valid m 5000 64 true;
  Vm.Mem.store m ~addr:5000 ~width:8 0x1122334455667788L;
  Alcotest.(check int64) "8-byte roundtrip" 0x1122334455667788L
    (Vm.Mem.load m ~addr:5000 ~width:8 ~signed:false);
  Alcotest.(check int64) "little endian low byte" 0x88L
    (Vm.Mem.load m ~addr:5000 ~width:1 ~signed:false);
  Alcotest.(check int64) "sign extension" (-120L) (Vm.Mem.load m ~addr:5000 ~width:1 ~signed:true);
  Vm.Mem.store m ~addr:5010 ~width:4 (-1L);
  Alcotest.(check int64) "unsigned 4-byte" 0xFFFFFFFFL
    (Vm.Mem.load m ~addr:5010 ~width:4 ~signed:false)

let test_mem_refcounts () =
  let m = Vm.Mem.create () in
  m.Vm.Mem.rc_enabled <- true;
  let target = Int64.of_int (Vm.Mem.heap_base + 32) in
  Vm.Mem.rc_inc m target;
  Vm.Mem.rc_inc m target;
  Alcotest.(check int) "rc is 2" 2 (Vm.Mem.rc_get m (Int64.to_int target));
  Vm.Mem.rc_dec m target;
  Alcotest.(check int) "rc is 1" 1 (Vm.Mem.rc_get m (Int64.to_int target));
  (* Counters wrap at 256, as in the paper's 8-bit design. *)
  for _ = 1 to 255 do
    Vm.Mem.rc_inc m target
  done;
  Alcotest.(check int) "rc wrapped" 0 (Vm.Mem.rc_get m (Int64.to_int target));
  (* Stack addresses are not refcounted. *)
  let stack_target = Int64.of_int (Vm.Mem.stack_base + 64) in
  Vm.Mem.rc_inc m stack_target;
  Alcotest.(check int) "stack not refcounted" 0 (Vm.Mem.rc_get m (Int64.to_int stack_target))

let test_alloc_reuse () =
  let m = Vm.Mem.create () in
  let a = Vm.Alloc.create m in
  let x = Vm.Alloc.alloc a ~size:32 ~zero:false in
  ignore (Vm.Alloc.free a x);
  let y = Vm.Alloc.alloc a ~size:32 ~zero:false in
  Alcotest.(check int) "free list reuses block" x y;
  let z = Vm.Alloc.alloc a ~size:32 ~zero:false in
  Alcotest.(check bool) "fresh block differs" true (z <> y)

let test_alloc_chunk_isolation () =
  let m = Vm.Mem.create () in
  let a = Vm.Alloc.create m in
  let x = Vm.Alloc.alloc a ~size:1 ~zero:false in
  let y = Vm.Alloc.alloc a ~size:1 ~zero:false in
  Alcotest.(check bool) "objects never share a 16-byte chunk" true (abs (y - x) >= 16)

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let cycles_of ?config src =
  let t = boot ?config src in
  ignore (Vm.Interp.run t "main" []);
  t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles

let test_cost_determinism () =
  let src = p "int main(void) { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }" in
  let c1 = cycles_of src and c2 = cycles_of src in
  Alcotest.(check int) "same cycles on re-run" c1 c2;
  Alcotest.(check bool) "nonzero cost" true (c1 > 0)

let test_cost_scales_with_work () =
  let mk n =
    Printf.sprintf
      "int main(void) { int i; int s = 0; for (i = 0; i < %d; i++) { s += i; } return s; }" n
  in
  let c100 = cycles_of (mk 100) and c1000 = cycles_of (mk 1000) in
  Alcotest.(check bool) "10x work costs roughly 10x" true
    (c1000 > 8 * c100 && c1000 < 12 * c100)

let test_smp_rc_cost_higher () =
  (* The same refcount traffic costs more with the SMP profile. *)
  let src =
    p
      "int *slot;\n\
       int main(void) { int i; slot = kmalloc(8, 0); for (i = 0; i < 1000; i++) { } kfree(slot); return 0; }"
  in
  ignore src;
  let up = Vm.Cost.rc_op_cost Vm.Cost.Up and smp = Vm.Cost.rc_op_cost Vm.Cost.Smp_p4 in
  Alcotest.(check bool) "smp locked rc much more expensive" true (smp >= 3 * up)

let test_console () =
  let t = boot (p "int main(void) { printk(\"x=%d s=%s\", 42, \"ok\"); return 0; }") in
  ignore (Vm.Interp.run t "main" []);
  Alcotest.(check (list string)) "printk output" [ "x=42 s=ok" ]
    (Vm.Machine.console_lines t.Vm.Interp.m)

let () =
  Alcotest.run "vm"
    [
      ("semantics", semantics_cases);
      ("traps", trap_cases);
      ("atomic-ok", ok_atomic_cases);
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_mem_load_store;
          Alcotest.test_case "refcounts" `Quick test_mem_refcounts;
          Alcotest.test_case "alloc reuse" `Quick test_alloc_reuse;
          Alcotest.test_case "chunk isolation" `Quick test_alloc_chunk_isolation;
        ] );
      ( "cost",
        [
          Alcotest.test_case "determinism" `Quick test_cost_determinism;
          Alcotest.test_case "scaling" `Quick test_cost_scales_with_work;
          Alcotest.test_case "smp rc cost" `Quick test_smp_rc_cost_higher;
          Alcotest.test_case "console" `Quick test_console;
        ] );
    ]

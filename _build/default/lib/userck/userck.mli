(** User/kernel pointer checking (paper §3.1's "further examples"):
    a [__user] pointer addresses user space — it must never be
    dereferenced directly (only copy_to_user / copy_from_user touch
    user memory), and user-ness must not be laundered across
    assignments, arguments or returns except inside [__trusted]
    regions (the syscall entry shim). *)

type kind =
  | Deref  (** direct dereference of a __user pointer *)
  | User_to_kernel  (** __user value into a kernel slot/argument *)
  | Kernel_to_user  (** kernel value into a __user slot/argument *)

type violation = { v_fn : string; v_loc : Kc.Loc.t; v_kind : kind; v_what : string }

type report = {
  violations : violation list;
  user_params : int;
  derefs_checked : int;
  flows_checked : int;
}

val is_user_ty : Kc.Ir.ty -> bool
val analyze : Kc.Ir.program -> report
val kind_to_string : kind -> string
val pp : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit

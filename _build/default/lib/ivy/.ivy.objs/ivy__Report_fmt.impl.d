lib/ivy/report_fmt.ml: Annotdb Blockstop Buffer Deputy Errcheck Experiment Kernel List Locksafe Printf Stackcheck String Userck Vm

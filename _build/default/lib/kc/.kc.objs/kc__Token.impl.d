lib/kc/token.ml: Int64 List Printf

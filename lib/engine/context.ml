(* The shared whole-program analysis context. See context.mli.

   Memoization discipline: every artifact getter first consults its
   cache table, and on a miss constructs the value inside [timed] so
   the per-artifact counters record exactly how many constructions the
   run paid for. The call graph deliberately requests the points-to
   result *outside* its own timed region, so "points-to built once"
   and "call graph built once" show up as separate stats lines. *)

module P = Blockstop.Pointsto
module CG = Blockstop.Callgraph
module BL = Blockstop.Blocking
module AT = Blockstop.Atomic

type counters = { mutable c_builds : int; mutable c_hits : int; mutable c_seconds : float }

(* The deputized view of the program: a shallow copy instrumented,
   Facts-optimized and absint-discharged, with both passes' stats. *)
type deputized = {
  dprog : Kc.Ir.program;
  dreport : Deputy.Dreport.report;
  dstats : Absint.Discharge.stats;
}

type t = {
  prog : Kc.Ir.program;
  jobs : int;
  pointsto_tbl : (P.mode, P.t) Hashtbl.t;
  callgraph_tbl : (P.mode, CG.t) Hashtbl.t;
  blocking_tbl : (P.mode, BL.t) Hashtbl.t;
  cfg_tbl : (string, Dataflow.Cfg.t) Hashtbl.t;
  mutable handlers : AT.SS.t option;
  mutable summaries_c : Absint.Transfer.summaries option;
  mutable deputized_c : deputized option;
  mutable vm_compiled_c : Vm.Compile.t option;
  counters_tbl : (string, counters) Hashtbl.t;
}

let create ?(jobs = 1) (prog : Kc.Ir.program) : t =
  {
    prog;
    jobs;
    pointsto_tbl = Hashtbl.create 4;
    callgraph_tbl = Hashtbl.create 4;
    blocking_tbl = Hashtbl.create 4;
    cfg_tbl = Hashtbl.create 64;
    handlers = None;
    summaries_c = None;
    deputized_c = None;
    vm_compiled_c = None;
    counters_tbl = Hashtbl.create 8;
  }

let program t = t.prog

let counters_for (t : t) (name : string) : counters =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_builds = 0; c_hits = 0; c_seconds = 0.0 } in
      Hashtbl.replace t.counters_tbl name c;
      c

let hit t name = (counters_for t name).c_hits <- (counters_for t name).c_hits + 1

let timed (t : t) (name : string) (build : unit -> 'a) : 'a =
  let c = counters_for t name in
  let t0 = Unix.gettimeofday () in
  let v = build () in
  c.c_builds <- c.c_builds + 1;
  c.c_seconds <- c.c_seconds +. (Unix.gettimeofday () -. t0);
  v

let memo (t : t) (name : string) tbl key (build : unit -> 'a) : 'a =
  match Hashtbl.find_opt tbl key with
  | Some v ->
      hit t name;
      v
  | None ->
      let v = timed t name build in
      Hashtbl.replace tbl key v;
      v

let mode_name = function P.Type_based -> "type-based" | P.Field_based -> "field-based"

let pointsto ?(mode = P.Type_based) (t : t) : P.t =
  memo t
    (Printf.sprintf "pointsto(%s)" (mode_name mode))
    t.pointsto_tbl mode
    (fun () -> P.build ~mode t.prog)

let callgraph ?(mode = P.Type_based) (t : t) : CG.t =
  let name = Printf.sprintf "callgraph(%s)" (mode_name mode) in
  match Hashtbl.find_opt t.callgraph_tbl mode with
  | Some cg ->
      hit t name;
      cg
  | None ->
      let pt = pointsto ~mode t in
      let cg = timed t name (fun () -> CG.build ~pointsto:pt t.prog) in
      Hashtbl.replace t.callgraph_tbl mode cg;
      cg

let blocking ?(mode = P.Type_based) (t : t) : BL.t =
  let name = Printf.sprintf "blocking(%s)" (mode_name mode) in
  match Hashtbl.find_opt t.blocking_tbl mode with
  | Some bl ->
      hit t name;
      bl
  | None ->
      let cg = callgraph ~mode t in
      let bl = timed t name (fun () -> BL.compute cg) in
      Hashtbl.replace t.blocking_tbl mode bl;
      bl

let cfg (t : t) (fname : string) : Dataflow.Cfg.t option =
  match Hashtbl.find_opt t.cfg_tbl fname with
  | Some c ->
      hit t "cfg";
      Some c
  | None -> (
      match Kc.Ir.find_fun t.prog fname with
      | Some fd when not fd.Kc.Ir.fextern ->
          let c = timed t "cfg" (fun () -> Dataflow.Cfg.build fd) in
          Hashtbl.replace t.cfg_tbl fname c;
          Some c
      | _ -> None)

(* Interprocedural interval summaries over the base (uninstrumented)
   program, sharing the memoized CFGs: instrumentation only adds
   checks and temporaries, so return-value summaries computed here
   stay valid for the deputized view. *)
let absint_summaries (t : t) : Absint.Transfer.summaries =
  match t.summaries_c with
  | Some s ->
      hit t "absint-summaries";
      s
  | None ->
      (* The CFG memo table and its counters are plain Hashtbls owned by
         this context's domain; before the summary stage fans out over a
         Par pool, populate the table serially so the workers' [cfg_of]
         only ever reads it. *)
      if t.jobs > 1 then
        List.iter
          (fun (fd : Kc.Ir.fundec) -> ignore (cfg t fd.Kc.Ir.fname))
          (List.filter (fun (fd : Kc.Ir.fundec) -> not fd.Kc.Ir.fextern) t.prog.Kc.Ir.funcs);
      let cfg_of (fd : Kc.Ir.fundec) =
        if t.jobs > 1 then
          match Hashtbl.find_opt t.cfg_tbl fd.Kc.Ir.fname with
          | Some c -> c
          | None -> Dataflow.Cfg.build fd
        else match cfg t fd.Kc.Ir.fname with Some c -> c | None -> Dataflow.Cfg.build fd
      in
      let s =
        timed t "absint-summaries" (fun () ->
            Absint.Summary.compute ~cfg_of ~jobs:t.jobs t.prog)
      in
      t.summaries_c <- Some s;
      s

(* The deputized view: instrument + Facts-optimize + absint-discharge
   a shallow copy, leaving the context's base program untouched. *)
let deputized (t : t) : deputized =
  match t.deputized_c with
  | Some d ->
      hit t "deputized(absint)";
      d
  | None ->
      let summaries = absint_summaries t in
      let d =
        timed t "deputized(absint)" (fun () ->
            let dprog = Kc.Ir.copy_program t.prog in
            let dreport = Deputy.Dreport.deputize dprog in
            let dstats = Absint.Discharge.run ~summaries dprog in
            { dprog; dreport; dstats })
      in
      t.deputized_c <- Some d;
      d

(* The VM's compiled form of the base program. Vm.Compile keeps its
   own per-program memo (so fuzz-case programs outside any context
   still share code); this artifact pins the result on the context and
   folds its construction into the stats lines. *)
let vm_compiled (t : t) : Vm.Compile.t =
  match t.vm_compiled_c with
  | Some c ->
      hit t "vm-compiled";
      c
  | None ->
      let c = timed t "vm-compiled" (fun () -> Vm.Compile.of_program t.prog) in
      t.vm_compiled_c <- Some c;
      c

let irq_handlers (t : t) : AT.SS.t =
  match t.handlers with
  | Some h ->
      hit t "irq-handlers";
      h
  | None ->
      let h = timed t "irq-handlers" (fun () -> AT.irq_handlers t.prog) in
      t.handlers <- Some h;
      h

type stat = { artifact : string; builds : int; hits : int; seconds : float }

let stats (t : t) : stat list =
  Hashtbl.fold
    (fun artifact c acc ->
      { artifact; builds = c.c_builds; hits = c.c_hits; seconds = c.c_seconds } :: acc)
    t.counters_tbl []
  |> List.sort (fun a b -> String.compare a.artifact b.artifact)

(* Contexts are never shared across domains — each Par worker creates
   its own and ships back its [stats] — so aggregation is a plain fold
   here on the merging side: sum per artifact, emit sorted by name.
   Build/hit counts are deterministic; seconds are wall-clock. *)
let merge_counters (per_worker : stat list list) : stat list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun stats ->
      List.iter
        (fun s ->
          let b, h, sec =
            Option.value (Hashtbl.find_opt tbl s.artifact) ~default:(0, 0, 0.0)
          in
          Hashtbl.replace tbl s.artifact (b + s.builds, h + s.hits, sec +. s.seconds))
        stats)
    per_worker;
  Hashtbl.fold
    (fun artifact (builds, hits, seconds) acc -> { artifact; builds; hits; seconds } :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.artifact b.artifact)

let pp_stats fmt (t : t) =
  Format.fprintf fmt "engine artifacts (builds / cache hits / build seconds):@.";
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-24s built %d  hits %d  %.4fs@." s.artifact s.builds s.hits s.seconds)
    (stats t)

lib/blockstop/callgraph.ml: Hashtbl Int64 Kc List Pointsto Set String

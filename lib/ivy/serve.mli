(** The [ivy serve] incremental analysis daemon: warm
    {!Engine.Context}s per program in an LRU, newline-delimited
    JSON-RPC over a Unix socket ([check] / [stats] / [invalidate] /
    [shutdown]), per-request stats deltas so clients can assert
    incrementality. See DESIGN.md §14 for the wire format. *)

type t

val create : ?capacity:int -> ?jobs:int -> unit -> t
(** [capacity] (default 8) bounds resident warm programs; [jobs]
    sizes each context's internal {!Par} fan-out. *)

val src_digest : (string * string) list -> string
(** Digest of raw [(path, source)] pairs: a resubmit with the same
    digest skips parsing entirely. *)

val handle_line : t -> string -> string * bool
(** One request line in, one response line out (no trailing newline);
    [true] means the request asked for shutdown. Exposed for tests —
    the socket loop is {!run}. *)

val handle_batch : t -> string list -> string list * bool
(** One poll round's worth of requests, in arrival order; parsing of
    programs the daemon cannot serve warm fans out over {!Par}. *)

val run : socket:string -> ?watch:string -> ?poll_ms:int -> ?log:(string -> unit) -> t -> unit
(** Bind [socket], serve until a [shutdown] request. With [watch], the
    directory's [.kc] files are re-checked (as program
    ["watch:<dir>"]) whenever their contents change, polled every
    [poll_ms] (default 500) milliseconds; summaries go to [log]. *)

val request : socket:string -> string -> string
(** Client side: send one request line, return the response line. *)

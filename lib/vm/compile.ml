(* The pre-compiled execution engine.

   A multi-phase compiler from IR functions to a flat, pre-resolved
   executable form:

   - phase A (lowering): structured control flow (loops, switch,
     delayed scopes) lowers to an array of mid-level basic blocks —
     lists of mid-level items (IR instructions plus pseudo-ops for
     fuel burns, scope enter/exit and return-value sets) with
     structured terminators that still carry their IR condition;
   - phase B (peephole + superinstructions, [IVY_VM_OPT], default on):
     unconditional-jump chains collapse, single-predecessor blocks
     merge, constants propagate through register slots, dead register
     moves drop to bare fuel burns, and adjacent hot opcode pairs —
     selected from the [IVY_VM_PROFILE] counter table, with a default
     table measured on the E2 workloads — fuse into superinstructions;
   - phase C (codegen): each item becomes one closure. Hot shapes get
     specialized closures: register/constant operands are fetched
     inline instead of through operand closures, compare+branch fuses
     into the terminator, load/binop/store collapse around register
     slots, and Deputy residue checks read classified operands.

   The contract is strict observational equivalence with {!Treewalk}:
   identical traps (kind and message), identical results, identical
   cycle counts and fuel burns, identical rodata interning order and
   stack addresses. Every cost-model charge and fuel burn below is
   placed exactly where the tree-walker places it; the differential
   suite (test/test_vm_compile.ml) holds the two engines to that.
   Register slots are charge-free in the cost model, which is what
   makes register const-prop, dead-move elimination and operand
   inlining observationally neutral.

   Compiled programs are cached per [I.program] (physical identity,
   weak — dead fuzz-case programs are collectable) and per function
   revalidated against [fbody] identity *and* the compile-options
   generation (profiling flag, optimizer flag), so instrumentation
   passes that rewrite bodies and runtime toggles of
   [set_profiling]/[set_opt] transparently invalidate stale code.
   While profiling is on, phases B and the codegen specializations are
   disabled so the counters reflect the raw opcode stream that guides
   fusion selection. *)

module I = Kc.Ir

(* The register file is a flat int64 bigarray rather than an
   [int64 array]: OCaml arrays hold int64s boxed, so every register
   write would allocate; bigarray reads and writes move the raw word.
   Register state is identical either way — this is representation
   only. *)
type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let[@inline] rget (r : regfile) i : int64 = Bigarray.Array1.unsafe_get r i
let[@inline] rset (r : regfile) i (v : int64) = Bigarray.Array1.unsafe_set r i v

let regfile_make n : regfile =
  let r = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (max 1 n) in
  Bigarray.Array1.fill r 0L;
  r

(* Per-activation execution environment. [m]/[cost]/[mem] are copies
   of the state's machine fields, hoisted out of the per-op field
   chains of the interpreter. *)
type env = {
  st : Vmstate.t;
  m : Machine.t;
  cost : Cost.t;
  mem : Mem.t;
  regs : regfile;
  base : int; (* stack frame base address *)
  mutable retv : int64;
}

type bblock = {
  bid : int;
  mutable instrs : (env -> unit) array;
  mutable term : env -> int; (* next block id; -1 = return *)
}

type cfun = {
  cf_body : I.block; (* identity stamp: recompile when fbody is swapped *)
  cf_gen : int; (* compile-options stamp: profiling/optimizer flags *)
  cf_nregs : int;
  cf_frame_bytes : int;
  cf_blocks : bblock array;
  cf_binders : (env -> int64 -> unit) array; (* formal binding, in order *)
  cf_ret_norm : int64 -> int64;
}

type t = {
  prog : I.program;
  by_fid : (int, int) Hashtbl.t; (* fid -> index; immutable after create *)
  cfuns : cfun option array; (* lazily compiled, revalidated by body identity *)
  globals : (int, int) Hashtbl.t; (* baked global layout; immutable *)
  mutable compiles : int; (* function compilations (observability) *)
}

(* ------------------------------------------------------------------ *)
(* Per-opcode execution profiling (IVY_VM_PROFILE=1).                 *)
(* ------------------------------------------------------------------ *)

(* The flag is consulted at compile time: when off (the default), the
   compiled closures carry no counting code at all. Counters live in
   per-domain tables ({!Vmcounters}) registered under a mutex and
   merged on read, so parallel fuzz/check runs cannot corrupt the
   table structure; a program compiled and run on one domain (the
   [Par] worker pattern) counts exactly. *)

let profiling_on = ref (Sys.getenv_opt "IVY_VM_PROFILE" = Some "1")
let prof_counters = Vmcounters.create ()
let counter name = Vmcounters.counter prof_counters name
let set_profiling b = profiling_on := b
let profiling () = !profiling_on
let reset_profile () = Vmcounters.reset prof_counters
let profile_table () = Vmcounters.table prof_counters
let render_profile () = Vmcounters.render ~title:"vm profile (opcode, executed):" prof_counters

(* Registered unconditionally, gated on the flag at exit time, so a
   profile enabled programmatically via [set_profiling] still prints
   (tests that toggle profiling off before exiting stay silent). *)
let () =
  at_exit (fun () ->
      if !profiling_on then begin
        let s = render_profile () in
        if s <> "" then (output_string stderr s; flush stderr)
      end)

let prof name (f : env -> unit) : env -> unit =
  if !profiling_on then begin
    let c = counter name in
    fun env ->
      incr c;
      f env
  end
  else f

let prof_term name (f : env -> int) : env -> int =
  if !profiling_on then begin
    let c = counter name in
    fun env ->
      incr c;
      f env
  end
  else f

(* ------------------------------------------------------------------ *)
(* The optimizer switch and its compile-time hit counters.            *)
(* ------------------------------------------------------------------ *)

(* [IVY_VM_OPT=0] (or [set_opt false]) disables phase B and the
   codegen specializations, leaving the PR 5 one-closure-per-opcode
   pipeline — the ablation arm of the vm-super benchmark. The stats
   table counts compile-time sites: how many superinstructions were
   formed per fused pair, and how many peephole rewrites fired. *)

let opt_on = ref (Sys.getenv_opt "IVY_VM_OPT" <> Some "0")
let opt_counters = Vmcounters.create ()
let set_opt b = opt_on := b
let opt_enabled () = !opt_on
let opt_stats () = Vmcounters.table opt_counters

let render_opt_stats () =
  Vmcounters.render ~title:"vm optimizer (fusion + peephole sites):" opt_counters

let reset_opt_stats () = Vmcounters.reset opt_counters
let ostat name = Vmcounters.bump opt_counters name
let ostat_n name n = if n > 0 then Vmcounters.add opt_counters name n

(* Inlined machine-state updates for the specialized closures. Same
   state transitions as Machine.burn_fuel and the Cost hooks — the
   cost constants come from Cost so the model stays in one place —
   but with the cold trap arm out of line, the hot path inlines into
   each superinstruction instead of paying a cross-module call per
   charge. The generic (opt-off) pipeline keeps calling the Machine
   and Cost entry points: that arm is the PR 5 baseline. *)
let fuel_exhausted () = Trap.trap Trap.Out_of_fuel "interpreter fuel exhausted"

let[@inline] burn (env : env) =
  let m = env.m in
  let f = m.Machine.fuel_left - 1 in
  m.Machine.fuel_left <- f;
  if f <= 0 then fuel_exhausted ()

let[@inline] c_alu (env : env) =
  let c = env.cost in
  c.Cost.cycles <- c.Cost.cycles + Cost.alu

let[@inline] c_branch (env : env) =
  let c = env.cost in
  c.Cost.cycles <- c.Cost.cycles + Cost.branch

let[@inline] c_load (env : env) =
  let c = env.cost in
  c.Cost.loads <- c.Cost.loads + 1;
  c.Cost.cycles <- c.Cost.cycles + Cost.load_cost

let[@inline] c_store (env : env) =
  let c = env.cost in
  c.Cost.stores <- c.Cost.stores + 1;
  c.Cost.cycles <- c.Cost.cycles + Cost.store_cost

let[@inline] c_check (env : env) =
  let c = env.cost in
  c.Cost.checks_executed <- c.Cost.checks_executed + 1;
  c.Cost.cycles <- c.Cost.cycles + Cost.check_cost

(* The compile-options generation baked into each cfun: toggling
   either flag retires code compiled under the old options. Fusion is
   suppressed while profiling so the counters see raw opcodes. *)
let current_gen () = (if !profiling_on then 1 else 0) lor (if !opt_on then 2 else 0)
let gen_opt_active gen = gen land 2 <> 0 && gen land 1 = 0

(* ------------------------------------------------------------------ *)
(* Compile-time helpers.                                              *)
(* ------------------------------------------------------------------ *)

(* Width/sign normalization as a closure; [None] = identity. *)
let normf_opt (ty : I.ty) : (int64 -> int64) option =
  match ty with
  | I.Tint (k, s) ->
      let w = Kc.Layout.int_size k in
      if w = 8 then None
      else
        let shift = 64 - (8 * w) in
        if s = Kc.Ast.Signed then
          Some (fun v -> Int64.shift_right (Int64.shift_left v shift) shift)
        else Some (fun v -> Int64.shift_right_logical (Int64.shift_left v shift) shift)
  | _ -> None

let identity (v : int64) = v
let normf ty = match normf_opt ty with Some f -> f | None -> identity

(* The same normalization as a first-class shape, cheap enough to
   inline into specialized closures (no closure call per write). *)
type nspec = Nid | Nsx of int | Nzx of int

let nspec_of (ty : I.ty) : nspec =
  match ty with
  | I.Tint (k, s) ->
      let w = Kc.Layout.int_size k in
      if w = 8 then Nid
      else
        let sh = 64 - (8 * w) in
        if s = Kc.Ast.Signed then Nsx sh else Nzx sh
  | _ -> Nid

let[@inline] napply (ns : nspec) (v : int64) : int64 =
  match ns with
  | Nid -> v
  | Nsx sh -> Int64.shift_right (Int64.shift_left v sh) sh
  | Nzx sh -> Int64.shift_right_logical (Int64.shift_left v sh) sh

type cslot = Sreg of int | Sstk of int (* frame offset *)

(* Addresses fold constants: a global base plus field offsets compiles
   to a single immediate, a stack slot to a frame-base displacement
   ([Abase]), and scaled pointer indexing to a register-pair or
   register-plus-displacement form ([Ari]/[Arc]) — all kept symbolic
   so fused closures can resolve them inline. The [Ari]/[Arc] forms
   carry the indexing ALU charge with them; resolving one charges
   exactly the one ALU cycle the tree-walker charges for the add. *)
type caddr =
  | Aconst of int
  | Abase of int (* env.base + offset *)
  | Ari of int * int * int (* regs.(p) + regs.(i) * scale, one ALU *)
  | Arc of int * int (* regs.(p) + displacement, one ALU *)
  | Adyn of (env -> int)

(* [Ari]/[Arc] resolve in native-int arithmetic: addresses are native
   ints anyway, and truncation to 63 bits commutes with add and
   multiply, so the result matches the Int64 computation the generic
   closures perform — without boxing an Int64 per step. *)
let force = function
  | Aconst n -> fun _ -> n
  | Abase o -> fun env -> env.base + o
  | Ari (p, i, k) ->
      fun env ->
        let a = Int64.to_int (rget env.regs p) in
        let b = Int64.to_int (rget env.regs i) in
        c_alu env;
        a + (b * k)
  | Arc (p, d) ->
      fun env ->
        let a = Int64.to_int (rget env.regs p) in
        c_alu env;
        a + d
  | Adyn f -> f

let add_const a k =
  if k = 0 then a
  else
    match a with
    | Aconst n -> Aconst (n + k)
    | Abase o -> Abase (o + k)
    | Arc (p, d) -> Arc (p, d + k)
    | Ari _ as a ->
        let f = force a in
        Adyn (fun env -> f env + k)
    | Adyn f -> Adyn (fun env -> f env + k)

(* A resolved lvalue: a register slot (with its type, for write
   normalization) or an address computation with the value type. *)
type cplace = CPreg of int * I.ty | CPmem of caddr * I.ty

(* A classified operand: constant, register slot, or a compiled
   closure. Constants and register reads are charge-free in the cost
   model, so fetching them inline is observationally neutral. *)
type operand = Oc of int64 | Oreg of int | Odyn of (env -> int64)

type fctx = {
  cc : t;
  slots : (int, cslot) Hashtbl.t;
  fopt : bool; (* codegen specializations active for this compile *)
}

(* Comparison kinds, evaluated by direct call on already-boxed values
   (no allocation). Semantics mirror the generic cbinop arm exactly. *)
type cmpk = Clts | Cltu | Cgts | Cgtu | Cles | Cleu | Cges | Cgeu | Ceq | Cne

let[@inline] cmp_eval (k : cmpk) (x : int64) (y : int64) : bool =
  match k with
  | Clts -> x < y
  | Cltu -> Int64.unsigned_compare x y < 0
  | Cgts -> x > y
  | Cgtu -> Int64.unsigned_compare x y > 0
  | Cles -> x <= y
  | Cleu -> Int64.unsigned_compare x y <= 0
  | Cges -> x >= y
  | Cgeu -> Int64.unsigned_compare x y >= 0
  | Ceq -> x = y
  | Cne -> x <> y

let cmpk_of (op : Kc.Ast.binop) ~signed : cmpk option =
  match op with
  | Kc.Ast.Lt -> Some (if signed then Clts else Cltu)
  | Kc.Ast.Gt -> Some (if signed then Cgts else Cgtu)
  | Kc.Ast.Le -> Some (if signed then Cles else Cleu)
  | Kc.Ast.Ge -> Some (if signed then Cges else Cgeu)
  | Kc.Ast.Eq -> Some Ceq
  | Kc.Ast.Ne -> Some Cne
  | _ -> None

(* Non-pointer ALU ops as tags, mirroring the generic cbinop arm:
   same trap messages, same shift masking, same signedness choice. *)
type aluk =
  | Kadd
  | Ksub
  | Kmul
  | Kdivs
  | Kdivu
  | Kmods
  | Kmodu
  | Kshl
  | Kshrs
  | Kshru
  | Kand
  | Kor
  | Kxor
  | Kcmp of cmpk
  | Kland
  | Klor

let[@inline] alu_eval (k : aluk) (x : int64) (y : int64) : int64 =
  let open Int64 in
  match k with
  | Kadd -> add x y
  | Ksub -> sub x y
  | Kmul -> mul x y
  | Kdivs ->
      if y = 0L then Trap.trap Trap.Div_by_zero "division by zero";
      div x y
  | Kdivu ->
      if y = 0L then Trap.trap Trap.Div_by_zero "division by zero";
      unsigned_div x y
  | Kmods ->
      if y = 0L then Trap.trap Trap.Div_by_zero "mod by zero";
      rem x y
  | Kmodu ->
      if y = 0L then Trap.trap Trap.Div_by_zero "mod by zero";
      unsigned_rem x y
  | Kshl -> shift_left x (to_int (logand y 63L))
  | Kshrs -> shift_right x (to_int (logand y 63L))
  | Kshru -> shift_right_logical x (to_int (logand y 63L))
  | Kand -> logand x y
  | Kor -> logor x y
  | Kxor -> logxor x y
  | Kcmp c -> if cmp_eval c x y then 1L else 0L
  | Kland -> if x <> 0L && y <> 0L then 1L else 0L
  | Klor -> if x <> 0L || y <> 0L then 1L else 0L

let aluk_of (op : Kc.Ast.binop) ~signed : aluk =
  match op with
  | Kc.Ast.Add -> Kadd
  | Kc.Ast.Sub -> Ksub
  | Kc.Ast.Mul -> Kmul
  | Kc.Ast.Div -> if signed then Kdivs else Kdivu
  | Kc.Ast.Mod -> if signed then Kmods else Kmodu
  | Kc.Ast.Shl -> Kshl
  | Kc.Ast.Shr -> if signed then Kshrs else Kshru
  | Kc.Ast.Bitand -> Kand
  | Kc.Ast.Bitor -> Kor
  | Kc.Ast.Bitxor -> Kxor
  | Kc.Ast.Lt -> Kcmp (if signed then Clts else Cltu)
  | Kc.Ast.Gt -> Kcmp (if signed then Cgts else Cgtu)
  | Kc.Ast.Le -> Kcmp (if signed then Cles else Cleu)
  | Kc.Ast.Ge -> Kcmp (if signed then Cges else Cgeu)
  | Kc.Ast.Eq -> Kcmp Ceq
  | Kc.Ast.Ne -> Kcmp Cne
  | Kc.Ast.Logand -> Kland
  | Kc.Ast.Logor -> Klor

let alu_can_trap = function Kdivs | Kdivu | Kmods | Kmodu -> true | _ -> false
let alu_is_bool = function Kcmp _ | Kland | Klor -> true | _ -> false

let arr_mem (v : int64) (a : int64 array) =
  let n = Array.length a in
  let rec go i = i < n && (Array.unsafe_get a i = v || go (i + 1)) in
  go 0

(* Compile-time type of an lvalue, mirroring Treewalk.lval_type. *)
let lval_type_c ((host, offs) : I.lval) : I.ty =
  let base =
    match host with
    | I.Lvar v -> v.I.vty
    | I.Lmem e -> (
        match e.I.ety with
        | I.Tptr (ty, _) -> ty
        | _ -> Trap.trap Trap.Panic "deref of non-pointer in lval")
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | I.Ofield f, _ -> f.I.fty
      | I.Oindex _, I.Tarray (elt, _) -> elt
      | I.Oindex _, _ -> Trap.trap Trap.Panic "index of non-array in lval")
    base offs

(* ------------------------------------------------------------------ *)
(* Phase A: the mid-level representation and structured lowering.     *)
(* ------------------------------------------------------------------ *)

(* Mid-level items keep the IR instruction (so the peephole can still
   pattern-match and rewrite expressions) plus the pseudo-ops the
   lowering introduces. [Mdeadmove] is an eliminated register move:
   the write is gone but the instruction's fuel burn remains.
   [Mfused] is a superinstruction: a run of instructions compiled into
   one composed closure. *)
type mi =
  | Mi of I.instr
  | Mfuel
  | Mscope_enter
  | Mscope_exit of string
  | Mretval of I.exp option
  | Mdeadmove
  | Mfused of I.instr list * string

(* Terminators stay structured through phase B so conditions can be
   rewritten and fused; block targets are ids, -1 = return. *)
type mterm =
  | Munset
  | Mgoto of int
  | Mret
  | Mif of I.exp * int * int
  | Mwhile of I.exp * int * int (* cond nonzero -> body, else exit *)
  | Mdowhile of I.exp * int * int (* cond nonzero -> head, else exit *)
  | Mswitch of I.exp * (int64 array * int) array * int

type mblock = { mutable mid : int; mutable mis : mi list; mutable mt : mterm }

type lowerer = {
  mutable lblocks : mblock list; (* reversed *)
  mutable lnb : int;
  mutable lcur : mblock;
  mutable lacc : mi list; (* reversed items of [lcur] *)
}

let new_mb lo =
  let b = { mid = lo.lnb; mis = []; mt = Munset } in
  lo.lnb <- lo.lnb + 1;
  lo.lblocks <- b :: lo.lblocks;
  b

let emitm lo i = lo.lacc <- i :: lo.lacc

let sealm lo t =
  lo.lcur.mis <- List.rev lo.lacc;
  lo.lcur.mt <- t;
  lo.lacc <- []

let startm lo b =
  lo.lcur <- b;
  lo.lacc <- []

(* Lexical lowering context: break/continue targets carry the
   delayed-scope depth at the construct's entry so jumps crossing
   scope boundaries emit the pending exits; [scopes] holds the exit
   locations, innermost first — the order the tree-walker unwinds. *)
type lenv = {
  brk : (int * int) option; (* (target bid, scope depth at entry) *)
  cont : (int * int) option;
  scopes : string list;
}

let emit_mexits lo (lenv : lenv) (upto_depth : int) =
  let n = List.length lenv.scopes - upto_depth in
  let rec go i = function
    | w :: rest when i < n ->
        emitm lo (Mscope_exit w);
        go (i + 1) rest
    | _ -> ()
  in
  go 0 lenv.scopes

let rec lower_block lo (lenv : lenv) (b : I.block) : unit = List.iter (lower_stmt lo lenv) b

and lower_stmt lo (lenv : lenv) (s : I.stmt) : unit =
  match s.I.sk with
  | I.Sinstr i -> emitm lo (Mi i)
  | I.Sif (c, b1, b2) ->
      let bt = new_mb lo in
      let bf = new_mb lo in
      let join = new_mb lo in
      sealm lo (Mif (c, bt.mid, bf.mid));
      startm lo bt;
      lower_block lo lenv b1;
      sealm lo (Mgoto join.mid);
      startm lo bf;
      lower_block lo lenv b2;
      sealm lo (Mgoto join.mid);
      startm lo join
  | I.Swhile (c, body, step) ->
      let head = new_mb lo in
      let bbody = new_mb lo in
      let bstep = new_mb lo in
      let bexit = new_mb lo in
      sealm lo (Mgoto head.mid);
      start_while lo lenv c head bbody bstep bexit body step
  | I.Sdowhile (body, c) ->
      let head = new_mb lo in
      let bcond = new_mb lo in
      let bexit = new_mb lo in
      sealm lo (Mgoto head.mid);
      startm lo head;
      emitm lo Mfuel;
      let d = List.length lenv.scopes in
      lower_block lo { lenv with brk = Some (bexit.mid, d); cont = Some (bcond.mid, d) } body;
      sealm lo (Mgoto bcond.mid);
      startm lo bcond;
      sealm lo (Mdowhile (c, head.mid, bexit.mid));
      startm lo bexit
  | I.Sswitch (e, cases) ->
      let join = new_mb lo in
      let cblocks = List.map (fun _ -> new_mb lo) cases in
      let tbl =
        Array.of_list
          (List.map2
             (fun (c : I.case) (b : mblock) -> (Array.of_list c.I.cvals, b.mid))
             cases cblocks)
      in
      let default =
        let rec find_default cs bs =
          match (cs, bs) with
          | (c : I.case) :: cs', (b : mblock) :: bs' ->
              if c.I.cdefault then b.mid else find_default cs' bs'
          | _ -> join.mid
        in
        find_default cases cblocks
      in
      sealm lo (Mswitch (e, tbl, default));
      let d = List.length lenv.scopes in
      let rec lower_cases cs bs =
        match (cs, bs) with
        | (c : I.case) :: cs', (b : mblock) :: bs' ->
            startm lo b;
            lower_block lo { lenv with brk = Some (join.mid, d) } c.I.cbody;
            (* C fallthrough into the next case's body. *)
            let next = match bs' with nb :: _ -> nb | [] -> join in
            sealm lo (Mgoto next.mid);
            lower_cases cs' bs'
        | _ -> ()
      in
      lower_cases cases cblocks;
      startm lo join
  | I.Sbreak -> (
      match lenv.brk with
      | Some (target, d) ->
          emit_mexits lo lenv d;
          sealm lo (Mgoto target);
          startm lo (new_mb lo) (* dead code after the jump *)
      | None ->
          (* A top-level break leaves the function with result 0, as
             the signal propagating out of exec_block does. *)
          emit_mexits lo lenv 0;
          emitm lo (Mretval None);
          sealm lo Mret;
          startm lo (new_mb lo))
  | I.Scontinue -> (
      match lenv.cont with
      | Some (target, d) ->
          emit_mexits lo lenv d;
          sealm lo (Mgoto target);
          startm lo (new_mb lo)
      | None ->
          emit_mexits lo lenv 0;
          emitm lo (Mretval None);
          sealm lo Mret;
          startm lo (new_mb lo))
  | I.Sreturn eo ->
      (* Evaluate the result first, then unwind delayed scopes — the
         order the tree-walker's `Return signal propagation gives. *)
      emitm lo (Mretval eo);
      emit_mexits lo lenv 0;
      sealm lo Mret;
      startm lo (new_mb lo)
  | I.Sblock b -> lower_block lo lenv b
  | I.Sdelayed b ->
      let where = Kc.Loc.to_string s.I.sloc in
      emitm lo Mscope_enter;
      lower_block lo { lenv with scopes = where :: lenv.scopes } b;
      emitm lo (Mscope_exit where)
  | I.Strusted b -> lower_block lo lenv b

and start_while lo lenv c head bbody bstep bexit body step =
  startm lo head;
  (* One loop iteration: fuel burn, branch charge, condition — in the
     tree-walker's order; the head block itself stays empty. *)
  sealm lo (Mwhile (c, bbody.mid, bexit.mid));
  let d = List.length lenv.scopes in
  startm lo bbody;
  lower_block lo { lenv with brk = Some (bexit.mid, d); cont = Some (bstep.mid, d) } body;
  sealm lo (Mgoto bstep.mid);
  startm lo bstep;
  lower_block lo { lenv with brk = Some (bexit.mid, d); cont = Some (head.mid, d) } step;
  sealm lo (Mgoto head.mid);
  startm lo bexit

(* ------------------------------------------------------------------ *)
(* Phase B: peephole passes over the mid-level CFG.                   *)
(* ------------------------------------------------------------------ *)

let term_map f (t : mterm) : mterm =
  match t with
  | Munset | Mret -> t
  | Mgoto x -> Mgoto (f x)
  | Mif (c, a, b) -> Mif (c, f a, f b)
  | Mwhile (c, a, b) -> Mwhile (c, f a, f b)
  | Mdowhile (c, a, b) -> Mdowhile (c, f a, f b)
  | Mswitch (c, tbl, d) -> Mswitch (c, Array.map (fun (vs, b) -> (vs, f b)) tbl, f d)

let term_targets (t : mterm) : int list =
  match t with
  | Munset | Mret -> []
  | Mgoto x -> [ x ]
  | Mif (_, a, b) | Mwhile (_, a, b) | Mdowhile (_, a, b) -> [ a; b ]
  | Mswitch (_, tbl, d) -> d :: Array.fold_left (fun acc (_, b) -> b :: acc) [] tbl

(* Collapse chains of empty unconditional blocks: a jump to an empty
   [Mgoto] block retargets to where it goes; a jump to an empty [Mret]
   block returns directly. Loop heads carry structured terminators and
   are never threaded through; the hop cap bounds pathological chains. *)
let peep_thread (bs : mblock array) : int =
  let changed = ref 0 in
  let rec resolve hops i =
    if i < 0 || hops > 64 then i
    else
      let b = Array.unsafe_get bs i in
      match (b.mis, b.mt) with
      | [], Mgoto t when t <> i -> resolve (hops + 1) t
      | [], Mret -> -1
      | _ -> i
  in
  Array.iter
    (fun b ->
      b.mt <-
        term_map
          (fun x ->
            let r = resolve 0 x in
            if r <> x then incr changed;
            r)
          b.mt)
    bs;
  !changed

(* Absorb single-predecessor blocks into their unique unconditional
   predecessor, turning Sif joins and loop step blocks into straight
   lines the later passes see whole. *)
let peep_merge (bs : mblock array) : int =
  let n = Array.length bs in
  let merged = ref 0 in
  let again = ref true in
  while !again do
    again := false;
    let preds = Array.make (max n 1) 0 in
    if n > 0 then preds.(0) <- 1 (* virtual entry edge *);
    Array.iter
      (fun b -> List.iter (fun t -> if t >= 0 then preds.(t) <- preds.(t) + 1) (term_targets b.mt))
      bs;
    Array.iteri
      (fun ai a ->
        match a.mt with
        | Mgoto b when b >= 0 && b <> ai && preds.(b) = 1 ->
            let bb = bs.(b) in
            a.mis <- a.mis @ bb.mis;
            a.mt <- bb.mt;
            bb.mis <- [];
            bb.mt <- Mret;
            incr merged;
            again := true
        | _ -> ())
      bs;
  done;
  !merged

(* Copy an empty successor's structured terminator over an
   unconditional jump. [Mgoto] is charge-free, so running the target's
   compare-and-branch directly is observationally identical — and it
   saves a closure call plus a block transition on the canonical
   while-loop back edge, which the E2 workloads take millions of
   times. The emptied loop head often loses its last predecessor and
   is swept by [peep_compact]. *)
let peep_termcopy (bs : mblock array) : int =
  let changed = ref 0 in
  Array.iteri
    (fun i b ->
      match b.mt with
      | Mgoto t when t >= 0 && t <> i -> (
          let tb = Array.unsafe_get bs t in
          match (tb.mis, tb.mt) with
          | [], (Mwhile _ | Mdowhile _ | Mif _) ->
              b.mt <- tb.mt;
              incr changed
          | _ -> ())
      | _ -> ())
    bs;
  !changed

(* Drop unreachable blocks and renumber densely, preserving the
   original relative order. *)
let peep_compact (bs : mblock array) : mblock array =
  let n = Array.length bs in
  let reach = Array.make (max n 1) false in
  let rec dfs i =
    if i >= 0 && not reach.(i) then begin
      reach.(i) <- true;
      List.iter dfs (term_targets bs.(i).mt)
    end
  in
  if n > 0 then dfs 0;
  let remap = Array.make (max n 1) (-1) in
  let kept = ref [] in
  let nk = ref 0 in
  Array.iteri
    (fun i b ->
      if reach.(i) then begin
        remap.(i) <- !nk;
        incr nk;
        kept := b :: !kept
      end)
    bs;
  let arr = Array.of_list (List.rev !kept) in
  Array.iteri
    (fun i b ->
      b.mid <- i;
      b.mt <- term_map (fun t -> if t < 0 then t else remap.(t)) b.mt)
    arr;
  arr

let reg_of_lval (slots : (int, cslot) Hashtbl.t) ((host, offs) : I.lval) : (int * I.ty) option =
  match (host, offs) with
  | I.Lvar v, [] when not v.I.vglob -> (
      match Hashtbl.find_opt slots v.I.vid with
      | Some (Sreg i) -> Some (i, v.I.vty)
      | _ -> None)
  | _ -> None

(* Compile-time evaluation of an expression whose leaves are all
   constants. Purely a value oracle for register tracking — the
   instruction still executes (and charges) at runtime; we only need
   to know what lands in the register. Pointer-typed operands and
   trapping cases answer None. Mirrors the generic cbinop arm. *)
let rec sval (e : I.exp) : int64 option =
  match e.I.e with
  | I.Econst n -> Some n
  | I.Ecast (ty, e1) -> Option.map (normf ty) (sval e1)
  | I.Eunop (op, e1) -> (
      match sval e1 with
      | None -> None
      | Some v -> (
          match op with
          | Kc.Ast.Neg -> Some (normf e.I.ety (Int64.neg v))
          | Kc.Ast.Bitnot -> Some (normf e.I.ety (Int64.lognot v))
          | Kc.Ast.Lognot -> Some (if v = 0L then 1L else 0L)))
  | I.Ebinop (op, a, b) -> (
      match (a.I.ety, b.I.ety) with
      | I.Tptr _, _ | _, I.Tptr _ -> None
      | _ -> (
          match (sval a, sval b) with
          | Some x, Some y ->
              let k = aluk_of op ~signed:(Vmstate.is_signed a.I.ety) in
              if alu_can_trap k && y = 0L then None
              else
                let v = alu_eval k x y in
                Some (if alu_is_bool k then v else normf e.I.ety v)
          | _ -> None))
  | _ -> None

(* Per-block constant propagation through register slots. Register
   reads are charge-free and trap-free, so replacing one with the
   constant it is known to hold changes nothing observable; it feeds
   the operand classifier downstream. Facts live within one block:
   every entry into the block replays its writes, so end-of-block
   terminator conditions may use them too. *)
let peep_constprop ~slots ~nregs (b : mblock) : int =
  let hits = ref 0 in
  let vals : int64 option array = Array.make (max nregs 1) None in
  let rec subst_exp (e : I.exp) : I.exp =
    match e.I.e with
    | I.Econst _ | I.Estr _ | I.Efun _ | I.Eself_field _ -> e
    | I.Elval lv -> (
        match reg_of_lval slots lv with
        | Some (i, _) -> (
            match vals.(i) with
            | Some v ->
                incr hits;
                { e with I.e = I.Econst v }
            | None -> e)
        | None -> { e with I.e = I.Elval (subst_lval lv) })
    | I.Eunop (op, e1) -> { e with I.e = I.Eunop (op, subst_exp e1) }
    | I.Ebinop (op, a, b2) -> { e with I.e = I.Ebinop (op, subst_exp a, subst_exp b2) }
    | I.Econd (c, a, b2) -> { e with I.e = I.Econd (subst_exp c, subst_exp a, subst_exp b2) }
    | I.Ecast (ty, e1) -> { e with I.e = I.Ecast (ty, subst_exp e1) }
    | I.Eaddrof lv -> { e with I.e = I.Eaddrof (subst_lval lv) }
    | I.Estartof lv -> { e with I.e = I.Estartof (subst_lval lv) }
  and subst_lval ((host, offs) : I.lval) : I.lval =
    let host' = match host with I.Lvar _ -> host | I.Lmem e -> I.Lmem (subst_exp e) in
    let offs' =
      List.map (function I.Ofield _ as o -> o | I.Oindex e -> I.Oindex (subst_exp e)) offs
    in
    (host', offs')
  in
  let subst_instr (i : I.instr) : I.instr =
    match i with
    | I.Iset (lv, e) -> I.Iset (subst_lval lv, subst_exp e)
    | I.Icall (ret, tgt, args) ->
        let ret' = Option.map subst_lval ret in
        let tgt' =
          match tgt with I.Direct _ -> tgt | I.Indirect e -> I.Indirect (subst_exp e)
        in
        I.Icall (ret', tgt', List.map subst_exp args)
    | I.Icheck (ck, reason) ->
        let ck' =
          match ck with
          | I.Ck_nonnull e -> I.Ck_nonnull (subst_exp e)
          | I.Ck_le (a, b2) -> I.Ck_le (subst_exp a, subst_exp b2)
          | I.Ck_lt (a, b2) -> I.Ck_lt (subst_exp a, subst_exp b2)
          | I.Ck_nt_next (e, w) -> I.Ck_nt_next (subst_exp e, w)
          | I.Ck_not_atomic -> ck
        in
        I.Icheck (ck', reason)
    | I.Irc_inc e -> I.Irc_inc (subst_exp e)
    | I.Irc_dec e -> I.Irc_dec (subst_exp e)
    | I.Irc_update (lv, e) -> I.Irc_update (subst_lval lv, subst_exp e)
  in
  let step (item : mi) : mi =
    match item with
    | Mi i ->
        let i' = subst_instr i in
        (match i' with
        | I.Iset (lv, e) -> (
            match reg_of_lval slots lv with
            | Some (r, vty) -> vals.(r) <- Option.map (normf vty) (sval e)
            | None -> ())
        | I.Icall (Some lv, _, _) -> (
            match reg_of_lval slots lv with
            | Some (r, _) -> vals.(r) <- None
            | None -> ())
        | _ -> ());
        Mi i'
    | Mretval (Some e) -> Mretval (Some (subst_exp e))
    | other -> other
  in
  (* List.map's evaluation order is unspecified; [step] is stateful. *)
  b.mis <- List.rev (List.fold_left (fun acc it -> step it :: acc) [] b.mis);
  (b.mt <-
     (match b.mt with
     | Mif (c, x, y) -> Mif (subst_exp c, x, y)
     | Mwhile (c, x, y) -> Mwhile (subst_exp c, x, y)
     | Mdowhile (c, x, y) -> Mdowhile (subst_exp c, x, y)
     | Mswitch (c, tbl, d) -> Mswitch (subst_exp c, tbl, d)
     | t -> t));
  !hits

(* A register move is removable when a later instruction in the same
   block overwrites the register with no intervening read: the
   overwrite dominates every later use, and the move's right-hand side
   must be charge- and trap-free (constants, register reads, casts of
   those) so dropping it changes neither cycles nor trap behavior.
   Only the instruction's fuel burn remains ([Mdeadmove]). *)
let rec charge_free_rhs slots (e : I.exp) : bool =
  match e.I.e with
  | I.Econst _ -> true
  | I.Elval lv -> reg_of_lval slots lv <> None
  | I.Ecast (_, e1) -> charge_free_rhs slots e1
  | _ -> false

let lval_addr_reads slots ((host, offs) : I.lval) (acc : int list ref) go_exp =
  ignore slots;
  (match host with I.Lvar _ -> () | I.Lmem e -> go_exp e acc);
  List.iter (function I.Ofield _ -> () | I.Oindex e -> go_exp e acc) offs

let rec exp_reads slots (e : I.exp) (acc : int list ref) =
  match e.I.e with
  | I.Econst _ | I.Estr _ | I.Efun _ | I.Eself_field _ -> ()
  | I.Elval lv -> (
      match reg_of_lval slots lv with
      | Some (i, _) -> acc := i :: !acc
      | None -> lval_addr_reads slots lv acc (exp_reads slots))
  | I.Eunop (_, e1) | I.Ecast (_, e1) -> exp_reads slots e1 acc
  | I.Ebinop (_, a, b) ->
      exp_reads slots a acc;
      exp_reads slots b acc
  | I.Econd (c, a, b) ->
      exp_reads slots c acc;
      exp_reads slots a acc;
      exp_reads slots b acc
  | I.Eaddrof lv | I.Estartof lv -> lval_addr_reads slots lv acc (exp_reads slots)

let instr_reads slots (i : I.instr) (acc : int list ref) =
  let lv_dest lv =
    match reg_of_lval slots lv with
    | Some _ -> ()
    | None -> lval_addr_reads slots lv acc (exp_reads slots)
  in
  match i with
  | I.Iset (lv, e) ->
      exp_reads slots e acc;
      lv_dest lv
  | I.Icall (ret, tgt, args) ->
      List.iter (fun a -> exp_reads slots a acc) args;
      (match tgt with I.Direct _ -> () | I.Indirect e -> exp_reads slots e acc);
      (match ret with None -> () | Some lv -> lv_dest lv)
  | I.Icheck (ck, _) -> (
      match ck with
      | I.Ck_nonnull e | I.Ck_nt_next (e, _) -> exp_reads slots e acc
      | I.Ck_le (a, b) | I.Ck_lt (a, b) ->
          exp_reads slots a acc;
          exp_reads slots b acc
      | I.Ck_not_atomic -> ())
  | I.Irc_inc e | I.Irc_dec e -> exp_reads slots e acc
  | I.Irc_update (lv, e) ->
      exp_reads slots e acc;
      lv_dest lv

let instr_reg_write slots (i : I.instr) : int option =
  match i with
  | I.Iset (lv, _) | I.Icall (Some lv, _, _) -> Option.map fst (reg_of_lval slots lv)
  | _ -> None

let peep_deadmoves ~slots ~nregs (b : mblock) : int =
  let kills = ref 0 in
  (* dead.(r): walking backward, the next forward event on r is an
     overwrite (no read in between, within this block). *)
  let dead = Array.make (max nregs 1) false in
  let keep item =
    (match item with
    | Mi i ->
        (match instr_reg_write slots i with Some w -> dead.(w) <- true | None -> ());
        let acc = ref [] in
        instr_reads slots i acc;
        List.iter (fun r -> dead.(r) <- false) !acc
    | Mretval (Some e) ->
        let acc = ref [] in
        exp_reads slots e acc;
        List.iter (fun r -> dead.(r) <- false) !acc
    | _ -> ());
    item
  in
  b.mis <-
    List.fold_left
      (fun acc item ->
        match item with
        | Mi (I.Iset (lv, e)) -> (
            match reg_of_lval slots lv with
            | Some (r, _) when dead.(r) && charge_free_rhs slots e ->
                incr kills;
                Mdeadmove :: acc
            | _ -> keep item :: acc)
        | _ -> keep item :: acc)
      [] (List.rev b.mis);
  !kills

(* ------------------------------------------------------------------ *)
(* Superinstruction selection.                                        *)
(* ------------------------------------------------------------------ *)

(* The opcode name an instruction is counted under, matching the
   [prof] labels codegen uses. *)
let opname (i : I.instr) : string =
  match i with
  | I.Iset (lv, _) -> (
      match lval_type_c lv with
      | I.Tcomp _ -> "set-struct"
      | _ -> "set"
      | exception Trap.Trap _ -> "set")
  | I.Icall (_, I.Direct _, _) -> "call"
  | I.Icall (_, I.Indirect _, _) -> "call-indirect"
  | I.Icheck (ck, _) -> (
      match ck with
      | I.Ck_nonnull _ -> "check-nonnull"
      | I.Ck_le _ -> "check-le"
      | I.Ck_lt _ -> "check-lt"
      | I.Ck_nt_next _ -> "check-ntnext"
      | I.Ck_not_atomic -> "check-notatomic")
  | I.Irc_inc _ -> "rc-inc"
  | I.Irc_dec _ -> "rc-dec"
  | I.Irc_update _ -> "rc-update"

(* Straight-line ops whose closures neither call back into the VM nor
   change control flow — safe and profitable to chain. *)
let fusable = function
  | "set" | "check-nonnull" | "check-le" | "check-lt" | "check-ntnext" | "check-notatomic"
  | "rc-inc" | "rc-dec" | "rc-update" ->
      true
  | _ -> false

(* The baked-in table, measured on the E2 workloads (bw_mem_cp /
   lat_syscall with Deputy residue): dense set runs dominate, followed
   by bounds-check-then-access and refcount-update pairs. *)
let default_hot_pairs =
  [
    ("set", "set");
    ("check-lt", "set");
    ("check-le", "set");
    ("check-nonnull", "set");
    ("check-nonnull", "check-lt");
    ("check-nonnull", "check-le");
    ("check-le", "check-lt");
    ("rc-update", "set");
    ("set", "rc-update");
  ]

(* Fusion candidates: the defaults plus every ordered pair of the
   hottest fusable opcodes in the live profile (when one was
   collected this run). *)
let selected_pairs () : (string * string, unit) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace h p ()) default_hot_pairs;
  let hot =
    profile_table ()
    |> List.filter (fun (n, _) -> fusable n)
    |> List.filteri (fun i _ -> i < 6)
    |> List.map fst
  in
  List.iter (fun a -> List.iter (fun b -> Hashtbl.replace h (a, b) ()) hot) hot;
  h

(* Greedy left-to-right run formation, capped at 4 ops per
   superinstruction (diminishing returns past that, and the composed
   closure stays a flat arity-k apply). *)
let peep_fuse pairs (b : mblock) : int =
  let fused = ref 0 in
  let flush run acc =
    match run with
    | [] -> acc
    | [ (i, _) ] -> Mi i :: acc
    | _ ->
        incr fused;
        Mfused (List.rev_map fst run, String.concat "+" (List.rev_map snd run)) :: acc
  in
  let rec go acc run items =
    match items with
    | [] -> List.rev (flush run acc)
    | Mi i :: rest when fusable (opname i) -> (
        let n = opname i in
        match run with
        | (_, last) :: _ when List.length run < 4 && Hashtbl.mem pairs (last, n) ->
            go acc ((i, n) :: run) rest
        | _ -> go (flush run acc) [ (i, n) ] rest)
    | item :: rest -> go (item :: flush run acc) [] rest
  in
  b.mis <- go [] [] b.mis;
  !fused

let peephole ~slots ~nregs (bs : mblock array) : mblock array =
  let th1 = peep_thread bs in
  let mg = peep_merge bs in
  let th2 = peep_thread bs in
  let tc = peep_termcopy bs in
  let bs = peep_compact bs in
  ostat_n "peep:jump-thread" (th1 + th2);
  ostat_n "peep:block-merge" mg;
  ostat_n "peep:term-copy" tc;
  let pairs = selected_pairs () in
  let cp = ref 0 and dm = ref 0 and fu = ref 0 in
  Array.iter
    (fun b ->
      cp := !cp + peep_constprop ~slots ~nregs b;
      dm := !dm + peep_deadmoves ~slots ~nregs b;
      fu := !fu + peep_fuse pairs b)
    bs;
  ostat_n "peep:const-prop" !cp;
  ostat_n "peep:dead-move" !dm;
  ostat_n "peep:fuse-runs" !fu;
  bs

(* ------------------------------------------------------------------ *)
(* Expressions.                                                       *)
(* ------------------------------------------------------------------ *)

let rec cexp ctx (e : I.exp) : env -> int64 =
  let prog = ctx.cc.prog in
  match e.I.e with
  | I.Econst n -> fun _ -> n
  | I.Estr s -> fun env -> Int64.of_int (Vmstate.intern_string env.st s)
  | I.Efun name -> (
      match I.find_fun prog name with
      | Some fd ->
          let v = Vmstate.fptr_encode fd.I.fid in
          fun _ -> v
      | None -> fun _ -> Trap.trap Trap.Unknown_function "reference to unknown function %s" name)
  | I.Elval lv -> cread ctx lv
  | I.Eunop (op, e1) -> (
      let c1 = cexp ctx e1 in
      match op with
      | Kc.Ast.Neg ->
          let nf = normf e.I.ety in
          fun env ->
            let v = c1 env in
            Cost.op_alu env.cost;
            nf (Int64.neg v)
      | Kc.Ast.Bitnot ->
          let nf = normf e.I.ety in
          fun env ->
            let v = c1 env in
            Cost.op_alu env.cost;
            nf (Int64.lognot v)
      | Kc.Ast.Lognot ->
          fun env ->
            let v = c1 env in
            Cost.op_alu env.cost;
            if v = 0L then 1L else 0L)
  | I.Ebinop (op, a, b) -> cbinop ctx e.I.ety op a b
  | I.Econd (c, a, b) ->
      let cc = cexp ctx c in
      let ca = cexp ctx a in
      let cb = cexp ctx b in
      fun env ->
        let cv = cc env in
        Cost.op_branch env.cost;
        if cv <> 0L then ca env else cb env
  | I.Ecast (ty, e1) -> (
      let c1 = cexp ctx e1 in
      match normf_opt ty with None -> c1 | Some nf -> fun env -> nf (c1 env))
  | I.Eaddrof lv | I.Estartof lv -> (
      match cplace ctx lv with
      | CPmem (a, _) ->
          let fa = force a in
          fun env -> Int64.of_int (fa env)
      | CPreg _ -> fun _ -> Trap.trap Trap.Panic "address of register slot")
  | I.Eself_field _ ->
      fun _ -> Trap.trap Trap.Panic "Eself_field reached the interpreter (uninstantiated annotation)"

and cbinop ctx (rty : I.ty) op (ea : I.exp) (eb : I.exp) : env -> int64 =
  let prog = ctx.cc.prog in
  let open Int64 in
  match (op, ea.I.ety, eb.I.ety) with
  (* Pointer arithmetic scales by element size. *)
  | Kc.Ast.Add, I.Tptr (elt, _), _ ->
      let ca = cexp ctx ea in
      let cb = cexp ctx eb in
      let sz = of_int (Kc.Layout.size_of prog elt) in
      fun env ->
        let a = ca env in
        let b = cb env in
        Cost.op_alu env.cost;
        add a (mul b sz)
  | Kc.Ast.Sub, I.Tptr (elt, _), I.Tint _ ->
      let ca = cexp ctx ea in
      let cb = cexp ctx eb in
      let sz = of_int (Kc.Layout.size_of prog elt) in
      fun env ->
        let a = ca env in
        let b = cb env in
        Cost.op_alu env.cost;
        sub a (mul b sz)
  | Kc.Ast.Sub, I.Tptr (elt, _), I.Tptr _ ->
      let ca = cexp ctx ea in
      let cb = cexp ctx eb in
      let sz = of_int (Stdlib.max 1 (Kc.Layout.size_of prog elt)) in
      fun env ->
        let a = ca env in
        let b = cb env in
        Cost.op_alu env.cost;
        div (sub a b) sz
  | _ when ctx.fopt -> cbinop_opt ctx rty op ea eb
  | _ -> (
      let ca = cexp ctx ea in
      let cb = cexp ctx eb in
      let signed = Vmstate.is_signed ea.I.ety in
      let nf = normf rty in
      let bool_ v = if v then 1L else 0L in
      match op with
      | Kc.Ast.Add ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (add a b)
      | Kc.Ast.Sub ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (sub a b)
      | Kc.Ast.Mul ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (mul a b)
      | Kc.Ast.Div ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            if b = 0L then Trap.trap Trap.Div_by_zero "division by zero";
            nf (div a b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            if b = 0L then Trap.trap Trap.Div_by_zero "division by zero";
            nf (unsigned_div a b)
      | Kc.Ast.Mod ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            if b = 0L then Trap.trap Trap.Div_by_zero "mod by zero";
            nf (rem a b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            if b = 0L then Trap.trap Trap.Div_by_zero "mod by zero";
            nf (unsigned_rem a b)
      | Kc.Ast.Shl ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (shift_left a (to_int (logand b 63L)))
      | Kc.Ast.Shr ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (shift_right a (to_int (logand b 63L))))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (shift_right_logical a (to_int (logand b 63L)))
      | Kc.Ast.Bitand ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (logand a b)
      | Kc.Ast.Bitor ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (logor a b)
      | Kc.Ast.Bitxor ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            nf (logxor a b)
      | Kc.Ast.Lt ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a < b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (unsigned_compare a b < 0)
      | Kc.Ast.Gt ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a > b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (unsigned_compare a b > 0)
      | Kc.Ast.Le ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a <= b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (unsigned_compare a b <= 0)
      | Kc.Ast.Ge ->
          if signed then (fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a >= b))
          else fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (unsigned_compare a b >= 0)
      | Kc.Ast.Eq ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a = b)
      | Kc.Ast.Ne ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a <> b)
      | Kc.Ast.Logand ->
          (* Like the reference engine, && and || in the IR are eager:
             both operands were already hoisted by the frontend. *)
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a <> 0L && b <> 0L)
      | Kc.Ast.Logor ->
          fun env ->
            let a = ca env in
            let b = cb env in
            Cost.op_alu env.cost;
            bool_ (a <> 0L || b <> 0L))

(* The specialized generic-ALU arm: operands are classified so
   constants and register reads (both charge-free) fetch inline, and
   the op dispatches on a tag instead of through two operand closures
   plus a normalization closure. Charges land exactly as in the
   generic arm: operand effects in order, then op_alu, then compute
   (a trapping div/mod traps after the charge, as before). *)
and cbinop_opt ctx (rty : I.ty) op (ea : I.exp) (eb : I.exp) : env -> int64 =
  let k = aluk_of op ~signed:(Vmstate.is_signed ea.I.ety) in
  let ns = if alu_is_bool k then Nid else nspec_of rty in
  ostat "spec:alu";
  let oa = classify ctx ea in
  let ob = classify ctx eb in
  cbinop_ops k ns oa ob

(* The ALU closure for already-classified operands: operand fetches in
   order, one ALU charge, compute (traps included), normalize. *)
and cbinop_ops (k : aluk) (ns : nspec) (oa : operand) (ob : operand) : env -> int64 =
  match (oa, ob) with
  | Oc x, Oc y ->
      if alu_can_trap k then fun env ->
        c_alu env;
        napply ns (alu_eval k x y)
      else
        let v = napply ns (alu_eval k x y) in
        fun env ->
          c_alu env;
          v
  | Oreg i, Oc y ->
      fun env ->
        let x = rget env.regs i in
        c_alu env;
        napply ns (alu_eval k x y)
  | Oc x, Oreg j ->
      fun env ->
        let y = rget env.regs j in
        c_alu env;
        napply ns (alu_eval k x y)
  | Oreg i, Oreg j ->
      fun env ->
        let x = rget env.regs i in
        let y = rget env.regs j in
        c_alu env;
        napply ns (alu_eval k x y)
  | Odyn fa, Oc y ->
      fun env ->
        let x = fa env in
        c_alu env;
        napply ns (alu_eval k x y)
  | Odyn fa, Oreg j ->
      fun env ->
        let x = fa env in
        let y = rget env.regs j in
        c_alu env;
        napply ns (alu_eval k x y)
  | Oc x, Odyn fb ->
      fun env ->
        let y = fb env in
        c_alu env;
        napply ns (alu_eval k x y)
  | Oreg i, Odyn fb ->
      fun env ->
        let x = rget env.regs i in
        let y = fb env in
        c_alu env;
        napply ns (alu_eval k x y)
  | Odyn fa, Odyn fb ->
      fun env ->
        let x = fa env in
        let y = fb env in
        c_alu env;
        napply ns (alu_eval k x y)

(* Operand classification. Constants fold through casts; a cast that
   normalizes wraps the fetch. Everything else compiles generically. *)
and classify ctx (e : I.exp) : operand =
  match e.I.e with
  | I.Econst n -> Oc n
  | I.Elval (I.Lvar v, []) when not v.I.vglob -> (
      match Hashtbl.find_opt ctx.slots v.I.vid with
      | Some (Sreg i) -> Oreg i
      | _ -> Odyn (cexp ctx e))
  | I.Ecast (ty, e1) -> (
      match normf_opt ty with
      | None -> classify ctx e1
      | Some nf -> (
          match classify ctx e1 with
          | Oc v -> Oc (nf v)
          | Oreg i -> Odyn (fun env -> nf (rget env.regs i))
          | Odyn f -> Odyn (fun env -> nf (f env))))
  | _ -> Odyn (cexp ctx e)

(* A pointer-arithmetic deref address as one flat closure, when the
   operands live in registers or constants: `p[i]` through a pointer
   parameter is the hottest addressing shape the workloads produce.
   Charge shape matches cbinop's pointer arms exactly — operand
   fetches (free for regs/consts), then one op_alu, then the scaled
   add — followed by the Int64.to_int the generic Lmem arm performs. *)
and cptr_flat ctx (e : I.exp) : caddr option =
  if not ctx.fopt then None
  else
    match e.I.e with
    | I.Ebinop (op, ea, eb) -> (
        let scaled k =
          match (classify ctx ea, classify ctx eb) with
          | Oreg p, Oreg i ->
              ostat "spec:addr";
              Some (Ari (p, i, k))
          | Oreg p, Oc c ->
              ostat "spec:addr";
              Some (Arc (p, Int64.to_int c * k))
          | _ -> None
        in
        match (op, ea.I.ety, eb.I.ety) with
        | Kc.Ast.Add, I.Tptr (elt, _), _ -> scaled (Kc.Layout.size_of ctx.cc.prog elt)
        | Kc.Ast.Sub, I.Tptr (elt, _), I.Tint _ -> scaled (-Kc.Layout.size_of ctx.cc.prog elt)
        | _ -> None)
    | _ -> None

(* Resolve an lvalue to a place at compile time, mirroring
   Treewalk.place_of_lval: same evaluation order, same Oindex ALU
   charge, same trap messages for malformed shapes. *)
and cplace ctx ((host, offs) : I.lval) : cplace =
  let prog = ctx.cc.prog in
  let base =
    match host with
    | I.Lvar v ->
        if v.I.vglob then
          match Hashtbl.find_opt ctx.cc.globals v.I.vid with
          | Some addr -> CPmem (Aconst addr, v.I.vty)
          | None -> raise Not_found (* matches the tree-walker's Hashtbl.find *)
        else (
          match Hashtbl.find_opt ctx.slots v.I.vid with
          | Some (Sreg i) -> CPreg (i, v.I.vty)
          | Some (Sstk off) -> CPmem (Abase off, v.I.vty)
          | None -> Trap.trap Trap.Panic "unbound local %s" v.I.vname)
    | I.Lmem e -> (
        let ty =
          match e.I.ety with
          | I.Tptr (ty, _) -> ty
          | _ -> Trap.trap Trap.Panic "deref of non-pointer"
        in
        match cptr_flat ctx e with
        | Some a -> CPmem (a, ty)
        | None ->
            let ce = cexp ctx e in
            CPmem (Adyn (fun env -> Int64.to_int (ce env)), ty))
  in
  List.fold_left
    (fun place off ->
      match (place, off) with
      | CPmem (a, _), I.Ofield f ->
          CPmem (add_const a (Kc.Layout.field_offset prog f), f.I.fty)
      | CPmem (a, I.Tarray (elt, _)), I.Oindex ie ->
          let esz = Kc.Layout.size_of prog elt in
          let generic () =
            let fa = force a in
            let ci = cexp ctx ie in
            Adyn
              (fun env ->
                let addr = fa env in
                let i = Int64.to_int (ci env) in
                Cost.op_alu env.cost;
                addr + (i * esz))
          in
          (* Known base + register/constant index flattens to one
             closure. The indexing ALU charge survives even when the
             whole address is a compile-time constant — the tree-walker
             charges it per access. *)
          let a' =
            if not ctx.fopt then generic ()
            else
              match a with
              | Aconst b -> (
                  match classify ctx ie with
                  | Oc i ->
                      ostat "spec:addr";
                      let addr = b + (Int64.to_int i * esz) in
                      Adyn
                        (fun env ->
                          c_alu env;
                          addr)
                  | Oreg r ->
                      ostat "spec:addr";
                      Adyn
                        (fun env ->
                          let i = Int64.to_int (rget env.regs r) in
                          c_alu env;
                          b + (i * esz))
                  | Odyn _ -> generic ())
              | Abase o -> (
                  match classify ctx ie with
                  | Oc i ->
                      ostat "spec:addr";
                      let off = o + (Int64.to_int i * esz) in
                      Adyn
                        (fun env ->
                          c_alu env;
                          env.base + off)
                  | Oreg r ->
                      ostat "spec:addr";
                      Adyn
                        (fun env ->
                          let i = Int64.to_int (rget env.regs r) in
                          c_alu env;
                          env.base + o + (i * esz))
                  | Odyn _ -> generic ())
              | Ari _ | Arc _ | Adyn _ -> generic ()
          in
          CPmem (a', elt)
      | CPreg _, _ -> Trap.trap Trap.Panic "offset into register slot"
      | CPmem _, I.Oindex _ -> Trap.trap Trap.Panic "index of non-array")
    base offs

and cread ctx (lv : I.lval) : env -> int64 =
  match cplace ctx lv with
  | CPreg (i, _) -> fun env -> rget env.regs i
  | CPmem (a, ty) -> (
      let width = Vmstate.width_of ctx.cc.prog ty in
      let signed = Vmstate.is_signed ty in
      match a with
      | Aconst addr ->
          fun env ->
            Cost.op_load env.cost;
            Mem.load env.mem ~addr ~width ~signed
      | Abase o ->
          fun env ->
            let addr = env.base + o in
            Cost.op_load env.cost;
            Mem.load env.mem ~addr ~width ~signed
      | (Ari _ | Arc _ | Adyn _) as ad ->
          let fa = force ad in
          fun env ->
            let addr = fa env in
            Cost.op_load env.cost;
            Mem.load env.mem ~addr ~width ~signed)

and cwrite ctx (lv : I.lval) : env -> int64 -> unit =
  match cplace ctx lv with
  | CPreg (i, ty) -> (
      match normf_opt ty with
      | None -> fun env v -> rset env.regs i v
      | Some nf -> fun env v -> rset env.regs i (nf v))
  | CPmem (a, ty) -> (
      let width = Vmstate.width_of ctx.cc.prog ty in
      match a with
      | Aconst addr ->
          fun env v ->
            Cost.op_store env.cost;
            Mem.store env.mem ~addr ~width v
      | Abase o ->
          fun env v ->
            let addr = env.base + o in
            Cost.op_store env.cost;
            Mem.store env.mem ~addr ~width v
      | (Ari _ | Arc _ | Adyn _) as ad ->
          let fa = force ad in
          fun env v ->
            let addr = fa env in
            Cost.op_store env.cost;
            Mem.store env.mem ~addr ~width v)

(* Address of an lvalue (struct copies, &x): the place must be memory. *)
and caddr_of ctx (lv : I.lval) : env -> int =
  match cplace ctx lv with
  | CPmem (a, _) -> force a
  | CPreg _ -> Trap.trap Trap.Panic "address of register slot"

(* A branch condition as an unboxed bool closure, when the shape
   allows: a compare fuses into the terminator (operand fetches, then
   the op_alu charge, then the predicate — no 1L/0L box), a register
   or constant tests directly. None falls back to the generic int64
   path. Pointer-typed compares take the same generic arm as cbinop's,
   so classifying them here is exactly faithful. *)
and ccond_opt ctx (e : I.exp) : (env -> bool) option =
  if not ctx.fopt then None
  else
    match e.I.e with
    | I.Ebinop (op, ea, eb) -> (
        match cmpk_of op ~signed:(Vmstate.is_signed ea.I.ety) with
        | None -> ccond_simple ctx e
        | Some ck ->
            ostat "spec:cmp-branch";
            let oa = classify ctx ea in
            let ob = classify ctx eb in
            Some
              (match (oa, ob) with
              | Oc x, Oc y ->
                  let b = cmp_eval ck x y in
                  fun env ->
                    c_alu env;
                    b
              | Oreg i, Oc y ->
                  fun env ->
                    let x = rget env.regs i in
                    c_alu env;
                    cmp_eval ck x y
              | Oc x, Oreg j ->
                  fun env ->
                    let y = rget env.regs j in
                    c_alu env;
                    cmp_eval ck x y
              | Oreg i, Oreg j ->
                  fun env ->
                    let x = rget env.regs i in
                    let y = rget env.regs j in
                    c_alu env;
                    cmp_eval ck x y
              | Odyn fa, Oc y ->
                  fun env ->
                    let x = fa env in
                    c_alu env;
                    cmp_eval ck x y
              | Odyn fa, Oreg j ->
                  fun env ->
                    let x = fa env in
                    let y = rget env.regs j in
                    c_alu env;
                    cmp_eval ck x y
              | Oc x, Odyn fb ->
                  fun env ->
                    let y = fb env in
                    c_alu env;
                    cmp_eval ck x y
              | Oreg i, Odyn fb ->
                  fun env ->
                    let x = rget env.regs i in
                    let y = fb env in
                    c_alu env;
                    cmp_eval ck x y
              | Odyn fa, Odyn fb ->
                  fun env ->
                    let x = fa env in
                    let y = fb env in
                    c_alu env;
                    cmp_eval ck x y))
    | I.Econst _ | I.Elval _ | I.Ecast _ -> ccond_simple ctx e
    | _ -> None

and ccond_simple ctx (e : I.exp) : (env -> bool) option =
  match e.I.e with
  | I.Econst _ | I.Elval (I.Lvar _, []) -> (
      match classify ctx e with
      | Oc v ->
          let b = v <> 0L in
          Some (fun _ -> b)
      | Oreg i -> Some (fun env -> rget env.regs i <> 0L)
      | Odyn _ -> None)
  | _ -> None

(* A compare condition split into its parts so terminator codegen can
   inline the whole test — fetches, ALU charge, predicate — into the
   terminator closure with no intermediate bool closure. *)
and ccond_cmp_parts ctx (e : I.exp) : (cmpk * operand * operand) option =
  if not ctx.fopt then None
  else
    match e.I.e with
    | I.Ebinop (op, ea, eb) -> (
        match cmpk_of op ~signed:(Vmstate.is_signed ea.I.ety) with
        | None -> None
        | Some ck ->
            ostat "spec:cmp-branch";
            Some (ck, classify ctx ea, classify ctx eb))
    | _ -> None

(* Guards for terminator/return positions: compile-time traps on
   malformed shapes become runtime traps, as in the tree-walker. *)
let cexp_safe ctx (e : I.exp) : env -> int64 =
  match cexp ctx e with
  | f -> f
  | exception Trap.Trap (k, m) -> fun _ -> raise (Trap.Trap (k, m))

let ccond_safe ctx (e : I.exp) : (env -> bool) option =
  match ccond_opt ctx e with
  | r -> r
  | exception Trap.Trap (k, m) -> Some (fun _ -> raise (Trap.Trap (k, m)))

let classify_safe ctx (e : I.exp) : operand =
  match classify ctx e with
  | o -> o
  | exception Trap.Trap (k, m) -> Odyn (fun _ -> raise (Trap.Trap (k, m)))

(* A compare fused all the way into the terminator: optional fuel
   burn, branch charge, operand fetches, ALU charge, predicate — the
   tree-walker's order as one flat closure. [burns] is a captured
   immutable bool, so its branch predicts perfectly. *)
let cmp_term ~name ~burns ck oa ob (tid : int) (fid : int) : env -> int =
  match (oa, ob) with
  | Oc x, Oc y ->
      let tgt = if cmp_eval ck x y then tid else fid in
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          c_alu env;
          tgt)
  | Oreg i, Oc y ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = rget env.regs i in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Oc x, Oreg j ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let y = rget env.regs j in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Oreg i, Oreg j ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = rget env.regs i in
          let y = rget env.regs j in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Odyn fa, Oc y ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = fa env in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Odyn fa, Oreg j ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = fa env in
          let y = rget env.regs j in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Oc x, Odyn fb ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let y = fb env in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Oreg i, Odyn fb ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = rget env.regs i in
          let y = fb env in
          c_alu env;
          if cmp_eval ck x y then tid else fid)
  | Odyn fa, Odyn fb ->
      prof_term name (fun env ->
          if burns then burn env;
          c_branch env;
          let x = fa env in
          let y = fb env in
          c_alu env;
          if cmp_eval ck x y then tid else fid)

(* ------------------------------------------------------------------ *)
(* Micro-ops: flat superinstruction bodies.                           *)
(* ------------------------------------------------------------------ *)

(* The describable subset of instruction shapes, operands and
   addresses resolved at compile time. A fused run whose members all
   describe compiles to ONE closure stepping through descriptors —
   immediate-tag dispatch instead of a closure call per opcode. *)
type uop =
  | Ustore of caddr * int * operand (* dst addr, width, value *)
  | Ucopy of caddr * int * bool * caddr * int (* src addr/width/signed, dst addr/width *)
  | Uload of int * nspec * caddr * int * bool (* dst reg, dst norm, src addr, width, signed *)
  | Uregalu of int * nspec * nspec * aluk * operand * operand (* dst reg, dst/result norms *)
  | Ualur of int * nspec * nspec * aluk * int * int (* reg-reg ALU: dst, norms, kind, src regs *)
  | Ualuc of int * nspec * nspec * aluk * int * int64 (* reg-const ALU: dst, norms, kind, src, imm *)
  | Uregalum of int * nspec * nspec * aluk * bool * operand * caddr * int * bool
    (* ALU with one memory operand folded in: dst reg, dst/result
       norms, kind, memory-on-left, the other operand, then the
       memory side (addr, width, signed). *)
  | Uregset of int * nspec * operand (* dst reg, dst norm *)
  | Ucheck2 of bool * string * operand * operand (* strict, reason *)
  | Ucknonnull of string * operand
  | Unop (* fuel-only step: dead move, loop-iteration charge *)

let[@inline] ofetch (env : env) (o : operand) : int64 =
  match o with Oc v -> v | Oreg i -> rget env.regs i | Odyn f -> f env

let[@inline] afetch (env : env) (a : caddr) : int =
  match a with
  | Aconst n -> n
  | Abase o -> env.base + o
  | Ari (p, i, k) ->
      let a = Int64.to_int (rget env.regs p) in
      let b = Int64.to_int (rget env.regs i) in
      c_alu env;
      a + (b * k)
  | Arc (p, d) ->
      let a = Int64.to_int (rget env.regs p) in
      c_alu env;
      a + d
  | Adyn f -> f env

(* One micro-op, fuel already burnt by the caller. Effect orders match
   the specialized single-instruction closures exactly: value before
   address for stores, check charge before operand fetches, the same
   trap messages. *)
let run_uop (env : env) (u : uop) : unit =
  match u with
  | Ustore (a, w, o) ->
      let v = ofetch env o in
      let addr = afetch env a in
      c_store env;
      Mem.store env.mem ~addr ~width:w v
  | Ucopy (sa, sw, ss, da, dw) ->
      let saddr = afetch env sa in
      c_load env;
      if sw = dw && Mem.valid_fast env.mem saddr sw then begin
        (* Same width, source span valid: the load cannot trap, and a
           load/store round trip writes exactly the source bytes, so
           the pair collapses to a raw blit (no Int64 boxing). Source
           validity is decided before the destination address is
           computed, preserving trap order. *)
        let daddr = afetch env da in
        c_store env;
        if Mem.valid_fast env.mem daddr dw then Mem.blit_raw env.mem ~src:saddr ~dst:daddr ~width:dw
        else
          Mem.store env.mem ~addr:daddr ~width:dw
            (Mem.load env.mem ~addr:saddr ~width:sw ~signed:ss)
      end
      else begin
        let v = Mem.load env.mem ~addr:saddr ~width:sw ~signed:ss in
        let daddr = afetch env da in
        c_store env;
        Mem.store env.mem ~addr:daddr ~width:dw v
      end
  | Uload (k, ns, a, w, s) ->
      let addr = afetch env a in
      c_load env;
      rset env.regs k (napply ns (Mem.load env.mem ~addr ~width:w ~signed:s))
  | Uregalu (k, ns, nsr, ak, oa, ob) ->
      let x = ofetch env oa in
      let y = ofetch env ob in
      c_alu env;
      rset env.regs k (napply ns (napply nsr (alu_eval ak x y)))
  | Ualur (k, ns, nsr, ak, i, j) ->
      (* [Uregalu] with both operand tags resolved at compile time;
         register fetches are pure and charge-free, so the collapse is
         order-neutral. *)
      let x = rget env.regs i in
      let y = rget env.regs j in
      c_alu env;
      rset env.regs k (napply ns (napply nsr (alu_eval ak x y)))
  | Ualuc (k, ns, nsr, ak, i, y) ->
      let x = rget env.regs i in
      c_alu env;
      rset env.regs k (napply ns (napply nsr (alu_eval ak x y)))
  | Uregalum (k, ns, nsr, ak, mem_left, o, ma, w, s) ->
      (* Operands evaluate left to right, so the load charge lands
         before or after the other fetch depending on which side the
         memory operand sits — exactly as the two-closure form. *)
      if mem_left then begin
        let addr = afetch env ma in
        c_load env;
        let x = Mem.load env.mem ~addr ~width:w ~signed:s in
        let y = ofetch env o in
        c_alu env;
        rset env.regs k (napply ns (napply nsr (alu_eval ak x y)))
      end
      else begin
        let x = ofetch env o in
        let addr = afetch env ma in
        c_load env;
        let y = Mem.load env.mem ~addr ~width:w ~signed:s in
        c_alu env;
        rset env.regs k (napply ns (napply nsr (alu_eval ak x y)))
      end
  | Uregset (k, ns, o) -> rset env.regs k (napply ns (ofetch env o))
  | Ucheck2 (strict, reason, oa, ob) ->
      c_check env;
      let x = ofetch env oa in
      let y = ofetch env ob in
      if if strict then x >= y else x > y then
        if strict then Trap.trap Trap.Check_failed "%s (%Ld >= %Ld)" reason x y
        else Trap.trap Trap.Check_failed "%s (%Ld > %Ld)" reason x y
  | Ucknonnull (reason, o) ->
      c_check env;
      if ofetch env o = 0L then Trap.trap Trap.Check_failed "null pointer: %s" reason
  | Unop -> ()

(* ------------------------------------------------------------------ *)
(* Calls (runtime entry points, shared with instruction closures).    *)
(* ------------------------------------------------------------------ *)

let call_builtin (st : Vmstate.t) (name : string) (args : int64 array) : int64 =
  match Hashtbl.find_opt st.Vmstate.builtins name with
  | Some impl -> impl st (Array.to_list args)
  | None -> Trap.trap Trap.Unknown_function "call to undefined function %s" name

let rec get_cfun (cc : t) (fd : I.fundec) : cfun =
  match Hashtbl.find_opt cc.by_fid fd.I.fid with
  | None -> compile_fun cc fd (* synthetic fundec outside the program: uncached *)
  | Some idx -> (
      match Array.unsafe_get cc.cfuns idx with
      | Some cf when cf.cf_body == fd.I.fbody && cf.cf_gen = current_gen () -> cf
      | _ ->
          let cf = compile_fun cc fd in
          cc.cfuns.(idx) <- Some cf;
          cf)

and call_fd (cc : t) (st : Vmstate.t) (fd : I.fundec) (args : int64 array) : int64 =
  if fd.I.fextern then call_by_name_c cc st fd.I.fname args
  else begin
    st.Vmstate.call_depth <- st.Vmstate.call_depth + 1;
    if st.Vmstate.call_depth > 2000 then
      Trap.trap Trap.Stack_overflow_trap "call depth > 2000 in %s" fd.I.fname;
    if st.Vmstate.call_depth > st.Vmstate.max_call_depth then
      st.Vmstate.max_call_depth <- st.Vmstate.call_depth;
    let cf = get_cfun cc fd in
    let m = st.Vmstate.m in
    let base = Machine.push_frame m (max 16 cf.cf_frame_bytes) in
    let nregs = cf.cf_nregs in
    (* Register files come from the machine's pool when one is wide
       enough (zeroing just the slots this frame uses); a trap unwinds
       past the give-back, which only costs the pool an entry. *)
    let regs =
      match st.Vmstate.scratch with
      | r :: rest when Bigarray.Array1.dim r >= nregs ->
          st.Vmstate.scratch <- rest;
          for i = 0 to nregs - 1 do
            rset r i 0L
          done;
          r
      | _ -> regfile_make (max nregs 32)
    in
    let env = { st; m; cost = m.Machine.cost; mem = m.Machine.mem; regs; base; retv = 0L } in
    let binders = cf.cf_binders in
    let na = Array.length args in
    for i = 0 to Array.length binders - 1 do
      (Array.unsafe_get binders i) env (if i < na then Array.unsafe_get args i else 0L)
    done;
    let blocks = cf.cf_blocks in
    let pc = ref 0 in
    while !pc >= 0 do
      let b = Array.unsafe_get blocks !pc in
      let is = b.instrs in
      for i = 0 to Array.length is - 1 do
        (Array.unsafe_get is i) env
      done;
      pc := b.term env
    done;
    Machine.pop_frame m base;
    st.Vmstate.scratch <- regs :: st.Vmstate.scratch;
    st.Vmstate.call_depth <- st.Vmstate.call_depth - 1;
    cf.cf_ret_norm env.retv
  end

and call_by_name_c (cc : t) (st : Vmstate.t) name (args : int64 array) : int64 =
  match I.find_fun st.Vmstate.prog name with
  | Some fd when not fd.I.fextern -> call_fd cc st fd args
  | _ -> call_builtin st name args

(* ------------------------------------------------------------------ *)
(* Instructions.                                                      *)
(* ------------------------------------------------------------------ *)

(* Every instruction closure burns fuel first, as exec_instr does. *)
and compile_instr ctx (instr : I.instr) : env -> unit =
  match compile_instr_inner ctx instr with
  | f -> f
  | exception Trap.Trap (k, m) ->
      (* A malformed instruction the tree-walker would only trap on
         when executed: defer the trap into the closure so dead code
         stays equivalent. *)
      prof "deferred-trap" (fun env ->
          Machine.burn_fuel env.m;
          raise (Trap.Trap (k, m)))

and compile_instr_inner ctx (instr : I.instr) : env -> unit =
  let prog = ctx.cc.prog in
  match instr with
  | I.Iset (lv, e) -> (
      let ty = lval_type_c lv in
      match ty with
      | I.Tcomp _ -> (
          (* Struct assignment: block copy between lvalues. *)
          match e.I.e with
          | I.Elval src_lv ->
              let cdst = caddr_of ctx lv in
              let csrc = caddr_of ctx src_lv in
              let size = Kc.Layout.size_of prog ty in
              let chg = size / 4 in
              prof "set-struct" (fun env ->
                  Machine.burn_fuel env.m;
                  let dst = cdst env in
                  let src = csrc env in
                  Cost.charge env.cost chg;
                  Mem.blit_copy env.mem ~src ~dst size)
          | _ ->
              prof "set-struct" (fun env ->
                  Machine.burn_fuel env.m;
                  Trap.trap Trap.Panic "struct assignment from non-lvalue"))
      | _ ->
          if ctx.fopt then compile_set_opt ctx lv e
          else
            let ce = cexp ctx e in
            let cw = cwrite ctx lv in
            prof "set" (fun env ->
                Machine.burn_fuel env.m;
                let v = ce env in
                cw env v))
  | I.Icall (ret, target, args) -> (
      let cargs = Array.of_list (List.map (cexp ctx) args) in
      let nargs = Array.length cargs in
      let eval_args env =
        let a = Array.make nargs 0L in
        for i = 0 to nargs - 1 do
          Array.unsafe_set a i ((Array.unsafe_get cargs i) env)
        done;
        a
      in
      let cret : env -> int64 -> unit =
        match ret with None -> fun _ _ -> () | Some lv -> cwrite ctx lv
      in
      let cc = ctx.cc in
      match target with
      | I.Direct name -> (
          match I.find_fun prog name with
          | Some fd when not fd.I.fextern ->
              prof "call" (fun env ->
                  Machine.burn_fuel env.m;
                  let args = eval_args env in
                  Cost.op_call env.cost;
                  let r = call_fd cc env.st fd args in
                  cret env r)
          | _ ->
              (* extern or undeclared: the builtin table by name, with
                 the builtin resolved per call (late registration). *)
              prof "call-builtin" (fun env ->
                  Machine.burn_fuel env.m;
                  let args = eval_args env in
                  Cost.op_call env.cost;
                  let r = call_builtin env.st name args in
                  cret env r))
      | I.Indirect fe ->
          let cfe = cexp ctx fe in
          prof "call-indirect" (fun env ->
              Machine.burn_fuel env.m;
              let args = eval_args env in
              Cost.op_call env.cost;
              let fv = cfe env in
              let r =
                match Vmstate.fptr_decode fv with
                | Some fid -> (
                    match Hashtbl.find_opt env.st.Vmstate.fun_of_id fid with
                    | Some fd -> call_fd cc env.st fd args
                    | None -> Trap.trap Trap.Unknown_function "bad function pointer %Ld" fv)
                | None -> Trap.trap Trap.Unknown_function "call through non-function value %Ld" fv
              in
              cret env r))
  | I.Icheck (ck, reason) when ctx.fopt -> (
      match ck with
      | I.Ck_nonnull e -> (
          match classify ctx e with
          | Oc v ->
              ostat "spec:check";
              if v = 0L then
                prof "check-nonnull" (fun env ->
                    burn env;
                    c_check env;
                    Trap.trap Trap.Check_failed "null pointer: %s" reason)
              else
                prof "check-nonnull" (fun env ->
                    burn env;
                    c_check env)
          | Oreg i ->
              ostat "spec:check";
              prof "check-nonnull" (fun env ->
                  burn env;
                  c_check env;
                  if rget env.regs i = 0L then
                    Trap.trap Trap.Check_failed "null pointer: %s" reason)
          | Odyn ce ->
              prof "check-nonnull" (fun env ->
                  burn env;
                  c_check env;
                  if ce env = 0L then Trap.trap Trap.Check_failed "null pointer: %s" reason))
      | I.Ck_le (a, b) -> compile_check2 ctx ~strict:false reason a b
      | I.Ck_lt (a, b) -> compile_check2 ctx ~strict:true reason a b
      | I.Ck_nt_next _ | I.Ck_not_atomic -> compile_check_generic ctx ck reason)
  | I.Icheck (ck, reason) -> compile_check_generic ctx ck reason
  | I.Irc_inc e ->
      let ce = cexp ctx e in
      prof "rc-inc" (fun env ->
          Machine.burn_fuel env.m;
          let v = ce env in
          if v <> 0L then begin
            Mem.rc_inc env.mem v;
            Cost.op_rc env.cost
          end)
  | I.Irc_dec e ->
      let ce = cexp ctx e in
      prof "rc-dec" (fun env ->
          Machine.burn_fuel env.m;
          let v = ce env in
          if v <> 0L then begin
            Mem.rc_dec env.mem v;
            Cost.op_rc env.cost
          end)
  | I.Irc_update (lv, e) -> (
      match cplace ctx lv with
      | CPreg _ ->
          (* Register slots are untracked (paper footnote 2). *)
          prof "rc-update" (fun env -> Machine.burn_fuel env.m)
      | CPmem (a, _) ->
          let fa = force a in
          let ce = cexp ctx e in
          let lo = Mem.stack_base in
          let hi = Mem.stack_base + Mem.stack_size in
          prof "rc-update" (fun env ->
              Machine.burn_fuel env.m;
              let addr = fa env in
              if not (addr >= lo && addr < hi) then begin
                let new_target = ce env in
                if new_target <> 0L then begin
                  Mem.rc_inc env.mem new_target;
                  Cost.op_rc env.cost
                end;
                let old = Mem.load env.mem ~addr ~width:8 ~signed:false in
                if old <> 0L then begin
                  Mem.rc_dec env.mem old;
                  Cost.op_rc env.cost
                end
              end))

(* Specialized non-struct [Iset]: one flat closure per hot shape
   (load-into-register, register move, memory-to-memory copy,
   constant/ALU result into register, classified value into memory).
   Every variant reproduces the generic closure's effect order — fuel,
   value, address, store charge — with register reads/writes staying
   charge-free. The source side compiles before the destination: a
   compile-time trap raised while resolving a malformed source must
   win over one from the destination, matching the generic
   cexp-then-cwrite order. *)
and compile_set_opt ctx (lv : I.lval) (e : I.exp) : env -> unit =
  let src =
    match e.I.e with
    | I.Elval src_lv -> `Place (cplace ctx src_lv)
    | I.Ebinop (op2, ea, eb)
      when (match (op2, ea.I.ety) with
           | (Kc.Ast.Add | Kc.Ast.Sub), I.Tptr _ -> false (* scaled ptr arithmetic: generic arm *)
           | _ -> true) ->
        let ak = aluk_of op2 ~signed:(Vmstate.is_signed ea.I.ety) in
        let nsr = if alu_is_bool ak then Nid else nspec_of e.I.ety in
        `Alu (ak, nsr, classify ctx ea, classify ctx eb)
    | _ -> `Op (classify ctx e)
  in
  match cplace ctx lv with
  | CPreg (k, vty) -> (
      let ns = nspec_of vty in
      let set_reg j =
        ostat "spec:set-reg";
        match ns with
        | Nid ->
            prof "set" (fun env ->
                burn env;
                rset env.regs k (rget env.regs j))
        | _ ->
            prof "set" (fun env ->
                burn env;
                rset env.regs k (napply ns (rget env.regs j)))
      in
      match src with
      | `Place (CPmem (a, sty)) -> (
          let width = Vmstate.width_of ctx.cc.prog sty in
          let signed = Vmstate.is_signed sty in
          ostat "spec:load-reg";
          match a with
          | Aconst addr ->
              prof "set" (fun env ->
                  burn env;
                  c_load env;
                  rset env.regs k
                    (napply ns (Mem.load env.mem ~addr ~width ~signed)))
          | Abase o ->
              prof "set" (fun env ->
                  burn env;
                  let addr = env.base + o in
                  c_load env;
                  rset env.regs k
                    (napply ns (Mem.load env.mem ~addr ~width ~signed)))
          | (Ari _ | Arc _ | Adyn _) as ad ->
              let fa = force ad in
              prof "set" (fun env ->
                  burn env;
                  let addr = fa env in
                  c_load env;
                  rset env.regs k
                    (napply ns (Mem.load env.mem ~addr ~width ~signed))))
      | `Place (CPreg (j, _)) -> set_reg j
      | `Op (Oreg j) -> set_reg j
      | `Op (Oc v) ->
          ostat "spec:set-reg";
          let v = napply ns v in
          prof "set" (fun env ->
              burn env;
              rset env.regs k v)
      | `Op (Odyn f) -> (
          ostat "spec:set-reg";
          match ns with
          | Nid ->
              prof "set" (fun env ->
                  burn env;
                  rset env.regs k (f env))
          | _ ->
              prof "set" (fun env ->
                  burn env;
                  rset env.regs k (napply ns (f env))))
      | `Alu (ak, nsr, oa, ob) -> (
          (* The ALU folds into the set closure: fuel, operand
             fetches, ALU charge, compute (traps included), normalize
             through the result type then the register's — exactly the
             generic set-wrapping-binop order, minus a closure hop. *)
          ostat "spec:set-alu";
          match (ns, nsr, oa, ob) with
          | _, _, Oc x, Oc y ->
              if alu_can_trap ak then
                prof "set" (fun env ->
                    burn env;
                    c_alu env;
                    rset env.regs k (napply ns (napply nsr (alu_eval ak x y))))
              else
                let v = napply ns (napply nsr (alu_eval ak x y)) in
                prof "set" (fun env ->
                    burn env;
                    c_alu env;
                    rset env.regs k v)
          | Nid, Nid, Oreg i, Oc y ->
              prof "set" (fun env ->
                  burn env;
                  let x = rget env.regs i in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Oc x, Oreg j ->
              prof "set" (fun env ->
                  burn env;
                  let y = rget env.regs j in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Oreg i, Oreg j ->
              prof "set" (fun env ->
                  burn env;
                  let x = rget env.regs i in
                  let y = rget env.regs j in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Odyn fa, Oc y ->
              prof "set" (fun env ->
                  burn env;
                  let x = fa env in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Odyn fa, Oreg j ->
              prof "set" (fun env ->
                  burn env;
                  let x = fa env in
                  let y = rget env.regs j in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Oc x, Odyn fb ->
              prof "set" (fun env ->
                  burn env;
                  let y = fb env in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Oreg i, Odyn fb ->
              prof "set" (fun env ->
                  burn env;
                  let x = rget env.regs i in
                  let y = fb env in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | Nid, Nid, Odyn fa, Odyn fb ->
              prof "set" (fun env ->
                  burn env;
                  let x = fa env in
                  let y = fb env in
                  c_alu env;
                  rset env.regs k (alu_eval ak x y))
          | _ ->
              (* Narrow destination or result type: keep the compact
                 two-closure form rather than 9 more normalize arms. *)
              let f = cbinop_ops ak nsr oa ob in
              prof "set" (fun env ->
                  burn env;
                  rset env.regs k (napply ns (f env)))))
  | CPmem (a, mty) -> (
      let width = Vmstate.width_of ctx.cc.prog mty in
      match src with
      | `Place (CPmem (sa, sty)) ->
          (* Memory-to-memory copy in one closure: source load then
             destination store, exactly the order the generic pipeline
             produces (value fully evaluated before the address). *)
          let swidth = Vmstate.width_of ctx.cc.prog sty in
          let ssigned = Vmstate.is_signed sty in
          let fs = force sa in
          let fd = force a in
          ostat "spec:copy-mem";
          prof "set" (fun env ->
              burn env;
              let saddr = fs env in
              c_load env;
              let v = Mem.load env.mem ~addr:saddr ~width:swidth ~signed:ssigned in
              let daddr = fd env in
              c_store env;
              Mem.store env.mem ~addr:daddr ~width v)
      | `Place (CPreg (j, _)) | `Op (Oreg j) -> (
          ostat "spec:set-mem";
          match a with
          | Aconst addr ->
              prof "set" (fun env ->
                  burn env;
                  c_store env;
                  Mem.store env.mem ~addr ~width (rget env.regs j))
          | Abase o ->
              prof "set" (fun env ->
                  burn env;
                  let addr = env.base + o in
                  c_store env;
                  Mem.store env.mem ~addr ~width (rget env.regs j))
          | (Ari _ | Arc _ | Adyn _) as ad ->
              let fa = force ad in
              prof "set" (fun env ->
                  burn env;
                  let addr = fa env in
                  c_store env;
                  Mem.store env.mem ~addr ~width (rget env.regs j)))
      | `Op (Oc v) -> (
          ostat "spec:set-mem";
          match a with
          | Aconst addr ->
              prof "set" (fun env ->
                  burn env;
                  c_store env;
                  Mem.store env.mem ~addr ~width v)
          | Abase o ->
              prof "set" (fun env ->
                  burn env;
                  let addr = env.base + o in
                  c_store env;
                  Mem.store env.mem ~addr ~width v)
          | (Ari _ | Arc _ | Adyn _) as ad ->
              let fa = force ad in
              prof "set" (fun env ->
                  burn env;
                  let addr = fa env in
                  c_store env;
                  Mem.store env.mem ~addr ~width v))
      | (`Op (Odyn _) | `Alu _) as s -> (
          let f =
            match s with
            | `Op (Odyn f) -> f
            | `Op _ -> assert false (* Oc/Oreg handled above *)
            | `Alu (ak, nsr, oa, ob) -> cbinop_ops ak nsr oa ob
          in
          ostat "spec:set-mem";
          match a with
          | Aconst addr ->
              prof "set" (fun env ->
                  burn env;
                  let v = f env in
                  c_store env;
                  Mem.store env.mem ~addr ~width v)
          | Abase o ->
              prof "set" (fun env ->
                  burn env;
                  let v = f env in
                  let addr = env.base + o in
                  c_store env;
                  Mem.store env.mem ~addr ~width v)
          | (Ari _ | Arc _ | Adyn _) as ad ->
              (* Value before address, as the generic pipeline evaluates. *)
              let fa = force ad in
              prof "set" (fun env ->
                  burn env;
                  let v = f env in
                  let addr = fa env in
                  c_store env;
                  Mem.store env.mem ~addr ~width v)))

(* [describe_set] mirrors [compile_set_opt]'s shape analysis but
   yields a flat [uop] descriptor instead of a closure, so a fused run
   of describable instructions executes without per-instruction
   closure calls. Register destinations are described only at identity
   normalization — [run_uop] never normalizes. Returns [None] for any
   shape whose uop would diverge from the specialized closure. *)
and describe_set ctx (lv : I.lval) (e : I.exp) : uop option =
  match lval_type_c lv with
  | I.Tcomp _ -> None
  | _ -> (
      (* An ALU operand that is itself a memory read folds into the
         micro-op ([Uregalum]); anything else classifies as usual. The
         closure form of a memory operand (for shapes that keep the
         two-closure ALU) reproduces [cread]'s charge order. *)
      let xop (e1 : I.exp) =
        match e1.I.e with
        | I.Elval (I.Lvar v, []) when not v.I.vglob -> `O (classify ctx e1)
        | I.Elval lv1 -> (
            match cplace ctx lv1 with
            | CPmem (a, ty) -> `M (a, Vmstate.width_of ctx.cc.prog ty, Vmstate.is_signed ty)
            | CPreg (j, _) -> `O (Oreg j))
        | _ -> `O (classify ctx e1)
      in
      let operand_of = function
        | `O o -> o
        | `M (a, w, s) ->
            let fa = force a in
            Odyn
              (fun env ->
                let addr = fa env in
                c_load env;
                Mem.load env.mem ~addr ~width:w ~signed:s)
      in
      let src =
        match e.I.e with
        | I.Elval src_lv -> `Place (cplace ctx src_lv)
        | I.Ebinop (op2, ea, eb)
          when (match (op2, ea.I.ety) with
               | (Kc.Ast.Add | Kc.Ast.Sub), I.Tptr _ -> false
               | _ -> true) ->
            let ak = aluk_of op2 ~signed:(Vmstate.is_signed ea.I.ety) in
            let nsr = if alu_is_bool ak then Nid else nspec_of e.I.ety in
            `Alu (ak, nsr, xop ea, xop eb)
        | _ -> `Op (classify ctx e)
      in
      match cplace ctx lv with
      | CPreg (k, vty) -> (
          let ns = nspec_of vty in
          match src with
          | `Place (CPmem (a, sty)) ->
              Some
                (Uload (k, ns, a, Vmstate.width_of ctx.cc.prog sty, Vmstate.is_signed sty))
          | `Place (CPreg (j, _)) -> Some (Uregset (k, ns, Oreg j))
          | `Op (Oc v) -> Some (Uregset (k, Nid, Oc (napply ns v)))
          | `Op o -> Some (Uregset (k, ns, o))
          | `Alu (ak, nsr, `M (ma, mw, ms), ob) ->
              Some (Uregalum (k, ns, nsr, ak, true, operand_of ob, ma, mw, ms))
          | `Alu (ak, nsr, (`O oa : [ `O of operand | `M of caddr * int * bool ]), `M (ma, mw, ms)) ->
              Some (Uregalum (k, ns, nsr, ak, false, oa, ma, mw, ms))
          | `Alu (ak, nsr, `O (Oreg i), `O (Oreg j)) -> Some (Ualur (k, ns, nsr, ak, i, j))
          | `Alu (ak, nsr, `O (Oreg i), `O (Oc y)) -> Some (Ualuc (k, ns, nsr, ak, i, y))
          | `Alu (ak, nsr, `O oa, `O ob) -> Some (Uregalu (k, ns, nsr, ak, oa, ob)))
      | CPmem (a, mty) -> (
          let width = Vmstate.width_of ctx.cc.prog mty in
          match src with
          | `Place (CPmem (sa, sty)) ->
              Some
                (Ucopy (sa, Vmstate.width_of ctx.cc.prog sty, Vmstate.is_signed sty, a, width))
          | `Place (CPreg (j, _)) -> Some (Ustore (a, width, Oreg j))
          | `Op o -> Some (Ustore (a, width, o))
          | `Alu (ak, nsr, oa, ob) ->
              Some
                (Ustore (a, width, Odyn (cbinop_ops ak nsr (operand_of oa) (operand_of ob))))))

and describe_instr ctx (i : I.instr) : uop option =
  match i with
  | I.Iset (lv, e) -> describe_set ctx lv e
  | I.Icheck (I.Ck_nonnull e, reason) -> Some (Ucknonnull (reason, classify ctx e))
  | I.Icheck (I.Ck_le (a, b), reason) ->
      Some (Ucheck2 (false, reason, classify ctx a, classify ctx b))
  | I.Icheck (I.Ck_lt (a, b), reason) ->
      Some (Ucheck2 (true, reason, classify ctx a, classify ctx b))
  | _ -> None

(* Whole-block fusion: when every item of a block describes as a
   micro-op run and the terminator is a goto, return, or classified
   compare-and-branch, the block compiles to a single closure the
   runner invokes once per visit — one indirect call per block per
   iteration instead of one per opcode. A hot while-loop body (after
   [peep_termcopy] copies the head's compare onto the back edge)
   executes each iteration in exactly one closure call. Charge and
   trap orders are the item closures' own, laid end to end. *)
and codegen_block_flat ctx ~self (mb : mblock) : (env -> int) option =
  if not ctx.fopt || mb.mis = [] then None
  else
    (* Stats are deferred until the whole block commits, so a late
       failure doesn't double-count the run names against the
       fallback's own [codegen_mi] bumps. *)
    let pending_stats = ref [] in
    let steps_of (item : mi) : uop list option =
      match item with
      | Mi i -> (
          match try describe_instr ctx i with Trap.Trap _ -> None with
          | Some u -> Some [ u ]
          | None -> None)
      | Mfused (is, name) -> (
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | i :: rest -> (
                match try describe_instr ctx i with Trap.Trap _ -> None with
                | Some u -> go (u :: acc) rest
                | None -> None)
          in
          match go [] is with
          | Some us ->
              pending_stats := ("fuse:" ^ name) :: "fuse:flat" :: !pending_stats;
              Some us
          | None -> None)
      | Mfuel | Mdeadmove -> Some [ Unop ]
      | _ -> None
    in
    let rec collect acc = function
      | [] -> Some (List.concat (List.rev acc))
      | it :: rest -> (
          match steps_of it with Some us -> collect (us :: acc) rest | None -> None)
    in
    match collect [] mb.mis with
    | None -> None
    | Some us -> (
        let a = Array.of_list us in
        let n = Array.length a in
        (* Terminator shape: compares keep their parts so a self-loop
           can inline the condition; everything else becomes a tail
           closure — [cmp_term] carries the nine operand-specialized
           compare arms, so a non-spinning loop condition costs two
           register reads, not two operand-tag dispatches. *)
        let shape =
          match mb.mt with
          | Mgoto t -> Some (`Tail (fun _ -> t))
          | Mret -> Some (`Tail (prof_term "return" (fun _ -> -1)))
          | Mif (c, tid, fid) -> (
              match try ccond_cmp_parts ctx c with Trap.Trap _ -> None with
              | Some (ck, oa, ob) -> Some (`Cmp ("br-if", false, ck, oa, ob, tid, fid))
              | None -> None)
          | Mwhile (c, tid, fid) -> (
              match try ccond_cmp_parts ctx c with Trap.Trap _ -> None with
              | Some (ck, oa, ob) -> Some (`Cmp ("br-while", true, ck, oa, ob, tid, fid))
              | None -> None)
          | Mdowhile (c, tid, fid) -> (
              match try ccond_cmp_parts ctx c with Trap.Trap _ -> None with
              | Some (ck, oa, ob) -> Some (`Cmp ("br-dowhile", false, ck, oa, ob, tid, fid))
              | None -> None)
          | Munset | Mswitch _ -> None
        in
        match shape with
        | None -> None
        | Some (`Cmp (_, burns, ck, oa, ob, tid, fid)) when tid = self && n <= 4 ->
            (* The back edge targets this very block (peep_termcopy
               put the loop compare here), so spin without returning
               to the runner: each iteration is the uop run plus the
               inlined condition, charge-for-charge the sequence the
               runner would have produced, and the closure returns
               only when the compare finally fails. *)
            List.iter ostat !pending_stats;
            ostat "fuse:block";
            ostat "fuse:block-loop";
            Some
              (match a with
              | [| u1 |] ->
                  fun env ->
                    let rec go () =
                      burn env;
                      run_uop env u1;
                      if burns then burn env;
                      c_branch env;
                      let x = ofetch env oa in
                      let y = ofetch env ob in
                      c_alu env;
                      if cmp_eval ck x y then go () else fid
                    in
                    go ()
              | [| u1; u2 |] -> (
                  (* The two-uop body (op + loop increment) is the hot
                     shape, so its condition fetches are specialized
                     on the common operand pairs. *)
                  match (oa, ob) with
                  | Oreg ra, Oreg rb ->
                      fun env ->
                        let regs = env.regs in
                        let rec go () =
                          burn env;
                          run_uop env u1;
                          burn env;
                          run_uop env u2;
                          if burns then burn env;
                          c_branch env;
                          let x = rget regs ra in
                          let y = rget regs rb in
                          c_alu env;
                          if cmp_eval ck x y then go () else fid
                        in
                        go ()
                  | Oreg ra, Oc y ->
                      fun env ->
                        let regs = env.regs in
                        let rec go () =
                          burn env;
                          run_uop env u1;
                          burn env;
                          run_uop env u2;
                          if burns then burn env;
                          c_branch env;
                          let x = rget regs ra in
                          c_alu env;
                          if cmp_eval ck x y then go () else fid
                        in
                        go ()
                  | _ ->
                      fun env ->
                        let rec go () =
                          burn env;
                          run_uop env u1;
                          burn env;
                          run_uop env u2;
                          if burns then burn env;
                          c_branch env;
                          let x = ofetch env oa in
                          let y = ofetch env ob in
                          c_alu env;
                          if cmp_eval ck x y then go () else fid
                        in
                        go ())
              | [| u1; u2; u3 |] ->
                  fun env ->
                    let rec go () =
                      burn env;
                      run_uop env u1;
                      burn env;
                      run_uop env u2;
                      burn env;
                      run_uop env u3;
                      if burns then burn env;
                      c_branch env;
                      let x = ofetch env oa in
                      let y = ofetch env ob in
                      c_alu env;
                      if cmp_eval ck x y then go () else fid
                    in
                    go ()
              | _ ->
                  let u1 = a.(0) and u2 = a.(1) and u3 = a.(2) and u4 = a.(3) in
                  fun env ->
                    let rec go () =
                      burn env;
                      run_uop env u1;
                      burn env;
                      run_uop env u2;
                      burn env;
                      run_uop env u3;
                      burn env;
                      run_uop env u4;
                      if burns then burn env;
                      c_branch env;
                      let x = ofetch env oa in
                      let y = ofetch env ob in
                      c_alu env;
                      if cmp_eval ck x y then go () else fid
                    in
                    go ())
        | Some shape ->
            let tail =
              match shape with
              | `Tail f -> f
              | `Cmp (name, burns, ck, oa, ob, tid, fid) ->
                  cmp_term ~name ~burns ck oa ob tid fid
            in
            List.iter ostat !pending_stats;
            ostat "fuse:block";
            Some
              (match a with
              | [| u1 |] ->
                  fun env ->
                    burn env;
                    run_uop env u1;
                    tail env
              | [| u1; u2 |] ->
                  fun env ->
                    burn env;
                    run_uop env u1;
                    burn env;
                    run_uop env u2;
                    tail env
              | [| u1; u2; u3 |] ->
                  fun env ->
                    burn env;
                    run_uop env u1;
                    burn env;
                    run_uop env u2;
                    burn env;
                    run_uop env u3;
                    tail env
              | [| u1; u2; u3; u4 |] ->
                  fun env ->
                    burn env;
                    run_uop env u1;
                    burn env;
                    run_uop env u2;
                    burn env;
                    run_uop env u3;
                    burn env;
                    run_uop env u4;
                    tail env
              | _ ->
                  fun env ->
                    for j = 0 to n - 1 do
                      burn env;
                      run_uop env (Array.unsafe_get a j)
                    done;
                    tail env))

(* Ck_le / Ck_lt with classified operands: signed int64 compare and
   the exact trap messages of the generic arm. *)
and compile_check2 ctx ~strict reason (ea : I.exp) (eb : I.exp) : env -> unit =
  let name = if strict then "check-lt" else "check-le" in
  let fail x y : unit =
    if strict then Trap.trap Trap.Check_failed "%s (%Ld >= %Ld)" reason x y
    else Trap.trap Trap.Check_failed "%s (%Ld > %Ld)" reason x y
  in
  ostat "spec:check";
  match (classify ctx ea, classify ctx eb) with
  | Oc x, Oc y ->
      if if strict then x >= y else x > y then
        prof name (fun env ->
            burn env;
            c_check env;
            fail x y)
      else
        prof name (fun env ->
            burn env;
            c_check env)
  | Oreg i, Oc y ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = rget env.regs i in
          if if strict then x >= y else x > y then fail x y)
  | Oc x, Oreg j ->
      prof name (fun env ->
          burn env;
          c_check env;
          let y = rget env.regs j in
          if if strict then x >= y else x > y then fail x y)
  | Oreg i, Oreg j ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = rget env.regs i in
          let y = rget env.regs j in
          if if strict then x >= y else x > y then fail x y)
  | Odyn fa, Oc y ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = fa env in
          if if strict then x >= y else x > y then fail x y)
  | Odyn fa, Oreg j ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = fa env in
          let y = rget env.regs j in
          if if strict then x >= y else x > y then fail x y)
  | Oc x, Odyn fb ->
      prof name (fun env ->
          burn env;
          c_check env;
          let y = fb env in
          if if strict then x >= y else x > y then fail x y)
  | Oreg i, Odyn fb ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = rget env.regs i in
          let y = fb env in
          if if strict then x >= y else x > y then fail x y)
  | Odyn fa, Odyn fb ->
      prof name (fun env ->
          burn env;
          c_check env;
          let x = fa env in
          let y = fb env in
          if if strict then x >= y else x > y then fail x y)

and compile_check_generic ctx (ck : I.check) (reason : string) : env -> unit =
  match ck with
  | I.Ck_nonnull e ->
      let ce = cexp ctx e in
      prof "check-nonnull" (fun env ->
          Machine.burn_fuel env.m;
          Cost.op_check env.cost;
          if ce env = 0L then Trap.trap Trap.Check_failed "null pointer: %s" reason)
  | I.Ck_le (a, b) ->
      let ca = cexp ctx a in
      let cb = cexp ctx b in
      prof "check-le" (fun env ->
          Machine.burn_fuel env.m;
          Cost.op_check env.cost;
          let x = ca env in
          let y = cb env in
          if x > y then Trap.trap Trap.Check_failed "%s (%Ld > %Ld)" reason x y)
  | I.Ck_lt (a, b) ->
      let ca = cexp ctx a in
      let cb = cexp ctx b in
      prof "check-lt" (fun env ->
          Machine.burn_fuel env.m;
          Cost.op_check env.cost;
          let x = ca env in
          let y = cb env in
          if x >= y then Trap.trap Trap.Check_failed "%s (%Ld >= %Ld)" reason x y)
  | I.Ck_nt_next (e, width) ->
      let ce = cexp ctx e in
      prof "check-ntnext" (fun env ->
          Machine.burn_fuel env.m;
          Cost.op_nt_check env.cost;
          let p = Int64.to_int (ce env) in
          let v = Mem.load env.mem ~addr:p ~width ~signed:false in
          if v = 0L then
            Trap.trap Trap.Check_failed "nullterm advance past terminator: %s" reason)
  | I.Ck_not_atomic ->
      prof "check-notatomic" (fun env ->
          Machine.burn_fuel env.m;
          Cost.op_check env.cost;
          if Machine.atomic_context env.m then
            Trap.trap Trap.Not_atomic_check "assertion: not in atomic context (%s)" reason)

(* ------------------------------------------------------------------ *)
(* Phase C: mid-level items and terminators to closures.              *)
(* ------------------------------------------------------------------ *)

and codegen_mi ctx (item : mi) : env -> unit =
  match item with
  | Mi i -> compile_instr ctx i
  | Mfuel -> prof "fuel" (fun env -> Machine.burn_fuel env.m)
  | Mdeadmove -> fun env -> burn env
  | Mscope_enter -> fun env -> Machine.delayed_scope_enter env.m
  | Mscope_exit where -> fun env -> Machine.delayed_scope_exit env.m ~where
  | Mretval None -> fun env -> env.retv <- 0L
  | Mretval (Some e) ->
      if ctx.fopt then (
        match classify_safe ctx e with
        | Oc v -> fun env -> env.retv <- v
        | Oreg i -> fun env -> env.retv <- rget env.regs i
        | Odyn f -> fun env -> env.retv <- f env)
      else
        let ce = cexp_safe ctx e in
        fun env -> env.retv <- ce env
  | Mfused (is, name) -> (
      ostat ("fuse:" ^ name);
      (* Best case: every member describes as a micro-op and the whole
         run becomes one flat closure — immediate-tag dispatch, no
         per-instruction closure call. A compile-time trap while
         describing falls back to [compile_instr], which defers it. *)
      let described =
        List.fold_left
          (fun acc i ->
            match acc with
            | None -> None
            | Some us -> (
                match try describe_instr ctx i with Trap.Trap _ -> None with
                | Some u -> Some (u :: us)
                | None -> None))
          (Some []) is
      in
      match described with
      | Some us -> (
          ostat "fuse:flat";
          match List.rev us with
          | [ u1; u2 ] ->
              fun env ->
                burn env;
                run_uop env u1;
                burn env;
                run_uop env u2
          | [ u1; u2; u3 ] ->
              fun env ->
                burn env;
                run_uop env u1;
                burn env;
                run_uop env u2;
                burn env;
                run_uop env u3
          | [ u1; u2; u3; u4 ] ->
              fun env ->
                burn env;
                run_uop env u1;
                burn env;
                run_uop env u2;
                burn env;
                run_uop env u3;
                burn env;
                run_uop env u4
          | us ->
              let a = Array.of_list us in
              fun env ->
                Array.iter
                  (fun u ->
                    burn env;
                    run_uop env u)
                  a)
      | None -> (
          match List.map (compile_instr ctx) is with
          | [ f; g ] ->
              fun env ->
                f env;
                g env
          | [ f; g; h ] ->
              fun env ->
                f env;
                g env;
                h env
          | [ f; g; h; k ] ->
              fun env ->
                f env;
                g env;
                h env;
                k env
          | fs ->
              let a = Array.of_list fs in
              fun env -> Array.iter (fun f -> f env) a))

and codegen_term ctx (t : mterm) : env -> int =
  match t with
  | Munset -> assert false
  | Mgoto tgt -> fun _ -> tgt
  | Mret -> prof_term "return" (fun _ -> -1)
  | Mif (c, tid, fid) -> (
      match (try ccond_cmp_parts ctx c with Trap.Trap _ -> None) with
      | Some (ck, oa, ob) -> cmp_term ~name:"br-if" ~burns:false ck oa ob tid fid
      | None -> (
          match ccond_safe ctx c with
          | Some cb ->
              prof_term "br-if" (fun env ->
                  c_branch env;
                  if cb env then tid else fid)
          | None ->
              let cc = cexp_safe ctx c in
              prof_term "br-if" (fun env ->
                  Cost.op_branch env.cost;
                  if cc env <> 0L then tid else fid)))
  | Mwhile (c, bodyid, exitid) -> (
      (* One loop iteration: fuel burn, branch charge, condition — in
         the tree-walker's order. *)
      match (try ccond_cmp_parts ctx c with Trap.Trap _ -> None) with
      | Some (ck, oa, ob) -> cmp_term ~name:"br-while" ~burns:true ck oa ob bodyid exitid
      | None -> (
          match ccond_safe ctx c with
          | Some cb ->
              prof_term "br-while" (fun env ->
                  burn env;
                  c_branch env;
                  if cb env then bodyid else exitid)
          | None ->
              let cc = cexp_safe ctx c in
              prof_term "br-while" (fun env ->
                  Machine.burn_fuel env.m;
                  Cost.op_branch env.cost;
                  if cc env = 0L then exitid else bodyid)))
  | Mdowhile (c, headid, exitid) -> (
      match (try ccond_cmp_parts ctx c with Trap.Trap _ -> None) with
      | Some (ck, oa, ob) -> cmp_term ~name:"br-dowhile" ~burns:false ck oa ob headid exitid
      | None -> (
          match ccond_safe ctx c with
          | Some cb ->
              prof_term "br-dowhile" (fun env ->
                  c_branch env;
                  if cb env then headid else exitid)
          | None ->
              let cc = cexp_safe ctx c in
              prof_term "br-dowhile" (fun env ->
                  Cost.op_branch env.cost;
                  if cc env <> 0L then headid else exitid)))
  | Mswitch (e, tbl, default) ->
      let ce = cexp_safe ctx e in
      let ncases = Array.length tbl in
      prof_term "switch" (fun env ->
          let v = ce env in
          Cost.op_branch env.cost;
          let rec find i =
            if i >= ncases then default
            else
              let vs, b = Array.unsafe_get tbl i in
              if arr_mem v vs then b else find (i + 1)
          in
          find 0)

(* ------------------------------------------------------------------ *)
(* Functions.                                                         *)
(* ------------------------------------------------------------------ *)

and compile_fun (cc : t) (fd : I.fundec) : cfun =
  cc.compiles <- cc.compiles + 1;
  let prog = cc.prog in
  (* Slot assignment mirrors the tree-walker's frame layout exactly:
     same needs_memory predicate, same iteration order and alignment,
     so stack addresses are bit-identical. *)
  let needs_memory (v : I.varinfo) =
    v.I.vaddrof || match v.I.vty with I.Tcomp _ | I.Tarray _ -> true | _ -> false
  in
  let vars = fd.I.sformals @ fd.I.slocals in
  let slots = Hashtbl.create 16 in
  let off = ref 0 in
  let nregs = ref 0 in
  List.iter
    (fun (v : I.varinfo) ->
      if needs_memory v then begin
        let a = Kc.Layout.align_of prog v.I.vty in
        off := (!off + a - 1) / a * a;
        Hashtbl.replace slots v.I.vid (Sstk !off);
        off := !off + Kc.Layout.size_of prog v.I.vty
      end
      else begin
        Hashtbl.replace slots v.I.vid (Sreg !nregs);
        incr nregs
      end)
    vars;
  let frame_bytes = !off in
  let binders =
    Array.of_list
      (List.map
         (fun (v : I.varinfo) ->
           match Hashtbl.find slots v.I.vid with
           | Sreg i -> (
               match normf_opt v.I.vty with
               | None -> fun env value -> rset env.regs i value
               | Some nf -> fun env value -> rset env.regs i (nf value))
           | Sstk o ->
               let width = Vmstate.width_of prog v.I.vty in
               fun env value -> Mem.store env.mem ~addr:(env.base + o) ~width value)
         fd.I.sformals)
  in
  let gen = current_gen () in
  let fopt = gen_opt_active gen in
  (* Phase A: structured IR to mid-level blocks. *)
  let dummy = { mid = -1; mis = []; mt = Munset } in
  let lo = { lblocks = []; lnb = 0; lcur = dummy; lacc = [] } in
  let entry = new_mb lo in
  startm lo entry;
  lower_block lo { brk = None; cont = None; scopes = [] } fd.I.fbody;
  sealm lo Mret;
  let mbs = Array.make (max lo.lnb 1) dummy in
  List.iter (fun b -> mbs.(b.mid) <- b) lo.lblocks;
  (* Phase B: peephole + superinstruction formation. *)
  let mbs = if fopt then peephole ~slots ~nregs:!nregs mbs else mbs in
  (* Phase C: closure codegen. *)
  let ctx = { cc; slots; fopt } in
  let blocks =
    Array.mapi
      (fun i (mb : mblock) ->
        match codegen_block_flat ctx ~self:i mb with
        | Some f -> { bid = i; instrs = [||]; term = f }
        | None ->
            {
              bid = i;
              instrs = Array.of_list (List.map (codegen_mi ctx) mb.mis);
              term = codegen_term ctx mb.mt;
            })
      mbs
  in
  {
    cf_body = fd.I.fbody;
    cf_gen = gen;
    cf_nregs = !nregs;
    cf_frame_bytes = frame_bytes;
    cf_blocks = blocks;
    cf_binders = binders;
    cf_ret_norm = normf fd.I.fret;
  }

(* ------------------------------------------------------------------ *)
(* The per-program cache.                                             *)
(* ------------------------------------------------------------------ *)

let create_cache (prog : I.program) : t =
  let n = List.length prog.I.funcs in
  let by_fid = Hashtbl.create (max 16 n) in
  List.iteri (fun i (fd : I.fundec) -> Hashtbl.replace by_fid fd.I.fid i) prog.I.funcs;
  let globals, _brk = Vmstate.global_layout prog in
  { prog; by_fid; cfuns = Array.make (max n 1) None; globals; compiles = 0 }

(* One compiled program per [I.program], keyed by physical identity.
   The ephemeron keeps the key weak: when a fuzz case's program dies,
   its compiled code goes with it. The mutex covers parallel fuzz
   workers booting programs concurrently (each worker has its own
   programs; only the table itself is shared). *)
module ProgTbl = Ephemeron.K1.Make (struct
  type nonrec t = I.program

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let cache_tbl : t ProgTbl.t = ProgTbl.create 16
let cache_lock = Mutex.create ()

let of_program (prog : I.program) : t =
  Mutex.lock cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_lock)
    (fun () ->
      match ProgTbl.find_opt cache_tbl prog with
      | Some c -> c
      | None ->
          let c = create_cache prog in
          ProgTbl.add cache_tbl prog c;
          c)

let call (cc : t) (st : Vmstate.t) (fd : I.fundec) (argv : int64 list) : int64 =
  call_fd cc st fd (Array.of_list argv)

let install (st : Vmstate.t) : unit =
  let cc = of_program st.Vmstate.prog in
  st.Vmstate.run_fn <- Some (fun st fd argv -> call cc st fd argv)

let compiled_functions (cc : t) : int =
  Array.fold_left (fun acc c -> match c with Some _ -> acc + 1 | None -> acc) 0 cc.cfuns

let compilations (cc : t) : int = cc.compiles

(* Static discharge of Deputy checks.

   A structured abstract interpretation over the statement tree (KC
   has no goto, so no CFG is needed): {!Facts} flow forward through
   each function; every check that the incoming facts prove is
   deleted, every kept check contributes its own fact (so identical
   checks later on the same path are deduplicated).

   This pass is what makes the hbench *bandwidth* loops in Table 1
   come out near 1.0: the `for (i = 0; i < n; i++)` guard proves both
   bounds of `buf[i]`, so the loop body carries no residual checks. *)

module I = Kc.Ir

type stats = { mutable discharged : int; mutable kept : int }

let new_stats () = { discharged = 0; kept = 0 }

(* ------------------------------------------------------------------ *)
(* Discharge decision.                                                *)
(* ------------------------------------------------------------------ *)

let provable (facts : Facts.t) (ck : I.check) : bool =
  match ck with
  | I.Ck_nonnull e -> (
      match (Annot.strip_widening e).I.e with
      | I.Eaddrof _ | I.Estartof _ | I.Estr _ | I.Efun _ -> true
      | _ -> (
          match Facts.as_stable_var e with
          | Some v -> Facts.is_nonnull facts v
          | None -> false))
  | I.Ck_le (e1, e2) -> (
      if Annot.exp_equal e1 e2 then true
      else
        match (Facts.as_const e1, Facts.as_stable_var e1, Facts.as_const e2, Facts.as_stable_var e2) with
        | Some c1, _, Some c2, _ -> c1 <= c2
        | Some c, _, None, Some v -> (
            match Facts.lower_bound facts v with Some lo -> lo >= c | None -> false)
        | None, Some v, Some c, _ -> (
            match Facts.best_upper_const facts v with Some u -> Int64.sub u 1L <= c | None -> false)
        | None, Some v, None, Some w -> Facts.has_upper_var facts v w
        | _ -> false)
  | I.Ck_lt (e1, e2) -> (
      match (Facts.as_const e1, Facts.as_stable_var e1, Facts.as_const e2, Facts.as_stable_var e2) with
      | Some c1, _, Some c2, _ -> c1 < c2
      | None, Some v, Some c, _ -> (
          match Facts.best_upper_const facts v with Some u -> u <= c | None -> false)
      | None, Some v, None, Some w -> Facts.has_upper_var facts v w
      | Some c, _, None, Some w -> (
          match Facts.lower_bound facts w with Some lo -> lo >= Int64.add c 1L | None -> false)
      | _ -> false)
  | I.Ck_nt_next _ -> false
  | I.Ck_not_atomic -> false

(* The fact a passed check establishes. *)
let assume_check (ck : I.check) (facts : Facts.t) : Facts.t =
  match ck with
  | I.Ck_nonnull e -> (
      match Facts.as_stable_var e with
      | Some v -> Facts.add_nonnull v.I.vid facts
      | None -> facts)
  | I.Ck_le (e1, e2) -> (
      match (Facts.as_const e1, Facts.as_stable_var e1, Facts.as_const e2, Facts.as_stable_var e2) with
      | Some c, _, None, Some v -> Facts.add_lower v.I.vid c facts
      | None, Some v, Some c, _ -> Facts.add_upper v.I.vid (Facts.Bconst (Int64.add c 1L)) facts
      | _ -> facts)
  | I.Ck_lt (e1, e2) -> (
      match (Facts.as_const e1, Facts.as_stable_var e1, Facts.as_const e2, Facts.as_stable_var e2) with
      | None, Some v, Some c, _ -> Facts.add_upper v.I.vid (Facts.Bconst c) facts
      | None, Some v, None, Some w -> Facts.add_upper v.I.vid (Facts.Bvar w.I.vid) facts
      | Some c, _, None, Some w -> Facts.add_lower w.I.vid (Int64.add c 1L) facts
      | _ -> facts)
  | I.Ck_nt_next _ | I.Ck_not_atomic -> facts

(* ------------------------------------------------------------------ *)
(* Write analysis for loop bodies.                                    *)
(* ------------------------------------------------------------------ *)

type write_kind = Inc | Other

let loop_writes (blocks : I.block list) : (int, write_kind) Hashtbl.t =
  let writes = Hashtbl.create 16 in
  let note vid kind =
    match Hashtbl.find_opt writes vid with
    | Some Other -> ()
    | Some Inc -> if kind = Other then Hashtbl.replace writes vid Other
    | None -> Hashtbl.replace writes vid kind
  in
  let check_instr (i : I.instr) =
    match i with
    | I.Iset ((I.Lvar v, []), e) -> (
        match (Annot.strip_widening e).I.e with
        | I.Ebinop (Kc.Ast.Add, l, r)
          when (match Facts.as_stable_var l with Some w -> w.I.vid = v.I.vid | None -> false)
               && (match Facts.as_const r with Some k -> k >= 0L | None -> false) ->
            note v.I.vid Inc
        | _ -> note v.I.vid Other)
    | I.Iset _ -> ()
    | I.Icall (Some (I.Lvar v, []), _, _) -> note v.I.vid Other
    | I.Icall _ | I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> ()
  in
  List.iter (fun b -> I.iter_instrs check_instr b) blocks;
  writes

(* Facts from [entry] that survive any number of loop iterations. *)
let preserve_through_loop (entry : Facts.t) (blocks : I.block list) : Facts.t =
  let writes = loop_writes blocks in
  let written vid = Hashtbl.mem writes vid in
  let only_incremented vid = Hashtbl.find_opt writes vid = Some Inc in
  {
    Facts.lower =
      Facts.IntMap.filter
        (fun vid _ -> (not (written vid)) || only_incremented vid)
        entry.Facts.lower;
    Facts.upper =
      Facts.IntMap.filter_map
        (fun vid bs ->
          if written vid then None
          else begin
            let bs =
              Facts.BoundSet.filter
                (function Facts.Bconst _ -> true | Facts.Bvar w -> not (written w))
                bs
            in
            if Facts.BoundSet.is_empty bs then None else Some bs
          end)
        entry.Facts.upper;
    Facts.nonnull =
      Facts.IntSet.filter
        (fun vid -> (not (written vid)) || only_incremented vid)
        entry.Facts.nonnull;
  }

let rec has_direct_break (b : I.block) : bool =
  List.exists
    (fun (s : I.stmt) ->
      match s.I.sk with
      | I.Sbreak -> true
      | I.Sif (_, b1, b2) -> has_direct_break b1 || has_direct_break b2
      | I.Sblock b1 | I.Sdelayed b1 | I.Strusted b1 -> has_direct_break b1
      | I.Swhile _ | I.Sdowhile _ | I.Sswitch _ -> false (* break binds inner *)
      | I.Sinstr _ | I.Scontinue | I.Sreturn _ -> false)
    b

(* ------------------------------------------------------------------ *)
(* The rewriting pass.                                                *)
(* ------------------------------------------------------------------ *)

type flow = Fall of Facts.t | Term

let join_flow a b =
  match (a, b) with
  | Term, x | x, Term -> x
  | Fall f1, Fall f2 -> Fall (Facts.join f1 f2)

let allocators = [ "kmalloc"; "kzalloc"; "kmem_cache_alloc"; "vmalloc"; "alloc_pages" ]

let rec opt_block stats (facts : Facts.t) (b : I.block) : I.block * flow =
  let rec go facts acc = function
    | [] -> (List.rev acc, Fall facts)
    | s :: rest -> (
        match opt_stmt stats facts s with
        | stmts, Fall facts' -> go facts' (List.rev_append stmts acc) rest
        | stmts, Term ->
            (* The rest of the block is dead for fact purposes; keep
               it unoptimized-but-rewritten with empty facts. *)
            let rest', _ = opt_block stats Facts.top rest in
            (List.rev acc @ stmts @ rest', Term))
  in
  go facts [] b

and opt_stmt stats (facts : Facts.t) (s : I.stmt) : I.stmt list * flow =
  match s.I.sk with
  | I.Sinstr (I.Icheck (ck, _reason)) ->
      if provable facts ck then begin
        stats.discharged <- stats.discharged + 1;
        ([], Fall facts)
      end
      else begin
        stats.kept <- stats.kept + 1;
        ([ s ], Fall (assume_check ck facts))
      end
  | I.Sinstr (I.Iset ((I.Lvar v, []), e)) -> ([ s ], Fall (Facts.assign v e facts))
  | I.Sinstr (I.Iset _) -> ([ s ], Fall facts)
  | I.Sinstr (I.Icall (ret, target, _)) ->
      let facts =
        match ret with
        | Some (I.Lvar v, []) when Facts.stable v ->
            let facts = Facts.kill_var v.I.vid facts in
            let is_alloc = match target with I.Direct n -> List.mem n allocators | _ -> false in
            if is_alloc then Facts.add_nonnull v.I.vid facts else facts
        | _ -> facts
      in
      ([ s ], Fall facts)
  | I.Sinstr (I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _) -> ([ s ], Fall facts)
  | I.Sif (c, b1, b2) ->
      let b1', f1 = opt_block stats (Facts.assume c true facts) b1 in
      let b2', f2 = opt_block stats (Facts.assume c false facts) b2 in
      ([ { s with I.sk = I.Sif (c, b1', b2') } ], join_flow f1 f2)
  | I.Swhile (c, body, step) ->
      let head = preserve_through_loop facts [ body; step ] in
      let body_in = Facts.assume c true head in
      let body', body_out = opt_block stats body_in body in
      let step_in = match body_out with Fall f -> Facts.join f head | Term -> head in
      let step', _ = opt_block stats step_in step in
      let after = if has_direct_break body then head else Facts.assume c false head in
      ([ { s with I.sk = I.Swhile (c, body', step') } ], Fall after)
  | I.Sdowhile (body, c) ->
      let head = preserve_through_loop facts [ body ] in
      let body', _ = opt_block stats (Facts.join facts head) body in
      let after = if has_direct_break body then head else Facts.assume c false head in
      ([ { s with I.sk = I.Sdowhile (body', c) } ], Fall after)
  | I.Sswitch (e, cases) ->
      (* Sequential case optimization honoring fallthrough; the state
         after the switch conservatively drops facts about anything
         written inside. *)
      let case_bodies = List.map (fun (c : I.case) -> c.I.cbody) cases in
      let after = preserve_through_loop facts case_bodies in
      let _, cases' =
        List.fold_left
          (fun (fall_in, acc) (c : I.case) ->
            let case_in = join_flow (Fall facts) fall_in in
            let in_facts = match case_in with Fall f -> f | Term -> facts in
            let body', out = opt_block stats in_facts c.I.cbody in
            (out, { c with I.cbody = body' } :: acc))
          (Term, []) cases
      in
      ([ { s with I.sk = I.Sswitch (e, List.rev cases') } ], Fall after)
  | I.Sbreak | I.Scontinue | I.Sreturn _ -> ([ s ], Term)
  | I.Sblock b ->
      let b', f = opt_block stats facts b in
      ([ { s with I.sk = I.Sblock b' } ], f)
  | I.Sdelayed b ->
      let b', f = opt_block stats facts b in
      ([ { s with I.sk = I.Sdelayed b' } ], f)
  | I.Strusted b ->
      let b', f = opt_block stats facts b in
      ([ { s with I.sk = I.Strusted b' } ], f)

let optimize_fundec stats (fd : I.fundec) : unit =
  let body', _ = opt_block stats Facts.top fd.I.fbody in
  fd.I.fbody <- body'

(* Remove statically-provable checks from an instrumented program. *)
let optimize_program (prog : I.program) : stats =
  let stats = new_stats () in
  List.iter (optimize_fundec stats) prog.I.funcs;
  stats

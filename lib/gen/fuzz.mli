(** Campaign driver behind [ivy fuzz].

    Runs [count] cases derived from the root [seed]: every fourth case
    is left clean (precision witness), the rest get one fault planted
    from the taxonomy.  Each case goes through the differential
    {!Oracle}; on a violation, the case is optionally shrunk and a
    standalone [.kc] repro (with the verdict in a comment header) is
    written to [out].

    Case [i] is a pure function of [(seed, i)], so the campaign shards
    perfectly across domains: [~jobs] evaluates cases on a {!Par} pool
    and merges the per-case results in index order, making the summary,
    the failure list, the repro filenames and the log lines identical
    to the serial run. *)

type case = {
  c_idx : int;
  c_seed : int;  (** per-case derived seed *)
  c_labels : (Fault.kind * string) list;
  c_violations : Oracle.violation list;
  c_repro : string option;  (** path of the shrunk repro file, if written *)
}

type summary = {
  s_seed : int;
  s_count : int;
  s_clean : int;  (** cases generated without a fault *)
  s_injected : (Fault.kind * int) list;  (** per-kind planted count *)
  s_detected : (Fault.kind * int) list;  (** per-kind credited count *)
  s_failures : case list;  (** cases with a non-empty violation list *)
  s_elapsed : float;  (** wall-clock seconds *)
}

val format_version : int
(** Campaign seed-derivation format, printed in every summary. v2 split
    the fault-injector stream off the per-case seed ([Rng.mix cseed 1])
    — the v1 [cseed + 1] derivation aliased the injector of one case
    with the generator stream of another, correlating cases that must
    be independent. A given (version, seed, count) triple names the
    same campaign forever; old seeds are not reinterpreted silently. *)

val case_program : seed:int -> int -> Prog.t
(** [case_program ~seed i] builds case [i] of a campaign (exposed for
    tests and repro): clean when [i mod 4 = 0], one fault otherwise. *)

val run :
  ?shrink:bool ->
  ?out:string ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** [jobs] (default 1) sizes the {!Par} domain pool; the result is
    independent of it. *)

val render_summary : ?elapsed:bool -> summary -> string
(** Human-readable campaign report. [~elapsed:false] omits the
    wall-clock figure, making the rendering a pure function of the
    campaign — what the determinism tests byte-compare. *)

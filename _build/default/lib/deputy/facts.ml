(* Flow-sensitive facts used to discharge Deputy checks statically.

   Facts are tracked only for "stable" variables: locals and formals
   whose address is never taken (so no call or store through a pointer
   can change them behind our back). Three kinds of facts:

   - lower bounds:  v >= c          (c a 64-bit constant)
   - upper bounds:  v < b           (b a constant or another stable var)
   - non-nullness:  v != 0

   The lattice join is fact intersection (with [min] on lower bounds);
   assignments kill facts, except for the common [v = v + k] pattern,
   which shifts lower bounds and preserves non-nullness. *)

module I = Kc.Ir
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type bound = Bconst of int64 | Bvar of int

module BoundSet = Set.Make (struct
  type t = bound

  let compare = compare
end)

type t = {
  lower : int64 IntMap.t; (* vid -> best-known lower bound *)
  upper : BoundSet.t IntMap.t; (* vid -> strict upper bounds *)
  nonnull : IntSet.t;
}

let top = { lower = IntMap.empty; upper = IntMap.empty; nonnull = IntSet.empty }

let equal a b =
  IntMap.equal Int64.equal a.lower b.lower
  && IntMap.equal BoundSet.equal a.upper b.upper
  && IntSet.equal a.nonnull b.nonnull

(* Join of two paths keeps only facts true on both. *)
let join a b =
  {
    lower =
      IntMap.merge
        (fun _ x y -> match (x, y) with Some x, Some y -> Some (min x y) | _ -> None)
        a.lower b.lower;
    upper =
      IntMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y ->
              let i = BoundSet.inter x y in
              if BoundSet.is_empty i then None else Some i
          | _ -> None)
        a.upper b.upper;
    nonnull = IntSet.inter a.nonnull b.nonnull;
  }

(* Is [v] a stable variable (trackable)? *)
let stable (v : I.varinfo) = (not v.I.vglob) && not v.I.vaddrof

let as_stable_var (e : I.exp) : I.varinfo option =
  match (Annot.strip_widening e).I.e with
  | I.Elval (I.Lvar v, []) when stable v -> Some v
  | _ -> None

let as_const (e : I.exp) : int64 option = Annot.const_fold e

(* Remove every fact that mentions [vid] (as subject or as an upper
   bound of another variable). *)
let kill_var vid t =
  {
    lower = IntMap.remove vid t.lower;
    upper =
      IntMap.filter_map
        (fun _ bs ->
          let bs = BoundSet.remove (Bvar vid) bs in
          if BoundSet.is_empty bs then None else Some bs)
        (IntMap.remove vid t.upper);
    nonnull = IntSet.remove vid t.nonnull;
  }

let add_lower vid c t =
  let c = match IntMap.find_opt vid t.lower with Some c0 -> max c0 c | None -> c in
  { t with lower = IntMap.add vid c t.lower }

let add_upper vid b t =
  let bs = match IntMap.find_opt vid t.upper with Some bs -> bs | None -> BoundSet.empty in
  { t with upper = IntMap.add vid (BoundSet.add b bs) t.upper }

let add_nonnull vid t = { t with nonnull = IntSet.add vid t.nonnull }

(* Facts derived from a branch condition being true ([sense]=true) or
   false. Handles comparisons between stable vars and constants/vars,
   conjunction/disjunction (encoded as Econd by elaboration), and
   logical negation. *)
let rec assume (e : I.exp) (sense : bool) (t : t) : t =
  let e = Annot.strip_widening e in
  match e.I.e with
  | I.Eunop (Kc.Ast.Lognot, e1) -> assume e1 (not sense) t
  | I.Econd (a, b, c) when as_const c = Some 0L ->
      (* a && b *)
      if sense then assume b true (assume a true t) else t
  | I.Econd (a, b, c) when as_const b = Some 1L ->
      (* a || c *)
      if sense then t else assume c false (assume a false t)
  | I.Ebinop (op, l, r) -> (
      let flip = function
        | Kc.Ast.Lt -> Kc.Ast.Gt
        | Kc.Ast.Gt -> Kc.Ast.Lt
        | Kc.Ast.Le -> Kc.Ast.Ge
        | Kc.Ast.Ge -> Kc.Ast.Le
        | o -> o
      in
      let negate = function
        | Kc.Ast.Lt -> Some Kc.Ast.Ge
        | Kc.Ast.Le -> Some Kc.Ast.Gt
        | Kc.Ast.Gt -> Some Kc.Ast.Le
        | Kc.Ast.Ge -> Some Kc.Ast.Lt
        | Kc.Ast.Eq -> Some Kc.Ast.Ne
        | Kc.Ast.Ne -> Some Kc.Ast.Eq
        | _ -> None
      in
      let op = if sense then Some op else negate op in
      match op with
      | None -> t
      | Some op -> (
          (* Normalize so the variable is on the left when possible. *)
          let var_left = as_stable_var l and var_right = as_stable_var r in
          let t =
            match (var_left, as_const r, var_right, as_const l) with
            | Some v, Some c, _, _ -> assume_cmp v op (Bconst c) t
            | Some v, None, Some w, _ -> assume_cmp v op (Bvar w.I.vid) t
            | _, _, Some w, Some c -> assume_cmp w (flip op) (Bconst c) t
            | _ -> t
          in
          (* Pointer null tests. *)
          match (op, var_left, as_const r, var_right, as_const l) with
          | Kc.Ast.Ne, Some v, Some 0L, _, _ when I.is_pointer v.I.vty -> add_nonnull v.I.vid t
          | Kc.Ast.Ne, _, _, Some v, Some 0L when I.is_pointer v.I.vty -> add_nonnull v.I.vid t
          | Kc.Ast.Gt, Some v, Some 0L, _, _ when I.is_pointer v.I.vty -> add_nonnull v.I.vid t
          | _ -> t))
  | I.Elval (I.Lvar v, []) when stable v ->
      if sense then
        if I.is_pointer v.I.vty then add_nonnull v.I.vid t else add_lower v.I.vid 1L t
        (* v "truthy": for unsigned or known-nonneg this is v >= 1;
           for general ints only v != 0, which we do not track, so we
           only add the bound when a lower bound of 0 is known. *)
      else if not (I.is_pointer v.I.vty) then add_upper v.I.vid (Bconst 1L) t
      else t
  | _ -> t

and assume_cmp (v : I.varinfo) op (b : bound) (t : t) : t =
  match (op, b) with
  | Kc.Ast.Lt, _ -> add_upper v.I.vid b t
  | Kc.Ast.Le, Bconst c -> add_upper v.I.vid (Bconst (Int64.add c 1L)) t
  | Kc.Ast.Ge, Bconst c -> add_lower v.I.vid c t
  | Kc.Ast.Gt, Bconst c -> add_lower v.I.vid (Int64.add c 1L) t
  | Kc.Ast.Eq, Bconst c -> add_lower v.I.vid c (add_upper v.I.vid (Bconst (Int64.add c 1L)) t)
  | (Kc.Ast.Le | Kc.Ast.Gt | Kc.Ast.Ge | Kc.Ast.Eq | Kc.Ast.Ne), Bvar _ -> t
  | _ -> t

(* Transfer for an assignment [v := e]. *)
let assign (v : I.varinfo) (e : I.exp) (t : t) : t =
  if not (stable v) then t
  else begin
    let e = Annot.strip_widening e in
    (* v = v + k: shift the lower bound, keep non-nullness. *)
    match e.I.e with
    | I.Ebinop (Kc.Ast.Add, l, r)
      when (match as_stable_var l with Some w -> w.I.vid = v.I.vid | None -> false)
           && as_const r <> None ->
        let k = Option.get (as_const r) in
        let old_lower = IntMap.find_opt v.I.vid t.lower in
        let was_nonnull = IntSet.mem v.I.vid t.nonnull in
        let t = kill_var v.I.vid t in
        let t =
          match old_lower with
          | Some c when k >= 0L -> add_lower v.I.vid (Int64.add c k) t
          | _ -> t
        in
        if was_nonnull && k >= 0L then add_nonnull v.I.vid t else t
    | _ -> (
        let t = kill_var v.I.vid t in
        match (as_const e, as_stable_var e) with
        | Some c, _ -> add_lower v.I.vid c (add_upper v.I.vid (Bconst (Int64.add c 1L)) t)
        | None, Some w ->
            (* Copy w's facts to v. *)
            let t =
              match IntMap.find_opt w.I.vid t.lower with
              | Some c -> add_lower v.I.vid c t
              | None -> t
            in
            let t =
              match IntMap.find_opt w.I.vid t.upper with
              | Some bs -> BoundSet.fold (fun b acc -> add_upper v.I.vid b acc) bs t
              | None -> t
            in
            if IntSet.mem w.I.vid t.nonnull then add_nonnull v.I.vid t else t
        | None, None -> (
            match e.I.e with
            | I.Eaddrof _ | I.Estartof _ | I.Estr _ | I.Efun _ -> add_nonnull v.I.vid t
            | _ -> t))
  end

(* Queries. *)
let lower_bound (t : t) (v : I.varinfo) : int64 option = IntMap.find_opt v.I.vid t.lower

let has_upper_var (t : t) (v : I.varinfo) (w : I.varinfo) : bool =
  match IntMap.find_opt v.I.vid t.upper with
  | Some bs -> BoundSet.mem (Bvar w.I.vid) bs
  | None -> false

let best_upper_const (t : t) (v : I.varinfo) : int64 option =
  match IntMap.find_opt v.I.vid t.upper with
  | Some bs ->
      BoundSet.fold
        (fun b acc ->
          match (b, acc) with
          | Bconst c, None -> Some c
          | Bconst c, Some c0 -> Some (min c c0)
          | Bvar _, acc -> acc)
        bs None
  | None -> None

let is_nonnull (t : t) (v : I.varinfo) : bool = IntSet.mem v.I.vid t.nonnull

(** Deterministic splittable PRNG (splitmix64).

    Every random choice the generator makes flows through one of these
    streams, so a campaign is a pure function of its root seed: the same
    [--seed N --count K] invocation reproduces the same programs, the
    same injected faults and the same oracle verdicts on any host.  The
    standard-library [Random] is never used. *)

type t

val create : int -> t
(** Fresh stream from an integer seed. *)

val split : t -> t
(** Independent child stream; advances the parent.  Used to give each
    generated test case its own stream derived from the campaign root. *)

val mix : int -> int -> int
(** [mix seed i] hashes a (seed, index) pair into a per-case seed
    without constructing intermediate streams. *)

val next64 : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t k n] is true with probability k/n. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

examples/annotdb_workflow.mli:

(* Runtime type information for CCount.

   CCount "requires accurate type information when objects are freed,
   copied (memcpy), or cleared (memset)" (paper §2.2): when an object
   dies, the reference counts of everything it pointed to must drop.

   This module derives, for every struct/union tag of a program, the
   byte offsets of its pointer-valued slots, assigns a stable numeric
   type id per tag, and registers the maps with a {!Vm.Machine}. *)

module I = Kc.Ir

type t = {
  prog : I.program;
  ids : (string, int) Hashtbl.t; (* tag -> type id *)
  tags : (int, string) Hashtbl.t; (* type id -> tag *)
  ptr_offsets : (string, int list) Hashtbl.t; (* tag -> pointer slot offsets *)
}

(* Pointer slot offsets of a type placed at [base] bytes. Unions
   contribute their slots only when every member is a pointer
   (otherwise the interpretation is ambiguous and the paper's answer
   is explicit runtime type information at the use site). *)
let rec slots_of_type (prog : I.program) (base : int) (ty : I.ty) : int list =
  match ty with
  | I.Tptr _ -> [ base ]
  | I.Tarray (elt, n) ->
      let esz = Kc.Layout.size_of prog elt in
      List.concat (List.init n (fun i -> slots_of_type prog (base + (i * esz)) elt))
  | I.Tcomp tag ->
      let c = I.comp_find prog tag in
      if c.I.cstruct then
        List.concat_map
          (fun (f : I.fieldinfo) ->
            slots_of_type prog (base + Kc.Layout.field_offset prog f) f.I.fty)
          c.I.cfields
      else if
        c.I.cfields <> []
        && List.for_all (fun (f : I.fieldinfo) -> I.is_pointer f.I.fty) c.I.cfields
      then [ base ]
      else []
  | I.Tvoid | I.Tint _ | I.Tfun _ -> []

let build (prog : I.program) : t =
  let t =
    { prog; ids = Hashtbl.create 32; tags = Hashtbl.create 32; ptr_offsets = Hashtbl.create 32 }
  in
  let tag_list =
    Hashtbl.fold (fun tag _ acc -> tag :: acc) prog.I.comps [] |> List.sort compare
  in
  List.iteri
    (fun i tag ->
      let id = i + 1 in
      Hashtbl.replace t.ids tag id;
      Hashtbl.replace t.tags id tag;
      Hashtbl.replace t.ptr_offsets tag (slots_of_type prog 0 (I.Tcomp tag)))
    tag_list;
  t

let type_id (t : t) (tag : string) : int =
  match Hashtbl.find_opt t.ids tag with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "no type id for tag %s" tag)

let pointer_offsets (t : t) (tag : string) : int list =
  match Hashtbl.find_opt t.ptr_offsets tag with Some l -> l | None -> []

(* How many tags actually carry pointers (the census the paper reports
   as "describe the layout of 32 types"). *)
let tags_with_pointers (t : t) : string list =
  Hashtbl.fold (fun tag offs acc -> if offs <> [] then tag :: acc else acc) t.ptr_offsets []
  |> List.sort compare

(* Register every tag's layout with the machine. *)
let register_with (t : t) (m : Vm.Machine.t) : unit =
  Hashtbl.iter
    (fun tag id ->
      let size = try Kc.Layout.comp_size t.prog (I.comp_find t.prog tag) with _ -> 0 in
      Vm.Machine.register_type m ~type_id:id ~size ~ptr_offsets:(pointer_offsets t tag))
    t.ids

lib/kernel/src_procfs.ml:

lib/kernel/src_mm.ml:

(* Zone domain: difference-bound constraints [x - y <= c] between
   *stable* program variables (Deputy.Facts.stable: locals and formals
   whose address is never taken), plus a distinguished zero variable so
   unary bounds [x <= c] / [x >= c] live in the same matrix.

   Constraints bound the *raw post-norm int64 representation* of each
   variable — exactly what the interval component bounds and what
   Deputy checks compare — so the two halves of the reduced product
   exchange information without sign/width caveats.  The transfer layer
   only ever adds a relational constraint when the syntactic expression
   decomposes to [var + const] with an interval certificate that no
   intermediate result wraps (see Transfer.linear_of_exp); everything
   else havocs, preserving the PR 3 cast-soundness discipline.

   Reduction with intervals happens in two directions:
   - [close_seeded] injects each variable's interval bounds as unary
     constraints before closure, so interval facts participate in
     relational derivations (used at join points, kill points and
     entailment queries);
   - [bounds_of] reads derived unary bounds back out of a (closed)
     zone so the interval component can be tightened.

   Program variable ids are positive (Typecheck starts at 1), so the
   zero variable is safely encoded as -1. *)

type t = Dbm.t

let zero = -1
let top : t = Dbm.top
let is_top = Dbm.is_top
let equal = Dbm.equal
let join = Dbm.join
let widen = Dbm.widen
let narrow = Dbm.narrow
let forget = Dbm.forget
let shift = Dbm.shift
let add_le = Dbm.add
let cardinal = Dbm.cardinal

(* Program variables mentioned by the zone (zero var excluded). *)
let vars (t : t) : int list = List.filter (fun v -> v <> zero) (Dbm.vars t)

(* Derived unary bounds of [v]: (lo, hi) as far as the zone knows. *)
let bounds_of (v : int) (t : t) : int64 option * int64 option =
  let hi = Dbm.find_opt v zero t in
  let lo =
    match Dbm.find_opt zero v t with
    | Some c when not (Int64.equal c Int64.min_int) -> Some (Int64.neg c)
    | _ -> None
  in
  (lo, hi)

type seeds = int -> Interval.t

let no_seeds : seeds = fun _ -> Interval.top

(* Inject interval bounds of [vs] as unary constraints.  [None] when a
   seed contradicts the zone (the state is infeasible). *)
let seed_vars (seeds : seeds) (vs : int list) (t : t) : t option =
  List.fold_left
    (fun acc v ->
      match acc with
      | None -> None
      | Some t -> (
          match seeds v with
          | Interval.Bot -> None
          | Interval.Iv (lo, hi) -> (
              let t =
                match hi with
                | Interval.Fin h -> Dbm.add v zero h t
                | _ -> Some t
              in
              match t with
              | None -> None
              | Some t -> (
                  match lo with
                  | Interval.Fin l when not (Int64.equal l Int64.min_int) ->
                      Dbm.add zero v (Int64.neg l) t
                  | _ -> Some t))))
    (Some t) vs

(* Close the zone with each mentioned variable's interval bounds
   seeded in, materializing derived constraints (both relational and
   unary) into the stored matrix.  Used on join inputs and before
   killing a variable, never on widening results.  [over] extends the
   closure universe with variables this side only knows as intervals —
   at a join, the other side's zone variables, so a fact one side
   carries relationally and this side carries as an interval (e.g. a
   clamped [todo = 512] meeting the other branch's [todo <= n]) still
   meets in the middle.  [None] = the combined zone+interval state is
   infeasible. *)
let close_seeded ?(over = []) (seeds : seeds) (t : t) : t option =
  if is_top t && over = [] then Some t
  else
    let module IS = Set.Make (Int) in
    let vs = IS.elements (IS.union (IS.of_list (vars t)) (IS.of_list over)) in
    match seed_vars seeds vs t with
    | None -> None
    | Some t -> Dbm.close_over (zero :: vs) t

(* Entailment query: does the zone, reduced with interval seeds, prove
   [x - y <= c]?  The closure universe is extended with the query
   endpoints so purely seeded paths (x <= hx, ly <= y) participate.
   An infeasible state entails everything. *)
let entails_le (seeds : seeds) (x : int) (y : int) (c : int64) (t : t) : bool =
  Dbm.entails_le x y c t
  ||
  let module IS = Set.Make (Int) in
  let universe = IS.add x (IS.add y (IS.of_list (vars t))) in
  let vs = IS.elements universe in
  match seed_vars seeds vs t with
  | None -> true
  | Some t -> (
      match Dbm.close_over (zero :: vs) t with
      | None -> true
      | Some closed -> Dbm.entails_le x y c closed)

let to_string (t : t) : string = Dbm.to_string t

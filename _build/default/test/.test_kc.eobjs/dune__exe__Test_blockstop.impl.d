test/test_blockstop.ml: Alcotest Blockstop Kc List Set String Vm

lib/kc/loc.mli: Format

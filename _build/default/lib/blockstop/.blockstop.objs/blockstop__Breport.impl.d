lib/blockstop/breport.ml: Atomic Bcheck Blocking Callgraph Format Kc List Pointsto Set String

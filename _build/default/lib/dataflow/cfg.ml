(* Control-flow graphs over the structured KC IR.

   KC has no goto, so the CFG is built by a single recursive pass with
   explicit break/continue targets. Basic blocks hold located
   instructions; terminators carry the branching expression where one
   exists. Node 0 is always the entry; there is a single synthetic
   exit node that all returns feed. *)

type terminator =
  | Tjump (* unconditional; single successor *)
  | Tcond of Kc.Ir.exp (* successors: [then; else] *)
  | Tswitch of Kc.Ir.exp (* successors: in case order, then default/join *)
  | Treturn of Kc.Ir.exp option (* successor: exit node *)

type node = {
  nid : int;
  mutable instrs : (Kc.Ir.instr * Kc.Loc.t) list; (* in execution order *)
  mutable term : terminator;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  fname : string;
  mutable nodes : node array;
  entry : int;
  exit_ : int;
}

type builder = { mutable bnodes : node list; mutable count : int }

let new_node b =
  let n = { nid = b.count; instrs = []; term = Tjump; succs = []; preds = [] } in
  b.count <- b.count + 1;
  b.bnodes <- n :: b.bnodes;
  n

let link a b =
  a.succs <- a.succs @ [ b.nid ];
  b.preds <- a.nid :: b.preds

type loop_ctx = { brk : node; cont : node }

(* Process [block] starting in [cur]; returns the node where control
   continues after the block. *)
let rec do_block b (cur : node) (ctx : loop_ctx option) (exit_ : node) (block : Kc.Ir.block) : node
    =
  List.fold_left (fun cur s -> do_stmt b cur ctx exit_ s) cur block

and do_stmt b (cur : node) (ctx : loop_ctx option) (exit_ : node) (s : Kc.Ir.stmt) : node =
  match s.Kc.Ir.sk with
  | Kc.Ir.Sinstr i ->
      cur.instrs <- cur.instrs @ [ (i, s.Kc.Ir.sloc) ];
      cur
  | Kc.Ir.Sif (c, b1, b2) ->
      cur.term <- Tcond c;
      let then_start = new_node b and else_start = new_node b and join = new_node b in
      link cur then_start;
      link cur else_start;
      let then_end = do_block b then_start ctx exit_ b1 in
      let else_end = do_block b else_start ctx exit_ b2 in
      link then_end join;
      link else_end join;
      join
  | Kc.Ir.Swhile (c, body, step) ->
      let head = new_node b in
      link cur head;
      head.term <- Tcond c;
      let body_start = new_node b and step_node = new_node b and join = new_node b in
      link head body_start;
      link head join;
      let loop_ctx = Some { brk = join; cont = step_node } in
      let body_end = do_block b body_start loop_ctx exit_ body in
      link body_end step_node;
      let step_end =
        List.fold_left (fun cur s1 -> do_stmt b cur ctx exit_ s1) step_node step
      in
      link step_end head;
      join
  | Kc.Ir.Sdowhile (body, c) ->
      let body_start = new_node b and cond_node = new_node b and join = new_node b in
      link cur body_start;
      let loop_ctx = Some { brk = join; cont = cond_node } in
      let body_end = do_block b body_start loop_ctx exit_ body in
      link body_end cond_node;
      cond_node.term <- Tcond c;
      link cond_node body_start;
      link cond_node join;
      join
  | Kc.Ir.Sswitch (e, cases) ->
      cur.term <- Tswitch e;
      let join = new_node b in
      let loop_ctx =
        (* break inside switch exits the switch; continue still refers
           to the enclosing loop. *)
        match ctx with
        | Some c -> Some { brk = join; cont = c.cont }
        | None -> Some { brk = join; cont = join (* no enclosing loop; checker rejects *) }
      in
      let case_starts = List.map (fun _ -> new_node b) cases in
      List.iter (fun n -> link cur n) case_starts;
      let has_default = List.exists (fun (c : Kc.Ir.case) -> c.Kc.Ir.cdefault) cases in
      if not has_default then link cur join;
      (* Fallthrough: each case body's end links to the next case start. *)
      let rec wire starts cases =
        match (starts, cases) with
        | [], [] -> ()
        | start :: rest_starts, (c : Kc.Ir.case) :: rest_cases ->
            let body_end = do_block b start loop_ctx exit_ c.Kc.Ir.cbody in
            (match rest_starts with
            | next :: _ -> link body_end next
            | [] -> link body_end join);
            wire rest_starts rest_cases
        | _ -> assert false
      in
      wire case_starts cases;
      join
  | Kc.Ir.Sbreak -> (
      match ctx with
      | Some c ->
          link cur c.brk;
          new_node b (* unreachable continuation *)
      | None -> invalid_arg "break outside loop/switch")
  | Kc.Ir.Scontinue -> (
      match ctx with
      | Some c ->
          link cur c.cont;
          new_node b
      | None -> invalid_arg "continue outside loop")
  | Kc.Ir.Sreturn e ->
      cur.term <- Treturn e;
      link cur exit_;
      new_node b
  | Kc.Ir.Sblock b1 | Kc.Ir.Sdelayed b1 | Kc.Ir.Strusted b1 -> do_block b cur ctx exit_ b1

let build (fd : Kc.Ir.fundec) : t =
  let b = { bnodes = []; count = 0 } in
  let entry = new_node b in
  let exit_ = new_node b in
  let last = do_block b entry None exit_ fd.Kc.Ir.fbody in
  (* Implicit return at the end of the function body. *)
  last.term <- Treturn None;
  link last exit_;
  let nodes = Array.make b.count entry in
  List.iter (fun n -> nodes.(n.nid) <- n) b.bnodes;
  { fname = fd.Kc.Ir.fname; nodes; entry = entry.nid; exit_ = exit_.nid }

let n_nodes cfg = Array.length cfg.nodes
let node cfg i = cfg.nodes.(i)

(* Nodes reachable from the entry, in reverse-postorder. *)
let reverse_postorder (cfg : t) : int list =
  let seen = Array.make (n_nodes cfg) false in
  let order = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs (node cfg i).succs;
      order := i :: !order
    end
  in
  dfs cfg.entry;
  !order

let reachable (cfg : t) : bool array =
  let seen = Array.make (n_nodes cfg) false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs (node cfg i).succs
    end
  in
  dfs cfg.entry;
  seen

(* All instructions of the CFG with their node ids. *)
let all_instrs (cfg : t) : (int * Kc.Ir.instr * Kc.Loc.t) list =
  Array.to_list cfg.nodes
  |> List.concat_map (fun n -> List.map (fun (i, loc) -> (n.nid, i, loc)) n.instrs)

let to_dot (cfg : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" cfg.fname);
  Array.iter
    (fun n ->
      let label =
        Printf.sprintf "B%d (%d instrs)%s" n.nid (List.length n.instrs)
          (match n.term with
          | Tjump -> ""
          | Tcond _ -> " if"
          | Tswitch _ -> " switch"
          | Treturn _ -> " ret")
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" n.nid label);
      List.iter (fun s -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.nid s)) n.succs)
    cfg.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** The shared whole-program analysis context (engine).

    One [Context.t] is the single owner of every expensive
    whole-program artifact: the typed program, {!Blockstop.Pointsto.t}
    and {!Blockstop.Callgraph.t} memoized per points-to mode,
    per-function {!Dataflow.Cfg.t} tables, blocking summaries, absint
    summaries, the deputized view, the refsafe ownership summaries and
    the rc-instrumented CCount view, compiled VM code and the
    interrupt-handler facts from {!Blockstop.Atomic}.

    Since the artifact-graph refactor all of those live in one
    {!Graph} per context: every artifact has a declared key, declared
    dependency edges, and a content hash of its inputs derived from
    the context's {!Fingerprint.table}. Everything is built lazily,
    built at most once per key while its inputs are unchanged, and
    instrumented with build/hit/invalidation counters plus wall-clock
    build timers. {!update} swaps in a re-parsed program and
    invalidates exactly what the edit reaches — the basis of
    [ivy serve]'s incremental re-checking. *)

type t

val create : ?jobs:int -> Kc.Ir.program -> t
(** [jobs] (default 1) sizes the {!Par} pool used by stages that can
    fan out internally (today: {!absint_summaries} solves one SCC
    level's functions in parallel). The context itself must never be
    shared across domains — its graph is single-domain; a parallel
    driver creates one context per worker and aggregates observability
    with {!merge_counters}. *)

val program : t -> Kc.Ir.program

val graph : t -> Graph.t
(** The context's artifact graph (exposed for the serve daemon and
    tests; normal consumers go through the getters below). *)

val program_fingerprint : t -> string
(** Content hash of the whole program (header + every function): the
    input hash of artifacts that read arbitrary bodies. *)

val skeleton_fingerprint : t -> string
(** Content hash of the call/function-pointer projection: the input
    hash of points-to, call graph, blocking and irq-handler facts. *)

(** The declared artifact keys, for consumers that register dependent
    artifacts ({!Ivy.Checks}) or target the invalidate RPC. *)
module Key : sig
  val pointsto : Blockstop.Pointsto.mode -> Graph.key
  val callgraph : Blockstop.Pointsto.mode -> Graph.key
  val blocking : Blockstop.Pointsto.mode -> Graph.key
  val cfg : string -> Graph.key
  val summaries : Graph.key
  val relsum : Graph.key
  val deputized : Graph.key
  val vm_compiled : Graph.key
  val irq_handlers : Graph.key
  val refsafe_summaries : Graph.key
  val ccount_discharged : Graph.key
  val check : string -> Graph.key
end

(** Points-to facts for [mode] (default {!Blockstop.Pointsto.Type_based}),
    built on first request and shared while the call skeleton is
    unchanged. *)
val pointsto : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Pointsto.t

(** Call graph for [mode]; reuses the cached points-to for that mode. *)
val callgraph : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Callgraph.t

(** Unguarded blocking propagation over the cached call graph. *)
val blocking : ?mode:Blockstop.Pointsto.mode -> t -> Blockstop.Blocking.t

(** Control-flow graph of a defined function ([None] for externs),
    cached per function name and keyed by that function's content
    hash. *)
val cfg : t -> string -> Dataflow.Cfg.t option

(** Relational interface summaries ({!Absint.Relsum}) over the base
    program, keyed on the pointer-flow projection digest — warm across
    arithmetic-only edits. Returns the empty map (bypassing the graph)
    when [IVY_ABSINT_DOMAIN] selects the interval-only domain. *)
val relsum_ifaces : t -> Absint.Transfer.ifaces

(** Interprocedural interval summaries ({!Absint.Summary}) over the
    base program, sharing the memoized CFGs (cached; depends on every
    per-function CFG artifact and on the relational interfaces). *)
val absint_summaries : t -> Absint.Transfer.summaries

(** The deputized view of the program: a shallow copy that has been
    instrumented, Facts-optimized and absint-discharged. The context's
    base program is untouched. *)
type deputized = {
  dprog : Kc.Ir.program;
  dreport : Deputy.Dreport.report;  (** instrument + Facts-optimize counters *)
  dstats : Absint.Discharge.stats;  (** absint second-stage discharge *)
}

val deputized : t -> deputized

(** The CCount view of the program: a shallow copy rc-instrumented and
    thinned by the {!Refsafe.Discharge} ownership stage. *)
type ccounted = {
  cprog : Kc.Ir.program;
  cinstr : Ccount.Rc_instrument.stats;  (** instrumentation counters *)
  cinfo : Ccount.Typeinfo.t;  (** RTTI to register before booting [cprog] *)
  crstats : Refsafe.Discharge.stats;  (** refsafe discharge counters *)
}

(** Refsafe ownership summaries ({!Refsafe.Summary}), keyed on the call
    skeleton: arithmetic-only edits keep them warm. *)
val refsafe_summaries : t -> Refsafe.Summary.summaries

(** The memoized CCount view (cached; depends on
    [Key.refsafe_summaries] and the full program digest). *)
val ccount_discharged : t -> ccounted

(** The VM's pre-compiled executable form of the base program
    ({!Vm.Compile}), cached on the context (and globally memoized per
    program by the VM itself). Booting an interpreter on this
    context's program reuses it. *)
val vm_compiled : t -> Vm.Compile.t

(** Functions registered as interrupt handlers (cached). *)
val irq_handlers : t -> Blockstop.Atomic.SS.t

(** Register an artifact family owned by a consumer outside the
    engine: same hit/build/invalidate discipline and counters as the
    built-in artifacts. Allocate the slot once per family. *)
val cached :
  t -> 'a Graph.slot -> name:string -> ?param:string -> ?deps:Graph.key list ->
  fp:string -> (unit -> 'a) -> 'a

(** {2 Incremental update} *)

type update = {
  u_changed : string list;
  u_added : string list;
  u_removed : string list;
  u_header_changed : bool;
  u_unchanged : bool;  (** nothing differed; the old program was kept *)
  u_dropped : int;  (** artifacts push-invalidated by the update *)
}

val update : t -> Kc.Ir.program -> update
(** Swap in a newly parsed version of the program. If every digest
    matches, the old program object is kept (fully warm). Otherwise
    the per-function artifacts whose content hash changed are
    push-invalidated along the declared edges, and whole-program
    artifacts re-key themselves on next access. *)

val invalidate : t -> Graph.key -> int
(** Drop one artifact and its transitive dependents; returns the count. *)

val invalidate_all : t -> int

(** {2 Observability for the bench and [--stats]} *)

type stat = Graph.stat = {
  artifact : string;  (** e.g. ["callgraph(type-based)"] *)
  builds : int;  (** times actually constructed (1 per key if shared) *)
  hits : int;  (** times served from the cache *)
  invalidations : int;  (** stale rebuilds + push-invalidation drops *)
  seconds : float;  (** wall-clock spent constructing *)
}

(** Stats sorted by artifact name. Includes a ["cfg(prefetch-miss)"]
    row when a Par worker had to build a CFG outside the graph. *)
val stats : t -> stat list

val prefetch_misses : t -> int

(** Fold the per-worker stat lists of a parallel run (one context per
    worker) into one list: per-artifact sums, sorted by artifact name —
    deterministic regardless of worker scheduling. *)
val merge_counters : stat list list -> stat list

val pp_stats : Format.formatter -> t -> unit

lib/vm/mem.ml: Bytes Char Int64 String Trap

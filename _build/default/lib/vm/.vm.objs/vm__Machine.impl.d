lib/vm/machine.ml: Alloc Cost Hashtbl List Mem Trap

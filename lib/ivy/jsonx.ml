(* Minimal JSON for the serve daemon's newline-delimited RPC framing.

   The repo renders its report JSON by hand (Report_fmt, Diag) and has
   no JSON dependency; the daemon needs to *parse* requests too, so
   this is the one place with a real (small) parser. [Raw] lets a
   response splice an already-rendered report string without
   re-parsing it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** spliced verbatim when rendering; never parsed *)

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_num (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec render (j : t) : string =
  match j with
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> render_num f
  | Str s -> "\"" ^ escape s ^ "\""
  | List l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ render v) kvs)
      ^ "}"
  | Raw s -> s

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let parse_lit cur lit v =
  if
    cur.pos + String.length lit <= String.length cur.src
    && String.sub cur.src cur.pos (String.length lit) = lit
  then begin
    cur.pos <- cur.pos + String.length lit;
    v
  end
  else fail cur (Printf.sprintf "expected %s" lit)

let parse_string cur : string =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' -> (
        cur.pos <- cur.pos + 1;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            cur.pos <- cur.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
                in
                (* UTF-8 encode the code point (no surrogate pairing:
                   the RPC payloads are ASCII in practice). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail cur (Printf.sprintf "bad escape '\\%c'" c));
            go ())
    | Some c ->
        cur.pos <- cur.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur : float =
  let start = cur.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while
    cur.pos < String.length cur.src && is_num_char cur.src.[cur.pos]
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected number";
  match float_of_string_opt (String.sub cur.src start (cur.pos - start)) with
  | Some f -> f
  | None -> fail cur "bad number"

let rec parse_value cur : t =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some '}' then begin
        cur.pos <- cur.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              cur.pos <- cur.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              cur.pos <- cur.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some ']' then begin
        cur.pos <- cur.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              cur.pos <- cur.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              cur.pos <- cur.pos + 1;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some 't' -> parse_lit cur "true" (Bool true)
  | Some 'f' -> parse_lit cur "false" (Bool false)
  | Some 'n' -> parse_lit cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse (s : string) : t =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member (k : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

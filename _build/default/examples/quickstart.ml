(* Quickstart: the whole pipeline on twenty lines of KC.

   Run with:  dune exec examples/quickstart.exe

   We write a small annotated program, type-check it, let Deputy
   insert (and mostly discharge) its checks, run it on the VM, and
   then watch a buffer overflow become a clean trap instead of silent
   corruption. *)

let source =
  {kc|
void *kmalloc(unsigned long size, int gfp);
void kfree(void * __opt p);
void printk(char * __nullterm fmt, ...);

// A counted buffer: the pointer is valid for exactly `len' ints.
struct intvec {
  int len;
  int * __count(len) data;
};

int vec_sum(struct intvec *v) {
  int s = 0;
  int i;
  for (i = 0; i < v->len; i++) {
    s += v->data[i];
  }
  return s;
}

int main(int overshoot) {
  struct intvec v;
  v.len = 8;
  v.data = kmalloc(8 * 4, 0);
  int i;
  for (i = 0; i < 8; i++) {
    v.data[i] = i;
  }
  printk("sum = %d", vec_sum(&v));
  if (overshoot) {
    // One past the end: Deputy turns this into a clean check failure.
    v.len = 9;
  }
  return vec_sum(&v);
}
|kc}

let () =
  (* 1. Parse and type-check. *)
  let prog = Kc.Typecheck.check_sources [ ("quickstart.kc", source) ] in
  Printf.printf "parsed: %d functions\n" (List.length prog.Kc.Ir.funcs);

  (* 2. Deputy: insert checks, discharge what the flow analysis proves. *)
  let report = Deputy.Dreport.deputize prog in
  Format.printf "%a@.@." Deputy.Dreport.pp report;

  (* 3. Run the good path. *)
  let t = Vm.Builtins.boot prog in
  let ok = Vm.Interp.run t "main" [ 0L ] in
  List.iter print_endline (Vm.Machine.console_lines t.Vm.Interp.m);
  Printf.printf "main(0) = %Ld (%d cycles, %d runtime checks executed)\n\n" ok
    t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles
    t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.checks_executed;

  (* 4. Run the overflowing path: the dependent count catches the lie. *)
  let t2 = Vm.Builtins.boot prog in
  (match Vm.Interp.run t2 "main" [ 1L ] with
  | v -> Printf.printf "main(1) = %Ld (should not happen!)\n" v
  | exception Vm.Trap.Trap (Vm.Trap.Check_failed, msg) ->
      Printf.printf "main(1) trapped cleanly: %s\n" msg);

  (* 5. Erasure semantics: the annotations strip away to plain KC. *)
  let erased = Kc.Pretty.print_program ~erase:true prog in
  let still_ok = Kc.Typecheck.check_sources [ ("erased.kc", erased) ] in
  Printf.printf "\nerased program still compiles: %d functions, no __count anywhere: %b\n"
    (List.length still_ok.Kc.Ir.funcs)
    (not
       (let rec contains i =
          i + 7 <= String.length erased
          && (String.sub erased i 7 = "__count" || contains (i + 1))
        in
        contains 0))

lib/dataflow/cfg.ml: Array Buffer Kc List Printf

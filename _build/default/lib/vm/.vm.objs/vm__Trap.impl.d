lib/vm/trap.ml: Printf

(* Kernel heap allocator: kmalloc/kfree, slab caches, page allocation.

   A bump allocator with per-size free lists over the refcounted heap
   region of {!Mem}. Object granularity is the 16-byte chunk so that
   the CCount shadow counters of two objects never share a chunk. *)

type block_state = Live | Freed

type block = {
  addr : int;
  size : int; (* requested size *)
  rsize : int; (* rounded size actually reserved *)
  mutable state : block_state;
}

type t = {
  mem : Mem.t;
  mutable brk : int; (* bump pointer *)
  free_lists : (int, int list ref) Hashtbl.t; (* rounded size -> addrs *)
  blocks : (int, block) Hashtbl.t; (* addr -> block *)
  mutable live_bytes : int;
  mutable total_allocs : int;
  mutable total_frees : int;
}

let create mem =
  {
    mem;
    brk = Mem.heap_base;
    free_lists = Hashtbl.create 32;
    blocks = Hashtbl.create 1024;
    live_bytes = 0;
    total_allocs = 0;
    total_frees = 0;
  }

let round16 n = max 16 ((n + 15) / 16 * 16)

let free_list t size =
  match Hashtbl.find_opt t.free_lists size with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.free_lists size l;
      l

(* Allocate [size] bytes; returns the address. [zero] clears the
   storage (CCount requires this so that stale bytes are never
   interpreted as references). *)
let alloc t ~size ~zero : int =
  if size <= 0 then Trap.trap Trap.Panic "kmalloc of non-positive size %d" size;
  let rsize = round16 size in
  let fl = free_list t rsize in
  let addr =
    match !fl with
    | a :: rest ->
        fl := rest;
        a
    | [] ->
        let a = t.brk in
        if a + rsize > Mem.heap_base + Mem.heap_size then
          Trap.trap Trap.Panic "out of kernel heap (%d live bytes)" t.live_bytes;
        t.brk <- a + rsize;
        a
  in
  (match Hashtbl.find_opt t.blocks addr with
  | Some b -> Hashtbl.replace t.blocks addr { b with state = Live; size; rsize }
  | None -> Hashtbl.replace t.blocks addr { addr; size; rsize; state = Live });
  Mem.set_valid t.mem addr rsize true;
  if zero then Mem.blit_zero t.mem addr rsize;
  t.live_bytes <- t.live_bytes + rsize;
  t.total_allocs <- t.total_allocs + 1;
  addr

let find_block t addr = Hashtbl.find_opt t.blocks addr

(* Release a block. Raises on double free or freeing a non-block. *)
let free t addr : block =
  match Hashtbl.find_opt t.blocks addr with
  | None -> Trap.trap Trap.Panic "kfree of non-heap address %d" addr
  | Some b when b.state = Freed -> Trap.trap Trap.Double_free "double free at address %d" addr
  | Some b ->
      b.state <- Freed;
      Mem.set_valid t.mem addr b.rsize false;
      let fl = free_list t b.rsize in
      fl := addr :: !fl;
      t.live_bytes <- t.live_bytes - b.rsize;
      t.total_frees <- t.total_frees + 1;
      b

(* Leak a block: CCount's soundness-preserving response to a bad free
   ("on failure, we log an error and (optionally) leak the object"). *)
let leak t addr : unit =
  match Hashtbl.find_opt t.blocks addr with
  | None -> ()
  | Some b ->
      b.state <- Freed;
      (* The storage stays valid (and reachable garbage). *)
      t.total_frees <- t.total_frees + 1

let pages_alloc t ~pages : int =
  let size = pages * 4096 in
  (* Page allocations are aligned by construction: round brk. *)
  t.brk <- (t.brk + 4095) / 4096 * 4096;
  alloc t ~size ~zero:true

let live_blocks t =
  Hashtbl.fold (fun _ b acc -> if b.state = Live then b :: acc else acc) t.blocks []

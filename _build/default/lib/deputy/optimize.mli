(** Static discharge of Deputy checks: a structured abstract
    interpretation over the statement tree with {!Facts}. Checks the
    incoming facts prove are deleted; kept checks contribute their own
    fact (deduplicating identical later checks on the same path). *)

type stats = { mutable discharged : int; mutable kept : int }

val new_stats : unit -> stats

(** Is the check provable from the facts? *)
val provable : Facts.t -> Kc.Ir.check -> bool

(** The fact a passed check establishes. *)
val assume_check : Kc.Ir.check -> Facts.t -> Facts.t

val optimize_fundec : stats -> Kc.Ir.fundec -> unit

(** Remove statically-provable checks from an instrumented program. *)
val optimize_program : Kc.Ir.program -> stats

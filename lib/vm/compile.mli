(** Pre-compiled execution engine.

    Compiles IR functions once into a flat, pre-resolved form — basic
    blocks of instruction closures, variable ids resolved to dense
    register/stack slots, global addresses and field offsets constant
    folded, callees resolved to direct references — and executes that
    with an int-indexed block dispatch loop.

    Strictly observationally equivalent to {!Treewalk}: identical trap
    kinds and messages, results, cycle counts, fuel burns, rodata
    interning order and stack addresses. Only wall-clock time differs.

    Compiled programs are cached per [Kc.Ir.program] (physical
    identity, weakly keyed) and revalidated per function against
    [fbody] identity, so in-place instrumentation passes transparently
    invalidate stale code. *)

type t
(** A compiled program: per-function executable code plus the baked
    global layout. *)

val of_program : Kc.Ir.program -> t
(** The compiled form of a program, memoized per program (physical
    identity, thread-safe, weakly keyed). Functions compile lazily on
    first call. *)

val install : Vmstate.t -> unit
(** Route the state's calls through the compiled engine. *)

val call : t -> Vmstate.t -> Kc.Ir.fundec -> int64 list -> int64
(** Call a function through the compiled engine. Extern fundecs
    dispatch to the builtin table by name, as in {!Treewalk}. *)

val compiled_functions : t -> int
(** Number of functions currently holding compiled code. *)

val compilations : t -> int
(** Total function compilations performed (recompiles included). *)

(** {2 Per-opcode execution profiling}

    Enabled by [IVY_VM_PROFILE=1] in the environment (counting code is
    only generated into closures compiled while the flag is on; when
    off, profiling costs nothing). The table prints to stderr on exit
    when enabled via the environment. *)

val set_profiling : bool -> unit
(** Toggle profiling for subsequently compiled code (tests). *)

val profiling : unit -> bool

val profile_table : unit -> (string * int) list
(** Non-zero opcode counters, sorted by count descending. *)

val render_profile : unit -> string
(** The counter table formatted for display; [""] when all zero. *)

val reset_profile : unit -> unit

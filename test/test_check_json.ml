(* Golden tests locking the `ivy check --json` schema.

   Downstream consumers parse this output, so the exact field set,
   field order, severity spellings, null encoding of absent fix hints,
   the per-analysis "analyses" map (present even when empty) and the
   flattened, sorted "diagnostics" array are all part of the contract.
   If a change here is intentional, update the expected strings AND
   bump whatever consumes the schema. *)

let parse src = Kc.Typecheck.check_sources [ ("golden.kc", src) ]

let render src =
  let ctxt = Engine.Context.create (parse src) in
  let results = Ivy.Checks.run_all ctxt in
  (* mirror the CLI: the deputy counter object rides along whenever the
     absint analysis ran *)
  let deputy =
    if List.mem_assoc "absint" results then Some (Engine.Context.deputized ctxt) else None
  in
  (* likewise the ccount counter object whenever refsafe ran *)
  let ccount =
    if List.mem_assoc "refsafe" results then Some (Engine.Context.ccount_discharged ctxt)
    else None
  in
  Ivy.Report_fmt.render_diags_json ?deputy ?ccount results

(* One diagnostic from each of locksafe (error), errcheck (warning),
   userck (error) and stackcheck (info, null fix_hint): covers every
   severity spelling and both fix_hint encodings. [masked] adds four
   Deputy checks: two constant-index ones the Facts optimizer removes
   and two masked-index ones only the absint interval stage can prove,
   so the "deputy" counter object exercises both discharge paths.
   [leaky] drops its allocation on the n > 3 early return, so the
   seventh "refsafe" array carries a warning and the "ccount" counter
   object (register-allocated pointer locals, nothing instrumented or
   discharged) is locked alongside it. *)
let fixture =
  "void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   long la;\n\
   long lb;\n\
   int risky(int x) { if (x < 0) { return -5; } return 0; }\n\
   int caller(void) { risky(1); return 0; }\n\
   int one(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); return 0; }\n\
   int two(void) { spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb); return 0; }\n\
   int bad(char * __user u) { return *u; }\n\
   long masked(int n) { long a[8]; int k = n & 7; a[2] = 1; a[k] = 5; return a[k]; }\n\
   void *kzalloc(long n, long f);\n\
   void kfree(void *p);\n\
   long leaky(long n) { long *p = kzalloc(16, 0); if (n > 3) { return -22; } kfree(p); return 0; }\n"

let expected =
  "{\"analyses\":{\"blockstop\":[],\"locksafe\":[{\"analysis\":\"locksafe\",\"severity\":\"error\",\"file\":\"golden.kc\",\"line\":7,\"col\":33,\"message\":\"locks la and lb are acquired in both orders (deadlock risk)\",\"fix_hint\":\"always acquire la before lb (or vice versa)\"}],\"stackcheck\":[{\"analysis\":\"stackcheck\",\"severity\":\"info\",\"file\":\"golden.kc\",\"line\":10,\"col\":1,\"message\":\"deepest bounded call chain: 96 bytes (masked)\",\"fix_hint\":null}],\"errcheck\":[{\"analysis\":\"errcheck\",\"severity\":\"warning\",\"file\":\"golden.kc\",\"line\":6,\"col\":20,\"message\":\"caller discards error result of risky\",\"fix_hint\":\"test the result of risky against its error codes\"}],\"userck\":[{\"analysis\":\"userck\",\"severity\":\"error\",\"file\":\"golden.kc\",\"line\":9,\"col\":28,\"message\":\"in bad: dereference of __user pointer (u)\",\"fix_hint\":\"stage the access through copy_from_user/copy_to_user\"}],\"absint\":[{\"analysis\":\"absint\",\"severity\":\"info\",\"file\":\"<builtin>\",\"line\":0,\"col\":0,\"message\":\"discharged 4 of 4 inserted checks (facts 2 + intervals 2 + relational 0); 0 dynamic checks remain\",\"fix_hint\":null},{\"analysis\":\"absint\",\"severity\":\"info\",\"file\":\"golden.kc\",\"line\":10,\"col\":1,\"message\":\"masked: proved 2 of 2 residual checks (7 fixpoint iterations, 0 widening points)\",\"fix_hint\":null}],\"refsafe\":[{\"analysis\":\"refsafe\",\"severity\":\"warning\",\"file\":\"golden.kc\",\"line\":13,\"col\":1,\"message\":\"leaky: missing put of p on error return\",\"fix_hint\":\"release the allocation before the error return\"}]},\"diagnostics\":[{\"analysis\":\"absint\",\"severity\":\"info\",\"file\":\"<builtin>\",\"line\":0,\"col\":0,\"message\":\"discharged 4 of 4 inserted checks (facts 2 + intervals 2 + relational 0); 0 dynamic checks remain\",\"fix_hint\":null},{\"analysis\":\"errcheck\",\"severity\":\"warning\",\"file\":\"golden.kc\",\"line\":6,\"col\":20,\"message\":\"caller discards error result of risky\",\"fix_hint\":\"test the result of risky against its error codes\"},{\"analysis\":\"locksafe\",\"severity\":\"error\",\"file\":\"golden.kc\",\"line\":7,\"col\":33,\"message\":\"locks la and lb are acquired in both orders (deadlock risk)\",\"fix_hint\":\"always acquire la before lb (or vice versa)\"},{\"analysis\":\"userck\",\"severity\":\"error\",\"file\":\"golden.kc\",\"line\":9,\"col\":28,\"message\":\"in bad: dereference of __user pointer (u)\",\"fix_hint\":\"stage the access through copy_from_user/copy_to_user\"},{\"analysis\":\"absint\",\"severity\":\"info\",\"file\":\"golden.kc\",\"line\":10,\"col\":1,\"message\":\"masked: proved 2 of 2 residual checks (7 fixpoint iterations, 0 widening points)\",\"fix_hint\":null},{\"analysis\":\"stackcheck\",\"severity\":\"info\",\"file\":\"golden.kc\",\"line\":10,\"col\":1,\"message\":\"deepest bounded call chain: 96 bytes (masked)\",\"fix_hint\":null},{\"analysis\":\"refsafe\",\"severity\":\"warning\",\"file\":\"golden.kc\",\"line\":13,\"col\":1,\"message\":\"leaky: missing put of p on error return\",\"fix_hint\":\"release the allocation before the error return\"}],\"deputy\":{\"checks_inserted\":4,\"facts_discharged\":2,\"absint_discharged\":2,\"absint_interval\":2,\"absint_relational\":0,\"residual\":0},\"ccount\":{\"sites_instrumented\":0,\"register_skipped\":2,\"refsafe_discharged\":0,\"residual\":0}}\n"

let test_schema_golden () = Alcotest.(check string) "exact JSON output" expected (render fixture)

let test_quiet_program_shape () =
  (* every analysis key is present (empty array), and the flattened
     diagnostics hold just stackcheck's informational summary *)
  let out = render "int f(void) { return 0; }\n" in
  let starts_with pre s =
    String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre
  in
  Alcotest.(check bool) "leads with the analyses map in registry order" true
    (starts_with "{\"analyses\":{\"blockstop\":[],\"locksafe\":[],\"stackcheck\":[{" out);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "errcheck, userck, absint and refsafe keys present though empty" true
    (contains "\"errcheck\":[]" out && contains "\"userck\":[]" out
    && contains "\"absint\":[]" out && contains "\"refsafe\":[]" out);
  Alcotest.(check bool) "deputy counters present and all zero" true
    (contains
       "\"deputy\":{\"checks_inserted\":0,\"facts_discharged\":0,\"absint_discharged\":0,\"absint_interval\":0,\"absint_relational\":0,\"residual\":0}"
       out);
  Alcotest.(check bool) "ccount counters present and all zero" true
    (contains
       "\"ccount\":{\"sites_instrumented\":0,\"register_skipped\":0,\"refsafe_discharged\":0,\"residual\":0}"
       out);
  Alcotest.(check bool) "single info diagnostic" true
    (contains "\"diagnostics\":[{\"analysis\":\"stackcheck\",\"severity\":\"info\"" out)

let test_json_escaping () =
  (* field order of a single rendered diag, and escaping of quotes *)
  let d =
    Engine.Diag.make ~analysis:"errcheck" ~severity:Engine.Diag.Warning
      ~loc:{ Kc.Loc.file = "a\"b.kc"; line = 3; col = 1 }
      "say \"hi\"\n"
  in
  Alcotest.(check string) "escaped and ordered"
    "{\"analysis\":\"errcheck\",\"severity\":\"warning\",\"file\":\"a\\\"b.kc\",\"line\":3,\"col\":1,\"message\":\"say \\\"hi\\\"\\n\",\"fix_hint\":null}"
    (Engine.Diag.to_json d)

let () =
  Alcotest.run "check-json"
    [
      ( "golden",
        [
          Alcotest.test_case "full fixture" `Quick test_schema_golden;
          Alcotest.test_case "quiet program shape" `Quick test_quiet_program_shape;
          Alcotest.test_case "escaping and field order" `Quick test_json_escaping;
        ] );
    ]

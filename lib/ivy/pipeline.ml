(* The Ivy pipeline: load the corpus (+ workloads), apply an
   instrumentation mode, boot the VM, run entry points, and measure
   deterministic cycle counts.

   This is the library's main entry point for downstream users: a
   one-stop API over the frontend, the analyses and the VM. *)

type mode =
  | Base (* no instrumentation *)
  | Deputy (* type/memory safety checks (hybrid, optimized) *)
  | Deputy_unoptimized (* ablation: no static discharge *)
  | Deputy_absint (* Facts optimizer + absint interval discharge *)
  | Ccount of Vm.Cost.profile (* refcounted frees *)
  | Ccount_refsafe of Vm.Cost.profile (* refcounted frees, refsafe-discharged updates *)
  | Blockstop_guarded (* BlockStop runtime checks compiled in *)

type run = {
  mode : mode;
  prog : Kc.Ir.program;
  interp : Vm.Interp.t;
  deputy_report : Deputy.Dreport.report option;
  absint_stats : Absint.Discharge.stats option;
  ccount_report : Ccount.Creport.report option;
}

let mode_to_string = function
  | Base -> "base"
  | Deputy -> "deputy"
  | Deputy_unoptimized -> "deputy-unoptimized"
  | Deputy_absint -> "deputy-absint"
  | Ccount Vm.Cost.Up -> "ccount-up"
  | Ccount Vm.Cost.Smp_p4 -> "ccount-smp"
  | Ccount_refsafe Vm.Cost.Up -> "ccount-refsafe-up"
  | Ccount_refsafe Vm.Cost.Smp_p4 -> "ccount-refsafe-smp"
  | Blockstop_guarded -> "blockstop-guarded"

(* Build a fresh program + VM in the given mode. [workloads] appends
   the benchmark unit; [fixed_frees] picks the corpus variant. *)
let prepare ?(workloads = true) ?(fixed_frees = true) (mode : mode) : run =
  let load () =
    if workloads then Kernel.Workloads.load ~fixed_frees ~fresh:true ()
    else Kernel.Corpus.load ~fixed_frees ()
  in
  match mode with
  | Base ->
      let prog = load () in
      let interp = Vm.Builtins.boot prog in
      { mode; prog; interp; deputy_report = None; absint_stats = None; ccount_report = None }
  | Deputy ->
      let prog = load () in
      let report = Deputy.Dreport.deputize ~optimize:true prog in
      let interp = Vm.Builtins.boot prog in
      {
        mode;
        prog;
        interp;
        deputy_report = Some report;
        absint_stats = None;
        ccount_report = None;
      }
  | Deputy_unoptimized ->
      let prog = load () in
      let report = Deputy.Dreport.deputize ~optimize:false prog in
      let interp = Vm.Builtins.boot prog in
      {
        mode;
        prog;
        interp;
        deputy_report = Some report;
        absint_stats = None;
        ccount_report = None;
      }
  | Deputy_absint ->
      let prog = load () in
      let report = Deputy.Dreport.deputize ~optimize:true prog in
      let stats = Absint.Discharge.run prog in
      let interp = Vm.Builtins.boot prog in
      {
        mode;
        prog;
        interp;
        deputy_report = Some report;
        absint_stats = Some stats;
        ccount_report = None;
      }
  | Ccount profile ->
      let prog = load () in
      let interp, report = Ccount.Creport.ccount_boot ~profile prog in
      {
        mode;
        prog;
        interp;
        deputy_report = None;
        absint_stats = None;
        ccount_report = Some report;
      }
  | Ccount_refsafe profile ->
      let prog = load () in
      let interp, report = Ccount.Creport.ccount_boot ~profile ~refsafe:true prog in
      {
        mode;
        prog;
        interp;
        deputy_report = None;
        absint_stats = None;
        ccount_report = Some report;
      }
  | Blockstop_guarded ->
      let prog = load () in
      ignore (Blockstop.Bcheck.guard_functions prog Kernel.Corpus.blockstop_guards);
      let interp = Vm.Builtins.boot prog in
      { mode; prog; interp; deputy_report = None; absint_stats = None; ccount_report = None }

(* Boot the kernel. *)
let boot (r : run) : unit = ignore (Vm.Interp.run r.interp Kernel.Corpus.boot_entry [])

let cycles (r : run) : int = r.interp.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles

(* Run an entry point and return (result, cycles spent inside). *)
let run_entry (r : run) (entry : string) (arg : int) : int64 * int =
  let before = cycles r in
  let v = Vm.Interp.run r.interp entry [ Int64.of_int arg ] in
  (v, cycles r - before)

let free_census (r : run) : Vm.Machine.free_census = Vm.Machine.free_census r.interp.Vm.Interp.m

(* Convenience: fresh run, booted. *)
let booted ?workloads ?fixed_frees mode : run =
  let r = prepare ?workloads ?fixed_frees mode in
  boot r;
  r

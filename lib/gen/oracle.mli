(** The static-vs-dynamic differential oracle.

    A generated program is judged on two axes at once:

    - {b static}: one shared {!Engine.Context} runs every registered
      analysis ([Ivy.Checks.run_all]), and a separate parse is deputized
      to collect Deputy's definite static errors;
    - {b dynamic}: five fresh parses execute on the VM — uninstrumented
      (Base), with Deputy runtime checks, with Deputy checks further
      thinned by the {!Absint.Discharge} interval stage, with CCount
      reference counting, and with CCount counter updates thinned by the
      {!Refsafe.Discharge} ownership stage — recording each run's
      outcome and CCount's free census.

    The verdict cross-checks the two sides against the program's
    ground-truth labels:

    - {e soundness}: every injected fault must be flagged by its owning
      analysis (or caught by its owning instrumentation layer);
    - {e precision witness}: a statically clean program must complete
      all three runs without traps, with equal results and a clean free
      census;
    - {e consistency}: the instrumented runs may not disagree with the
      uninstrumented one except in the fault's own failure mode;
    - {e discharge soundness}: the absint-thinned Deputy run must match
      the full Deputy run outcome exactly (same value, or same trap with
      the same message) — a removed check that would have fired shows up
      here as a [Discharge_unsound] violation;
    - {e refsafe soundness}: the refsafe-gated CCount run must match the
      full CCount run exactly (same outcome and same bad-free census) —
      a discharged counter update the census would have observed shows
      up here as a [Refsafe_unsound] violation. *)

type outcome =
  | Completed of int64  (** main returned *)
  | Trapped of Vm.Trap.kind * string

type run_results = {
  base : outcome;
  deputy : outcome;
  deputy_absint : outcome;  (** Deputy checks thinned by {!Absint.Discharge} *)
  ccount : outcome;
  bad_frees : int;  (** CCount free-census [bad] count *)
  ccount_refsafe : outcome;  (** CCount updates thinned by {!Refsafe.Discharge} *)
  rs_bad_frees : int;  (** free-census [bad] count of the gated run *)
}

type violation =
  | Frontend_error of string  (** generated source failed to parse/typecheck *)
  | Missed_fault of Fault.kind * string  (** label not flagged by its owner *)
  | False_alarm of string  (** clean program drew a Warning/Error diag or static error *)
  | Spurious_trap of string  (** a run trapped in a way the labels don't explain *)
  | Result_mismatch of string  (** instrumented and base runs disagree *)
  | Discharge_unsound of string
      (** the absint-thinned run diverged from the full Deputy run *)
  | Refsafe_unsound of string
      (** the refsafe-gated CCount run diverged from the full CCount run *)

type verdict = {
  diags : (string * Engine.Diag.t list) list;  (** per-analysis diagnostics *)
  static_errors : int;  (** Deputy definite violations *)
  runs : run_results option;  (** None when the frontend failed *)
  detected : (Fault.kind * string) list;  (** labels credited as caught *)
  violations : violation list;
}

val violation_to_string : violation -> string

val check_source : name:string -> string -> (Fault.kind * string) list -> verdict
(** [check_source ~name src labels] judges raw KC text carrying the
    given ground-truth labels. *)

val check : Prog.t -> verdict
(** Render and judge a generated program. *)

val passes : Prog.t -> bool
(** [violations = []] — the shrinker's and fuzz loop's pass predicate. *)

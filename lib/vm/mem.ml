(* Flat byte-addressed memory with validity tracking and the CCount
   shadow reference counts.

   Layout (addresses are plain ints; address 0 is the null page):

     0        .. 4095           unmapped (null page)
     4096     .. rodata_end     string literals (read-only data)
     rodata_end .. globals_end  globals
     HEAP_BASE ..               kernel heap (refcounted)
     STACK_BASE ..              interpreter stacks (not refcounted,
                                cf. paper footnote 2: local variables
                                are not tracked)

   Every byte has a validity bit; access to an invalid byte traps like
   a page fault. Out-of-bounds accesses that land in *valid* memory
   are silent corruption, exactly as on real hardware — that is the
   failure mode Deputy's checks are designed to turn into clean traps.

   The shadow array keeps one 8-bit counter per 16-byte chunk (6.25%
   space overhead, as in the paper). Counters saturate modulo 256:
   "bad frees of objects with k*256 references will be missed". *)

let null_page_end = 4096
let rodata_base = 4096
let rodata_size = 1 lsl 20
let static_base = rodata_base + rodata_size
let static_size = 1 lsl 20
let heap_base = static_base + static_size
let heap_size = 1 lsl 24 (* 16 MiB heap *)
let stack_base = heap_base + heap_size
let stack_size = 1 lsl 22 (* 4 MiB of interpreter stacks *)
let total_size = stack_base + stack_size

let chunk_shift = 4 (* 16-byte chunks *)

type t = {
  bytes : Bytes.t;
  valid : Bytes.t; (* 1 byte per address: crude but simple *)
  rc : Bytes.t; (* 1 byte per 16-byte chunk *)
  mutable rc_enabled : bool;
  (* "Bad frees of objects with k*256 references will be missed ...
     For total safety, an overflow check could be used." This is that
     check: trap instead of wrapping. *)
  mutable rc_overflow_trap : bool;
}

let create () =
  {
    bytes = Bytes.make total_size '\000';
    valid = Bytes.make total_size '\000';
    rc = Bytes.make (total_size lsr chunk_shift) '\000';
    rc_enabled = false;
    rc_overflow_trap = false;
  }

let in_range addr len = addr >= 0 && len >= 0 && addr + len <= total_size

let set_valid t addr len v =
  if not (in_range addr len) then Trap.trap Trap.Wild_access "map %d+%d out of range" addr len;
  Bytes.fill t.valid addr len (if v then '\001' else '\000')

let is_valid t addr len =
  in_range addr len
  &&
  let rec go i = i >= len || (Bytes.get t.valid (addr + i) <> '\000' && go (i + 1)) in
  go 0

let check_access t addr len what =
  if addr >= 0 && addr < null_page_end then
    Trap.trap Trap.Wild_access "null-page %s at address %d" what addr;
  if not (is_valid t addr len) then
    Trap.trap Trap.Wild_access "%s of %d bytes at unmapped address %d" what len addr

(* Little-endian load/store of 1/2/4/8 bytes.

   The hot paths test the validity plane with one word-wide read —
   the plane keeps a 0/1 byte per address, so a width-wide read of it
   equals the all-ones pattern exactly when every byte is mapped — and
   then move the data with a single unaligned access. Anything else
   (null page, edge of the address space, a hole in the middle of the
   span, odd widths) falls back to the byte loop behind check_access,
   which raises the exact trap the fast path skipped. *)
let load_slow t ~addr ~width ~signed : int64 =
  check_access t addr width "load";
  let v = ref 0L in
  for i = width - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get t.bytes (addr + i))))
  done;
  if signed && width < 8 then begin
    let shift = 64 - (8 * width) in
    Int64.shift_right (Int64.shift_left !v shift) shift
  end
  else !v

let[@inline] load t ~addr ~width ~signed : int64 =
  if addr >= null_page_end && addr + width <= total_size then
    match width with
    | 8 when Bytes.get_int64_ne t.valid addr = 0x0101010101010101L ->
        Bytes.get_int64_le t.bytes addr
    | 4 when Bytes.get_int32_ne t.valid addr = 0x01010101l ->
        let v = Int64.of_int32 (Bytes.get_int32_le t.bytes addr) in
        if signed then v else Int64.logand v 0xFFFFFFFFL
    | 2 when Bytes.get_uint16_ne t.valid addr = 0x0101 ->
        Int64.of_int
          (if signed then Bytes.get_int16_le t.bytes addr else Bytes.get_uint16_le t.bytes addr)
    | 1 when Bytes.get t.valid addr = '\001' ->
        Int64.of_int (if signed then Bytes.get_int8 t.bytes addr else Bytes.get_uint8 t.bytes addr)
    | _ -> load_slow t ~addr ~width ~signed
  else load_slow t ~addr ~width ~signed

let store_slow t ~addr ~width (v : int64) =
  check_access t addr width "store";
  let x = ref v in
  for i = 0 to width - 1 do
    Bytes.set t.bytes (addr + i) (Char.chr (Int64.to_int (Int64.logand !x 0xFFL)));
    x := Int64.shift_right_logical !x 8
  done

let[@inline] store t ~addr ~width (v : int64) =
  if addr >= null_page_end && addr + width <= total_size then
    match width with
    | 8 when Bytes.get_int64_ne t.valid addr = 0x0101010101010101L ->
        Bytes.set_int64_le t.bytes addr v
    | 4 when Bytes.get_int32_ne t.valid addr = 0x01010101l ->
        Bytes.set_int32_le t.bytes addr (Int64.to_int32 v)
    | 2 when Bytes.get_uint16_ne t.valid addr = 0x0101 ->
        Bytes.set_uint16_le t.bytes addr (Int64.to_int v land 0xFFFF)
    | 1 when Bytes.get t.valid addr = '\001' ->
        Bytes.set_uint8 t.bytes addr (Int64.to_int v land 0xFF)
    | _ -> store_slow t ~addr ~width v
  else store_slow t ~addr ~width v

(* Word-wide validity probe and raw blit for the compiled engine's
   fused copy: [valid_fast] is exactly the fast-path guard of
   [load]/[store] (bounds + all-ones validity word); [blit_raw] moves
   bytes with no checks and must only run after both probes pass. A
   same-width load/store round trip writes exactly the source bytes —
   normalization only changes bits the store drops — so the blit is
   the load/store pair, minus the boxing. *)
let[@inline] valid_fast t addr width =
  addr >= null_page_end
  && addr + width <= total_size
  &&
  match width with
  | 8 -> Bytes.get_int64_ne t.valid addr = 0x0101010101010101L
  | 4 -> Bytes.get_int32_ne t.valid addr = 0x01010101l
  | 2 -> Bytes.get_uint16_ne t.valid addr = 0x0101
  | 1 -> Bytes.get t.valid addr = '\001'
  | _ -> false

let[@inline] blit_raw t ~src ~dst ~width =
  match width with
  | 8 -> Bytes.set_int64_le t.bytes dst (Bytes.get_int64_le t.bytes src)
  | 4 -> Bytes.set_int32_le t.bytes dst (Bytes.get_int32_le t.bytes src)
  | 2 -> Bytes.set_uint16_le t.bytes dst (Bytes.get_uint16_le t.bytes src)
  | 1 -> Bytes.set_uint8 t.bytes dst (Bytes.get_uint8 t.bytes src)
  | _ -> Bytes.blit t.bytes src t.bytes dst width

(* Raw block operations used by the allocator and memcpy/memset. *)
let blit_zero t addr len =
  check_access t addr len "memset";
  Bytes.fill t.bytes addr len '\000'

let blit_byte t addr len c =
  check_access t addr len "memset";
  Bytes.fill t.bytes addr len (Char.chr (c land 0xFF))

let blit_copy t ~src ~dst len =
  check_access t src len "memcpy-src";
  check_access t dst len "memcpy-dst";
  Bytes.blit t.bytes src t.bytes dst len

let blit_string t addr s =
  check_access t addr (String.length s) "intern";
  Bytes.blit_string s 0 t.bytes addr (String.length s)

(* ------------------------------------------------------------------ *)
(* Shadow reference counts.                                           *)
(* ------------------------------------------------------------------ *)

let refcounted addr = addr >= heap_base && addr < heap_base + heap_size

let chunk_of addr = addr lsr chunk_shift

let rc_get t addr = Char.code (Bytes.get t.rc (chunk_of addr))

let rc_set t addr v = Bytes.set t.rc (chunk_of addr) (Char.chr (v land 0xFF))

(* Increment the refcount of the chunk containing [target]; wraps at
   256 as in the paper's 8-bit counters. *)
let rc_inc t (target : int64) =
  if t.rc_enabled then begin
    let addr = Int64.to_int target in
    if refcounted addr then begin
      let cur = rc_get t addr in
      if cur = 255 && t.rc_overflow_trap then
        Trap.trap Trap.Rc_overflow "refcount overflow on chunk of address %d" addr;
      rc_set t addr (cur + 1)
    end
  end

let rc_dec t (target : int64) =
  if t.rc_enabled then begin
    let addr = Int64.to_int target in
    if refcounted addr then rc_set t addr (rc_get t addr - 1)
  end

(* Sum of refcounts over an object, for the free-time check. *)
let rc_sum t addr len =
  let first = chunk_of addr and last = chunk_of (addr + len - 1) in
  let s = ref 0 in
  for c = first to last do
    s := !s + Char.code (Bytes.get t.rc c)
  done;
  !s

let rc_clear t addr len =
  let first = chunk_of addr and last = chunk_of (addr + len - 1) in
  for c = first to last do
    Bytes.set t.rc c '\000'
  done

(* Tests for the shared analysis engine (lib/engine): artifacts are
   physically shared across repeated gets and across analyses, the
   per-points-to-mode keying is correct, the hit/build counters are
   observable, and unified diagnostics sort deterministically. *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   long spin_lock_irqsave(long *l);\n\
   void spin_unlock_irqrestore(long *l, long flags);\n\
   void schedule(void) __blocking;\n\
   int request_irq(int irq, int (*handler)(int));\n"

let small_prog () =
  parse
    (preamble
   ^ "long the_lock;\n\
      int helper(int x) { return x + 1; }\n\
      int leaf(void) { schedule(); return 0; }\n\
      int work(void) {\n\
      \  spin_lock(&the_lock);\n\
      \  int r = helper(1);\n\
      \  spin_unlock(&the_lock);\n\
      \  return r;\n\
      }\n\
      int start_kernel(void) { work(); leaf(); return 0; }\n")

let loc file line = Kc.Loc.make ~file ~line ~col:1

(* ------------------------------------------------------------------ *)
(* Physical sharing and per-mode keying                               *)
(* ------------------------------------------------------------------ *)

let test_artifacts_physically_shared () =
  let ctxt = Engine.Context.create (small_prog ()) in
  let cg1 = Engine.Context.callgraph ctxt in
  let cg2 = Engine.Context.callgraph ctxt in
  Alcotest.(check bool) "callgraph physically shared" true (cg1 == cg2);
  let pt1 = Engine.Context.pointsto ctxt in
  let pt2 = Engine.Context.pointsto ctxt in
  Alcotest.(check bool) "pointsto physically shared" true (pt1 == pt2);
  Alcotest.(check bool) "callgraph reuses the cached pointsto" true
    (cg1.Blockstop.Callgraph.pointsto == pt1);
  let bl1 = Engine.Context.blocking ctxt in
  let bl2 = Engine.Context.blocking ctxt in
  Alcotest.(check bool) "blocking physically shared" true (bl1 == bl2);
  Alcotest.(check bool) "blocking reuses the cached callgraph" true
    (bl1.Blockstop.Blocking.cg == cg1);
  let h1 = Engine.Context.irq_handlers ctxt in
  let h2 = Engine.Context.irq_handlers ctxt in
  Alcotest.(check bool) "irq handler facts stable" true
    (Blockstop.Atomic.SS.equal h1 h2)

let test_cfg_cached_per_function () =
  let ctxt = Engine.Context.create (small_prog ()) in
  (match (Engine.Context.cfg ctxt "work", Engine.Context.cfg ctxt "work") with
  | Some c1, Some c2 -> Alcotest.(check bool) "cfg physically shared" true (c1 == c2)
  | _ -> Alcotest.fail "cfg of a defined function should exist");
  Alcotest.(check bool) "extern has no cfg" true (Engine.Context.cfg ctxt "schedule" = None);
  Alcotest.(check bool) "unknown has no cfg" true (Engine.Context.cfg ctxt "nope" = None)

let test_per_mode_keying () =
  let ctxt = Engine.Context.create (small_prog ()) in
  let t = Engine.Context.callgraph ~mode:Blockstop.Pointsto.Type_based ctxt in
  let f = Engine.Context.callgraph ~mode:Blockstop.Pointsto.Field_based ctxt in
  Alcotest.(check bool) "modes are distinct artifacts" true (t != f);
  Alcotest.(check bool) "type-based graph carries its mode" true
    (t.Blockstop.Callgraph.pointsto.Blockstop.Pointsto.mode = Blockstop.Pointsto.Type_based);
  Alcotest.(check bool) "field-based graph carries its mode" true
    (f.Blockstop.Callgraph.pointsto.Blockstop.Pointsto.mode = Blockstop.Pointsto.Field_based);
  (* Asking again per mode returns the same physical values. *)
  Alcotest.(check bool) "type-based cached" true
    (Engine.Context.callgraph ~mode:Blockstop.Pointsto.Type_based ctxt == t);
  Alcotest.(check bool) "field-based cached" true
    (Engine.Context.callgraph ~mode:Blockstop.Pointsto.Field_based ctxt == f)

let stat ctxt name =
  match
    List.find_opt (fun (s : Engine.Context.stat) -> s.Engine.Context.artifact = name)
      (Engine.Context.stats ctxt)
  with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "no stats entry for %s" name)

let test_counters_track_builds_and_hits () =
  let ctxt = Engine.Context.create (small_prog ()) in
  ignore (Engine.Context.callgraph ctxt);
  ignore (Engine.Context.callgraph ctxt);
  ignore (Engine.Context.callgraph ctxt);
  let cg = stat ctxt "callgraph(type-based)" in
  Alcotest.(check int) "one build" 1 cg.Engine.Context.builds;
  Alcotest.(check int) "two hits" 2 cg.Engine.Context.hits;
  let pt = stat ctxt "pointsto(type-based)" in
  Alcotest.(check int) "pointsto built once" 1 pt.Engine.Context.builds

(* All registered analyses over one context build the call graph
   exactly once per mode — the ISSUE's acceptance criterion, as a
   test. *)
let test_run_all_builds_once_per_mode () =
  let ctxt = Engine.Context.create (Kernel.Corpus.load ()) in
  let results = Ivy.Checks.run_all ctxt in
  Alcotest.(check int) "seven analyses ran" 7 (List.length results);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " built once") 1 (stat ctxt name).Engine.Context.builds)
    [
      "callgraph(type-based)"; "callgraph(field-based)"; "pointsto(type-based)";
      "pointsto(field-based)"; "blocking(type-based)"; "irq-handlers";
    ];
  (* annotdb population over the same context adds hits, not builds *)
  ignore (Annotdb.populate_ctxt ctxt);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " still built once") 1
        (stat ctxt name).Engine.Context.builds)
    [ "callgraph(type-based)"; "callgraph(field-based)" ];
  Alcotest.(check bool) "field-based callgraph got a cache hit" true
    ((stat ctxt "callgraph(field-based)").Engine.Context.hits >= 1)

let test_breport_reuses_prebuilt_callgraph () =
  let prog = small_prog () in
  let ctxt = Engine.Context.create prog in
  let cg = Engine.Context.callgraph ctxt in
  let r = Blockstop.Breport.analyze ~cg prog in
  Alcotest.(check int) "edges from the prebuilt graph"
    (Blockstop.Callgraph.n_edges cg) r.Blockstop.Breport.edges;
  Alcotest.(check int) "no extra callgraph build" 1
    (stat ctxt "callgraph(type-based)").Engine.Context.builds;
  (* The prebuilt graph's mode wins over the [mode] argument. *)
  let r2 = Blockstop.Breport.analyze ~mode:Blockstop.Pointsto.Field_based ~cg prog in
  Alcotest.(check bool) "report mode comes from the prebuilt graph" true
    (r2.Blockstop.Breport.mode = Blockstop.Pointsto.Type_based)

(* ------------------------------------------------------------------ *)
(* Unified diagnostics                                                *)
(* ------------------------------------------------------------------ *)

let test_diag_sort_deterministic () =
  let d ?(severity = Engine.Diag.Warning) analysis file line msg =
    Engine.Diag.make ~severity ~analysis ~loc:(loc file line) msg
  in
  let unsorted =
    [
      d "userck" "b.kc" 9 "later file";
      d "stackcheck" "a.kc" 12 "same line, later analysis";
      d "blockstop" "a.kc" 12 "same line, earlier analysis";
      d "errcheck" "a.kc" 3 "earlier line";
      d "errcheck" "a.kc" 3 "earlier line" (* exact duplicate *);
    ]
  in
  let sorted = Engine.Diag.sort unsorted in
  let keys =
    List.map (fun (x : Engine.Diag.t) -> (x.Engine.Diag.loc.Kc.Loc.file,
                                          x.Engine.Diag.loc.Kc.Loc.line,
                                          x.Engine.Diag.analysis))
      sorted
  in
  Alcotest.(check (list (triple string int string)))
    "file, then line, then analysis; duplicates dropped"
    [
      ("a.kc", 3, "errcheck");
      ("a.kc", 12, "blockstop");
      ("a.kc", 12, "stackcheck");
      ("b.kc", 9, "userck");
    ]
    keys;
  (* Sorting is idempotent and order-insensitive. *)
  Alcotest.(check bool) "idempotent" true (Engine.Diag.sort sorted = sorted);
  Alcotest.(check bool) "input order irrelevant" true
    (Engine.Diag.sort (List.rev unsorted) = sorted)

let test_run_all_diags_sorted () =
  let ctxt = Engine.Context.create (Kernel.Corpus.load ()) in
  let results = Ivy.Checks.run_all ctxt in
  let flat = Ivy.Checks.diags results in
  Alcotest.(check bool) "flattened list is sorted" true (Engine.Diag.sort flat = flat);
  List.iter
    (fun (name, ds) ->
      Alcotest.(check bool) (name ^ " per-analysis list is sorted") true
        (Engine.Diag.sort ds = ds))
    results

let test_run_all_only_filter () =
  let ctxt = Engine.Context.create (small_prog ()) in
  let results = Ivy.Checks.run_all ~only:[ "errcheck"; "userck" ] ctxt in
  Alcotest.(check (list string)) "only the selected analyses" [ "errcheck"; "userck" ]
    (List.map fst results);
  Alcotest.check_raises "unknown analysis rejected"
    (Ivy.Checks.Unknown_analysis "nope") (fun () ->
      ignore (Ivy.Checks.run_all ~only:[ "nope" ] ctxt))

let test_diag_json () =
  let d =
    Engine.Diag.make ~severity:Engine.Diag.Error ~analysis:"userck"
      ~loc:(loc "a \"quoted\".kc" 7) ~fix_hint:"line1\nline2" "bad\tflow"
  in
  let j = Engine.Diag.to_json d in
  Alcotest.(check string) "escapes and fields"
    "{\"analysis\":\"userck\",\"severity\":\"error\",\"file\":\"a \\\"quoted\\\".kc\",\"line\":7,\"col\":1,\"message\":\"bad\\tflow\",\"fix_hint\":\"line1\\nline2\"}"
    j;
  let plain = Engine.Diag.make ~analysis:"x" ~loc:Kc.Loc.dummy "m" in
  Alcotest.(check bool) "missing hint is null" true
    (String.length (Engine.Diag.to_json plain) > 0
    && String.sub (Engine.Diag.to_json plain)
         (String.length (Engine.Diag.to_json plain) - 16) 16
       = "\"fix_hint\":null}")

(* The seeded staging drivers from the experiments, through the
   unified interface: the engine surfaces the same findings the
   standalone analyses report. *)
let test_check_finds_seeded_bugs () =
  let prog =
    parse
      (preamble
     ^ "long lock_a;\nlong lock_b;\n\
        int path1(void) { spin_lock(&lock_a); spin_lock(&lock_b); spin_unlock(&lock_b); spin_unlock(&lock_a); return 0; }\n\
        int path2(void) { spin_lock(&lock_b); spin_lock(&lock_a); spin_unlock(&lock_a); spin_unlock(&lock_b); return 0; }\n")
  in
  let ctxt = Engine.Context.create prog in
  let flat = Ivy.Checks.diags (Ivy.Checks.run_all ctxt) in
  let deadlocks =
    List.filter
      (fun (d : Engine.Diag.t) ->
        d.Engine.Diag.analysis = "locksafe" && d.Engine.Diag.severity = Engine.Diag.Error)
      flat
  in
  Alcotest.(check int) "one deadlock error through the engine" 1 (List.length deadlocks)

let () =
  Alcotest.run "engine"
    [
      ( "sharing",
        [
          Alcotest.test_case "artifacts physically shared" `Quick
            test_artifacts_physically_shared;
          Alcotest.test_case "cfg cached per function" `Quick test_cfg_cached_per_function;
          Alcotest.test_case "per-mode keying" `Quick test_per_mode_keying;
          Alcotest.test_case "counters track builds and hits" `Quick
            test_counters_track_builds_and_hits;
          Alcotest.test_case "run_all builds once per mode" `Quick
            test_run_all_builds_once_per_mode;
          Alcotest.test_case "breport reuses prebuilt callgraph" `Quick
            test_breport_reuses_prebuilt_callgraph;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "deterministic sort" `Quick test_diag_sort_deterministic;
          Alcotest.test_case "run_all output sorted" `Quick test_run_all_diags_sorted;
          Alcotest.test_case "--only filter" `Quick test_run_all_only_filter;
          Alcotest.test_case "json rendering" `Quick test_diag_json;
          Alcotest.test_case "seeded bugs via unified check" `Quick
            test_check_finds_seeded_bugs;
        ] );
    ]

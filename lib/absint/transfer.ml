(* Abstract transfer functions over the KC IR, mirroring the VM's
   concrete semantics (lib/vm/interp.ml) operation for operation:

   - every operation result is normed to its static type's width; the
     abstract counterpart is [clamp], which keeps a computed interval
     only when it provably fits the type range and otherwise falls
     back to the whole range (never [meet]: meeting would be unsound
     under wrap-around);
   - binops pick signed/unsigned semantics from the *left* operand's
     type. Intervals bound raw (post-norm) int64 representations, so
     signed reasoning about an unsigned comparison is only sound when
     no representation can be negative — which, post-norm, can only
     happen at width 8. [cmp_refinable] encodes that guard;
   - Deputy checks (Ck_le/Ck_lt) trap on *raw signed 64-bit* compares
     regardless of source types, so proving or assuming a check needs
     no sign guard at all.

   Facts are tracked for "stable" variables only (Facts.stable: locals
   and formals whose address is never taken), which is what makes
   calls and stores through pointers harmless to the environment. *)

module I = Kc.Ir
module A = Kc.Ast

module SM = Map.Make (String)

(* Interprocedural function summaries: name -> abstract return value. *)
type summaries = Aval.t SM.t

let no_summaries : summaries = SM.empty

(* Relational (skeleton-derived) interface facts per function, see
   {!Relsum}: currently whether every return provably yields a
   non-null pointer. *)
type fn_iface = { ret_nonnull : bool }
type ifaces = fn_iface SM.t

let no_ifaces : ifaces = SM.empty

(* Allocators yielding non-null chunks, kept in sync with the list the
   Facts-based optimizer trusts (Deputy.Optimize). *)
let allocators = [ "kmalloc"; "kzalloc"; "kmem_cache_alloc"; "vmalloc"; "alloc_pages" ]

let is_signed = function I.Tint (_, A.Signed) -> true | _ -> false

let ty_range : I.ty -> Interval.t = function
  | I.Tint (k, s) ->
      let w = Kc.Layout.int_size k in
      if w >= 8 then Interval.top
      else if s = A.Signed then
        let half = Int64.shift_left 1L ((8 * w) - 1) in
        Interval.of_bounds (Int64.neg half) (Int64.sub half 1L)
      else Interval.of_bounds 0L (Int64.sub (Int64.shift_left 1L (8 * w)) 1L)
  | _ -> Interval.top

let of_ty ty = Aval.make (ty_range ty) Nullness.top

(* Abstract counterpart of the VM's [norm]: if the computed interval
   fits the type's representable range the operation cannot wrap and
   the interval is exact; otherwise some input may wrap, and the only
   sound answer is the whole range (meet would cut off the wrapped
   values). Zero norms to zero at every width, so [Null] survives. *)
let clamp ty iv = if Interval.leq iv (ty_range ty) then iv else ty_range ty

let norm_aval ty (v : Aval.t) : Aval.t =
  if Interval.leq v.Aval.iv (ty_range ty) then Aval.reduce v
  else
    Aval.reduce
      (Aval.make (ty_range ty)
         (if Nullness.equal v.Aval.nl Nullness.Null then Nullness.Null else Nullness.top))

(* Truthiness of an abstract value ("is it nonzero?"). *)
let truthiness (v : Aval.t) : bool option =
  if Aval.is_bot v then None
  else if Nullness.equal v.Aval.nl Nullness.Null || Interval.equal v.Aval.iv (Interval.const 0L)
  then Some false
  else if Nullness.equal v.Aval.nl Nullness.Nonnull || not (Interval.contains_zero v.Aval.iv)
  then Some true
  else None

(* Signed ordering between interval bounds decides comparisons. *)
let cmp_decide op (a : Interval.t) (b : Interval.t) : bool option =
  match (a, b) with
  | Interval.Bot, _ | _, Interval.Bot -> None
  | Interval.Iv (alo, ahi), Interval.Iv (blo, bhi) -> (
      let le x y = Interval.bound_le x y in
      let lt x y = le x y && not (le y x) in
      match op with
      | A.Lt -> if lt ahi blo then Some true else if le bhi alo then Some false else None
      | A.Le -> if le ahi blo then Some true else if lt bhi alo then Some false else None
      | A.Gt -> if lt bhi alo then Some true else if le ahi blo then Some false else None
      | A.Ge -> if le bhi alo then Some true else if lt ahi blo then Some false else None
      | _ -> None)

let bool_interval = Interval.of_bounds 0L 1L
let abool = function
  | Some true -> Aval.of_const 1L
  | Some false -> Aval.of_const 0L
  | None -> Aval.make bool_interval Nullness.top

(* Is refining this source-level comparison with signed interval
   reasoning sound? Yes when the VM compares signed (left operand's
   type), or when neither side can have a negative representation. *)
let cmp_refinable (ea : I.exp) (va : Aval.t) (vb : Aval.t) =
  is_signed ea.I.ety || (Interval.is_nonneg va.Aval.iv && Interval.is_nonneg vb.Aval.iv)

let stable_var (e : I.exp) : I.varinfo option = Deputy.Facts.as_stable_var e

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let rec eval (env : Env.t) (e : I.exp) : Aval.t =
  match e.I.e with
  | I.Econst n -> Aval.of_const n
  | I.Estr _ | I.Efun _ -> Aval.nonnull
  | I.Eaddrof _ | I.Estartof _ -> Aval.nonnull
  | I.Elval (I.Lvar v, []) when Deputy.Facts.stable v -> (
      match Env.find_opt v.I.vid env with Some a -> a | None -> of_ty v.I.vty)
  | I.Elval _ -> of_ty e.I.ety
  | I.Ecast (ty, e1) -> norm_aval ty (eval env e1)
  | I.Eunop (op, e1) -> eval_unop env e.I.ety op e1
  | I.Ebinop (op, a, b) -> eval_binop env e.I.ety op a b
  | I.Econd (c, t, f) -> (
      (* norm the decided branch too: its static type may differ from
         the Econd's, and the VM norms the selected value to e.ety *)
      match truthiness (eval env c) with
      | Some true -> norm_aval e.I.ety (eval env t)
      | Some false -> norm_aval e.I.ety (eval env f)
      | None -> norm_aval e.I.ety (Aval.join (eval env t) (eval env f)))
  | I.Eself_field _ -> of_ty e.I.ety

and eval_unop env rty op e1 =
  let v = eval env e1 in
  match op with
  | A.Neg ->
      (* -x = 0 iff x = 0 (two's complement: -min_int = min_int <> 0) *)
      norm_aval rty (Aval.make (Interval.neg v.Aval.iv) v.Aval.nl)
  | A.Lognot -> abool (match truthiness v with Some b -> Some (not b) | None -> None)
  | A.Bitnot ->
      (* ~x = -1 - x *)
      norm_aval rty (Aval.make (Interval.sub (Interval.const (-1L)) v.Aval.iv) Nullness.top)

and eval_binop env rty op (ea : I.exp) (eb : I.exp) =
  if I.is_pointer ea.I.ety then
    (* Pointer arithmetic scales by the element size (which needs the
       program's layout); pointer compares follow the integer path. *)
    match op with
    | A.Add | A.Sub -> of_ty rty
    | _ -> eval_int_binop env rty op ea eb
  else eval_int_binop env rty op ea eb

and eval_int_binop env rty op ea eb =
  let va = eval env ea and vb = eval env eb in
  let ia = va.Aval.iv and ib = vb.Aval.iv in
  let signed = is_signed ea.I.ety in
  let nonneg_ok = signed || Interval.is_nonneg ia in
  let arith iv = norm_aval rty (Aval.make iv Nullness.top) in
  match op with
  | A.Add -> arith (Interval.add ia ib)
  | A.Sub -> arith (Interval.sub ia ib)
  | A.Mul -> arith (Interval.mul ia ib)
  | A.Div -> (
      match Deputy.Facts.as_const eb with
      | Some k when k > 0L && nonneg_ok -> arith (Interval.div_pos_const ia k)
      | _ -> of_ty rty)
  | A.Mod -> (
      match Deputy.Facts.as_const eb with
      | Some k when k > 0L && nonneg_ok -> arith (Interval.rem_pos_const ia k)
      | _ -> of_ty rty)
  | A.Shl -> (
      match Deputy.Facts.as_const eb with
      | Some k -> arith (Interval.shl_const ia (Int64.logand k 63L))
      | None -> of_ty rty)
  | A.Shr -> (
      match Deputy.Facts.as_const eb with
      | Some k when nonneg_ok -> arith (Interval.shr_const ia (Int64.logand k 63L))
      | _ -> of_ty rty)
  | A.Bitand -> arith (Interval.band ia ib) (* sign-independent; band guards itself *)
  | A.Bitor ->
      if Interval.is_nonneg ia && Interval.is_nonneg ib then arith (Interval.bor ia ib)
      else of_ty rty
  | A.Bitxor ->
      if Interval.is_nonneg ia && Interval.is_nonneg ib then arith (Interval.bxor ia ib)
      else of_ty rty
  | A.Lt | A.Le | A.Gt | A.Ge ->
      if cmp_refinable ea va vb then abool (cmp_decide op ia ib) else abool None
  | A.Eq ->
      (* raw 64-bit equality, sign-independent *)
      if Aval.is_bot (Aval.meet va vb) then abool (Some false)
      else (
        match (ia, ib) with
        | Interval.Iv (Interval.Fin x, Interval.Fin x'), Interval.Iv (Interval.Fin y, Interval.Fin y')
          when x = x' && y = y' ->
            abool (Some (x = y))
        | _ -> abool None)
  | A.Ne ->
      if Aval.is_bot (Aval.meet va vb) then abool (Some true)
      else (
        match (ia, ib) with
        | Interval.Iv (Interval.Fin x, Interval.Fin x'), Interval.Iv (Interval.Fin y, Interval.Fin y')
          when x = x' && y = y' ->
            abool (Some (x <> y))
        | _ -> abool None)
  | A.Logand -> (
      match (truthiness va, truthiness vb) with
      | Some false, _ | _, Some false -> abool (Some false)
      | Some true, Some true -> abool (Some true)
      | _ -> abool None)
  | A.Logor -> (
      match (truthiness va, truthiness vb) with
      | Some true, _ | _, Some true -> abool (Some true)
      | Some false, Some false -> abool (Some false)
      | _ -> abool None)

(* ------------------------------------------------------------------ *)
(* Linear decomposition for the zone component                        *)
(* ------------------------------------------------------------------ *)

(* [a + b] / [a - b] over int64, [None] on overflow. *)
let checked_add (a : int64) (b : int64) : int64 option =
  let s = Int64.add a b in
  if Int64.logxor a b >= 0L && Int64.logxor a s < 0L then None else Some s

let checked_sub (a : int64) (b : int64) : int64 option =
  if Int64.equal b Int64.min_int then if a < 0L then Some (Int64.sub a b) else None
  else checked_add a (Int64.neg b)

let finite = function Interval.Iv (Interval.Fin _, Interval.Fin _) -> true | _ -> false

(* Raw-exact linear view of [e]: [Some (v, k)] means the raw post-norm
   int64 value of [e] equals [raw(v) + k] in every concrete state the
   environment describes. This is what licenses a zone constraint, so
   the decomposition must survive the VM's norm at every step:

   - widening casts are representation-preserving for free
     (Deputy.Annot.strip_widening, the PR 3 discipline) — handled by
     [stable_var];
   - any other cast is the identity only when the operand's interval
     proves the value fits the target range;
   - [w +- k] is exact only with an interval certificate that the
     computed interval is finite (no int64 saturation) and fits the
     expression's static type (no wrap under norm). Anything else
     havocs. *)
let rec linear_of_exp (env : Env.t) (e : I.exp) : (I.varinfo * int64) option =
  match stable_var e with
  | Some v -> Some (v, 0L)
  | None -> (
      match e.I.e with
      | I.Ecast (ty, e1) ->
          if Interval.leq (eval env e1).Aval.iv (ty_range ty) then linear_of_exp env e1
          else None
      | I.Ebinop ((A.Add | A.Sub) as op, a, b) -> (
          let term, k =
            match (op, Deputy.Facts.as_const a, Deputy.Facts.as_const b) with
            | _, _, Some kb -> (Some a, Some (if op = A.Sub then Int64.neg kb else kb))
            | A.Add, Some ka, _ -> (Some b, Some ka)
            | _ -> (None, None)
          in
          match (term, k) with
          | Some t, Some k when not (Int64.equal k Int64.min_int) || op <> A.Sub -> (
              let iv = Interval.add (eval env t).Aval.iv (Interval.const k) in
              if finite iv && Interval.leq iv (ty_range e.I.ety) then
                match linear_of_exp env t with
                | Some (v, k0) -> (
                    match checked_add k0 k with Some k' -> Some (v, k') | None -> None)
                | None -> None
              else None)
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Zone transfer                                                      *)
(* ------------------------------------------------------------------ *)

(* Record [x - y <= c] and pull derived unary bounds back into the
   interval component.  An infeasible constraint system makes the
   state [Unreachable]. *)
let zone_add_le x y c env =
  Env.tighten_from_zone (Env.map_zone (Zone.add_le x y c) env)

(* Kill a variable's zone constraints, first closing with interval
   seeds so derived consequences survive (e.g. the lower bound a
   clamped copy proved about its source). *)
let zone_kill (v : I.varinfo) env =
  match Env.zone env with
  | Some z when not (Zone.is_top z) ->
      Env.map_zone (fun z -> Some (Zone.forget v.I.vid z)) (Env.close env)
  | _ -> env

(* Relational refinement under raw [ea op eb] ([op] is Le or Lt): add
   the difference constraint when both sides decompose raw-exactly. *)
let relational_cmp op (ea : I.exp) (eb : I.exp) env =
  if (not (Domain.relational ())) || Env.is_unreachable env then env
  else
    let strict = match op with A.Lt -> true | _ -> false in
    let minus_strict c = if strict then checked_sub c 1L else Some c in
    match (linear_of_exp env ea, linear_of_exp env eb) with
    | Some (va, ka), Some (vb, kb) when va.I.vid <> vb.I.vid -> (
        (* raw(va) + ka <= raw(vb) + kb (- strict) *)
        match Option.bind (checked_sub kb ka) minus_strict with
        | Some c -> zone_add_le va.I.vid vb.I.vid c env
        | None -> env)
    | Some (_, ka), Some (_, kb) (* same variable *) -> (
        match Option.bind (checked_sub kb ka) minus_strict with
        | Some c -> if Int64.compare 0L c <= 0 then env else Env.bottom
        | None -> env)
    | Some (va, ka), None -> (
        match Deputy.Facts.as_const eb with
        | Some cb -> (
            match Option.bind (checked_sub cb ka) minus_strict with
            | Some c -> zone_add_le va.I.vid Zone.zero c env
            | None -> env)
        | None -> env)
    | None, Some (vb, kb) -> (
        match Deputy.Facts.as_const ea with
        | Some ca -> (
            match Option.bind (checked_sub kb ca) minus_strict with
            | Some c -> zone_add_le Zone.zero vb.I.vid c env
            | None -> env)
        | None -> env)
    | None, None -> env

(* ------------------------------------------------------------------ *)
(* Branch refinement                                                  *)
(* ------------------------------------------------------------------ *)

(* Remove zero from an interval when it sits at an endpoint. *)
let without_zero = function
  | Interval.Bot -> Interval.Bot
  | Interval.Iv (Interval.Fin 0L, Interval.Fin 0L) -> Interval.Bot
  | Interval.Iv (Interval.Fin 0L, hi) -> Interval.Iv (Interval.Fin 1L, hi)
  | Interval.Iv (lo, Interval.Fin 0L) -> Interval.Iv (lo, Interval.Fin (-1L))
  | iv -> iv

let set_checked (v : I.varinfo) (a : Aval.t) env =
  if Aval.is_bot a then Env.bottom else Env.set v.I.vid (Aval.reduce a) env

(* Refine stable variables under a *raw signed* comparison [a op b]
   known to hold ([op] is Le or Lt). This is exactly the predicate a
   passed Deputy check establishes, so no sign guard is needed. *)
let refine_signed_cmp op (ea : I.exp) (eb : I.exp) env =
  match env with
  | Env.Unreachable -> env
  | _ ->
      let env = relational_cmp op ea eb env in
      if Env.is_unreachable env then env
      else
      let va = eval env ea and vb = eval env eb in
      let strict = match op with A.Lt -> true | _ -> false in
      let env =
        match stable_var ea with
        | Some v -> (
            match vb.Aval.iv with
            | Interval.Bot -> env
            | Interval.Iv (_, bhi) ->
                let hi = if strict then Interval.sat_sub bhi (Interval.Fin 1L) else bhi in
                let cut = Interval.meet va.Aval.iv (Interval.Iv (Interval.Ninf, hi)) in
                set_checked v { va with Aval.iv = cut } env)
        | None -> env
      in
      if Env.is_unreachable env then env
      else
        let va = eval env ea in
        match stable_var eb with
        | Some v -> (
            match va.Aval.iv with
            | Interval.Bot -> env
            | Interval.Iv (alo, _) ->
                let lo = if strict then Interval.sat_add alo (Interval.Fin 1L) else alo in
                let vb = eval env eb in
                let cut = Interval.meet vb.Aval.iv (Interval.Iv (lo, Interval.Pinf)) in
                set_checked v { vb with Aval.iv = cut } env)
        | None -> env

(* Refine under a source-level condition [e] being truthy/falsy. *)
let rec assume env (e : I.exp) (branch : bool) : Env.t =
  match env with
  | Env.Unreachable -> env
  | _ -> (
      match e.I.e with
      | I.Eunop (A.Lognot, e1) -> assume env e1 (not branch)
      | I.Ecast (_, e1) when Deputy.Annot.strip_widening e != e -> assume env e1 branch
      | I.Econd (a, b, c) when Deputy.Facts.as_const c = Some 0L ->
          (* a && b *)
          if branch then assume (assume env a true) b true else env
      | I.Econd (a, b, c) when Deputy.Facts.as_const b = Some 1L ->
          (* a || c *)
          if branch then env else assume (assume env a false) c false
      | I.Ebinop (op, a, b) -> assume_cmp env op a b branch
      | I.Elval _ -> (
          match stable_var e with
          | Some v ->
              let cur = eval env e in
              if branch then
                set_checked v
                  (Aval.meet cur (Aval.make (without_zero cur.Aval.iv) Nullness.Nonnull))
                  env
              else set_checked v (Aval.meet cur (Aval.of_const 0L)) env
          | None -> env)
      | _ -> env)

and assume_cmp env op a b branch =
  let negate = function
    | A.Lt -> Some A.Ge
    | A.Le -> Some A.Gt
    | A.Gt -> Some A.Le
    | A.Ge -> Some A.Lt
    | A.Eq -> Some A.Ne
    | A.Ne -> Some A.Eq
    | _ -> None
  in
  let op = if branch then Some op else negate op in
  match op with
  | None -> env
  | Some op -> (
      let va = eval env a and vb = eval env b in
      match op with
      | A.Eq ->
          (* raw equality: meet the two abstract values into both sides,
             and record it relationally as a pair of Le constraints
             (raw equality is sign-independent, like the checks) *)
          let m = Aval.reduce (Aval.meet va vb) in
          if Aval.is_bot m then Env.bottom
          else
            let env = match stable_var a with Some v -> Env.set v.I.vid m env | None -> env in
            let env = match stable_var b with Some v -> Env.set v.I.vid m env | None -> env in
            let env = relational_cmp A.Le a b env in
            if Env.is_unreachable env then env else relational_cmp A.Le b a env
      | A.Ne ->
          let refine sv other_iv env =
            match sv with
            | Some v when Interval.equal other_iv (Interval.const 0L) ->
                let cur = eval env { I.e = I.Elval (I.Lvar v, []); I.ety = v.I.vty } in
                set_checked v
                  (Aval.meet cur (Aval.make (without_zero cur.Aval.iv) Nullness.Nonnull))
                  env
            | _ -> env
          in
          let env = refine (stable_var a) vb.Aval.iv env in
          if Env.is_unreachable env then env else refine (stable_var b) va.Aval.iv env
      | (A.Lt | A.Le | A.Gt | A.Ge) when cmp_refinable a va vb -> (
          (* reduce to Le/Lt with operands ordered small-to-large *)
          match op with
          | A.Lt -> refine_signed_cmp A.Lt a b env
          | A.Le -> refine_signed_cmp A.Le a b env
          | A.Gt -> refine_signed_cmp A.Lt b a env
          | A.Ge -> refine_signed_cmp A.Le b a env
          | _ -> env)
      | _ -> env)

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

(* Which component of the product proved the check?  The interval rule
   is tried first, so [P_relational] is attributed only to checks the
   zone alone could discharge (the relational rule strictly subsumes
   the interval one: unary seeds make every interval proof a zone
   proof too). *)
type proof = P_interval | P_relational

(* Does the (closed, interval-seeded) zone entail raw [a <= b]? *)
let zone_proves strict (a : I.exp) (b : I.exp) env =
  match Env.zone env with
  | None -> false
  | Some z ->
      let minus_strict c = if strict then checked_sub c 1L else Some c in
      let entails x y c = Zone.entails_le (Env.seeds env) x y c z in
      (match (linear_of_exp env a, linear_of_exp env b) with
      | Some (va, ka), Some (vb, kb) when va.I.vid <> vb.I.vid -> (
          match Option.bind (checked_sub kb ka) minus_strict with
          | Some c -> entails va.I.vid vb.I.vid c
          | None -> false)
      | Some (_, ka), Some (_, kb) -> (
          (* same variable: pure offset arithmetic *)
          match Option.bind (checked_sub kb ka) minus_strict with
          | Some c -> Int64.compare 0L c <= 0
          | None -> false)
      | Some (va, ka), None -> (
          match Deputy.Facts.as_const b with
          | Some cb -> (
              match Option.bind (checked_sub cb ka) minus_strict with
              | Some c -> entails va.I.vid Zone.zero c
              | None -> false)
          | None -> false)
      | None, Some (vb, kb) -> (
          match Deputy.Facts.as_const a with
          | Some ca -> (
              match Option.bind (checked_sub kb ca) minus_strict with
              | Some c -> entails Zone.zero vb.I.vid c
              | None -> false)
          | None -> false)
      | None, None -> false)

(* Does the abstract state prove the check can never fire, and which
   component gets the credit? On an unreachable state every check is
   trivially dead. *)
let provable_why (env : Env.t) (ck : I.check) : proof option =
  match env with
  | Env.Unreachable -> Some P_interval
  | _ -> (
      let ivl ok = if ok then Some P_interval else None in
      let rel strict a b =
        if Domain.relational () && zone_proves strict a b env then Some P_relational else None
      in
      match ck with
      | I.Ck_nonnull e -> ivl (truthiness (eval env e) = Some true)
      | I.Ck_le (a, b) -> (
          let by_iv =
            Deputy.Annot.exp_equal a b
            || (match ((eval env a).Aval.iv, (eval env b).Aval.iv) with
               | Interval.Iv (_, ahi), Interval.Iv (blo, _) -> Interval.bound_le ahi blo
               | _ -> false)
          in
          match ivl by_iv with Some p -> Some p | None -> rel false a b)
      | I.Ck_lt (a, b) -> (
          let by_iv =
            match ((eval env a).Aval.iv, (eval env b).Aval.iv) with
            | Interval.Iv (_, ahi), Interval.Iv (blo, _) ->
                Interval.bound_le ahi blo && not (Interval.bound_le blo ahi)
            | _ -> false
          in
          match ivl by_iv with Some p -> Some p | None -> rel true a b)
      | I.Ck_nt_next _ | I.Ck_not_atomic -> None)

let provable (env : Env.t) (ck : I.check) : bool = provable_why env ck <> None

(* A check that executed without trapping establishes its predicate. *)
let assume_check (env : Env.t) (ck : I.check) : Env.t =
  match env with
  | Env.Unreachable -> env
  | _ -> (
      match ck with
      | I.Ck_nonnull e -> assume env e true
      | I.Ck_le (a, b) -> refine_signed_cmp A.Le a b env
      | I.Ck_lt (a, b) -> refine_signed_cmp A.Lt a b env
      | I.Ck_nt_next _ | I.Ck_not_atomic -> env)

(* ------------------------------------------------------------------ *)
(* Instructions                                                       *)
(* ------------------------------------------------------------------ *)

let degrade ty a = if Aval.is_bot a then of_ty ty else a

(* Assignment [v := e] in the zone: a same-variable linear RHS is an
   exact constraint shift; any other linear RHS re-anchors [v] to its
   source with an equality; everything else havocs. Kills close the
   zone with interval seeds first so consequences survive the kill
   (e.g. [todo = n; if (todo > 512) todo = 512] materializes
   [n >= 513] on the clamped branch before [todo]'s old constraints
   go away). *)
let zone_assign (v : I.varinfo) (e : I.exp) env =
  if (not (Domain.relational ())) || Env.is_unreachable env then env
  else
    match linear_of_exp env e with
    | Some (w, k) when w.I.vid = v.I.vid ->
        Env.map_zone (fun z -> Some (Zone.shift v.I.vid k z)) env
    | Some (w, k) ->
        let env = zone_kill v env in
        let env = Env.map_zone (Zone.add_le v.I.vid w.I.vid k) env in
        let env =
          if Int64.equal k Int64.min_int then env
          else Env.map_zone (Zone.add_le w.I.vid v.I.vid (Int64.neg k)) env
        in
        Env.tighten_from_zone env
    | None -> zone_kill v env

let instr ?(ifaces = no_ifaces) (summaries : summaries) (env : Env.t) (i : I.instr) : Env.t =
  match env with
  | Env.Unreachable -> env
  | _ -> (
      match i with
      | I.Iset ((I.Lvar v, []), e) when Deputy.Facts.stable v ->
          let nv = degrade v.I.vty (norm_aval v.I.vty (eval env e)) in
          Env.set v.I.vid nv (zone_assign v e env)
      | I.Iset (_, _) ->
          (* Stores through memory or to unstable lvalues cannot touch
             stable variables (their address is never taken). *)
          env
      | I.Icall (Some (I.Lvar v, []), I.Direct f, _) when Deputy.Facts.stable v ->
          let ret =
            match SM.find_opt f summaries with
            | Some a -> degrade v.I.vty (norm_aval v.I.vty a)
            | None -> if List.mem f allocators then Aval.nonnull else of_ty v.I.vty
          in
          let ret =
            (* skeleton-derived interface: the callee provably returns
               a non-null pointer on every path *)
            match SM.find_opt f ifaces with
            | Some { ret_nonnull = true } when I.is_pointer v.I.vty ->
                degrade v.I.vty (Aval.reduce (Aval.meet ret Aval.nonnull))
            | _ -> ret
          in
          Env.set v.I.vid ret (zone_kill v env)
      | I.Icall (Some (I.Lvar v, []), _, _) when Deputy.Facts.stable v ->
          Env.set v.I.vid (of_ty v.I.vty) (zone_kill v env)
      | I.Icall (_, _, _) -> env
      | I.Icheck (ck, _) -> assume_check env ck
      | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> env)

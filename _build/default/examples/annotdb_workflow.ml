(* The collaboration story of paper §3.2: "a collaborative database of
   source code information that would allow different researchers and
   tools to share and reuse information about publicly available
   source code".

   Run with:  dune exec examples/annotdb_workflow.exe

   Two "research groups" analyze different aspects of the same kernel,
   export their findings to annotation databases, merge them (manual
   facts win over tool-inferred ones), and a third party consumes the
   merged database to steer their own work. *)

let () =
  let prog = Kernel.Corpus.load () in

  (* Group A cares about concurrency: they run BlockStop and record
     what may block, plus the annotations they wrote by hand. *)
  let db_a = Annotdb.create () in
  Annotdb.add_source_annotations db_a prog;
  let cg = Blockstop.Callgraph.build prog in
  Annotdb.add_blockstop_facts db_a (Blockstop.Blocking.compute cg);
  Printf.printf "group A (concurrency): %d facts\n" (Annotdb.size db_a);

  (* Group B cares about resources: stack budgets and error codes,
     plus Deputy's annotation suggestions for the unannotated code. *)
  let db_b = Annotdb.create () in
  Annotdb.add_stackcheck_facts db_b (Stackcheck.analyze prog);
  Annotdb.add_errcheck_facts db_b (Errcheck.analyze prog);
  Annotdb.add_infer_facts db_b prog;
  Printf.printf "group B (resources):   %d facts\n" (Annotdb.size db_b);

  (* The shared repository: merge both (through the serialized form,
     as they would exchange files). *)
  let a_text = Annotdb.to_string db_a in
  let b_text = Annotdb.to_string db_b in
  let shared = Annotdb.of_string a_text in
  Annotdb.merge ~into:shared (Annotdb.of_string b_text);
  Printf.printf "shared repository:     %d facts\n\n" (Annotdb.size shared);

  (* A consumer asks questions the paper imagines: which functions
     block? what stack does this path need? where are error codes? *)
  let blocking = Annotdb.by_kind shared "blocking" in
  Printf.printf "functions that may block: %d, e.g.\n" (List.length blocking);
  List.iteri
    (fun i f ->
      if i < 5 then
        Printf.printf "  %s  [%s]\n"
          (Annotdb.subject_to_string f.Annotdb.subject)
          (match f.Annotdb.provenance with
          | Annotdb.Manual -> "annotated by hand"
          | Annotdb.Inferred tool -> "inferred by " ^ tool))
    blocking;

  (match Annotdb.query shared ~kind:"stack_bytes" (Annotdb.Func "vfs_open") with
  | [ f ] -> Printf.printf "\nvfs_open needs at most %s bytes of stack\n" f.Annotdb.payload
  | _ -> ());

  (match Annotdb.query shared ~kind:"returns_err" (Annotdb.Func "vfs_open") with
  | f :: _ -> Printf.printf "vfs_open may return error codes: %s\n" f.Annotdb.payload
  | [] -> ());

  (* Provenance discipline: schedule's blocking fact was hand-written,
     so the merged database keeps the manual provenance even though
     BlockStop also inferred it. *)
  (match Annotdb.query shared ~kind:"blocking" (Annotdb.Func "schedule") with
  | [ f ] ->
      Printf.printf "\nschedule: blocking [%s] (manual wins over inferred on merge)\n"
        (Annotdb.provenance_to_string f.Annotdb.provenance)
  | _ -> ());

  (* And the suggestions channel: the converted corpus is fully
     annotated (so no suggestions there), but an incoming, not yet
     converted staging driver gets proposals a human can review before
     writing the annotations down. *)
  let staging =
    Kc.Typecheck.check_sources
      (Kernel.Corpus.sources ()
      @ [
          ( "drivers/staging_new.kc",
            "int stage_sum(int *samples, int n) {\n\
             int s = 0; int i;\n\
             for (i = 0; i < n; i++) { s += samples[i]; }\n\
             return s; }\n\
             int stage_peek(int *reg) { if (reg == 0) { return -1; } return *reg; }" );
        ])
  in
  let db_staging = Annotdb.create () in
  Annotdb.add_infer_facts db_staging staging;
  Annotdb.merge ~into:shared db_staging;
  let suggestions = Annotdb.by_kind shared "suggest_annot" in
  Printf.printf "\n%d annotation suggestions awaiting review (from the staging driver):\n"
    (List.length suggestions);
  List.iter
    (fun f ->
      Printf.printf "  %s: %s\n" (Annotdb.subject_to_string f.Annotdb.subject) f.Annotdb.payload)
    suggestions

lib/blockstop/atomic.mli: Blocking Callgraph Kc Set String

(** Reaching definitions over (variable id, definition site). *)

module Def : sig
  type t = { var : int; node : int; idx : int }

  val compare : t -> t -> int
end

module DS : Set.S with type elt = Def.t

(** Reaching definitions at entry of each node. *)
val analyze : Cfg.t -> DS.t array

(** Definitions of [var] reaching entry of a node. *)
val reaching_defs_of : DS.t array -> int -> int -> Def.t list

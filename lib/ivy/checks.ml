(* The registry of engine analyses: each of the seven whole-program
   checkers wrapped as an [Engine.Analysis.S], obtaining every
   expensive artifact through the shared [Engine.Context] (so one
   [ivy check] run builds the call graph and points-to once per mode,
   no matter how many analyses consume them) and reporting findings as
   unified [Engine.Diag.t] values. *)

module Context = Engine.Context
module Diag = Engine.Diag

(* ---- blockstop: may-block calls reachable in atomic context ---- *)

let blockstop : Engine.Analysis.t =
  (module struct
    let name = "blockstop"
    let doc = "blocking calls reachable with interrupts disabled (paper §2.3)"
    let deps = [ Context.Key.blocking Blockstop.Pointsto.Type_based ]

    let run ctxt =
      let bl = Context.blocking ctxt in
      let result = Blockstop.Atomic.analyze bl in
      (* One diagnostic per (site, containing function, callee): several
         witness paths through the same call site count once. *)
      let sites =
        List.sort_uniq compare
          (List.map
             (fun (w : Blockstop.Atomic.warning) ->
               ( w.Blockstop.Atomic.w_loc,
                 w.Blockstop.Atomic.w_in,
                 w.Blockstop.Atomic.w_callee,
                 w.Blockstop.Atomic.w_via ))
             result.Blockstop.Atomic.warnings)
      in
      List.map
        (fun (loc, in_fn, callee, via) ->
          Diag.make ~analysis:name ~loc
            ~fix_hint:
              (Printf.sprintf "guard %s with assert_not_atomic or make the call non-blocking"
                 in_fn)
            (Printf.sprintf "%s may block in atomic context of %s%s" callee in_fn
               (match via with
               | Blockstop.Callgraph.Direct -> ""
               | Blockstop.Callgraph.Via_fptr -> " (call via function pointer)")))
        sites
  end)

(* ---- locksafe: lock-order cycles and irq-vs-process spinlocks ---- *)

let locksafe : Engine.Analysis.t =
  (module struct
    let name = "locksafe"
    let doc = "deadlock order and irq/process spinlock invariant (paper §3.1)"
    let deps = [ Context.Key.irq_handlers ]

    let run ctxt =
      let prog = Context.program ctxt in
      let r = Locksafe.analyze ~handlers:(Context.irq_handlers ctxt) prog in
      let edge_loc a b =
        match
          List.find_opt
            (fun (e : Locksafe.order_edge) ->
              e.Locksafe.from_lock = a && e.Locksafe.to_lock = b)
            r.Locksafe.order_edges
        with
        | Some e -> e.Locksafe.where
        | None -> Kc.Loc.dummy
      in
      let deadlocks =
        List.map
          (fun (a, b) ->
            Diag.make ~analysis:name ~severity:Diag.Error ~loc:(edge_loc a b)
              ~fix_hint:(Printf.sprintf "always acquire %s before %s (or vice versa)" a b)
              (Printf.sprintf "locks %s and %s are acquired in both orders (deadlock risk)" a b))
          r.Locksafe.deadlock_cycles
      in
      let irq_unsafe =
        List.map
          (fun (lock, (a : Locksafe.acquire)) ->
            Diag.make ~analysis:name ~loc:a.Locksafe.a_loc
              ~fix_hint:"use spin_lock_irqsave here"
              (Printf.sprintf
                 "lock %s is used in interrupt context but taken in %s without disabling \
                  interrupts"
                 lock a.Locksafe.a_in))
          r.Locksafe.irq_unsafe
      in
      deadlocks @ irq_unsafe
  end)

(* ---- stackcheck: bounded stack depth for every call chain ---- *)

let stackcheck : Engine.Analysis.t =
  (module struct
    let name = "stackcheck"
    let doc = "stack budget of every call chain; recursion detection (paper §3.1)"
    let deps = [ Context.Key.callgraph Blockstop.Pointsto.Field_based ]

    let floc prog f =
      match Kc.Ir.find_fun prog f with
      | Some fd -> fd.Kc.Ir.floc
      | None -> Kc.Loc.dummy

    let run ctxt =
      let prog = Context.program ctxt in
      let cg = Context.callgraph ~mode:Blockstop.Pointsto.Field_based ctxt in
      let r = Stackcheck.analyze ~cg prog in
      let recursion =
        List.map
          (fun f ->
            Diag.make ~analysis:name ~loc:(floc prog f)
              ~fix_hint:"insert a runtime depth check at the recursive entry"
              (Printf.sprintf "%s is on a call cycle: static stack depth is unbounded" f))
          (Stackcheck.needs_runtime_check r)
      in
      let over_budget =
        match Stackcheck.SM.find_opt "start_kernel" r.Stackcheck.depths with
        | Some d when d > 8192 ->
            [
              Diag.make ~analysis:name ~severity:Diag.Error ~loc:(floc prog "start_kernel")
                ~fix_hint:"shrink frames on the worst chain or raise the stack budget"
                (Printf.sprintf "boot entry needs %d bytes of stack, over the 8 kB budget" d);
            ]
        | _ -> []
      in
      let summary =
        if r.Stackcheck.worst_chain = [] then []
        else
          [
            Diag.make ~analysis:name ~severity:Diag.Info
              ~loc:(floc prog (List.hd r.Stackcheck.worst_chain))
              (Printf.sprintf "deepest bounded call chain: %d bytes (%s)"
                 r.Stackcheck.worst_bytes
                 (String.concat " -> " r.Stackcheck.worst_chain));
          ]
      in
      recursion @ over_budget @ summary
  end)

(* ---- errcheck: every error return accounted for ---- *)

let errcheck : Engine.Analysis.t =
  (module struct
    let name = "errcheck"
    let doc = "error-code returns checked at every call site (paper §3.1)"
    let deps = []

    let run ctxt =
      let r = Errcheck.analyze (Context.program ctxt) in
      List.map
        (fun (s : Errcheck.site) ->
          Diag.make ~analysis:name ~loc:s.Errcheck.s_loc
            ~fix_hint:(Printf.sprintf "test the result of %s against its error codes" s.Errcheck.s_callee)
            (Printf.sprintf "%s %s error result of %s" s.Errcheck.s_caller
               (match s.Errcheck.s_kind with
               | `Ignored -> "discards"
               | `Unchecked -> "binds but never tests")
               s.Errcheck.s_callee))
        r.Errcheck.violations
  end)

(* ---- userck: user/kernel pointer discipline ---- *)

let userck : Engine.Analysis.t =
  (module struct
    let name = "userck"
    let doc = "__user pointers never dereferenced or laundered (paper §3.1)"
    let deps = []

    let run ctxt =
      let r = Userck.analyze (Context.program ctxt) in
      List.map
        (fun (v : Userck.violation) ->
          Diag.make ~analysis:name ~severity:Diag.Error ~loc:v.Userck.v_loc
            ~fix_hint:
              (match v.Userck.v_kind with
              | Userck.Deref -> "stage the access through copy_from_user/copy_to_user"
              | Userck.User_to_kernel | Userck.Kernel_to_user ->
                  "keep the __user qualifier, or bless the value inside a __trusted region")
            (Printf.sprintf "in %s: %s (%s)" v.Userck.v_fn
               (Userck.kind_to_string v.Userck.v_kind)
               v.Userck.v_what))
        r.Userck.violations
  end)

(* ---- absint: interval fixpoint + static check discharge ---- *)

let absint : Engine.Analysis.t =
  (module struct
    let name = "absint"
    let doc = "interval abstract interpretation discharging Deputy checks (paper §2.2)"
    let deps = [ Context.Key.deputized ]

    (* Reports are informational: what the deputized view looks like
       once the interval facts have removed the provably redundant
       checks. A campaign summary plus one line per function where the
       second stage proved something. *)
    let run ctxt =
      let d = Context.deputized ctxt in
      let stats = d.Context.dstats in
      let inserted = d.Context.dreport.Deputy.Dreport.inserted in
      if inserted = 0 then []
      else
        let facts = d.Context.dreport.Deputy.Dreport.discharged in
        let proved = Absint.Discharge.checks_proved stats in
        let proved_iv = Absint.Discharge.checks_proved_iv stats in
        let proved_rel = Absint.Discharge.checks_proved_rel stats in
        let floc f =
          match Kc.Ir.find_fun (Context.program ctxt) f with
          | Some fd -> fd.Kc.Ir.floc
          | None -> Kc.Loc.dummy
        in
        let summary =
          Diag.make ~analysis:name ~severity:Diag.Info ~loc:Kc.Loc.dummy
            (Printf.sprintf
               "discharged %d of %d inserted checks (facts %d + intervals %d + relational %d); \
                %d dynamic checks remain"
               (facts + proved) inserted facts proved_iv proved_rel
               (inserted - facts - proved))
        in
        let per_fun =
          List.filter_map
            (fun (s : Absint.Discharge.fstat) ->
              if s.Absint.Discharge.proved = 0 then None
              else
                Some
                  (Diag.make ~analysis:name ~severity:Diag.Info ~loc:(floc s.Absint.Discharge.fname)
                     (Printf.sprintf
                        "%s: proved %d of %d residual checks (%d fixpoint iterations, %d widening \
                         points)"
                        s.Absint.Discharge.fname s.Absint.Discharge.proved s.Absint.Discharge.seen
                        s.Absint.Discharge.iterations s.Absint.Discharge.widen_points)))
            stats.Absint.Discharge.fstats
        in
        summary :: per_fun
  end)

(* ---- refsafe: static refcount/ownership imbalances + CCount discharge ---- *)

let refsafe : Engine.Analysis.t =
  (module struct
    let name = "refsafe"
    let doc = "refcount ownership imbalances; discharges CCount updates (paper §2.2)"
    let deps = [ Context.Key.refsafe_summaries; Context.Key.ccount_discharged ]

    let fix_hint_of = function
      | Refsafe.Ownership.Double_put -> "drop the second put; ownership ended at the first"
      | Refsafe.Ownership.Put_on_error_path ->
          "retire the published global reference before releasing the object"
      | Refsafe.Ownership.Missing_put -> "release the allocation before the error return"
      | Refsafe.Ownership.Leak -> "release or publish the allocation before returning"

    let run ctxt =
      let summaries = Context.refsafe_summaries ctxt in
      let prog = Context.program ctxt in
      let cfg_of (fd : Kc.Ir.fundec) =
        match Context.cfg ctxt fd.Kc.Ir.fname with
        | Some c -> c
        | None -> Dataflow.Cfg.build fd
      in
      let findings = Refsafe.Ownership.check_program ~cfg_of summaries prog in
      let warnings =
        List.map
          (fun (f : Refsafe.Ownership.finding) ->
            Diag.make ~analysis:name ~loc:f.Refsafe.Ownership.floc
              ~fix_hint:(fix_hint_of f.Refsafe.Ownership.fkind)
              f.Refsafe.Ownership.fmsg)
          findings
      in
      (* The CCount-discharge census rides along as an Info line, like
         absint's: silent when the program has nothing instrumented. *)
      let st = (Context.ccount_discharged ctxt).Context.crstats in
      let summary =
        if st.Refsafe.Discharge.updates_seen = 0 then []
        else
          [
            (* render_stats already opens with "refsafe: "; strip it so
               the [analysis] prefix doesn't repeat. *)
            Diag.make ~analysis:name ~severity:Diag.Info ~loc:Kc.Loc.dummy
              (String.trim
                 (let s = Refsafe.Discharge.render_stats st in
                  if String.length s > 9 && String.sub s 0 9 = "refsafe: " then
                    String.sub s 9 (String.length s - 9)
                  else s));
          ]
      in
      Diag.sort warnings @ summary
  end)

(* ---- the registry ---- *)

(* absint and refsafe are registered last, in this order: consumers
   lock the JSON key order. *)
let all : Engine.Analysis.t list =
  [ blockstop; locksafe; stackcheck; errcheck; userck; absint; refsafe ]
let find (name : string) : Engine.Analysis.t option =
  List.find_opt (fun a -> Engine.Analysis.name a = name) all

exception Unknown_analysis of string

(* Run the selected analyses (all of them by default) over one shared
   context; each result list is already sorted and deduplicated. *)
let run_all ?(only = []) (ctxt : Context.t) : (string * Diag.t list) list =
  let selected =
    match only with
    | [] -> all
    | names ->
        List.map
          (fun n -> match find n with Some a -> a | None -> raise (Unknown_analysis n))
          names
  in
  List.map (fun a -> (Engine.Analysis.name a, Engine.Analysis.run a ctxt)) selected

(* All diagnostics of a run, flattened into one deterministic list. *)
let diags (results : (string * Diag.t list) list) : Diag.t list =
  Diag.sort (List.concat_map snd results)

lib/blockstop/blocking.mli: Callgraph Hashtbl Kc Set String

(** Zeroness of a raw value — nullness for pointers, truthiness for
    integers. A flat four-point lattice. *)

type t = Bot | Null | Nonnull | Top

val bottom : t
val top : t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
val narrow : t -> t -> t
val of_const : int64 -> t
val to_string : t -> string

(* Recursive-descent parser for KC.

   The parser works over the token array produced by {!Lexer.tokenize}.
   It keeps a set of typedef names, which is the single piece of
   context needed to disambiguate declarations from expressions (the
   classic C lexer-hack, confined to the parser here). *)

exception Error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable idx : int;
  mutable typedefs : (string, unit) Hashtbl.t;
}

let make toks = { toks; idx = 0; typedefs = Hashtbl.create 64 }

let peek st = fst st.toks.(st.idx)
let peek_loc st = snd st.toks.(st.idx)

let peek_n st n =
  let i = st.idx + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let error st msg = raise (Error (msg, peek_loc st))

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let eat st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let is_typedef_name st s = Hashtbl.mem st.typedefs s

(* Does the current token start a type? Used for cast vs. paren-expr
   and declaration vs. expression-statement disambiguation. *)
let starts_type st =
  match peek st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT | Token.KW_LONG
  | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_STRUCT | Token.KW_UNION
  | Token.KW_ENUM | Token.KW_CONST ->
      true
  | Token.IDENT s -> is_typedef_name st s
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declaration specifiers: the base type before any declarator.       *)
(* ------------------------------------------------------------------ *)

let parse_base_type st : Ast.ty =
  let rec skip_const () = if accept st Token.KW_CONST then skip_const () in
  skip_const ();
  let ty =
    match peek st with
    | Token.KW_VOID ->
        advance st;
        Ast.Tvoid
    | Token.KW_STRUCT ->
        advance st;
        Ast.Tstruct (expect_ident st)
    | Token.KW_UNION ->
        advance st;
        Ast.Tunion (expect_ident st)
    | Token.KW_ENUM ->
        advance st;
        Ast.Tenum (expect_ident st)
    | Token.IDENT s when is_typedef_name st s ->
        advance st;
        Ast.Tnamed s
    | _ ->
        (* Integer type: a bag of specifiers. *)
        let signed = ref None and kind = ref None and any = ref false in
        let rec go () =
          match peek st with
          | Token.KW_UNSIGNED ->
              advance st;
              signed := Some Ast.Unsigned;
              any := true;
              go ()
          | Token.KW_SIGNED ->
              advance st;
              signed := Some Ast.Signed;
              any := true;
              go ()
          | Token.KW_CHAR ->
              advance st;
              kind := Some Ast.Ichar;
              any := true;
              go ()
          | Token.KW_SHORT ->
              advance st;
              kind := Some Ast.Ishort;
              any := true;
              go ()
          | Token.KW_INT ->
              advance st;
              (match !kind with Some Ast.Ishort | Some Ast.Ilong -> () | _ -> kind := Some Ast.Iint);
              any := true;
              go ()
          | Token.KW_LONG ->
              advance st;
              kind := Some Ast.Ilong;
              any := true;
              go ()
          | _ -> ()
        in
        go ();
        if not !any then error st "expected a type";
        let k = match !kind with Some k -> k | None -> Ast.Iint in
        let s =
          match !signed with
          | Some s -> s
          | None -> if k = Ast.Ichar then Ast.Unsigned else Ast.Signed
          (* kernel chars are unsigned by default in KC *)
        in
        Ast.Tint (k, s)
  in
  skip_const ();
  ty

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                  *)
(* ------------------------------------------------------------------ *)

(* Declarator tree, resolved inside-out into a type. *)
type dtor =
  | Dname of string option
  | Dptr of Ast.ptr_annot list * dtor
  | Darr of Ast.expr option * dtor
  | Dfun of Ast.param list * bool * dtor

let rec dtor_to_type (base : Ast.ty) = function
  | Dname n -> (n, base)
  | Dptr (annots, d) -> dtor_to_type (Ast.Tptr (base, annots)) d
  | Darr (sz, d) -> dtor_to_type (Ast.Tarray (base, sz)) d
  | Dfun (params, variadic, d) -> dtor_to_type (Ast.Tfun (base, params, variadic)) d

let rec parse_expr st : Ast.expr = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  let loc = peek_loc st in
  let mk e = Ast.mk_expr ~loc e in
  match peek st with
  | Token.EQ ->
      advance st;
      mk (Ast.Eassign (lhs, parse_assignment st))
  | Token.PLUSEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Add, lhs, parse_assignment st))
  | Token.MINUSEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Sub, lhs, parse_assignment st))
  | Token.STAREQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Mul, lhs, parse_assignment st))
  | Token.SLASHEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Div, lhs, parse_assignment st))
  | Token.PERCENTEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Mod, lhs, parse_assignment st))
  | Token.AMPEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Bitand, lhs, parse_assignment st))
  | Token.BAREQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Bitor, lhs, parse_assignment st))
  | Token.CARETEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Bitxor, lhs, parse_assignment st))
  | Token.SHLEQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Shl, lhs, parse_assignment st))
  | Token.SHREQ ->
      advance st;
      mk (Ast.Eassign_op (Ast.Shr, lhs, parse_assignment st))
  | _ -> lhs

and parse_conditional st =
  let cond = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let loc = peek_loc st in
    let e1 = parse_expr st in
    eat st Token.COLON;
    let e2 = parse_conditional st in
    Ast.mk_expr ~loc (Ast.Econd (cond, e1, e2))
  end
  else cond

(* Binary operator precedence table; higher binds tighter. *)
and binop_of_token = function
  | Token.BARBAR -> Some (Ast.Logor, 1)
  | Token.ANDAND -> Some (Ast.Logand, 2)
  | Token.BAR -> Some (Ast.Bitor, 3)
  | Token.CARET -> Some (Ast.Bitxor, 4)
  | Token.AMP -> Some (Ast.Bitand, 5)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.NE -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = peek_loc st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Ast.mk_expr ~loc (Ast.Ebinop (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let loc = peek_loc st in
  let mk e = Ast.mk_expr ~loc e in
  match peek st with
  | Token.MINUS ->
      advance st;
      mk (Ast.Eunop (Ast.Neg, parse_unary st))
  | Token.BANG ->
      advance st;
      mk (Ast.Eunop (Ast.Lognot, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk (Ast.Eunop (Ast.Bitnot, parse_unary st))
  | Token.STAR ->
      advance st;
      mk (Ast.Ederef (parse_unary st))
  | Token.AMP ->
      advance st;
      mk (Ast.Eaddrof (parse_unary st))
  | Token.PLUSPLUS ->
      advance st;
      mk (Ast.Eincr (true, true, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      mk (Ast.Eincr (false, true, parse_unary st))
  | Token.KW_SIZEOF ->
      advance st;
      if Token.equal (peek st) Token.LPAREN && starts_type { st with idx = st.idx + 1 } then begin
        eat st Token.LPAREN;
        let ty = parse_type_name st in
        eat st Token.RPAREN;
        mk (Ast.Esizeof_type ty)
      end
      else mk (Ast.Esizeof_expr (parse_unary st))
  | Token.LPAREN when starts_type { st with idx = st.idx + 1 } ->
      (* Cast expression. *)
      eat st Token.LPAREN;
      let ty = parse_type_name st in
      eat st Token.RPAREN;
      mk (Ast.Ecast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let loc = peek_loc st in
    let mk n = Ast.mk_expr ~loc n in
    match peek st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        eat st Token.RBRACKET;
        e := mk (Ast.Eindex (!e, idx))
    | Token.LPAREN ->
        advance st;
        let args = ref [] in
        if not (Token.equal (peek st) Token.RPAREN) then begin
          args := [ parse_assignment st ];
          while accept st Token.COMMA do
            args := parse_assignment st :: !args
          done
        end;
        eat st Token.RPAREN;
        e := mk (Ast.Ecall (!e, List.rev !args))
    | Token.DOT ->
        advance st;
        e := mk (Ast.Efield (!e, expect_ident st))
    | Token.ARROW ->
        advance st;
        e := mk (Ast.Earrow (!e, expect_ident st))
    | Token.PLUSPLUS ->
        advance st;
        e := mk (Ast.Eincr (true, false, !e))
    | Token.MINUSMINUS ->
        advance st;
        e := mk (Ast.Eincr (false, false, !e))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let loc = peek_loc st in
  let mk n = Ast.mk_expr ~loc n in
  match peek st with
  | Token.INT_LIT n ->
      advance st;
      mk (Ast.Eint n)
  | Token.CHAR_LIT c ->
      advance st;
      mk (Ast.Echar c)
  | Token.STR_LIT s ->
      advance st;
      mk (Ast.Estr s)
  | Token.IDENT s ->
      advance st;
      mk (Ast.Eident s)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Token.RPAREN;
      e
  | t -> error st (Printf.sprintf "expected expression, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Declarators.                                                       *)
(* ------------------------------------------------------------------ *)

and parse_ptr_annots st =
  let annots = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.KW_COUNT ->
        advance st;
        eat st Token.LPAREN;
        let e = parse_expr st in
        eat st Token.RPAREN;
        annots := Ast.Acount e :: !annots
    | Token.KW_NULLTERM ->
        advance st;
        annots := Ast.Anullterm :: !annots
    | Token.KW_OPT ->
        advance st;
        annots := Ast.Aopt :: !annots
    | Token.KW_TRUSTED ->
        advance st;
        annots := Ast.Atrusted :: !annots
    | Token.KW_USER ->
        advance st;
        annots := Ast.Auser :: !annots
    | Token.KW_CONST ->
        advance st (* const is accepted and erased *)
    | _ -> continue_ := false
  done;
  List.rev !annots

and parse_declarator st : dtor =
  if accept st Token.STAR then begin
    let annots = parse_ptr_annots st in
    Dptr (annots, parse_declarator st)
  end
  else parse_direct_declarator st

and parse_direct_declarator st =
  let base =
    match peek st with
    | Token.IDENT s when not (is_typedef_name st s) ->
        advance st;
        Dname (Some s)
    | Token.LPAREN
      when match peek_n st 1 with
           | Token.STAR | Token.IDENT _ -> true
           | _ -> false ->
        eat st Token.LPAREN;
        let d = parse_declarator st in
        eat st Token.RPAREN;
        d
    | _ -> Dname None (* abstract declarator *)
  in
  parse_declarator_suffixes st base

and parse_declarator_suffixes st d =
  match peek st with
  | Token.LBRACKET ->
      advance st;
      let size = if Token.equal (peek st) Token.RBRACKET then None else Some (parse_expr st) in
      eat st Token.RBRACKET;
      parse_declarator_suffixes st (Darr (size, d))
  | Token.LPAREN ->
      advance st;
      let params, variadic = parse_param_list st in
      eat st Token.RPAREN;
      parse_declarator_suffixes st (Dfun (params, variadic, d))
  | _ -> d

and parse_param_list st : Ast.param list * bool =
  if Token.equal (peek st) Token.RPAREN then ([], false)
  else if Token.equal (peek st) Token.KW_VOID && Token.equal (peek_n st 1) Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] and variadic = ref false in
    let parse_one () =
      if Token.equal (peek st) Token.ELLIPSIS then begin
        advance st;
        variadic := true
      end
      else begin
        let base = parse_base_type st in
        let d = parse_declarator st in
        let name, ty = dtor_to_type base d in
        let pname = match name with Some n -> n | None -> "" in
        params := { Ast.pname; pty = ty } :: !params
      end
    in
    parse_one ();
    while accept st Token.COMMA do
      parse_one ()
    done;
    (List.rev !params, !variadic)
  end

and parse_type_name st : Ast.ty =
  let base = parse_base_type st in
  let d = parse_declarator st in
  let name, ty = dtor_to_type base d in
  match name with
  | None -> ty
  | Some n -> error st (Printf.sprintf "unexpected name %s in type" n)

(* ------------------------------------------------------------------ *)
(* Statements.                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  let mk s = Ast.mk_stmt ~loc s in
  match peek st with
  | Token.LBRACE -> mk (Ast.Sblock (parse_block st))
  | Token.KW_IF ->
      advance st;
      eat st Token.LPAREN;
      let cond = parse_expr st in
      eat st Token.RPAREN;
      let then_ = parse_stmt_as_block st in
      let else_ = if accept st Token.KW_ELSE then parse_stmt_as_block st else [] in
      mk (Ast.Sif (cond, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      eat st Token.LPAREN;
      let cond = parse_expr st in
      eat st Token.RPAREN;
      mk (Ast.Swhile (cond, parse_stmt_as_block st))
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt_as_block st in
      eat st Token.KW_WHILE;
      eat st Token.LPAREN;
      let cond = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      mk (Ast.Sdowhile (body, cond))
  | Token.KW_FOR ->
      advance st;
      eat st Token.LPAREN;
      let init =
        if Token.equal (peek st) Token.SEMI then begin
          advance st;
          None
        end
        else if starts_type st then begin
          let d = parse_local_decl st in
          Some (Ast.mk_stmt ~loc (Ast.Sdecl d))
        end
        else begin
          let e = parse_expr st in
          eat st Token.SEMI;
          Some (Ast.mk_stmt ~loc (Ast.Sexpr e))
        end
      in
      let cond = if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      let step = if Token.equal (peek st) Token.RPAREN then None else Some (parse_expr st) in
      eat st Token.RPAREN;
      mk (Ast.Sfor (init, cond, step, parse_stmt_as_block st))
  | Token.KW_SWITCH ->
      advance st;
      eat st Token.LPAREN;
      let e = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.LBRACE;
      let cases = parse_switch_cases st in
      eat st Token.RBRACE;
      mk (Ast.Sswitch (e, cases))
  | Token.KW_BREAK ->
      advance st;
      eat st Token.SEMI;
      mk Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      eat st Token.SEMI;
      mk Ast.Scontinue
  | Token.KW_RETURN ->
      advance st;
      let e = if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      mk (Ast.Sreturn e)
  | Token.KW_DELAYED_FREE -> (
      advance st;
      match peek st with
      | Token.LBRACE -> mk (Ast.Sdelayed_free (parse_block st))
      | _ -> error st "__delayed_free must be followed by a block")
  | Token.KW_TRUSTED -> (
      advance st;
      match peek st with
      | Token.LBRACE -> mk (Ast.Strusted (parse_block st))
      | _ -> error st "__trusted statement must be followed by a block")
  | Token.SEMI ->
      advance st;
      mk (Ast.Sblock [])
  | _ when starts_type st -> mk (Ast.Sdecl (parse_local_decl st))
  | _ ->
      let e = parse_expr st in
      eat st Token.SEMI;
      mk (Ast.Sexpr e)

and parse_stmt_as_block st : Ast.block =
  match parse_stmt st with { Ast.s = Ast.Sblock b; _ } -> b | s -> [ s ]

and parse_block st : Ast.block =
  eat st Token.LBRACE;
  let stmts = ref [] in
  while not (Token.equal (peek st) Token.RBRACE) do
    stmts := parse_stmt st :: !stmts
  done;
  eat st Token.RBRACE;
  List.rev !stmts

and parse_local_decl st : Ast.decl_local =
  let base = parse_base_type st in
  let d = parse_declarator st in
  let name, ty = dtor_to_type base d in
  let dname = match name with Some n -> n | None -> error st "expected a name in declaration" in
  let dinit = if accept st Token.EQ then Some (parse_expr st) else None in
  eat st Token.SEMI;
  { Ast.dname; dty = ty; dinit }

and parse_switch_cases st : Ast.switch_case list =
  let cases = ref [] in
  while not (Token.equal (peek st) Token.RBRACE) do
    let labels = ref [] and is_default = ref false in
    let rec labels_loop () =
      match peek st with
      | Token.KW_CASE ->
          advance st;
          let v =
            match peek st with
            | Token.INT_LIT n ->
                advance st;
                n
            | Token.MINUS -> (
                advance st;
                match peek st with
                | Token.INT_LIT n ->
                    advance st;
                    Int64.neg n
                | _ -> error st "expected integer after case -")
            | Token.CHAR_LIT c ->
                advance st;
                Int64.of_int (Char.code c)
            | Token.IDENT _ ->
                (* Enum constants in case labels are resolved by the
                   type checker; encode as a marker the parser cannot
                   resolve. We require literal labels in KC instead. *)
                error st "case labels must be integer literals in KC"
            | _ -> error st "expected integer literal after case"
          in
          eat st Token.COLON;
          labels := v :: !labels;
          labels_loop ()
      | Token.KW_DEFAULT ->
          advance st;
          eat st Token.COLON;
          is_default := true;
          labels_loop ()
      | _ -> ()
    in
    labels_loop ();
    if !labels = [] && not !is_default then error st "expected case or default label";
    let body = ref [] in
    let stop () =
      match peek st with
      | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> true
      | _ -> false
    in
    while not (stop ()) do
      body := parse_stmt st :: !body
    done;
    cases :=
      { Ast.cases = List.rev !labels; is_default = !is_default; body = List.rev !body }
      :: !cases
  done;
  List.rev !cases

(* ------------------------------------------------------------------ *)
(* Globals.                                                           *)
(* ------------------------------------------------------------------ *)

let rec parse_initializer st : Ast.init =
  if Token.equal (peek st) Token.LBRACE then begin
    advance st;
    let items = ref [] in
    if not (Token.equal (peek st) Token.RBRACE) then begin
      items := [ parse_initializer st ];
      while accept st Token.COMMA do
        if not (Token.equal (peek st) Token.RBRACE) then items := parse_initializer st :: !items
      done
    end;
    eat st Token.RBRACE;
    Ast.Ilist (List.rev !items)
  end
  else Ast.Iexpr (parse_assignment st)

let parse_fun_annots st : Ast.fun_annot list =
  let annots = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.KW_BLOCKING ->
        advance st;
        annots := Ast.Fblocking :: !annots
    | Token.KW_BLOCKING_IF_WAIT ->
        advance st;
        annots := Ast.Fblocking_if_gfp_wait :: !annots
    | Token.KW_TRUSTED ->
        advance st;
        annots := Ast.Ftrusted :: !annots
    | Token.KW_ACQUIRES ->
        advance st;
        eat st Token.LPAREN;
        let l = expect_ident st in
        eat st Token.RPAREN;
        annots := Ast.Facquires l :: !annots
    | Token.KW_RELEASES ->
        advance st;
        eat st Token.LPAREN;
        let l = expect_ident st in
        eat st Token.RPAREN;
        annots := Ast.Freleases l :: !annots
    | Token.KW_RETURNS_ERR ->
        advance st;
        eat st Token.LPAREN;
        let codes = ref [] in
        let parse_code () =
          let neg = accept st Token.MINUS in
          match peek st with
          | Token.INT_LIT n ->
              advance st;
              codes := (if neg then Int64.neg n else n) :: !codes
          | _ -> error st "expected integer error code"
        in
        parse_code ();
        while accept st Token.COMMA do
          parse_code ()
        done;
        eat st Token.RPAREN;
        annots := Ast.Freturns_err (List.rev !codes) :: !annots
    | Token.KW_FRAME_HINT ->
        advance st;
        eat st Token.LPAREN;
        (match peek st with
        | Token.INT_LIT n ->
            advance st;
            annots := Ast.Fframe_hint (Int64.to_int n) :: !annots
        | _ -> error st "expected byte count in __frame_hint");
        eat st Token.RPAREN
    | _ -> continue_ := false
  done;
  List.rev !annots

let rec parse_global st : Ast.global * Loc.t =
  let loc = peek_loc st in
  let is_static = ref false in
  let rec storage () =
    if accept st Token.KW_STATIC then begin
      is_static := true;
      storage ()
    end
    else if accept st Token.KW_EXTERN then storage ()
  in
  storage ();
  match peek st with
  | Token.KW_TYPEDEF ->
      advance st;
      let base = parse_base_type st in
      let d = parse_declarator st in
      let name, ty = dtor_to_type base d in
      let name = match name with Some n -> n | None -> error st "typedef needs a name" in
      eat st Token.SEMI;
      Hashtbl.replace st.typedefs name ();
      (Ast.Gtypedef (name, ty), loc)
  | Token.KW_STRUCT when Token.equal (peek_n st 2) Token.SEMI ->
      advance st;
      let tag = expect_ident st in
      eat st Token.SEMI;
      (Ast.Gtag_decl (true, tag), loc)
  | Token.KW_UNION when Token.equal (peek_n st 2) Token.SEMI ->
      advance st;
      let tag = expect_ident st in
      eat st Token.SEMI;
      (Ast.Gtag_decl (false, tag), loc)
  | Token.KW_STRUCT when Token.equal (peek_n st 2) Token.LBRACE ->
      advance st;
      let tag = expect_ident st in
      eat st Token.LBRACE;
      let fields = parse_field_list st in
      eat st Token.RBRACE;
      eat st Token.SEMI;
      (Ast.Gcomp (true, tag, fields), loc)
  | Token.KW_UNION when Token.equal (peek_n st 2) Token.LBRACE ->
      advance st;
      let tag = expect_ident st in
      eat st Token.LBRACE;
      let fields = parse_field_list st in
      eat st Token.RBRACE;
      eat st Token.SEMI;
      (Ast.Gcomp (false, tag, fields), loc)
  | Token.KW_ENUM when Token.equal (peek_n st 2) Token.LBRACE ->
      advance st;
      let tag = expect_ident st in
      eat st Token.LBRACE;
      let items = ref [] in
      let parse_item () =
        match peek st with
        | Token.IDENT name ->
            advance st;
            let v =
              if accept st Token.EQ then begin
                let neg = accept st Token.MINUS in
                match peek st with
                | Token.INT_LIT n ->
                    advance st;
                    Some (if neg then Int64.neg n else n)
                | _ -> error st "expected integer enum value"
              end
              else None
            in
            items := (name, v) :: !items
        | Token.RBRACE -> ()
        | _ -> error st "expected enum item"
      in
      parse_item ();
      while accept st Token.COMMA do
        parse_item ()
      done;
      eat st Token.RBRACE;
      eat st Token.SEMI;
      (Ast.Genum (tag, List.rev !items), loc)
  | _ -> (
      let base = parse_base_type st in
      let d = parse_declarator st in
      let name, ty = dtor_to_type base d in
      let name = match name with Some n -> n | None -> error st "expected a name" in
      match ty with
      | Ast.Tfun (ret, params, _variadic) -> (
          let annots = parse_fun_annots st in
          match peek st with
          | Token.SEMI ->
              advance st;
              ( Ast.Gfun
                  {
                    fname = name;
                    fret = ret;
                    fparams = params;
                    fannots = annots;
                    fbody = None;
                    fstatic = !is_static;
                    floc = loc;
                  },
                loc )
          | Token.LBRACE ->
              let body = parse_block st in
              ( Ast.Gfun
                  {
                    fname = name;
                    fret = ret;
                    fparams = params;
                    fannots = annots;
                    fbody = Some body;
                    fstatic = !is_static;
                    floc = loc;
                  },
                loc )
          | t ->
              error st
                (Printf.sprintf "expected ; or { after function declarator, found %s"
                   (Token.to_string t)))
      | _ ->
          let init = if accept st Token.EQ then Some (parse_initializer st) else None in
          eat st Token.SEMI;
          (Ast.Gvar { vname = name; vty = ty; vinit = init; vstatic = !is_static }, loc))

and parse_field_list st : Ast.param list =
  let fields = ref [] in
  while not (Token.equal (peek st) Token.RBRACE) do
    let base = parse_base_type st in
    let d = parse_declarator st in
    let name, ty = dtor_to_type base d in
    let name = match name with Some n -> n | None -> error st "field needs a name" in
    fields := { Ast.pname = name; pty = ty } :: !fields;
    (* Multiple declarators per field line: `int a, b;` *)
    while accept st Token.COMMA do
      let d = parse_declarator st in
      let name, ty = dtor_to_type base d in
      let name = match name with Some n -> n | None -> error st "field needs a name" in
      fields := { Ast.pname = name; pty = ty } :: !fields
    done;
    eat st Token.SEMI
  done;
  List.rev !fields

(* Parse a whole compilation unit. [typedefs] seeds typedef names that
   are defined in other units of the same program. *)
let parse_unit ?(typedefs = []) ~name src : Ast.unit_ =
  let toks = Lexer.tokenize ~file:name src in
  let st = make toks in
  List.iter (fun t -> Hashtbl.replace st.typedefs t ()) typedefs;
  let globals = ref [] in
  while not (Token.equal (peek st) Token.EOF) do
    globals := parse_global st :: !globals
  done;
  { Ast.uname = name; globals = List.rev !globals }

(* Typedef names defined by a unit, used to seed later units. *)
let typedef_names (u : Ast.unit_) =
  List.filter_map (function Ast.Gtypedef (n, _), _ -> Some n | _ -> None) u.Ast.globals

(* fs/ — a small VFS with a ramfs behind it: inodes, dentries, file
   objects, a file_operations dispatch table (function pointers: this
   is what BlockStop's points-to has to resolve), path lookup over
   null-terminated strings, and read/write paths that cross the
   user-copy boundary.

   The unfixed variant frees an inode while the dentry still holds a
   pointer to it (a classic use-after-free CCount flags); the fixed
   variant drops the dentry reference first.

   Note the Deputy discipline: function-pointer types carry no
   dependent counts (real Deputy has dependent function types; here
   indirect-call count flow is recorded as unresolved), so the
   concrete implementations re-declare their own counted parameters. *)

let source ~(fixed_frees : bool) =
  let iput_body =
    if fixed_frees then
      {kc|
// Fixed: the dentry's back-reference is dropped before the free.
void iput(struct inode *ino) {
  ino->i_count = ino->i_count - 1;
  if (ino->i_count <= 0) {
    struct dentry * __opt d = ino->i_dentry;
    if (d != 0) {
      d->d_inode = 0;
      ino->i_dentry = 0;
    }
    inode_data_truncate(ino);
    kfree(ino);
  }
}
|kc}
    else
      {kc|
// Unfixed: the owning dentry still points at the inode when it is
// freed; CCount reports the bad free and leaks the inode.
void iput(struct inode *ino) {
  ino->i_count = ino->i_count - 1;
  if (ino->i_count <= 0) {
    inode_data_truncate(ino);
    kfree(ino);
  }
}
|kc}
  in
  {kc|
// ---------------------------------------------------------------
// fs/vfs.kc: objects
// ---------------------------------------------------------------

enum fs_consts { NAME_MAX = 32, NR_OPEN = 32, RAMFS_PAGES = 16 };

struct file;

struct file_operations {
  ssize_t (*fop_read)(struct file *f, char *buf, int n);
  ssize_t (*fop_write)(struct file *f, char *buf, int n);
  int (*fop_open)(struct file *f);
  int (*fop_release)(struct file *f);
};

struct inode {
  int i_ino;
  int i_mode;
  int i_count;
  long i_size;
  struct dentry * __opt i_dentry;
  struct page * __opt i_pages[16];
  struct file_operations * __opt i_fops;
};

struct dentry {
  char d_name[32];
  u32 d_hash;
  struct inode * __opt d_inode;
  struct dentry * __opt d_parent;
  struct dentry * __opt d_next; // sibling chain in the parent dir
  struct dentry * __opt d_child; // first child
};

struct file {
  long f_pos;
  int f_flags;
  struct inode * __opt f_inode;
  struct file_operations * __opt f_ops;
};

struct dentry * __opt fs_root;
struct file * __opt fd_table[32];
int next_ino;
long inode_lock;

// ---------------------------------------------------------------
// fs/ramfs.kc: page-backed file contents
// ---------------------------------------------------------------

void inode_data_truncate(struct inode *ino) {
  int i;
  for (i = 0; i < 16; i++) {
    struct page * __opt pg = ino->i_pages[i];
    if (pg != 0) {
      ino->i_pages[i] = 0;
      page_free(pg);
    }
  }
  ino->i_size = 0;
}

// Write n bytes at the file position, allocating pages on demand.
ssize_t ramfs_write_checked(struct file *f, char * __count(n) buf, int n) {
  struct inode * __opt ino = f->f_inode;
  if (ino == 0) { return -EINVAL; }
  long pos = f->f_pos;
  int written = 0;
  int psz = 4096;
  int i;
  for (i = 0; i < n; i++) {
    long at = pos + i;
    int pgno = at / 4096;
    int off = at % 4096;
    if (pgno < 0) { return -EINVAL; }
    if (pgno >= 16) { break; }
    struct page * __opt pg = ino->i_pages[pgno];
    if (pg == 0) {
      pg = page_alloc(GFP_KERNEL);
      ino->i_pages[pgno] = pg;
    }
    char * __count(psz) __opt data = pg->data;
    if (data != 0) {
      if (off >= 0) {
        if (off < psz) {
          data[off] = buf[i];
        }
      }
    }
    written++;
  }
  f->f_pos = pos + written;
  if (f->f_pos > ino->i_size) {
    ino->i_size = f->f_pos;
  }
  return written;
}

ssize_t ramfs_read_checked(struct file *f, char * __count(n) buf, int n) {
  struct inode * __opt ino = f->f_inode;
  if (ino == 0) { return -EINVAL; }
  long pos = f->f_pos;
  long size = ino->i_size;
  int got = 0;
  int psz = 4096;
  int i;
  for (i = 0; i < n; i++) {
    long at = pos + i;
    if (at >= size) { break; }
    int pgno = at / 4096;
    int off = at % 4096;
    if (pgno < 0) { break; }
    if (pgno >= 16) { break; }
    struct page * __opt pg = ino->i_pages[pgno];
    if (pg == 0) { break; }
    char * __count(psz) __opt data = pg->data;
    if (data == 0) { break; }
    if (off < 0) { break; }
    if (off >= psz) { break; }
    buf[i] = data[off];
    got++;
  }
  f->f_pos = pos + got;
  return got;
}

// The dispatch-table entry points: plain pointer parameters (no
// dependent function types), forwarding to the checked versions with
// the count re-established in trusted code.
ssize_t ramfs_read(struct file *f, char *buf, int n) {
  ssize_t r;
  __trusted {
    char * __count(n) cbuf = (char * __count(n))buf;
    r = ramfs_read_checked(f, cbuf, n);
  }
  return r;
}

ssize_t ramfs_write(struct file *f, char *buf, int n) {
  ssize_t r;
  __trusted {
    char * __count(n) cbuf = (char * __count(n))buf;
    r = ramfs_write_checked(f, cbuf, n);
  }
  return r;
}

int ramfs_open(struct file *f) {
  return 0;
}

int ramfs_release(struct file *f) {
  return 0;
}

struct file_operations ramfs_fops = { ramfs_read, ramfs_write, ramfs_open, ramfs_release };

// ---------------------------------------------------------------
// fs/inode.kc
// ---------------------------------------------------------------

struct inode *new_inode(int mode, int gfp) {
  struct inode *ino = kzalloc(sizeof(struct inode), gfp);
  next_ino = next_ino + 1;
  ino->i_ino = next_ino;
  ino->i_mode = mode;
  ino->i_count = 1;
  ino->i_fops = &ramfs_fops;
  return ino;
}
|kc}
  ^ iput_body
  ^ {kc|

// ---------------------------------------------------------------
// fs/dcache.kc: dentries and path lookup
// ---------------------------------------------------------------

struct dentry *d_alloc(char * __nullterm name, int gfp) {
  struct dentry *d = kzalloc(sizeof(struct dentry), gfp);
  kstrncpy(d->d_name, 32, name);
  d->d_hash = kstrhash(name);
  return d;
}

// Attach a child dentry under a directory dentry.
void d_add(struct dentry *dir, struct dentry *child, struct inode *ino) {
  child->d_parent = dir;
  child->d_inode = ino;
  ino->i_dentry = child;
  child->d_next = dir->d_child;
  dir->d_child = child;
}

// Find a child by component name held in a bounded buffer.
struct dentry * __opt d_lookup(struct dentry *dir, char * __count(dn) name, int dn) {
  u32 h = kstrhash_buf(name, dn);
  struct dentry * __opt d = dir->d_child;
  while (d != 0) {
    if (d->d_hash == h) {
      if (kstreq_buf(d->d_name, 32, name, dn)) {
        return d;
      }
    }
    d = d->d_next;
  }
  return 0;
}

// Resolve a "/a/b/c" path from the root. This is the hot lat_fs path:
// null-terminated scanning plus per-component hashing, mostly
// runtime-checked (indices depend on string contents).
struct dentry * __opt path_lookup(char * __nullterm path) {
  struct dentry * __opt cur = fs_root;
  char comp[32];
  if (cur == 0) { return 0; }
  while (*path != 0) {
    if (*path == '/') {
      path = path + 1;
    } else {
      int len = 0;
      int more = 1;
      while (more) {
        char c = *path;
        if (c == 0) { more = 0; }
        if (more) {
          if (c == '/') { more = 0; }
        }
        if (more) {
          if (len < 31) {
            comp[len] = c;
            len++;
          }
          path = path + 1;
        }
      }
      comp[len] = 0;
      struct dentry * __opt cd = cur;
      if (cd == 0) { return 0; }
      cur = d_lookup(cd, comp, 32);
      if (cur == 0) { return 0; }
    }
  }
  return cur;
}

// ---------------------------------------------------------------
// fs/file.kc: file descriptors and the syscall layer
// ---------------------------------------------------------------

int fd_install(struct file *f) {
  int fd;
  for (fd = 0; fd < 32; fd++) {
    if (fd_table[fd] == 0) {
      fd_table[fd] = f;
      return fd;
    }
  }
  return -EBUSY;
}

struct file * __opt fget(int fd) {
  if (fd < 0) { return 0; }
  if (fd >= 32) { return 0; }
  return fd_table[fd];
}

// open(2): resolve the path and build a file object.
int vfs_open(char * __nullterm path, int flags) {
  struct dentry * __opt d = path_lookup(path);
  if (d == 0) { return -ENOENT; }
  struct inode * __opt ino = d->d_inode;
  if (ino == 0) { return -ENOENT; }
  struct file *f = kzalloc(sizeof(struct file), GFP_KERNEL);
  f->f_inode = ino;
  f->f_ops = ino->i_fops;
  f->f_flags = flags;
  ino->i_count = ino->i_count + 1;
  struct file_operations * __opt ops = f->f_ops;
  if (ops != 0) {
    int (* __opt op_open)(struct file *fx) = ops->fop_open;
    if (op_open != 0) {
      op_open(f);
    }
  }
  int fd = fd_install(f);
  if (fd < 0) {
    f->f_inode = 0;
    f->f_ops = 0;
    kfree(f);
    return fd;
  }
  return fd;
}

ssize_t vfs_read(int fd, char * __count(n) buf, int n) {
  struct file * __opt f = fget(fd);
  if (f == 0) { return -EINVAL; }
  struct file_operations * __opt ops = f->f_ops;
  if (ops == 0) { return -EINVAL; }
  ssize_t (* __opt op_read)(struct file *fx, char *bufx, int nx) = ops->fop_read;
  if (op_read == 0) { return -EINVAL; }
  return op_read(f, buf, n);
}

ssize_t vfs_write(int fd, char * __count(n) buf, int n) {
  struct file * __opt f = fget(fd);
  if (f == 0) { return -EINVAL; }
  struct file_operations * __opt ops = f->f_ops;
  if (ops == 0) { return -EINVAL; }
  ssize_t (* __opt op_write)(struct file *fx, char *bufx, int nx) = ops->fop_write;
  if (op_write == 0) { return -EINVAL; }
  return op_write(f, buf, n);
}

int vfs_close(int fd) {
  struct file * __opt f = fget(fd);
  if (f == 0) { return -EINVAL; }
  fd_table[fd] = 0;
  struct inode * __opt ino = f->f_inode;
  struct file_operations * __opt ops = f->f_ops;
  if (ops != 0) {
    int (* __opt op_rel)(struct file *fx) = ops->fop_release;
    if (op_rel != 0) {
      op_rel(f);
    }
  }
  f->f_inode = 0;
  f->f_ops = 0;
  kfree(f);
  if (ino != 0) {
    iput(ino);
  }
  return 0;
}

// ---------------------------------------------------------------
// fs/syscalls.kc: the user/kernel boundary
// ---------------------------------------------------------------

// Syscall wrappers stage user buffers through kernel memory via the
// copy helpers; the __user annotation keeps raw user pointers out of
// kernel dereferences (checked by the userck analysis).
ssize_t sys_read(int fd, char * __user ubuf, int n) {
  char kbuf[256];
  int todo = n;
  if (todo < 0) { return -EINVAL; }
  if (todo > 256) { todo = 256; }
  ssize_t got = vfs_read(fd, kbuf, todo);
  if (got > 0) {
    copy_to_user(ubuf, kbuf, got);
  }
  return got;
}

ssize_t sys_write(int fd, char * __user ubuf, int n) {
  char kbuf[256];
  int todo = n;
  if (todo < 0) { return -EINVAL; }
  if (todo > 256) { todo = 256; }
  copy_from_user(kbuf, ubuf, todo);
  return vfs_write(fd, kbuf, todo);
}

// Create a regular file under the root directory.
int vfs_create(char * __nullterm name) {
  struct dentry * __opt root = fs_root;
  if (root == 0) { return -EINVAL; }
  char nbuf[32];
  kstrncpy(nbuf, 32, name);
  struct dentry * __opt existing = d_lookup(root, nbuf, 32);
  if (existing != 0) { return -EBUSY; }
  struct inode *ino = new_inode(1, GFP_KERNEL);
  struct dentry *d = d_alloc(name, GFP_KERNEL);
  d_add(root, d, ino);
  return 0;
}

void fs_init(void) {
  struct dentry *root = d_alloc("", GFP_KERNEL);
  struct inode *root_ino = new_inode(2, GFP_KERNEL);
  root->d_inode = root_ino;
  root_ino->i_dentry = root;
  fs_root = root;
  next_ino = 0;
}
|kc}

test/test_extensions.ml: Alcotest Annotdb Errcheck Filename Kc Kernel List Locksafe Printf Stackcheck Sys Userck

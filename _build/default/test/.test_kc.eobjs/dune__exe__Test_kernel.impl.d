test/test_kernel.ml: Alcotest Blockstop Deputy Ivy Kc Kernel List Printf Vm

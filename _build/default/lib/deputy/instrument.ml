(* Deputy check generation.

   Walks every function body and inserts runtime checks ({!Kc.Ir.Icheck})
   in front of the instructions that need them:

   - array indexing ([a\[i\]] on a sized array): 0 <= i < size;
   - pointer dereference: bounds against the pointer's classification
     ([Safe] = one element, [Counted c], [Nullterm c]);
   - dereference of [__opt] pointers: non-null check (non-opt pointers
     are non-null by type invariant, as in Deputy);
   - assignments and call arguments between differently-annotated
     pointer types: the source must provide at least the destination's
     declared element count;
   - advancing a nullterm pointer ([s = s + 1]): the element being
     stepped over must not be the terminator.

   Code inside [__trusted] blocks or functions is not instrumented;
   every skipped operation is counted, giving the paper's "trusted
   code" census. Definite violations found at instrumentation time
   (e.g. constant out-of-bounds indices) are recorded as static
   errors and also compiled to failing checks. *)

module I = Kc.Ir

type stats = {
  mutable derefs_seen : int;
  mutable checks_nonnull : int;
  mutable checks_lower : int;
  mutable checks_upper : int;
  mutable checks_nt : int;
  mutable checks_count_flow : int; (* count-compatibility at assignments/calls *)
  mutable blessed_casts : int; (* allocator void-pointer results blessing a count *)
  mutable trusted_ops : int;
  mutable unresolved_ops : int; (* dependent count not instantiable here *)
  mutable static_errors : (string * Kc.Loc.t) list;
  mutable functions_instrumented : int;
}

let new_stats () =
  {
    derefs_seen = 0;
    checks_nonnull = 0;
    checks_lower = 0;
    checks_upper = 0;
    checks_nt = 0;
    checks_count_flow = 0;
    blessed_casts = 0;
    trusted_ops = 0;
    unresolved_ops = 0;
    static_errors = [];
    functions_instrumented = 0;
  }

let total_checks s =
  s.checks_nonnull + s.checks_lower + s.checks_upper + s.checks_nt + s.checks_count_flow

type ctx = {
  prog : I.program;
  stats : stats;
  fd : I.fundec;
  mutable trusted : bool; (* inside a __trusted region *)
  loc : Kc.Loc.t ref;
}

let mk_check ctx ck reason : I.stmt = { I.sk = I.Sinstr (I.Icheck (ck, reason)); sloc = !(ctx.loc) }

(* The type of an lvalue, via the same rules as the type checker. *)
let lval_type (lv : I.lval) : I.ty =
  let host, offs = lv in
  let base =
    match host with
    | I.Lvar v -> v.I.vty
    | I.Lmem e -> ( match e.I.ety with I.Tptr (t, _) -> t | t -> t)
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | I.Ofield f, _ -> f.I.fty
      | I.Oindex _, I.Tarray (t, _) -> t
      | I.Oindex _, t -> t)
    base offs

(* Try to instantiate a count expression at a use of [ptr_exp]. A
   count mentioning sibling fields needs the struct base, which we
   recover syntactically when the pointer is read straight out of a
   struct field. *)
let instantiate_count ctx (count : I.exp) (ptr_exp : I.exp) : I.exp option =
  if not (Annot.mentions_self count) then Some count
  else
    match ptr_exp.I.e with
    | I.Elval (host, offs) when offs <> [] -> (
        match List.rev offs with
        | I.Ofield _ :: rev_base -> Some (Annot.subst_self (host, List.rev rev_base) count)
        | _ ->
            ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + 1;
            None)
    | _ ->
        ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + 1;
        None

(* The available element count of a pointer-typed expression, as an
   expression valid at the use site. [None] means "do not check"
   (trusted or not instantiable). *)
let actual_count ctx (e : I.exp) : I.exp option =
  match Annot.classify_ty e.I.ety with
  | None -> None
  | Some Annot.Trusted ->
      ctx.stats.trusted_ops <- ctx.stats.trusted_ops + 1;
      None
  | Some Annot.Safe -> Some I.one
  | Some (Annot.Counted c) | Some (Annot.Nullterm c) -> instantiate_count ctx c e

(* ------------------------------------------------------------------ *)
(* Checks for reads/writes through memory.                            *)
(* ------------------------------------------------------------------ *)

let bounds_checks ctx ~(is_write : bool) (p : I.exp) : I.stmt list =
  ctx.stats.derefs_seen <- ctx.stats.derefs_seen + 1;
  if ctx.trusted then begin
    ctx.stats.trusted_ops <- ctx.stats.trusted_ops + 1;
    []
  end
  else begin
    let base, idx = Annot.split_base p in
    let checks = ref [] in
    let add ck reason = checks := mk_check ctx ck reason :: !checks in
    (* Null check only for __opt pointers; others are non-null by
       invariant. *)
    (match base.I.ety with
    | I.Tptr (_, a) when a.I.a_opt ->
        ctx.stats.checks_nonnull <- ctx.stats.checks_nonnull + 1;
        add (I.Ck_nonnull base) "deref of __opt pointer"
    | _ -> ());
    let idx_const = Annot.const_fold idx in
    (match Annot.classify_ty base.I.ety with
    | None | Some Annot.Trusted ->
        if Annot.classify_ty base.I.ety = Some Annot.Trusted then
          ctx.stats.trusted_ops <- ctx.stats.trusted_ops + 1
    | Some Annot.Safe -> (
        match idx_const with
        | Some 0L -> ()
        | Some n ->
            ctx.stats.static_errors <-
              (Printf.sprintf "index %Ld on a one-element pointer" n, !(ctx.loc))
              :: ctx.stats.static_errors;
            ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
            add (I.Ck_lt (idx, I.one)) "index on safe pointer"
        | None ->
            ctx.stats.checks_lower <- ctx.stats.checks_lower + 1;
            add (I.Ck_le (I.zero, idx)) "safe pointer lower bound";
            ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
            add (I.Ck_lt (idx, I.one)) "safe pointer upper bound")
    | Some (Annot.Counted c) -> (
        match instantiate_count ctx c base with
        | None -> ()
        | Some count -> (
            let count_const = Annot.const_fold count in
            match (idx_const, count_const) with
            | Some i, Some n when i >= 0L && i < n -> () (* statically fine *)
            | Some i, Some n ->
                ctx.stats.static_errors <-
                  (Printf.sprintf "index %Ld out of bounds of %Ld" i n, !(ctx.loc))
                  :: ctx.stats.static_errors;
                ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
                add (I.Ck_lt (idx, count)) "constant index out of bounds"
            | _ ->
                (match idx_const with
                | Some i when i >= 0L -> ()
                | _ ->
                    ctx.stats.checks_lower <- ctx.stats.checks_lower + 1;
                    add (I.Ck_le (I.zero, idx)) "counted pointer lower bound");
                ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
                add (I.Ck_lt (idx, count)) "counted pointer upper bound"))
    | Some (Annot.Nullterm c) -> (
        match instantiate_count ctx c base with
        | None -> ()
        | Some count ->
            (match idx_const with
            | Some i when i >= 0L -> ()
            | _ ->
                ctx.stats.checks_lower <- ctx.stats.checks_lower + 1;
                add (I.Ck_le (I.zero, idx)) "nullterm lower bound");
            if is_write then begin
              (* Writes must not clobber the terminator. *)
              ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
              add (I.Ck_lt (idx, count)) "nullterm write below count"
            end
            else if not (idx_const = Some 0L) then begin
              ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
              add (I.Ck_le (idx, count)) "nullterm read within count+1"
            end));
    List.rev !checks
  end

(* Collect checks for every memory access inside an expression
   (reads), recursing into sub-expressions first. *)
let rec checks_of_exp ctx (e : I.exp) : I.stmt list =
  match e.I.e with
  | I.Econst _ | I.Estr _ | I.Efun _ | I.Eself_field _ -> []
  | I.Elval lv -> checks_of_lval ctx ~is_write:false lv
  | I.Eunop (_, e1) | I.Ecast (_, e1) -> checks_of_exp ctx e1
  | I.Ebinop (_, a, b) -> checks_of_exp ctx a @ checks_of_exp ctx b
  | I.Econd (c, a, b) ->
      (* Arm accesses are conditional; hoisting their checks would be
         unsound (they might not execute). Only the condition is
         unconditionally evaluated; arms with derefs keep VM-level
         safety. Count them as unresolved. *)
      let arm_derefs =
        I.fold_exp
          (fun acc sub -> match sub.I.e with I.Elval (I.Lmem _, _) -> acc + 1 | _ -> acc)
          0 a
        + I.fold_exp
            (fun acc sub -> match sub.I.e with I.Elval (I.Lmem _, _) -> acc + 1 | _ -> acc)
            0 b
      in
      if arm_derefs > 0 then ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + arm_derefs;
      checks_of_exp ctx c
  | I.Eaddrof lv | I.Estartof lv ->
      (* Taking an address performs no access; only inner index
         expressions are evaluated. *)
      let _, offs = lv in
      List.concat_map
        (function I.Oindex ie -> checks_of_exp ctx ie | I.Ofield _ -> [])
        offs

and checks_of_lval ctx ~is_write ((host, offs) : I.lval) : I.stmt list =
  let host_checks, host_ty =
    match host with
    | I.Lvar v -> ([], v.I.vty)
    | I.Lmem p ->
        let inner = checks_of_exp ctx p in
        let t = match p.I.ety with I.Tptr (t, _) -> t | t -> t in
        (inner @ bounds_checks ctx ~is_write p, t)
  in
  (* Array index bounds along the offset path. *)
  let checks, _ =
    List.fold_left
      (fun (acc, ty) off ->
        match (off, ty) with
        | I.Ofield f, _ -> (acc, f.I.fty)
        | I.Oindex ie, I.Tarray (elt, n) ->
            let ichecks = checks_of_exp ctx ie in
            let bc =
              if ctx.trusted then begin
                ctx.stats.trusted_ops <- ctx.stats.trusted_ops + 1;
                []
              end
              else begin
                match Annot.const_fold ie with
                | Some i when i >= 0L && i < Int64.of_int n -> []
                | Some i ->
                    ctx.stats.static_errors <-
                      ( Printf.sprintf "constant index %Ld out of array bounds %d" i n,
                        !(ctx.loc) )
                      :: ctx.stats.static_errors;
                    ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
                    [ mk_check ctx (I.Ck_lt (ie, I.const_int (Int64.of_int n))) "array bound" ]
                | None ->
                    ctx.stats.checks_lower <- ctx.stats.checks_lower + 1;
                    ctx.stats.checks_upper <- ctx.stats.checks_upper + 1;
                    [
                      mk_check ctx (I.Ck_le (I.zero, ie)) "array lower bound";
                      mk_check ctx
                        (I.Ck_lt (ie, I.const_int (Int64.of_int n)))
                        "array upper bound";
                    ]
              end
            in
            (acc @ ichecks @ bc, elt)
        | I.Oindex _, t -> (acc, t))
      (host_checks, host_ty) offs
  in
  checks

(* ------------------------------------------------------------------ *)
(* Count-compatibility at assignments and calls.                      *)
(* ------------------------------------------------------------------ *)

let is_null_const (e : I.exp) = match e.I.e with I.Econst 0L -> true | _ -> false

(* Flow of [src] into a destination of type [dst_ty]; [dst_base] is
   the struct base when the destination is a field (for self counts). *)
let flow_checks ctx ~(dst_ty : I.ty) ~(dst_base : I.lval option) (src : I.exp) : I.stmt list =
  if ctx.trusted then []
  else
    match dst_ty with
    | I.Tptr (_, dst_a) ->
        if dst_a.I.a_trusted then begin
          ctx.stats.trusted_ops <- ctx.stats.trusted_ops + 1;
          []
        end
        else if is_null_const src then begin
          (* Null into a non-opt pointer: a definite invariant
             violation unless the destination is __opt. *)
          if not dst_a.I.a_opt then
            ctx.stats.static_errors <-
              ("null assigned to non-__opt pointer", !(ctx.loc)) :: ctx.stats.static_errors;
          []
        end
        else begin
          let checks = ref [] in
          (* Optional source into non-optional destination. *)
          (if (not dst_a.I.a_opt) && Annot.is_opt_ty src.I.ety then begin
             ctx.stats.checks_nonnull <- ctx.stats.checks_nonnull + 1;
             checks := mk_check ctx (I.Ck_nonnull src) "opt pointer into non-opt" :: !checks
           end);
          (* Element count compatibility. *)
          let required =
            match (dst_a.I.a_count, dst_a.I.a_nullterm) with
            | Some c, _ ->
                if Annot.mentions_self c then
                  match dst_base with
                  | Some base -> Some (Annot.subst_self base c)
                  | None ->
                      ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + 1;
                      None
                else Some c
            | None, _ -> None
          in
          (match required with
          | None -> ()
          | Some req -> (
              (* Look through pointer casts: counts are a property of
                 where the value came from. A void* source (allocator
                 result) blesses the destination's count — the VM's
                 allocation map backs it, and the operation is counted
                 like Deputy's allocator trust. *)
              let origin = Annot.strip_ptr_casts src in
              let from_void =
                match origin.I.ety with I.Tptr (I.Tvoid, _) -> true | _ -> false
              in
              if from_void then ctx.stats.blessed_casts <- ctx.stats.blessed_casts + 1;
              match (if from_void then None else actual_count ctx origin) with
              | None -> ()
              | Some actual ->
                  if Annot.exp_equal req actual then ()
                  else begin
                    match (req.I.e, actual.I.e) with
                    | I.Econst r, I.Econst a when a >= r -> ()
                    | I.Econst r, I.Econst a ->
                        ctx.stats.static_errors <-
                          ( Printf.sprintf "pointer with %Ld elements flows where %Ld required" a r,
                            !(ctx.loc) )
                          :: ctx.stats.static_errors;
                        ctx.stats.checks_count_flow <- ctx.stats.checks_count_flow + 1;
                        checks := mk_check ctx (I.Ck_le (req, actual)) "count flow" :: !checks
                    | _ ->
                        ctx.stats.checks_count_flow <- ctx.stats.checks_count_flow + 1;
                        checks := mk_check ctx (I.Ck_le (req, actual)) "count flow" :: !checks
                  end));
          (* Nullterm compatibility: a nullterm destination requires a
             nullterm source. *)
          if dst_a.I.a_nullterm && not (Annot.is_opt_ty src.I.ety && is_null_const src) then begin
            match Annot.classify_ty src.I.ety with
            | Some (Annot.Nullterm _) | None -> ()
            | Some Annot.Trusted -> ()
            | Some (Annot.Safe | Annot.Counted _) ->
                ctx.stats.static_errors <-
                  ("non-nullterm pointer flows into nullterm", !(ctx.loc))
                  :: ctx.stats.static_errors
          end;
          List.rev !checks
        end
    | _ -> []

(* ------------------------------------------------------------------ *)
(* Instruction / statement instrumentation.                           *)
(* ------------------------------------------------------------------ *)

(* Writes to a variable or field that a dependent count mentions must
   preserve the invariant that the counted pointer still has that many
   elements. Deputy's practical rule: the count may shrink freely, and
   may take any value while the dependent pointer is null (the
   initialization pattern `v.len = n; v.data = kmalloc(...)`); growing
   a live pointer's count needs trusted code.

   The check is Ck_le(new, ptr == null ? new : old_count), evaluated
   before the store so `old_count` reads the old value. *)
let count_update_checks ctx (lv : I.lval) (rhs : I.exp) : I.stmt list =
  if ctx.trusted then []
  else begin
    let mk_guard ~(ptr : I.exp) ~(old_count : I.exp) =
      let is_null =
        I.mk_exp (I.Ebinop (Kc.Ast.Eq, ptr, I.mk_exp (I.Ecast (ptr.I.ety, I.zero)) ptr.I.ety))
          I.int_type
      in
      let bound = I.mk_exp (I.Econd (is_null, rhs, old_count)) old_count.I.ety in
      ctx.stats.checks_count_flow <- ctx.stats.checks_count_flow + 1;
      mk_check ctx (I.Ck_le (rhs, bound)) "dependent count update"
    in
    match lv with
    | host, offs when offs <> [] -> (
        (* Field write: siblings whose count mentions this field. *)
        match List.rev offs with
        | I.Ofield f :: rev_base when I.is_integral f.I.fty -> (
            let base = (host, List.rev rev_base) in
            match Hashtbl.find_opt ctx.prog.I.comps f.I.fcomp with
            | None -> []
            | Some comp ->
                List.filter_map
                  (fun (sib : I.fieldinfo) ->
                    match sib.I.fty with
                    | I.Tptr (_, a) -> (
                        match a.I.a_count with
                        | Some c
                          when I.fold_exp
                                 (fun acc sub ->
                                   acc
                                   ||
                                   match sub.I.e with
                                   | I.Eself_field (_, fname) -> fname = f.I.fname
                                   | _ -> false)
                                 false c ->
                            let ptr =
                              I.mk_exp (I.Elval (fst base, snd base @ [ I.Ofield sib ])) sib.I.fty
                            in
                            let old_count = Annot.subst_self base c in
                            Some (mk_guard ~ptr ~old_count)
                        | _ -> None)
                    | _ -> None)
                  comp.I.cfields)
        | _ -> [])
    | I.Lvar v, [] when I.is_integral v.I.vty ->
        (* Local/param write: local pointers whose count mentions v. *)
        List.filter_map
          (fun (p : I.varinfo) ->
            match p.I.vty with
            | I.Tptr (_, a) -> (
                match a.I.a_count with
                | Some c
                  when I.fold_exp
                         (fun acc sub ->
                           acc
                           ||
                           match sub.I.e with
                           | I.Elval (I.Lvar w, []) -> w.I.vid = v.I.vid
                           | _ -> false)
                         false c ->
                    let ptr = I.mk_exp (I.Elval (I.Lvar p, [])) p.I.vty in
                    Some (mk_guard ~ptr ~old_count:c)
                | _ -> None)
            | _ -> None)
          (ctx.fd.I.sformals @ ctx.fd.I.slocals)
    | _ -> []
  end

(* Detect nullterm pointer advance: v = v + 1 where v is nullterm. *)
let nt_advance_check ctx (lv : I.lval) (e : I.exp) : I.stmt list =
  match (lv, e.I.e) with
  | (I.Lvar v, []), I.Ebinop (Kc.Ast.Add, { I.e = I.Elval (I.Lvar w, []); _ }, inc)
    when v.I.vid = w.I.vid -> (
      match (Annot.classify_ty v.I.vty, Annot.const_fold inc) with
      | Some (Annot.Nullterm _), Some 1L ->
          if ctx.trusted then []
          else begin
            ctx.stats.checks_nt <- ctx.stats.checks_nt + 1;
            let width =
              match v.I.vty with
              | I.Tptr (t, _) -> ( try Kc.Layout.size_of ctx.prog t with _ -> 1)
              | _ -> 1
            in
            [
              mk_check ctx
                (I.Ck_nt_next (I.mk_exp (I.Elval (I.Lvar v, [])) v.I.vty, width))
                "nullterm advance";
            ]
          end
      | Some (Annot.Nullterm _), _ ->
          ctx.stats.static_errors <-
            ("nullterm pointer advanced by more than one", !(ctx.loc)) :: ctx.stats.static_errors;
          []
      | _ -> [])
  | _ -> []

let checks_of_instr ctx (instr : I.instr) : I.stmt list =
  match instr with
  | I.Iset (lv, e) ->
      let dst_ty = lval_type lv in
      let dst_base =
        match List.rev (snd lv) with
        | I.Ofield _ :: rev_rest -> Some (fst lv, List.rev rev_rest)
        | _ -> None
      in
      checks_of_exp ctx e
      @ checks_of_lval ctx ~is_write:true lv
      @ nt_advance_check ctx lv e
      @ count_update_checks ctx lv e
      @ flow_checks ctx ~dst_ty ~dst_base e
  | I.Icall (ret, target, args) ->
      let arg_checks = List.concat_map (checks_of_exp ctx) args in
      let ret_checks =
        match ret with Some lv -> checks_of_lval ctx ~is_write:true lv | None -> []
      in
      let target_checks =
        match target with I.Indirect fe -> checks_of_exp ctx fe | I.Direct _ -> []
      in
      let param_flow =
        match target with
        | I.Direct name -> (
            match I.find_fun ctx.prog name with
            | Some callee ->
                let bindings =
                  List.map2
                    (fun (f : I.varinfo) a -> (f.I.vid, a))
                    callee.I.sformals
                    (List.filteri (fun i _ -> i < List.length callee.I.sformals) args)
                in
                List.concat
                  (List.map2
                     (fun (f : I.varinfo) arg ->
                       match f.I.vty with
                       | I.Tptr (_, a) ->
                           let inst_ty =
                             match a.I.a_count with
                             | Some c when Annot.only_mentions_formals callee.I.sformals c ->
                                 let c' = Annot.subst_formals bindings c in
                                 I.Tptr
                                   ( (match f.I.vty with I.Tptr (t, _) -> t | t -> t),
                                     { a with I.a_count = Some c' } )
                             | Some _ ->
                                 ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + 1;
                                 I.Tptr
                                   ( (match f.I.vty with I.Tptr (t, _) -> t | t -> t),
                                     { a with I.a_count = None; I.a_trusted = true } )
                             | None -> f.I.vty
                           in
                           flow_checks ctx ~dst_ty:inst_ty ~dst_base:None arg
                       | _ -> [])
                     callee.I.sformals
                     (List.filteri (fun i _ -> i < List.length callee.I.sformals) args))
            | None -> [])
        | I.Indirect _ ->
            (* Count flow through function pointers is not checked;
               recorded as unresolved (Deputy would require trusted or
               dependent function types). *)
            List.iter
              (fun (a : I.exp) ->
                match Annot.classify_ty a.I.ety with
                | Some _ -> ctx.stats.unresolved_ops <- ctx.stats.unresolved_ops + 1
                | None -> ())
              args;
            []
      in
      arg_checks @ target_checks @ param_flow @ ret_checks
  | I.Icheck _ | I.Irc_inc _ | I.Irc_dec _ | I.Irc_update _ -> []

let rec instrument_block ctx (b : I.block) : I.block = List.concat_map (instrument_stmt ctx) b

and instrument_stmt ctx (s : I.stmt) : I.stmt list =
  ctx.loc := s.I.sloc;
  match s.I.sk with
  | I.Sinstr instr -> checks_of_instr ctx instr @ [ s ]
  | I.Sif (c, b1, b2) ->
      let cond_checks = if ctx.trusted then [] else checks_of_exp ctx c in
      cond_checks
      @ [ { s with I.sk = I.Sif (c, instrument_block ctx b1, instrument_block ctx b2) } ]
  | I.Swhile (c, body, step) ->
      let cond_checks = if ctx.trusted then [] else checks_of_exp ctx c in
      let body' = instrument_block ctx body in
      let step' = instrument_block ctx step in
      if cond_checks = [] then [ { s with I.sk = I.Swhile (c, body', step') } ]
      else
        (* The condition needs checks on every evaluation: rewrite to
           an infinite loop with an explicit conditional break. *)
        let break_if_done =
          { s with I.sk = I.Sif (c, [], [ { s with I.sk = I.Sbreak } ]) }
        in
        [ { s with I.sk = I.Swhile (I.one, cond_checks @ [ break_if_done ] @ body', step') } ]
  | I.Sdowhile (body, c) ->
      let cond_checks = if ctx.trusted then [] else checks_of_exp ctx c in
      let body' = instrument_block ctx body in
      [ { s with I.sk = I.Sdowhile (body' @ cond_checks, c) } ]
  | I.Sswitch (e, cases) ->
      let e_checks = if ctx.trusted then [] else checks_of_exp ctx e in
      e_checks
      @ [
          {
            s with
            I.sk =
              I.Sswitch
                ( e,
                  List.map (fun c -> { c with I.cbody = instrument_block ctx c.I.cbody }) cases );
          };
        ]
  | I.Sreturn (Some e) ->
      let e_checks = if ctx.trusted then [] else checks_of_exp ctx e in
      e_checks @ [ s ]
  | I.Sreturn None | I.Sbreak | I.Scontinue -> [ s ]
  | I.Sblock b -> [ { s with I.sk = I.Sblock (instrument_block ctx b) } ]
  | I.Sdelayed b -> [ { s with I.sk = I.Sdelayed (instrument_block ctx b) } ]
  | I.Strusted b ->
      let was = ctx.trusted in
      ctx.trusted <- true;
      let b' = instrument_block ctx b in
      ctx.trusted <- was;
      [ { s with I.sk = I.Strusted b' } ]

let instrument_fundec prog stats (fd : I.fundec) : unit =
  let trusted_fn = List.mem Kc.Ast.Ftrusted fd.I.fannots in
  let ctx = { prog; stats; fd; trusted = trusted_fn; loc = ref fd.I.floc } in
  fd.I.fbody <- instrument_block ctx fd.I.fbody;
  stats.functions_instrumented <- stats.functions_instrumented + 1

(* Instrument a whole program in place; returns the census. *)
let instrument_program (prog : I.program) : stats =
  let stats = new_stats () in
  List.iter (fun fd -> instrument_fundec prog stats fd) prog.I.funcs;
  stats

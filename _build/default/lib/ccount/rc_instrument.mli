(** The CCount C-to-C rewriting at IR level (paper §2.2): pointer
    writes through tracked slots become inc-then-dec refcount updates
    ({!Kc.Ir.Irc_update}); call results reach tracked slots through a
    temporary; pointer-bearing struct assignments update every pointer
    field's counts; [memset]/[memcpy] on pointer-bearing structs are
    retargeted to the type-aware builtins; the canonical allocation
    pattern registers RTTI. Plain register locals are skipped — the
    paper's footnote 2. *)

type stats = {
  mutable ptr_writes_instrumented : int;
  mutable register_writes_skipped : int;  (** the footnote-2 census *)
  mutable struct_copies : int;
  mutable memops_retyped : int;
  mutable alloc_sites_typed : int;
}

val new_stats : unit -> stats

(** Rewrite a whole program in place; the returned {!Typeinfo.t} must
    be registered with the machine before running. *)
val instrument_program : Kc.Ir.program -> stats * Typeinfo.t

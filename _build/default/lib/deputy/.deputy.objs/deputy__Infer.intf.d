lib/deputy/infer.mli: Format Kc

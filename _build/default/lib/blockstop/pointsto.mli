(** Points-to analysis for function pointers, at the paper's two
    precision levels:

    - {!Type_based}: the paper's "simple points-to analysis" — a
      pointer may target any address-taken function with a matching
      erased signature. Sound but the source of BlockStop's false
      positives.
    - {!Field_based}: the field-sensitive improvement the paper
      proposes — a pointer loaded from struct field (tag, f) may only
      target functions actually stored into that field. *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

type mode = Type_based | Field_based

type t = {
  prog : Kc.Ir.program;
  mode : mode;
  address_taken : SS.t;
  by_field : (string * string, SS.t) Hashtbl.t;
  var_fields : (int, (string * string) list) Hashtbl.t;
      (** local fptr var -> fields that flowed into it *)
  var_funs : (int, SS.t) Hashtbl.t;  (** local fptr var -> direct functions *)
  var_poisoned : (int, unit) Hashtbl.t;  (** untrackable values flowed in *)
}

val build : ?mode:mode -> Kc.Ir.program -> t

(** Candidate targets by signature among address-taken functions. *)
val type_based_targets : t -> Kc.Ir.ty -> SS.t

(** Possible targets of an indirect call through the given function
    pointer expression. *)
val targets : t -> Kc.Ir.exp -> SS.t

(** Campaign driver behind [ivy fuzz].

    Runs [count] cases derived from the root [seed]: every fourth case
    is left clean (precision witness), the rest get one fault planted
    from the taxonomy.  Each case goes through the differential
    {!Oracle}; on a violation, the case is optionally shrunk and a
    standalone [.kc] repro (with the verdict in a comment header) is
    written to [out]. *)

type case = {
  c_idx : int;
  c_seed : int;  (** per-case derived seed *)
  c_labels : (Fault.kind * string) list;
  c_violations : Oracle.violation list;
  c_repro : string option;  (** path of the shrunk repro file, if written *)
}

type summary = {
  s_seed : int;
  s_count : int;
  s_clean : int;  (** cases generated without a fault *)
  s_injected : (Fault.kind * int) list;  (** per-kind planted count *)
  s_detected : (Fault.kind * int) list;  (** per-kind credited count *)
  s_failures : case list;  (** cases with a non-empty violation list *)
  s_elapsed : float;  (** wall-clock seconds *)
}

val case_program : seed:int -> int -> Prog.t
(** [case_program ~seed i] builds case [i] of a campaign (exposed for
    tests and repro): clean when [i mod 4 = 0], one fault otherwise. *)

val run :
  ?shrink:bool ->
  ?out:string ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary

val render_summary : summary -> string
(** Human-readable campaign report. *)

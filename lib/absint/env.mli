(** Abstract environment: stable variable id -> {!Aval.t}, with an
    explicit [Unreachable] bottom. Absent bindings mean "unknown"
    (readers fall back to the variable's type range). *)

module IntMap : Map.S with type key = int

type t = Unreachable | Env of Aval.t IntMap.t

val bottom : t
(** [Unreachable]. *)

val empty : t
(** Reachable, no facts. *)

val equal : t -> t -> bool
val join : t -> t -> t
val widen : t -> t -> t
val narrow : t -> t -> t
val find_opt : int -> t -> Aval.t option
val set : int -> Aval.t -> t -> t
val forget : int -> t -> t
val is_unreachable : t -> bool

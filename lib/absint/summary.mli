(** Interprocedural summaries: one abstract return value per defined
    function, computed callees-first over the SCC condensation of the
    direct-call graph. Recursive components degrade to the return
    type's range. *)

val direct_callees : Kc.Ir.fundec -> string list

val sccs_of : Kc.Ir.fundec list -> Kc.Ir.fundec list list
(** Tarjan condensation of the direct-call graph, callees first.
    Exposed for tests. *)

val is_self_recursive : Kc.Ir.fundec -> bool
(** Does the function call itself directly? Shared with {!Relsum}. *)

val levels_of : Kc.Ir.fundec list list -> Kc.Ir.fundec list list list
(** Group topologically ordered SCCs ({i callees first}) into
    bottom-up dependency levels: every component of a level calls only
    into strictly lower levels, so one level's components can be
    solved in parallel. Exposed for tests. *)

val compute :
  ?cfg_of:(Kc.Ir.fundec -> Dataflow.Cfg.t) ->
  ?jobs:int ->
  ?ifaces:Transfer.ifaces ->
  Kc.Ir.program ->
  Transfer.summaries
(** [cfg_of] lets a caller (the engine context) share memoized CFGs;
    defaults to {!Dataflow.Cfg.build}. [jobs] (default 1) solves the
    components of one SCC level on a {!Par} pool — components within a
    level are mutually independent, and levels stay bottom-up, so the
    summaries are identical to the serial computation. With [jobs > 1]
    the caller must pass a [cfg_of] that is safe to call from several
    domains (pure, or fully pre-populated). *)

type kind =
  | Oob_write
  | Dangling_free
  | Atomic_block
  | Lock_inversion
  | Unchecked_err
  | User_deref

let all = [ Oob_write; Dangling_free; Atomic_block; Lock_inversion; Unchecked_err; User_deref ]

let to_string = function
  | Oob_write -> "oob-write"
  | Dangling_free -> "dangling-free"
  | Atomic_block -> "atomic-block"
  | Lock_inversion -> "lock-inversion"
  | Unchecked_err -> "unchecked-err"
  | User_deref -> "user-deref"

let of_string s = List.find_opt (fun k -> to_string k = s) all

let owner = function
  | Oob_write -> "deputy"
  | Dangling_free -> "ccount"
  | Atomic_block -> "blockstop"
  | Lock_inversion -> "locksafe"
  | Unchecked_err -> "errcheck"
  | User_deref -> "userck"

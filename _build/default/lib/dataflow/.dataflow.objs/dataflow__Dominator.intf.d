lib/dataflow/dominator.mli: Cfg Worklist

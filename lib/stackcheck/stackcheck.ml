(* Stack-overflow prevention (paper §3.1, second proposed analysis).

   "Given a sound call graph and information about the size of each
   stack frame, as in the Capriccio thread package, we can ensure that
   every possible chain of function calls stays within its allotted
   4 or 8 kB of stack space."

   Frame sizes come from the same layout rules the VM uses (memory-
   resident locals plus a fixed bookkeeping overhead, plus any
   [__frame_hint] annotation). The call graph is BlockStop's (sound
   for function pointers). Recursive cycles have unbounded static
   depth; the paper's answer — runtime checks on the recursive entry —
   is what [needs_runtime_check] reports. *)

module I = Kc.Ir
module SM = Map.Make (String)
module SS = Set.Make (String)

(* Fixed per-call bookkeeping (return address, saved registers). *)
let frame_overhead = 32

let frame_size (prog : I.program) (fd : I.fundec) : int =
  let needs_memory (v : I.varinfo) =
    v.I.vaddrof || match v.I.vty with I.Tcomp _ | I.Tarray _ -> true | _ -> false
  in
  let locals =
    List.fold_left
      (fun acc v ->
        if needs_memory v then begin
          let a = Kc.Layout.align_of prog v.I.vty in
          ((acc + a - 1) / a * a) + Kc.Layout.size_of prog v.I.vty
        end
        else acc)
      0
      (fd.I.sformals @ fd.I.slocals)
  in
  let hint =
    List.fold_left
      (fun acc a -> match a with Kc.Ast.Fframe_hint n -> acc + n | _ -> acc)
      0 fd.I.fannots
  in
  frame_overhead + locals + hint

type result = {
  frames : int SM.t; (* per-function frame bytes *)
  depths : int SM.t; (* max stack bytes from each function; -1 = unbounded *)
  recursive : SS.t; (* functions on a call-graph cycle *)
  worst_chain : string list; (* deepest non-recursive chain from an entry *)
  worst_bytes : int;
}

(* Max-depth over the call graph with cycle detection (DFS, memoized).
   Depth of f = frame(f) + max over callees. Unbounded if recursive. *)
let analyze ?(mode = Blockstop.Pointsto.Field_based) ?cg (prog : I.program) : result =
  let cg = match cg with Some cg -> cg | None -> Blockstop.Callgraph.build ~mode prog in
  let frames =
    List.fold_left
      (fun m (fd : I.fundec) -> SM.add fd.I.fname (frame_size prog fd) m)
      SM.empty prog.I.funcs
  in
  let depths = Hashtbl.create 64 in
  let recursive = ref SS.empty in
  let best_child = Hashtbl.create 64 in
  let rec depth (stack : SS.t) (f : string) : int =
    match Hashtbl.find_opt depths f with
    | Some d -> d
    | None ->
        if SS.mem f stack then begin
          recursive := SS.add f !recursive;
          -1 (* unbounded *)
        end
        else begin
          let frame = match SM.find_opt f frames with Some n -> n | None -> frame_overhead in
          let stack' = SS.add f stack in
          let deepest = ref 0 and child = ref None in
          List.iter
            (fun (e : Blockstop.Callgraph.edge) ->
              let callee = e.Blockstop.Callgraph.callee in
              match I.find_fun prog callee with
              | Some fd when not fd.I.fextern ->
                  let d = depth stack' callee in
                  if d = -1 then begin
                    deepest := -1;
                    child := Some callee
                  end
                  else if !deepest >= 0 && d > !deepest then begin
                    deepest := d;
                    child := Some callee
                  end
              | _ -> () (* builtins run on the host, no guest stack *))
            (Blockstop.Callgraph.callees cg f);
          let d = if !deepest = -1 then -1 else frame + !deepest in
          (* Memoize only completed (non-on-stack-dependent) results:
             a conservative approximation that is exact for DAGs. *)
          Hashtbl.replace depths f d;
          (match !child with Some c -> Hashtbl.replace best_child f c | None -> ());
          d
        end
  in
  List.iter (fun (fd : I.fundec) -> ignore (depth SS.empty fd.I.fname)) prog.I.funcs;
  let depths_map = Hashtbl.fold SM.add depths SM.empty in
  (* Deepest bounded chain. *)
  let worst_fn, worst_bytes =
    SM.fold
      (fun f d (bf, bd) -> if d > bd then (f, d) else (bf, bd))
      depths_map ("", 0)
  in
  let rec chain f acc =
    match Hashtbl.find_opt best_child f with
    | Some c when not (List.mem c acc) -> chain c (c :: acc)
    | _ -> List.rev acc
  in
  let worst_chain = if worst_fn = "" then [] else chain worst_fn [ worst_fn ] in
  { frames; depths = depths_map; recursive = !recursive; worst_chain; worst_bytes }

(* Does every chain from [entry] fit in [budget] bytes? *)
let fits (r : result) ~(entry : string) ~(budget : int) : bool =
  match SM.find_opt entry r.depths with
  | Some d -> d >= 0 && d <= budget
  | None -> true

(* Functions needing a runtime depth check: recursive entries (their
   static depth is unbounded). *)
let needs_runtime_check (r : result) : string list = SS.elements r.recursive

let pp fmt (r : result) =
  Format.fprintf fmt
    "stackcheck: %d functions, worst chain %d bytes (%s), %d recursive functions"
    (SM.cardinal r.depths) r.worst_bytes
    (String.concat " -> " r.worst_chain)
    (SS.cardinal r.recursive)

(** Recursive-descent parser for KC. The only context it keeps is the
    set of typedef names (the classic C lexer-hack, confined here). *)

exception Error of string * Loc.t

(** Parse one compilation unit. [typedefs] seeds typedef names defined
    by earlier units of the same program. *)
val parse_unit : ?typedefs:string list -> name:string -> string -> Ast.unit_

(** Typedef names a unit defines (to seed later units). *)
val typedef_names : Ast.unit_ -> string list

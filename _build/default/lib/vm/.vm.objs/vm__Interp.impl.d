lib/vm/interp.ml: Buffer Char Cost Hashtbl Int64 Kc List Machine Mem Stdlib String Trap

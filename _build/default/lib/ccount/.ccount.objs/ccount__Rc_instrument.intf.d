lib/ccount/rc_instrument.mli: Kc Typeinfo

(* Whole-program call graph with function-pointer resolution.

   Each node is a function name; each edge records the call site, how
   it was resolved (direct or via a pointer), and what is known about
   a GFP-flags argument (for [__blocking_if_gfp_wait] allocators). *)

module I = Kc.Ir
module SS = Set.Make (String)

type gfp_info =
  | No_gfp (* callee has no gfp-dependent behaviour *)
  | Gfp_const_wait (* constant argument with __GFP_WAIT set *)
  | Gfp_const_nowait (* constant argument without __GFP_WAIT *)
  | Gfp_unknown (* non-constant: conservatively may wait *)

type via = Direct | Via_fptr

type edge = {
  caller : string;
  callee : string;
  via : via;
  loc : Kc.Loc.t;
  gfp : gfp_info;
  in_delayed : bool; (* inside __delayed_free (irrelevant here, kept for reuse) *)
}

type t = {
  prog : I.program;
  pointsto : Pointsto.t;
  edges : edge list;
  callees_of : (string, edge list) Hashtbl.t;
  callers_of : (string, edge list) Hashtbl.t;
}

(* Position of a gfp-flags parameter of a callee, by declaration: the
   parameter named "gfp" or "flags" of integer type. *)
let gfp_param_index (fd : I.fundec) : int option =
  let rec go i = function
    | [] -> None
    | (v : I.varinfo) :: rest ->
        if (v.I.vname = "gfp" || v.I.vname = "flags" || v.I.vname = "gfp_mask")
           && I.is_integral v.I.vty
        then Some i
        else go (i + 1) rest
  in
  go 0 fd.I.sformals

let gfp_of_call (prog : I.program) (callee : string) (args : I.exp list) : gfp_info =
  match I.find_fun prog callee with
  | None -> No_gfp
  | Some fd ->
      if not (List.mem Kc.Ast.Fblocking_if_gfp_wait fd.I.fannots) then No_gfp
      else begin
        match gfp_param_index fd with
        | None -> Gfp_unknown
        | Some i -> (
            match List.nth_opt args i with
            | None -> Gfp_unknown
            | Some a -> (
                let rec const_of (e : I.exp) =
                  match e.I.e with
                  | I.Econst n -> Some n
                  | I.Ecast (_, inner) -> const_of inner
                  | _ -> None
                in
                match const_of a with
                | Some n -> if Int64.logand n 1L <> 0L then Gfp_const_wait else Gfp_const_nowait
                | None -> Gfp_unknown))
      end

let build ?(mode = Pointsto.Type_based) ?pointsto (prog : I.program) : t =
  (* A caller already holding points-to facts (the engine) passes them
     in; [mode] is then taken from the prebuilt result. *)
  let pointsto =
    match pointsto with Some p -> p | None -> Pointsto.build ~mode prog
  in
  let edges = ref [] in
  List.iter
    (fun (fd : I.fundec) ->
      I.iter_stmts
        (fun s ->
          match s.I.sk with
          | I.Sinstr (I.Icall (_, target, args)) -> (
              match target with
              | I.Direct callee ->
                  edges :=
                    {
                      caller = fd.I.fname;
                      callee;
                      via = Direct;
                      loc = s.I.sloc;
                      gfp = gfp_of_call prog callee args;
                      in_delayed = false;
                    }
                    :: !edges
              | I.Indirect fe ->
                  SS.iter
                    (fun callee ->
                      edges :=
                        {
                          caller = fd.I.fname;
                          callee;
                          via = Via_fptr;
                          loc = s.I.sloc;
                          gfp = gfp_of_call prog callee args;
                          in_delayed = false;
                        }
                        :: !edges)
                    (Pointsto.targets pointsto fe))
          | _ -> ())
        fd.I.fbody)
    prog.I.funcs;
  let callees_of = Hashtbl.create 64 and callers_of = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let add tbl key =
        let cur = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
        Hashtbl.replace tbl key (e :: cur)
      in
      add callees_of e.caller;
      add callers_of e.callee)
    !edges;
  { prog; pointsto; edges = !edges; callees_of; callers_of }

let callees (t : t) (fname : string) : edge list =
  match Hashtbl.find_opt t.callees_of fname with Some l -> l | None -> []

let callers (t : t) (fname : string) : edge list =
  match Hashtbl.find_opt t.callers_of fname with Some l -> l | None -> []

let n_edges t = List.length t.edges

(* All function names known to the graph (defined or extern). *)
let all_functions (t : t) : string list =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.prog.I.fun_by_name [] |> List.sort compare

(* Is [callee] reachable from [caller]? For tests and reports. *)
let reachable (t : t) ~from : SS.t =
  let seen = ref SS.empty in
  let rec dfs f =
    if not (SS.mem f !seen) then begin
      seen := SS.add f !seen;
      List.iter (fun e -> dfs e.callee) (callees t f)
    end
  in
  dfs from;
  !seen

lib/deputy/instrument.mli: Kc

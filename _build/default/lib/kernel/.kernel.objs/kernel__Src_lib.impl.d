lib/kernel/src_lib.ml:

(* Source locations for KC compilation units. *)

type t = { file : string; line : int; col : int }

let dummy = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

let pp fmt loc = Format.pp_print_string fmt (to_string loc)

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

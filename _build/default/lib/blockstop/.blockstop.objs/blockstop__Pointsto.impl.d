lib/blockstop/pointsto.ml: Hashtbl Kc List Printf Set String

(** Abstract environment: reduced product of a stable-variable map to
    {!Aval.t} and a {!Zone.t} of difference-bound constraints, with an
    explicit [Unreachable] bottom. Absent bindings mean "unknown"
    (readers fall back to the variable's type range); absent zone
    constraints mean +oo. *)

module IntMap : Map.S with type key = int

type t = Unreachable | Env of Aval.t IntMap.t * Zone.t

val bottom : t
(** [Unreachable]. *)

val empty : t
(** Reachable, no facts. *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Closes both zone arguments with their own interval seeds first
    (reduction), then joins pointwise. An infeasible side drops out. *)

val widen : t -> t -> t
(** Closes only the NEXT argument's zone; the accumulator passes
    through untouched so DBM widening terminates. *)

val narrow : t -> t -> t
val find_opt : int -> t -> Aval.t option
val set : int -> Aval.t -> t -> t

val forget : int -> t -> t
(** Drops the binding and every zone constraint on the variable. *)

val is_unreachable : t -> bool

(** {2 Zone access (transfer layer)} *)

val zone : t -> Zone.t option
val seeds : t -> Zone.seeds

val map_zone : (Zone.t -> Zone.t option) -> t -> t
(** Apply a partial zone transformer; [None] marks the state
    infeasible ([Unreachable]). *)

val close : t -> t
(** Close the zone with interval seeds and store the result (call
    before killing a variable so derived facts survive). Detects
    infeasibility. *)

val tighten_from_zone : t -> t
(** Meet derived unary zone bounds back into the interval component
    (the second reduction direction). Detects infeasibility. *)

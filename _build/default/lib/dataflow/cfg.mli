(** Control-flow graphs over the structured KC IR (no goto, so one
    recursive pass builds them). Node [entry] starts the function; a
    single synthetic [exit_] node receives every return. *)

type terminator =
  | Tjump  (** single successor *)
  | Tcond of Kc.Ir.exp  (** successors: then, else *)
  | Tswitch of Kc.Ir.exp  (** successors in case order, then default/join *)
  | Treturn of Kc.Ir.exp option

type node = {
  nid : int;
  mutable instrs : (Kc.Ir.instr * Kc.Loc.t) list;
  mutable term : terminator;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  fname : string;
  mutable nodes : node array;
  entry : int;
  exit_ : int;
}

val build : Kc.Ir.fundec -> t
val n_nodes : t -> int
val node : t -> int -> node

(** Reachable nodes in reverse-postorder. *)
val reverse_postorder : t -> int list

val reachable : t -> bool array
val all_instrs : t -> (int * Kc.Ir.instr * Kc.Loc.t) list

(** Graphviz rendering, for debugging. *)
val to_dot : t -> string

(** Deterministic cycle cost model. Absolute values are loosely
    calibrated to a mid-2000s x86; what the experiments rely on is the
    relative structure: memory traffic beats ALU work, checks cost a
    couple of cycles, and refcount updates are cheap on UP but need
    locked operations on SMP (the paper's footnote 4). *)

type profile =
  | Up  (** uniprocessor: plain read-modify-write *)
  | Smp_p4  (** SMP kernel on a Pentium 4: locked inc/dec *)

type t = {
  mutable cycles : int;
  profile : profile;
  mutable loads : int;
  mutable stores : int;
  mutable calls : int;
  mutable checks_executed : int;
  mutable rc_ops : int;
  mutable allocs : int;
  mutable frees : int;
}

val create : ?profile:profile -> unit -> t
val reset : t -> unit

(** Add raw cycles. *)
val charge : t -> int -> unit

(** Cost constants (exposed for tests and calibration). *)

val alu : int
val load_cost : int
val store_cost : int
val call_overhead : int
val branch : int
val check_cost : int
val nt_check_cost : int

(** One shadow-refcount read-modify-write under the given profile. *)
val rc_op_cost : profile -> int

val alloc_overhead : int
val free_overhead : int
val zero_per_16_bytes : int
val free_scan_per_chunk : int

(** Operation hooks used by the interpreter. *)

val op_load : t -> unit
val op_store : t -> unit
val op_alu : t -> unit
val op_branch : t -> unit
val op_call : t -> unit
val op_check : t -> unit
val op_nt_check : t -> unit
val op_rc : t -> unit
val op_alloc : t -> bytes:int -> zero:bool -> unit
val op_free : t -> bytes:int -> rc_scan:bool -> unit

(* Tests for the serve daemon's JSON framing and request handling,
   exercised in-process through [Serve.handle_line] — no socket needed
   to pin down the protocol. *)

module J = Ivy.Jsonx

(* ------------------------------------------------------------------ *)
(* Jsonx                                                              *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd\te");
        ("n", J.Num 42.0);
        ("f", J.Num 1.5);
        ("neg", J.Num (-7.0));
        ("t", J.Bool true);
        ("nil", J.Null);
        ("l", J.List [ J.Num 1.0; J.Str "x"; J.Obj [] ]);
      ]
  in
  let rendered = J.render v in
  Alcotest.(check bool) "round-trips" true (J.parse rendered = v);
  (* Integers render without a fractional part. *)
  Alcotest.(check string) "integer rendering" "[42,1.5]"
    (J.render (J.List [ J.Num 42.0; J.Num 1.5 ]))

let test_json_escapes () =
  Alcotest.(check string) "control chars escaped" "\"a\\nb\\tc\\\"d\\\\e\""
    (J.render (J.Str "a\nb\tc\"d\\e"));
  (match J.parse "\"\\u0041\\u00e9\"" with
  | J.Str s -> Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  match J.parse "\" spaced \\/ slash \"" with
  | J.Str s -> Alcotest.(check string) "escaped slash" " spaced / slash " s
  | _ -> Alcotest.fail "expected a string"

let test_json_raw_splicing () =
  Alcotest.(check string) "Raw rendered verbatim" "{\"report\":{\"pre\":[1]}}"
    (J.render (J.Obj [ ("report", J.Raw "{\"pre\":[1]}") ]))

let test_json_rejects_malformed () =
  let rejects s =
    Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true
      (match J.parse s with exception J.Parse_error _ -> true | _ -> false)
  in
  rejects "";
  rejects "{";
  rejects "{\"a\":}";
  rejects "[1,]";
  rejects "\"unterminated";
  rejects "tru";
  rejects "{} trailing";
  rejects "1 2"

let test_json_accessors () =
  let j = J.parse "{\"a\":{\"b\":3},\"l\":[1,2],\"s\":\"x\"}" in
  Alcotest.(check (option int)) "nested member" (Some 3)
    (Option.bind (J.member "a" j) (J.member "b") |> Fun.flip Option.bind J.to_int_opt);
  Alcotest.(check (option string)) "string member" (Some "x")
    (Option.bind (J.member "s" j) J.to_string_opt);
  Alcotest.(check (option int)) "list length" (Some 2)
    (Option.map List.length (Option.bind (J.member "l" j) J.to_list_opt));
  Alcotest.(check bool) "missing member" true (J.member "zzz" j = None)

(* ------------------------------------------------------------------ *)
(* handle_line                                                        *)
(* ------------------------------------------------------------------ *)

let preamble =
  "void spin_lock(long *l);\nvoid spin_unlock(long *l);\nvoid schedule(void) __blocking;\n"

let src_v1 =
  preamble
  ^ "long the_lock;\n\
     int helper(int x) { return x + 1; }\n\
     int start_kernel(void) {\n\
     \  spin_lock(&the_lock);\n\
     \  int r = helper(1);\n\
     \  spin_unlock(&the_lock);\n\
     \  return r;\n\
     }\n"

let src_v2 =
  preamble
  ^ "long the_lock;\n\
     int helper(int x) { return x + 2; }\n\
     int start_kernel(void) {\n\
     \  spin_lock(&the_lock);\n\
     \  int r = helper(1);\n\
     \  spin_unlock(&the_lock);\n\
     \  return r;\n\
     }\n"

let check_request ?(id = 1) ?(program = "p") src =
  J.render
    (J.Obj
       [
         ("id", J.Num (float_of_int id));
         ("method", J.Str "check");
         ( "params",
           J.Obj
             [
               ("program", J.Str program);
               ( "files",
                 J.List [ J.Obj [ ("path", J.Str "t.kc"); ("source", J.Str src) ] ] );
             ] );
       ])

let get path j =
  List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path

let result_bool path j =
  match get ("result" :: path) j with Some (J.Bool b) -> Some b | _ -> None

let error_code j =
  Option.bind (get [ "error"; "code" ] j) J.to_int_opt

let respond t line =
  let resp, sd = Ivy.Serve.handle_line t line in
  (J.parse resp, sd)

let test_serve_cold_then_warm () =
  let t = Ivy.Serve.create ~capacity:2 () in
  let r1, _ = respond t (check_request src_v1) in
  Alcotest.(check (option bool)) "cold check is not warm" (Some false)
    (result_bool [ "warm" ] r1);
  Alcotest.(check (option int)) "id echoed" (Some 1) (get [ "id" ] r1 |> Fun.flip Option.bind J.to_int_opt);
  Alcotest.(check bool) "report present" true (get [ "result"; "report"; "diagnostics" ] r1 <> None);
  (* Byte-identical resubmit: no parse, no builds. *)
  let r2, _ = respond t (check_request ~id:2 src_v1) in
  Alcotest.(check (option bool)) "resubmit is warm" (Some true) (result_bool [ "warm" ] r2);
  Alcotest.(check (option bool)) "source reuse detected" (Some true)
    (result_bool [ "reused_source" ] r2);
  Alcotest.(check bool) "reports byte-identical" true
    (get [ "result"; "report" ] r1 = get [ "result"; "report" ] r2);
  match get [ "result"; "stats"; "totals"; "builds" ] r2 with
  | Some (J.Num n) -> Alcotest.(check int) "zero builds on warm check" 0 (int_of_float n)
  | _ -> Alcotest.fail "stats.totals.builds missing"

let test_serve_edit_rebuilds () =
  let t = Ivy.Serve.create () in
  ignore (respond t (check_request src_v1));
  let r, _ = respond t (check_request ~id:2 src_v2) in
  Alcotest.(check (option bool)) "edited check is not warm" (Some false)
    (result_bool [ "warm" ] r);
  Alcotest.(check (option bool)) "source changed" (Some false)
    (result_bool [ "reused_source" ] r);
  (match get [ "result"; "update"; "changed" ] r with
  | Some (J.List [ J.Str f ]) -> Alcotest.(check string) "only helper changed" "helper" f
  | _ -> Alcotest.fail "update.changed missing");
  (* The edited report matches what a brand-new daemon computes cold. *)
  let fresh = Ivy.Serve.create () in
  let cold, _ = respond fresh (check_request src_v2) in
  Alcotest.(check bool) "incremental report matches cold daemon" true
    (get [ "result"; "report" ] r = get [ "result"; "report" ] cold)

let test_serve_programs_are_isolated () =
  let t = Ivy.Serve.create () in
  ignore (respond t (check_request ~program:"a" src_v1));
  (* A different program with the same sources still parses fresh
     state but does not disturb program a's warmth. *)
  ignore (respond t (check_request ~id:2 ~program:"b" src_v2));
  let r, _ = respond t (check_request ~id:3 ~program:"a" src_v1) in
  Alcotest.(check (option bool)) "program a still warm" (Some true)
    (result_bool [ "warm" ] r)

let test_serve_stats_and_invalidate () =
  let t = Ivy.Serve.create () in
  ignore (respond t (check_request src_v1));
  let s, _ = respond t {|{"id":9,"method":"stats"}|} in
  (match get [ "result"; "resident" ] s with
  | Some (J.Num n) -> Alcotest.(check int) "one resident program" 1 (int_of_float n)
  | _ -> Alcotest.fail "resident missing");
  let inv, _ =
    respond t
      {|{"id":10,"method":"invalidate","params":{"program":"p","artifact":"cfg","param":"helper"}}|}
  in
  (match get [ "result"; "dropped" ] inv with
  | Some (J.Num n) ->
      Alcotest.(check bool) "targeted invalidate drops downstream" true (int_of_float n > 0)
  | _ -> Alcotest.fail "dropped missing");
  (* After invalidation the next check rebuilds. *)
  let r, _ = respond t (check_request ~id:11 src_v1) in
  Alcotest.(check (option bool)) "post-invalidate check rebuilds" (Some false)
    (result_bool [ "warm" ] r);
  let bad, _ = respond t {|{"id":12,"method":"invalidate","params":{"program":"zzz"}}|} in
  Alcotest.(check (option int)) "unknown program error" (Some 2) (error_code bad)

let test_serve_errors () =
  let t = Ivy.Serve.create () in
  let bad_json, _ = respond t "{not json" in
  Alcotest.(check (option int)) "parse error code" (Some (-32700)) (error_code bad_json);
  let no_method, _ = respond t {|{"id":1}|} in
  Alcotest.(check (option int)) "invalid request code" (Some (-32600)) (error_code no_method);
  let bad_method, _ = respond t {|{"id":1,"method":"frobnicate"}|} in
  Alcotest.(check (option int)) "unknown method code" (Some (-32601)) (error_code bad_method);
  let no_files, _ = respond t {|{"id":1,"method":"check","params":{}}|} in
  Alcotest.(check (option int)) "missing files code" (Some (-32602)) (error_code no_files);
  let bad_analysis, _ =
    respond t
      (J.render
         (J.Obj
            [
              ("id", J.Num 1.0);
              ("method", J.Str "check");
              ( "params",
                J.Obj
                  [
                    ( "files",
                      J.List
                        [ J.Obj [ ("path", J.Str "t.kc"); ("source", J.Str src_v1) ] ] );
                    ("only", J.List [ J.Str "nosuch" ]);
                  ] );
            ]))
  in
  Alcotest.(check (option int)) "unknown analysis code" (Some 3) (error_code bad_analysis);
  let syntax_err, _ = respond t (check_request "int f( {") in
  Alcotest.(check (option int)) "frontend error code" (Some 1) (error_code syntax_err);
  match get [ "error"; "message" ] syntax_err with
  | Some (J.Str m) ->
      Alcotest.(check bool) "frontend message names the failure" true
        (String.length m > 0)
  | _ -> Alcotest.fail "error.message missing"

let test_serve_shutdown () =
  let t = Ivy.Serve.create () in
  let resp, sd = Ivy.Serve.handle_line t {|{"id":1,"method":"shutdown"}|} in
  Alcotest.(check bool) "shutdown flag set" true sd;
  Alcotest.(check (option string)) "acknowledged" (Some "bye")
    (Option.bind (get [ "result" ] (J.parse resp)) J.to_string_opt);
  let _, sd' = Ivy.Serve.handle_line t (check_request src_v1) in
  Alcotest.(check bool) "check does not set the flag" false sd'

let test_serve_batch () =
  let t = Ivy.Serve.create () in
  (* Two checks of the same new program in one batch: the batch
     pre-parses each distinct digest once and both succeed. *)
  let responses, sd =
    Ivy.Serve.handle_batch t
      [ check_request ~id:1 src_v1; check_request ~id:2 src_v1; {|{"id":3,"method":"stats"}|} ]
  in
  Alcotest.(check int) "three responses in order" 3 (List.length responses);
  Alcotest.(check bool) "no shutdown" false sd;
  let parsed = List.map J.parse responses in
  (match parsed with
  | [ r1; r2; s ] ->
      Alcotest.(check (option bool)) "first is cold" (Some false)
        (result_bool [ "warm" ] r1);
      Alcotest.(check (option bool)) "second (same digest) is warm" (Some true)
        (result_bool [ "warm" ] r2);
      Alcotest.(check bool) "stats last" true (get [ "result"; "requests" ] s <> None)
  | _ -> Alcotest.fail "expected three responses");
  Alcotest.(check string) "src_digest is deterministic"
    (Ivy.Serve.src_digest [ ("a", "x") ])
    (Ivy.Serve.src_digest [ ("a", "x") ])

let () =
  Alcotest.run "serve"
    [
      ( "jsonx",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "raw splicing" `Quick test_json_raw_splicing;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "cold then warm" `Quick test_serve_cold_then_warm;
          Alcotest.test_case "edit rebuilds" `Quick test_serve_edit_rebuilds;
          Alcotest.test_case "programs isolated" `Quick test_serve_programs_are_isolated;
          Alcotest.test_case "stats and invalidate" `Quick test_serve_stats_and_invalidate;
          Alcotest.test_case "protocol errors" `Quick test_serve_errors;
          Alcotest.test_case "shutdown" `Quick test_serve_shutdown;
          Alcotest.test_case "batch" `Quick test_serve_batch;
        ] );
    ]

(** The IR interpreter over {!Machine}.

    Scalars are [int64], normalized to the width/sign of their type;
    pointers are flat addresses; function pointers are encoded as
    negative sentinels. Locals that are scalar and never address-taken
    live in register slots — free to access and invisible to CCount
    (the paper's footnote 2); everything else lives on the VM stack.
    Every executed operation charges the cost model, so cycle counts
    are a deterministic function of the executed path.

    Two engines implement these semantics: {!Treewalk}, the structural
    reference evaluator, and {!Compile}, which pre-compiles each
    function once to flat basic blocks with resolved slots and runs
    ~an order of magnitude faster. They are strictly observationally
    equivalent (same traps, results, cycle counts); the compiled
    engine is the default. *)

type t = Vmstate.t = {
  prog : Kc.Ir.program;
  m : Machine.t;
  globals_addr : (int, int) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable rodata_brk : int;
  mutable static_brk : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  builtins : (string, t -> int64 list -> int64) Hashtbl.t;
  fun_of_id : (int, Kc.Ir.fundec) Hashtbl.t;
  mutable run_fn : (t -> Kc.Ir.fundec -> int64 list -> int64) option;
      (** installed execution engine; [None] = tree-walk reference *)
  mutable scratch : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t list;
      (** compiled-engine register-file pool *)
}

(** Which execution engine to install at {!create} time. The default
    comes from IVY_VM_ENGINE ("tree" forces the reference evaluator;
    anything else, or unset, selects the compiled engine). *)
type engine = Tree | Compiled

(** Function-pointer encoding. *)

val fptr_encode : int -> int64
val fptr_decode : int64 -> int option

(** Normalize a value to the width/sign of a type. *)
val norm : Kc.Ir.ty -> int64 -> int64

(** Create an interpreter: places and initializes globals, interns
    nothing else until needed, and installs the execution engine.
    Builtins must be installed separately (see {!Builtins.install} /
    {!Builtins.boot}). *)
val create : ?engine:engine -> Kc.Ir.program -> Machine.t -> t

(** Intern a string literal in rodata, returning its address. *)
val intern_string : t -> string -> int

(** Call a defined function (by fundec) with arguments, through the
    installed engine. *)
val call_function : t -> Kc.Ir.fundec -> int64 list -> int64

(** Read a null-terminated string out of VM memory. *)
val read_string : t -> int64 -> string

(** Run a defined function by name. *)
val run : t -> string -> int64 list -> int64

val register_builtin : t -> string -> (t -> int64 list -> int64) -> unit

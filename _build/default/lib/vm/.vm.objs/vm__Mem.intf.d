lib/vm/mem.mli: Bytes

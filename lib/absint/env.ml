(* Abstract environment: stable variable id -> abstract value, with an
   explicit Unreachable bottom so infeasible branches stop propagating
   facts (and their checks discharge trivially).

   An absent binding means "unknown": reads fall back to the variable's
   type range (Transfer.of_ty), so dropping a binding is always sound.
   Join/widen/narrow therefore operate on the keys common to both
   sides and drop the rest. *)

module IntMap = Map.Make (Int)

type t = Unreachable | Env of Aval.t IntMap.t

let bottom = Unreachable
let empty = Env IntMap.empty

let equal a b =
  match (a, b) with
  | Unreachable, Unreachable -> true
  | Env m1, Env m2 -> IntMap.equal Aval.equal m1 m2
  | _ -> false

let combine f a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Env m1, Env m2 ->
      Env (IntMap.merge (fun _ l r -> match (l, r) with Some x, Some y -> Some (f x y) | _ -> None) m1 m2)

let join = combine Aval.join
let widen = combine Aval.widen

let narrow a b =
  match (a, b) with
  | Unreachable, _ | _, Unreachable -> Unreachable
  | Env m1, Env m2 ->
      Env (IntMap.merge (fun _ l r -> match (l, r) with Some x, Some y -> Some (Aval.narrow x y) | _ -> None) m1 m2)

let find_opt vid = function Unreachable -> None | Env m -> IntMap.find_opt vid m

let set vid v = function
  | Unreachable -> Unreachable
  | Env m -> Env (IntMap.add vid v m)

let forget vid = function Unreachable -> Unreachable | Env m -> Env (IntMap.remove vid m)
let is_unreachable = function Unreachable -> true | Env _ -> false

lib/dataflow/dominator.ml: Array Cfg List Worklist

(* Workloads: the hbench-shaped suite behind Table 1, the fork /
   module-load workloads behind the CCount overhead numbers (E2), and
   the boot / idle / ssh-copy scripts behind the free census (E3).

   Each workload is one KC entry function appended to the corpus as
   its own compilation unit. Bandwidth rows move bulk data through
   counted-loop kernels (whose Deputy checks discharge statically);
   latency rows repeat a small operation whose pointer-heavy path
   keeps some checks at run time — which is exactly how the paper's
   Table 1 gets its shape. *)

type kind = Bw | Lat

type row = {
  id : string; (* hbench row name, e.g. "bw_mem_cp" *)
  kind : kind;
  entry : string; (* KC entry function, takes one int arg (iters) *)
  iters : int; (* iterations for the timed region *)
  paper : float; (* the paper's Table 1 value for EXPERIMENTS.md *)
}

let source =
  {kc|
// ---------------------------------------------------------------
// hbench workloads
// ---------------------------------------------------------------

enum wl_consts { WL_BUF_WORDS = 4096, WL_BUF_BYTES = 32768 };

long wl_src[4096];
long wl_dst[4096];
char wl_bytes[32768];

// ---- bandwidth rows ----------------------------------------------

long wl_bw_bzero(int iters) {
  int r;
  for (r = 0; r < iters; r++) {
    mem_clear(wl_dst, 4096);
  }
  return wl_dst[0];
}

long wl_bw_mem_cp(int iters) {
  int r;
  for (r = 0; r < iters; r++) {
    mem_copy(wl_dst, wl_src, 4096);
  }
  return wl_dst[1];
}

long wl_bw_mem_rd(int iters) {
  long s = 0;
  int r;
  for (r = 0; r < iters; r++) {
    s += mem_sum(wl_src, 4096);
  }
  return s;
}

long wl_bw_mem_wr(int iters) {
  int r;
  for (r = 0; r < iters; r++) {
    mem_fill(wl_dst, 4096, 7);
  }
  return wl_dst[2];
}

// Sequential file read: write once, then re-read the whole file.
long wl_bw_file_rd(int iters) {
  vfs_create("bigfile");
  int fd = vfs_open("/bigfile", 0);
  if (fd < 0) { return fd; }
  char block[1024];
  int i;
  for (i = 0; i < 1024; i++) { block[i] = i & 255; }
  int k;
  for (k = 0; k < 32; k++) {
    vfs_write(fd, block, 1024);
  }
  long total = 0;
  int r;
  for (r = 0; r < iters; r++) {
    struct file * __opt f = fd_table[fd];
    if (f != 0) { f->f_pos = 0; }
    int got = 1;
    while (got > 0) {
      got = vfs_read(fd, block, 1024);
      total = total + got;
    }
  }
  vfs_close(fd);
  return total;
}

// Read through freshly mapped pages.
long wl_bw_mmap_rd(int iters) {
  struct pgdir *pd = pgdir_alloc(GFP_KERNEL);
  int t;
  for (t = 0; t < 8; t++) {
    struct page *pg = page_alloc(GFP_KERNEL);
    int psz = 4096;
    char * __count(psz) __opt data = pg->data;
    if (data != 0) {
      int i;
      for (i = 0; i < psz; i++) { data[i] = i & 255; }
    }
    pgdir_map_addr(pd, t * 4096, pg, GFP_KERNEL);
  }
  long s = 0;
  int psz = 4096;
  int r;
  for (r = 0; r < iters; r++) {
    for (t = 0; t < 8; t++) {
      struct page * __opt pg = pgdir_get_addr(pd, t * 4096);
      if (pg != 0) {
        char * __count(psz) __opt data = pg->data;
        if (data != 0) {
          int i;
          for (i = 0; i < psz; i++) { s += data[i]; }
        }
      }
    }
  }
  // Unmap the pages.
  for (t = 0; t < 8; t++) {
    struct page * __opt pg = pgdir_get_addr(pd, t * 4096);
    if (pg != 0) {
      pgdir_map_addr(pd, t * 4096, 0, GFP_KERNEL);
    }
  }
  pgdir_destroy(pd);
  return s;
}

long wl_bw_pipe(int iters) {
  struct kfifo *f = kfifo_alloc(8192, GFP_KERNEL);
  char chunk[1024];
  int i;
  for (i = 0; i < 1024; i++) { chunk[i] = i & 255; }
  long moved = 0;
  int r;
  for (r = 0; r < iters; r++) {
    int k;
    for (k = 0; k < 4; k++) {
      kfifo_put(f, chunk, 1024);
      moved = moved + kfifo_get(f, chunk, 1024);
    }
  }
  kfifo_free(f);
  return moved;
}

long wl_bw_tcp(int iters) {
  int s1 = sock_create(6);
  int s2 = sock_create(6);
  if (s1 < 0) { return s1; }
  if (s2 < 0) { return s2; }
  sock_connect(s1, s2);
  long sent = 0;
  char drain[512];
  int r;
  for (r = 0; r < iters; r++) {
    sent = sent + tcp_send(s1, s2, wl_bytes, 4096);
    int got = 1;
    while (got > 0) {
      got = udp_recv(s2, drain, 512);
    }
  }
  sock_release(s2);
  sock_release(s1);
  return sent;
}

// ---- latency rows -------------------------------------------------

// Minimal syscall: getpid through the current task.
long wl_lat_syscall(int iters) {
  long acc = 0;
  int r;
  for (r = 0; r < iters; r++) {
    struct task * __opt t = current_task;
    if (t != 0) {
      acc += t->pid;
    }
  }
  return acc;
}

long wl_lat_ctx(int iters) {
  // Two runnable tasks ping-pong.
  struct task * __opt self = current_task;
  if (self == 0) { return -1; }
  struct task * __opt a = do_fork(self, GFP_KERNEL);
  struct task * __opt b = do_fork(self, GFP_KERNEL);
  int r;
  for (r = 0; r < iters; r++) {
    struct task * __opt next = rq_pick();
    context_switch(next);
  }
  if (b != 0) { struct task * __opt bb = b; do_exit(bb); }
  if (a != 0) { struct task * __opt aa = a; do_exit(aa); }
  context_switch(self);
  return iters;
}

long wl_lat_ctx2(int iters) {
  // Eight runnable tasks: a longer runqueue scan per switch.
  struct task * __opt self = current_task;
  if (self == 0) { return -1; }
  struct task * __opt kids[8];
  int i;
  for (i = 0; i < 8; i++) {
    kids[i] = 0;
  }
  for (i = 0; i < 6; i++) {
    kids[i] = do_fork(self, GFP_KERNEL);
  }
  int r;
  for (r = 0; r < iters; r++) {
    struct task * __opt next = rq_pick();
    context_switch(next);
  }
  for (i = 0; i < 6; i++) {
    struct task * __opt k = kids[i];
    if (k != 0) {
      do_exit(k);
      kids[i] = 0;
    }
  }
  context_switch(self);
  return iters;
}

long wl_lat_fs(int iters) {
  vfs_create("system_configuration_db");
  vfs_create("service_credentials_tab");
  long found = 0;
  int r;
  for (r = 0; r < iters; r++) {
    int fd = vfs_open("/system_configuration_db", 0);
    if (fd >= 0) {
      found++;
      vfs_close(fd);
    }
    struct dentry * __opt d2 = path_lookup("/service_credentials_tab");
    if (d2 != 0) { found++; }
  }
  return found;
}

long wl_lat_fslayer(int iters) {
  vfs_create("small");
  int fd = vfs_open("/small", 0);
  if (fd < 0) { return fd; }
  char tiny[16];
  int i;
  for (i = 0; i < 16; i++) { tiny[i] = i; }
  vfs_write(fd, tiny, 16);
  long total = 0;
  int r;
  for (r = 0; r < iters; r++) {
    struct file * __opt f = fd_table[fd];
    if (f != 0) { f->f_pos = 0; }
    total = total + vfs_read(fd, tiny, 16);
  }
  vfs_close(fd);
  return total;
}

long wl_lat_mmap(int iters) {
  struct pgdir *pd = pgdir_alloc(GFP_KERNEL);
  struct page *pg = page_alloc(GFP_KERNEL);
  long ok = 0;
  int r;
  for (r = 0; r < iters; r++) {
    long addr = 262144 + r * 4096;
    pgdir_map_addr(pd, addr, pg, GFP_KERNEL);
    struct page * __opt got = pgdir_get_addr(pd, addr);
    if (got != 0) { ok++; }
    pgdir_map_addr(pd, addr, 0, GFP_KERNEL);
  }
  pgdir_destroy(pd);
  page_free(pg);
  return ok;
}

long wl_lat_pipe(int iters) {
  struct kfifo *f = kfifo_alloc(256, GFP_KERNEL);
  char msg[16];
  int i;
  for (i = 0; i < 16; i++) { msg[i] = i; }
  long moved = 0;
  int r;
  for (r = 0; r < iters; r++) {
    kfifo_put(f, msg, 16);
    moved = moved + kfifo_get(f, msg, 16);
  }
  kfifo_free(f);
  return moved;
}

long wl_lat_proc(int iters) {
  struct task * __opt self = current_task;
  if (self == 0) { return -1; }
  long made = 0;
  int r;
  for (r = 0; r < iters; r++) {
    struct task * __opt it = self;
    struct task * __opt child = do_fork(it, GFP_KERNEL);
    if (child != 0) {
      struct task * __opt c = child;
      do_exit(c);
      made++;
    }
  }
  return made;
}

long wl_lat_rpc(int iters) {
  int s1 = sock_create(17);
  int s2 = sock_create(17);
  if (s1 < 0) { return s1; }
  if (s2 < 0) { return s2; }
  char req[32];
  char rep[32];
  int i;
  for (i = 0; i < 32; i++) { req[i] = i; }
  long done = 0;
  int r;
  for (r = 0; r < iters; r++) {
    udp_send(s1, s2, req, 32);
    udp_recv(s2, rep, 32);
    udp_send(s2, s1, rep, 32);
    udp_recv(s1, rep, 32);
    done++;
  }
  sock_release(s2);
  sock_release(s1);
  return done;
}

// Signal delivery: set a pending flag on a target task and have the
// scheduler path notice it.
long wl_lat_sig(int iters) {
  struct task * __opt self = current_task;
  if (self == 0) { return -1; }
  struct task * __opt child = do_fork(self, GFP_KERNEL);
  long delivered = 0;
  int r;
  for (r = 0; r < iters; r++) {
    if (child != 0) {
      struct task * __opt c = child;
      send_signal(c, 10 + (r & 7));
      int got = dequeue_signal(c);
      if (got >= 0) {
        struct task * __opt next = rq_pick();
        context_switch(next);
        delivered++;
      }
    }
  }
  if (child != 0) {
    struct task * __opt c2 = child;
    do_exit(c2);
  }
  context_switch(self);
  return delivered;
}

long wl_lat_connect(int iters) {
  long ok = 0;
  int r;
  for (r = 0; r < iters; r++) {
    int s1 = sock_create(6);
    int s2 = sock_create(6);
    if (s1 >= 0) {
      if (s2 >= 0) {
        if (sock_connect(s1, s2) == 0) { ok++; }
      }
    }
    if (s2 >= 0) { sock_release(s2); }
    if (s1 >= 0) { sock_release(s1); }
  }
  return ok;
}

long wl_lat_udp(int iters) {
  int s1 = sock_create(17);
  int s2 = sock_create(17);
  if (s1 < 0) { return s1; }
  if (s2 < 0) { return s2; }
  char msg[64];
  int i;
  for (i = 0; i < 64; i++) { msg[i] = i; }
  long done = 0;
  int r;
  for (r = 0; r < iters; r++) {
    udp_send(s1, s2, msg, 64);
    done = done + udp_recv(s2, msg, 64);
  }
  sock_release(s2);
  sock_release(s1);
  return done;
}

long wl_lat_tcp(int iters) {
  int s1 = sock_create(6);
  int s2 = sock_create(6);
  if (s1 < 0) { return s1; }
  if (s2 < 0) { return s2; }
  sock_connect(s1, s2);
  char msg[128];
  int i;
  for (i = 0; i < 128; i++) { msg[i] = i; }
  char drain[128];
  long done = 0;
  int r;
  for (r = 0; r < iters; r++) {
    done = done + tcp_send(s1, s2, msg, 128);
    int got = 1;
    while (got > 0) {
      got = udp_recv(s2, drain, 128);
    }
  }
  sock_release(s2);
  sock_release(s1);
  return done;
}

// ---------------------------------------------------------------
// CCount E2 workloads: fork and module-load
// ---------------------------------------------------------------

long wl_fork(int iters) {
  return wl_lat_proc(iters);
}

long wl_module_load(int iters) {
  char image[8192];
  int i;
  for (i = 0; i < 8192; i++) { image[i] = i & 255; }
  long ok = 0;
  int r;
  for (r = 0; r < iters; r++) {
    int slot = load_module("hello", image, 8192);
    if (slot >= 0) {
      unload_module(slot);
      ok++;
    }
  }
  return ok;
}

// ---------------------------------------------------------------
// CCount E3 workloads: idle and "copy a kernel in via ssh"
// ---------------------------------------------------------------

// Idle: timer ticks and console noise.
long wl_idle(int iters) {
  int r;
  for (r = 0; r < iters; r++) {
    raise_irq(0); // scheduler tick
    kbd_pending_n = 1;
    kbd_pending[0] = '.';
    raise_irq(1);
    char sink[4];
    tty_read(&console_tty, sink, 4);
  }
  return iters;
}

// "ssh copy": stream a large payload over tcp into a file, exercising
// sockets, skbs, the fs write path and process churn.
long wl_ssh_copy(int iters) {
  vfs_create("newkernel");
  int fd = vfs_open("/newkernel", 0);
  if (fd < 0) { return fd; }
  int s1 = sock_create(6);
  int s2 = sock_create(6);
  if (s1 < 0) { return s1; }
  if (s2 < 0) { return s2; }
  sock_connect(s1, s2);
  char chunk[512];
  int i;
  for (i = 0; i < 512; i++) { chunk[i] = i & 255; }
  long moved = 0;
  int r;
  for (r = 0; r < iters; r++) {
    tcp_send(s1, s2, chunk, 512);
    char got[512];
    int n = udp_recv(s2, got, 512);
    if (n > 0) {
      vfs_write(fd, got, n);
      moved = moved + n;
    }
    // Occasional session churn: a helper process comes and goes, and
    // a scratch connection is torn down the sloppy way.
    if (r % 32 == 0) {
      struct task * __opt self = current_task;
      if (self != 0) {
        struct task * __opt it = self;
        struct task * __opt helper = do_fork(it, GFP_KERNEL);
        if (helper != 0) {
          struct task * __opt h = helper;
          do_exit(h);
        }
      }
      int s3 = sock_create(17);
      if (s3 >= 0) {
        sock_force_close(s3);
      }
    }
  }
  sock_release(s2);
  sock_release(s1);
  vfs_close(fd);
  return moved;
}

// Probe the init task's children slots. Under CCount's sound
// leak-on-bad-free policy this is always safe; if bad frees proceed
// anyway, the unfixed kernel leaves a dangling child pointer here and
// the dereference faults.
long wl_probe_dangling_task(int iters) {
  struct task * __opt it = init_task;
  if (it == 0) { return -1; }
  long acc = 0;
  int i;
  for (i = 0; i < 8; i++) {
    struct task * __opt c = it->children[i];
    if (c != 0) {
      acc += c->pid;
    }
  }
  return acc;
}

// ---------------------------------------------------------------
// BlockStop bug triggers (not reached by boot)
// ---------------------------------------------------------------

long wl_trigger_resize_bug(int iters) {
  return rd_ioctl_resize(64);
}

long wl_trigger_irq_bug(int iters) {
  rd0.error_pending = 1;
  return raise_irq(2);
}
|kc}

(* The Table 1 rows in the paper's order. *)
let table1 : row list =
  [
    { id = "bw_bzero"; kind = Bw; entry = "wl_bw_bzero"; iters = 20; paper = 1.01 };
    { id = "bw_file_rd"; kind = Bw; entry = "wl_bw_file_rd"; iters = 5; paper = 0.98 };
    { id = "bw_mem_cp"; kind = Bw; entry = "wl_bw_mem_cp"; iters = 20; paper = 1.00 };
    { id = "bw_mem_rd"; kind = Bw; entry = "wl_bw_mem_rd"; iters = 20; paper = 1.00 };
    { id = "bw_mem_wr"; kind = Bw; entry = "wl_bw_mem_wr"; iters = 20; paper = 1.06 };
    { id = "bw_mmap_rd"; kind = Bw; entry = "wl_bw_mmap_rd"; iters = 5; paper = 0.85 };
    { id = "bw_pipe"; kind = Bw; entry = "wl_bw_pipe"; iters = 10; paper = 0.98 };
    { id = "bw_tcp"; kind = Bw; entry = "wl_bw_tcp"; iters = 5; paper = 0.83 };
    { id = "lat_connect"; kind = Lat; entry = "wl_lat_connect"; iters = 40; paper = 1.10 };
    { id = "lat_ctx"; kind = Lat; entry = "wl_lat_ctx"; iters = 200; paper = 1.15 };
    { id = "lat_ctx2"; kind = Lat; entry = "wl_lat_ctx2"; iters = 200; paper = 1.35 };
    { id = "lat_fs"; kind = Lat; entry = "wl_lat_fs"; iters = 100; paper = 1.35 };
    { id = "lat_fslayer"; kind = Lat; entry = "wl_lat_fslayer"; iters = 100; paper = 1.04 };
    { id = "lat_mmap"; kind = Lat; entry = "wl_lat_mmap"; iters = 100; paper = 1.41 };
    { id = "lat_pipe"; kind = Lat; entry = "wl_lat_pipe"; iters = 100; paper = 1.14 };
    { id = "lat_proc"; kind = Lat; entry = "wl_lat_proc"; iters = 50; paper = 1.29 };
    { id = "lat_rpc"; kind = Lat; entry = "wl_lat_rpc"; iters = 50; paper = 1.37 };
    { id = "lat_sig"; kind = Lat; entry = "wl_lat_sig"; iters = 200; paper = 1.31 };
    { id = "lat_syscall"; kind = Lat; entry = "wl_lat_syscall"; iters = 500; paper = 0.74 };
    { id = "lat_tcp"; kind = Lat; entry = "wl_lat_tcp"; iters = 50; paper = 1.41 };
    { id = "lat_udp"; kind = Lat; entry = "wl_lat_udp"; iters = 50; paper = 1.48 };
  ]

let find_row id =
  match List.find_opt (fun r -> r.id = id) table1 with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "no Table 1 row %s" id)

(* Corpus + workloads, ready to check. *)
let sources ?(fixed_frees = true) () : (string * string) list =
  Corpus.sources ~fixed_frees () @ [ ("bench/workloads.kc", source) ]

(* The checked program is memoized per [fixed_frees]: analyses and
   read-only interpreter boots share one parse (and, downstream, one
   VM compilation). Callers that instrument the program in place must
   pass [~fresh:true] to get a private copy; the memo itself is never
   handed out mutated. *)
let load_memo : (bool, Kc.Ir.program) Hashtbl.t = Hashtbl.create 2
let load_lock = Mutex.create ()

let load ?(fixed_frees = true) ?(fresh = false) () : Kc.Ir.program =
  if fresh then Kc.Typecheck.check_sources (sources ~fixed_frees ())
  else begin
    Mutex.lock load_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock load_lock)
      (fun () ->
        match Hashtbl.find_opt load_memo fixed_frees with
        | Some p -> p
        | None ->
            let p = Kc.Typecheck.check_sources (sources ~fixed_frees ()) in
            Hashtbl.replace load_memo fixed_frees p;
            p)
  end

lib/ivy/pipeline.mli: Ccount Deputy Kc Vm

(* Abstract environment: the reduced product of
   - a map from stable variable ids to interval×nullness values, and
   - a zone of difference-bound constraints between those variables,
   with an explicit Unreachable bottom so infeasible branches stop
   propagating facts (and their checks discharge trivially).

   An absent binding means "unknown": reads fall back to the variable's
   type range (Transfer.of_ty), so dropping a binding is always sound;
   likewise an absent zone constraint is +oo.

   Reduction discipline (termination-critical):
   - join closes BOTH zone arguments with their own interval seeds, so
     facts one side carries relationally and the other side carries as
     intervals meet in the middle (pointwise-max zone join is only
     precise on closed arguments);
   - widen closes only the NEXT argument — the accumulator passes
     through untouched, preserving the DBM widening's shrinking-keys
     termination argument;
   - a side whose zone+intervals are contradictory is infeasible and
     drops out of the join entirely. *)

module IntMap = Map.Make (Int)

type t = Unreachable | Env of Aval.t IntMap.t * Zone.t

let bottom = Unreachable
let empty = Env (IntMap.empty, Zone.top)

let equal a b =
  match (a, b) with
  | Unreachable, Unreachable -> true
  | Env (m1, z1), Env (m2, z2) -> IntMap.equal Aval.equal m1 m2 && Zone.equal z1 z2
  | _ -> false

(* Interval seeds of an environment side: bound vars contribute their
   interval, unbound vars contribute nothing (sound: top). *)
let seeds_of (m : Aval.t IntMap.t) : Zone.seeds =
 fun vid -> match IntMap.find_opt vid m with Some a -> a.Aval.iv | None -> Interval.top

let merge_common f m1 m2 =
  IntMap.merge (fun _ l r -> match (l, r) with Some x, Some y -> Some (f x y) | _ -> None) m1 m2

let join a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Env (m1, z1), Env (m2, z2) -> (
      (* Each side closes over the union of both zones' variables: a
         fact one side carries relationally and the other only as an
         interval (the variable may have left its zone through a kill)
         must be materialized on both sides to survive the pointwise
         key-intersecting zone join. *)
      match
        ( Zone.close_seeded ~over:(Zone.vars z2) (seeds_of m1) z1,
          Zone.close_seeded ~over:(Zone.vars z1) (seeds_of m2) z2 )
      with
      | None, None -> Unreachable
      | None, Some z2 -> Env (m2, z2)
      | Some z1, None -> Env (m1, z1)
      | Some z1, Some z2 -> Env (merge_common Aval.join m1 m2, Zone.join z1 z2))

let widen a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Env (m1, z1), Env (m2, z2) -> (
      match Zone.close_seeded ~over:(Zone.vars z1) (seeds_of m2) z2 with
      | None -> a (* next side infeasible: nothing to widen against *)
      | Some z2 -> Env (merge_common Aval.widen m1 m2, Zone.widen z1 z2))

let narrow a b =
  match (a, b) with
  | Unreachable, _ | _, Unreachable -> Unreachable
  | Env (m1, z1), Env (m2, z2) ->
      Env (merge_common Aval.narrow m1 m2, Zone.narrow z1 z2)

let find_opt vid = function Unreachable -> None | Env (m, _) -> IntMap.find_opt vid m

let set vid v = function
  | Unreachable -> Unreachable
  | Env (m, z) -> Env (IntMap.add vid v m, z)

let forget vid = function
  | Unreachable -> Unreachable
  | Env (m, z) -> Env (IntMap.remove vid m, Zone.forget vid z)

let is_unreachable = function Unreachable -> true | Env _ -> false

(* --- zone access for the transfer layer ------------------------- *)

let zone = function Unreachable -> None | Env (_, z) -> Some z
let seeds = function Unreachable -> Zone.no_seeds | Env (m, _) -> seeds_of m

(* Apply a partial zone transformer; a [None] result means the
   constraint system became infeasible. *)
let map_zone f = function
  | Unreachable -> Unreachable
  | Env (m, z) -> ( match f z with Some z' -> Env (m, z') | None -> Unreachable)

(* Close the zone with interval seeds and materialize the result —
   used before killing a variable so consequences (e.g. a lower bound
   on [n] proved via [todo = n; todo > 512]) survive the kill. *)
let close = function
  | Unreachable -> Unreachable
  | Env (m, z) -> (
      match Zone.close_seeded (seeds_of m) z with
      | Some z' -> Env (m, z')
      | None -> Unreachable)

(* Read derived unary zone bounds back into the interval component
   (the second reduction direction). Only bound variables are
   tightened: inventing bindings for unbound vars would make the env
   compare unequal without adding usable information. *)
let tighten_from_zone = function
  | Unreachable -> Unreachable
  | Env (m, z) ->
      let infeasible = ref false in
      let m' =
        IntMap.mapi
          (fun vid (a : Aval.t) ->
            match Zone.bounds_of vid z with
            | None, None -> a
            | lo, hi ->
                let cut = a.Aval.iv in
                let cut =
                  match lo with
                  | Some l -> Interval.meet cut (Interval.Iv (Interval.Fin l, Interval.Pinf))
                  | None -> cut
                in
                let cut =
                  match hi with
                  | Some h -> Interval.meet cut (Interval.Iv (Interval.Ninf, Interval.Fin h))
                  | None -> cut
                in
                let a' = Aval.reduce { a with Aval.iv = cut } in
                if Aval.is_bot a' then infeasible := true;
                a')
          m
      in
      if !infeasible then Unreachable else Env (m', z)

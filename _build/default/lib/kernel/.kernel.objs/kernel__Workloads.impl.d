lib/kernel/workloads.ml: Corpus Kc List Printf

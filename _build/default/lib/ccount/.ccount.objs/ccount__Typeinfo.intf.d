lib/ccount/typeinfo.mli: Hashtbl Kc Vm

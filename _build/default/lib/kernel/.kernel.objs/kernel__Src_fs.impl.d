lib/kernel/src_fs.ml:

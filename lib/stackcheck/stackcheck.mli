(** Stack-overflow prevention (paper §3.1, second proposed analysis):
    per-function frame sizes plus the sound call graph give the
    maximum stack depth of every call chain; chains must fit the 4 or
    8 kB budget. Recursive functions have unbounded static depth and
    need runtime checks, as the paper prescribes. *)

module SM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t
module SS : Set.S with type elt = string and type t = Set.Make(String).t

(** Fixed per-call bookkeeping bytes (return address etc). *)
val frame_overhead : int

(** Frame bytes of one function: memory-resident locals (address-taken
    or aggregate) + overhead + any [__frame_hint]. *)
val frame_size : Kc.Ir.program -> Kc.Ir.fundec -> int

type result = {
  frames : int SM.t;  (** per-function frame bytes *)
  depths : int SM.t;  (** max stack bytes from each function; -1 = unbounded *)
  recursive : SS.t;  (** functions on a call-graph cycle *)
  worst_chain : string list;  (** the deepest bounded chain *)
  worst_bytes : int;
}

(** Analyze with the given points-to precision for function-pointer
    calls (default field-based). [cg] supplies a prebuilt call graph
    (e.g. the engine's cached one); [mode] is then ignored. *)
val analyze :
  ?mode:Blockstop.Pointsto.mode -> ?cg:Blockstop.Callgraph.t -> Kc.Ir.program -> result

(** Does every chain from [entry] fit in [budget] bytes? *)
val fits : result -> entry:string -> budget:int -> bool

(** Recursive entries whose depth needs a runtime check. *)
val needs_runtime_check : result -> string list

val pp : Format.formatter -> result -> unit

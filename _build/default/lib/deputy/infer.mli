(** Annotation inference: heuristic suggestions for un-annotated
    pointer parameters ([__count(n)] from loop-indexed accesses,
    [__opt] from null tests). Suggestions are untrusted — the checker
    re-verifies them once written — and feed the §3.2 annotation
    database with provenance "deputy-infer". *)

type suggestion = {
  sg_fn : string;
  sg_param : string;
  sg_annot : string;  (** e.g. "__count(n)" or "__opt" *)
}

val infer_counts : Kc.Ir.fundec -> suggestion list
val infer_opts : Kc.Ir.fundec -> suggestion list
val suggest : Kc.Ir.program -> suggestion list
val pp_suggestion : Format.formatter -> suggestion -> unit

lib/kc/pretty.ml: Ast Buffer Hashtbl Int64 Ir List Printf String

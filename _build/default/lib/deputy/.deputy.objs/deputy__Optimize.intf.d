lib/deputy/optimize.mli: Facts Kc

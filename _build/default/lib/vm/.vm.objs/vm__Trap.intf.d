lib/vm/trap.mli:

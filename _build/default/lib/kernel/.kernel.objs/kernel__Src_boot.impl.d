lib/kernel/src_boot.ml:

(* The `ivy serve` incremental analysis daemon.

   Long-running process that keeps one warm {!Engine.Context} per
   program in an {!Engine.Graph.Lru} and answers newline-delimited
   JSON-RPC over a Unix socket:

     {"id":1,"method":"check","params":{"program":"p","files":
       [{"path":"a.kc","source":"..."}],"only":["blockstop"]}}
     {"id":2,"method":"stats"}
     {"id":3,"method":"invalidate","params":{"program":"p",
       "artifact":"cfg","param":"sys_fork"}}
     {"id":4,"method":"shutdown"}

   A [check] of a program the daemon has seen re-fingerprints the
   submitted sources, swaps them in with {!Engine.Context.update}
   (which push-invalidates exactly the artifacts the edit reaches) and
   re-runs the analyses over the warm graph; a resubmit of
   byte-identical sources skips parsing entirely. Every [check]
   response carries [warm] (no artifact was built) and the per-request
   stats delta, so clients and the CI smoke job can assert
   incrementality rather than trust it.

   The wire loop is single-domain (contexts and their graphs are not
   shareable across domains); what a batch of concurrent requests can
   fan out — parsing programs the daemon does not already hold — goes
   through the existing {!Par} pool. Analyses still parallelize
   internally via each context's [jobs]. *)

module J = Jsonx
module Ctx = Engine.Context
module G = Engine.Graph

type entry = { e_ctxt : Ctx.t; mutable e_src : string (* digest of raw sources *) }

type t = {
  lru : entry G.Lru.t;
  jobs : int;
  mutable requests : int;
}

let create ?(capacity = 8) ?(jobs = 1) () : t =
  { lru = G.Lru.create ~capacity; jobs; requests = 0 }

let src_digest (sources : (string * string) list) : string =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (List.concat_map (fun (p, s) -> [ p; s ]) sources)))

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type check_req = {
  c_program : string;
  c_sources : (string * string) list;
  c_digest : string;
  c_only : string list;
}

type request =
  | Check of check_req
  | Stats
  | Invalidate of { i_program : string; i_artifact : string option; i_param : string }
  | Shutdown

(* One decoded line: the id to echo, and either a request or an error
   (code, message) in JSON-RPC style. *)
type decoded = { d_id : J.t; d_req : (request, int * string) result }

let e_parse = -32700
let e_invalid = -32600
let e_method = -32601
let e_params = -32602
let e_frontend = 1
let e_unknown_program = 2
let e_unknown_analysis = 3

let decode_check (params : J.t) : (request, int * string) result =
  let program =
    match J.member "program" params with Some (J.Str s) -> s | _ -> "default"
  in
  let only =
    match J.member "only" params with
    | Some (J.List l) -> List.filter_map J.to_string_opt l
    | _ -> []
  in
  match List.find_opt (fun n -> Checks.find n = None) only with
  | Some n -> Error (e_unknown_analysis, Printf.sprintf "unknown analysis %s" n)
  | None -> (
      let sources =
        match J.member "corpus" params with
        | Some (J.Bool true) -> Ok (Kernel.Corpus.sources ())
        | _ -> (
            match J.member "files" params with
            | Some (J.List fs) -> (
                let file f =
                  match (J.member "path" f, J.member "source" f) with
                  | Some (J.Str p), Some (J.Str s) -> Some (p, s)
                  | _ -> None
                in
                match List.map file fs with
                | l when List.for_all Option.is_some l -> Ok (List.filter_map Fun.id l)
                | _ -> Error "files must be [{\"path\":...,\"source\":...}]")
            | _ -> Error "check needs params.files or params.corpus:true")
      in
      match sources with
      | Error msg -> Error (e_params, msg)
      | Ok [] -> Error (e_params, "empty file list")
      | Ok sources ->
          Ok
            (Check
               {
                 c_program = program;
                 c_sources = sources;
                 c_digest = src_digest sources;
                 c_only = only;
               }))

let decode_line (line : string) : decoded =
  match J.parse line with
  | exception J.Parse_error msg ->
      { d_id = J.Null; d_req = Error (e_parse, "bad JSON: " ^ msg) }
  | j -> (
      let id = Option.value (J.member "id" j) ~default:J.Null in
      let params = Option.value (J.member "params" j) ~default:(J.Obj []) in
      match J.member "method" j with
      | Some (J.Str "check") -> { d_id = id; d_req = decode_check params }
      | Some (J.Str "stats") -> { d_id = id; d_req = Ok Stats }
      | Some (J.Str "invalidate") ->
          let program =
            match J.member "program" params with Some (J.Str s) -> s | _ -> "default"
          in
          let artifact =
            match J.member "artifact" params with Some (J.Str s) -> Some s | _ -> None
          in
          let param =
            match J.member "param" params with Some (J.Str s) -> s | _ -> ""
          in
          { d_id = id; d_req = Ok (Invalidate { i_program = program; i_artifact = artifact; i_param = param }) }
      | Some (J.Str "shutdown") -> { d_id = id; d_req = Ok Shutdown }
      | Some (J.Str m) -> { d_id = id; d_req = Error (e_method, "unknown method " ^ m) }
      | _ -> { d_id = id; d_req = Error (e_invalid, "missing method") })

(* ------------------------------------------------------------------ *)
(* Handlers                                                           *)
(* ------------------------------------------------------------------ *)

let frontend_msg = function
  | Kc.Typecheck.Type_error (msg, loc) ->
      Some (Printf.sprintf "type error: %s at %s" msg (Kc.Loc.to_string loc))
  | Kc.Parser.Error (msg, loc) ->
      Some (Printf.sprintf "parse error: %s at %s" msg (Kc.Loc.to_string loc))
  | Kc.Lexer.Error (msg, loc) ->
      Some (Printf.sprintf "lex error: %s at %s" msg (Kc.Loc.to_string loc))
  | _ -> None

let parse_sources (sources : (string * string) list) : (Kc.Ir.program, string) result =
  match Kc.Typecheck.check_sources sources with
  | prog -> Ok prog
  | exception e -> ( match frontend_msg e with Some m -> Error m | None -> raise e)

let update_json (u : Ctx.update) : J.t =
  let names l = J.List (List.map (fun f -> J.Str f) l) in
  J.Obj
    [
      ("unchanged", J.Bool u.Ctx.u_unchanged);
      ("changed", names u.Ctx.u_changed);
      ("added", names u.Ctx.u_added);
      ("removed", names u.Ctx.u_removed);
      ("header_changed", J.Bool u.Ctx.u_header_changed);
      ("dropped", J.Num (float_of_int u.Ctx.u_dropped));
    ]

let no_update : Ctx.update =
  {
    Ctx.u_changed = [];
    u_added = [];
    u_removed = [];
    u_header_changed = false;
    u_unchanged = true;
    u_dropped = 0;
  }

(* [parsed] carries this batch's pre-parsed programs, keyed by source
   digest (see [handle_batch]); a digest not in the table is parsed
   here, serially. *)
let handle_check (t : t) ~(parsed : (string, (Kc.Ir.program, string) result) Hashtbl.t)
    (r : check_req) : (J.t, int * string) result =
  let prog () =
    match Hashtbl.find_opt parsed r.c_digest with
    | Some res -> res
    | None -> parse_sources r.c_sources
  in
  let entry =
    match G.Lru.find t.lru r.c_program with
    | Some e when String.equal e.e_src r.c_digest ->
        (* Byte-identical resubmit: no parse, no fingerprinting. *)
        Ok (e, no_update, true)
    | Some e -> (
        match prog () with
        | Ok p ->
            let u = Ctx.update e.e_ctxt p in
            e.e_src <- r.c_digest;
            Ok (e, u, false)
        | Error msg -> Error (e_frontend, msg))
    | None -> (
        match prog () with
        | Ok p ->
            let e = { e_ctxt = Ctx.create ~jobs:t.jobs p; e_src = r.c_digest } in
            ignore (G.Lru.add t.lru r.c_program e);
            Ok (e, no_update, false)
        | Error msg -> Error (e_frontend, msg))
  in
  match entry with
  | Error e -> Error e
  | Ok (e, update, reused_source) -> (
      let before = Ctx.stats e.e_ctxt in
      match Checks.run_all ~only:r.c_only e.e_ctxt with
      | exception Checks.Unknown_analysis n ->
          Error (e_unknown_analysis, "unknown analysis " ^ n)
      | results ->
          let delta = G.delta ~before (Ctx.stats e.e_ctxt) in
          Ok
            (J.Obj
               [
                 ("program", J.Str r.c_program);
                 ("warm", J.Bool (G.total_builds delta = 0));
                 ("reused_source", J.Bool reused_source);
                 ("update", update_json update);
                 ("report", J.Raw (String.trim (Report_fmt.render_diags_json results)));
                 ("stats", J.Raw (String.trim (Report_fmt.render_stats_json delta)));
               ]))

let handle_stats (t : t) : J.t =
  let programs =
    G.Lru.fold
      (fun id e acc ->
        J.Obj
          [
            ("program", J.Str id);
            ("fingerprint", J.Str (Ctx.program_fingerprint e.e_ctxt));
            ( "stats",
              J.Raw (String.trim (Report_fmt.render_stats_json (Ctx.stats e.e_ctxt))) );
          ]
        :: acc)
      t.lru []
  in
  J.Obj
    [
      ("programs", J.List programs);
      ("resident", J.Num (float_of_int (G.Lru.size t.lru)));
      ("capacity", J.Num (float_of_int (G.Lru.capacity t.lru)));
      ("evictions", J.Num (float_of_int (G.Lru.evictions t.lru)));
      ("requests", J.Num (float_of_int t.requests));
    ]

let handle_invalidate (t : t) ~program ~artifact ~param : (J.t, int * string) result =
  match G.Lru.find t.lru program with
  | None -> Error (e_unknown_program, "unknown program " ^ program)
  | Some e ->
      let dropped =
        match artifact with
        | None -> Ctx.invalidate_all e.e_ctxt
        | Some name -> Ctx.invalidate e.e_ctxt (G.key ~param name)
      in
      Ok (J.Obj [ ("program", J.Str program); ("dropped", J.Num (float_of_int dropped)) ])

let render_ok id body = J.render (J.Obj [ ("id", id); ("result", body) ])

let render_error id code msg =
  J.render
    (J.Obj
       [
         ("id", id);
         ("error", J.Obj [ ("code", J.Num (float_of_int code)); ("message", J.Str msg) ]);
       ])

(* One batch of request lines (everything a poll round drained, in
   arrival order). The parse work of check requests the daemon cannot
   serve warm — distinct source digests only — fans out over the Par
   pool; everything touching contexts stays on this domain. *)
let handle_batch (t : t) (lines : string list) : string list * bool =
  let decoded = List.map decode_line lines in
  let needs_parse =
    List.filter_map
      (fun d ->
        match d.d_req with
        | Ok (Check r) -> (
            match G.Lru.find t.lru r.c_program with
            | Some e when String.equal e.e_src r.c_digest -> None
            | _ -> Some (r.c_digest, r.c_sources))
        | _ -> None)
      decoded
  in
  let distinct =
    List.fold_left
      (fun acc (d, srcs) -> if List.mem_assoc d acc then acc else (d, srcs) :: acc)
      [] needs_parse
    |> List.rev
  in
  let parsed = Hashtbl.create (List.length distinct) in
  List.iter
    (fun (d, res) -> Hashtbl.replace parsed d res)
    (Par.map ~jobs:t.jobs (fun (d, srcs) -> (d, parse_sources srcs)) distinct);
  let shutdown = ref false in
  let responses =
    List.map
      (fun d ->
        t.requests <- t.requests + 1;
        match d.d_req with
        | Error (code, msg) -> render_error d.d_id code msg
        | Ok (Check r) -> (
            match handle_check t ~parsed r with
            | Ok body -> render_ok d.d_id body
            | Error (code, msg) -> render_error d.d_id code msg)
        | Ok Stats -> render_ok d.d_id (handle_stats t)
        | Ok (Invalidate { i_program; i_artifact; i_param }) -> (
            match
              handle_invalidate t ~program:i_program ~artifact:i_artifact ~param:i_param
            with
            | Ok body -> render_ok d.d_id body
            | Error (code, msg) -> render_error d.d_id code msg)
        | Ok Shutdown ->
            shutdown := true;
            render_ok d.d_id (J.Str "bye"))
      decoded
  in
  (responses, !shutdown)

let handle_line (t : t) (line : string) : string * bool =
  match handle_batch t [ line ] with
  | [ resp ], sd -> (resp, sd)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* --watch: poll a directory of .kc files                             *)
(* ------------------------------------------------------------------ *)

let watch_sources (dir : string) : (string * string) list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".kc")
      |> List.sort String.compare
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             try
               let ic = open_in_bin path in
               let s = really_input_string ic (in_channel_length ic) in
               close_in ic;
               Some (path, s)
             with Sys_error _ -> None)

(* Re-check [dir] when any .kc file changed since last poll; log a
   one-line summary (the daemon's stdout is the watch report). *)
let watch_poll (t : t) ~(log : string -> unit) (dir : string) (last : string ref) : unit =
  let sources = watch_sources dir in
  if sources = [] then ()
  else
    let digest = src_digest sources in
    if String.equal digest !last then ()
    else begin
      last := digest;
      let program = "watch:" ^ dir in
      let parsed = Hashtbl.create 1 in
      match
        handle_check t ~parsed
          { c_program = program; c_sources = sources; c_digest = digest; c_only = [] }
      with
      | Error (_, msg) -> log (Printf.sprintf "[watch] %s: %s" dir msg)
      | Ok body ->
          let warm = match J.member "warm" body with Some (J.Bool b) -> b | _ -> false in
          let diags =
            match J.member "report" body with
            | Some (J.Raw s) -> (
                match J.member "diagnostics" (J.parse s) with
                | Some (J.List l) -> List.length l
                | _ -> 0)
            | _ -> 0
          in
          log
            (Printf.sprintf "[watch] %s: %d diagnostics (%s)" dir diags
               (if warm then "all artifacts warm" else "rebuilt"))
    end

(* ------------------------------------------------------------------ *)
(* Socket loop                                                        *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

(* Pull complete lines off a client's input buffer. *)
let drain_lines (c : client) : string list =
  let s = Buffer.contents c.buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (last + 1) (String.length s - last - 1));
      String.sub s 0 last |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")

let run ~(socket : string) ?watch ?(poll_ms = 500) ?(log = ignore) (t : t) : unit =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 16;
  log (Printf.sprintf "ivy serve: listening on %s" socket);
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let stop = ref false in
  let watch_last = ref "" in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* First watch poll runs immediately so a pre-populated directory is
     analyzed at startup, not on first edit. *)
  (match watch with Some dir -> watch_poll t ~log dir watch_last | None -> ());
  while not !stop do
    let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let timeout = if watch = None then -1.0 else float_of_int poll_ms /. 1000.0 in
    let ready, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* Accept new connections, then drain every readable client; one
       poll round's complete lines form one batch. *)
    let batch = ref [] in
    List.iter
      (fun fd ->
        if fd == srv then begin
          match Unix.accept srv with
          | c, _ -> Hashtbl.replace clients c { fd = c; buf = Buffer.create 256 }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some c -> (
              let chunk = Bytes.create 65536 in
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> close_client fd
              | n ->
                  Buffer.add_subbytes c.buf chunk 0 n;
                  List.iter (fun line -> batch := (c, line) :: !batch) (drain_lines c)
              | exception Unix.Unix_error _ -> close_client fd))
      ready;
    let batch = List.rev !batch in
    if batch <> [] then begin
      let responses, sd = handle_batch t (List.map snd batch) in
      List.iter2
        (fun (c, _) resp ->
          let line = Bytes.of_string (resp ^ "\n") in
          try ignore (Unix.write c.fd line 0 (Bytes.length line))
          with Unix.Unix_error _ -> close_client c.fd)
        batch responses;
      if sd then stop := true
    end;
    match watch with Some dir when not !stop -> watch_poll t ~log dir watch_last | _ -> ()
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Client side (ivy rpc)                                              *)
(* ------------------------------------------------------------------ *)

let request ~(socket : string) (line : string) : string =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let payload = Bytes.of_string (line ^ "\n") in
      let rec write_all off =
        if off < Bytes.length payload then
          write_all (off + Unix.write fd payload off (Bytes.length payload - off))
      in
      write_all 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec read_line () =
        if String.contains (Buffer.contents buf) '\n' then ()
        else
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              read_line ()
      in
      read_line ();
      match String.index_opt (Buffer.contents buf) '\n' with
      | Some i -> String.sub (Buffer.contents buf) 0 i
      | None -> Buffer.contents buf)

(* Shared interpreter state: everything both execution engines (the
   {!Treewalk} reference evaluator and the {!Compile}d one) need —
   global placement, string interning, function-pointer encoding,
   value normalization, the builtin table, and the call-depth
   accounting. Engines are installed via the [run_fn] hook so the
   {!Interp} facade can dispatch without a dependency cycle. *)

module I = Kc.Ir

type t = {
  prog : I.program;
  m : Machine.t;
  globals_addr : (int, int) Hashtbl.t; (* global vid -> address *)
  strings : (string, int) Hashtbl.t;
  mutable rodata_brk : int;
  mutable static_brk : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  builtins : (string, t -> int64 list -> int64) Hashtbl.t;
  fun_of_id : (int, I.fundec) Hashtbl.t;
  mutable run_fn : (t -> I.fundec -> int64 list -> int64) option;
      (* engine hook: [None] = tree-walk reference engine *)
  mutable scratch : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t list;
      (* compiled-engine register-file pool: machines are
         single-threaded, so frames returning in LIFO order can hand
         their register files to the next call instead of mallocing a
         bigarray per activation *)
}

let fptr_encode fid = Int64.of_int (-(fid + 16))

let fptr_decode (v : int64) : int option =
  let n = Int64.to_int v in
  if n <= -16 then Some (-n - 16) else None

(* ------------------------------------------------------------------ *)
(* Value normalization.                                               *)
(* ------------------------------------------------------------------ *)

let norm (ty : I.ty) (v : int64) : int64 =
  match ty with
  | I.Tint (k, s) ->
      let w = Kc.Layout.int_size k in
      if w = 8 then v
      else
        let shift = 64 - (8 * w) in
        let shifted = Int64.shift_left v shift in
        if s = Kc.Ast.Signed then Int64.shift_right shifted shift
        else Int64.shift_right_logical shifted shift
  | _ -> v

let is_signed = function I.Tint (_, Kc.Ast.Signed) -> true | _ -> false

let width_of prog (ty : I.ty) : int =
  match ty with
  | I.Tint (k, _) -> Kc.Layout.int_size k
  | I.Tptr _ -> 8
  | _ -> Kc.Layout.size_of prog ty

(* ------------------------------------------------------------------ *)
(* Setup: globals, strings, function ids.                             *)
(* ------------------------------------------------------------------ *)

let intern_string t s : int =
  match Hashtbl.find_opt t.strings s with
  | Some addr -> addr
  | None ->
      let len = String.length s + 1 in
      let addr = t.rodata_brk in
      if addr + len > Mem.rodata_base + Mem.rodata_size then
        Trap.trap Trap.Panic "rodata exhausted";
      t.rodata_brk <- addr + len;
      Mem.set_valid t.m.Machine.mem addr len true;
      Mem.blit_string t.m.Machine.mem addr s;
      Hashtbl.replace t.strings s addr;
      addr

(* Deterministic global placement: a pure function of the program, so
   the compiled engine can bake global addresses at compile time and
   every machine instance running the same program agrees with it.
   Returns the vid -> address table and the final static break. *)
let global_layout (prog : I.program) : (int, int) Hashtbl.t * int =
  let tbl = Hashtbl.create 64 in
  let brk = ref Mem.static_base in
  List.iter
    (fun ((v : I.varinfo), _) ->
      let size = Kc.Layout.size_of prog v.I.vty in
      let align = Kc.Layout.align_of prog v.I.vty in
      let addr = (!brk + align - 1) / align * align in
      if addr + size > Mem.static_base + Mem.static_size then
        Trap.trap Trap.Panic "static region exhausted";
      brk := addr + size;
      Hashtbl.replace tbl v.I.vid addr)
    prog.I.globals;
  (tbl, !brk)

(* Evaluate a constant initializer expression (no locals in scope). *)
let rec eval_const_exp t (e : I.exp) : int64 =
  match e.I.e with
  | I.Econst n -> n
  | I.Estr s -> Int64.of_int (intern_string t s)
  | I.Efun name -> (
      match I.find_fun t.prog name with
      | Some fd -> fptr_encode fd.I.fid
      | None -> Trap.trap Trap.Unknown_function "initializer references unknown %s" name)
  | I.Ecast (ty, e1) -> norm ty (eval_const_exp t e1)
  | I.Eunop (Kc.Ast.Neg, e1) -> norm e.I.ety (Int64.neg (eval_const_exp t e1))
  | I.Ebinop (op, a, b) -> (
      let x = eval_const_exp t a in
      let y = eval_const_exp t b in
      let open Int64 in
      match op with
      | Kc.Ast.Add -> norm e.I.ety (add x y)
      | Kc.Ast.Sub -> norm e.I.ety (sub x y)
      | Kc.Ast.Mul -> norm e.I.ety (mul x y)
      | Kc.Ast.Shl -> norm e.I.ety (shift_left x (to_int y))
      | Kc.Ast.Bitor -> logor x y
      | _ -> Trap.trap Trap.Panic "unsupported constant initializer operation")
  | I.Elval (I.Lvar v, []) when v.I.vglob ->
      (* Address-valued global constants are not supported; value
         reads from globals in initializers are rejected. *)
      Trap.trap Trap.Panic "initializer reads global %s" v.I.vname
  | I.Eaddrof (I.Lvar v, []) when v.I.vglob -> (
      match Hashtbl.find_opt t.globals_addr v.I.vid with
      | Some a -> Int64.of_int a
      | None -> Trap.trap Trap.Panic "initializer takes address of unplaced global %s" v.I.vname)
  | I.Estartof (I.Lvar v, []) when v.I.vglob -> (
      match Hashtbl.find_opt t.globals_addr v.I.vid with
      | Some a -> Int64.of_int a
      | None -> Trap.trap Trap.Panic "initializer decays unplaced global %s" v.I.vname)
  | _ -> Trap.trap Trap.Panic "unsupported global initializer expression"

let rec store_ginit t addr (ty : I.ty) (gi : I.ginit) : unit =
  match (gi, ty) with
  | I.Gi_exp e, _ ->
      let v = eval_const_exp t e in
      Mem.store t.m.Machine.mem ~addr ~width:(width_of t.prog ty) v
  | I.Gi_list items, I.Tarray (elt, _) ->
      let esz = Kc.Layout.size_of t.prog elt in
      List.iteri (fun i item -> store_ginit t (addr + (i * esz)) elt item) items
  | I.Gi_list items, I.Tcomp tag ->
      let c = I.comp_find t.prog tag in
      List.iteri
        (fun i item ->
          let f = List.nth c.I.cfields i in
          let off = Kc.Layout.field_offset t.prog f in
          store_ginit t (addr + off) f.I.fty item)
        items
  | I.Gi_list _, _ -> Trap.trap Trap.Panic "brace initializer for scalar"

let create (prog : I.program) (m : Machine.t) : t =
  let t =
    {
      prog;
      m;
      globals_addr = Hashtbl.create 64;
      strings = Hashtbl.create 64;
      rodata_brk = Mem.rodata_base;
      static_brk = Mem.static_base;
      call_depth = 0;
      max_call_depth = 0;
      builtins = Hashtbl.create 64;
      fun_of_id = Hashtbl.create 64;
      run_fn = None;
      scratch = [];
    }
  in
  List.iter (fun (fd : I.fundec) -> Hashtbl.replace t.fun_of_id fd.I.fid fd) prog.I.funcs;
  (* Place globals. *)
  let layout, brk = global_layout prog in
  List.iter
    (fun ((v : I.varinfo), _) ->
      let addr = Hashtbl.find layout v.I.vid in
      Mem.set_valid m.Machine.mem addr (Kc.Layout.size_of prog v.I.vty) true;
      Hashtbl.replace t.globals_addr v.I.vid addr)
    prog.I.globals;
  t.static_brk <- brk;
  (* Initialize them (addresses all known, so &other_global works). *)
  List.iter
    (fun ((v : I.varinfo), init) ->
      match init with
      | None -> ()
      | Some gi ->
          let addr = Hashtbl.find t.globals_addr v.I.vid in
          store_ginit t addr v.I.vty gi)
    prog.I.globals;
  t

(* Read a null-terminated string out of VM memory. *)
let read_string t (addr : int64) : string =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = Mem.load t.m.Machine.mem ~addr:a ~width:1 ~signed:false in
    if c <> 0L then begin
      Buffer.add_char buf (Char.chr (Int64.to_int c));
      go (a + 1)
    end
  in
  go (Int64.to_int addr);
  Buffer.contents buf

let register_builtin t name impl = Hashtbl.replace t.builtins name impl

(* Tests for the paper's §3 proposals: lock safety, stack-overflow
   prevention, error-code checking, and the annotation database. *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void spin_lock(long *l);\n\
   void spin_unlock(long *l);\n\
   long spin_lock_irqsave(long *l);\n\
   void spin_unlock_irqrestore(long *l, long flags);\n\
   void schedule(void) __blocking;\n\
   int request_irq(int irq, int (*handler)(int));\n"

let p src = preamble ^ src

(* ------------------------------------------------------------------ *)
(* Locksafe                                                            *)
(* ------------------------------------------------------------------ *)

let test_lock_order_inversion () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long lock_a;\nlong lock_b;\n\
             int path1(void) { spin_lock(&lock_a); spin_lock(&lock_b); spin_unlock(&lock_b); spin_unlock(&lock_a); return 0; }\n\
             int path2(void) { spin_lock(&lock_b); spin_lock(&lock_a); spin_unlock(&lock_a); spin_unlock(&lock_b); return 0; }"))
  in
  Alcotest.(check (list (pair string string))) "AB/BA inversion found"
    [ ("lock_a", "lock_b") ]
    r.Locksafe.deadlock_cycles

let test_consistent_order_clean () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long lock_a;\nlong lock_b;\n\
             int path1(void) { spin_lock(&lock_a); spin_lock(&lock_b); spin_unlock(&lock_b); spin_unlock(&lock_a); return 0; }\n\
             int path2(void) { spin_lock(&lock_a); spin_lock(&lock_b); spin_unlock(&lock_b); spin_unlock(&lock_a); return 0; }"))
  in
  Alcotest.(check int) "no deadlock pairs" 0 (List.length r.Locksafe.deadlock_cycles);
  Alcotest.(check bool) "order edges recorded" true (List.length r.Locksafe.order_edges >= 2)

let test_interprocedural_inversion () =
  (* The second lock is taken inside a helper. *)
  let r =
    Locksafe.analyze
      (parse
         (p
            "long lock_a;\nlong lock_b;\n\
             int take_b(void) { spin_lock(&lock_b); spin_unlock(&lock_b); return 0; }\n\
             int take_a(void) { spin_lock(&lock_a); spin_unlock(&lock_a); return 0; }\n\
             int path1(void) { spin_lock(&lock_a); take_b(); spin_unlock(&lock_a); return 0; }\n\
             int path2(void) { spin_lock(&lock_b); take_a(); spin_unlock(&lock_b); return 0; }"))
  in
  Alcotest.(check (list (pair string string))) "inversion through helpers"
    [ ("lock_a", "lock_b") ]
    r.Locksafe.deadlock_cycles

let test_irq_spinlock_invariant () =
  (* A lock taken in an interrupt handler and with plain spin_lock in
     process context: the paper's Linux-specific invariant. *)
  let r =
    Locksafe.analyze
      (parse
         (p
            "long dev_lock;\n\
             int my_irq(int irq) { spin_lock(&dev_lock); spin_unlock(&dev_lock); return 0; }\n\
             int setup(void) { request_irq(3, my_irq); return 0; }\n\
             int proc_path(void) { spin_lock(&dev_lock); spin_unlock(&dev_lock); return 0; }"))
  in
  Alcotest.(check bool) "irq-unsafe acquire flagged" true
    (List.exists (fun (l, _) -> l = "dev_lock") r.Locksafe.irq_unsafe)

let test_irqsave_is_fine () =
  let r =
    Locksafe.analyze
      (parse
         (p
            "long dev_lock;\n\
             int my_irq(int irq) { spin_lock(&dev_lock); spin_unlock(&dev_lock); return 0; }\n\
             int setup(void) { request_irq(3, my_irq); return 0; }\n\
             int proc_path(void) { long f = spin_lock_irqsave(&dev_lock); spin_unlock_irqrestore(&dev_lock, f); return 0; }"))
  in
  Alcotest.(check int) "irqsave acquire is safe" 0
    (List.length
       (List.filter (fun (_, (a : Locksafe.acquire)) -> not a.Locksafe.a_in_irq) r.Locksafe.irq_unsafe))

let test_corpus_locks_consistent () =
  let prog = Kernel.Corpus.load () in
  let r = Locksafe.analyze prog in
  Alcotest.(check int) "corpus has a consistent lock order" 0
    (List.length r.Locksafe.deadlock_cycles);
  Alcotest.(check bool) "corpus locks discovered" true (List.length r.Locksafe.locks >= 3)

(* ------------------------------------------------------------------ *)
(* Stackcheck                                                          *)
(* ------------------------------------------------------------------ *)

let test_frame_sizes () =
  let prog =
    parse
      "int leafy(void) { char buf[256]; buf[0] = 1; return buf[0]; }\n\
       int tiny(int x) { return x + 1; }"
  in
  let r = Stackcheck.analyze prog in
  let frame f = Stackcheck.SM.find f r.Stackcheck.frames in
  Alcotest.(check bool) "array counted in frame" true (frame "leafy" >= 256);
  Alcotest.(check bool) "scalar-only frame is small" true (frame "tiny" < 64)

let test_depth_accumulates () =
  let prog =
    parse
      "int c(void) { char b[512]; b[0] = 1; return b[0]; }\n\
       int b_(void) { char b[1024]; b[0] = 1; return b[0] + c(); }\n\
       int a(void) { return b_(); }"
  in
  let r = Stackcheck.analyze prog in
  let depth f = Stackcheck.SM.find f r.Stackcheck.depths in
  Alcotest.(check bool) "a deeper than b_" true (depth "a" > depth "b_");
  Alcotest.(check bool) "b_ deeper than c" true (depth "b_" > depth "c");
  Alcotest.(check bool) "a >= 1536" true (depth "a" >= 1536);
  Alcotest.(check bool) "a fits 4k" true (Stackcheck.fits r ~entry:"a" ~budget:4096);
  Alcotest.(check bool) "a does not fit 1k" false (Stackcheck.fits r ~entry:"a" ~budget:1024)

let test_recursion_needs_runtime_check () =
  let prog = parse "int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }" in
  let r = Stackcheck.analyze prog in
  Alcotest.(check (list string)) "recursive entry flagged" [ "f" ]
    (Stackcheck.needs_runtime_check r);
  Alcotest.(check bool) "depth unbounded" true (Stackcheck.SM.find "f" r.Stackcheck.depths = -1)

let test_fptr_calls_counted () =
  let prog =
    parse
      "int deep(int x) { char b[2048]; b[0] = x; return b[0]; }\n\
       struct ops { int (*op)(int); };\n\
       struct ops tbl = { deep };\n\
       int dispatch(void) { return tbl.op(1); }"
  in
  let r = Stackcheck.analyze prog in
  Alcotest.(check bool) "indirect call adds callee frame" true
    (Stackcheck.SM.find "dispatch" r.Stackcheck.depths >= 2048)

let test_frame_hint () =
  let prog = parse "int asmish(void) __frame_hint(512) { return 1; }" in
  let r = Stackcheck.analyze prog in
  Alcotest.(check bool) "__frame_hint added" true
    (Stackcheck.SM.find "asmish" r.Stackcheck.frames >= 512)

let test_corpus_stack_budget () =
  let prog = Kernel.Corpus.load () in
  let r = Stackcheck.analyze prog in
  Alcotest.(check bool) "corpus has no recursion" true (r.Stackcheck.recursive = Stackcheck.SS.empty);
  Alcotest.(check bool)
    (Printf.sprintf "worst chain (%d bytes) fits the 8 kB budget" r.Stackcheck.worst_bytes)
    true
    (r.Stackcheck.worst_bytes > 0 && r.Stackcheck.worst_bytes <= 8192)

(* ------------------------------------------------------------------ *)
(* Errcheck                                                            *)
(* ------------------------------------------------------------------ *)

let test_ignored_result_flagged () =
  let prog =
    parse
      (p
         "int risky(void) { return -EIO_; }\n\
          enum e { EIO_ = 5 };\n\
          int caller(void) { risky(); return 0; }")
  in
  ignore prog;
  (* enum must precede use; rebuild properly *)
  let prog =
    parse
      (p
         "int risky(int x) { if (x < 0) { return -5; } return 0; }\n\
          int caller(void) { risky(1); return 0; }")
  in
  let r = Errcheck.analyze prog in
  Alcotest.(check bool) "risky inferred as error-returning" true
    (Errcheck.SS.mem "risky" r.Errcheck.inferred);
  Alcotest.(check bool) "ignored call flagged" true
    (List.exists
       (fun (s : Errcheck.site) -> s.Errcheck.s_caller = "caller" && s.Errcheck.s_kind = `Ignored)
       r.Errcheck.violations)

let test_checked_result_clean () =
  let prog =
    parse
      (p
         "int risky(int x) { if (x < 0) { return -5; } return 0; }\n\
          int caller(void) { int r = risky(1); if (r < 0) { return r; } return 0; }")
  in
  let r = Errcheck.analyze prog in
  Alcotest.(check int) "no violations" 0 (List.length r.Errcheck.violations)

let test_propagated_result_clean () =
  let prog =
    parse
      (p
         "int risky(int x) { if (x < 0) { return -5; } return 0; }\n\
          int caller(void) { int r = risky(1); return r; }")
  in
  let r = Errcheck.analyze prog in
  Alcotest.(check int) "propagation counts as accounted" 0 (List.length r.Errcheck.violations)

let test_bound_but_never_tested () =
  let prog =
    parse
      (p
         "int risky(int x) { if (x < 0) { return -5; } return 0; }\n\
          int caller(void) { int r = risky(1); return 7; }")
  in
  let r = Errcheck.analyze prog in
  Alcotest.(check bool) "unchecked binding flagged" true
    (List.exists (fun (s : Errcheck.site) -> s.Errcheck.s_kind = `Unchecked) r.Errcheck.violations)

let test_annotation_respected () =
  let prog =
    parse
      (p
         "int api(void) __returns_err(-5, -22);\n\
          int caller(void) { api(); return 0; }")
  in
  let r = Errcheck.analyze prog in
  Alcotest.(check bool) "annotated extern counted" true
    (List.mem_assoc "api" r.Errcheck.err_functions);
  Alcotest.(check int) "its codes recorded" 2
    (List.length (List.assoc "api" r.Errcheck.err_functions));
  Alcotest.(check bool) "ignored annotated call flagged" true
    (List.length r.Errcheck.violations >= 1)

let test_corpus_errcheck () =
  let prog = Kernel.Corpus.load () in
  let r = Errcheck.analyze prog in
  Alcotest.(check bool) "corpus has error-returning functions" true
    (List.length r.Errcheck.err_functions > 10);
  Alcotest.(check bool) "corpus has call sites to them" true (r.Errcheck.sites_total > 20)

(* ------------------------------------------------------------------ *)
(* Userck                                                              *)
(* ------------------------------------------------------------------ *)

let userck_preamble =
  preamble
  ^ "int copy_to_user(void * __user d, void *s, unsigned long n) __blocking;\n\
     int copy_from_user(void *d, void * __user s, unsigned long n) __blocking;\n"

let test_userck_raw_deref_flagged () =
  let r =
    Userck.analyze
      (parse (userck_preamble ^ "int bad(char * __user p) { return *p; }"))
  in
  Alcotest.(check bool) "raw deref flagged" true
    (List.exists (fun v -> v.Userck.v_kind = Userck.Deref) r.Userck.violations)

let test_userck_copy_is_fine () =
  let r =
    Userck.analyze
      (parse
         (userck_preamble
        ^ "int good(char * __user p) { char k[8]; copy_from_user(k, p, 8); return k[0]; }"))
  in
  Alcotest.(check int) "copy helper path clean" 0 (List.length r.Userck.violations)

let test_userck_laundering_flagged () =
  let r =
    Userck.analyze
      (parse (userck_preamble ^ "char *launder(char * __user p) { char *k = (char *)p; return k; }"))
  in
  Alcotest.(check bool) "user-to-kernel flow flagged" true
    (List.exists (fun v -> v.Userck.v_kind = Userck.User_to_kernel) r.Userck.violations)

let test_userck_kernel_to_user_flagged () =
  let r =
    Userck.analyze
      (parse
         (userck_preamble
        ^ "int leak(char * __user p, char *k) { return copy_from_user(0, (char * __user)k, 1); }"))
  in
  Alcotest.(check bool) "kernel-to-user flow flagged" true
    (List.exists (fun v -> v.Userck.v_kind = Userck.Kernel_to_user) r.Userck.violations)

let test_userck_trusted_shim_ok () =
  let r =
    Userck.analyze
      (parse
         (userck_preamble
        ^ "char gbuf[16];\n\
           int shim(void) { char * __user up; __trusted { up = (char * __user)gbuf; } char k[8]; copy_from_user(k, up, 8); return k[0]; }"))
  in
  Alcotest.(check int) "trusted shim clean" 0 (List.length r.Userck.violations)

let test_userck_corpus_clean () =
  let r = Userck.analyze (Kernel.Corpus.load ()) in
  Alcotest.(check int) "corpus clean" 0 (List.length r.Userck.violations);
  Alcotest.(check bool) "user params present" true (r.Userck.user_params >= 4)

(* ------------------------------------------------------------------ *)
(* Annotation database                                                 *)
(* ------------------------------------------------------------------ *)

let test_db_add_query () =
  let db = Annotdb.create () in
  Annotdb.add db
    { Annotdb.subject = Annotdb.Func "kmalloc"; kind = "blocking_if_gfp_wait"; payload = "";
      provenance = Annotdb.Manual };
  Annotdb.add db
    { Annotdb.subject = Annotdb.Field ("vec", "data"); kind = "count"; payload = "len";
      provenance = Annotdb.Manual };
  Alcotest.(check int) "two facts" 2 (Annotdb.size db);
  Alcotest.(check int) "query by subject" 1
    (List.length (Annotdb.query db (Annotdb.Func "kmalloc")));
  Alcotest.(check int) "query field" 1
    (List.length (Annotdb.query db ~kind:"count" (Annotdb.Field ("vec", "data"))))

let test_db_manual_precedence () =
  let db = Annotdb.create () in
  let fact prov = { Annotdb.subject = Annotdb.Func "f"; kind = "blocking"; payload = "";
                    provenance = prov } in
  Annotdb.add db (fact (Annotdb.Inferred "blockstop"));
  Annotdb.add db (fact Annotdb.Manual);
  Alcotest.(check int) "deduplicated" 1 (Annotdb.size db);
  match Annotdb.query db (Annotdb.Func "f") with
  | [ f ] -> Alcotest.(check bool) "manual won" true (f.Annotdb.provenance = Annotdb.Manual)
  | _ -> Alcotest.fail "expected one fact"

let test_db_roundtrip () =
  let db = Annotdb.create () in
  Annotdb.add db
    { Annotdb.subject = Annotdb.Func "schedule"; kind = "blocking"; payload = "";
      provenance = Annotdb.Manual };
  Annotdb.add db
    { Annotdb.subject = Annotdb.Global "fs_root"; kind = "opt"; payload = "";
      provenance = Annotdb.Inferred "deputy" };
  let db2 = Annotdb.of_string (Annotdb.to_string db) in
  Alcotest.(check int) "same size" (Annotdb.size db) (Annotdb.size db2);
  Alcotest.(check string) "same serialization" (Annotdb.to_string db) (Annotdb.to_string db2)

let test_db_merge () =
  let a = Annotdb.create () and b = Annotdb.create () in
  Annotdb.add a
    { Annotdb.subject = Annotdb.Func "f"; kind = "blocking"; payload = ""; provenance = Annotdb.Manual };
  Annotdb.add b
    { Annotdb.subject = Annotdb.Func "g"; kind = "blocking"; payload = "";
      provenance = Annotdb.Inferred "blockstop" };
  Annotdb.merge ~into:a b;
  Alcotest.(check int) "merged" 2 (Annotdb.size a)

let test_db_save_load () =
  let db = Annotdb.create () in
  Annotdb.add db
    { Annotdb.subject = Annotdb.Func "msleep"; kind = "blocking"; payload = "";
      provenance = Annotdb.Manual };
  let path = Filename.temp_file "annotdb" ".tsv" in
  Annotdb.save db path;
  let db2 = Annotdb.load path in
  Sys.remove path;
  Alcotest.(check int) "file roundtrip" 1 (Annotdb.size db2)

let test_db_populate_corpus () =
  let prog = Kernel.Corpus.load () in
  let db = Annotdb.populate prog in
  Alcotest.(check bool) "substantial database" true (Annotdb.size db > 150);
  let blocking = Annotdb.by_kind db "blocking" in
  Alcotest.(check bool) "blocking facts inferred" true (List.length blocking > 20);
  let manual =
    List.length (List.filter (fun f -> f.Annotdb.provenance = Annotdb.Manual) db.Annotdb.facts)
  in
  let inferred = Annotdb.size db - manual in
  Alcotest.(check bool) "both manual and inferred facts" true (manual > 10 && inferred > 50);
  (* schedule is annotated by hand; its fact survives as manual. *)
  match Annotdb.query db ~kind:"blocking" (Annotdb.Func "schedule") with
  | [ f ] -> Alcotest.(check bool) "manual beats inferred" true (f.Annotdb.provenance = Annotdb.Manual)
  | l -> Alcotest.failf "expected one schedule fact, got %d" (List.length l)

let () =
  Alcotest.run "extensions"
    [
      ( "locksafe",
        [
          Alcotest.test_case "order inversion" `Quick test_lock_order_inversion;
          Alcotest.test_case "consistent order" `Quick test_consistent_order_clean;
          Alcotest.test_case "interprocedural" `Quick test_interprocedural_inversion;
          Alcotest.test_case "irq invariant" `Quick test_irq_spinlock_invariant;
          Alcotest.test_case "irqsave ok" `Quick test_irqsave_is_fine;
          Alcotest.test_case "corpus consistent" `Quick test_corpus_locks_consistent;
        ] );
      ( "stackcheck",
        [
          Alcotest.test_case "frame sizes" `Quick test_frame_sizes;
          Alcotest.test_case "depth accumulates" `Quick test_depth_accumulates;
          Alcotest.test_case "recursion" `Quick test_recursion_needs_runtime_check;
          Alcotest.test_case "fptr calls" `Quick test_fptr_calls_counted;
          Alcotest.test_case "frame hint" `Quick test_frame_hint;
          Alcotest.test_case "corpus budget" `Quick test_corpus_stack_budget;
        ] );
      ( "errcheck",
        [
          Alcotest.test_case "ignored flagged" `Quick test_ignored_result_flagged;
          Alcotest.test_case "checked clean" `Quick test_checked_result_clean;
          Alcotest.test_case "propagated clean" `Quick test_propagated_result_clean;
          Alcotest.test_case "unchecked binding" `Quick test_bound_but_never_tested;
          Alcotest.test_case "annotation respected" `Quick test_annotation_respected;
          Alcotest.test_case "corpus census" `Quick test_corpus_errcheck;
        ] );
      ( "userck",
        [
          Alcotest.test_case "raw deref" `Quick test_userck_raw_deref_flagged;
          Alcotest.test_case "copy helpers ok" `Quick test_userck_copy_is_fine;
          Alcotest.test_case "laundering" `Quick test_userck_laundering_flagged;
          Alcotest.test_case "kernel-to-user" `Quick test_userck_kernel_to_user_flagged;
          Alcotest.test_case "trusted shim" `Quick test_userck_trusted_shim_ok;
          Alcotest.test_case "corpus clean" `Quick test_userck_corpus_clean;
        ] );
      ( "annotdb",
        [
          Alcotest.test_case "add/query" `Quick test_db_add_query;
          Alcotest.test_case "manual precedence" `Quick test_db_manual_precedence;
          Alcotest.test_case "roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "merge" `Quick test_db_merge;
          Alcotest.test_case "save/load" `Quick test_db_save_load;
          Alcotest.test_case "populate corpus" `Quick test_db_populate_corpus;
        ] );
    ]

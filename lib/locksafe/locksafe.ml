(* Lock safety (paper §3.1, first proposed analysis).

   Two checks over the whole program:

   1. deadlock freedom by consistent lock order: build the
      "acquired-while-holding" graph over named locks; a cycle means
      two code paths take the same pair of locks in opposite orders;
   2. the Linux-specific invariant that a spinlock taken in interrupt
      context is never taken in process context with interrupts
      enabled (otherwise the irq can spin on a lock its own CPU
      holds).

   Locks are named: a lock is a global [long] whose address flows into
   [spin_lock] / [spin_lock_irqsave], exactly the paper's "light
   annotations will be used to name the locks" (the global's name is
   the annotation). [__acquires]/[__releases] function annotations
   summarize wrappers. *)

module I = Kc.Ir
module SS = Set.Make (String)

type acquire = {
  a_lock : string;
  a_in : string; (* function *)
  a_loc : Kc.Loc.t;
  a_irqsave : bool; (* taken with interrupts disabled *)
  a_held : SS.t; (* locks already held at this acquire *)
  a_in_irq : bool; (* reachable in interrupt context *)
}

type order_edge = { from_lock : string; to_lock : string; where : Kc.Loc.t; in_fn : string }

type report = {
  locks : string list;
  acquires : acquire list;
  order_edges : order_edge list;
  deadlock_cycles : (string * string) list; (* pairs locked in both orders *)
  irq_unsafe : (string * acquire) list; (* lock, offending process-context acquire *)
}

let lock_arg_name (e : I.exp) : string option =
  match e.I.e with
  | I.Eaddrof (I.Lvar v, []) when v.I.vglob -> Some v.I.vname
  | I.Eaddrof ((I.Lvar v, offs)) when v.I.vglob -> (
      (* &some_global.field_lock names the field path *)
      match List.rev offs with
      | I.Ofield f :: _ -> Some (v.I.vname ^ "." ^ f.I.fname)
      | _ -> Some v.I.vname)
  | _ -> None

let is_lock_fn = function "spin_lock" | "spin_lock_irqsave" -> true | _ -> false
let is_unlock_fn = function "spin_unlock" | "spin_unlock_irqrestore" -> true | _ -> false

(* Function-level lock summaries from __acquires/__releases. *)
let annot_summary (fd : I.fundec) : string list * string list =
  List.fold_left
    (fun (acq, rel) a ->
      match a with
      | Kc.Ast.Facquires l -> (l :: acq, rel)
      | Kc.Ast.Freleases l -> (acq, l :: rel)
      | _ -> (acq, rel))
    ([], []) fd.I.fannots

(* Walk one function with a held-set, collecting acquires and edges.
   [entry_held] are locks held when the function is entered;
   [in_irq] marks interrupt-context reachability. *)
let scan_function (prog : I.program) (fd : I.fundec) ~(entry_held : SS.t) ~(in_irq : bool)
    ~(emit : acquire -> unit) ~(edge : order_edge -> unit) :
    (string * SS.t) list (* callsites: callee, held set *) =
  let sites = ref [] in
  let rec walk_block held (b : I.block) : SS.t = List.fold_left walk_stmt held b
  and walk_stmt held (s : I.stmt) : SS.t =
    match s.I.sk with
    | I.Sinstr (I.Icall (_, I.Direct name, args)) when is_lock_fn name -> (
        match args with
        | a :: _ -> (
            match lock_arg_name a with
            | Some lock ->
                emit
                  {
                    a_lock = lock;
                    a_in = fd.I.fname;
                    a_loc = s.I.sloc;
                    a_irqsave = name = "spin_lock_irqsave";
                    a_held = held;
                    a_in_irq = in_irq;
                  };
                SS.iter
                  (fun h ->
                    if h <> lock then
                      edge { from_lock = h; to_lock = lock; where = s.I.sloc; in_fn = fd.I.fname })
                  held;
                SS.add lock held
            | None -> held)
        | [] -> held)
    | I.Sinstr (I.Icall (_, I.Direct name, args)) when is_unlock_fn name -> (
        match args with
        | a :: _ -> (
            match lock_arg_name a with Some lock -> SS.remove lock held | None -> held)
        | [] -> held)
    | I.Sinstr (I.Icall (_, I.Direct name, _)) -> (
        sites := (name, held) :: !sites;
        (* Apply the callee's __acquires/__releases summary. *)
        match I.find_fun prog name with
        | Some callee ->
            let acq, rel = annot_summary callee in
            let held = List.fold_left (fun h l -> SS.add l h) held acq in
            List.fold_left (fun h l -> SS.remove l h) held rel
        | None -> held)
    | I.Sinstr _ -> held
    | I.Sif (_, b1, b2) ->
        let h1 = walk_block held b1 and h2 = walk_block held b2 in
        SS.union h1 h2
    | I.Swhile (_, body, step) -> SS.union held (walk_block held (body @ step))
    | I.Sdowhile (body, _) -> SS.union held (walk_block held body)
    | I.Sswitch (_, cases) ->
        List.fold_left (fun acc (c : I.case) -> SS.union acc (walk_block held c.I.cbody)) held cases
    | I.Sbreak | I.Scontinue | I.Sreturn _ -> held
    | I.Sblock b | I.Sdelayed b | I.Strusted b -> walk_block held b
  in
  ignore (walk_block entry_held fd.I.fbody);
  !sites

let analyze ?handlers (prog : I.program) : report =
  let handlers =
    match handlers with Some h -> h | None -> Blockstop.Atomic.irq_handlers prog
  in
  (* Fixpoint: (held-at-entry, irq-reachable) per function. *)
  let entry_held : (string, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let irq_reach = ref (SS.union handlers SS.empty) in
  let get_held f = match Hashtbl.find_opt entry_held f with Some s -> s | None -> SS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fd : I.fundec) ->
        let in_irq = SS.mem fd.I.fname !irq_reach in
        let sites =
          scan_function prog fd ~entry_held:(get_held fd.I.fname) ~in_irq
            ~emit:(fun _ -> ())
            ~edge:(fun _ -> ())
        in
        List.iter
          (fun (callee, held) ->
            match I.find_fun prog callee with
            | Some cfd when not cfd.I.fextern ->
                let cur = get_held callee in
                (* Meet: a lock counts as held at entry only if held on
                   some path; for bug-finding we take the union. *)
                let next = SS.union cur held in
                if not (SS.equal cur next) then begin
                  Hashtbl.replace entry_held callee next;
                  changed := true
                end;
                if in_irq && not (SS.mem callee !irq_reach) then begin
                  irq_reach := SS.add callee !irq_reach;
                  changed := true
                end
            | _ -> ())
          sites)
      prog.I.funcs
  done;
  (* Final pass collecting acquires and order edges. *)
  let acquires = ref [] and edges = ref [] in
  List.iter
    (fun (fd : I.fundec) ->
      ignore
        (scan_function prog fd ~entry_held:(get_held fd.I.fname)
           ~in_irq:(SS.mem fd.I.fname !irq_reach)
           ~emit:(fun a -> acquires := a :: !acquires)
           ~edge:(fun e -> edges := e :: !edges)))
    prog.I.funcs;
  let acquires = List.rev !acquires and edges = List.rev !edges in
  (* Deadlock: pair (a, b) with edges both ways. *)
  let edge_set =
    List.fold_left (fun s e -> SS.add (e.from_lock ^ ">" ^ e.to_lock) s) SS.empty edges
  in
  let cycles =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if e.from_lock < e.to_lock && SS.mem (e.to_lock ^ ">" ^ e.from_lock) edge_set then
             Some (e.from_lock, e.to_lock)
           else if e.to_lock < e.from_lock && SS.mem (e.to_lock ^ ">" ^ e.from_lock) edge_set then
             Some (e.to_lock, e.from_lock)
           else None)
         edges)
  in
  (* IRQ invariant: a lock acquired in irq context must only ever be
     acquired with interrupts disabled in process context. *)
  let irq_locks =
    List.fold_left (fun s a -> if a.a_in_irq then SS.add a.a_lock s else s) SS.empty acquires
  in
  let irq_unsafe =
    List.filter_map
      (fun a ->
        if (not a.a_in_irq) && (not a.a_irqsave) && SS.mem a.a_lock irq_locks then
          Some (a.a_lock, a)
        else None)
      acquires
  in
  let locks =
    List.sort_uniq compare (List.map (fun a -> a.a_lock) acquires)
  in
  { locks; acquires; order_edges = edges; deadlock_cycles = cycles; irq_unsafe }

let pp fmt (r : report) =
  Format.fprintf fmt
    "locksafe: %d locks, %d acquires, %d order edges, %d deadlock pairs, %d irq-unsafe acquires"
    (List.length r.locks) (List.length r.acquires) (List.length r.order_edges)
    (List.length r.deadlock_cycles) (List.length r.irq_unsafe)

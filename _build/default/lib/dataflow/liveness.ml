(* Classic liveness analysis over variable ids.

   A variable is live at a point if some path to a use exists with no
   intervening definition. Used by tests as a reference client of the
   worklist solver, and by the Deputy check optimizer to prune dead
   temporaries. *)

module VS = Worklist.Int_set

module L = struct
  type t = VS.t

  let bottom = VS.empty
  let equal = VS.equal
  let join = VS.union
end

module Solver = Worklist.Make (L)

(* Variables read by an expression. *)
let rec exp_uses (e : Kc.Ir.exp) : VS.t =
  Kc.Ir.fold_exp
    (fun acc (sub : Kc.Ir.exp) ->
      match sub.Kc.Ir.e with
      | Kc.Ir.Elval (Kc.Ir.Lvar v, _) -> VS.add v.Kc.Ir.vid acc
      | Kc.Ir.Eaddrof (Kc.Ir.Lvar v, _) | Kc.Ir.Estartof (Kc.Ir.Lvar v, _) ->
          VS.add v.Kc.Ir.vid acc
      | _ -> acc)
    VS.empty e

and lval_uses ((host, offs) : Kc.Ir.lval) : VS.t =
  let base = match host with Kc.Ir.Lvar _ -> VS.empty | Kc.Ir.Lmem e -> exp_uses e in
  List.fold_left
    (fun acc o -> match o with Kc.Ir.Ofield _ -> acc | Kc.Ir.Oindex e -> VS.union acc (exp_uses e))
    base offs

(* Variable defined by an instruction, if the target is a plain
   variable without indirection. *)
let instr_def (i : Kc.Ir.instr) : int option =
  match Kc.Ir.lval_of_instr i with Some (Kc.Ir.Lvar v, []) -> Some v.Kc.Ir.vid | _ -> None

let instr_uses (i : Kc.Ir.instr) : VS.t =
  let exp_part =
    List.fold_left (fun acc e -> VS.union acc (exp_uses e)) VS.empty (Kc.Ir.exps_of_instr i)
  in
  match Kc.Ir.lval_of_instr i with
  | Some ((_, _) as lv) -> (
      (* Writing through indirection also reads the pointer. *)
      match lv with
      | Kc.Ir.Lvar _, [] -> exp_part
      | _ -> VS.union exp_part (lval_uses lv))
  | None -> exp_part

let term_uses (t : Cfg.terminator) : VS.t =
  match t with
  | Cfg.Tjump -> VS.empty
  | Cfg.Tcond e | Cfg.Tswitch e -> exp_uses e
  | Cfg.Treturn (Some e) -> exp_uses e
  | Cfg.Treturn None -> VS.empty

(* Transfer for a whole node, backward: live-out -> live-in. *)
let node_transfer (node : Cfg.node) (live_out : VS.t) : VS.t =
  let live = VS.union live_out (term_uses node.Cfg.term) in
  List.fold_left
    (fun live (i, _) ->
      let live = match instr_def i with Some v -> VS.remove v live | None -> live in
      VS.union live (instr_uses i))
    live
    (List.rev node.Cfg.instrs)

(* Live-in set per node. *)
let analyze (cfg : Cfg.t) : VS.t array =
  let r = Solver.solve ~dir:Worklist.Backward cfg ~init:VS.empty ~transfer:node_transfer in
  r.Solver.after

(* Is variable [v] live at entry of [node]? *)
let live_at (res : VS.t array) (node_id : int) (v : Kc.Ir.varinfo) : bool =
  VS.mem v.Kc.Ir.vid res.(node_id)

lib/kernel/src_header.ml:

(* Type checking and elaboration: surface AST -> typed IR.

   Runs in two passes over a list of compilation units:
   - pass A collects typedefs, struct/union definitions and enums;
   - pass B elaborates globals and function bodies in program order.

   Elaboration hoists nested function calls into temporaries, desugars
   compound assignment / increment / [for] loops, makes implicit
   conversions and array decay explicit, and resolves dependent
   [__count] annotations (to parameter/local references inside
   functions, and to {!Ir.Eself_field} inside struct definitions). *)

exception Type_error of string * Loc.t

let err loc fmt = Printf.ksprintf (fun msg -> raise (Type_error (msg, loc))) fmt

type scope = (string, Ir.varinfo) Hashtbl.t

type env = {
  prog : Ir.program;
  typedefs : (string, Ast.ty) Hashtbl.t;
  mutable scopes : scope list; (* innermost first *)
  mutable cur_fn : Ir.fundec option;
  vid_ctr : int ref;
  temp_ctr : int ref;
  (* When elaborating a struct field type, identifiers in __count
     resolve to sibling fields of this tag. *)
  mutable field_ctx : (string * Ast.param list) option;
}

let fresh_vid env =
  incr env.vid_ctr;
  !(env.vid_ctr)

let make_env () =
  {
    prog =
      {
        Ir.comps = Hashtbl.create 64;
        enum_items = Hashtbl.create 64;
        globals = [];
        funcs = [];
        fun_by_name = Hashtbl.create 64;
        glob_by_name = Hashtbl.create 64;
      };
    typedefs = Hashtbl.create 64;
    scopes = [];
    cur_fn = None;
    vid_ctr = ref 0;
    temp_ctr = ref 0;
    field_ctx = None;
  }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let lookup_local env name =
  let rec go = function
    | [] -> None
    | sc :: rest -> ( match Hashtbl.find_opt sc name with Some v -> Some v | None -> go rest)
  in
  go env.scopes

let define_local env (v : Ir.varinfo) =
  match env.scopes with
  | [] -> invalid_arg "define_local: no scope"
  | sc :: _ -> Hashtbl.replace sc v.Ir.vname v

(* ------------------------------------------------------------------ *)
(* Constant expression evaluation (for array sizes, enums, inits).    *)
(* ------------------------------------------------------------------ *)

let rec const_eval env (e : Ast.expr) : int64 =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eint n -> n
  | Ast.Echar c -> Int64.of_int (Char.code c)
  | Ast.Eident name -> (
      match Hashtbl.find_opt env.prog.Ir.enum_items name with
      | Some v -> v
      | None -> err loc "identifier %s is not a compile-time constant" name)
  | Ast.Eunop (Ast.Neg, e1) -> Int64.neg (const_eval env e1)
  | Ast.Eunop (Ast.Bitnot, e1) -> Int64.lognot (const_eval env e1)
  | Ast.Eunop (Ast.Lognot, e1) -> if const_eval env e1 = 0L then 1L else 0L
  | Ast.Ebinop (op, e1, e2) -> (
      let a = const_eval env e1 and b = const_eval env e2 in
      let open Int64 in
      match op with
      | Ast.Add -> add a b
      | Ast.Sub -> sub a b
      | Ast.Mul -> mul a b
      | Ast.Div -> if b = 0L then err loc "division by zero in constant" else div a b
      | Ast.Mod -> if b = 0L then err loc "mod by zero in constant" else rem a b
      | Ast.Shl -> shift_left a (to_int b)
      | Ast.Shr -> shift_right a (to_int b)
      | Ast.Bitand -> logand a b
      | Ast.Bitor -> logor a b
      | Ast.Bitxor -> logxor a b
      | Ast.Lt -> if a < b then 1L else 0L
      | Ast.Gt -> if a > b then 1L else 0L
      | Ast.Le -> if a <= b then 1L else 0L
      | Ast.Ge -> if a >= b then 1L else 0L
      | Ast.Eq -> if a = b then 1L else 0L
      | Ast.Ne -> if a <> b then 1L else 0L
      | Ast.Logand -> if a <> 0L && b <> 0L then 1L else 0L
      | Ast.Logor -> if a <> 0L || b <> 0L then 1L else 0L)
  | Ast.Esizeof_type t ->
      let ty = resolve_type env Loc.dummy t in
      Int64.of_int (Layout.size_of env.prog ty)
  | Ast.Econd (c, a, b) -> if const_eval env c <> 0L then const_eval env a else const_eval env b
  | _ -> err loc "expression is not a compile-time constant"

(* ------------------------------------------------------------------ *)
(* Type resolution: Ast.ty -> Ir.ty.                                  *)
(* ------------------------------------------------------------------ *)

and resolve_type env loc (t : Ast.ty) : Ir.ty =
  match t with
  | Ast.Tvoid -> Ir.Tvoid
  | Ast.Tint (k, s) -> Ir.Tint (k, s)
  | Ast.Tptr (t1, annots) ->
      let base = resolve_type env loc t1 in
      let a =
        List.fold_left
          (fun (a : Ir.annots) annot ->
            match annot with
            | Ast.Acount e -> { a with Ir.a_count = Some (elab_annot_exp env e) }
            | Ast.Anullterm -> { a with Ir.a_nullterm = true }
            | Ast.Aopt -> { a with Ir.a_opt = true }
            | Ast.Atrusted -> { a with Ir.a_trusted = true }
            | Ast.Auser -> { a with Ir.a_user = true })
          Ir.no_annots annots
      in
      Ir.Tptr (base, a)
  | Ast.Tarray (t1, size) ->
      let base = resolve_type env loc t1 in
      let n =
        match size with
        | Some e -> Int64.to_int (const_eval env e)
        | None -> err loc "array type needs an explicit size in KC"
      in
      if n <= 0 then err loc "array size must be positive";
      Ir.Tarray (base, n)
  | Ast.Tfun (ret, params, _variadic) ->
      Ir.Tfun (resolve_type env loc ret, List.map (fun p -> resolve_type env loc p.Ast.pty) params)
  | Ast.Tnamed name -> (
      match Hashtbl.find_opt env.typedefs name with
      | Some t1 -> resolve_type env loc t1
      | None -> err loc "unknown typedef %s" name)
  | Ast.Tstruct tag | Ast.Tunion tag ->
      if not (Hashtbl.mem env.prog.Ir.comps tag) then err loc "unknown struct/union %s" tag;
      Ir.Tcomp tag
  | Ast.Tenum _ -> Ir.int_type

(* Elaborate an annotation expression ([__count(e)]): constants,
   parameters/locals in function scope, sibling fields in a struct
   definition, and +,-,* arithmetic over those. *)
and elab_annot_exp env (e : Ast.expr) : Ir.exp =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eint n -> Ir.const_int n
  | Ast.Eident name -> (
      match env.field_ctx with
      | Some (tag, fields) -> (
          match List.find_opt (fun f -> f.Ast.pname = name) fields with
          | Some f ->
              let fty = resolve_type env loc f.Ast.pty in
              if not (Ir.is_integral fty) then err loc "__count field %s must be integral" name;
              Ir.mk_exp (Ir.Eself_field (tag, name)) fty
          | None -> err loc "__count refers to unknown sibling field %s" name)
      | None -> (
          match lookup_local env name with
          | Some v ->
              if not (Ir.is_integral v.Ir.vty) then
                err loc "__count variable %s must be integral" name;
              Ir.mk_exp (Ir.Elval (Ir.Lvar v, [])) v.Ir.vty
          | None -> (
              match Hashtbl.find_opt env.prog.Ir.enum_items name with
              | Some v -> Ir.const_int v
              | None -> (
                  match Hashtbl.find_opt env.prog.Ir.glob_by_name name with
                  | Some v when Ir.is_integral v.Ir.vty ->
                      Ir.mk_exp (Ir.Elval (Ir.Lvar v, [])) v.Ir.vty
                  | _ -> err loc "__count refers to unknown variable %s" name))))
  | Ast.Ebinop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Shl | Ast.Shr) as op), e1, e2) ->
      let a = elab_annot_exp env e1 and b = elab_annot_exp env e2 in
      Ir.mk_exp (Ir.Ebinop (op, a, b)) Ir.long_type
  | Ast.Esizeof_type t ->
      let ty = resolve_type env loc t in
      Ir.const_int (Int64.of_int (Layout.size_of env.prog ty))
  | _ -> err loc "unsupported expression form in __count annotation"

(* ------------------------------------------------------------------ *)
(* Conversions.                                                       *)
(* ------------------------------------------------------------------ *)

let int_rank = function Ast.Ichar -> 1 | Ast.Ishort -> 2 | Ast.Iint -> 3 | Ast.Ilong -> 4

let is_null_const (e : Ir.exp) = match e.Ir.e with Ir.Econst 0L -> true | _ -> false

(* Conversion to an erased-equal type keeps the expression (and its
   annotation-carrying type) unchanged: Deputy needs the caller-side
   bounds of arguments, not the callee's declared view. *)
let cast_to ty (e : Ir.exp) : Ir.exp =
  if Ir.eq_erased ty e.Ir.ety then e else Ir.mk_exp (Ir.Ecast (ty, e)) ty

(* Implicit conversion of [e] to [ty]; raises on incompatible types. *)
let convert env loc (ty : Ir.ty) (e : Ir.exp) : Ir.exp =
  ignore env;
  match (ty, e.Ir.ety) with
  | Ir.Tint _, Ir.Tint _ -> cast_to ty e
  | Ir.Tptr _, _ when is_null_const e -> cast_to ty e
  | Ir.Tptr (Ir.Tvoid, _), Ir.Tptr _ -> cast_to ty e
  | Ir.Tptr _, Ir.Tptr (Ir.Tvoid, _) -> cast_to ty e
  | Ir.Tptr (t1, _), Ir.Tptr (t2, _) when Ir.eq_erased t1 t2 -> cast_to ty e
  | Ir.Tptr (Ir.Tfun (r1, a1), _), Ir.Tptr (Ir.Tfun (r2, a2), _)
    when Ir.eq_erased r1 r2 && List.length a1 = List.length a2 && List.for_all2 Ir.eq_erased a1 a2
    ->
      cast_to ty e
  | Ir.Tvoid, _ -> e
  | _ when Ir.eq_erased ty e.Ir.ety -> e (* struct/array assignment *)
  | _ ->
      err loc "cannot implicitly convert %s to %s"
        (Ir.type_to_string e.Ir.ety) (Ir.type_to_string ty)

(* Usual arithmetic conversions, simplified: pick the operand type of
   highest rank; unsigned wins ties. *)
let common_int_type loc t1 t2 =
  match (t1, t2) with
  | Ir.Tint (k1, s1), Ir.Tint (k2, s2) ->
      let k = if int_rank k1 >= int_rank k2 then k1 else k2 in
      let k = if int_rank k < int_rank Ast.Iint then Ast.Iint else k in
      let s =
        if int_rank k1 = int_rank k2 then
          if s1 = Ast.Unsigned || s2 = Ast.Unsigned then Ast.Unsigned else Ast.Signed
        else if int_rank k1 > int_rank k2 then s1
        else s2
      in
      Ir.Tint (k, s)
  | _ -> err loc "expected integer operands"

(* ------------------------------------------------------------------ *)
(* Expression elaboration.                                            *)
(* ------------------------------------------------------------------ *)

(* Instructions emitted before the value of the expression is
   available (hoisted calls, assignments in value position). *)
type emitted = Ir.stmt list ref

let emit (acc : emitted) loc (i : Ir.instr) = acc := { Ir.sk = Ir.Sinstr i; sloc = loc } :: !acc

let fresh_temp env (ty : Ir.ty) : Ir.varinfo =
  incr env.temp_ctr;
  let v =
    {
      Ir.vname = Printf.sprintf "__t%d" !(env.temp_ctr);
      vid = fresh_vid env;
      vty = ty;
      vglob = false;
      vparam = false;
      vtemp = true;
      vaddrof = false;
    }
  in
  (match env.cur_fn with
  | Some f -> f.Ir.slocals <- v :: f.Ir.slocals
  | None -> invalid_arg "fresh_temp outside function");
  v

let rec type_of_lval env loc ((host, offs) : Ir.lval) : Ir.ty =
  ignore env;
  let base =
    match host with
    | Ir.Lvar v -> v.Ir.vty
    | Ir.Lmem e -> (
        match e.Ir.ety with
        | Ir.Tptr (t, _) -> t
        | t -> err loc "dereference of non-pointer %s" (Ir.type_to_string t))
  in
  List.fold_left
    (fun ty off ->
      match (off, ty) with
      | Ir.Ofield f, Ir.Tcomp _ -> f.Ir.fty
      | Ir.Ofield f, _ -> err loc "field %s access on non-struct" f.Ir.fname
      | Ir.Oindex _, Ir.Tarray (t, _) -> t
      | Ir.Oindex _, t -> err loc "index on non-array %s" (Ir.type_to_string t))
    base offs

and find_field env loc tag fname : Ir.fieldinfo =
  try Ir.field_find env.prog tag fname
  with Invalid_argument _ -> err loc "struct %s has no field %s" tag fname

(* Resolve an identifier in expression position. *)
and resolve_ident env loc name : Ir.exp =
  match lookup_local env name with
  | Some v -> Ir.mk_exp (Ir.Elval (Ir.Lvar v, [])) v.Ir.vty
  | None -> (
      match Hashtbl.find_opt env.prog.Ir.enum_items name with
      | Some v -> Ir.const_int v
      | None -> (
          match Hashtbl.find_opt env.prog.Ir.glob_by_name name with
          | Some v -> Ir.mk_exp (Ir.Elval (Ir.Lvar v, [])) v.Ir.vty
          | None -> (
              match Ir.find_fun env.prog name with
              | Some f ->
                  let aty = List.map (fun v -> v.Ir.vty) f.Ir.sformals in
                  Ir.mk_exp (Ir.Efun name) (Ir.Tptr (Ir.Tfun (f.Ir.fret, aty), Ir.no_annots))
              | None -> err loc "unknown identifier %s" name)))

and elab_lval env acc (e : Ast.expr) : Ir.lval =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eident name -> (
      let v = resolve_ident env loc name in
      match v.Ir.e with
      | Ir.Elval lv -> lv
      | _ -> err loc "%s is not an lvalue" name)
  | Ast.Ederef e1 -> (
      let p = elab_exp env acc e1 in
      match p.Ir.ety with
      | Ir.Tptr _ -> (Ir.Lmem p, [])
      | t -> err loc "cannot dereference %s" (Ir.type_to_string t))
  | Ast.Eindex (arr, idx) -> (
      let i = elab_exp env acc idx in
      let i = convert env loc Ir.long_type i in
      (* Array lvalue: extend the offset path. Pointer: pointer
         arithmetic then Lmem. *)
      match classify_array_or_ptr env acc arr with
      | `Array lv -> (fst lv, snd lv @ [ Ir.Oindex i ])
      | `Ptr p -> (Ir.Lmem (Ir.mk_exp (Ir.Ebinop (Ast.Add, p, i)) p.Ir.ety), []))
  | Ast.Efield (e1, fname) -> (
      let lv = elab_lval env acc e1 in
      match type_of_lval env loc lv with
      | Ir.Tcomp tag ->
          let f = find_field env loc tag fname in
          (fst lv, snd lv @ [ Ir.Ofield f ])
      | t -> err loc "field access .%s on non-struct %s" fname (Ir.type_to_string t))
  | Ast.Earrow (e1, fname) -> (
      let p = elab_exp env acc e1 in
      match p.Ir.ety with
      | Ir.Tptr (Ir.Tcomp tag, _) ->
          let f = find_field env loc tag fname in
          (Ir.Lmem p, [ Ir.Ofield f ])
      | t -> err loc "-> on non-struct-pointer %s" (Ir.type_to_string t))
  | _ -> err loc "expression is not an lvalue"

(* For e[i]: decide whether e is an array lvalue (offset extension) or
   a pointer expression. *)
and classify_array_or_ptr env acc (e : Ast.expr) =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eident _ | Ast.Efield (_, _) | Ast.Earrow (_, _) | Ast.Ederef _ | Ast.Eindex (_, _) -> (
      let lv = elab_lval env acc e in
      match type_of_lval env loc lv with
      | Ir.Tarray _ -> `Array lv
      | Ir.Tptr _ -> `Ptr (Ir.mk_exp (Ir.Elval lv) (type_of_lval env loc lv))
      | t -> err loc "cannot index %s" (Ir.type_to_string t))
  | _ -> (
      let p = elab_exp env acc e in
      match p.Ir.ety with
      | Ir.Tptr _ -> `Ptr p
      | t -> err loc "cannot index %s" (Ir.type_to_string t))

(* Elaborate an expression to a value, emitting prefix instructions
   into [acc]. *)
and elab_exp env acc (e : Ast.expr) : Ir.exp =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eint n ->
      (* Literals that don't fit in int become long. *)
      if n >= -2147483648L && n <= 4294967295L then Ir.const_int n
      else Ir.const_int ~ty:Ir.long_type n
  | Ast.Echar c -> Ir.const_int ~ty:Ir.char_type (Int64.of_int (Char.code c))
  | Ast.Estr s ->
      let a =
        {
          Ir.a_count = Some (Ir.const_int (Int64.of_int (String.length s)));
          a_nullterm = true;
          a_opt = false;
          a_trusted = false;
          a_user = false;
        }
      in
      Ir.mk_exp (Ir.Estr s) (Ir.Tptr (Ir.char_type, a))
  | Ast.Eident _ | Ast.Ederef _ | Ast.Eindex _ | Ast.Efield _ | Ast.Earrow _ -> (
      match e.Ast.e with
      | Ast.Eident name -> (
          let v = resolve_ident env loc name in
          match v.Ir.ety with
          | Ir.Tarray (elt, n) ->
              let lv = match v.Ir.e with Ir.Elval lv -> lv | _ -> assert false in
              decay_array env lv elt n
          | _ -> v)
      | _ -> (
          let lv = elab_lval env acc e in
          match type_of_lval env loc lv with
          | Ir.Tarray (elt, n) -> decay_array env lv elt n
          | ty -> Ir.mk_exp (Ir.Elval lv) ty))
  | Ast.Eunop (op, e1) -> (
      let v = elab_exp env acc e1 in
      match op with
      | Ast.Neg | Ast.Bitnot ->
          if not (Ir.is_integral v.Ir.ety) then err loc "unary %s needs an integer" "op";
          let ty = common_int_type loc v.Ir.ety Ir.int_type in
          Ir.mk_exp (Ir.Eunop (op, cast_to ty v)) ty
      | Ast.Lognot ->
          if not (Ir.is_integral v.Ir.ety || Ir.is_pointer v.Ir.ety) then
            err loc "! needs a scalar";
          Ir.mk_exp (Ir.Eunop (op, v)) Ir.int_type)
  | Ast.Ebinop (op, e1, e2) -> elab_binop env acc loc op e1 e2
  | Ast.Eassign (lhs, rhs) ->
      let lv = elab_lval env acc lhs in
      let ty = type_of_lval env loc lv in
      let v = convert env loc ty (elab_exp env acc rhs) in
      emit acc loc (Ir.Iset (lv, v));
      Ir.mk_exp (Ir.Elval lv) ty
  | Ast.Eassign_op (op, lhs, rhs) ->
      let lv = elab_lval env acc lhs in
      let ty = type_of_lval env loc lv in
      let cur = Ir.mk_exp (Ir.Elval lv) ty in
      let rhs' = elab_exp env acc rhs in
      let result = apply_binop env loc op cur rhs' in
      emit acc loc (Ir.Iset (lv, convert env loc ty result));
      Ir.mk_exp (Ir.Elval lv) ty
  | Ast.Eincr (is_incr, is_prefix, e1) ->
      let lv = elab_lval env acc e1 in
      let ty = type_of_lval env loc lv in
      let cur = Ir.mk_exp (Ir.Elval lv) ty in
      let op = if is_incr then Ast.Add else Ast.Sub in
      if is_prefix then begin
        let next = apply_binop env loc op cur Ir.one in
        emit acc loc (Ir.Iset (lv, convert env loc ty next));
        Ir.mk_exp (Ir.Elval lv) ty
      end
      else begin
        let t = fresh_temp env ty in
        emit acc loc (Ir.Iset ((Ir.Lvar t, []), cur));
        let old = Ir.mk_exp (Ir.Elval (Ir.Lvar t, [])) ty in
        let next = apply_binop env loc op old Ir.one in
        emit acc loc (Ir.Iset (lv, convert env loc ty next));
        old
      end
  | Ast.Ecall (f, args) -> (
      match elab_call env acc loc f args with
      | Some v -> v
      | None -> err loc "void function call used as a value")
  | Ast.Eaddrof e1 -> (
      match e1.Ast.e with
      | Ast.Eident name when lookup_local env name = None
                             && not (Hashtbl.mem env.prog.Ir.glob_by_name name)
                             && Ir.find_fun env.prog name <> None ->
          resolve_ident env loc name (* &f on a function is just f *)
      | _ ->
          let lv = elab_lval env acc e1 in
          mark_addrof lv;
          let ty = type_of_lval env loc lv in
          Ir.mk_exp (Ir.Eaddrof lv)
            (Ir.Tptr (ty, { Ir.no_annots with Ir.a_count = Some Ir.one })))
  | Ast.Ecast (t, e1) ->
      let ty = resolve_type env loc t in
      let v = elab_exp env acc e1 in
      explicit_cast env loc ty v
  | Ast.Esizeof_type t ->
      let ty = resolve_type env loc t in
      Ir.const_int ~ty:Ir.ulong_type (Int64.of_int (Layout.size_of env.prog ty))
  | Ast.Esizeof_expr e1 ->
      (* sizeof does not evaluate its argument; elaborate it into a
         scratch accumulator for its type only. *)
      let scratch = ref [] in
      let v = elab_exp env scratch e1 in
      Ir.const_int ~ty:Ir.ulong_type (Int64.of_int (Layout.size_of env.prog v.Ir.ety))
  | Ast.Econd (c, a, b) ->
      let cv = elab_exp env acc c in
      let scratch_a = ref [] and scratch_b = ref [] in
      let av = elab_exp env scratch_a a in
      let bv = elab_exp env scratch_b b in
      if !scratch_a <> [] || !scratch_b <> [] then
        err loc "function calls are not allowed inside ?: branches in KC";
      let ty =
        if Ir.is_integral av.Ir.ety && Ir.is_integral bv.Ir.ety then
          common_int_type loc av.Ir.ety bv.Ir.ety
        else if Ir.is_pointer av.Ir.ety then av.Ir.ety
        else bv.Ir.ety
      in
      Ir.mk_exp (Ir.Econd (cv, convert env loc ty av, convert env loc ty bv)) ty

and decay_array env lv elt n =
  mark_addrof lv;
  ignore env;
  let a = { Ir.no_annots with Ir.a_count = Some (Ir.const_int (Int64.of_int n)) } in
  Ir.mk_exp (Ir.Estartof lv) (Ir.Tptr (elt, a))

and mark_addrof (host, _) =
  match host with Ir.Lvar v -> v.Ir.vaddrof <- true | Ir.Lmem _ -> ()

(* Explicit casts are permissive: any scalar-to-scalar conversion is
   accepted; Deputy later decides which casts need trust. *)
and explicit_cast env loc ty v =
  ignore env;
  match (ty, v.Ir.ety) with
  | (Ir.Tint _ | Ir.Tptr _), (Ir.Tint _ | Ir.Tptr _) -> cast_to ty v
  | Ir.Tvoid, _ -> v
  | _ -> err loc "invalid cast from %s to %s" (Ir.type_to_string v.Ir.ety) (Ir.type_to_string ty)

and apply_binop env loc op (a : Ir.exp) (b : Ir.exp) : Ir.exp =
  match op with
  | Ast.Add | Ast.Sub -> (
      match (a.Ir.ety, b.Ir.ety) with
      | Ir.Tptr _, Ir.Tint _ ->
          Ir.mk_exp (Ir.Ebinop (op, a, convert env loc Ir.long_type b)) a.Ir.ety
      | Ir.Tint _, Ir.Tptr _ when op = Ast.Add ->
          Ir.mk_exp (Ir.Ebinop (op, b, convert env loc Ir.long_type a)) b.Ir.ety
      | Ir.Tptr _, Ir.Tptr _ when op = Ast.Sub ->
          Ir.mk_exp (Ir.Ebinop (op, a, b)) Ir.long_type
      | Ir.Tint _, Ir.Tint _ ->
          let ty = common_int_type loc a.Ir.ety b.Ir.ety in
          Ir.mk_exp (Ir.Ebinop (op, cast_to ty a, cast_to ty b)) ty
      | _ ->
          err loc "invalid operands to %s: %s, %s" (Ast.binop_to_string op)
            (Ir.type_to_string a.Ir.ety) (Ir.type_to_string b.Ir.ety))
  | Ast.Mul | Ast.Div | Ast.Mod | Ast.Shl | Ast.Shr | Ast.Bitand | Ast.Bitor | Ast.Bitxor ->
      if not (Ir.is_integral a.Ir.ety && Ir.is_integral b.Ir.ety) then
        err loc "invalid operands to %s" (Ast.binop_to_string op);
      let ty =
        match op with
        | Ast.Shl | Ast.Shr -> common_int_type loc a.Ir.ety Ir.int_type
        | _ -> common_int_type loc a.Ir.ety b.Ir.ety
      in
      let b' =
        match op with
        | Ast.Shl | Ast.Shr -> convert env loc Ir.int_type b
        | _ -> cast_to ty b
      in
      Ir.mk_exp (Ir.Ebinop (op, cast_to ty a, b')) ty
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne -> (
      match (a.Ir.ety, b.Ir.ety) with
      | Ir.Tint _, Ir.Tint _ ->
          let ty = common_int_type loc a.Ir.ety b.Ir.ety in
          Ir.mk_exp (Ir.Ebinop (op, cast_to ty a, cast_to ty b)) Ir.int_type
      | Ir.Tptr _, Ir.Tptr _ -> Ir.mk_exp (Ir.Ebinop (op, a, b)) Ir.int_type
      | Ir.Tptr _, Ir.Tint _ when is_null_const b ->
          Ir.mk_exp (Ir.Ebinop (op, a, cast_to a.Ir.ety b)) Ir.int_type
      | Ir.Tint _, Ir.Tptr _ when is_null_const a ->
          Ir.mk_exp (Ir.Ebinop (op, cast_to b.Ir.ety a, b)) Ir.int_type
      | _ ->
          err loc "invalid comparison between %s and %s" (Ir.type_to_string a.Ir.ety)
            (Ir.type_to_string b.Ir.ety))
  | Ast.Logand | Ast.Logor ->
      (* Lazy; elaborated as Econd to preserve short-circuiting. *)
      let bz = Ir.mk_exp (Ir.Ebinop (Ast.Ne, b, cast_to b.Ir.ety Ir.zero)) Ir.int_type in
      if op = Ast.Logand then Ir.mk_exp (Ir.Econd (a, bz, Ir.zero)) Ir.int_type
      else Ir.mk_exp (Ir.Econd (a, Ir.one, bz)) Ir.int_type

and elab_binop env acc loc op e1 e2 =
  match op with
  | Ast.Logand | Ast.Logor ->
      let a = elab_exp env acc e1 in
      let scratch = ref [] in
      let b = elab_exp env scratch e2 in
      if !scratch <> [] then
        err loc "function calls are not allowed on the right of %s in KC"
          (Ast.binop_to_string op);
      apply_binop env loc op a b
  | _ ->
      let a = elab_exp env acc e1 in
      let b = elab_exp env acc e2 in
      apply_binop env loc op a b

(* Elaborate a call; returns None for void calls. *)
and elab_call env acc loc (f : Ast.expr) (args : Ast.expr list) : Ir.exp option =
  let target, ret_ty, param_tys, variadic =
    match f.Ast.e with
    | Ast.Eident name when lookup_local env name = None
                           && not (Hashtbl.mem env.prog.Ir.glob_by_name name) -> (
        match Ir.find_fun env.prog name with
        | Some fd ->
            ( Ir.Direct name,
              fd.Ir.fret,
              List.map (fun v -> v.Ir.vty) fd.Ir.sformals,
              fd.Ir.fextern (* extern/builtin functions are treated as variadic-tolerant *) )
        | None -> err loc "call to unknown function %s" name)
    | _ -> (
        let fv = elab_exp env acc f in
        match fv.Ir.ety with
        | Ir.Tptr (Ir.Tfun (ret, ptys), _) -> (Ir.Indirect fv, ret, ptys, false)
        | t -> err loc "call of non-function %s" (Ir.type_to_string t))
  in
  let n_params = List.length param_tys in
  let n_args = List.length args in
  if n_args < n_params || ((not variadic) && n_args > n_params) then
    err loc "wrong number of arguments: expected %d, got %d" n_params n_args;
  let args' =
    List.mapi
      (fun i a ->
        let v = elab_exp env acc a in
        if i < n_params then convert env loc (List.nth param_tys i) v else v)
      args
  in
  match ret_ty with
  | Ir.Tvoid ->
      emit acc loc (Ir.Icall (None, target, args'));
      None
  | _ ->
      let t = fresh_temp env ret_ty in
      emit acc loc (Ir.Icall (Some (Ir.Lvar t, []), target, args'));
      Some (Ir.mk_exp (Ir.Elval (Ir.Lvar t, [])) ret_ty)

(* ------------------------------------------------------------------ *)
(* Statement elaboration.                                             *)
(* ------------------------------------------------------------------ *)

(* Elaborate an expression in statement position (value unused). The
   post-increment temporary is avoided so `i++;` becomes `i = i + 1`. *)
let rec elab_for_effect env acc loc (e : Ast.expr) : unit =
  match e.Ast.e with
  | Ast.Ecall (f, args) -> ignore (elab_call env acc loc f args)
  | Ast.Eincr (is_incr, _, e1) ->
      let op = if is_incr then Ast.Add else Ast.Sub in
      let one = Ast.mk_expr ~loc:e.Ast.eloc (Ast.Eint 1L) in
      ignore (elab_exp env acc (Ast.mk_expr ~loc:e.Ast.eloc (Ast.Eassign_op (op, e1, one))))
  | _ -> ignore (elab_exp env acc e)

and elab_stmt env (s : Ast.stmt) : Ir.stmt list =
  let loc = s.Ast.sloc in
  let mk sk = { Ir.sk; sloc = loc } in
  match s.Ast.s with
  | Ast.Sexpr e ->
      let acc = ref [] in
      elab_for_effect env acc loc e;
      List.rev !acc
  | Ast.Sdecl d ->
      let ty = resolve_type env loc d.Ast.dty in
      (match ty with
      | Ir.Tvoid -> err loc "variable %s has type void" d.Ast.dname
      | Ir.Tfun _ -> err loc "local %s has function type" d.Ast.dname
      | _ -> ());
      let v =
        {
          Ir.vname = d.Ast.dname;
          vid = fresh_vid env;
          vty = ty;
          vglob = false;
          vparam = false;
          vtemp = false;
          vaddrof = false;
        }
      in
      (match env.cur_fn with
      | Some f -> f.Ir.slocals <- v :: f.Ir.slocals
      | None -> err loc "declaration outside function");
      define_local env v;
      (match d.Ast.dinit with
      | None -> []
      | Some ie ->
          let acc = ref [] in
          let value = convert env loc ty (elab_exp env acc ie) in
          emit acc loc (Ir.Iset ((Ir.Lvar v, []), value));
          List.rev !acc)
  | Ast.Sif (c, b1, b2) ->
      let acc = ref [] in
      let cv = elab_exp env acc c in
      let then_ = elab_block env b1 and else_ = elab_block env b2 in
      List.rev_append !acc [ mk (Ir.Sif (cv, then_, else_)) ]
  | Ast.Swhile (c, body) ->
      let acc = ref [] in
      let cv = elab_exp env acc c in
      if !acc <> [] then err loc "function calls are not allowed in loop conditions in KC";
      [ mk (Ir.Swhile (cv, elab_block env body, [])) ]
  | Ast.Sdowhile (body, c) ->
      let acc = ref [] in
      let cv = elab_exp env acc c in
      if !acc <> [] then err loc "function calls are not allowed in loop conditions in KC";
      [ mk (Ir.Sdowhile (elab_block env body, cv)) ]
  | Ast.Sfor (init, cond, step, body) ->
      push_scope env;
      let init_stmts = match init with None -> [] | Some s1 -> elab_stmt env s1 in
      let cv =
        match cond with
        | None -> Ir.one
        | Some c ->
            let acc = ref [] in
            let cv = elab_exp env acc c in
            if !acc <> [] then err loc "function calls are not allowed in loop conditions in KC";
            cv
      in
      let step_stmts =
        match step with
        | None -> []
        | Some e ->
            let acc = ref [] in
            elab_for_effect env acc loc e;
            List.rev !acc
      in
      let body' = elab_block env body in
      pop_scope env;
      init_stmts @ [ mk (Ir.Swhile (cv, body', step_stmts)) ]
  | Ast.Sswitch (e, cases) ->
      let acc = ref [] in
      let v = elab_exp env acc e in
      if not (Ir.is_integral v.Ir.ety) then err loc "switch needs an integer";
      let cases' =
        List.map
          (fun c ->
            {
              Ir.cvals = c.Ast.cases;
              cdefault = c.Ast.is_default;
              cbody = elab_block env c.Ast.body;
            })
          cases
      in
      List.rev_append !acc [ mk (Ir.Sswitch (v, cases')) ]
  | Ast.Sbreak -> [ mk Ir.Sbreak ]
  | Ast.Scontinue -> [ mk Ir.Scontinue ]
  | Ast.Sreturn e -> (
      let fn = match env.cur_fn with Some f -> f | None -> err loc "return outside function" in
      match (e, fn.Ir.fret) with
      | None, Ir.Tvoid -> [ mk (Ir.Sreturn None) ]
      | None, _ -> err loc "return without a value in non-void function %s" fn.Ir.fname
      | Some _, Ir.Tvoid -> err loc "return with a value in void function %s" fn.Ir.fname
      | Some e1, ret ->
          let acc = ref [] in
          let v = convert env loc ret (elab_exp env acc e1) in
          List.rev_append !acc [ mk (Ir.Sreturn (Some v)) ])
  | Ast.Sblock b -> [ mk (Ir.Sblock (elab_block env b)) ]
  | Ast.Sdelayed_free b -> [ mk (Ir.Sdelayed (elab_block env b)) ]
  | Ast.Strusted b -> [ mk (Ir.Strusted (elab_block env b)) ]

and elab_block env (b : Ast.block) : Ir.block =
  push_scope env;
  let stmts = List.concat_map (elab_stmt env) b in
  pop_scope env;
  stmts

(* ------------------------------------------------------------------ *)
(* Globals.                                                           *)
(* ------------------------------------------------------------------ *)

let elab_field env tag fields (p : Ast.param) : Ir.fieldinfo =
  env.field_ctx <- Some (tag, fields);
  let fty = resolve_type env Loc.dummy p.Ast.pty in
  env.field_ctx <- None;
  { Ir.fcomp = tag; fname = p.Ast.pname; fty }

let rec elab_init env loc (ty : Ir.ty) (i : Ast.init) : Ir.ginit =
  match (i, ty) with
  | Ast.Iexpr e, _ ->
      let acc = ref [] in
      let v = elab_exp env acc e in
      if !acc <> [] then err loc "global initializer must not contain calls";
      Ir.Gi_exp (convert env loc ty v)
  | Ast.Ilist items, Ir.Tarray (elt, n) ->
      if List.length items > n then err loc "too many initializers for array";
      Ir.Gi_list (List.map (elab_init env loc elt) items)
  | Ast.Ilist items, Ir.Tcomp tag ->
      let c = Ir.comp_find env.prog tag in
      if not c.Ir.cstruct then err loc "brace initializer for union is not supported";
      if List.length items > List.length c.Ir.cfields then
        err loc "too many initializers for struct %s" tag;
      Ir.Gi_list
        (List.map2
           (fun f i1 -> elab_init env loc f.Ir.fty i1)
           (List.filteri (fun k _ -> k < List.length items) c.Ir.cfields)
           items)
  | Ast.Ilist _, _ -> err loc "brace initializer for scalar type"

let declare_function env loc (fname : string) fret fparams fannots fstatic ~has_body =
  match Ir.find_fun env.prog fname with
  | Some existing when has_body && existing.Ir.fextern -> Some existing
  | Some _ when not has_body -> None (* redeclaration *)
  | Some _ -> err loc "function %s is defined twice" fname
  | None ->
      let ret = resolve_type env loc fret in
      let fd =
        {
          Ir.fname;
          fid = fresh_vid env;
          sformals = [];
          slocals = [];
          fret = ret;
          fbody = [];
          fannots;
          fstatic;
          floc = loc;
          fextern = true;
        }
      in
      Hashtbl.replace env.prog.Ir.fun_by_name fname fd;
      ignore fparams;
      Some fd

let elab_function_body env loc (fd : Ir.fundec) (fparams : Ast.param list) (body : Ast.block option)
    =
  (* Formals: declared in scope before their (possibly dependent)
     types are resolved, so __count may reference any parameter. *)
  push_scope env;
  env.cur_fn <- Some fd;
  let formals =
    List.map
      (fun p ->
        let v =
          {
            Ir.vname = p.Ast.pname;
            vid = fresh_vid env;
            vty = Ir.int_type (* placeholder; fixed below *);
            vglob = false;
            vparam = true;
            vtemp = false;
            vaddrof = false;
          }
        in
        define_local env v;
        v)
      fparams
  in
  List.iter2
    (fun (v : Ir.varinfo) (p : Ast.param) ->
      let ty = resolve_type env loc p.Ast.pty in
      let ty = match ty with Ir.Tarray (t, _) -> Ir.Tptr (t, Ir.no_annots) | t -> t in
      v.Ir.vty <- ty)
    formals fparams;
  (* Annotation expressions were elaborated against placeholder formal
     types; re-validate them now that every formal has its real type. *)
  let validate_count_exp (e : Ir.exp) =
    Ir.fold_exp
      (fun () (sub : Ir.exp) ->
        match sub.Ir.e with
        | Ir.Elval (Ir.Lvar v, []) when not (Ir.is_integral v.Ir.vty) ->
            err loc "__count variable %s must be integral" v.Ir.vname
        | _ -> ())
      () e
  in
  let rec validate_ty = function
    | Ir.Tptr (t, a) ->
        Option.iter validate_count_exp a.Ir.a_count;
        validate_ty t
    | Ir.Tarray (t, _) -> validate_ty t
    | Ir.Tfun (r, args) ->
        validate_ty r;
        List.iter validate_ty args
    | Ir.Tvoid | Ir.Tint _ | Ir.Tcomp _ -> ()
  in
  List.iter (fun (v : Ir.varinfo) -> validate_ty v.Ir.vty) formals;
  fd.Ir.sformals <- formals;
  (match body with
  | None -> ()
  | Some b ->
      let stmts = elab_block env b in
      fd.Ir.fbody <- stmts);
  env.cur_fn <- None;
  pop_scope env

let elab_global env ((g, loc) : Ast.global * Loc.t) =
  match g with
  | Ast.Gtag_decl _ | Ast.Gtypedef _ | Ast.Gcomp _ | Ast.Genum _ -> () (* handled in pass A *)
  | Ast.Gvar { vname; vty; vinit; vstatic = _ } ->
      if Hashtbl.mem env.prog.Ir.glob_by_name vname then err loc "global %s redefined" vname
      else begin
        let ty = resolve_type env loc vty in
        let v =
          {
            Ir.vname;
            vid = fresh_vid env;
            vty = ty;
            vglob = true;
            vparam = false;
            vtemp = false;
            vaddrof = false;
          }
        in
        Hashtbl.replace env.prog.Ir.glob_by_name vname v;
        let init = Option.map (elab_init env loc ty) vinit in
        env.prog.Ir.globals <- env.prog.Ir.globals @ [ (v, init) ]
      end
  | Ast.Gfun { fname; fret; fparams; fannots; fbody; fstatic; floc } -> (
      match
        declare_function env floc fname fret fparams fannots fstatic ~has_body:(fbody <> None)
      with
      | None -> ()
      | Some fd ->
          if fbody <> None then begin
            fd.Ir.fextern <- false;
            elab_function_body env floc fd fparams fbody;
            fd.Ir.slocals <- List.rev fd.Ir.slocals;
            env.prog.Ir.funcs <- env.prog.Ir.funcs @ [ fd ]
          end
          else elab_function_body env floc fd fparams None)

(* Pass A: collect typedefs, struct/union tags and enum items. *)
let collect_types env (units : Ast.unit_ list) =
  (* A1: register every tag so mutually recursive pointers resolve,
     and record typedefs and enum values. *)
  List.iter
    (fun u ->
      List.iter
        (fun (g, loc) ->
          match g with
          | Ast.Gtypedef (name, ty) -> Hashtbl.replace env.typedefs name ty
          | Ast.Gcomp (is_struct, tag, _) ->
              if Hashtbl.mem env.prog.Ir.comps tag then err loc "struct/union %s redefined" tag;
              Hashtbl.replace env.prog.Ir.comps tag
                { Ir.cname = tag; cstruct = is_struct; cfields = [] }
          | Ast.Genum (_, items) ->
              let next = ref 0L in
              List.iter
                (fun (name, v) ->
                  let value = match v with Some v -> v | None -> !next in
                  if Hashtbl.mem env.prog.Ir.enum_items name then
                    err loc "enumerator %s redefined" name;
                  Hashtbl.replace env.prog.Ir.enum_items name value;
                  next := Int64.add value 1L)
                items
          | Ast.Gtag_decl _ | Ast.Gvar _ | Ast.Gfun _ -> ())
        u.Ast.globals)
    units;
  (* A2: elaborate fields, in declaration order. *)
  List.iter
    (fun u ->
      List.iter
        (fun (g, _loc) ->
          match g with
          | Ast.Gcomp (is_struct, tag, fields) ->
              let fis = List.map (elab_field env tag fields) fields in
              Hashtbl.replace env.prog.Ir.comps tag
                { Ir.cname = tag; cstruct = is_struct; cfields = fis }
          | Ast.Gtag_decl _ | Ast.Gtypedef _ | Ast.Genum _ | Ast.Gvar _ | Ast.Gfun _ -> ())
        u.Ast.globals)
    units

(* Type-check a list of compilation units into a single program. *)
let check_units (units : Ast.unit_ list) : Ir.program =
  let env = make_env () in
  collect_types env units;
  List.iter (fun u -> List.iter (elab_global env) u.Ast.globals) units;
  env.prog

(* Convenience: parse and check a list of (name, source) pairs. *)
let check_sources (sources : (string * string) list) : Ir.program =
  let _, units =
    List.fold_left
      (fun (typedefs, units) (name, src) ->
        let u = Parser.parse_unit ~typedefs ~name src in
        (typedefs @ Parser.typedef_names u, u :: units))
      ([], []) sources
  in
  check_units (List.rev units)

lib/ccount/typeinfo.ml: Hashtbl Kc List Printf Vm

(** The unified diagnostic: every analysis running under the engine
    reports findings as [Diag.t] values instead of inventing its own
    report record, so one renderer (text or JSON) serves them all and
    output order is deterministic across runs. *)

type severity = Info | Warning | Error

type t = {
  analysis : string;  (** short analysis name, e.g. "locksafe" *)
  severity : severity;
  loc : Kc.Loc.t;
  message : string;
  fix_hint : string option;  (** how a developer would silence/fix it *)
}

val make :
  ?severity:severity -> ?fix_hint:string -> analysis:string -> loc:Kc.Loc.t -> string -> t

val severity_to_string : severity -> string

(** Total order: file, line, column, analysis, severity, message —
    so a diagnostic list sorts the same way on every run. *)
val compare : t -> t -> int

(** Sort by {!compare} and drop exact duplicates. *)
val sort : t list -> t list

(** ["file:line: [severity] analysis: message (hint: ...)"] *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** One JSON object; [list_to_json] wraps a sorted list in an array. *)
val to_json : t -> string

val list_to_json : t list -> string

(** [(severity, count)] pairs for the non-empty severities. *)
val tally : t list -> (severity * int) list

test/test_dataflow.ml: Alcotest Array Dataflow Hashtbl Kc List Printf

lib/deputy/annot.mli: Kc

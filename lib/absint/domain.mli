(** Abstract-domain selection: the interval×nullness×zone product is
    the default; [IVY_ABSINT_DOMAIN=interval] opts out of the
    relational component. *)

type t = Product | Interval_only

val of_string : string -> t option

val current : unit -> t
(** Programmatic override, else the environment, else [Product]. *)

val relational : unit -> bool
(** Is the zone component enabled? *)

val with_domain : t -> (unit -> 'a) -> 'a
(** Run with a forced domain choice (bench compares both in-process). *)

val to_string : t -> string

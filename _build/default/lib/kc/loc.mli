(** Source locations in KC compilation units. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

(* Pretty-printing of the typed IR back to KC source.

   Two modes:
   - [print_program ~erase:false] keeps annotations (round-trippable
     modulo elaboration artifacts);
   - [print_program ~erase:true] strips every annotation and
     analysis-inserted construct, demonstrating the paper's erasure
     semantics: the annotated program is still a plain KC program. *)

let buf_add = Buffer.add_string

type ctx = { buf : Buffer.t; erase : bool; mutable indent : int }

let nl ctx =
  Buffer.add_char ctx.buf '\n';
  for _ = 1 to ctx.indent do
    buf_add ctx.buf "  "
  done

let rec exp_str ctx (e : Ir.exp) : string =
  match e.Ir.e with
  | Ir.Econst n -> Int64.to_string n
  | Ir.Estr s -> Printf.sprintf "%S" s
  | Ir.Elval lv -> lval_str ctx lv
  | Ir.Eunop (op, e1) -> Printf.sprintf "%s(%s)" (Ast.unop_to_string op) (exp_str ctx e1)
  | Ir.Ebinop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (exp_str ctx a) (Ast.binop_to_string op) (exp_str ctx b)
  | Ir.Econd (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (exp_str ctx c) (exp_str ctx a) (exp_str ctx b)
  | Ir.Ecast (ty, e1) -> Printf.sprintf "(%s)(%s)" (type_str ctx ty) (exp_str ctx e1)
  | Ir.Eaddrof lv -> Printf.sprintf "&%s" (lval_str ctx lv)
  | Ir.Estartof lv -> lval_str ctx lv
  | Ir.Efun name -> name
  | Ir.Eself_field (_, f) -> f

and lval_str ctx ((host, offs) : Ir.lval) : string =
  let base =
    match host with
    | Ir.Lvar v -> v.Ir.vname
    | Ir.Lmem e -> Printf.sprintf "(*%s)" (exp_str ctx e)
  in
  List.fold_left
    (fun acc off ->
      match off with
      | Ir.Ofield f -> Printf.sprintf "%s.%s" acc f.Ir.fname
      | Ir.Oindex e -> Printf.sprintf "%s[%s]" acc (exp_str ctx e))
    base offs

and annots_str ctx (a : Ir.annots) : string =
  if ctx.erase then ""
  else
    String.concat ""
      [
        (match a.Ir.a_count with
        | Some e -> Printf.sprintf " __count(%s)" (exp_str ctx e)
        | None -> "");
        (if a.Ir.a_nullterm then " __nullterm" else "");
        (if a.Ir.a_opt then " __opt" else "");
        (if a.Ir.a_trusted then " __trusted" else "");
        (if a.Ir.a_user then " __user" else "");
      ]

and type_str ctx (ty : Ir.ty) : string = decl_str ctx ty ""

(* C declarator syntax: print [ty name]. *)
and decl_str ctx (ty : Ir.ty) (name : string) : string =
  match ty with
  | Ir.Tvoid -> if name = "" then "void" else "void " ^ name
  | Ir.Tint (k, s) ->
      let base =
        match (k, s) with
        | Ast.Ichar, Ast.Unsigned -> "char"
        | Ast.Ichar, Ast.Signed -> "signed char"
        | Ast.Ishort, Ast.Signed -> "short"
        | Ast.Ishort, Ast.Unsigned -> "unsigned short"
        | Ast.Iint, Ast.Signed -> "int"
        | Ast.Iint, Ast.Unsigned -> "unsigned int"
        | Ast.Ilong, Ast.Signed -> "long"
        | Ast.Ilong, Ast.Unsigned -> "unsigned long"
      in
      if name = "" then base else base ^ " " ^ name
  | Ir.Tptr (base, a) -> (
      let inner = Printf.sprintf "*%s%s%s" (annots_str ctx a) (if name = "" then "" else " ") name in
      match base with
      | Ir.Tfun _ | Ir.Tarray _ -> decl_str ctx base (Printf.sprintf "(%s)" inner)
      | _ -> decl_str ctx base inner)
  | Ir.Tarray (base, n) -> decl_str ctx base (Printf.sprintf "%s[%d]" name n)
  | Ir.Tfun (ret, args) ->
      let args_s =
        if args = [] then "void" else String.concat ", " (List.map (type_str ctx) args)
      in
      decl_str ctx ret (Printf.sprintf "%s(%s)" name args_s)
  | Ir.Tcomp tag -> if name = "" then "struct " ^ tag else Printf.sprintf "struct %s %s" tag name

let check_str ctx (ck : Ir.check) (reason : string) : string =
  match ck with
  | Ir.Ck_nonnull e -> Printf.sprintf "__check_nonnull(%s); /* %s */" (exp_str ctx e) reason
  | Ir.Ck_le (a, b) ->
      Printf.sprintf "__check_le(%s, %s); /* %s */" (exp_str ctx a) (exp_str ctx b) reason
  | Ir.Ck_lt (a, b) ->
      Printf.sprintf "__check_lt(%s, %s); /* %s */" (exp_str ctx a) (exp_str ctx b) reason
  | Ir.Ck_nt_next (e, w) ->
      Printf.sprintf "__check_nt_next(%s, %d); /* %s */" (exp_str ctx e) w reason
  | Ir.Ck_not_atomic -> Printf.sprintf "__check_not_atomic(); /* %s */" reason

let instr_str ctx (i : Ir.instr) : string option =
  match i with
  | Ir.Iset (lv, e) -> Some (Printf.sprintf "%s = %s;" (lval_str ctx lv) (exp_str ctx e))
  | Ir.Icall (ret, target, args) ->
      let f = match target with Ir.Direct n -> n | Ir.Indirect e -> exp_str ctx e in
      let args_s = String.concat ", " (List.map (exp_str ctx) args) in
      let call = Printf.sprintf "%s(%s);" f args_s in
      Some
        (match ret with
        | None -> call
        | Some lv -> Printf.sprintf "%s = %s" (lval_str ctx lv) call)
  | Ir.Icheck (ck, reason) -> if ctx.erase then None else Some (check_str ctx ck reason)
  | Ir.Irc_inc e ->
      if ctx.erase then None else Some (Printf.sprintf "__rc_inc(%s);" (exp_str ctx e))
  | Ir.Irc_dec e ->
      if ctx.erase then None else Some (Printf.sprintf "__rc_dec(%s);" (exp_str ctx e))
  | Ir.Irc_update (lv, e) ->
      if ctx.erase then None
      else Some (Printf.sprintf "__rc_update(&%s, %s);" (lval_str ctx lv) (exp_str ctx e))

let rec print_block ctx (b : Ir.block) =
  buf_add ctx.buf "{";
  ctx.indent <- ctx.indent + 1;
  List.iter (print_stmt ctx) b;
  ctx.indent <- ctx.indent - 1;
  nl ctx;
  buf_add ctx.buf "}"

and print_stmt ctx (s : Ir.stmt) =
  match s.Ir.sk with
  | Ir.Sinstr i -> (
      match instr_str ctx i with
      | None -> ()
      | Some str ->
          nl ctx;
          buf_add ctx.buf str)
  | Ir.Sif (c, b1, b2) ->
      nl ctx;
      buf_add ctx.buf (Printf.sprintf "if (%s) " (exp_str ctx c));
      print_block ctx b1;
      if b2 <> [] then begin
        buf_add ctx.buf " else ";
        print_block ctx b2
      end
  | Ir.Swhile (c, body, step) ->
      nl ctx;
      buf_add ctx.buf (Printf.sprintf "while (%s) " (exp_str ctx c));
      print_block ctx (body @ step)
  | Ir.Sdowhile (body, c) ->
      nl ctx;
      buf_add ctx.buf "do ";
      print_block ctx body;
      buf_add ctx.buf (Printf.sprintf " while (%s);" (exp_str ctx c))
  | Ir.Sswitch (e, cases) ->
      nl ctx;
      buf_add ctx.buf (Printf.sprintf "switch (%s) {" (exp_str ctx e));
      ctx.indent <- ctx.indent + 1;
      List.iter
        (fun (c : Ir.case) ->
          List.iter
            (fun v ->
              nl ctx;
              buf_add ctx.buf (Printf.sprintf "case %Ld:" v))
            c.Ir.cvals;
          if c.Ir.cdefault then begin
            nl ctx;
            buf_add ctx.buf "default:"
          end;
          ctx.indent <- ctx.indent + 1;
          List.iter (print_stmt ctx) c.Ir.cbody;
          ctx.indent <- ctx.indent - 1)
        cases;
      ctx.indent <- ctx.indent - 1;
      nl ctx;
      buf_add ctx.buf "}"
  | Ir.Sbreak ->
      nl ctx;
      buf_add ctx.buf "break;"
  | Ir.Scontinue ->
      nl ctx;
      buf_add ctx.buf "continue;"
  | Ir.Sreturn None ->
      nl ctx;
      buf_add ctx.buf "return;"
  | Ir.Sreturn (Some e) ->
      nl ctx;
      buf_add ctx.buf (Printf.sprintf "return %s;" (exp_str ctx e))
  | Ir.Sblock b ->
      nl ctx;
      print_block ctx b
  | Ir.Sdelayed b ->
      nl ctx;
      if not ctx.erase then buf_add ctx.buf "__delayed_free ";
      print_block ctx b
  | Ir.Strusted b ->
      nl ctx;
      if not ctx.erase then buf_add ctx.buf "__trusted ";
      print_block ctx b

let print_fundec ctx (fd : Ir.fundec) =
  let params =
    if fd.Ir.sformals = [] then "void"
    else
      String.concat ", "
        (List.map (fun (v : Ir.varinfo) -> decl_str ctx v.Ir.vty v.Ir.vname) fd.Ir.sformals)
  in
  nl ctx;
  buf_add ctx.buf (Printf.sprintf "%s(%s) " (decl_str ctx fd.Ir.fret fd.Ir.fname) params);
  if not ctx.erase then
    List.iter
      (fun a ->
        match a with
        | Ast.Fblocking -> buf_add ctx.buf "__blocking "
        | Ast.Fblocking_if_gfp_wait -> buf_add ctx.buf "__blocking_if_gfp_wait "
        | Ast.Ftrusted -> buf_add ctx.buf "__trusted "
        | Ast.Facquires l -> buf_add ctx.buf (Printf.sprintf "__acquires(%s) " l)
        | Ast.Freleases l -> buf_add ctx.buf (Printf.sprintf "__releases(%s) " l)
        | Ast.Freturns_err codes ->
            buf_add ctx.buf
              (Printf.sprintf "__returns_err(%s) "
                 (String.concat ", " (List.map Int64.to_string codes)))
        | Ast.Fframe_hint n -> buf_add ctx.buf (Printf.sprintf "__frame_hint(%d) " n))
      fd.Ir.fannots;
  buf_add ctx.buf "{";
  ctx.indent <- ctx.indent + 1;
  (* Locals (including compiler temporaries, which the statements
     reference) are declared up front. *)
  List.iter
    (fun (v : Ir.varinfo) ->
      nl ctx;
      buf_add ctx.buf (decl_str ctx v.Ir.vty v.Ir.vname ^ ";"))
    fd.Ir.slocals;
  List.iter (print_stmt ctx) fd.Ir.fbody;
  ctx.indent <- ctx.indent - 1;
  nl ctx;
  buf_add ctx.buf "}";
  nl ctx

let rec print_ginit ctx (gi : Ir.ginit) : string =
  match gi with
  | Ir.Gi_exp e -> exp_str ctx e
  | Ir.Gi_list items -> "{ " ^ String.concat ", " (List.map (print_ginit ctx) items) ^ " }"

(* Forward declaration of a function, so globals whose initializers
   reference functions (dispatch tables) re-compile. Parameter types
   are printed erased: their dependent annotations reference formal
   names that a bare declaration does not bind. *)
let print_fundecl ctx (fd : Ir.fundec) =
  let ectx = { ctx with erase = true } in
  let params =
    if fd.Ir.sformals = [] then "void"
    else
      String.concat ", "
        (List.map (fun (v : Ir.varinfo) -> decl_str ectx v.Ir.vty v.Ir.vname) fd.Ir.sformals)
  in
  buf_add ctx.buf (Printf.sprintf "%s(%s)" (decl_str ectx fd.Ir.fret fd.Ir.fname) params);
  if not ctx.erase then
    List.iter
      (fun a ->
        match a with
        | Ast.Fblocking -> buf_add ctx.buf " __blocking"
        | Ast.Fblocking_if_gfp_wait -> buf_add ctx.buf " __blocking_if_gfp_wait"
        | Ast.Ftrusted -> buf_add ctx.buf " __trusted"
        | Ast.Facquires l -> buf_add ctx.buf (Printf.sprintf " __acquires(%s)" l)
        | Ast.Freleases l -> buf_add ctx.buf (Printf.sprintf " __releases(%s)" l)
        | Ast.Freturns_err codes ->
            buf_add ctx.buf
              (Printf.sprintf " __returns_err(%s)"
                 (String.concat ", " (List.map Int64.to_string codes)))
        | Ast.Fframe_hint n -> buf_add ctx.buf (Printf.sprintf " __frame_hint(%d)" n))
      fd.Ir.fannots;
  buf_add ctx.buf ";";
  nl ctx

(* Print a whole program. With [erase] the output contains no
   annotation or instrumentation artifacts. *)
(* Hashtbl iteration order depends on insertion history and the OCaml
   version; emit in name order so the same program always prints the
   same bytes. Safe for re-parsing: the typechecker pre-registers every
   tag before elaborating any field, so struct references never need a
   particular definition order. *)
let sorted_bindings (tbl : (string, 'a) Hashtbl.t) : (string * 'a) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_program ?(erase = false) (prog : Ir.program) : string =
  let ctx = { buf = Buffer.create 4096; erase; indent = 0 } in
  List.iter
    (fun (_, (c : Ir.compinfo)) ->
      buf_add ctx.buf (Printf.sprintf "%s %s {" (if c.Ir.cstruct then "struct" else "union") c.Ir.cname);
      ctx.indent <- ctx.indent + 1;
      List.iter
        (fun (f : Ir.fieldinfo) ->
          nl ctx;
          buf_add ctx.buf (decl_str ctx f.Ir.fty f.Ir.fname ^ ";"))
        c.Ir.cfields;
      ctx.indent <- ctx.indent - 1;
      nl ctx;
      buf_add ctx.buf "};";
      nl ctx)
    (sorted_bindings prog.Ir.comps);
  (* Declarations of every function (externs included) before any
     global initializer can reference them. *)
  List.iter (fun (_, fd) -> print_fundecl ctx fd) (sorted_bindings prog.Ir.fun_by_name);
  List.iter
    (fun ((v : Ir.varinfo), init) ->
      match init with
      | None -> buf_add ctx.buf (decl_str ctx v.Ir.vty v.Ir.vname ^ ";")
      | Some gi ->
          buf_add ctx.buf
            (Printf.sprintf "%s = %s;" (decl_str ctx v.Ir.vty v.Ir.vname) (print_ginit ctx gi));
          nl ctx)
    prog.Ir.globals;
  List.iter (print_fundec ctx) prog.Ir.funcs;
  Buffer.contents ctx.buf

(* Print one expression / statement, mostly for tests and diagnostics. *)
let exp_to_string e =
  exp_str { buf = Buffer.create 16; erase = false; indent = 0 } e

let lval_to_string lv =
  lval_str { buf = Buffer.create 16; erase = false; indent = 0 } lv

(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, then measures this implementation itself with
   bechamel (one Test.make per table/experiment).

   Run with:  dune exec bench/main.exe

   Part 1 prints the paper-shaped tables (deterministic: the VM's
   cycle counts do not depend on the host).
   Part 2 reports host-side wall-clock costs of the pipeline stages
   and of each experiment driver. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    f ();
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* --json: machine-readable results. Every headline scenario records
   (name, wall-clock seconds, speedup); the collected list is printed
   as JSON and written to BENCH_pr9.json at the repo root when the
   flag is given. Format documented in DESIGN.md §13. The vm-super
   scenario additionally contributes the VM optimizer's compile-time
   site counters (fusion table + peephole hits) as [vm_opt_stats]. *)
let json_results : (string * float * float) list ref = ref []
let json_opt_stats : (string * int) list ref = ref []

let record ~scenario ~wall ~speedup =
  json_results := (scenario, wall, speedup) :: !json_results

let render_json () =
  let rows =
    List.rev_map
      (fun (s, w, x) ->
        Printf.sprintf "    {\"scenario\": %S, \"wall_clock_s\": %.6f, \"speedup\": %.3f}" s w x)
      !json_results
  in
  let opt_rows =
    match !json_opt_stats with
    | [] -> ""
    | stats ->
        let cells =
          List.map (fun (site, n) -> Printf.sprintf "    {\"site\": %S, \"count\": %d}" site n) stats
        in
        Printf.sprintf ",\n  \"vm_opt_stats\": [\n%s\n  ]" (String.concat ",\n" cells)
  in
  Printf.sprintf "{\n  \"bench\": \"ivy\",\n  \"format\": 1,\n  \"results\": [\n%s\n  ]%s\n}\n"
    (String.concat ",\n" rows) opt_rows

let emit_json () =
  let s = render_json () in
  print_string s;
  let oc = open_out "BENCH_pr9.json" in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the evaluation                                  *)
(* ------------------------------------------------------------------ *)

let regenerate () =
  section "T1: Table 1";
  print_string (Ivy.Report_fmt.render_table1 (Ivy.Experiment.table1 ()));
  section "E1: Deputy conversion census";
  print_string (Ivy.Report_fmt.render_e1 (Ivy.Experiment.e1_census ()));
  section "E2: CCount overheads";
  print_string (Ivy.Report_fmt.render_e2 (Ivy.Experiment.e2_overheads ()));
  section "E3: CCount free census";
  print_string (Ivy.Report_fmt.render_e3 (Ivy.Experiment.e3_free_census ()));
  section "E4: BlockStop";
  print_string (Ivy.Report_fmt.render_e4 (Ivy.Experiment.e4_blockstop ()));
  section "E5: driver subset";
  print_string (Ivy.Report_fmt.render_e5 (Ivy.Experiment.e5_driver_subset ()));
  section "A1: ablations";
  print_string
    (Ivy.Report_fmt.render_a1
       (Ivy.Experiment.a1_discharge_ablation ())
       (Ivy.Experiment.a2_leak_ablation ()));
  section "X1: lock safety (extension)";
  print_string (Ivy.Report_fmt.render_x1 (Ivy.Experiment.x1_locksafe ()));
  section "X2: stack budget (extension)";
  print_string (Ivy.Report_fmt.render_x2 (Ivy.Experiment.x2_stackcheck ()));
  section "X3: error codes + annotation DB (extension)";
  print_string (Ivy.Report_fmt.render_x3 (Ivy.Experiment.x3_errcheck_and_db ()));
  section "X4: user/kernel pointers (extension)";
  print_string (Ivy.Report_fmt.render_x4 (Ivy.Experiment.x4_userck ()))

(* ------------------------------------------------------------------ *)
(* Part 1b: unified engine vs six independent analysis runs           *)
(* ------------------------------------------------------------------ *)

(* The point of lib/engine: running every analysis over one shared
   context builds the call graph / points-to once per mode, where the
   six standalone subcommands each rebuilt them from scratch. Both
   sides get best-of-N wall-clock to damp host noise. *)
let bench_unified () =
  section "ENGINE: one-pass check vs six independent runs";
  let prog = Kernel.Workloads.load () in
  let iters = 5 in
  let independent =
    best_of iters (fun () ->
        (* What `ivy blockstop && ivy locksafe && ... && ivy annotdb`
           paid before the engine: each analysis rebuilds its own
           whole-program artifacts. *)
        ignore (Blockstop.Breport.analyze prog);
        ignore (Locksafe.analyze prog);
        ignore (Stackcheck.analyze prog);
        ignore (Errcheck.analyze prog);
        ignore (Userck.analyze prog);
        ignore (Annotdb.populate prog))
  in
  let shared_ctxt = ref None in
  let shared =
    best_of iters (fun () ->
        (* `ivy check` + annotdb population over one context. *)
        let ctxt = Engine.Context.create prog in
        ignore (Ivy.Checks.run_all ctxt);
        ignore (Annotdb.populate_ctxt ctxt);
        shared_ctxt := Some ctxt)
  in
  Printf.printf "six independent runs:   %8.2f ms\n" (independent *. 1e3);
  Printf.printf "one shared context:     %8.2f ms\n" (shared *. 1e3);
  Printf.printf "speedup:                %8.2fx (shared wins: %b)\n"
    (independent /. shared) (shared < independent);
  record ~scenario:"engine-unified" ~wall:shared ~speedup:(independent /. shared);
  match !shared_ctxt with
  | Some ctxt -> Format.printf "%a" Engine.Context.pp_stats ctxt
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Part 1c: absint discharge on the deputized VM                      *)
(* ------------------------------------------------------------------ *)

(* Deputized corpus with the Facts optimizer alone vs Facts + the
   absint interval stage: same workload schedule on both machines, so
   the dynamic check counters are directly comparable (and must drop
   on the absint side — every discharged check is one the VM no longer
   executes). *)
let absint_workload (mode : Ivy.Pipeline.mode) : Ivy.Pipeline.run =
  let r = Ivy.Pipeline.booted mode in
  List.iter
    (fun (row : Kernel.Workloads.row) ->
      ignore (Ivy.Pipeline.run_entry r row.Kernel.Workloads.entry 3))
    Kernel.Workloads.table1;
  r

let checks_executed (r : Ivy.Pipeline.run) : int =
  r.Ivy.Pipeline.interp.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.checks_executed

let bench_absint () =
  section "ABSINT: deputized VM, Facts only vs Facts+absint";
  let facts = absint_workload Ivy.Pipeline.Deputy in
  let both = absint_workload Ivy.Pipeline.Deputy_absint in
  let cf = checks_executed facts and cb = checks_executed both in
  (match both.Ivy.Pipeline.absint_stats with
  | Some st -> print_string (Absint.Discharge.render_stats st)
  | None -> ());
  Printf.printf "dynamic checks executed (boot + table1 x3):\n";
  Printf.printf "  facts only:     %10d\n" cf;
  Printf.printf "  facts + absint: %10d\n" cb;
  Printf.printf "  removed:        %10d (%.1f%%, fewer: %b)\n" (cf - cb)
    (if cf = 0 then 0.0 else 100.0 *. float_of_int (cf - cb) /. float_of_int cf)
    (cb < cf)

(* ------------------------------------------------------------------ *)
(* Part 1d: serial vs parallel fuzz campaign                           *)
(* ------------------------------------------------------------------ *)

(* The same campaign evaluated on one domain and on a Par pool: wall
   clock may differ (that is the point), the rendered summary must not.
   Runnable standalone as `bench/main.exe --fuzz-par [count]`. *)
let bench_parfuzz ?(count = 60) () =
  section "PARFUZZ: fuzz campaign, 1 domain vs a Par pool";
  let seed = 1 in
  let jobs = Par.default_jobs () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial = timed (fun () -> Gen.Fuzz.run ~jobs:1 ~seed ~count ()) in
  let par, t_par = timed (fun () -> Gen.Fuzz.run ~jobs ~seed ~count ()) in
  let render s = Gen.Fuzz.render_summary ~elapsed:false s in
  let identical = String.equal (render serial) (render par) in
  Printf.printf "campaign: seed %d, %d cases (format v%d)\n" seed count Gen.Fuzz.format_version;
  Printf.printf "jobs=1:            %8.2f s\n" t_serial;
  Printf.printf "jobs=%-2d:           %8.2f s\n" jobs t_par;
  Printf.printf "speedup:           %8.2fx\n" (t_serial /. t_par);
  Printf.printf "summaries identical: %b\n" identical;
  record ~scenario:"parfuzz" ~wall:t_par ~speedup:(t_serial /. t_par);
  if not identical then begin
    Printf.printf "FAIL: parallel campaign diverged from the serial one\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 1d': serve daemon latency tiers                               *)
(* ------------------------------------------------------------------ *)

(* The point of `ivy serve`: a cold check pays the full pipeline, a
   byte-identical resubmit is microseconds (no parse, all artifact
   hits), a comment-only edit pays one re-parse but zero rebuilds
   (fingerprints are over the IR), and a one-function body edit
   rebuilds only the artifacts downstream of that function. Runs the
   daemon's request handler in-process — the latency of interest is
   the engine's, not the socket's. Runnable standalone as
   `bench/main.exe --serve`. *)
let bench_serve () =
  section "SERVE: check latency, cold vs warm vs incremental";
  let module J = Ivy.Jsonx in
  let sources = Kernel.Corpus.sources () in
  let req srcs =
    J.render
      (J.Obj
         [
           ("id", J.Num 1.0);
           ("method", J.Str "check");
           ( "params",
             J.Obj
               [
                 ("program", J.Str "bench");
                 ( "files",
                   J.List
                     (List.map
                        (fun (p, s) -> J.Obj [ ("path", J.Str p); ("source", J.Str s) ])
                        srcs) );
               ] );
         ])
  in
  let t = Ivy.Serve.create ~capacity:4 ~jobs:1 () in
  let timed line =
    let t0 = Unix.gettimeofday () in
    let resp, _ = Ivy.Serve.handle_line t line in
    (resp, Unix.gettimeofday () -. t0)
  in
  let warm_of resp =
    match Option.bind (J.member "result" (J.parse resp)) (J.member "warm") with
    | Some (J.Bool b) -> b
    | _ -> false
  in
  let r_cold, t_cold = timed (req sources) in
  let r_warm, t_warm = timed (req sources) in
  (* Comment-only change: the daemon must re-parse, but every content
     hash is unchanged, so nothing rebuilds. *)
  let touched = List.map (fun (p, s) -> (p, s ^ "\n// bench touch\n")) sources in
  let r_touch, t_touch = timed (req touched) in
  (* One arithmetic body edit in one file: partial rebuild. *)
  let edited =
    let done_ = ref false in
    List.map
      (fun (p, s) ->
        match String.index_opt s '{' with
        | Some _ when not !done_ ->
            let marker = "return 0;" in
            let rec find i =
              if i + String.length marker > String.length s then None
              else if String.sub s i (String.length marker) = marker then Some i
              else find (i + 1)
            in
            (match find 0 with
            | Some i ->
                done_ := true;
                ( p,
                  String.sub s 0 i ^ "return 0 + 0;"
                  ^ String.sub s (i + String.length marker)
                      (String.length s - i - String.length marker) )
            | None -> (p, s))
        | _ -> (p, s))
      touched
  in
  let r_edit, t_edit = timed (req edited) in
  Printf.printf "cold (parse + full build):      %8.2f ms (warm:%b)\n" (t_cold *. 1e3)
    (warm_of r_cold);
  Printf.printf "identical resubmit:             %8.2f ms (warm:%b)\n" (t_warm *. 1e3)
    (warm_of r_warm);
  Printf.printf "comment-only edit (re-parse):   %8.2f ms (warm:%b)\n" (t_touch *. 1e3)
    (warm_of r_touch);
  Printf.printf "one-function body edit:         %8.2f ms (warm:%b)\n" (t_edit *. 1e3)
    (warm_of r_edit);
  Printf.printf "warm speedup:                   %8.2fx\n" (t_cold /. t_warm);
  record ~scenario:"serve-warm" ~wall:t_warm ~speedup:(t_cold /. t_warm);
  record ~scenario:"serve-edit" ~wall:t_edit ~speedup:(t_cold /. t_edit);
  (* Relational interface summaries ride the ptrflow fingerprint: the
     arithmetic body edit above must leave them warm (0 builds) even
     though the value summaries downstream of the edited function
     rebuild. *)
  let builds_of resp name =
    match
      Option.bind (J.member "result" (J.parse resp)) (fun r ->
          Option.bind (J.member "stats" r) (fun s ->
              Option.bind (J.member "artifacts" s) (fun a ->
                  Option.bind (J.member name a) (J.member "builds"))))
    with
    | Some (J.Num n) -> int_of_float n
    | _ -> 0
  in
  let rs_cold = builds_of r_cold "relsum-ifaces" in
  let rs_edit = builds_of r_edit "relsum-ifaces" in
  Printf.printf "relsum-ifaces builds:           cold %d, arithmetic edit %d\n" rs_cold rs_edit;
  record ~scenario:"relsum-cold" ~wall:t_cold ~speedup:1.0;
  record ~scenario:"relsum-warm-edit" ~wall:t_edit ~speedup:(t_cold /. t_edit);
  if (not (warm_of r_warm)) || not (warm_of r_touch) then begin
    Printf.printf "FAIL: a no-op resubmit rebuilt artifacts (warm resubmit %b, comment edit %b)\n"
      (warm_of r_warm) (warm_of r_touch);
    exit 1
  end;
  if warm_of r_edit then begin
    Printf.printf "FAIL: a body edit reported warm (stale artifacts served)\n";
    exit 1
  end;
  if rs_cold < 1 then begin
    Printf.printf "FAIL: the cold check never built the relational summaries\n";
    exit 1
  end;
  if rs_edit > 0 then begin
    Printf.printf
      "FAIL: an arithmetic-only edit rebuilt the relational summaries (ptrflow drift)\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 1d'': refsafe-gated CCount overhead                           *)
(* ------------------------------------------------------------------ *)

(* CCount instrumentation vs CCount with the refsafe discharge gate,
   on a workload whose hot loop is exactly the shapes the gate proves
   unobservable: stack-hosted pointer-field writes (rule R1) and a
   global publish/retire window (rule R3). The VM's cycle counts are
   deterministic, so the overhead split is a property of the analysis,
   not of the host. The corpus itself takes an int-to-pointer cast
   (MMIO), which soundly disables the class/window rules there — hence
   a dedicated workload, mirroring how E2 isolates CCount's own cost. *)
let refsafe_bench_src =
  "typedef unsigned long size_t;\n\
   void * __opt kzalloc(size_t n, int flags) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   long * __count(4) __opt gslot;\n\
   struct pair { long * __opt a; long * __opt b; };\n\
   long bench(long n) {\n\
   long acc = 0;\n\
   long i = 0;\n\
   while (i < n) {\n\
   long * __count(4) __opt hp = kzalloc(32, 0);\n\
   struct pair pr;\n\
   pr.a = hp;\n\
   pr.b = 0;\n\
   if (hp != 0) {\n\
   hp[0] = i;\n\
   gslot = hp;\n\
   acc = acc + hp[0];\n\
   gslot = 0;\n\
   kfree(hp);\n\
   }\n\
   i = i + 1;\n\
   }\n\
   return acc;\n\
   }\n\
   int main(void) { return (int)bench(0); }\n"

let refsafe_parse () = Kc.Typecheck.check_sources [ ("refsafe_bench.kc", refsafe_bench_src) ]

(* Boot one interpreter per arm and run the same schedule on each;
   returns (cycles, census, discharge stats option). *)
let refsafe_arm ~iters arm : int * Vm.Machine.free_census * Refsafe.Discharge.stats option =
  let prog = refsafe_parse () in
  let t, report =
    match arm with
    | `Base ->
        (* Same machine configuration, no instrumentation: isolates the
           counter-maintenance cycles from the workload's own. *)
        let m = Vm.Machine.create ~config:(Ccount.Creport.config ()) () in
        let t = Vm.Interp.create prog m in
        Vm.Builtins.install t;
        (t, None)
    | `Ccount ->
        let t, r = Ccount.Creport.ccount_boot prog in
        (t, Some r)
    | `Gated ->
        let t, r = Ccount.Creport.ccount_boot ~refsafe:true prog in
        (t, Some r)
  in
  ignore (Vm.Interp.run t "bench" [ Int64.of_int iters ]);
  ( t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles,
    Vm.Machine.free_census t.Vm.Interp.m,
    Option.bind report (fun r -> r.Ccount.Creport.refsafe) )

(* Percentage of CCount's own cycle overhead the gate removes. *)
let refsafe_overhead_removed () =
  let iters = 200 in
  let c_base, _, _ = refsafe_arm ~iters `Base in
  let c_plain, census_plain, _ = refsafe_arm ~iters `Ccount in
  let c_gated, census_gated, st = refsafe_arm ~iters `Gated in
  (c_base, c_plain, c_gated, census_plain, census_gated, st)

let bench_refsafe () =
  section "REFSAFE: CCount overhead with and without the discharge gate";
  let c_base, c_plain, c_gated, census_plain, census_gated, st = refsafe_overhead_removed () in
  let pct c = 100.0 *. float_of_int (c - c_base) /. float_of_int c_base in
  let removed =
    if c_plain = c_base then 0.0
    else 100.0 *. float_of_int (c_plain - c_gated) /. float_of_int (c_plain - c_base)
  in
  (match st with Some st -> print_string (Refsafe.Discharge.render_stats st) | None -> ());
  Printf.printf "cycles (200-iteration alloc/publish/free loop):\n";
  Printf.printf "  uninstrumented:  %10d\n" c_base;
  Printf.printf "  ccount:          %10d  (+%.1f%%)\n" c_plain (pct c_plain);
  Printf.printf "  ccount+refsafe:  %10d  (+%.1f%%)\n" c_gated (pct c_gated);
  Printf.printf "  gate removed:    %10.1f%% of the ccount overhead\n" removed;
  let census_ok =
    census_plain.Vm.Machine.total_frees = census_gated.Vm.Machine.total_frees
    && census_plain.Vm.Machine.bad = census_gated.Vm.Machine.bad
  in
  Printf.printf "free census identical: %b (%d frees, %d bad)\n" census_ok
    census_plain.Vm.Machine.total_frees census_plain.Vm.Machine.bad;
  record ~scenario:"refsafe-gate" ~wall:0.0
    ~speedup:(float_of_int c_plain /. float_of_int c_gated);
  if not census_ok then begin
    Printf.printf "FAIL: the gate changed the observable free census\n";
    exit 1
  end;
  removed

(* --refsafe-gate: CI regression fence, mirroring --absint-gate. The
   floor is the share of CCount's cycle overhead the discharge gate is
   known to remove on the dedicated workload; both sides of the ratio
   are deterministic VM cycle counts. *)
let refsafe_floor_file = "bench/refsafe_floor.txt"

(* --absint-gate: CI regression fence.  The checked-in floor is the
   discharge rate the interval stage is known to reach on the corpus;
   a change that drops below it silently weakened the analysis. *)
let absint_floor_file = "bench/absint_floor.txt"

let read_floor path =
  let ic = open_in path in
  let rec go () =
    match input_line ic with
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go () else float_of_string line
    | exception End_of_file ->
        close_in ic;
        failwith (path ^ ": no floor value found")
  in
  let v = go () in
  close_in ic;
  v

let absint_gate () =
  let floor = read_floor absint_floor_file in
  let prog = Kernel.Workloads.load ~fresh:true () in
  ignore (Deputy.Dreport.deputize ~optimize:true prog);
  let st = Absint.Discharge.run prog in
  let rate = Absint.Discharge.rate st in
  Printf.printf
    "absint gate: discharge rate %.1f%% (%d of %d residual checks: intervals %d + relational \
     %d), floor %.1f%%\n"
    rate (Absint.Discharge.checks_proved st) (Absint.Discharge.checks_seen st)
    (Absint.Discharge.checks_proved_iv st)
    (Absint.Discharge.checks_proved_rel st) floor;
  record ~scenario:"absint-gate" ~wall:0.0 ~speedup:(rate /. 100.);
  if rate < floor then begin
    Printf.printf "FAIL: discharge rate regressed below the checked-in floor\n";
    exit 1
  end
  else Printf.printf "OK\n"

let refsafe_gate () =
  let floor = read_floor refsafe_floor_file in
  let removed = bench_refsafe () in
  Printf.printf "refsafe gate: %.1f%% of the ccount overhead removed, floor %.1f%%\n" removed
    floor;
  if removed < floor then begin
    Printf.printf "FAIL: the refsafe discharge regressed below the checked-in floor\n";
    exit 1
  end
  else Printf.printf "OK\n"

(* ------------------------------------------------------------------ *)
(* Part 1e: tree-walk vs pre-compiled VM engine                       *)
(* ------------------------------------------------------------------ *)

(* The two engines are observationally equivalent (the differential
   suite proves it instruction-by-instruction); here we measure the
   wall-clock gap on the two execution-heavy shapes — the E2-style
   deputized workload schedule and the oracle-style boot-and-run of
   fuzz cases — and assert the cycle counters agree as a cheap live
   equivalence check. Programs are parsed and instrumented outside the
   timed region: this benchmark is about execution, and the compiled
   engine's per-program code cache makes its one-time compile cost
   vanish across the repeated boots (each warmup run pays it). *)

let vm_cycles (t : Vm.Interp.t) = t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles

(* One E2-shaped run: boot the deputized corpus, run the boot script
   and the Table 1 schedule. Returns the machine's cycle count. *)
let vm_e2_once ~engine prog : int =
  let t = Vm.Builtins.boot ~engine prog in
  ignore (Vm.Interp.run t Kernel.Corpus.boot_entry []);
  List.iter
    (fun (row : Kernel.Workloads.row) ->
      ignore (Vm.Interp.run t row.Kernel.Workloads.entry [ 3L ]))
    Kernel.Workloads.table1;
  vm_cycles t

(* One oracle-shaped run: boot every pre-instrumented fuzz-case
   variant and run main, traps included. Returns summed cycles. *)
let vm_oracle_once ~engine (progs : Kc.Ir.program list) : int =
  List.fold_left
    (fun acc p ->
      let t = Vm.Builtins.boot ~engine p in
      (try ignore (Vm.Interp.run t "main" []) with Vm.Trap.Trap _ -> ());
      acc + vm_cycles t)
    0 progs

let vm_oracle_progs ~cases () : Kc.Ir.program list =
  List.concat_map
    (fun i ->
      let src = Gen.Prog.render (Gen.Fuzz.case_program ~seed:5 i) in
      let parse () = Kc.Typecheck.check_sources [ ("bench.kc", src) ] in
      let dep = parse () in
      ignore (Deputy.Dreport.deputize dep);
      [ parse (); dep ])
    (List.init cases (fun i -> i))

let bench_vm_compile ?(best = 3) ?(cases = 8) () =
  section "VM: tree-walk vs pre-compiled engine";
  let prog = Kernel.Workloads.load ~fresh:true () in
  ignore (Deputy.Dreport.deputize ~optimize:true prog);
  (* Warmup: first compiled boot pays the compile, off the clock; and
     the cycle counters of the two engines must agree exactly. *)
  let c_tree = vm_e2_once ~engine:Vm.Interp.Tree prog in
  let c_comp = vm_e2_once ~engine:Vm.Interp.Compiled prog in
  if c_tree <> c_comp then begin
    Printf.printf "FAIL: engine cycle divergence on E2 (tree %d, compiled %d)\n" c_tree c_comp;
    exit 1
  end;
  let t_tree = best_of best (fun () -> ignore (vm_e2_once ~engine:Vm.Interp.Tree prog)) in
  let t_comp = best_of best (fun () -> ignore (vm_e2_once ~engine:Vm.Interp.Compiled prog)) in
  let e2_speedup = t_tree /. t_comp in
  Printf.printf "E2 schedule (boot + table1 x3), %d cycles:\n" c_tree;
  Printf.printf "  tree-walk: %8.2f ms\n" (t_tree *. 1e3);
  Printf.printf "  compiled:  %8.2f ms\n" (t_comp *. 1e3);
  Printf.printf "  speedup:   %8.2fx\n" e2_speedup;
  record ~scenario:"vm-e2" ~wall:t_comp ~speedup:e2_speedup;
  let progs = vm_oracle_progs ~cases () in
  (* Equivalence check on the true oracle shape: fresh boots, one run
     of main each, cycle counters must agree. *)
  let oc_tree = vm_oracle_once ~engine:Vm.Interp.Tree progs in
  let oc_comp = vm_oracle_once ~engine:Vm.Interp.Compiled progs in
  if oc_tree <> oc_comp then begin
    Printf.printf "FAIL: engine cycle divergence on oracle runs (tree %d, compiled %d)\n" oc_tree
      oc_comp;
    exit 1
  end;
  (* Timing: the boots (engine-independent machine setup) stay off the
     clock; main is re-run to amplify execution over timer noise. The
     engines do identical work — same interpreters, same rep count,
     and by equivalence the same executed paths. *)
  let reps = 50 in
  let time_oracle engine =
    let interps = List.map (fun p -> Vm.Builtins.boot ~engine p) progs in
    best_of best (fun () ->
        List.iter
          (fun t ->
            for _ = 1 to reps do
              try ignore (Vm.Interp.run t "main" []) with Vm.Trap.Trap _ -> ()
            done)
          interps)
  in
  let ot_tree = time_oracle Vm.Interp.Tree in
  let ot_comp = time_oracle Vm.Interp.Compiled in
  let oracle_speedup = ot_tree /. ot_comp in
  Printf.printf "oracle runs (%d fuzz-case variants x%d, boots off-clock), %d cycles:\n"
    (List.length progs) reps oc_tree;
  Printf.printf "  tree-walk: %8.2f ms\n" (ot_tree *. 1e3);
  Printf.printf "  compiled:  %8.2f ms\n" (ot_comp *. 1e3);
  Printf.printf "  speedup:   %8.2fx\n" oracle_speedup;
  record ~scenario:"vm-oracle" ~wall:ot_comp ~speedup:oracle_speedup;
  e2_speedup

(* vm-super: in-process ablation of the profile-guided optimizer.
   Same program, same E2 schedule, same process — the baseline arm
   compiles with Compile.set_opt false (the PR 5 one-closure-per-
   opcode pipeline), the optimized arm with superinstruction fusion,
   peephole passes and specialized codegen on. Back-to-back timing in
   one process factors out host drift that plagues cross-run
   comparisons, and the cycle counters of both arms must agree
   (the optimizer's observational-equivalence contract, live). *)
let bench_vm_super ?(best = 11) () =
  section "VM: profile-guided superinstructions (vm-super)";
  let prog = Kernel.Workloads.load ~fresh:true () in
  ignore (Deputy.Dreport.deputize ~optimize:true prog);
  let saved = Vm.Compile.opt_enabled () in
  Fun.protect
    ~finally:(fun () -> Vm.Compile.set_opt saved)
    (fun () ->
      Vm.Compile.set_opt false;
      let c_base = vm_e2_once ~engine:Vm.Interp.Compiled prog in
      Vm.Compile.set_opt true;
      Vm.Compile.reset_opt_stats ();
      let c_opt = vm_e2_once ~engine:Vm.Interp.Compiled prog in
      if c_base <> c_opt then begin
        Printf.printf "FAIL: optimizer changed the E2 cycle count (off %d, on %d)\n" c_base c_opt;
        exit 1
      end;
      (* Interleaved rounds: each round times both arms back to back so
         host noise (this box shares a core) lands on both equally; the
         minimum per arm is the least-disturbed sample. Toggling the
         flag retires the other arm's compiled code, so each round
         burns one warm run per arm to repay the compile off-clock. *)
      let t_base = ref infinity and t_opt = ref infinity in
      let sample cell =
        (* Machine construction (tens of MB of zeroed planes) is
           engine-independent setup; it stays off the clock so the
           ratio reflects execution, not memset. The warm run above
           already repaid this arm's compile into the program cache. *)
        let t = Vm.Builtins.boot ~engine:Vm.Interp.Compiled prog in
        Gc.major ();
        let t0 = Unix.gettimeofday () in
        ignore (Vm.Interp.run t Kernel.Corpus.boot_entry []);
        List.iter
          (fun (row : Kernel.Workloads.row) ->
            ignore (Vm.Interp.run t row.Kernel.Workloads.entry [ 3L ]))
          Kernel.Workloads.table1;
        cell := Float.min !cell (Unix.gettimeofday () -. t0)
      in
      for _ = 1 to best do
        Vm.Compile.set_opt false;
        ignore (vm_e2_once ~engine:Vm.Interp.Compiled prog);
        sample t_base;
        Vm.Compile.set_opt true;
        ignore (vm_e2_once ~engine:Vm.Interp.Compiled prog);
        sample t_opt
      done;
      let t_base = !t_base and t_opt = !t_opt in
      let sp = t_base /. t_opt in
      Printf.printf "E2 schedule, compiled engine, %d cycles:\n" c_base;
      Printf.printf "  opt off:   %8.2f ms\n" (t_base *. 1e3);
      Printf.printf "  opt on:    %8.2f ms\n" (t_opt *. 1e3);
      Printf.printf "  speedup:   %8.2fx\n" sp;
      (* The interleaved loop recompiled each arm once per round; the
         reported site counts should reflect a single compile. The
         cache still holds opt-arm code (matching generation), so
         cycle through the baseline generation to force one. *)
      Vm.Compile.set_opt false;
      ignore (vm_e2_once ~engine:Vm.Interp.Compiled prog);
      Vm.Compile.set_opt true;
      Vm.Compile.reset_opt_stats ();
      ignore (vm_e2_once ~engine:Vm.Interp.Compiled prog);
      let stats = Vm.Compile.opt_stats () in
      if stats <> [] then begin
        print_string (Vm.Compile.render_opt_stats ());
        json_opt_stats := stats
      end;
      record ~scenario:"vm-super" ~wall:t_opt ~speedup:sp;
      sp)

(* --vm-gate: CI regression fence, mirroring --absint-gate. The
   checked-in floor is a conservative lower bound on the compiled
   engine's E2 speedup; dropping below it means the compiled engine
   lost its reason to exist (or stopped being used by default). *)
let vm_floor_file = "bench/vm_floor.txt"

let vm_gate () =
  let floor = read_floor vm_floor_file in
  let speedup = bench_vm_compile ~best:3 ~cases:4 () in
  Printf.printf "vm gate: compiled-engine E2 speedup %.2fx, floor %.2fx\n" speedup floor;
  if speedup < floor then begin
    Printf.printf "FAIL: compiled-engine speedup regressed below the checked-in floor\n";
    exit 1
  end
  else Printf.printf "OK\n"

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks of the implementation            *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* One Test.make per table/experiment of the paper, plus the pipeline
   stages a downstream user would care about. *)
let tests () =
  let sources = Kernel.Workloads.sources () in
  let parsed = Kernel.Workloads.load () in
  [
    (* Pipeline stages. *)
    Test.make ~name:"frontend:parse+check corpus"
      (Staged.stage (fun () -> ignore (Kc.Typecheck.check_sources sources)));
    Test.make ~name:"deputy:instrument+optimize"
      (Staged.stage (fun () ->
           let p = Kernel.Corpus.load () in
           ignore (Deputy.Dreport.deputize p)));
    Test.make ~name:"absint:discharge"
      (Staged.stage (fun () ->
           let p = Kernel.Corpus.load () in
           ignore (Deputy.Dreport.deputize p);
           ignore (Absint.Discharge.run p)));
    Test.make ~name:"ccount:instrument"
      (Staged.stage (fun () ->
           let p = Kernel.Corpus.load () in
           ignore (Ccount.Rc_instrument.instrument_program p)));
    Test.make ~name:"blockstop:analyze"
      (Staged.stage (fun () ->
           let p = Kernel.Corpus.load () in
           ignore (Blockstop.Breport.analyze p)));
    Test.make ~name:"vm:boot"
      (Staged.stage (fun () -> ignore (Ivy.Pipeline.booted Ivy.Pipeline.Base)));
    (* One per table / experiment. *)
    Test.make ~name:"table1:lat_udp row"
      (Staged.stage (fun () ->
           ignore (Ivy.Experiment.table1_row (Kernel.Workloads.find_row "lat_udp"))));
    Test.make ~name:"e2:fork overhead cell"
      (Staged.stage (fun () ->
           ignore (Ivy.Experiment.e2_cell ~workload:"wl_fork" ~iters:5 Vm.Cost.Up)));
    Test.make ~name:"e3:free census"
      (Staged.stage (fun () ->
           let r = Ivy.Pipeline.booted (Ivy.Pipeline.Ccount Vm.Cost.Up) in
           ignore (Ivy.Pipeline.run_entry r "wl_ssh_copy" 10);
           ignore (Ivy.Pipeline.free_census r)));
    Test.make ~name:"e4:blockstop experiment"
      (Staged.stage (fun () -> ignore (Ivy.Experiment.e4_blockstop ())));
    Test.make ~name:"x1:locksafe" (Staged.stage (fun () -> ignore (Locksafe.analyze parsed)));
    Test.make ~name:"x2:stackcheck" (Staged.stage (fun () -> ignore (Stackcheck.analyze parsed)));
    Test.make ~name:"x3:errcheck" (Staged.stage (fun () -> ignore (Errcheck.analyze parsed)));
    Test.make ~name:"x4:userck" (Staged.stage (fun () -> ignore (Userck.analyze parsed)));
    Test.make ~name:"engine:check (all, shared ctxt)"
      (Staged.stage (fun () ->
           let ctxt = Engine.Context.create parsed in
           ignore (Ivy.Checks.run_all ctxt)));
    (* Fuzz-subsystem throughput: one full case = generate + render +
       typecheck + all analyses + three instrumented VM runs. *)
    Test.make ~name:"gen:render (one case)"
      (Staged.stage (fun () -> ignore (Gen.Prog.render (Gen.Fuzz.case_program ~seed:1 1))));
    Test.make ~name:"gen:generate+oracle (one case)"
      (Staged.stage (fun () -> ignore (Gen.Oracle.check (Gen.Fuzz.case_program ~seed:1 1))));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Printf.printf "\n%-34s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 50 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
      List.iter
        (fun (name, raw) ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let pretty =
                if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
                else Printf.sprintf "%8.0f ns" ns
              in
              Printf.printf "%-34s %14s\n" name pretty;
              flush stdout
          | _ -> Printf.printf "%-34s %14s\n" name "n/a")
        entries)
    (tests ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  (match args with
  | "--absint-gate" :: _ -> absint_gate ()
  | "--vm-gate" :: _ -> vm_gate ()
  | "--refsafe-gate" :: _ -> refsafe_gate ()
  | "--gates" :: _ ->
      (* every CI regression fence in one process, so --json collects
         all the headline scenarios into a single BENCH_pr9.json *)
      absint_gate ();
      vm_gate ();
      ignore (bench_vm_super ());
      refsafe_gate ();
      bench_serve ()
  | "--vm-compile" :: _ -> ignore (bench_vm_compile ())
  | "--vm-super" :: _ -> ignore (bench_vm_super ())
  | "--fuzz-par" :: rest ->
      let count = match rest with c :: _ -> int_of_string c | [] -> 60 in
      bench_parfuzz ~count ()
  | "--serve" :: _ -> bench_serve ()
  | _ ->
      regenerate ();
      bench_unified ();
      bench_absint ();
      bench_vm_compile () |> ignore;
      bench_refsafe () |> ignore;
      bench_parfuzz ();
      bench_serve ();
      section "Implementation micro-benchmarks (bechamel)";
      benchmark ());
  if json then emit_json ()

(** Sparse difference-bound matrix over integer variable ids: a map
    from pairs [(x, y)] to the tightest known [c] with [x - y <= c].
    Absent pairs mean +oo, so dropping entries is always sound.
    The relational half of the absint product domain ({!Zone} wraps
    this with program variables and the distinguished zero var). *)

type t

val top : t
(** No constraints. *)

val is_top : t -> bool
val equal : t -> t -> bool
val find_opt : int -> int -> t -> int64 option
val fold : (int -> int -> int64 -> 'a -> 'a) -> t -> 'a -> 'a
val cardinal : t -> int

val vars : t -> int list
(** Every variable id mentioned by some constraint, sorted. *)

val add : int -> int -> int64 -> t -> t option
(** [add x y c t]: record [x - y <= c], propagating one step through
    existing paths (incremental closure — complete when [t] is closed,
    sound otherwise). [None] when the constraint system becomes
    infeasible (negative cycle). *)

val close : t -> t option
(** Full shortest-path closure; [None] on a negative cycle. *)

val close_over : int list -> t -> t option
(** Closure over an explicit universe (may include variables without
    constraints yet, e.g. query endpoints). *)

val join : t -> t -> t
(** Pointwise max over common keys. Precise when both sides are
    closed; sound regardless. *)

val widen : t -> t -> t
(** [widen old next] keeps entries of [old] that [next] does not
    weaken and never adopts anything from [next]: widening chains are
    finite because key sets shrink monotonically and surviving values
    never change. Never close a widening result in place. *)

val narrow : t -> t -> t
(** [narrow old next]: all of [old] plus [next]'s entries on keys
    [old] lacks. Sound when [next <= old] (the solver guards this). *)

val forget : int -> t -> t
(** Drop every constraint mentioning the variable. *)

val shift : int -> int64 -> t -> t
(** [shift v k t]: exact translation for [v := v + k]; only sound when
    the concrete addition cannot wrap (callers certify that with an
    interval no-wrap check). *)

val entails_le : int -> int -> int64 -> t -> bool
(** [entails_le x y c t]: does [t] (ideally closed) already record
    [x - y <= c']  with [c' <= c]? *)

val to_string : t -> string

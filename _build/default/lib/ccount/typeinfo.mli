(** Runtime type information for CCount: per struct/union tag, the
    byte offsets of pointer-valued slots, and a stable numeric type id
    — registered with the machine so the free path can drop a dead
    object's outgoing references, and so typed [memset_t]/[memcpy_t]
    maintain counts across bulk operations (paper §2.2). *)

type t = {
  prog : Kc.Ir.program;
  ids : (string, int) Hashtbl.t;
  tags : (int, string) Hashtbl.t;
  ptr_offsets : (string, int list) Hashtbl.t;
}

val build : Kc.Ir.program -> t
val type_id : t -> string -> int
val pointer_offsets : t -> string -> int list

(** Tags that actually carry pointers (the paper's "describe the
    layout of 32 types" census). *)
val tags_with_pointers : t -> string list

val register_with : t -> Vm.Machine.t -> unit

(* Memory layout of KC types: sizes, alignments and field offsets.

   The target model is LP64 x86-ish: char 1, short 2, int 4, long 8,
   pointers 8 bytes; natural alignment everywhere. *)

exception Layout_error of string

let ptr_size = 8

let int_size = function
  | Ast.Ichar -> 1
  | Ast.Ishort -> 2
  | Ast.Iint -> 4
  | Ast.Ilong -> 8

let rec size_of (prog : Ir.program) (ty : Ir.ty) : int =
  match ty with
  | Ir.Tvoid -> raise (Layout_error "sizeof(void)")
  | Ir.Tint (k, _) -> int_size k
  | Ir.Tptr _ -> ptr_size
  | Ir.Tarray (t, n) -> n * size_of prog t
  | Ir.Tfun _ -> raise (Layout_error "sizeof(function)")
  | Ir.Tcomp tag -> comp_size prog (Ir.comp_find prog tag)

and align_of (prog : Ir.program) (ty : Ir.ty) : int =
  match ty with
  | Ir.Tvoid -> raise (Layout_error "alignof(void)")
  | Ir.Tint (k, _) -> int_size k
  | Ir.Tptr _ -> ptr_size
  | Ir.Tarray (t, _) -> align_of prog t
  | Ir.Tfun _ -> raise (Layout_error "alignof(function)")
  | Ir.Tcomp tag ->
      let c = Ir.comp_find prog tag in
      List.fold_left (fun a f -> max a (align_of prog f.Ir.fty)) 1 c.Ir.cfields

and round_up n a = (n + a - 1) / a * a

and comp_size prog (c : Ir.compinfo) : int =
  if c.Ir.cstruct then begin
    let off =
      List.fold_left
        (fun off f ->
          let a = align_of prog f.Ir.fty in
          round_up off a + size_of prog f.Ir.fty)
        0 c.Ir.cfields
    in
    let align = List.fold_left (fun a f -> max a (align_of prog f.Ir.fty)) 1 c.Ir.cfields in
    max 1 (round_up off align)
  end
  else begin
    let sz = List.fold_left (fun m f -> max m (size_of prog f.Ir.fty)) 0 c.Ir.cfields in
    let align = List.fold_left (fun a f -> max a (align_of prog f.Ir.fty)) 1 c.Ir.cfields in
    max 1 (round_up sz align)
  end

(* Byte offset of a field within its struct (0 for union members). *)
let field_offset (prog : Ir.program) (fi : Ir.fieldinfo) : int =
  let c = Ir.comp_find prog fi.Ir.fcomp in
  if not c.Ir.cstruct then 0
  else begin
    let rec go off = function
      | [] -> raise (Layout_error (Printf.sprintf "field %s not in %s" fi.Ir.fname c.Ir.cname))
      | f :: rest ->
          let a = align_of prog f.Ir.fty in
          let off = round_up off a in
          if f.Ir.fname = fi.Ir.fname then off else go (off + size_of prog f.Ir.fty) rest
    in
    go 0 c.Ir.cfields
  end

(* Size of the pointed-to element of a pointer/array type. *)
let elem_size prog = function
  | Ir.Tptr (t, _) | Ir.Tarray (t, _) -> size_of prog t
  | ty -> raise (Layout_error ("elem_size of non-pointer " ^ Ir.type_to_string ty))

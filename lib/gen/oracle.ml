(* Differential oracle: see the .mli for the contract.  Detection and
   "allowed outcome" rules are deliberately written per fault kind so a
   new taxonomy entry forces a decision in both tables. *)

module Diag = Engine.Diag

type outcome = Completed of int64 | Trapped of Vm.Trap.kind * string

type run_results = {
  base : outcome;
  deputy : outcome;
  deputy_absint : outcome;
  ccount : outcome;
  bad_frees : int;
  ccount_refsafe : outcome;
  rs_bad_frees : int;
}

type violation =
  | Frontend_error of string
  | Missed_fault of Fault.kind * string
  | False_alarm of string
  | Spurious_trap of string
  | Result_mismatch of string
  | Discharge_unsound of string
  | Refsafe_unsound of string

type verdict = {
  diags : (string * Diag.t list) list;
  static_errors : int;
  runs : run_results option;
  detected : (Fault.kind * string) list;
  violations : violation list;
}

let violation_to_string = function
  | Frontend_error m -> "frontend-error: " ^ m
  | Missed_fault (k, fn) ->
      Printf.sprintf "missed-fault: %s in %s not flagged by %s" (Fault.to_string k) fn
        (Fault.owner k)
  | False_alarm m -> "false-alarm: " ^ m
  | Spurious_trap m -> "spurious-trap: " ^ m
  | Result_mismatch m -> "result-mismatch: " ^ m
  | Discharge_unsound m -> "discharge-unsound: " ^ m
  | Refsafe_unsound m -> "refsafe-unsound: " ^ m

let outcome_to_string = function
  | Completed v -> Printf.sprintf "completed (%Ld)" v
  | Trapped (k, m) -> Printf.sprintf "trapped %s: %s" (Vm.Trap.kind_to_string k) m

(* ---- helpers ------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Does [analysis] emit a Warning/Error diag mentioning [needle]? *)
let flagged diags ~analysis ~needle =
  match List.assoc_opt analysis diags with
  | None -> false
  | Some ds ->
      List.exists
        (fun (d : Diag.t) ->
          d.Diag.severity <> Diag.Info && contains ~needle d.Diag.message)
        ds

(* A program is statically clean when no analysis raises above Info
   (stackcheck's depth summary is informational by design). *)
let noisy_diags diags =
  List.concat_map
    (fun (_, ds) -> List.filter (fun (d : Diag.t) -> d.Diag.severity <> Diag.Info) ds)
    diags

(* ---- the five dynamic runs ---------------------------------------- *)

let parse ~name src = Kc.Typecheck.check_sources [ (name, src) ]

let run_main (interp : Vm.Interp.t) : outcome =
  match Vm.Interp.run interp "main" [] with
  | v -> Completed v
  | exception Vm.Trap.Trap (k, m) -> Trapped (k, m)

(* [base_prog], when given, is reused for the uninstrumented run
   instead of a fresh parse: execution never mutates the program, so
   the caller's already-parsed (and possibly already VM-compiled)
   program gives the same outcome without re-frontending. The three
   instrumented runs always get their own parse. *)
let dynamic ?base_prog ~name src : run_results =
  let base =
    let p = match base_prog with Some p -> p | None -> parse ~name src in
    run_main (Vm.Builtins.boot p)
  in
  let deputy =
    let p = parse ~name src in
    ignore (Deputy.Dreport.deputize p);
    run_main (Vm.Builtins.boot p)
  in
  let deputy_absint =
    let p = parse ~name src in
    ignore (Deputy.Dreport.deputize p);
    ignore (Absint.Discharge.run p);
    run_main (Vm.Builtins.boot p)
  in
  let ccount, bad_frees =
    let p = parse ~name src in
    let interp, _report = Ccount.Creport.ccount_boot p in
    let o = run_main interp in
    (o, (Vm.Machine.free_census interp.Vm.Interp.m).Vm.Machine.bad)
  in
  let ccount_refsafe, rs_bad_frees =
    let p = parse ~name src in
    let interp, _report = Ccount.Creport.ccount_boot ~refsafe:true p in
    let o = run_main interp in
    (o, (Vm.Machine.free_census interp.Vm.Interp.m).Vm.Machine.bad)
  in
  { base; deputy; deputy_absint; ccount; bad_frees; ccount_refsafe; rs_bad_frees }

(* ---- detection rules (soundness) ---------------------------------- *)

(* Each label must be caught by its owner.  Static analyses must flag
   the host function; runtime-owned classes accept either the static
   error or the instrumented trap/census evidence. *)
let detects ~diags ~static_errors ~(runs : run_results) (kind, fn) =
  match (kind : Fault.kind) with
  | Fault.Atomic_block ->
      flagged diags ~analysis:"blockstop" ~needle:fn
      && (match runs.base with Trapped (Vm.Trap.Blocking_in_atomic, _) -> true | _ -> false)
  | Fault.Oob_write -> (
      static_errors > 0
      || match runs.deputy with Trapped (Vm.Trap.Check_failed, _) -> true | _ -> false)
  | Fault.Dangling_free -> (
      runs.bad_frees > 0
      ||
      match runs.ccount with
      | Trapped ((Vm.Trap.Bad_free | Vm.Trap.Use_after_free | Vm.Trap.Double_free), _) -> true
      | _ -> false)
  | Fault.Lock_inversion ->
      (* the deadlock diag names the lock pair, not the acquiring
         function; any both-orders report must be the injected one
         because clean lock regions share a single global order *)
      flagged diags ~analysis:"locksafe" ~needle:"both orders"
  | Fault.Unchecked_err -> flagged diags ~analysis:"errcheck" ~needle:fn
  | Fault.User_deref -> flagged diags ~analysis:"userck" ~needle:fn
  | Fault.Ref_leak ->
      (* dynamically invisible by construction: only the static
         ownership analysis can catch it *)
      flagged diags ~analysis:"refsafe" ~needle:fn
  | Fault.Double_put -> (
      flagged diags ~analysis:"refsafe" ~needle:fn
      || match runs.ccount with Trapped (Vm.Trap.Double_free, _) -> true | _ -> false)
  | Fault.Put_on_error_path ->
      flagged diags ~analysis:"refsafe" ~needle:fn || runs.rs_bad_frees > 0

(* ---- allowed dynamic behaviour (consistency) ---------------------- *)

(* What may each run legitimately do, given the labels?  Anything else
   is a spurious trap / result mismatch. *)
let check_runs ~labels (runs : run_results) : violation list =
  let kinds = List.map fst labels in
  let has k = List.mem k kinds in
  let vs = ref [] in
  let spurious where o = vs := Spurious_trap (where ^ " " ^ outcome_to_string o) :: !vs in
  (* base: only an atomic-block fault may trap it (the VM's own ground
     truth); an OOB write lands in mapped stack, so it corrupts rather
     than faults, and everything else is semantically invisible. *)
  (match runs.base with
  | Completed _ -> ()
  | Trapped (Vm.Trap.Blocking_in_atomic, _) when has Fault.Atomic_block -> ()
  | Trapped (Vm.Trap.Wild_access, _) when has Fault.Oob_write -> ()
  | Trapped (Vm.Trap.Double_free, _) when has Fault.Double_put -> ()
  | o -> spurious "base:" o);
  (* deputy: additionally, the residual checks catch OOB writes. *)
  (match runs.deputy with
  | Completed _ -> ()
  | Trapped (Vm.Trap.Blocking_in_atomic, _) when has Fault.Atomic_block -> ()
  | Trapped (Vm.Trap.Check_failed, _) when has Fault.Oob_write -> ()
  | Trapped (Vm.Trap.Double_free, _) when has Fault.Double_put -> ()
  | o -> spurious "deputy:" o);
  (* deputy+absint: the discharge pass may only remove checks that can
     never fire, so this run must behave exactly like the deputy run —
     same result, or the same trap with the same message.  Any drift is
     a discharge-soundness bug, reported regardless of labels. *)
  if runs.deputy_absint <> runs.deputy then
    vs :=
      Discharge_unsound
        (Printf.sprintf "deputy=%s deputy+absint=%s"
           (outcome_to_string runs.deputy)
           (outcome_to_string runs.deputy_absint))
      :: !vs;
  (* ccount: bad frees leak (never trap) under the soundness-preserving
     config, so the allowances mirror base. *)
  (match runs.ccount with
  | Completed _ -> ()
  | Trapped (Vm.Trap.Blocking_in_atomic, _) when has Fault.Atomic_block -> ()
  | Trapped (Vm.Trap.Wild_access, _) when has Fault.Oob_write -> ()
  | Trapped (Vm.Trap.Double_free, _) when has Fault.Double_put -> ()
  | o -> spurious "ccount:" o);
  (* ccount+refsafe: the discharge may only remove counter updates the
     census can never observe, so this run must match the full CCount
     run exactly — same outcome AND same bad-free count.  Any drift is
     a refsafe-soundness bug, reported regardless of labels. *)
  if runs.ccount_refsafe <> runs.ccount || runs.rs_bad_frees <> runs.bad_frees then
    vs :=
      Refsafe_unsound
        (Printf.sprintf "ccount=%s (%d bad) ccount+refsafe=%s (%d bad)"
           (outcome_to_string runs.ccount) runs.bad_frees
           (outcome_to_string runs.ccount_refsafe)
           runs.rs_bad_frees)
      :: !vs;
  (* census: only a dangling-free or put-on-error-path label explains
     bad frees. *)
  if runs.bad_frees > 0 && not (has Fault.Dangling_free || has Fault.Put_on_error_path) then
    vs :=
      Spurious_trap (Printf.sprintf "ccount census: %d unexplained bad frees" runs.bad_frees)
      :: !vs;
  (* result agreement: when every run completed, instrumentation must
     not have changed the program's meaning. *)
  (match (runs.base, runs.deputy, runs.ccount) with
  | Completed b, Completed d, Completed c ->
      if not (Int64.equal b d && Int64.equal b c) then
        vs :=
          Result_mismatch (Printf.sprintf "base=%Ld deputy=%Ld ccount=%Ld" b d c) :: !vs
  | _ -> ());
  List.rev !vs

(* ---- the oracle --------------------------------------------------- *)

let check_source ~name src (labels : (Fault.kind * string) list) : verdict =
  match parse ~name src with
  | exception e ->
      {
        diags = [];
        static_errors = 0;
        runs = None;
        detected = [];
        violations = [ Frontend_error (Printexc.to_string e) ];
      }
  | prog ->
      let ctxt = Engine.Context.create prog in
      (* Pre-compile the program once on the context: the base dynamic
         run below reuses the compiled code through the VM's program
         cache. *)
      ignore (Engine.Context.vm_compiled ctxt);
      let diags = Ivy.Checks.run_all ctxt in
      let dep_static =
        (* deputize mutates, so give it its own parse *)
        (Deputy.Dreport.deputize (parse ~name src)).Deputy.Dreport.static_errors
      in
      let static_errors = List.length dep_static in
      let runs = dynamic ~base_prog:prog ~name src in
      let detected =
        List.filter (detects ~diags ~static_errors ~runs) labels
      in
      let missed =
        List.filter_map
          (fun l -> if List.mem l detected then None else Some (Missed_fault (fst l, snd l)))
          labels
      in
      let false_alarms =
        if labels <> [] then []
        else
          let noisy =
            List.map
              (fun (d : Diag.t) ->
                False_alarm
                  (Printf.sprintf "%s: %s" d.Diag.analysis d.Diag.message))
              (noisy_diags diags)
          in
          if static_errors > 0 then
            noisy
            @ [
                False_alarm
                  (Printf.sprintf "deputy: %d static errors in a clean program" static_errors);
              ]
          else noisy
      in
      let run_violations = check_runs ~labels runs in
      {
        diags;
        static_errors;
        runs = Some runs;
        detected;
        violations = missed @ false_alarms @ run_violations;
      }

let check (p : Prog.t) : verdict =
  check_source ~name:"gen.kc" (Prog.render p) p.Prog.faults

let passes p = (check p).violations = []

lib/kernel/src_drivers.ml:

lib/dataflow/cfg.mli: Kc

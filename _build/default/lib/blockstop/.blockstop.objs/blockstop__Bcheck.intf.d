lib/blockstop/bcheck.mli: Kc

lib/kc/ir.ml: Ast Hashtbl List Loc Printf String

(* Error-code checking (paper §3.1, third proposed analysis).

   "Programmers can annotate each function with the set of codes that
   the function could return, or the programmer could simply indicate
   to the compiler that negative constant return values are error
   codes. Then a flow-sensitive analysis at call sites could verify
   that each of the error codes are accounted for."

   Error-returning functions are found two ways:
   - an explicit [__returns_err(...)] annotation, or
   - inference: the body returns a negative constant somewhere.

   A call site "accounts for" the code when the result is bound and
   subsequently branched on, switched on, propagated by a return, or
   stored/escaped (someone downstream can test it). Unchecked sites
   are reported. *)

module I = Kc.Ir
module SS = Set.Make (String)

type site = {
  s_caller : string;
  s_callee : string;
  s_loc : Kc.Loc.t;
  s_kind : [ `Ignored (* result discarded outright *) | `Unchecked (* bound but never tested *) ];
}

type report = {
  err_functions : (string * int64 list) list; (* function, known codes *)
  inferred : SS.t; (* found by inference rather than annotation *)
  sites_total : int;
  violations : site list;
}

(* Collect negative constant returns in a body. *)
let returned_error_codes (fd : I.fundec) : int64 list =
  let codes = ref [] in
  I.iter_stmts
    (fun s ->
      match s.I.sk with
      | I.Sreturn (Some e) -> (
          match e.I.e with
          | I.Econst n when n < 0L -> codes := n :: !codes
          | I.Eunop (Kc.Ast.Neg, { I.e = I.Econst n; _ }) when n > 0L ->
              codes := Int64.neg n :: !codes
          | _ -> ())
      | _ -> ())
    fd.I.fbody;
  List.sort_uniq compare !codes

let err_functions (prog : I.program) : (string * int64 list) list * SS.t =
  let inferred = ref SS.empty in
  let fns =
    Hashtbl.fold
      (fun name (fd : I.fundec) acc ->
        let annotated =
          List.fold_left
            (fun acc a -> match a with Kc.Ast.Freturns_err codes -> Some codes | _ -> acc)
            None fd.I.fannots
        in
        match annotated with
        | Some codes -> (name, codes) :: acc
        | None ->
            if fd.I.fextern then acc
            else begin
              match returned_error_codes fd with
              | [] -> acc
              | codes ->
                  inferred := SS.add name !inferred;
                  (name, codes) :: acc
            end)
      prog.I.fun_by_name []
  in
  (List.sort compare fns, !inferred)

(* Does [vid] appear in an expression? *)
let exp_mentions vid (e : I.exp) : bool =
  I.fold_exp
    (fun acc sub ->
      acc || match sub.I.e with I.Elval (I.Lvar v, _) -> v.I.vid = vid | _ -> false)
    false e

(* Is the value held in [vid] accounted for: tested in a branch,
   switched on, returned, passed to another call, or stored to memory
   (escaping to someone who can test it)? Copies into other variables
   are followed (the elaborator introduces temporaries for call
   results). Flow-insensitive over the body, so it only under-reports
   violations. *)
let rec accounted (fd : I.fundec) (vid : int) (fuel : int) : bool =
  if fuel <= 0 then true (* give up conservatively *)
  else begin
    let found = ref false in
    I.iter_stmts
      (fun s ->
        if not !found then
          match s.I.sk with
          | I.Sif (c, _, _) | I.Swhile (c, _, _) | I.Sdowhile (_, c) | I.Sswitch (c, _) ->
              if exp_mentions vid c then found := true
          | I.Sreturn (Some e) -> if exp_mentions vid e then found := true
          | I.Sinstr (I.Iset (lv, e)) when exp_mentions vid e -> (
              match lv with
              | I.Lvar u, [] when u.I.vid <> vid ->
                  (* Copied into another variable: follow it. *)
                  if accounted fd u.I.vid (fuel - 1) then found := true
              | I.Lvar u, [] when u.I.vid = vid -> ()
              | _ -> found := true (* stored to memory: escapes *))
          | I.Sinstr (I.Icall (_, _, args)) ->
              if List.exists (exp_mentions vid) args then found := true
          | _ -> ())
      fd.I.fbody;
    !found
  end

let var_checked_somewhere (fd : I.fundec) (vid : int) : bool = accounted fd vid 6

let analyze (prog : I.program) : report =
  let fns, inferred = err_functions prog in
  let err_set = List.fold_left (fun s (n, _) -> SS.add n s) SS.empty fns in
  let sites_total = ref 0 in
  let violations = ref [] in
  List.iter
    (fun (fd : I.fundec) ->
      I.iter_stmts
        (fun s ->
          match s.I.sk with
          | I.Sinstr (I.Icall (ret, I.Direct callee, _)) when SS.mem callee err_set ->
              incr sites_total;
              (match ret with
              | None ->
                  violations :=
                    { s_caller = fd.I.fname; s_callee = callee; s_loc = s.I.sloc; s_kind = `Ignored }
                    :: !violations
              | Some (I.Lvar v, []) ->
                  if not (var_checked_somewhere fd v.I.vid) then begin
                    (* A result held only in an elaboration temporary
                       that goes nowhere was discarded in the source;
                       one that was copied into a named variable was
                       bound but never tested. *)
                    let copies_to_named =
                      let found = ref false in
                      I.iter_stmts
                        (fun s1 ->
                          match s1.I.sk with
                          | I.Sinstr (I.Iset ((I.Lvar u, []), e))
                            when (not u.I.vtemp) && exp_mentions v.I.vid e ->
                              found := true
                          | _ -> ())
                        fd.I.fbody;
                      !found
                    in
                    let kind =
                      if v.I.vtemp && not copies_to_named then `Ignored else `Unchecked
                    in
                    violations :=
                      { s_caller = fd.I.fname; s_callee = callee; s_loc = s.I.sloc; s_kind = kind }
                      :: !violations
                  end
              | Some _ -> () (* stored to memory: escapes, assume checked later *))
          | _ -> ())
        fd.I.fbody)
    prog.I.funcs;
  { err_functions = fns; inferred; sites_total = !sites_total; violations = List.rev !violations }

let pp fmt (r : report) =
  Format.fprintf fmt
    "errcheck: %d error-returning functions (%d inferred), %d call sites, %d unchecked"
    (List.length r.err_functions) (SS.cardinal r.inferred) r.sites_total
    (List.length r.violations)

let pp_site fmt (s : site) =
  Format.fprintf fmt "%s: %s ignores error result of %s%s" (Kc.Loc.to_string s.s_loc) s.s_caller
    s.s_callee
    (match s.s_kind with `Ignored -> " (discarded)" | `Unchecked -> " (never tested)")

lib/kernel/workloads.mli: Kc

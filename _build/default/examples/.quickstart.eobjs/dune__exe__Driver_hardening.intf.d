examples/driver_hardening.mli:

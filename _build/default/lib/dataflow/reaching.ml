(* Reaching definitions over (variable id, definition site).

   A definition site is (node id, index of the instruction within the
   node). Used by tests and by the Deputy fact engine to invalidate
   facts killed by redefinitions. *)

module Def = struct
  type t = { var : int; node : int; idx : int }

  let compare = compare
end

module DS = Set.Make (Def)

module L = struct
  type t = DS.t

  let bottom = DS.empty
  let equal = DS.equal
  let join = DS.union
end

module Solver = Worklist.Make (L)

let node_transfer (node : Cfg.node) (reach_in : DS.t) : DS.t =
  List.fold_left
    (fun reach (idx, def_var) ->
      match def_var with
      | None -> reach
      | Some var ->
          let reach = DS.filter (fun d -> d.Def.var <> var) reach in
          DS.add { Def.var; node = node.Cfg.nid; idx } reach)
    reach_in
    (List.mapi (fun idx (i, _) -> (idx, Liveness.instr_def i)) node.Cfg.instrs)

(* Reaching definitions at entry of each node. *)
let analyze (cfg : Cfg.t) : DS.t array =
  let r = Solver.solve ~dir:Worklist.Forward cfg ~init:DS.empty ~transfer:node_transfer in
  r.Solver.before

(* Definitions of [var] reaching entry of [node_id]. *)
let reaching_defs_of (res : DS.t array) (node_id : int) (var : int) : Def.t list =
  DS.elements (DS.filter (fun d -> d.Def.var = var) res.(node_id))

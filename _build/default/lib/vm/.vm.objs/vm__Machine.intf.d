lib/vm/machine.mli: Alloc Cost Hashtbl Mem

(* Generic worklist dataflow solver over {!Cfg}.

   Instantiated with a join-semilattice; supports forward and backward
   problems. The solver returns the fixpoint state at the entry of
   each node (forward) or at the exit of each node (backward). *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  (* [transfer node state] maps the state at a node's input to the
     state at its output (input = entry for forward, exit for
     backward). *)
  let solve ?(dir = Forward) (cfg : Cfg.t) ~(init : L.t) ~(transfer : Cfg.node -> L.t -> L.t) :
      result =
    let n = Cfg.n_nodes cfg in
    let before = Array.make n L.bottom and after = Array.make n L.bottom in
    let start, inputs, outputs =
      match dir with
      | Forward -> (cfg.Cfg.entry, (fun i -> (Cfg.node cfg i).Cfg.preds), fun i -> (Cfg.node cfg i).Cfg.succs)
      | Backward -> (cfg.Cfg.exit_, (fun i -> (Cfg.node cfg i).Cfg.succs), fun i -> (Cfg.node cfg i).Cfg.preds)
    in
    before.(start) <- init;
    let queue = Queue.create () in
    let on_queue = Array.make n false in
    let push i =
      if not on_queue.(i) then begin
        on_queue.(i) <- true;
        Queue.add i queue
      end
    in
    Array.iter (fun (nd : Cfg.node) -> push nd.Cfg.nid) cfg.Cfg.nodes;
    while not (Queue.is_empty queue) do
      let i = Queue.take queue in
      on_queue.(i) <- false;
      let in_state =
        if i = start then L.join init (List.fold_left (fun acc p -> L.join acc after.(p)) L.bottom (inputs i))
        else List.fold_left (fun acc p -> L.join acc after.(p)) L.bottom (inputs i)
      in
      before.(i) <- in_state;
      let out_state = transfer (Cfg.node cfg i) in_state in
      if not (L.equal out_state after.(i)) then begin
        after.(i) <- out_state;
        List.iter push (outputs i)
      end
    done;
    { before; after }
end

(* A ready-made lattice of integer sets (variable ids, node ids...). *)
module Int_set = struct
  include Set.Make (Int)

  let bottom = empty
  let join = union
end

(* Powerset lattice over an arbitrary ordered element. *)
module Set_lattice (O : Set.OrderedType) = struct
  module S = Set.Make (O)

  type t = S.t

  let bottom = S.empty
  let equal = S.equal
  let join = S.union
end

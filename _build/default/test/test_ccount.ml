(* Tests for CCount: refcount instrumentation, free checking, delayed
   free scopes, typed memory operations, and the untracked-locals
   policy. *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void *kzalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void *memset(void *p, int c, unsigned long n);\n\
   void *memcpy(void *d, void *s, unsigned long n);\n\
   void printk(char * __nullterm fmt, ...);\n"

let p src = preamble ^ src

(* Run under CCount; returns (result, free census, interp). *)
let run_ccount ?(profile = Vm.Cost.Up) ?(fn = "main") src =
  let prog = parse src in
  let t, report = Ccount.Creport.ccount_boot ~profile prog in
  let result = Vm.Interp.run t fn [] in
  (result, Vm.Machine.free_census t.Vm.Interp.m, report, t)

let census_ok name ?(expect_total = -1) src =
  Alcotest.test_case name `Quick (fun () ->
      let _, census, _, _ = run_ccount src in
      Alcotest.(check int) (name ^ ": no bad frees") 0 census.Vm.Machine.bad;
      if expect_total >= 0 then
        Alcotest.(check int) (name ^ ": total frees") expect_total census.Vm.Machine.total_frees)

let census_bad name ~bad src =
  Alcotest.test_case name `Quick (fun () ->
      let _, census, _, _ = run_ccount src in
      Alcotest.(check int) (name ^ ": bad frees detected") bad census.Vm.Machine.bad)

(* ------------------------------------------------------------------ *)
(* Basic good/bad frees                                               *)
(* ------------------------------------------------------------------ *)

let basic_cases =
  [
    census_ok "simple alloc/free" ~expect_total:1
      (p "int main(void) { int *x = kmalloc(16, 0); kfree(x); return 0; }");
    census_ok "free with only local refs (footnote 2)" ~expect_total:1
      (p
         "int main(void) { int *x = kmalloc(16, 0); int *alias = x; kfree(x); return alias == x; }");
    census_bad "dangling global ref makes a bad free" ~bad:1
      (p
         "int *cache;\n\
          int main(void) { cache = kmalloc(16, 0); kfree(cache); return 0; }");
    census_ok "nulling the global first is clean" ~expect_total:1
      (p
         "int *cache;\n\
          int main(void) { cache = kmalloc(16, 0); int *x = cache; cache = 0; kfree(x); return 0; }");
    census_bad "dangling heap field ref" ~bad:1
      (p
         "struct holder { int *payload; };\n\
          int main(void) {\n\
          struct holder *h = kmalloc(sizeof(struct holder), 0);\n\
          h->payload = kmalloc(16, 0);\n\
          int *x = h->payload;\n\
          kfree(x);\n\
          kfree(h);\n\
          return 0; }");
    census_ok "nulling heap field first is clean" ~expect_total:2
      (p
         "struct holder { int *payload; };\n\
          int main(void) {\n\
          struct holder *h = kmalloc(sizeof(struct holder), 0);\n\
          h->payload = kmalloc(16, 0);\n\
          int *x = h->payload;\n\
          h->payload = 0;\n\
          kfree(x);\n\
          kfree(h);\n\
          return 0; }");
  ]

(* Soundness: after a bad free the object is leaked, so the dangling
   reference still works instead of becoming a use-after-free. *)
let test_leak_on_bad_free_sound () =
  let src =
    p
      "int *cache;\n\
       int main(void) { cache = kmalloc(16, 0); *cache = 7; kfree(cache); return *cache; }"
  in
  let result, census, _, _ = run_ccount src in
  Alcotest.(check int) "bad free logged" 1 census.Vm.Machine.bad;
  Alcotest.(check int64) "dangling access still reads the leaked object" 7L result

(* The same program *without* CCount faults on the dangling access. *)
let test_without_ccount_faults () =
  let src =
    p
      "int *cache;\n\
       int main(void) { cache = kmalloc(16, 0); *cache = 7; kfree(cache); return *cache; }"
  in
  let t = Vm.Builtins.boot (parse src) in
  match Vm.Interp.run t "main" [] with
  | v -> Alcotest.failf "expected a fault, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Wild_access, _) -> ()

(* ------------------------------------------------------------------ *)
(* RTTI: outgoing references die with the object                       *)
(* ------------------------------------------------------------------ *)

let test_list_teardown_with_rtti () =
  (* Each node references the next; freeing front-to-back is clean
     because the free path drops the freed node's outgoing refs. *)
  let src =
    p
      "struct node { int v; struct node * __opt next; };\n\
       struct node * __opt head;\n\
       int main(void) {\n\
       int i;\n\
       for (i = 0; i < 5; i++) {\n\
       struct node *n = kmalloc(sizeof(struct node), 0);\n\
       n->v = i; n->next = head; head = n;\n\
       }\n\
       while (head != 0) { struct node *d = head; head = head->next; kfree(d); }\n\
       return 0; }"
  in
  let _, census, report, _ = run_ccount src in
  Alcotest.(check int) "five frees, all good" 5 census.Vm.Machine.total_frees;
  Alcotest.(check int) "no bad frees" 0 census.Vm.Machine.bad;
  Alcotest.(check bool) "alloc sites were typed" true
    (report.Ccount.Creport.instr.Ccount.Rc_instrument.alloc_sites_typed >= 1)

let test_cycle_without_scope_is_bad () =
  let src =
    p
      "struct ring { struct ring * __opt other; };\n\
       int main(void) {\n\
       struct ring *a = kmalloc(sizeof(struct ring), 0);\n\
       struct ring *b = kmalloc(sizeof(struct ring), 0);\n\
       a->other = b; b->other = a;\n\
       kfree(a);\n\
       kfree(b);\n\
       return 0; }"
  in
  let _, census, _, _ = run_ccount src in
  (* Freeing a while b->other still points at it is a bad free. *)
  Alcotest.(check bool) "at least one bad free" true (census.Vm.Machine.bad >= 1)

let test_cycle_with_delayed_scope_is_clean () =
  let src =
    p
      "struct ring { struct ring * __opt other; };\n\
       int main(void) {\n\
       struct ring *a = kmalloc(sizeof(struct ring), 0);\n\
       struct ring *b = kmalloc(sizeof(struct ring), 0);\n\
       a->other = b; b->other = a;\n\
       __delayed_free { kfree(a); kfree(b); }\n\
       return 0; }"
  in
  let _, census, _, _ = run_ccount src in
  Alcotest.(check int) "both frees good" 2 census.Vm.Machine.good;
  Alcotest.(check int) "no bad frees" 0 census.Vm.Machine.bad

(* ------------------------------------------------------------------ *)
(* Typed memory operations                                            *)
(* ------------------------------------------------------------------ *)

let test_typed_memset_drops_refs () =
  (* Clearing a struct with memset must drop its references, or the
     later free of the target is wrongly flagged. *)
  let src =
    p
      "struct holder { int * __opt payload; };\n\
       int main(void) {\n\
       struct holder *h = kmalloc(sizeof(struct holder), 0);\n\
       h->payload = kmalloc(16, 0);\n\
       int *x = h->payload;\n\
       memset(h, 0, sizeof(struct holder));\n\
       kfree(x);\n\
       kfree(h);\n\
       return 0; }"
  in
  let _, census, report, _ = run_ccount src in
  Alcotest.(check int) "no bad frees" 0 census.Vm.Machine.bad;
  Alcotest.(check bool) "memset was retyped" true
    (report.Ccount.Creport.instr.Ccount.Rc_instrument.memops_retyped >= 1)

let test_typed_memcpy_tracks_refs () =
  (* Copying a struct duplicates its references; both copies must be
     cleared before the target dies. *)
  let src =
    p
      "struct holder { int * __opt payload; };\n\
       struct holder *a;\n\
       struct holder *b;\n\
       int main(void) {\n\
       a = kmalloc(sizeof(struct holder), 0);\n\
       b = kmalloc(sizeof(struct holder), 0);\n\
       a->payload = kmalloc(16, 0);\n\
       memcpy(b, a, sizeof(struct holder));\n\
       int *x = a->payload;\n\
       a->payload = 0;\n\
       b->payload = 0;\n\
       kfree(x);\n\
       return 0; }"
  in
  let _, census, _, _ = run_ccount src in
  Alcotest.(check int) "no bad frees after clearing both" 0 census.Vm.Machine.bad

let test_memcpy_copy_detected_as_bad_if_not_cleared () =
  let src =
    p
      "struct holder { int * __opt payload; };\n\
       struct holder *a;\n\
       struct holder *b;\n\
       int main(void) {\n\
       a = kmalloc(sizeof(struct holder), 0);\n\
       b = kmalloc(sizeof(struct holder), 0);\n\
       a->payload = kmalloc(16, 0);\n\
       memcpy(b, a, sizeof(struct holder));\n\
       int *x = a->payload;\n\
       a->payload = 0;\n\
       kfree(x);\n\
       return 0; }"
  in
  let _, census, _, _ = run_ccount src in
  Alcotest.(check int) "copy in b caught" 1 census.Vm.Machine.bad

let test_struct_assign_tracks_refs () =
  let src =
    p
      "struct holder { int * __opt payload; };\n\
       struct holder ga;\n\
       struct holder gb;\n\
       int main(void) {\n\
       ga.payload = kmalloc(16, 0);\n\
       gb = ga;\n\
       int *x = ga.payload;\n\
       ga.payload = 0;\n\
       gb.payload = 0;\n\
       kfree(x);\n\
       return 0; }"
  in
  let _, census, _, _ = run_ccount src in
  Alcotest.(check int) "struct assignment counted" 0 census.Vm.Machine.bad

(* ------------------------------------------------------------------ *)
(* Cost profile                                                        *)
(* ------------------------------------------------------------------ *)

let rc_heavy_src =
  p
    "struct node { int v; struct node * __opt next; };\n\
     struct node * __opt head;\n\
     int main(void) {\n\
     int r;\n\
     for (r = 0; r < 20; r++) {\n\
     int i;\n\
     for (i = 0; i < 20; i++) {\n\
     struct node *n = kmalloc(sizeof(struct node), 0);\n\
     n->v = i; n->next = head; head = n;\n\
     }\n\
     while (head != 0) { struct node *d = head; head = head->next; kfree(d); }\n\
     }\n\
     return 0; }"

let test_smp_costs_more () =
  let _, _, _, t_up = run_ccount ~profile:Vm.Cost.Up rc_heavy_src in
  let _, _, _, t_smp = run_ccount ~profile:Vm.Cost.Smp_p4 rc_heavy_src in
  let up = t_up.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  let smp = t_smp.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "smp run costs more (up=%d smp=%d)" up smp)
    true (smp > up)

let test_rc_ops_counted () =
  let _, _, _, t = run_ccount rc_heavy_src in
  Alcotest.(check bool) "rc ops recorded" true
    (t.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.rc_ops > 100)

(* CCount preserves results. *)
let test_semantics_preserved () =
  let src =
    p
      "struct node { int v; struct node * __opt next; };\n\
       struct node * __opt head;\n\
       int main(void) {\n\
       int i;\n\
       for (i = 1; i <= 4; i++) {\n\
       struct node *n = kmalloc(sizeof(struct node), 0);\n\
       n->v = i * i; n->next = head; head = n;\n\
       }\n\
       int s = 0;\n\
       while (head != 0) { s += head->v; struct node *d = head; head = head->next; kfree(d); }\n\
       return s; }"
  in
  let base = Vm.Interp.run (Vm.Builtins.boot (parse src)) "main" [] in
  let rc_result, census, _, _ = run_ccount src in
  Alcotest.(check int64) "same result" base rc_result;
  Alcotest.(check int) "clean frees" 0 census.Vm.Machine.bad

(* ------------------------------------------------------------------ *)
(* The k*256 blind spot and the overflow check                        *)
(* ------------------------------------------------------------------ *)

(* 256 live references wrap the 8-bit counter to zero: the bad free is
   MISSED, exactly as the paper admits ("bad frees of objects with
   k*256 references will be missed"). *)
let wrap_src =
  p
    "int * __opt refs[256];\n\
     int main(void) {\n\
     int *obj = kmalloc(16, 0);\n\
     int i;\n\
     for (i = 0; i < 256; i++) { refs[i] = obj; }\n\
     kfree(obj); // 256 dangling references, counter wrapped to 0\n\
     return 0; }"

let test_k256_blind_spot () =
  let _, census, _, _ = run_ccount wrap_src in
  Alcotest.(check int) "the wrapped bad free is missed" 0 census.Vm.Machine.bad;
  Alcotest.(check int) "it even counts as good" 1 census.Vm.Machine.good

(* "For total safety, an overflow check could be used": with it on,
   the 256th increment traps instead of wrapping. *)
let test_overflow_check_catches_wrap () =
  let prog = parse wrap_src in
  let t, _ = Ccount.Creport.ccount_boot ~overflow_check:true prog in
  match Vm.Interp.run t "main" [] with
  | v -> Alcotest.failf "expected rc-overflow trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Rc_overflow, _) -> ()

let test_overflow_check_no_false_alarm () =
  (* 255 references stay under the limit. *)
  let src =
    p
      "int * __opt refs[256];\n\
       int main(void) {\n\
       int *obj = kmalloc(16, 0);\n\
       int i;\n\
       for (i = 0; i < 255; i++) { refs[i] = obj; }\n\
       for (i = 0; i < 255; i++) { refs[i] = 0; }\n\
       kfree(obj);\n\
       return 0; }"
  in
  let prog = parse src in
  let t, _ = Ccount.Creport.ccount_boot ~overflow_check:true prog in
  ignore (Vm.Interp.run t "main" []);
  let census = Vm.Machine.free_census t.Vm.Interp.m in
  Alcotest.(check int) "clean free under the limit" 0 census.Vm.Machine.bad

(* ------------------------------------------------------------------ *)
(* Property: push/pop conservation                                     *)
(* ------------------------------------------------------------------ *)

let prop_conservation =
  QCheck2.Test.make ~count:40 ~name:"ccount: stack of n nodes tears down clean"
    QCheck2.Gen.(int_range 0 40)
    (fun n ->
      let src =
        Printf.sprintf
          "%s\n\
           struct node { int v; struct node * __opt next; };\n\
           struct node * __opt top;\n\
           int main(void) {\n\
           int i;\n\
           for (i = 0; i < %d; i++) {\n\
           struct node *x = kmalloc(sizeof(struct node), 0);\n\
           x->v = i; x->next = top; top = x;\n\
           }\n\
           while (top != 0) { struct node *d = top; top = top->next; kfree(d); }\n\
           return 0; }"
          preamble n
      in
      let _, census, _, _ = run_ccount src in
      census.Vm.Machine.bad = 0 && census.Vm.Machine.total_frees = n)

let () =
  Alcotest.run "ccount"
    [
      ( "frees",
        basic_cases
        @ [
            Alcotest.test_case "leak on bad free is sound" `Quick test_leak_on_bad_free_sound;
            Alcotest.test_case "without ccount faults" `Quick test_without_ccount_faults;
          ] );
      ( "rtti",
        [
          Alcotest.test_case "list teardown" `Quick test_list_teardown_with_rtti;
          Alcotest.test_case "cycle without scope" `Quick test_cycle_without_scope_is_bad;
          Alcotest.test_case "cycle with delayed scope" `Quick test_cycle_with_delayed_scope_is_clean;
        ] );
      ( "typed-ops",
        [
          Alcotest.test_case "typed memset" `Quick test_typed_memset_drops_refs;
          Alcotest.test_case "typed memcpy" `Quick test_typed_memcpy_tracks_refs;
          Alcotest.test_case "memcpy dup caught" `Quick test_memcpy_copy_detected_as_bad_if_not_cleared;
          Alcotest.test_case "struct assign" `Quick test_struct_assign_tracks_refs;
        ] );
      ( "cost",
        [
          Alcotest.test_case "smp more expensive" `Quick test_smp_costs_more;
          Alcotest.test_case "rc ops counted" `Quick test_rc_ops_counted;
          Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "k*256 blind spot" `Quick test_k256_blind_spot;
          Alcotest.test_case "overflow check catches wrap" `Quick test_overflow_check_catches_wrap;
          Alcotest.test_case "no false alarm at 255" `Quick test_overflow_check_no_false_alarm;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_conservation ]);
    ]

(* Erasure semantics (one of the paper's five design principles):
   "annotations are written such that they can be ignored (erased) by
   the traditional build process. The program is thus not locked into
   the tool."

   Run with:  dune exec examples/erasure_demo.exe

   We take the whole annotated mini-kernel, print it with every
   annotation and instrumentation artifact stripped, re-compile the
   stripped text, and show the two kernels boot to the same state
   cycle-for-cycle. *)

let () =
  (* 1. The annotated corpus. *)
  let annotated = Kernel.Corpus.load () in
  let t1 = Vm.Builtins.boot annotated in
  ignore (Vm.Interp.run t1 "start_kernel" []);
  let cycles1 = t1.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  Printf.printf "annotated kernel booted: %d cycles\n" cycles1;

  (* 2. Erase and re-parse. *)
  let erased_text = Kc.Pretty.print_program ~erase:true annotated in
  let count_occurrences needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i acc =
      if i + n > m then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  List.iter
    (fun marker ->
      Printf.printf "occurrences of %-22s in erased text: %d\n" marker
        (count_occurrences marker erased_text))
    [ "__count"; "__nullterm"; "__opt"; "__trusted"; "__blocking"; "__delayed_free" ];

  let erased = Kc.Typecheck.check_sources [ ("erased.kc", erased_text) ] in
  Printf.printf "erased kernel re-compiles: %d functions (annotated had %d)\n"
    (List.length erased.Kc.Ir.funcs)
    (List.length annotated.Kc.Ir.funcs);

  (* 3. Boot the erased kernel: same behaviour. *)
  let t2 = Vm.Builtins.boot erased in
  ignore (Vm.Interp.run t2 "start_kernel" []);
  let cycles2 = t2.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  Printf.printf "erased kernel booted:    %d cycles\n" cycles2;
  Printf.printf "same console output: %b\n"
    (Vm.Machine.console_lines t1.Vm.Interp.m = Vm.Machine.console_lines t2.Vm.Interp.m);
  Printf.printf "same cycle count:    %b\n" (cycles1 = cycles2)

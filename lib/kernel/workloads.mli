(** The benchmark workloads: the 21 hbench-shaped rows behind Table 1,
    the fork / module-load workloads behind the CCount overheads (E2),
    the boot / idle / ssh-copy scripts behind the free census (E3),
    and the trigger functions for the seeded BlockStop bugs. *)

type kind = Bw  (** bandwidth row: report base/instrumented ratio *)
          | Lat  (** latency row: report instrumented/base ratio *)

type row = {
  id : string;  (** hbench row name, e.g. "bw_mem_cp" *)
  kind : kind;
  entry : string;  (** KC entry function; takes the iteration count *)
  iters : int;  (** iterations of the timed region *)
  paper : float;  (** the paper's Table 1 value, for reports *)
}

(** The KC source of the workload compilation unit. *)
val source : string

(** Table 1's rows, in the paper's order. *)
val table1 : row list

(** Find a row by id; raises [Invalid_argument] on unknown ids. *)
val find_row : string -> row

(** Corpus + workload unit, ready to check. *)
val sources : ?fixed_frees:bool -> unit -> (string * string) list

(** The checked corpus+workloads program, memoized per [fixed_frees]
    (thread-safe). The shared instance must be treated as read-only;
    pass [~fresh:true] for a private program that may be instrumented
    in place. *)
val load : ?fixed_frees:bool -> ?fresh:bool -> unit -> Kc.Ir.program

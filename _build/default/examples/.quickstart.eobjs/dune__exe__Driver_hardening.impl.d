examples/driver_hardening.ml: Blockstop Ccount Deputy Format Kc List Printf Vm

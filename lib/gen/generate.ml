(* Clean-program generator.  All choices flow through a splitmix64
   stream seeded from the case seed, so generation is a pure function
   of the seed.  The invariants that keep the result silent under every
   analysis are documented on each block in Prog. *)

let gen_block rng ~fid ~n_tables ~n_slots : Prog.block =
  (* weighted choice over clean block kinds; Call/Fptr only when a
     target exists. *)
  let kinds =
    [ `Arith; `Arith; `Array; `Heap; `Lock; `Irq; `Err; `User ]
    @ (if fid > 0 then [ `Call; `Call ] else [])
    @ if n_tables > 0 then [ `Fptr ] else []
  in
  match Rng.pick rng kinds with
  | `Arith -> Prog.Arith { iters = Rng.range rng 2 6; mul = Rng.range rng 2 5 }
  | `Array -> Prog.Array_loop { size = Rng.range rng 3 8 }
  | `Heap -> Prog.Heap { slot = Rng.int rng n_slots }
  | `Lock ->
      (* a sorted subset of the three locks: global acquisition order is
         ascending lock index, so no two regions can ever invert. *)
      let locks =
        List.filter (fun _ -> Rng.bool rng) [ 0; 1; 2 ]
      in
      let locks = if locks = [] then [ Rng.int rng 3 ] else locks in
      Prog.Lock_region { locks; addend = Rng.range rng 1 9 }
  | `Irq -> Prog.Irq_region { addend = Rng.range rng 1 9 }
  | `Err -> Prog.Err_call
  | `User -> Prog.User_copy
  | `Call -> Prog.Call { callee = Rng.int rng fid }
  | `Fptr -> Prog.Fptr_call { table = Rng.int rng n_tables; pivot = Rng.range rng 1 4 }
  | _ -> assert false

let clean seed : Prog.t =
  let rng = Rng.create seed in
  let n_ops = Rng.range rng 2 4 in
  let n_tables = Rng.range rng 0 2 in
  let n_tables = if n_ops < 2 then 0 else n_tables in
  let n_funcs = Rng.range rng 2 6 in
  let n_slots = Rng.range rng 1 3 in
  let ops = List.init n_ops (fun oid -> { Prog.oid; omul = Rng.range rng 2 7 }) in
  let tables =
    List.init n_tables (fun tid ->
        let ta = Rng.int rng n_ops in
        let tb = Rng.int rng n_ops in
        { Prog.tid; ta; tb })
  in
  let funcs =
    List.init n_funcs (fun fid ->
        let n_blocks = Rng.range rng 1 4 in
        let blocks =
          List.init n_blocks (fun _ -> gen_block rng ~fid ~n_tables ~n_slots)
        in
        { Prog.fid; blocks })
  in
  { Prog.seed; ops; tables; funcs; faults = [] }

(* Backwards propagation of the "may block" property over the call
   graph (paper §2.3).

   Seeds are the [__blocking] annotations on kernel primitives
   (schedule, copy_to_user, ...). Allocators marked
   [__blocking_if_gfp_wait] contribute per call site: a constant GFP
   argument without __GFP_WAIT does not block; anything else is
   conservatively blocking.

   Functions in [guarded] carry a manual runtime check
   ([assert_not_atomic] at entry, the paper's 15 checks): the static
   obligation at their call sites is discharged by the assertion, so
   they do not propagate blocking to their callers. *)

module SS = Set.Make (String)
module I = Kc.Ir

type why =
  | Annotated (* carries __blocking *)
  | May_wait_alloc of Kc.Loc.t (* calls an allocator that may wait *)
  | Calls of string * Kc.Loc.t (* calls a blocking function *)

type t = {
  cg : Callgraph.t;
  blocking : (string, why) Hashtbl.t;
  guarded : SS.t;
}

let annotated_blocking (prog : I.program) : string list =
  Hashtbl.fold
    (fun name (fd : I.fundec) acc ->
      if List.mem Kc.Ast.Fblocking fd.I.fannots then name :: acc else acc)
    prog.I.fun_by_name []

(* Does edge [e] represent a call that may block, given the current
   blocking set? *)
let edge_blocks (t : t) (e : Callgraph.edge) : why option =
  if SS.mem e.Callgraph.callee t.guarded then None
  else
    match e.Callgraph.gfp with
    | Callgraph.Gfp_const_wait | Callgraph.Gfp_unknown ->
        Some (May_wait_alloc e.Callgraph.loc)
    | Callgraph.Gfp_const_nowait -> None
    | Callgraph.No_gfp ->
        if Hashtbl.mem t.blocking e.Callgraph.callee then
          Some (Calls (e.Callgraph.callee, e.Callgraph.loc))
        else None

let compute ?(guarded = SS.empty) (cg : Callgraph.t) : t =
  let t = { cg; blocking = Hashtbl.create 64; guarded } in
  List.iter
    (fun name -> Hashtbl.replace t.blocking name Annotated)
    (annotated_blocking cg.Callgraph.prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Callgraph.edge) ->
        if not (Hashtbl.mem t.blocking e.Callgraph.caller) then
          match edge_blocks t e with
          | Some why ->
              Hashtbl.replace t.blocking e.Callgraph.caller why;
              changed := true
          | None -> ())
      cg.Callgraph.edges
  done;
  t

let is_blocking (t : t) (name : string) : bool = Hashtbl.mem t.blocking name

(* A call may block either because the callee is in the blocking set
   or because the call itself is a may-wait allocation. *)
let call_may_block (t : t) (e : Callgraph.edge) : bool = edge_blocks t e <> None

(* Witness chain from [name] down to an annotated blocking leaf. *)
let rec witness (t : t) (name : string) : string list =
  match Hashtbl.find_opt t.blocking name with
  | None -> []
  | Some Annotated -> [ name ]
  | Some (May_wait_alloc _) -> [ name; "<gfp-wait allocation>" ]
  | Some (Calls (callee, _)) -> name :: witness t callee

(* The annotation export the paper proposes: one [__blocking] fact per
   function that may eventually block (usable by the annotation
   database, §3.2). *)
let export_annotations (t : t) : (string * string) list =
  Hashtbl.fold (fun name _ acc -> (name, "__blocking") :: acc) t.blocking []
  |> List.sort compare

let blocking_count (t : t) : int = Hashtbl.length t.blocking

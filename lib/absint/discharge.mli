(** Second-stage check discharge: removes Deputy-inserted runtime
    checks the product-domain fixpoint proves can never fire. Runs in
    place over an already deputized (and Facts-optimized) program, so
    the combined pipeline strictly subsumes the Facts pass. *)

type fstat = {
  fname : string;
  seen : int;  (** residual checks entering this pass *)
  proved : int;  (** ... removed by the product domain *)
  proved_iv : int;  (** ... by the interval component alone *)
  proved_rel : int;  (** ... only with the zone's relational facts *)
  iterations : int;
  widen_points : int;
}

type stats = { fstats : fstat list }

val checks_seen : stats -> int
val checks_proved : stats -> int

val checks_proved_iv : stats -> int
(** Checks the interval rule alone discharged. *)

val checks_proved_rel : stats -> int
(** Checks only the relational zone component could discharge. *)

val rate : stats -> float
(** Percentage of residual checks proved (0 when none were seen). *)

val discharge_fundec :
  ?ifaces:Transfer.ifaces -> summaries:Transfer.summaries -> Kc.Ir.fundec -> fstat

val run : ?summaries:Transfer.summaries -> ?ifaces:Transfer.ifaces -> Kc.Ir.program -> stats
(** Under the product domain (the default, see {!Domain}) relational
    interface summaries are computed first ({!Relsum.compute}) and
    feed both the interval summaries and every per-function fixpoint;
    [IVY_ABSINT_DOMAIN=interval] reverts to the interval-only stage. *)

val render_stats : stats -> string

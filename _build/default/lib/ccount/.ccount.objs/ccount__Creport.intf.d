lib/ccount/creport.mli: Format Kc Rc_instrument Vm

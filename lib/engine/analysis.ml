(* The common interface every analysis implements to run under the
   engine: a name (for [--only] selection), a one-line doc string, the
   artifact keys its report depends on, and a run function from the
   shared context to unified diagnostics. Implementations live next to
   their analyses (Ivy.Checks wraps the six libraries); the engine
   itself only defines the contract.

   [run] memoizes the sorted diagnostic list as a graph artifact
   ["check(<name>)"] keyed by the whole-program content hash, with the
   declared [deps] edges — so a warm re-check of an unchanged program
   is pure cache hits, and push-invalidating an upstream artifact
   (e.g. a function's CFG) drops exactly the dependent reports. *)

module type S = sig
  val name : string

  (** One line, shown by [ivy check --list]-style output. *)
  val doc : string

  (** Artifact keys the report reads (beyond the program itself):
      declared edges of the cached ["check(<name>)"] node. *)
  val deps : Graph.key list

  (** Run over the shared context; artifacts must be obtained through
      {!Context} getters so they are built at most once per run. *)
  val run : Context.t -> Diag.t list
end

type t = (module S)

let name (module A : S) = A.name
let doc (module A : S) = A.doc
let deps (module A : S) = A.deps

(* All reports share one slot: the family is "diagnostic list", the
   analysis name distinguishes the keys. *)
let diags_slot : Diag.t list Graph.slot = Graph.slot ()

let run (module A : S) ctxt =
  Context.cached ctxt diags_slot
    ~name:(Context.Key.check A.name).Graph.name
    ~deps:A.deps
    ~fp:(Context.program_fingerprint ctxt)
    (fun () -> Diag.sort (A.run ctxt))

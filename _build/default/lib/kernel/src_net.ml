(* net/ipv4-lite — socket buffers, the IP checksum, a loopback device
   queue, and small UDP/TCP-flavoured send/receive paths. These are
   the substrates of the bw_tcp / lat_udp / lat_tcp / lat_connect /
   lat_rpc rows of Table 1: per-packet header handling is pointer- and
   field-heavy, so a visible share of Deputy checks stays at runtime,
   while the bulk payload copies are canonical counted loops. *)

let source =
  {kc|
// ---------------------------------------------------------------
// net/skbuff.kc
// ---------------------------------------------------------------

enum net_consts {
  SKB_MAX_LEN = 1600,
  NET_QUEUE_LEN = 32,
  NR_SOCKETS = 16,
  IP_HDR_LEN = 20,
  UDP_HDR_LEN = 8,
  TCP_HDR_LEN = 20
};

struct sk_buff {
  int len;            // bytes used in data
  int head;           // offset of the current header
  int capacity;
  int protocol;
  char * __count(capacity) __opt data;
  struct sk_buff * __opt next;
};

struct sk_buff *skb_alloc(int size, int gfp) {
  struct sk_buff *skb = kzalloc(sizeof(struct sk_buff), gfp);
  skb->capacity = size;
  skb->len = 0;
  skb->head = 0;
  skb->data = kmalloc(size, gfp);
  return skb;
}

void skb_free(struct sk_buff *skb) {
  char * __opt d = skb->data;
  skb->data = 0;
  skb->next = 0;
  kfree(d);
  kfree(skb);
}

// Append payload bytes (bulk copy, as skb_put + memcpy would be).
int skb_put(struct sk_buff *skb, char * __count(n) buf, int n) {
  int cap = skb->capacity;
  char * __count(cap) __opt d = skb->data;
  if (d == 0) { return -EINVAL; }
  int at = skb->len;
  if (at < 0) { return -EINVAL; }
  if (at + n > cap) { return -ENOSPC; }
  memcpy(d + at, buf, n);
  skb->len = at + n;
  return n;
}

// Copy payload out, starting at [from].
int skb_copy_out(struct sk_buff *skb, int from, char * __count(n) buf, int n) {
  int cap = skb->capacity;
  char * __count(cap) __opt d = skb->data;
  if (d == 0) { return -EINVAL; }
  if (from < 0) { return -EINVAL; }
  if (from > skb->len) { return -EINVAL; }
  int avail = skb->len - from;
  int todo = n;
  if (todo > avail) { todo = avail; }
  if (todo <= 0) { return 0; }
  if (from + todo > cap) { return -EINVAL; }
  memcpy(buf, d + from, todo);
  return todo;
}

// ---------------------------------------------------------------
// net/checksum.kc: the 16-bit ones-complement IP checksum
// ---------------------------------------------------------------

u32 ip_checksum(char * __count(n) buf, int n) {
  u32 sum = 0;
  int i = 0;
  while (i + 1 < n) {
    u32 hi = buf[i];
    u32 lo = buf[i + 1];
    sum = sum + (hi << 8) + lo;
    i = i + 2;
  }
  if (i < n) {
    u32 hi = buf[i];
    sum = sum + (hi << 8);
  }
  while (sum > 65535) {
    sum = (sum & 65535) + (sum >> 16);
  }
  return (~sum) & 65535;
}

// Ones-complement checksum over skb contents. The bound is the skb's
// capacity field, and the cursor advances by two: Deputy's checks on
// this path stay at run time, which is what puts the UDP/TCP rows of
// Table 1 visibly above 1. (A production kernel would use an asm
// routine here -- trusted code -- but hbench's loopback runs exactly
// this kind of C loop.)
u32 skb_checksum(struct sk_buff *skb, int from, int len) {
  int cap = skb->capacity;
  char * __count(cap) __opt d = skb->data;
  if (d == 0) { return 0; }
  if (from < 0) { return 0; }
  u32 sum = 0;
  int i = from;
  int end = from + len;
  if (end > skb->len) { end = skb->len; }
  if (end > cap) { end = cap; }
  while (i + 1 < end) {
    u32 hi = d[i];
    u32 lo = d[i + 1];
    sum = sum + (hi << 8) + lo;
    i = i + 2;
  }
  if (i < end) {
    if (i >= 0) {
      if (i < cap) {
        u32 hi = d[i];
        sum = sum + (hi << 8);
      }
    }
  }
  while (sum > 65535) {
    sum = (sum & 65535) + (sum >> 16);
  }
  return (~sum) & 65535;
}

// ---------------------------------------------------------------
// net/dev.kc: a loopback device with a FIFO of skbs
// ---------------------------------------------------------------

struct net_device {
  int qlen;
  struct sk_buff * __opt queue_head;
  struct sk_buff * __opt queue_tail;
  long tx_packets;
  long rx_packets;
  long xmit_lock;
};

struct net_device loopback_dev;

// Enqueue for "transmission" (loopback: straight to the rx queue).
int dev_queue_xmit(struct sk_buff *skb) {
  long flags = spin_lock_irqsave(&loopback_dev.xmit_lock);
  if (loopback_dev.qlen >= 32) {
    spin_unlock_irqrestore(&loopback_dev.xmit_lock, flags);
    return -EBUSY;
  }
  skb->next = 0;
  struct sk_buff * __opt tail = loopback_dev.queue_tail;
  if (tail == 0) {
    loopback_dev.queue_head = skb;
  } else {
    tail->next = skb;
  }
  loopback_dev.queue_tail = skb;
  loopback_dev.qlen = loopback_dev.qlen + 1;
  loopback_dev.tx_packets = loopback_dev.tx_packets + 1;
  spin_unlock_irqrestore(&loopback_dev.xmit_lock, flags);
  return 0;
}

struct sk_buff * __opt dev_dequeue(void) {
  long flags = spin_lock_irqsave(&loopback_dev.xmit_lock);
  struct sk_buff * __opt skb = loopback_dev.queue_head;
  if (skb != 0) {
    loopback_dev.queue_head = skb->next;
    if (loopback_dev.queue_head == 0) {
      loopback_dev.queue_tail = 0;
    }
    skb->next = 0;
    loopback_dev.qlen = loopback_dev.qlen - 1;
    loopback_dev.rx_packets = loopback_dev.rx_packets + 1;
  }
  spin_unlock_irqrestore(&loopback_dev.xmit_lock, flags);
  return skb;
}

// ---------------------------------------------------------------
// net/ip.kc: header build/parse
// ---------------------------------------------------------------

// Write a 20-byte IPv4-ish header at the front of the skb data.
int ip_build_header(struct sk_buff *skb, int src, int dst, int proto, int payload_len) {
  int cap = skb->capacity;
  char * __count(cap) __opt d = skb->data;
  if (d == 0) { return -EINVAL; }
  if (cap < 20) { return -ENOSPC; }
  d[0] = 69; // version 4, ihl 5
  d[1] = 0;
  int total = 20 + payload_len;
  d[2] = (total >> 8) & 255;
  d[3] = total & 255;
  d[4] = 0; d[5] = 0; d[6] = 0; d[7] = 0;
  d[8] = 64; // ttl
  d[9] = proto;
  d[10] = 0; d[11] = 0; // checksum slot
  d[12] = (src >> 24) & 255; d[13] = (src >> 16) & 255;
  d[14] = (src >> 8) & 255; d[15] = src & 255;
  d[16] = (dst >> 24) & 255; d[17] = (dst >> 16) & 255;
  d[18] = (dst >> 8) & 255; d[19] = dst & 255;
  u32 csum;
  __trusted {
    char * __count(20) hdr = (char * __count(20))d;
    csum = ip_checksum(hdr, 20);
  }
  d[10] = (csum >> 8) & 255;
  d[11] = csum & 255;
  skb->head = 0;
  if (skb->len < 20) { skb->len = 20; }
  skb->protocol = proto;
  return 0;
}

// Validate the header; returns the protocol or a negative error.
int ip_parse_header(struct sk_buff *skb) {
  int cap = skb->capacity;
  char * __count(cap) __opt d = skb->data;
  if (d == 0) { return -EINVAL; }
  if (cap < 20) { return -EINVAL; }
  if (skb->len < 20) { return -EINVAL; }
  char vihl = d[0];
  if (vihl != 69) { return -EINVAL; }
  char ttl = d[8];
  if (ttl == 0) { return -EIO; }
  u32 saved_hi = d[10];
  u32 saved_lo = d[11];
  d[10] = 0;
  d[11] = 0;
  u32 csum;
  __trusted {
    char * __count(20) hdr = (char * __count(20))d;
    csum = ip_checksum(hdr, 20);
  }
  d[10] = saved_hi & 255;
  d[11] = saved_lo & 255;
  u32 got = (saved_hi << 8) + saved_lo;
  if (csum != got) { return -EIO; }
  char proto = d[9];
  return proto;
}

// ---------------------------------------------------------------
// net/socket.kc: sockets, UDP datagrams, a TCP-flavoured stream
// ---------------------------------------------------------------

enum sock_state { SS_FREE = 0, SS_UNCONNECTED = 1, SS_CONNECTED = 2 };

struct socket {
  int state;
  int port;
  int peer_port;
  int proto;
  long seq;
  struct kfifo * __opt rcvbuf;
};

struct socket sock_table[16];

// Allocate a socket slot; returns an index or negative errno.
int sock_create(int proto) {
  int i;
  for (i = 0; i < 16; i++) {
    if (sock_table[i].state == 0) {
      sock_table[i].state = 1;
      sock_table[i].proto = proto;
      sock_table[i].port = 1024 + i;
      sock_table[i].seq = 0;
      sock_table[i].rcvbuf = kfifo_alloc(4096, GFP_KERNEL);
      return i;
    }
  }
  return -EBUSY;
}

void sock_release(int s) {
  if (s < 0) { return; }
  if (s >= 16) { return; }
  struct kfifo * __opt rb = sock_table[s].rcvbuf;
  sock_table[s].rcvbuf = 0;
  if (rb != 0) {
    kfifo_free(rb);
  }
  sock_table[s].state = 0;
}

// TCP-ish three-way handshake against a listening peer (loopback).
int sock_connect(int s, int peer) {
  if (s < 0) { return -EINVAL; }
  if (s >= 16) { return -EINVAL; }
  if (peer < 0) { return -EINVAL; }
  if (peer >= 16) { return -EINVAL; }
  if (sock_table[s].state != 1) { return -EINVAL; }
  if (sock_table[peer].state == 0) { return -ENOENT; }
  // SYN / SYN-ACK / ACK as three header-only packets.
  int round;
  for (round = 0; round < 3; round++) {
    struct sk_buff *syn = skb_alloc(64, GFP_KERNEL);
    ip_build_header(syn, s, peer, 6, 0);
    dev_queue_xmit(syn);
    struct sk_buff * __opt got = dev_dequeue();
    if (got != 0) {
      struct sk_buff * __opt g2 = got;
      int proto = ip_parse_header(g2);
      if (proto < 0) {
        skb_free(g2);
        return -EIO;
      }
      skb_free(g2);
    }
  }
  sock_table[s].state = 2;
  sock_table[s].peer_port = sock_table[peer].port;
  sock_table[peer].state = 2;
  sock_table[peer].peer_port = sock_table[s].port;
  return 0;
}

// Send a UDP datagram to socket [to] over the loopback.
int udp_send(int s, int to, char * __count(n) buf, int n) {
  if (s < 0) { return -EINVAL; }
  if (s >= 16) { return -EINVAL; }
  if (to < 0) { return -EINVAL; }
  if (to >= 16) { return -EINVAL; }
  struct sk_buff *skb = skb_alloc(1600, GFP_KERNEL);
  int r = ip_build_header(skb, s, to, 17, n);
  if (r < 0) {
    skb_free(skb);
    return r;
  }
  skb->len = 20;
  r = skb_put(skb, buf, n);
  if (r < 0) {
    skb_free(skb);
    return r;
  }
  // Transmit checksum over the whole datagram.
  u32 txsum = skb_checksum(skb, 0, 20 + n);
  skb->protocol = 17 + (txsum & 0);
  r = dev_queue_xmit(skb);
  if (r < 0) {
    skb_free(skb);
    return r;
  }
  // Loopback delivery: straight into the destination's receive FIFO.
  struct sk_buff * __opt got = dev_dequeue();
  if (got == 0) { return -EIO; }
  struct sk_buff * __opt g = got;
  int proto = ip_parse_header(g);
  if (proto != 17) {
    skb_free(g);
    return -EIO;
  }
  // Receive-side checksum of the whole datagram.
  u32 rxsum = skb_checksum(g, 0, g->len);
  if (rxsum > 65535) {
    skb_free(g);
    return -EIO;
  }
  struct kfifo * __opt rb = sock_table[to].rcvbuf;
  if (rb != 0) {
    char chunk[64];
    int at = 20;
    int left = g->len - 20;
    while (left > 0) {
      int take = left;
      if (take > 64) { take = 64; }
      int got_n = skb_copy_out(g, at, chunk, take);
      if (got_n <= 0) { break; }
      kfifo_put(rb, chunk, got_n);
      at = at + got_n;
      left = left - got_n;
    }
  }
  skb_free(g);
  return n;
}

// Receive pending bytes from the socket's FIFO.
int udp_recv(int s, char * __count(n) buf, int n) {
  if (s < 0) { return -EINVAL; }
  if (s >= 16) { return -EINVAL; }
  struct kfifo * __opt rb = sock_table[s].rcvbuf;
  if (rb == 0) { return -EINVAL; }
  return kfifo_get(rb, buf, n);
}

// TCP-ish stream send: segmentize, checksum, deliver. The segment
// staging copy goes through memcpy, as the real kernel's does.
int tcp_send(int s, int to, char * __count(n) buf, int n) {
  if (s < 0) { return -EINVAL; }
  if (s >= 16) { return -EINVAL; }
  if (sock_table[s].state != 2) { return -EINVAL; }
  int sent = 0;
  char seg[512];
  while (sent < n) {
    int take = n - sent;
    if (take > 512) { take = 512; }
    memcpy(seg, buf + sent, take);
    int r = udp_send(s, to, seg, take);
    if (r < 0) { return r; }
    sock_table[s].seq = sock_table[s].seq + take;
    sent = sent + take;
  }
  return sent;
}

// A sloppy shutdown path kept from the original code: frees the
// receive FIFO while the socket table still references it. Rarely
// used -- it survived the first debugging pass, and is what keeps
// the "light use" free census just below 100%.
void sock_force_close(int s) {
  if (s < 0) { return; }
  if (s >= 16) { return; }
  struct kfifo * __opt rb = sock_table[s].rcvbuf;
  if (rb != 0) {
    kfifo_free(rb);
    sock_table[s].rcvbuf = 0;
  }
  sock_table[s].state = 0;
}

void net_init(void) {
  loopback_dev.qlen = 0;
  loopback_dev.queue_head = 0;
  loopback_dev.queue_tail = 0;
  loopback_dev.tx_packets = 0;
  loopback_dev.rx_packets = 0;
}
|kc}

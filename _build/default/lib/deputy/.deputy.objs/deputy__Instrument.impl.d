lib/deputy/instrument.ml: Annot Hashtbl Int64 Kc List Printf

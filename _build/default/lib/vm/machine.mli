(** Machine state: memory + allocator + cost accounting + kernel-ish
    execution state (interrupt depth, locks, interrupt context), plus
    the CCount runtime (RTTI, delayed-free scopes, the free census).
    The machine knows nothing about the IR; the interpreter and the
    builtin kernel API drive it. *)

type bad_free = {
  bf_addr : int;
  bf_rc : int;  (** residual refcount sum at free time *)
  bf_where : string;
}

type config = {
  rc_check : bool;  (** CCount shadow counters active *)
  zero_alloc : bool;  (** zero allocated storage (CCount requires it) *)
  leak_on_bad_free : bool;  (** soundness-preserving leak *)
  rc_overflow_check : bool;  (** trap on 8-bit counter overflow *)
  profile : Cost.profile;
  fuel : int;  (** interpreter step budget *)
}

val default_config : config

type t = {
  mem : Mem.t;
  alloc : Alloc.t;
  cost : Cost.t;
  config : config;
  mutable irq_depth : int;
  mutable in_interrupt : bool;
  mutable locks_held : int list;
  mutable fuel_left : int;
  mutable sp : int;
  irq_handlers : (int, int64) Hashtbl.t;
  rtti : (int, int) Hashtbl.t;
  type_ptr_offsets : (int, int list) Hashtbl.t;
  type_sizes : (int, int) Hashtbl.t;
  mutable delayed_stack : int list list;
  mutable good_frees : int;
  mutable bad_frees : bad_free list;
  mutable console : string list;
  mutable panic_log : string list;
}

val create : ?config:config -> unit -> t

(** Interrupts disabled or in interrupt context. *)
val atomic_context : t -> bool

(** Spend one step of fuel; traps on exhaustion. *)
val burn_fuel : t -> unit

(** {2 Interpreter stack frames} *)

val push_frame : t -> int -> int
val pop_frame : t -> int -> unit

(** {2 CCount runtime} *)

(** Register a type's size and pointer-slot offsets. *)
val register_type : t -> type_id:int -> size:int -> ptr_offsets:int list -> unit

(** Record that the object at [addr] has the given type. *)
val set_obj_type : t -> addr:int -> type_id:int -> unit

(** Pointer-slot offsets of the object at [addr], per its RTTI. *)
val ptr_slots : t -> int -> int -> int list

(** Decrement the counts of everything the object points to (used
    when it is freed or cleared). *)
val drop_outgoing_refs : t -> int -> int -> unit

(** The pointer-write protocol for a memory slot: increment the new
    target's count, then decrement the old target's. *)
val rc_write : t -> slot_addr:int -> new_target:int64 -> unit

(** {2 Allocation API} *)

val kmalloc : t -> size:int -> int

(** Free (or, inside a delayed scope, enqueue). With [rc_check], a
    nonzero residual count is a bad free: logged, and the object is
    leaked when [leak_on_bad_free]. *)
val kfree : t -> int -> where:string -> unit

val do_free : ?drop:bool -> t -> int -> where:string -> unit
val delayed_scope_enter : t -> unit
val delayed_scope_exit : t -> where:string -> unit

(** {2 Kernel execution state} *)

val irq_disable : t -> unit
val irq_enable : t -> unit
val spin_lock : t -> int -> unit
val spin_unlock : t -> int -> unit

(** A blocking primitive was reached: traps if the context is atomic
    (the ground truth BlockStop exists to protect). *)
val block_here : t -> what:string -> unit

val printk : t -> string -> unit
val console_lines : t -> string list

(** {2 Free census (paper §2.2)} *)

type free_census = { total_frees : int; good : int; bad : int; good_pct : float }

val free_census : t -> free_census

lib/vm/alloc.mli: Hashtbl Mem

(** Type checking and elaboration: surface AST -> typed IR.

    Elaboration hoists nested calls into temporaries, desugars
    compound assignment / increment / [for] loops, makes conversions
    and array decay explicit, and resolves dependent [__count]
    annotations (to variable references in function scope, to
    {!Ir.Eself_field} inside struct definitions). *)

exception Type_error of string * Loc.t

(** Check a list of already-parsed units into one program. *)
val check_units : Ast.unit_ list -> Ir.program

(** Parse and check (name, source) pairs, threading typedefs through
    in order. *)
val check_sources : (string * string) list -> Ir.program

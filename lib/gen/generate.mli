(** Seeded generator of clean KC programs.

    [clean seed] is deterministic in [seed] and produces a program
    whose rendering typechecks, is silent under every analysis (no
    Warning/Error diagnostics, no Deputy static errors) and runs to
    completion on the VM under Base, Deputy and CCount instrumentation
    with identical results. *)

val clean : int -> Prog.t

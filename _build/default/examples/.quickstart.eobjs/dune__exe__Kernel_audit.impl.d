examples/kernel_audit.ml: Annotdb Blockstop Ccount Deputy Errcheck Format Kc Kernel List Locksafe Printf Stackcheck String Vm

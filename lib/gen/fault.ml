type kind =
  | Oob_write
  | Dangling_free
  | Atomic_block
  | Lock_inversion
  | Unchecked_err
  | User_deref
  | Ref_leak
  | Double_put
  | Put_on_error_path

(* New kinds go at the end: fault derivation in the fuzz driver picks
   by index into this list, so order is part of the seed format. *)
let all =
  [
    Oob_write;
    Dangling_free;
    Atomic_block;
    Lock_inversion;
    Unchecked_err;
    User_deref;
    Ref_leak;
    Double_put;
    Put_on_error_path;
  ]

let to_string = function
  | Oob_write -> "oob-write"
  | Dangling_free -> "dangling-free"
  | Atomic_block -> "atomic-block"
  | Lock_inversion -> "lock-inversion"
  | Unchecked_err -> "unchecked-err"
  | User_deref -> "user-deref"
  | Ref_leak -> "ref-leak"
  | Double_put -> "double-put"
  | Put_on_error_path -> "put-on-error-path"

let of_string s = List.find_opt (fun k -> to_string k = s) all

let owner = function
  | Oob_write -> "deputy"
  | Dangling_free -> "ccount"
  | Atomic_block -> "blockstop"
  | Lock_inversion -> "locksafe"
  | Unchecked_err -> "errcheck"
  | User_deref -> "userck"
  | Ref_leak | Double_put | Put_on_error_path -> "refsafe"

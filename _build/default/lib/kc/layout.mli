(** Memory layout of KC types (LP64-ish: char 1, short 2, int 4,
    long 8, pointer 8; natural alignment). *)

exception Layout_error of string

val ptr_size : int
val int_size : Ast.ikind -> int
val size_of : Ir.program -> Ir.ty -> int
val align_of : Ir.program -> Ir.ty -> int
val round_up : int -> int -> int
val comp_size : Ir.program -> Ir.compinfo -> int

(** Byte offset of a field within its struct (0 for union members). *)
val field_offset : Ir.program -> Ir.fieldinfo -> int

(** Size of the pointed-to / element type of a pointer or array. *)
val elem_size : Ir.program -> Ir.ty -> int

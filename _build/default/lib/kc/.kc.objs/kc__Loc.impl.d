lib/kc/loc.ml: Format Printf String

(* CCount pipeline driver and free census (paper §2.2 / E2, E3). *)

module I = Kc.Ir

type report = {
  instr : Rc_instrument.stats;
  types_described : int; (* tags with pointer slots: the "32 types" census *)
  refsafe : Refsafe.Discharge.stats option;
      (* set when the refsafe gate discharged updates before boot *)
}

(* Machine configuration for a CCount run: shadow counters active,
   allocations zeroed, bad frees leak (soundness-preserving).
   [overflow_check] opts into the paper's "for total safety" trap on
   8-bit counter wrap-around. *)
let config ?(profile = Vm.Cost.Up) ?(overflow_check = false) () : Vm.Machine.config =
  {
    Vm.Machine.rc_check = true;
    zero_alloc = true;
    leak_on_bad_free = true;
    rc_overflow_check = overflow_check;
    profile;
    fuel = Vm.Machine.default_config.Vm.Machine.fuel;
  }

(* Instrument [prog] in place and boot a CCount-enabled interpreter.
   With [~refsafe:true] the static refcount analysis first discharges
   provably unobservable [Irc_update]s (see {!Refsafe.Discharge}), so
   the booted machine carries strictly less counter-maintenance work
   while reporting the same census. *)
let ccount_boot ?(profile = Vm.Cost.Up) ?(overflow_check = false) ?(refsafe = false) ?summaries
    ?engine (prog : I.program) : Vm.Interp.t * report =
  let stats, info = Rc_instrument.instrument_program prog in
  let rstats = if refsafe then Some (Refsafe.Discharge.run ?summaries prog) else None in
  let m = Vm.Machine.create ~config:(config ~profile ~overflow_check ()) () in
  let t = Vm.Interp.create ?engine prog m in
  Vm.Builtins.install t;
  Typeinfo.register_with info m;
  ( t,
    {
      instr = stats;
      types_described = List.length (Typeinfo.tags_with_pointers info);
      refsafe = rstats;
    } )

let pp_census fmt (c : Vm.Machine.free_census) =
  Format.fprintf fmt "frees: %d total, %d good (%.1f%%), %d bad" c.Vm.Machine.total_frees
    c.Vm.Machine.good c.Vm.Machine.good_pct c.Vm.Machine.bad

let pp fmt (r : report) =
  Format.fprintf fmt
    "ccount: %d pointer writes instrumented, %d register writes skipped (untracked locals), %d \
     struct copies, %d memops retyped, %d alloc sites typed, %d pointer-bearing types described"
    r.instr.Rc_instrument.ptr_writes_instrumented r.instr.Rc_instrument.register_writes_skipped
    r.instr.Rc_instrument.struct_copies r.instr.Rc_instrument.memops_retyped
    r.instr.Rc_instrument.alloc_sites_typed r.types_described

(* The public interpreter facade.

   The state and the semantics live in {!Vmstate} and the two engines:
   {!Treewalk} (the structural reference evaluator) and {!Compile}
   (the pre-compiled flat engine, the default). This module picks the
   engine at [create] time and dispatches calls through the state's
   [run_fn] hook; everything else delegates.

   The engines are observationally equivalent — identical traps,
   results and cycle counts — so callers never see which one ran,
   except on the wall clock. Set IVY_VM_ENGINE=tree to force the
   reference evaluator (e.g. when bisecting a suspected engine
   divergence). *)

type t = Vmstate.t = {
  prog : Kc.Ir.program;
  m : Machine.t;
  globals_addr : (int, int) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable rodata_brk : int;
  mutable static_brk : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  builtins : (string, t -> int64 list -> int64) Hashtbl.t;
  fun_of_id : (int, Kc.Ir.fundec) Hashtbl.t;
  mutable run_fn : (t -> Kc.Ir.fundec -> int64 list -> int64) option;
  mutable scratch : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t list;
}

type engine = Tree | Compiled

let default_engine =
  lazy
    (match Sys.getenv_opt "IVY_VM_ENGINE" with
    | Some ("tree" | "treewalk" | "walk") -> Tree
    | _ -> Compiled)

let fptr_encode = Vmstate.fptr_encode
let fptr_decode = Vmstate.fptr_decode
let norm = Vmstate.norm

let create ?engine (prog : Kc.Ir.program) (m : Machine.t) : t =
  let t = Vmstate.create prog m in
  (match match engine with Some e -> e | None -> Lazy.force default_engine with
  | Tree -> ()
  | Compiled -> Compile.install t);
  t

let intern_string = Vmstate.intern_string
let read_string = Vmstate.read_string
let register_builtin = Vmstate.register_builtin

let call_function (t : t) (fd : Kc.Ir.fundec) (argv : int64 list) : int64 =
  match t.run_fn with
  | Some f -> f t fd argv
  | None -> Treewalk.call_function t fd argv

let run (t : t) name (argv : int64 list) : int64 =
  match Kc.Ir.find_fun t.prog name with
  | Some fd when not fd.Kc.Ir.fextern -> call_function t fd argv
  | Some _ -> Trap.trap Trap.Unknown_function "%s is extern, cannot run" name
  | None -> Trap.trap Trap.Unknown_function "no function %s" name

lib/dataflow/reaching.mli: Cfg Set

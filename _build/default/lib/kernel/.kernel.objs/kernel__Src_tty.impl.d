lib/kernel/src_tty.ml:

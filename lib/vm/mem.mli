(** Flat byte-addressed memory with validity tracking and the CCount
    shadow reference counts (one 8-bit counter per 16-byte chunk,
    6.25% space overhead as in the paper).

    Every byte has a validity bit: access to an invalid byte traps
    like a page fault, while out-of-bounds accesses that land in
    *valid* memory corrupt silently, exactly as on hardware — the
    failure mode Deputy's checks turn into clean traps. *)

(** Region layout (addresses are plain ints; 0 is the null page). *)

val null_page_end : int
val rodata_base : int
val rodata_size : int
val static_base : int
val static_size : int
val heap_base : int
val heap_size : int
val stack_base : int
val stack_size : int
val total_size : int

type t = {
  bytes : Bytes.t;
  valid : Bytes.t;
  rc : Bytes.t;  (** one byte per 16-byte chunk *)
  mutable rc_enabled : bool;
  mutable rc_overflow_trap : bool;
      (** trap instead of wrapping at 256 (the paper's "for total
          safety, an overflow check could be used") *)
}

val create : unit -> t

(** Mark [len] bytes from [addr] (in)valid. *)
val set_valid : t -> int -> int -> bool -> unit

val is_valid : t -> int -> int -> bool

(** Little-endian load of 1/2/4/8 bytes, sign- or zero-extended. *)
val load : t -> addr:int -> width:int -> signed:bool -> int64

val store : t -> addr:int -> width:int -> int64 -> unit

(** True when a [width]-wide access at [addr] takes the fast path of
    [load]/[store]: in bounds, off the null page, every byte mapped.
    When false the access may still succeed on the slow path. *)
val valid_fast : t -> int -> int -> bool

(** Unchecked byte move; only sound after [valid_fast] passed for both
    the source and the destination span. *)
val blit_raw : t -> src:int -> dst:int -> width:int -> unit

(** Bulk operations (validity-checked). *)

val blit_zero : t -> int -> int -> unit
val blit_byte : t -> int -> int -> int -> unit
val blit_copy : t -> src:int -> dst:int -> int -> unit
val blit_string : t -> int -> string -> unit

(** Shadow reference counts. Counters wrap modulo 256 ("bad frees of
    objects with k*256 references will be missed"); only heap
    addresses are refcounted, so references *from* anywhere count but
    stack-resident locals are never targets. *)

val refcounted : int -> bool
val rc_get : t -> int -> int
val rc_set : t -> int -> int -> unit

(** Increment/decrement the counter of the chunk containing the
    target address; no-ops when disabled or out of the heap. *)
val rc_inc : t -> int64 -> unit

val rc_dec : t -> int64 -> unit

(** Sum of counters over an object, for the free-time check. *)
val rc_sum : t -> int -> int -> int

val rc_clear : t -> int -> int -> unit

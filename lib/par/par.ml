(* Domain pool with ordered merge. See par.mli for the contract.

   The pool is work-stealing in the cheapest possible sense: one
   Atomic counter hands out indices, so load balances itself even when
   item costs vary wildly (a fuzz case that shrinks is ~100x a case
   that passes). Results land in a preallocated array slot per item;
   the joins give the merging domain a happens-before edge on every
   slot, so no further synchronization is needed to read them. *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b slot = Done of 'b | Raised of exn * Printexc.raw_backtrace | Pending

let mapi ?(jobs = 1) (f : int -> 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.mapi f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (match f i items.(i) with
          | v -> Done v
          | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* Index-order merge: the first failing index wins, deterministically. *)
    Array.iteri
      (fun _ r -> match r with Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with Done v -> v | Raised _ | Pending -> assert false)
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

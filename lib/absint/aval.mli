(** Abstract value: interval × zeroness product.
    gamma(v) = gamma(v.iv) ∩ gamma(v.nl). *)

type t = { iv : Interval.t; nl : Nullness.t }

val bottom : t
val top : t
val make : Interval.t -> Nullness.t -> t
val of_const : int64 -> t
val nonnull : t

val is_bot : t -> bool
(** True when the concretization is empty, including contradictions
    between the two components. *)

val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
val narrow : t -> t -> t

val reduce : t -> t
(** Propagate information between the components (e.g. an interval
    excluding zero implies [Nonnull]). *)

val to_string : t -> string

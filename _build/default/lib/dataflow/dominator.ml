(* Dominator computation by the iterative bitset algorithm.

   [doms.(i)] is the set of nodes dominating node [i] (including [i]
   itself). Unreachable nodes dominate nothing and are dominated by
   everything by convention. Used by the Deputy optimizer to hoist
   checks and by tests. *)

module IS = Worklist.Int_set

type t = { doms : IS.t array; idom : int option array }

let compute (cfg : Cfg.t) : t =
  let n = Cfg.n_nodes cfg in
  let reachable = Cfg.reachable cfg in
  let all = ref IS.empty in
  for i = 0 to n - 1 do
    if reachable.(i) then all := IS.add i !all
  done;
  let doms = Array.make n !all in
  doms.(cfg.Cfg.entry) <- IS.singleton cfg.Cfg.entry;
  let changed = ref true in
  let order = Cfg.reverse_postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> cfg.Cfg.entry then begin
          let preds = List.filter (fun p -> reachable.(p)) (Cfg.node cfg i).Cfg.preds in
          let meet =
            match preds with
            | [] -> IS.singleton i
            | p :: rest -> List.fold_left (fun acc q -> IS.inter acc doms.(q)) doms.(p) rest
          in
          let next = IS.add i meet in
          if not (IS.equal next doms.(i)) then begin
            doms.(i) <- next;
            changed := true
          end
        end)
      order
  done;
  (* Immediate dominator: the dominator whose dominator set is largest
     among strict dominators. *)
  let idom = Array.make n None in
  for i = 0 to n - 1 do
    if reachable.(i) && i <> cfg.Cfg.entry then begin
      let strict = IS.remove i doms.(i) in
      let best = ref None in
      IS.iter
        (fun d ->
          match !best with
          | None -> best := Some d
          | Some b -> if IS.cardinal doms.(d) > IS.cardinal doms.(b) then best := Some d)
        strict;
      idom.(i) <- !best
    end
  done;
  { doms; idom }

let dominates (t : t) a b = IS.mem a t.doms.(b)

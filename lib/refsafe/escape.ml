(* Escape classification of pointer variables.

   Built directly on the per-function alias facts of {!Summary}: a
   pointer local (or formal) is

   - [Uniquely_owned] when every value it can hold is a fresh
     allocation and neither the variable's value nor its address can
     reach anybody else (not escaped, never duplicated into a second
     variable, address never taken) — the holder is the only possible
     reference;
   - [Non_escaping] when the value never leaves the function (not
     stored to memory/globals, not passed to a capturing callee, not
     returned, address not taken), though it may alias shared state;
   - [Shared] otherwise.

   The classification is what `ivy check --only refsafe --stats`
   reports and what the test suite pins down; the CCount discharge
   rules in {!Discharge} re-derive the facts they need directly so
   each rule's soundness argument stays local. *)

module I = Kc.Ir

type class_ = Non_escaping | Uniquely_owned | Shared

let class_to_string = function
  | Non_escaping -> "non-escaping"
  | Uniquely_owned -> "uniquely-owned"
  | Shared -> "shared"

type info = { var : I.varinfo; cls : class_ }

(* Classify the named (non-temporary) pointer variables of [fd]. *)
let classify (summaries : Summary.summaries) (prog : I.program) (fd : I.fundec) : info list =
  let a = Summary.analyze summaries prog fd in
  let classify_var (v : I.varinfo) : info =
    let srcs = Summary.get_srcs a v.I.vid in
    let escaped = Hashtbl.mem a.Summary.aescaped v.I.vid in
    let copied = Hashtbl.mem a.Summary.acopied v.I.vid in
    let returned = Hashtbl.mem a.Summary.areturned v.I.vid in
    let cls =
      if
        (not (Summary.SrcSet.is_empty srcs))
        && Summary.SrcSet.for_all (fun s -> s = Summary.Salloc) srcs
        && (not escaped) && (not copied) && (not returned) && not v.I.vaddrof
      then Uniquely_owned
      else if (not escaped) && (not returned) && not v.I.vaddrof then Non_escaping
      else Shared
    in
    { var = v; cls }
  in
  fd.I.sformals @ fd.I.slocals
  |> List.filter (fun v -> I.is_pointer v.I.vty && not v.I.vtemp)
  |> List.map classify_var

let count (infos : info list) (cls : class_) =
  List.length (List.filter (fun i -> i.cls = cls) infos)

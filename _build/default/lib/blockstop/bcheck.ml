(* Manual runtime checks for BlockStop false positives (paper §2.3).

   "We defined a special function that panics if interrupts are
   disabled, and manually inserted calls to this function in 15 places
   in the kernel." [guard_functions] inserts the equivalent
   [Ck_not_atomic] check at the entry of the named functions; the
   static analysis then treats them as safe to call anywhere, and the
   VM enforces the assertion at run time. *)

module I = Kc.Ir
module SS = Set.Make (String)

let guard_functions (prog : I.program) (names : string list) : int =
  let inserted = ref 0 in
  List.iter
    (fun (fd : I.fundec) ->
      if List.mem fd.I.fname names then begin
        let check =
          {
            I.sk =
              I.Sinstr
                (I.Icheck (I.Ck_not_atomic, Printf.sprintf "%s must not run atomically" fd.I.fname));
            sloc = fd.I.floc;
          }
        in
        fd.I.fbody <- check :: fd.I.fbody;
        incr inserted
      end)
    prog.I.funcs;
  !inserted

(** Error-code checking (paper §3.1, third proposed analysis): find
    call sites that drop or never test the error result of a function
    that can return error codes.

    Error-returning functions come from explicit [__returns_err(...)]
    annotations or are inferred from bodies that return negative
    constants ("negative constant return values are error codes"). *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

type site = {
  s_caller : string;
  s_callee : string;
  s_loc : Kc.Loc.t;
  s_kind : [ `Ignored  (** result discarded outright *)
           | `Unchecked  (** bound to a variable but never tested *) ];
}

type report = {
  err_functions : (string * int64 list) list;  (** function, known codes *)
  inferred : SS.t;  (** found by inference rather than annotation *)
  sites_total : int;
  violations : site list;
}

val analyze : Kc.Ir.program -> report
val pp : Format.formatter -> report -> unit
val pp_site : Format.formatter -> site -> unit

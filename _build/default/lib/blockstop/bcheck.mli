(** The manual runtime checks for BlockStop false positives (paper
    §2.3): insert an [assert_not_atomic] check ({!Kc.Ir.Ck_not_atomic})
    at the entry of each named function. Returns how many were
    inserted. *)

val guard_functions : Kc.Ir.program -> string list -> int

lib/kc/layout.ml: Ast Ir List Printf

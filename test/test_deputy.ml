(* Tests for Deputy: check generation, static discharge, and runtime
   behaviour of the instrumented program. *)

let parse src = Kc.Typecheck.check_sources [ ("t.kc", src) ]

let preamble =
  "void *kmalloc(unsigned long size, int gfp) __blocking_if_gfp_wait;\n\
   void kfree(void * __opt p);\n\
   void printk(char * __nullterm fmt, ...);\n"

let p src = preamble ^ src

(* Run plain (no deputy). *)
let run_base ?(fn = "main") src : int64 =
  let t = Vm.Builtins.boot (parse src) in
  Vm.Interp.run t fn []

(* Run under Deputy (instrument + optimize). *)
let run_deputy ?(fn = "main") ?(optimize = true) src : int64 * Deputy.Dreport.report =
  let prog = parse src in
  let report = Deputy.Dreport.deputize ~optimize prog in
  let t = Vm.Builtins.boot prog in
  (Vm.Interp.run t fn [], report)

let deputy_traps name src =
  Alcotest.test_case name `Quick (fun () ->
      match run_deputy src with
      | v, _ -> Alcotest.failf "%s: expected check failure, got %Ld" name v
      | exception Vm.Trap.Trap (Vm.Trap.Check_failed, _) -> ())

let deputy_ok name expected src =
  Alcotest.test_case name `Quick (fun () ->
      let v, _ = run_deputy src in
      Alcotest.(check int64) name expected v)

let report_of src =
  let prog = parse src in
  Deputy.Dreport.deputize prog

(* ------------------------------------------------------------------ *)
(* Catching real bugs                                                 *)
(* ------------------------------------------------------------------ *)

(* Off-by-one overflow into an adjacent struct field: silent
   corruption without Deputy, a clean trap with it. *)
let overflow_src =
  "struct mixed { int buf[4]; int secret; };\n\
   struct mixed g;\n\
   int main(void) {\n\
   g.secret = 42;\n\
   int i;\n\
   for (i = 0; i <= 4; i++) { g.buf[i] = 0; }\n\
   return g.secret;\n\
   }"

let test_silent_corruption_base () =
  (* The base run does NOT trap: the write lands in g.secret. *)
  Alcotest.(check int64) "secret corrupted silently" 0L (run_base overflow_src)

let test_deputy_catches_overflow () =
  match run_deputy overflow_src with
  | v, _ -> Alcotest.failf "expected trap, got %Ld" v
  | exception Vm.Trap.Trap (Vm.Trap.Check_failed, msg) ->
      Alcotest.(check bool) "mentions array bound" true
        (String.length msg > 0)

let bug_cases =
  [
    deputy_traps "constant index past array"
      "int a[4];\nint main(void) { a[4] = 1; return 0; }";
    deputy_traps "negative index"
      "int a[4];\nint main(void) { int i = -1; if (a[0] == 0) { i = -2; } a[i] = 1; return 0; }";
    deputy_traps "counted pointer overflow"
      (p
         "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i <= n; i++) { s += buf[i]; } return s; }\n\
          int main(void) { int * __count(4) b = kmalloc(4 * 4, 0); return sum(b, 4); }");
    deputy_traps "count flow violation at call site"
      (p
         "int read4(int * __count(4) buf) { return buf[3]; }\n\
          int take(int * __count(n) b, int n) { return read4(b); }\n\
          int main(void) { int * __count(2) b = kmalloc(8, 0); return take(b, 2); }");
    deputy_traps "opt pointer deref without test"
      (p "int get(int * __opt p) { return *p; }\nint main(void) { return get(0); }");
    (* The guard zero-extends the negative sc to a large u16, so it is
       always true at runtime; the optimizer must not attribute the
       bound proven about the cast to sc itself (which stays negative)
       and the lower-bound check must still trap. *)
    deputy_traps "negative index behind signed->unsigned cast guard"
      "long f(int n) { long a[4]; signed char sc = n - 9;\n\
      \  if ((unsigned short)sc < 65535) { a[sc] = 1; }\n\
      \  return 0; }\n\
       int main(void) { return f(3); }";
    deputy_traps "nullterm advance past terminator"
      (p
         "int bad_scan(char * __nullterm s) { int n = 0; while (n < 100) { s = s + 1; n++; } return n; }\n\
          int main(void) { return bad_scan(\"abc\"); }");
    deputy_traps "struct field count violation"
      (p
         "struct vec { int len; int * __count(len) data; };\n\
          int main(void) {\n\
          struct vec v;\n\
          v.len = 2;\n\
          v.data = kmalloc(2 * 4, 0);\n\
          int i = 3;\n\
          if (v.data[0] == 0) { i = 2; }\n\
          return v.data[i];\n\
          }");
  ]

let ok_cases =
  [
    deputy_ok "in-bounds loop" 6L
      (p
         "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }\n\
          int main(void) { int * __count(3) b = kmalloc(3 * 4, 0); b[0] = 1; b[1] = 2; b[2] = 3; return sum(b, 3); }");
    deputy_ok "opt pointer with null test" (-1L)
      (p "int get(int * __opt p) { if (p == 0) { return -1; } return *p; }\nint main(void) { return get(0); }");
    deputy_ok "nullterm strlen idiom" 5L
      (p
         "int my_strlen(char * __nullterm s) { int n = 0; while (*s != 0) { s = s + 1; n++; } return n; }\n\
          int main(void) { return my_strlen(\"hello\"); }");
    deputy_ok "trusted block allows weird code" 7L
      (p
         "int main(void) { int a[4]; a[1] = 7; int *q; __trusted { q = a; q = q + 1; } return *q; }");
    deputy_ok "struct field count ok" 5L
      (p
         "struct vec { int len; int * __count(len) data; };\n\
          int main(void) {\n\
          struct vec v;\n\
          v.len = 3;\n\
          v.data = kmalloc(3 * 4, 0);\n\
          v.data[2] = 5;\n\
          int i;\n\
          int s = 0;\n\
          for (i = 0; i < v.len; i++) { s += v.data[i]; }\n\
          return s;\n\
          }");
    deputy_ok "count flow at call checked ok" 9L
      (p
         "int read4(int * __count(4) buf) { return buf[3]; }\n\
          int main(void) { int n = 6; int * __count(n) q = kmalloc(6 * 4, 0); q[3] = 9; return read4(q); }");
  ]

(* ------------------------------------------------------------------ *)
(* Static discharge                                                   *)
(* ------------------------------------------------------------------ *)

let test_loop_checks_discharged () =
  let r =
    report_of
      (p
         "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }")
  in
  (* The for-loop guard proves 0 <= i < n; nothing should remain. *)
  Alcotest.(check int) "no residual checks in canonical loop" 0 r.Deputy.Dreport.residual;
  Alcotest.(check bool) "some checks were inserted" true (r.Deputy.Dreport.inserted > 0)

let test_constant_index_discharged () =
  let r = report_of "int a[8];\nint main(void) { a[0] = 1; a[7] = 2; return a[3]; }" in
  Alcotest.(check int) "constant in-bounds indices are free" 0 r.Deputy.Dreport.inserted

let test_null_test_discharges_nonnull () =
  let r =
    report_of
      (p "int get(int * __opt p) { if (p != 0) { return *p; } return -1; }")
  in
  Alcotest.(check int) "nonnull discharged by branch" 0 r.Deputy.Dreport.residual

let test_unprovable_check_kept () =
  let r =
    report_of
      (p "int get(int * __count(n) b, int n, int i) { return b[i]; }")
  in
  Alcotest.(check bool) "unprovable bounds stay as runtime checks" true
    (r.Deputy.Dreport.residual >= 2)

let test_dedup_same_check () =
  let r =
    report_of
      (p "int get(int * __count(n) b, int n, int i) { return b[i] + b[i] + b[i]; }")
  in
  (* Three identical accesses: the first pays, the rest are proven by
     the passed check. *)
  Alcotest.(check int) "only one pair of checks kept" 2 r.Deputy.Dreport.residual

let test_static_error_reported () =
  let r = report_of "int a[4];\nint main(void) { return a[9]; }" in
  Alcotest.(check bool) "constant OOB is a static error" true
    (List.length r.Deputy.Dreport.static_errors >= 1)

let test_annotation_census () =
  let r =
    report_of
      (p
         "struct v { int len; int * __count(len) __opt data; };\n\
          int f(char * __nullterm s, int * __count(4) q) { return q[0]; }")
  in
  (* count+opt on the field, nullterm + count on params, plus the
     preamble's own annotations. *)
  Alcotest.(check bool) "annotations counted" true (r.Deputy.Dreport.annotations >= 4)

(* strip_widening must only see through raw-representation-preserving
   widenings: same signedness, an unsigned source, or signed->unsigned
   at full 64-bit width (where norm is the identity).  A signed source
   widened to a *sub-64* unsigned target zero-extends negatives and
   must be kept. *)
let test_strip_widening_representation () =
  let module I = Kc.Ir in
  let module A = Kc.Ast in
  let exp_of ty = I.mk_exp (I.Econst 1L) ty in
  let cast k s inner = I.mk_exp (I.Ecast (I.Tint (k, s), inner)) (I.Tint (k, s)) in
  let strips e = Deputy.Annot.strip_widening e != e in
  let check name expect e = Alcotest.(check bool) name expect (strips e) in
  check "i32 -> i64 stripped" true (cast A.Ilong A.Signed (exp_of I.int_type));
  check "u16 -> u32 stripped" true
    (cast A.Iint A.Unsigned (exp_of (I.Tint (A.Ishort, A.Unsigned))));
  check "u16 -> i32 stripped" true
    (cast A.Iint A.Signed (exp_of (I.Tint (A.Ishort, A.Unsigned))));
  check "i32 -> u64 stripped (norm is identity at width 64)" true
    (cast A.Ilong A.Unsigned (exp_of I.int_type));
  check "i16 -> u32 kept (zero-extension changes negatives)" false
    (cast A.Iint A.Unsigned (exp_of (I.Tint (A.Ishort, A.Signed))));
  check "i8 -> u16 kept" false
    (cast A.Ishort A.Unsigned (exp_of (I.Tint (A.Ichar, A.Signed))));
  check "i64 -> i32 kept (narrowing)" false (cast A.Iint A.Signed (exp_of I.long_type))

(* ------------------------------------------------------------------ *)
(* Semantics preservation (erasure)                                    *)
(* ------------------------------------------------------------------ *)

let preservation_srcs =
  [
    ( "sum loop",
      p
        "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }\n\
         int main(void) { int * __count(16) b = kmalloc(16 * 4, 0); int i; for (i = 0; i < 16; i++) { b[i] = i; } return sum(b, 16); }"
    );
    ( "string walk",
      p
        "int my_strlen(char * __nullterm s) { int n = 0; while (*s != 0) { s = s + 1; n++; } return n; }\n\
         int main(void) { return my_strlen(\"erasure semantics\"); }" );
    ( "struct vec",
      p
        "struct vec { int len; int * __count(len) data; };\n\
         int main(void) { struct vec v; v.len = 4; v.data = kmalloc(16, 0); int i; for (i = 0; i < v.len; i++) { v.data[i] = i * i; } int s = 0; for (i = 0; i < v.len; i++) { s += v.data[i]; } return s; }"
    );
  ]

let test_preservation () =
  List.iter
    (fun (name, src) ->
      let base = run_base src in
      let dep, _ = run_deputy src in
      Alcotest.(check int64) (name ^ ": deputized result equals base") base dep)
    preservation_srcs

(* Deputy overhead exists but is bounded when checks discharge. *)
let test_cost_overhead_small_when_discharged () =
  let src =
    p
      "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }\n\
       int main(void) { int * __count(1000) b = kmalloc(1000 * 4, 0); int r = 0; int k; for (k = 0; k < 50; k++) { r = sum(b, 1000); } return r; }"
  in
  let base_prog = parse src in
  let tb = Vm.Builtins.boot base_prog in
  ignore (Vm.Interp.run tb "main" []);
  let base_cycles = tb.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  let dep_prog = parse src in
  ignore (Deputy.Dreport.deputize dep_prog);
  let td = Vm.Builtins.boot dep_prog in
  ignore (Vm.Interp.run td "main" []);
  let dep_cycles = td.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  let ratio = float_of_int dep_cycles /. float_of_int base_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "discharged loop overhead < 5%% (ratio %.3f)" ratio)
    true (ratio < 1.05)

let test_cost_overhead_visible_when_kept () =
  let src =
    p
      "int get(int * __count(n) b, int n, int i) { return b[i]; }\n\
       int idx = 3;\n\
       int main(void) { int * __count(16) b = kmalloc(64, 0); int r = 0; int k; for (k = 0; k < 1000; k++) { r += get(b, 16, idx); } return r; }"
  in
  let base_prog = parse src in
  let tb = Vm.Builtins.boot base_prog in
  ignore (Vm.Interp.run tb "main" []);
  let base_cycles = tb.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  let dep_prog = parse src in
  ignore (Deputy.Dreport.deputize dep_prog);
  let td = Vm.Builtins.boot dep_prog in
  ignore (Vm.Interp.run td "main" []);
  let dep_cycles = td.Vm.Interp.m.Vm.Machine.cost.Vm.Cost.cycles in
  Alcotest.(check bool) "kept checks cost cycles" true (dep_cycles > base_cycles)

(* ------------------------------------------------------------------ *)
(* Property: randomized bounds                                        *)
(* ------------------------------------------------------------------ *)

(* For random (size, index), the deputized program traps iff the index
   is out of bounds; in-bounds runs return the same value as base. *)
let prop_bounds =
  QCheck2.Test.make ~count:60 ~name:"deputy traps iff index out of bounds"
    QCheck2.Gen.(pair (int_range 1 12) (int_range (-4) 16))
    (fun (size, idx) ->
      let src =
        Printf.sprintf
          "%s\n\
           int probe(int * __count(n) b, int n, int i) { return b[i]; }\n\
           int cell = %d;\n\
           int main(void) { int * __count(%d) b = kmalloc(%d * 4, 0); int i; for (i = 0; i < %d; i++) { b[i] = i * 10; } return probe(b, %d, cell); }"
          preamble idx size size size size
      in
      let in_bounds = idx >= 0 && idx < size in
      match run_deputy src with
      | v, _ -> in_bounds && v = Int64.of_int (idx * 10)
      | exception Vm.Trap.Trap (Vm.Trap.Check_failed, _) -> not in_bounds)

(* ------------------------------------------------------------------ *)
(* Dependent-count updates (writes to variables a count mentions)     *)
(* ------------------------------------------------------------------ *)

let count_update_cases =
  [
    deputy_ok "shrinking a live count is fine" 3L
      (p
         "struct vec { int len; int * __count(len) data; };\n\
          int main(void) {\n\
          struct vec v;\n\
          v.len = 8;\n\
          v.data = kmalloc(8 * 4, 0);\n\
          v.data[5] = 3;\n\
          v.len = 4; // shrink: ok\n\
          return v.data[3] + 3;\n\
          }");
    deputy_traps "growing a live count traps"
      (p
         "struct vec { int len; int * __count(len) data; };\n\
          int main(void) {\n\
          struct vec v;\n\
          v.len = 4;\n\
          v.data = kmalloc(4 * 4, 0);\n\
          v.len = 16; // grow without reallocating: the lie\n\
          return v.data[0];\n\
          }");
    deputy_ok "any count while the pointer is null (init pattern)" 0L
      (p
         "struct vec { int len; int * __count(len) data; };\n\
          int main(void) {\n\
          struct vec v;\n\
          v.len = 123; // data is null: fine\n\
          v.data = kmalloc(123 * 4, 0);\n\
          v.len = 64;\n\
          return v.data[63];\n\
          }");
    deputy_ok "local count variable follows the same rule" 0L
      (p
         "int main(void) {\n\
          int n = 16;\n\
          int * __count(n) p = kmalloc(16 * 4, 0);\n\
          n = 8; // shrink ok\n\
          return p[7];\n\
          }");
    deputy_traps "growing a local count traps"
      (p
         "int main(void) {\n\
          int n = 4;\n\
          int * __count(n) p = kmalloc(4 * 4, 0);\n\
          n = 12;\n\
          return p[0];\n\
          }");
    deputy_ok "trusted region may re-establish counts" 0L
      (p
         "int main(void) {\n\
          int n = 4;\n\
          int * __count(n) p = kmalloc(16 * 4, 0);\n\
          __trusted { n = 16; } // the programmer vouches for it\n\
          return p[15];\n\
          }");
  ]

(* ------------------------------------------------------------------ *)
(* Annotation inference                                               *)
(* ------------------------------------------------------------------ *)

let test_infer_count () =
  let prog =
    parse
      "int sum(int *buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }"
  in
  let suggestions = Deputy.Infer.suggest prog in
  Alcotest.(check bool) "count(n) suggested for buf" true
    (List.exists
       (fun (s : Deputy.Infer.suggestion) ->
         s.Deputy.Infer.sg_fn = "sum" && s.Deputy.Infer.sg_param = "buf"
         && s.Deputy.Infer.sg_annot = "__count(n)")
       suggestions)

let test_infer_opt () =
  let prog = parse "int get(int *p) { if (p == 0) { return -1; } return *p; }" in
  let suggestions = Deputy.Infer.suggest prog in
  Alcotest.(check bool) "opt suggested for p" true
    (List.exists
       (fun (s : Deputy.Infer.suggestion) ->
         s.Deputy.Infer.sg_param = "p" && s.Deputy.Infer.sg_annot = "__opt")
       suggestions)

let test_infer_skips_annotated () =
  let prog =
    parse
      (p
         "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }")
  in
  Alcotest.(check int) "already-annotated params get no suggestions" 0
    (List.length (Deputy.Infer.suggest prog))

let test_infer_suggestion_checks_clean () =
  (* Applying the suggested annotation produces a program that Deputy
     accepts and that discharges its checks. *)
  let prog =
    parse
      "int sum(int * __count(n) buf, int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += buf[i]; } return s; }"
  in
  let r = Deputy.Dreport.deputize prog in
  Alcotest.(check int) "no residual checks" 0 r.Deputy.Dreport.residual

let () =
  Alcotest.run "deputy"
    [
      ( "catches",
        [
          Alcotest.test_case "base run corrupts silently" `Quick test_silent_corruption_base;
          Alcotest.test_case "deputy catches overflow" `Quick test_deputy_catches_overflow;
        ]
        @ bug_cases );
      ("accepts", ok_cases);
      ( "discharge",
        [
          Alcotest.test_case "loop checks discharged" `Quick test_loop_checks_discharged;
          Alcotest.test_case "constant index free" `Quick test_constant_index_discharged;
          Alcotest.test_case "null test discharges" `Quick test_null_test_discharges_nonnull;
          Alcotest.test_case "unprovable kept" `Quick test_unprovable_check_kept;
          Alcotest.test_case "dedup" `Quick test_dedup_same_check;
          Alcotest.test_case "static error" `Quick test_static_error_reported;
          Alcotest.test_case "annotation census" `Quick test_annotation_census;
          Alcotest.test_case "strip_widening representation" `Quick
            test_strip_widening_representation;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "results preserved" `Quick test_preservation;
          Alcotest.test_case "discharged overhead small" `Quick test_cost_overhead_small_when_discharged;
          Alcotest.test_case "kept checks cost" `Quick test_cost_overhead_visible_when_kept;
        ] );
      ("count-updates", count_update_cases);
      ( "inference",
        [
          Alcotest.test_case "count" `Quick test_infer_count;
          Alcotest.test_case "opt" `Quick test_infer_opt;
          Alcotest.test_case "skips annotated" `Quick test_infer_skips_annotated;
          Alcotest.test_case "suggestion checks clean" `Quick test_infer_suggestion_checks_clean;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_bounds ]);
    ]

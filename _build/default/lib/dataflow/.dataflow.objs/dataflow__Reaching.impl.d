lib/dataflow/reaching.ml: Array Cfg List Liveness Set Worklist
